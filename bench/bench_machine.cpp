// Substrate microbenchmarks: SM-11 interpreter speed, assembler speed,
// device stepping, MMU translation. These are the cost model under every
// other experiment.
#include <benchmark/benchmark.h>

#include "src/core/kernel_system.h"
#include "src/machine/devices.h"
#include "src/machine/machine.h"
#include "src/obs/trace.h"
#include "src/sm11asm/assembler.h"

namespace sep {
namespace {

std::unique_ptr<Machine> BareMachine() {
  MachineConfig config;
  config.memory_words = 1u << 15;
  auto machine = std::make_unique<Machine>(config);
  for (int page = 0; page < 4; ++page) {
    machine->mmu().SetPage(CpuMode::kKernel, page,
                           {static_cast<PhysAddr>(page) * kPageWords, kPageWords,
                            PageAccess::kReadWrite});
  }
  return machine;
}

constexpr char kThroughputLoop[] = R"(
LOOP:   INC R0
        ADD R0, R1
        MOV R1, @0x200
        CMP #0, R1
        BNE LOOP
        BR LOOP
)";

// Instruction throughput of the batched execution engine (Machine::Run with
// the predecode cache on — the direct-threaded loop). items/sec is
// instructions per second; the ratio to the NoCache variant below is the
// `predecode_speedup` metric in BENCH_*.json.
void BM_InstructionThroughput(benchmark::State& state) {
  auto machine = BareMachine();
  Result<AssembledProgram> program = Assemble(kThroughputLoop);
  machine->memory().LoadImage(0, program->words);
  machine->cpu().set_sp(0x1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine->Run(4096));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_InstructionThroughput);

// The same batched loop with the predecoded-instruction cache disabled:
// every step re-translates, re-fetches and re-decodes through the generic
// interpreter. Same API as above so the ratio isolates the cache.
void BM_InstructionThroughputNoCache(benchmark::State& state) {
  auto machine = BareMachine();
  machine->set_predecode_enabled(false);
  Result<AssembledProgram> program = Assemble(kThroughputLoop);
  machine->memory().LoadImage(0, program->words);
  machine->cpu().set_sp(0x1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine->Run(4096));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_InstructionThroughputNoCache);

// Batched execution with the predecode cache on but the superblock layer
// off: every instruction still pays the per-step entry validation the
// superblocks hoist to trace entry. The ratio of BM_InstructionThroughput
// to this is the `superblock_speedup` metric in BENCH_*.json.
void BM_InstructionThroughputNoSuperblock(benchmark::State& state) {
  auto machine = BareMachine();
  machine->set_superblock_enabled(false);
  Result<AssembledProgram> program = Assemble(kThroughputLoop);
  machine->memory().LoadImage(0, program->words);
  machine->cpu().set_sp(0x1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine->Run(4096));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_InstructionThroughputNoSuperblock);

// Invalidation storm: the whole derived state (predecoded blocks and any
// stitched superblocks) is flushed before every batch, so the measured cost
// is dominated by re-decode and trace rebuild rather than steady-state
// dispatch. Guards against regressions in rebuild cost that the warm
// benchmarks above can never see.
void BM_InstructionThroughputInvalidationStorm(benchmark::State& state) {
  auto machine = BareMachine();
  Result<AssembledProgram> program = Assemble(kThroughputLoop);
  machine->memory().LoadImage(0, program->words);
  machine->cpu().set_sp(0x1000);
  for (auto _ : state) {
    machine->set_predecode_enabled(false);  // drops icache + superblocks
    machine->set_predecode_enabled(true);
    benchmark::DoNotOptimize(machine->Run(4096));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_InstructionThroughputInvalidationStorm);

// Unbatched single-step API (what the separability checker drives): pays
// per-step event plumbing and interrupt polling but still hits the
// predecode cache.
void BM_StepCpuPhase(benchmark::State& state) {
  auto machine = BareMachine();
  Result<AssembledProgram> program = Assemble(kThroughputLoop);
  machine->memory().LoadImage(0, program->words);
  machine->cpu().set_sp(0x1000);
  for (auto _ : state) {
    machine->StepCpuPhase();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StepCpuPhase);

void BM_FullMachineStep(benchmark::State& state) {
  auto machine = BareMachine();
  for (int d = 0; d < state.range(0); ++d) {
    machine->AddDevice(std::make_unique<SerialLine>("slu" + std::to_string(d), 16 + d, 4, 2));
  }
  Result<AssembledProgram> program = Assemble("LOOP: INC R0\n      BR LOOP\n");
  machine->memory().LoadImage(0, program->words);
  machine->cpu().set_sp(0x1000);
  for (auto _ : state) {
    machine->Step();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0)) + " devices");
}
BENCHMARK(BM_FullMachineStep)->Arg(0)->Arg(2)->Arg(8);

void BM_MmuTranslate(benchmark::State& state) {
  Mmu mmu;
  mmu.SetPage(CpuMode::kUser, 0, {0x1000, kPageWords, PageAccess::kReadWrite});
  VirtAddr addr = 0;
  for (auto _ : state) {
    auto result = mmu.Translate(CpuMode::kUser, addr, AccessKind::kReadData);
    benchmark::DoNotOptimize(result.translation);
    addr = (addr + 7) & (kPageWords - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MmuTranslate);

void BM_Assembler(benchmark::State& state) {
  std::string source;
  for (int i = 0; i < 100; ++i) {
    source += "L" + std::to_string(i) + ": MOV #" + std::to_string(i) + ", R0\n";
    source += "     ADD R0, R1\n";
    source += "     BNE L" + std::to_string(i) + "\n";
  }
  for (auto _ : state) {
    Result<AssembledProgram> program = Assemble(source);
    benchmark::DoNotOptimize(program.ok());
  }
  state.SetItemsProcessed(state.iterations() * 300);  // instructions assembled
}
BENCHMARK(BM_Assembler);

// Kernel-mediated stepping with the observability layer compiled in. The
// guests are a pure SWAP ping-pong, so EVERY machine step runs the kernel
// slow path — trap dispatch, kernel-call accounting, dispatcher, MMU
// reprogram — which is the densest sequence of trace points the system can
// produce. TraceOff measures the disabled-tracing tax (one relaxed load +
// branch per site); TraceOn pays ring pushes plus a periodic drain. The
// ratio off/on is the `trace_disabled_overhead` metric in BENCH_*.json: it
// collapses toward 1 only if someone makes the disabled path expensive,
// which is exactly the regression the guard exists to catch.
std::unique_ptr<KernelizedSystem> SwapPingPong() {
  SystemBuilder builder;
  (void)builder.AddRegime("a", 256, "LOOP: TRAP 0\n      BR LOOP\n");
  (void)builder.AddRegime("b", 256, "LOOP: TRAP 0\n      BR LOOP\n");
  auto sys = builder.Build();
  if (!sys.ok()) {
    std::abort();
  }
  return std::move(sys.value());
}

void BM_KernelizedStepTraceOff(benchmark::State& state) {
  auto sys = SwapPingPong();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->Run(4096));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_KernelizedStepTraceOff);

void BM_KernelizedStepTraceOn(benchmark::State& state) {
  auto sys = SwapPingPong();
  obs::Recorder().Start(std::size_t{1} << 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->Run(4096));
    // Drain inside the timed region: a live consumer is part of the cost of
    // tracing, and an undrained ring would degenerate into cheap drops.
    benchmark::DoNotOptimize(obs::Recorder().Drain());
  }
  obs::Recorder().Stop();
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_KernelizedStepTraceOn);

// Cold-start/invalidation-storm variant of the kernelized stepper: the
// warm benches above only ever exercise a hot predecode cache, so a
// regression that made refills expensive would be invisible there. Here the
// derived caches are flushed before every batch — every regime swap and
// trap path re-decodes from scratch.
void BM_KernelizedStepInvalidationStorm(benchmark::State& state) {
  auto sys = SwapPingPong();
  for (auto _ : state) {
    sys->machine().set_predecode_enabled(false);
    sys->machine().set_predecode_enabled(true);
    benchmark::DoNotOptimize(sys->Run(4096));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_KernelizedStepInvalidationStorm);

void BM_StateHash(benchmark::State& state) {
  auto machine = BareMachine();
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine->StateHash());
  }
}
BENCHMARK(BM_StateHash);

void BM_SnapshotFull(benchmark::State& state) {
  auto machine = BareMachine();
  for (auto _ : state) {
    std::vector<Word> snapshot = machine->SnapshotFull();
    benchmark::DoNotOptimize(snapshot.data());
  }
}
BENCHMARK(BM_SnapshotFull);

}  // namespace
}  // namespace sep

BENCHMARK_MAIN();
