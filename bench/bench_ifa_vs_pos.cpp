// E6 — information flow analysis vs Proof of Separability on the SWAP.
//
// Table: the kernel-program catalogue with three verdicts per row:
//   IFA       — Denning certification of the SIMPL rendering;
//   semantic  — ground-truth two-run leak probe;
//   PoS       — for the SWAP rows, the verdict of the real checker on the
//               real kernel whose SWAP does exactly this (register save +
//               reload across a context switch).
// The paper's point materializes as the (IFA=reject, semantic=secure,
// PoS=pass) rows.
// Benchmarks: IFA certification throughput and the semantic probe cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/kernel_system.h"
#include "src/core/separability.h"
#include "src/ifa/analyzer.h"
#include "src/ifa/kernel_programs.h"
#include "src/ifa/parser.h"
#include "src/ifa/semantic.h"

namespace sep {
namespace {

bool RealKernelSwapPasses() {
  SystemBuilder builder;
  (void)builder.AddRegime("red", 256, R"(
START:  CLR R3
LOOP:   INC R3
        TRAP 0
        BR LOOP
)");
  (void)builder.AddRegime("black", 256, R"(
START:  CLR R4
LOOP:   INC R4
        TRAP 0
        BR LOOP
)");
  auto sys = builder.Build();
  if (!sys.ok()) {
    std::abort();
  }
  CheckerOptions options;
  options.trace_steps = 500;
  return CheckSeparability(**sys, options).Passed();
}

void PrintTable() {
  const bool pos_swap = RealKernelSwapPasses();

  std::printf("== E6 Table: IFA vs semantics vs Proof of Separability ==\n");
  std::printf("%-24s %-12s %-12s %-12s %s\n", "program", "IFA", "semantic", "PoS",
              "note");
  for (const CatalogEntry& entry : KernelProgramCatalog()) {
    Result<std::unique_ptr<Program>> program = ParseSimpl(entry.source);
    if (!program.ok()) {
      std::printf("%-24s PARSE ERROR: %s\n", entry.name.c_str(), program.error().c_str());
      continue;
    }
    FlowReport flow = AnalyzeFlows(**program);
    const bool leaks = entry.secrets.empty()
                           ? false
                           : SemanticallyLeaks(**program, entry.secrets, entry.observables);
    const bool is_swap = entry.name.rfind("swap/regs", 0) == 0;
    std::string pos = is_swap ? (pos_swap ? "pass" : "VIOLATED") : "-";
    const char* note = "";
    if (!flow.Certified() && !leaks) {
      note = "<- IFA false positive (the paper's Section 4 argument)";
    } else if (!flow.Certified() && leaks) {
      note = "true positive";
    }
    std::printf("%-24s %-12s %-12s %-12s %s\n", entry.name.c_str(),
                flow.Certified() ? "certified" : "rejected", leaks ? "LEAKS" : "secure",
                pos.c_str(), note);
    // The violations behind a "rejected" verdict, in the shared finding
    // format also used by tools/sepcheck.
    std::printf("%s", FormatFindings(flow.ToFindings(entry.name), /*json=*/false).c_str());
  }
  std::printf("\n");
}

void BM_IfaCertification(benchmark::State& state) {
  const CatalogEntry& entry = KernelProgramCatalog()[0];
  auto program = ParseSimpl(entry.source);
  for (auto _ : state) {
    FlowReport report = AnalyzeFlows(**program);
    benchmark::DoNotOptimize(report.statements_checked);
  }
}
BENCHMARK(BM_IfaCertification);

void BM_SimplParse(benchmark::State& state) {
  const CatalogEntry& entry = KernelProgramCatalog()[0];
  for (auto _ : state) {
    auto program = ParseSimpl(entry.source);
    benchmark::DoNotOptimize(program.ok());
  }
}
BENCHMARK(BM_SimplParse);

void BM_SemanticProbe(benchmark::State& state) {
  const CatalogEntry& entry = KernelProgramCatalog()[0];
  auto program = ParseSimpl(entry.source);
  LeakProbeOptions options;
  options.trials = static_cast<int>(state.range(0));
  for (auto _ : state) {
    bool leaks = SemanticallyLeaks(**program, entry.secrets, entry.observables, options);
    benchmark::DoNotOptimize(leaks);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SemanticProbe)->Arg(10)->Arg(100);

}  // namespace
}  // namespace sep

int main(int argc, char** argv) {
  sep::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
