// E2/E3/E4 — Proof of Separability over the SUE-style kernel.
//
// Table 1: per-condition check/violation counts for the good kernel across
//          configurations (the executable form of the paper's two
//          commutative diagrams and the Appendix's conditions 3-6).
// Table 2: detection matrix — every injected kernel defect vs the checker
//          verdict (the ground-truth validation of the method).
// Benchmarks: checker throughput and its building blocks (machine clone,
//          abstraction-function extraction).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>

#include "src/core/exhaustive.h"
#include "src/core/kernel_system.h"
#include "src/core/separability.h"
#include "src/machine/devices.h"
#include "src/model/toy_systems.h"

namespace sep {
namespace {

constexpr char kWorker[] = R"(
START:  CLR R3
LOOP:   INC R3
        MOV R3, @0x40
        ADD R3, R2
        TRAP 0
        BR LOOP
)";

constexpr char kProbe[] = R"(
START:  MOV R0, @0x50
        MOV R1, @0x51
        MOV R4, @0x52
        COM R1
        TRAP 0
        BCS START
        MOV #1, R2
        MOV R2, @0x70
        BR START
)";

// Reads virtual page 1 — the window the shared_mmu_window defect opens onto
// regime 0's partition — and publishes what it sees. Under a correct kernel
// this faults immediately; under the defective one it is a working spy.
constexpr char kSpy[] = R"(
START:  MOV #0x2000, R4
LOOP:   MOV (R4), R2
        MOV R2, @0x60
        TRAP 0
        BR LOOP
)";

constexpr char kDriver[] = R"(
        .EQU DEV, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4
        MOV #DEV, R4
        MOV #0x40, (R4)
LOOP:   TRAP 6
        BR LOOP
HANDLER:
        MOV #DEV, R4
        MOV 1(R4), R2
        MOV R2, 3(R4)
        TRAP 5
)";

std::unique_ptr<KernelizedSystem> BuildConfig(const std::string& kind,
                                              const KernelFaults& faults = {}) {
  SystemBuilder builder;
  if (kind == "2-worker") {
    (void)builder.AddRegime("red", 256, kWorker);
    (void)builder.AddRegime("black", 256, kProbe);
  } else if (kind == "2-spy") {
    (void)builder.AddRegime("red", 256, kWorker);
    (void)builder.AddRegime("spy", 256, kSpy);
  } else if (kind == "3-channel") {
    (void)builder.AddRegime("a", 256, kWorker);
    (void)builder.AddRegime("b", 256, kProbe);
    (void)builder.AddRegime("c", 256, kWorker);
    builder.AddChannel("a2b", 0, 1, 8);
    builder.AddChannel("b2c", 1, 2, 8);
    builder.CutChannels(true);
  } else {  // "2-device"
    SystemBuilder fresh;
    builder = std::move(fresh);
    int slu_a = builder.AddDevice(std::make_unique<SerialLine>("slu-a", 16, 4, 2));
    int slu_b = builder.AddDevice(std::make_unique<SerialLine>("slu-b", 18, 5, 3));
    (void)builder.AddRegime("drv-a", 256, kDriver, {slu_a});
    (void)builder.AddRegime("drv-b", 256, kDriver, {slu_b});
  }
  builder.WithFaults(faults);
  auto system = builder.Build();
  if (!system.ok()) {
    std::fprintf(stderr, "build failed: %s\n", system.error().c_str());
    std::abort();
  }
  return std::move(system.value());
}

CheckerOptions TableOptions(std::uint64_t seed = 1) {
  CheckerOptions options;
  options.seed = seed;
  options.trace_steps = 800;
  options.sample_every = 9;
  options.perturb_variants = 2;
  options.input_rate_percent = 12;
  return options;
}

void PrintTable1() {
  std::printf("== E2/E4 Table 1: Proof of Separability, good kernel ==\n");
  std::printf("%-12s %-10s %-10s %-10s %-10s %-10s %-10s %s\n", "config", "C1(viol/chk)",
              "C2", "C3", "C4", "C5", "C6", "verdict");
  for (const char* kind : {"2-worker", "3-channel", "2-device"}) {
    auto system = BuildConfig(kind);
    SeparabilityReport report = CheckSeparability(*system, TableOptions());
    std::printf("%-12s", kind);
    for (int c = 1; c <= 6; ++c) {
      std::printf(" %llu/%-8llu",
                  static_cast<unsigned long long>(report.conditions[c].violations),
                  static_cast<unsigned long long>(report.conditions[c].checks));
    }
    std::printf(" %s\n", report.Passed() ? "SEPARABLE" : "VIOLATED");
  }
  std::printf("\n");
}

void PrintTable2() {
  std::printf("== E3 Table 2: defect detection matrix ==\n");
  std::printf("%-26s %-10s %-30s\n", "injected defect", "verdict", "first violated condition");
  struct Row {
    const char* name;
    const char* config;
    KernelFaults faults;
  };
  std::vector<Row> rows;
  {
    Row r{"(none)", "2-worker", {}};
    rows.push_back(r);
  }
  {
    Row r{"skip-register-restore", "2-worker", {}};
    r.faults.skip_register_restore = true;
    rows.push_back(r);
  }
  {
    Row r{"leak-condition-codes", "2-worker", {}};
    r.faults.leak_condition_codes = true;
    rows.push_back(r);
  }
  {
    // Detection needs a regime that actually exercises the window.
    Row r{"shared-mmu-window", "2-spy", {}};
    r.faults.shared_mmu_window = true;
    rows.push_back(r);
  }
  {
    Row r{"skip-register-save", "2-worker", {}};  // correctness bug, not a leak
    r.faults.skip_register_save = true;
    rows.push_back(r);
  }

  for (const Row& row : rows) {
    auto system = BuildConfig(row.config, row.faults);
    SeparabilityReport report = CheckSeparability(*system, TableOptions(7));
    const char* verdict = report.Passed() ? "PASS" : "DETECTED";
    std::string first = report.violations.empty()
                            ? std::string("-")
                            : "C" + std::to_string(report.violations[0].condition) + ": " +
                                  report.violations[0].description.substr(0, 40);
    std::printf("%-26s %-10s %-30s\n", row.name, verdict, first.c_str());
  }
  // Broadcast interrupts needs a device config.
  {
    KernelFaults faults;
    faults.broadcast_interrupts = true;
    auto system = BuildConfig("2-device", faults);
    CheckerOptions options = TableOptions(9);
    options.input_rate_percent = 25;
    SeparabilityReport report = CheckSeparability(*system, options);
    std::string first = report.violations.empty()
                            ? std::string("-")
                            : "C" + std::to_string(report.violations[0].condition);
    std::printf("%-26s %-10s %-30s\n", "broadcast-interrupts",
                report.Passed() ? "PASS" : "DETECTED", first.c_str());
  }
  std::printf("\n");
}

void PrintTable3() {
  std::printf("== E4 Table 3: exhaustive (finite-model) checking ==\n");
  std::printf("%-18s %-10s %-10s %-10s %-10s %s\n", "system", "states", "transitions",
              "pairs", "complete", "verdict");
  for (bool leaky : {false, true}) {
    ExhaustiveReport report = CheckSeparabilityExhaustive(TinyTwoUserSystem(leaky));
    std::printf("%-18s %-10zu %-10zu %-10zu %-10s %s\n",
                leaky ? "tiny-2user leaky" : "tiny-2user secure", report.states_explored,
                report.transitions, report.pairs_checked, report.complete ? "yes" : "no",
                report.Passed() ? "SEPARABLE (proved)" : "REFUTED");
  }
  std::printf("(for finite micro-systems the six conditions are DECIDED over the whole\n");
  std::printf(" reachable space; the kernel configs above use the sampled checker)\n\n");
}

void BM_CheckerFullRun(benchmark::State& state) {
  auto system = BuildConfig("2-worker");
  CheckerOptions options;
  options.trace_steps = static_cast<int>(state.range(0));
  options.sample_every = 11;
  for (auto _ : state) {
    SeparabilityReport report = CheckSeparability(*system, options);
    benchmark::DoNotOptimize(report.operations_executed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckerFullRun)->Arg(100)->Arg(400)->Arg(1600);

void BM_MachineClone(benchmark::State& state) {
  auto system = BuildConfig("3-channel");
  for (auto _ : state) {
    auto clone = system->Clone();
    benchmark::DoNotOptimize(clone.get());
  }
}
BENCHMARK(BM_MachineClone);

void BM_AbstractionFunction(benchmark::State& state) {
  auto system = BuildConfig("3-channel");
  for (auto _ : state) {
    AbstractState phi = system->Abstract(1);
    benchmark::DoNotOptimize(phi.words.data());
  }
}
BENCHMARK(BM_AbstractionFunction);

void BM_PerturbOthers(benchmark::State& state) {
  auto system = BuildConfig("3-channel");
  Rng rng(1);
  for (auto _ : state) {
    auto clone = system->Clone();
    static_cast<KernelizedSystem*>(clone.get())->PerturbOthers(0, rng);
    benchmark::DoNotOptimize(clone.get());
  }
}
BENCHMARK(BM_PerturbOthers);

void BM_ExhaustiveCheck(benchmark::State& state) {
  std::size_t states = 0;
  for (auto _ : state) {
    ExhaustiveReport report = CheckSeparabilityExhaustive(TinyTwoUserSystem(false));
    benchmark::DoNotOptimize(report.states_explored);
    states += report.states_explored;
  }
  // items/sec == reachable states proven per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(states));
}
BENCHMARK(BM_ExhaustiveCheck);

void BM_ExhaustiveCheckParallel(benchmark::State& state) {
  ExhaustiveOptions options;
  options.threads = 0;  // all hardware threads
  std::size_t states = 0;
  for (auto _ : state) {
    ExhaustiveReport report = CheckSeparabilityExhaustive(TinyTwoUserSystem(false), options);
    benchmark::DoNotOptimize(report.states_explored);
    states += report.states_explored;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states));
}
BENCHMARK(BM_ExhaustiveCheckParallel);

// Two tight SM-11 loops whose register masks give the product automaton a
// large reachable cycle: the standard stress configuration for the compact
// state store (every state differs from its predecessor in a handful of
// words, so chunk interning is at its most effective and the per-state cost
// is dominated by RestoreFullState + expansion).
constexpr char kCycleA[] = R"(
START:  INC R3
        BIC #0xFFE0, R3
        TRAP 0
        BR START
)";

constexpr char kCycleB[] = R"(
START:  INC R3
        BIC #0xFF00, R3
        TRAP 0
        BR START
)";

std::unique_ptr<KernelizedSystem> BuildCycleConfig() {
  SystemBuilder builder;
  builder.WithMemoryWords(1u << 12);
  (void)builder.AddRegime("red", 64, kCycleA);
  (void)builder.AddRegime("black", 64, kCycleB);
  auto system = builder.Build();
  if (!system.ok()) {
    std::fprintf(stderr, "build failed: %s\n", system.error().c_str());
    std::abort();
  }
  return std::move(system.value());
}

// Exhaustive checking of the full kernelized machine (not the toy system):
// every explored state is a complete SM-11 snapshot — all of physical
// memory, MMU, CPU and device state. items/sec == kernelized states proven
// per second; bytes_per_state is the compact store's resident footprint.
void BM_ExhaustiveKernelized(benchmark::State& state) {
  auto system = BuildCycleConfig();
  ExhaustiveOptions options;
  options.max_states = 8192;
  std::size_t states = 0;
  std::size_t peak_bytes = 0;
  for (auto _ : state) {
    ExhaustiveReport report = CheckSeparabilityExhaustive(*system, options);
    benchmark::DoNotOptimize(report.states_explored);
    states += report.states_explored;
    peak_bytes = report.peak_state_bytes;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states));
  state.counters["bytes_per_state"] = static_cast<double>(peak_bytes) /
                                      static_cast<double>(options.max_states);
}
BENCHMARK(BM_ExhaustiveKernelized);

// The same kernelized exploration on the work-stealing frontier with all
// hardware threads. Against BM_ExhaustiveKernelized this yields
// `exhaustive_steal_speedup` in bench_report — the multicore claim of the
// stealing scheduler, guarded like exhaustive_parallel_speedup (and, like
// it, skipped on single-core hosts where the honest value is <= 1).
void BM_ExhaustiveKernelizedSteal(benchmark::State& state) {
  auto system = BuildCycleConfig();
  ExhaustiveOptions options;
  options.max_states = 8192;
  options.threads = 0;  // all hardware threads
  std::size_t states = 0;
  std::uint64_t steals = 0;
  for (auto _ : state) {
    ExhaustiveReport report = CheckSeparabilityExhaustive(*system, options);
    benchmark::DoNotOptimize(report.states_explored);
    states += report.states_explored;
    steals += report.steal_count;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(states));
  state.counters["steals"] = static_cast<double>(steals);
}
BENCHMARK(BM_ExhaustiveKernelizedSteal);

}  // namespace
}  // namespace sep

int main(int argc, char** argv) {
  // --notables suppresses the experiment tables so machine consumers
  // (tools/bench_report with --benchmark_format=json) get pure JSON.
  bool tables = true;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--notables") {
      tables = false;
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  if (tables) {
    sep::PrintTable1();
    sep::PrintTable2();
    sep::PrintTable3();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
