// E5 — the wire-cutting argument, quantified.
//
// Table: verdicts for the producer/consumer kernel with channels shared
// (uncut) vs cut, plus the functional behaviour of each variant. The paper's
// inference: cut-kernel isolation + controlled aliasing difference =>
// the channel is the only inter-regime flow in the uncut kernel.
// Benchmarks: kernel channel throughput (SEND/RECV round trips).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/kernel_system.h"
#include "src/core/separability.h"

namespace sep {
namespace {

constexpr char kProducer[] = R"(
START:  CLR R3
LOOP:   INC R3
        MOV R3, R1
        CLR R0
        TRAP 1
        TRAP 0
        BR LOOP
)";

constexpr char kConsumer[] = R"(
START:  MOV #0x80, R4
LOOP:   CLR R0
        TRAP 2
        TST R0
        BEQ YIELD
        MOV R1, (R4)
YIELD:  TRAP 0
        BR LOOP
)";

std::unique_ptr<KernelizedSystem> Build(bool cut, std::uint32_t capacity = 8) {
  SystemBuilder builder;
  (void)builder.AddRegime("producer", 256, kProducer);
  (void)builder.AddRegime("consumer", 256, kConsumer);
  builder.AddChannel("p2c", 0, 1, capacity);
  builder.CutChannels(cut);
  auto system = builder.Build();
  if (!system.ok()) {
    std::abort();
  }
  return std::move(system.value());
}

void PrintTable() {
  std::printf("== E5 Table: the wire-cutting argument ==\n");
  std::printf("%-8s %-12s %-18s %-16s %-14s\n", "variant", "verdict", "C2 viol/checks",
              "words delivered", "sender view");
  for (bool cut : {false, true}) {
    auto sys = Build(cut);
    CheckerOptions options;
    options.trace_steps = 600;
    options.sample_every = 9;
    SeparabilityReport report = CheckSeparability(*sys, options);

    auto fresh = Build(cut);
    fresh->Run(1000);
    const Word delivered = fresh->machine().memory().Read(
        fresh->kernel().config().regimes[1].mem_base + 0x80);
    const Word x1_count = fresh->kernel().ChannelCount(0, 0);

    std::printf("%-8s %-12s %llu/%-16llu %-16u X1 count=%u\n", cut ? "cut" : "uncut",
                report.Passed() ? "SEPARABLE" : "VIOLATED",
                static_cast<unsigned long long>(report.conditions[2].violations),
                static_cast<unsigned long long>(report.conditions[2].checks),
                delivered != 0 ? 1 : 0, x1_count);
  }
  std::printf("(uncut communicates and fails isolation; cut starves the consumer and\n");
  std::printf(" passes — the aliasing of the ring base is the ONLY difference)\n\n");
}

void BM_ChannelTransfer(benchmark::State& state) {
  // Steps needed to move `n` words producer->consumer through the kernel.
  const std::uint32_t capacity = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto sys = Build(/*cut=*/false, capacity);
    sys->Run(2000);
    benchmark::DoNotOptimize(sys->kernel().KernelCallCount());
  }
  state.SetLabel("capacity=" + std::to_string(capacity));
}
BENCHMARK(BM_ChannelTransfer)->Arg(1)->Arg(8)->Arg(64);

void BM_KernelCallOverhead(benchmark::State& state) {
  // Pure SWAP ping-pong: cost of one kernel entry + context switch.
  SystemBuilder builder;
  (void)builder.AddRegime("a", 256, "LOOP: TRAP 0\n      BR LOOP\n");
  (void)builder.AddRegime("b", 256, "LOOP: TRAP 0\n      BR LOOP\n");
  auto sys = builder.Build();
  for (auto _ : state) {
    (*sys)->machine().Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelCallOverhead);

}  // namespace
}  // namespace sep

int main(int argc, char** argv) {
  sep::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
