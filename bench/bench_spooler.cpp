// E7 — the spooler dilemma, quantified.
//
// Table: three architectures for the same print workload:
//   (a) conventional kernelized spooler at system-high, plain BLP:
//       delete-after-print DENIED -> spool files accumulate;
//   (b) the same with the trusted-process exemption: deletions succeed,
//       but only by exempting the spooler from the *-property;
//   (c) the paper's distributed printer-server: per-level subjects, zero
//       denials, zero exemptions, empty spool.
// Benchmarks: printer-server throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/components/printserver.h"
#include "src/security/blp.h"

namespace sep {
namespace {

struct KernelizedSpoolerOutcome {
  std::size_t jobs = 0;
  std::size_t deletions_denied = 0;
  std::size_t exemptions_used = 0;
  std::size_t spool_residue = 0;
};

// Models the conventional architecture: one spooler subject at system-high
// reading spool files of all levels, then attempting to delete them.
KernelizedSpoolerOutcome RunKernelizedSpooler(bool trusted, int jobs) {
  CategoryRegistry::Instance().Reset();
  BlpMonitor monitor;
  (void)monitor.AddSubject({"spooler", SecurityLevel::SystemHigh(), SecurityLevel::SystemHigh(),
                            trusted});
  KernelizedSpoolerOutcome out;
  for (int j = 0; j < jobs; ++j) {
    const SecurityLevel level(static_cast<Classification>(j % 4));
    const std::string file = "spool/job" + std::to_string(j);
    (void)monitor.AddObject({file, level});
    // Read to print: granted (system-high dominates everything).
    (void)monitor.Check("spooler", file, AccessMode::kRead);
    // Delete after print:
    AccessDecision d = monitor.Check("spooler", file, AccessMode::kDelete);
    if (d.granted) {
      if (d.rule.find("trusted-exemption") != std::string::npos) {
        ++out.exemptions_used;
      }
      (void)monitor.RemoveObject(file);
    } else {
      ++out.deletions_denied;
      ++out.spool_residue;
    }
    ++out.jobs;
  }
  return out;
}

void PrintTable() {
  const int jobs = 64;
  std::printf("== E7 Table: three architectures for one print workload (%d jobs) ==\n", jobs);
  std::printf("%-34s %-10s %-12s %-12s %-10s\n", "architecture", "printed", "del denied",
              "exemptions", "residue");

  KernelizedSpoolerOutcome plain = RunKernelizedSpooler(false, jobs);
  std::printf("%-34s %-10zu %-12zu %-12zu %-10zu\n", "kernelized spooler, plain BLP",
              plain.jobs, plain.deletions_denied, plain.exemptions_used, plain.spool_residue);

  KernelizedSpoolerOutcome trusted = RunKernelizedSpooler(true, jobs);
  std::printf("%-34s %-10zu %-12zu %-12zu %-10zu\n", "kernelized spooler, trusted proc",
              trusted.jobs, trusted.deletions_denied, trusted.exemptions_used,
              trusted.spool_residue);

  // The distributed printer-server.
  {
    CategoryRegistry::Instance().Reset();
    Network net;
    std::vector<PrintUser> users;
    std::vector<std::vector<std::string>> job_lists(4);
    for (int u = 0; u < 4; ++u) {
      users.push_back({"user" + std::to_string(u),
                       SecurityLevel(static_cast<Classification>(u))});
      for (int j = 0; j < jobs / 4; ++j) {
        job_lists[static_cast<std::size_t>(u)].push_back("job " + std::to_string(j));
      }
    }
    auto server_owned = std::make_unique<PrintServer>(users, /*print_rate=*/16);
    PrintServer* server = server_owned.get();
    int server_node = net.AddNode(std::move(server_owned));
    for (int u = 0; u < 4; ++u) {
      int node = net.AddNode(std::make_unique<PrintClient>(users[static_cast<std::size_t>(u)].name,
                                                           job_lists[static_cast<std::size_t>(u)]));
      net.Connect(node, server_node);
      net.Connect(server_node, node);
    }
    net.Run(20000);
    std::size_t exemptions = 0;
    for (const AuditRecord& record : server->monitor().audit()) {
      if (record.rule.find("trusted-exemption") != std::string::npos) {
        ++exemptions;
      }
    }
    std::printf("%-34s %-10zu %-12zu %-12zu %-10zu\n", "distributed printer-server",
                server->jobs_completed(), server->monitor().denied_count(), exemptions,
                server->spool_backlog());
  }
  std::printf("(the paper's architecture needs neither denials nor exemptions: the\n");
  std::printf(" per-job subject works entirely at the job's own level)\n\n");
}

void BM_PrintServerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    CategoryRegistry::Instance().Reset();
    Network net;
    auto server_owned = std::make_unique<PrintServer>(
        std::vector<PrintUser>{{"u", SecurityLevel(Classification::kSecret)}},
        /*print_rate=*/static_cast<int>(state.range(0)));
    PrintServer* server = server_owned.get();
    int server_node = net.AddNode(std::move(server_owned));
    int node = net.AddNode(std::make_unique<PrintClient>(
        "u", std::vector<std::string>(16, "data data data data")));
    net.Connect(node, server_node);
    net.Connect(server_node, node);
    net.Run(8000);
    benchmark::DoNotOptimize(server->jobs_completed());
  }
  state.SetLabel("rate=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PrintServerThroughput)->Arg(1)->Arg(4)->Arg(16);

void BM_BlpDecision(benchmark::State& state) {
  CategoryRegistry::Instance().Reset();
  BlpMonitor monitor;
  (void)monitor.AddSubject({"s", SecurityLevel(Classification::kSecret),
                            SecurityLevel(Classification::kSecret), false});
  (void)monitor.AddObject({"o", SecurityLevel(Classification::kUnclassified)});
  for (auto _ : state) {
    AccessDecision d = monitor.Check("s", "o", AccessMode::kRead);
    benchmark::DoNotOptimize(d.granted);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlpDecision);

}  // namespace
}  // namespace sep

int main(int argc, char** argv) {
  sep::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
