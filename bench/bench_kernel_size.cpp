// E10 — the SUE's size-and-simplicity claims, measured.
//
//   "the SUE is indeed small and simple. (It occupies about 5K words,
//    including all stack and data space.)"
//   "the SUE performs no scheduling functions ... DMA is permanently
//    excluded ... almost all responsibility for I/O can be removed"
//
// Table 1: kernel footprint (dynamic state words per configuration),
//          entry-point count, and the per-operation costs (machine steps
//          per SWAP round trip, per interrupt forwarding).
// Table 2: the no-DMA ablation — words-per-step of regime-direct device
//          I/O vs kernel-mediated word transfer (what a conventional
//          kernel's mediated I/O path costs on the same machine).
// Benchmarks: raw step cost of each kernel entry path.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/kernel_system.h"
#include "src/machine/devices.h"

namespace sep {
namespace {

void PrintFootprintTable() {
  std::printf("== E10 Table 1: separation-kernel footprint ==\n");
  std::printf("%-24s %-18s %-14s\n", "configuration", "kernel state words", "entry points");
  struct Config {
    const char* name;
    int regimes;
    int channels;
  };
  for (const Config& c : {Config{"2 regimes, 0 channels", 2, 0},
                          Config{"4 regimes, 3 channels", 4, 3},
                          Config{"8 regimes, 8 channels", 8, 8}}) {
    KernelConfig config;
    for (int r = 0; r < c.regimes; ++r) {
      config.regimes.push_back({"r" + std::to_string(r),
                                static_cast<PhysAddr>(r) * 1024, 1024, 0, {}});
    }
    for (int ch = 0; ch < c.channels; ++ch) {
      config.channels.push_back(
          {"ch" + std::to_string(ch), ch % c.regimes, (ch + 1) % c.regimes, 16});
    }
    std::printf("%-24s %-18u %-14d\n", c.name, RequiredKernelWords(config),
                SeparationKernel::EntryPointCount());
  }
  std::printf("(SUE: ~5K words total incl. code on a PDP-11/34; our dynamic state is\n");
  std::printf(" tens to hundreds of words — the kernel stores NO policy, only contexts,\n");
  std::printf(" pending masks and channel rings)\n\n");
}

void PrintOperationCostTable() {
  std::printf("== E10 Table 1b: per-operation machine-step costs ==\n");

  // SWAP round trip: two regimes ping-ponging; steps per full rotation.
  {
    SystemBuilder builder;
    (void)builder.AddRegime("a", 256, "LOOP: TRAP 0\n      BR LOOP\n");
    (void)builder.AddRegime("b", 256, "LOOP: TRAP 0\n      BR LOOP\n");
    auto sys = builder.Build();
    (*sys)->Run(1000);
    const double steps_per_swap = 1000.0 / static_cast<double>((*sys)->kernel().SwapCount());
    std::printf("  SWAP + dispatch: %.2f machine steps each\n", steps_per_swap);
  }

  // Interrupt forwarding latency: inject a word, count steps until the
  // regime's handler has stored it.
  {
    SystemBuilder builder;
    int slu = builder.AddDevice(std::make_unique<SerialLine>("slu", 16, 4, 1));
    (void)builder.AddRegime("drv", 256, R"(
        .EQU DEV, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4
        MOV #DEV, R4
        MOV #0x40, (R4)
LOOP:   TRAP 6
        BR LOOP
HANDLER:
        MOV #DEV, R4
        MOV 1(R4), R2
        MOV R2, @0x60
        TRAP 5
)", {slu});
    auto sys = builder.Build();
    (*sys)->Run(20);  // let the driver install its vector and AWAIT
    (*sys)->machine().device(slu).InjectInput('X');
    const RegimeConfig& regime = (*sys)->kernel().config().regimes[0];
    int steps = 0;
    while ((*sys)->machine().memory().Read(regime.mem_base + 0x60) != 'X' && steps < 100) {
      (*sys)->machine().Step();
      ++steps;
    }
    std::printf("  interrupt -> handler-completed: %d machine steps\n", steps);
  }
  std::printf("\n");
}

void PrintIoAblationTable() {
  std::printf("== E10 Table 2: no-DMA / direct device register ablation ==\n");

  // Direct I/O: regime writes its own device registers; printer at 0xE000.
  double direct_words_per_step = 0;
  {
    SystemBuilder builder;
    int lp = builder.AddDevice(std::make_unique<LinePrinter>("lp", 16, 4, /*print_delay=*/1));
    (void)builder.AddRegime("writer", 256, R"(
        .EQU DEV, 0xE000
START:  MOV #DEV, R4
        CLR R3
LOOP:   MOV (R4), R2    ; LPS
        BIT #0x80, R2
        BEQ LOOP        ; wait READY
        MOV R3, 1(R4)   ; LPB
        INC R3
        BR LOOP
)", {lp});
    auto sys = builder.Build();
    std::size_t steps = (*sys)->Run(2000);
    std::size_t words = 0;
    words = (*sys)->machine().device(lp).DrainOutput().size();
    direct_words_per_step = static_cast<double>(words) / static_cast<double>(steps);
    std::printf("  regime-direct device I/O : %.3f words/step\n", direct_words_per_step);
  }

  // Kernel-mediated transfer: the same words must instead flow through a
  // kernel entry (channel SEND + RECV), as a conventional kernel's mediated
  // I/O would force.
  double mediated_words_per_step = 0;
  {
    SystemBuilder builder;
    (void)builder.AddRegime("writer", 256, R"(
START:  CLR R3
LOOP:   MOV R3, R1
        CLR R0
        TRAP 1          ; SEND
        TST R0
        BEQ YIELD
        INC R3
        BR LOOP
YIELD:  TRAP 0
        BR LOOP
)");
    (void)builder.AddRegime("driver", 256, R"(
START:  CLR R5
LOOP:   CLR R0
        TRAP 2          ; RECV
        TST R0
        BEQ YIELD
        INC R5
        MOV R5, @0x40
        BR LOOP
YIELD:  TRAP 0
        BR LOOP
)");
    builder.AddChannel("io", 0, 1, 16);
    auto sys = builder.Build();
    std::size_t steps = (*sys)->Run(2000);
    const Word words = (*sys)->machine().memory().Read(
        (*sys)->kernel().config().regimes[1].mem_base + 0x40);
    mediated_words_per_step = static_cast<double>(words) / static_cast<double>(steps);
    std::printf("  kernel-mediated transfer : %.3f words/step\n", mediated_words_per_step);
  }
  if (mediated_words_per_step > 0) {
    std::printf("  direct/mediated ratio    : %.1fx\n",
                direct_words_per_step / mediated_words_per_step);
  }
  std::printf("(the SUE design keeps I/O out of the kernel: device registers are\n");
  std::printf(" ordinary protected memory, so the fast path needs no kernel entry)\n\n");
}

void BM_SwapPingPong(benchmark::State& state) {
  SystemBuilder builder;
  (void)builder.AddRegime("a", 256, "LOOP: TRAP 0\n      BR LOOP\n");
  (void)builder.AddRegime("b", 256, "LOOP: TRAP 0\n      BR LOOP\n");
  auto sys = builder.Build();
  for (auto _ : state) {
    (*sys)->machine().Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwapPingPong);

void BM_InterruptForwarding(benchmark::State& state) {
  SystemBuilder builder;
  int clk = builder.AddDevice(std::make_unique<LineClock>("clk", 20, 6, 3));
  (void)builder.AddRegime("drv", 256, R"(
        .EQU CLK, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4
        MOV #CLK, R4
        MOV #0x40, (R4)
LOOP:   TRAP 6
        BR LOOP
HANDLER:
        MOV #CLK, R4
        MOV #0x40, (R4)
        TRAP 5
)", {clk});
  auto sys = builder.Build();
  for (auto _ : state) {
    (*sys)->machine().Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterruptForwarding);

void BM_KernelBoot(benchmark::State& state) {
  for (auto _ : state) {
    SystemBuilder builder;
    (void)builder.AddRegime("a", 256, "LOOP: TRAP 0\n      BR LOOP\n");
    (void)builder.AddRegime("b", 256, "LOOP: TRAP 0\n      BR LOOP\n");
    auto sys = builder.Build();
    benchmark::DoNotOptimize((*sys)->kernel().CurrentRegime());
  }
}
BENCHMARK(BM_KernelBoot);

}  // namespace
}  // namespace sep

int main(int argc, char** argv) {
  sep::PrintFootprintTable();
  sep::PrintOperationCostTable();
  sep::PrintIoAblationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
