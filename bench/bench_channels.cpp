// Channel-fabric throughput: words/second moved producer -> consumer over
// each kernel transport (classic one-word-per-trap SEND/RECV, batched
// SENDV/RECVV scatter-gather, shared-ring doorbell fabric) and across a
// node boundary through the reliable tunnel (default framing vs the
// Batched() preset). items/sec is DELIVERED words per second, read back
// from a counter the consumer guest maintains in its own partition — not
// steps, so a transport that spins without moving data scores zero.
//
// The dimensionless ratios (channel_batch_speedup, channel_ring_speedup,
// channel_xnode_batch_speedup in BENCH_*.json) are the design claims: a
// batch amortizes the kernel-call slow path over up to 64 words, so the
// batched transports must beat one-trap-per-word by a wide, host-independent
// margin.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/core/kernel_system.h"
#include "src/distributed/reliable.h"

namespace sep {
namespace {

// Every guest pair follows the same cooperative protocol: the producer
// pushes until the transport exerts backpressure (status 0), then SWAPs;
// the consumer drains until empty, then SWAPs. The consumer counts
// delivered words in a two-word counter at 0x200/0x201 (INC sets Z on
// wrap, so BNE skips the high-word carry).

// One SEND trap per word; the stall (R0 = 0) is the yield signal.
constexpr char kClassicProducer[] = R"(
PLOOP:  MOV #0x1234, R1
        CLR R0
        TRAP 1          ; SEND one word
        TST R0
        BNE PLOOP       ; accepted: keep pushing
        TRAP 0          ; full: let the consumer drain
        BR PLOOP
)";

// One RECV trap per word; every delivered word bumps the counter.
constexpr char kClassicConsumer[] = R"(
CLOOP:  CLR R0
        TRAP 2          ; RECV one word
        TST R0
        BEQ YIELD
        INC @0x200
        BNE CLOOP
        INC @0x201      ; carry into the high word
        BR CLOOP
YIELD:  TRAP 0
        BR CLOOP
)";

// One SENDV moves a full 64-word extent (the payload content is whatever
// sits at address 0 — the transport cost is what's under test, and the
// kernel copies it regardless of value).
constexpr char kBatchedProducer[] = R"(
PLOOP:  CLR R0
        MOV #TBL, R1
        MOV #1, R2
        TRAP 9          ; SENDV: 64 words, one trap
        TST R0
        BNE PLOOP
        TRAP 0          ; all-or-nothing stall: yield
        BR PLOOP
TBL:    .WORD 0x0
        .WORD 64
)";

// One RECVV gathers the whole batch. The channel capacity equals the batch
// size, so a non-empty ring always holds exactly 64 words and each counter
// tick is one full batch.
constexpr char kBatchedConsumer[] = R"(
CLOOP:  CLR R0
        MOV #TBL, R1
        MOV #1, R2
        TRAP 10         ; RECVV: up to 64 words, one trap
        TST R0
        BEQ YIELD
        INC @0x200      ; one tick per 64-word batch
        BNE CLOOP
        INC @0x201
        BR CLOOP
YIELD:  TRAP 0
        BR CLOOP
TBL:    .WORD 0x300
        .WORD 64
)";

// Zero-copy path: the window is written once, then every RINGPUT republishes
// 64 words by advancing the tail — the kernel never touches the payload.
constexpr char kRingProducer[] = R"(
; sepcheck: shared-ring 0 producer-only tail advance + read-only consumer window keep the object one-directional
        MOV #64, R5
        MOV #0x8000, R4
FILL:   MOV R5, (R4)
        INC R4
        DEC R5
        BNE FILL
PLOOP:  CLR R0
        MOV #64, R1
        TRAP 11         ; RINGPUT: publish 64 words
        TST R0
        BNE PLOOP
        TRAP 0          ; ring still full: yield
        BR PLOOP
)";

// RINGSTAT polls occupancy, RINGGET releases it. Full-capacity batches keep
// head congruent to 0 mod 64, so occupancy is always 0 or 64.
constexpr char kRingConsumer[] = R"(
CLOOP:  CLR R0
        TRAP 13         ; RINGSTAT -> R0 = occupancy (0 or 64)
        TST R0
        BEQ YIELD
        MOV R0, R1
        CLR R0
        TRAP 12         ; RINGGET: release the batch
        INC @0x200      ; one tick per 64-word batch
        BNE CLOOP
        INC @0x201
        BR CLOOP
YIELD:  TRAP 0
        BR CLOOP
)";

enum class Fabric { kClassic, kBatched, kSharedRing };

std::unique_ptr<KernelizedSystem> BuildPair(Fabric fabric) {
  SystemBuilder builder;
  const char* producer = nullptr;
  const char* consumer = nullptr;
  switch (fabric) {
    case Fabric::kClassic:
      producer = kClassicProducer;
      consumer = kClassicConsumer;
      break;
    case Fabric::kBatched:
      producer = kBatchedProducer;
      consumer = kBatchedConsumer;
      break;
    case Fabric::kSharedRing:
      producer = kRingProducer;
      consumer = kRingConsumer;
      break;
  }
  (void)builder.AddRegime("producer", 1024, producer);
  (void)builder.AddRegime("consumer", 1024, consumer);
  if (fabric == Fabric::kSharedRing) {
    builder.AddSharedRing("fabric", /*producer=*/0, /*consumer=*/1, /*capacity=*/64);
  } else {
    builder.AddChannel("fabric", /*sender=*/0, /*receiver=*/1, /*capacity=*/64);
  }
  auto sys = builder.Build();
  if (!sys.ok()) {
    std::abort();
  }
  return std::move(sys.value());
}

// Delivered-word count from the consumer's two-word counter. The batched
// transports tick once per 64-word batch.
std::uint64_t DeliveredWords(KernelizedSystem& sys, std::uint64_t words_per_tick) {
  const PhysAddr base = sys.kernel().config().regimes[1].mem_base;
  const std::uint64_t lo = sys.machine().memory().Read(base + 0x200);
  const std::uint64_t hi = sys.machine().memory().Read(base + 0x201);
  return ((hi << 16) | lo) * words_per_tick;
}

void RunFabricBench(benchmark::State& state, Fabric fabric, std::uint64_t words_per_tick) {
  auto sys = BuildPair(fabric);
  sys->Run(20000);  // reach steady state with warm predecode caches
  const std::uint64_t before = DeliveredWords(*sys, words_per_tick);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->Run(4096));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(DeliveredWords(*sys, words_per_tick) - before));
}

void BM_ChannelClassicWords(benchmark::State& state) {
  RunFabricBench(state, Fabric::kClassic, 1);
}
BENCHMARK(BM_ChannelClassicWords);

void BM_ChannelBatchedWords(benchmark::State& state) {
  RunFabricBench(state, Fabric::kBatched, 64);
}
BENCHMARK(BM_ChannelBatchedWords);

void BM_ChannelSharedRingWords(benchmark::State& state) {
  RunFabricBench(state, Fabric::kSharedRing, 64);
}
BENCHMARK(BM_ChannelSharedRingWords);

// --- cross-node: reliable tunnel framing --------------------------------------

// Floods its out-port every step: the tunnel's own window/segment framing is
// the bottleneck, not the feed.
class FloodSource : public Process {
 public:
  std::string name() const override { return "flood-source"; }
  void Step(NodeContext& ctx) override {
    while (ctx.Send(0, static_cast<Word>(next_))) {
      ++next_;
    }
  }

 private:
  std::uint32_t next_ = 0;
};

// Counts and discards everything that arrives.
class CountingSink : public Process {
 public:
  std::string name() const override { return "counting-sink"; }
  void Step(NodeContext& ctx) override {
    while (std::optional<Word> w = ctx.Receive(0)) {
      benchmark::DoNotOptimize(*w);
      ++count_;
    }
  }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

// Words per second end-to-end through a spliced reliable tunnel on a clean
// wire. The network simulation is deterministic, so the plain/batched RATIO
// is a pure design property of the framing (segment size x window depth),
// stable across hosts — that ratio is the guarded channel_xnode_batch_speedup.
void RunTunnelBench(benchmark::State& state, const ReliableConfig& config) {
  Network net;
  const int src = net.AddNode(std::make_unique<FloodSource>());
  const int dst = net.AddNode(std::make_unique<CountingSink>());
  (void)SpliceReliableTunnel(net, src, dst, config, /*capacity=*/64, /*latency=*/2);
  net.Run(2000);  // fill the pipeline
  const auto& sink = static_cast<const CountingSink&>(net.process(dst));
  const std::uint64_t before = sink.count();
  for (auto _ : state) {
    net.Run(1024);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sink.count() - before));
}

void BM_ChannelTunnelPlainWords(benchmark::State& state) {
  RunTunnelBench(state, ReliableConfig{});
}
BENCHMARK(BM_ChannelTunnelPlainWords);

void BM_ChannelTunnelBatchedWords(benchmark::State& state) {
  RunTunnelBench(state, ReliableConfig::Batched());
}
BENCHMARK(BM_ChannelTunnelBatchedWords);

}  // namespace
}  // namespace sep

BENCHMARK_MAIN();
