// E11 — indistinguishability and the cost of sharing the processor.
//
// Table: per-workload comparison of the distributed deployment (one private
// machine per guest) against the kernelized deployment (one shared machine):
// trace equality and the wall-clock (machine-step) overhead of sharing.
// Benchmarks: lockstep round throughput for each deployment style.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/indistinguishability.h"
#include "src/core/kernel_system.h"

namespace sep {
namespace {

constexpr char kEchoPlusOne[] = R"(
        .EQU DEV, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4
        MOV #DEV, R4
        MOV #0x40, (R4)
LOOP:   TRAP 6
        BR LOOP
HANDLER:
        MOV #DEV, R4
        MOV 1(R4), R2
        INC R2
WAITTX: MOV 2(R4), R3
        BIT #0x80, R3
        BEQ WAITTX
        MOV R2, 3(R4)
        TRAP 5
)";

constexpr char kAccumulator[] = R"(
        .EQU DEV, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4
        MOV #DEV, R4
        MOV #0x40, (R4)
LOOP:   TRAP 6
        BR LOOP
HANDLER:
        MOV #DEV, R4
        MOV 1(R4), R2
        ADD SUM, R2
        MOV R2, @SUM
WAITTX: MOV 2(R4), R3
        BIT #0x80, R3
        BEQ WAITTX
        MOV R2, 3(R4)
        TRAP 5
SUM:    .WORD 0
)";

IndistConfig MakeWorkload(int guests, int words_per_guest) {
  IndistConfig config;
  for (int g = 0; g < guests; ++g) {
    config.guests.push_back(
        {"guest" + std::to_string(g), g % 2 == 0 ? kEchoPlusOne : kAccumulator, 512});
    std::vector<Word> stimulus;
    for (int w = 0; w < words_per_guest; ++w) {
      stimulus.push_back(static_cast<Word>(g * 100 + w));
    }
    config.stimuli.push_back({g, stimulus});
  }
  return config;
}

void PrintTable() {
  std::printf("== E11 Table: distributed vs kernelized deployments ==\n");
  std::printf("%-22s %-10s %-12s %-12s %-10s\n", "workload", "traces", "dist rounds",
              "kern rounds", "overhead");
  for (int guests : {1, 2, 4}) {
    IndistConfig config = MakeWorkload(guests, 8);
    Result<IndistResult> result = RunIndistinguishability(config);
    if (!result.ok()) {
      std::printf("ERROR: %s\n", result.error().c_str());
      continue;
    }
    std::printf("%d guests x 8 words     %-10s %-12zu %-12zu %.2fx\n", guests,
                result->Indistinguishable() ? "EQUAL" : "DIFFER", result->distributed_rounds,
                result->kernelized_rounds,
                static_cast<double>(result->kernelized_rounds) /
                    static_cast<double>(result->distributed_rounds));
  }
  std::printf("(equal traces at every scale: a regime cannot distinguish the shared\n");
  std::printf(" machine from a private one; only elapsed time differs)\n\n");
}

void BM_DistributedRound(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    IndistConfig small = MakeWorkload(static_cast<int>(state.range(0)), 4);
    small.max_rounds = 2000;
    state.ResumeTiming();
    Result<IndistResult> result = RunIndistinguishability(small);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetLabel(std::to_string(state.range(0)) + " guests");
}
BENCHMARK(BM_DistributedRound)->Arg(1)->Arg(2)->Arg(4);

void BM_SharedMachineStep(benchmark::State& state) {
  SystemBuilder builder;
  for (int g = 0; g < 4; ++g) {
    (void)builder.AddRegime("g" + std::to_string(g), 256,
                            "LOOP: INC R3\n      TRAP 0\n      BR LOOP\n");
  }
  auto sys = builder.Build();
  for (auto _ : state) {
    (*sys)->machine().Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedMachineStep);

}  // namespace
}  // namespace sep

int main(int argc, char** argv) {
  sep::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
