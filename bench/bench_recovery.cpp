// Recovery-cost benchmark: what a checkpoint interval buys and costs.
//
// Each BM_RecoveryChaos iteration sweeps a FIXED pool of seeded crash
// episodes over a recoverable tunnel (src/distributed/recoverable.h): a
// word stream crosses the four-node pipeline while both crashable endpoints
// die under a NodeFaultPlan and restart from their newest checkpoint. The
// headline counter is `recovery_ticks_p99` — the 99th percentile of ticks
// of forward progress a crash discards (crashed_at - last_checkpoint_at),
// pooled over every recovery in the sweep. The simulation is fully
// deterministic, so the counter is a pure design property (checkpoint
// cadence vs rollback depth), independent of host speed — which is what
// lets bench_report guard it across machines.
//
// The arg is the checkpoint interval in node quanta: p99 rollback depth
// scales with it, throughput pays for shorter intervals with more
// checkpoint serializations.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "src/distributed/faults.h"
#include "src/distributed/recoverable.h"

namespace sep {
namespace {

class WordSource : public Process {
 public:
  explicit WordSource(int count) {
    words_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      words_.push_back(static_cast<Word>(i * 37 + 11));
    }
  }
  std::string name() const override { return "word-source"; }
  void Step(NodeContext& ctx) override {
    if (next_ < words_.size() && ctx.Send(0, words_[next_])) {
      ++next_;
    }
  }
  bool Finished() const override { return next_ >= words_.size(); }
  const std::vector<Word>& words() const { return words_; }

 private:
  std::vector<Word> words_;
  std::size_t next_ = 0;
};

class WordSink : public Process {
 public:
  std::string name() const override { return "word-sink"; }
  void Step(NodeContext& ctx) override {
    while (std::optional<Word> w = ctx.Receive(0)) {
      got_.push_back(*w);
    }
  }
  const std::vector<Word>& got() const { return got_; }

 private:
  std::vector<Word> got_;
};

struct Episode {
  std::size_t delivered = 0;
  bool intact = false;
  std::vector<Tick> lost_ticks;  // one sample per recovery
};

Episode RunEpisode(Tick checkpoint_interval, std::uint64_t seed, int words) {
  Network net;
  const int src = net.AddNode(std::make_unique<WordSource>(words));
  const int dst = net.AddNode(std::make_unique<WordSink>());
  TunnelRecoveryOptions recovery;
  recovery.checkpoint_interval = checkpoint_interval;
  const RecoverableTunnel tunnel =
      SpliceRecoverableTunnel(net, src, dst, {}, recovery, /*capacity=*/64, /*latency=*/2);

  NodeFaultSpec spec;
  spec.crash_percent = 2;
  spec.max_crashes = 2;
  spec.min_restart_delay = 4;
  spec.max_restart_delay = 24;
  net.InjectNodeFaults(tunnel.ingress_node, spec, seed);
  net.InjectNodeFaults(tunnel.egress_node, spec, seed ^ 0xFEEDULL);

  const auto& sink = static_cast<WordSink&>(net.process(dst));
  const auto& source = static_cast<WordSource&>(net.process(src));
  for (int burst = 0; burst < 30 && sink.got().size() < source.words().size(); ++burst) {
    net.Run(2000);
  }

  Episode episode;
  episode.delivered = sink.got().size();
  episode.intact = sink.got() == source.words();
  for (const Network::NodeRecoveryEvent& event : net.recovery_log()) {
    episode.lost_ticks.push_back(event.lost_ticks);
  }
  return episode;
}

void BM_RecoveryChaos(benchmark::State& state) {
  const Tick interval = static_cast<Tick>(state.range(0));
  constexpr int kEpisodes = 64;
  constexpr int kWords = 40;

  std::vector<Tick> pooled;
  std::size_t delivered = 0;
  std::uint64_t recoveries = 0;
  bool all_intact = true;
  for (auto _ : state) {
    pooled.clear();
    delivered = 0;
    recoveries = 0;
    for (int ep = 0; ep < kEpisodes; ++ep) {
      const Episode episode = RunEpisode(interval, 0x5EED0000ULL + ep, kWords);
      delivered += episode.delivered;
      recoveries += episode.lost_ticks.size();
      all_intact = all_intact && episode.intact;
      pooled.insert(pooled.end(), episode.lost_ticks.begin(), episode.lost_ticks.end());
    }
    benchmark::DoNotOptimize(delivered);
  }
  if (!all_intact) {
    state.SkipWithError("a recovery episode lost data");
    return;
  }

  std::sort(pooled.begin(), pooled.end());
  const double p99 =
      pooled.empty()
          ? 0.0
          : static_cast<double>(pooled[static_cast<std::size_t>(
                std::ceil(0.99 * static_cast<double>(pooled.size())) - 1)]);
  state.counters["recovery_ticks_p99"] = p99;
  state.counters["recoveries"] = static_cast<double>(recoveries);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * delivered);
}
BENCHMARK(BM_RecoveryChaos)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sep

BENCHMARK_MAIN();
