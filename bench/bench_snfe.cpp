// E1 + E9 — the SNFE: topology audit and the censor's covert-channel
// bandwidth reduction ("a fairly simple censor can reduce the bandwidth
// available for illicit communication over the bypass to an acceptable
// level").
//
// Table 1 (E1): the declared line set and the reachability matrix.
// Table 2 (E9): covert bandwidth (bits delivered / 1000 steps) per leak
//               encoding per censor strictness, with legitimate goodput.
// Benchmarks: end-to-end pipeline throughput per strictness.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/components/snfe.h"

namespace sep {
namespace {

void PrintTopologyTable() {
  Network net;
  SnfeTopology topo = BuildSnfe(net, CensorStrictness::kSyntax);
  std::printf("== E1 Table 1: SNFE declared lines (the paper's figure) ==\n");
  for (const auto& edge : net.edges()) {
    std::printf("  %-16s node%d -> node%d\n", edge.name.c_str(), edge.from, edge.to);
  }
  const char* names[] = {"host", "red", "crypto", "censor", "black", "network"};
  int ids[] = {topo.host, topo.red, topo.crypto, topo.censor, topo.black, topo.network};
  std::printf("reachability matrix (row can influence column):\n        ");
  for (const char* n : names) {
    std::printf("%-8s", n);
  }
  std::printf("\n");
  for (int i = 0; i < 6; ++i) {
    std::printf("%-8s", names[i]);
    for (int j = 0; j < 6; ++j) {
      std::printf("%-8s", i == j ? "-" : (net.Reachable(ids[i], ids[j]) ? "yes" : "."));
    }
    std::printf("\n");
  }
  std::printf("(no red->black line exists; the only paths run through crypto/censor)\n\n");
}

struct CovertResult {
  std::size_t bits_delivered;
  std::size_t packets_delivered;
  Tick steps;
};

CovertResult RunCovert(LeakMode mode, CensorStrictness strictness) {
  std::vector<int> secret;
  Rng rng(77);
  for (int i = 0; i < 48; ++i) {
    secret.push_back(static_cast<int>(rng.NextBelow(2)));
  }
  Network net;
  SnfeTopology topo = BuildSnfe(net, strictness, /*evil=*/true, secret, mode,
                                static_cast<int>(secret.size()), 0xC0FFEE, /*censor_gap=*/8);
  std::size_t steps = net.Run(20000);
  auto& sink = static_cast<NetworkSink&>(net.process(topo.network));
  std::vector<int> decoded;
  switch (mode) {
    case LeakMode::kFlagEncoding:
      decoded = sink.DecodeFlagBits();
      break;
    case LeakMode::kLengthEncoding:
      decoded = sink.DecodeLengthBits();
      break;
    case LeakMode::kTimingEncoding:
      decoded = sink.DecodeTimingBits();
      break;
  }
  return {MatchingPrefixBits(secret, decoded), sink.packets().size(), steps};
}

const char* LeakModeName(LeakMode mode) {
  switch (mode) {
    case LeakMode::kFlagEncoding:
      return "flag-field";
    case LeakMode::kLengthEncoding:
      return "length-parity";
    case LeakMode::kTimingEncoding:
      return "timing";
  }
  return "?";
}

void PrintCovertTable() {
  std::printf("== E9 Table 2: covert bypass bandwidth vs censor strictness ==\n");
  std::printf("%-14s %-14s %-12s %-16s %-10s\n", "leak encoding", "censor", "bits leaked",
              "bits/1000 steps", "goodput");
  for (LeakMode mode :
       {LeakMode::kFlagEncoding, LeakMode::kLengthEncoding, LeakMode::kTimingEncoding}) {
    for (CensorStrictness strictness :
         {CensorStrictness::kOff, CensorStrictness::kSyntax, CensorStrictness::kCanonical,
          CensorStrictness::kRateLimited}) {
      CovertResult r = RunCovert(mode, strictness);
      const double rate = r.steps == 0 ? 0.0
                                       : 1000.0 * static_cast<double>(r.bits_delivered) /
                                             static_cast<double>(r.steps);
      std::printf("%-14s %-14s %-12zu %-16.2f %zu pkts\n", LeakModeName(mode),
                  CensorStrictnessName(strictness), r.bits_delivered, rate,
                  r.packets_delivered);
    }
  }
  std::printf("(canonicalization zeroes field channels; rate limiting flattens timing;\n");
  std::printf(" goodput survives every strictness level)\n\n");
}

void BM_SnfePipeline(benchmark::State& state) {
  const auto strictness = static_cast<CensorStrictness>(state.range(0));
  for (auto _ : state) {
    Network net;
    SnfeTopology topo = BuildSnfe(net, strictness, false, {}, {}, 32);
    net.Run(12000);
    auto& sink = static_cast<NetworkSink&>(net.process(topo.network));
    benchmark::DoNotOptimize(sink.packets().size());
  }
  state.SetLabel(CensorStrictnessName(strictness));
}
BENCHMARK(BM_SnfePipeline)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_CensorChecks(benchmark::State& state) {
  Censor censor(CensorStrictness::kCanonical);
  // Feed frames through a minimal network to measure per-frame cost.
  for (auto _ : state) {
    Network net;
    struct Feeder : Process {
      FrameWriter writer;
      int n = 0;
      std::string name() const override { return "feeder"; }
      void Step(NodeContext& ctx) override {
        if (n < 64 && writer.idle()) {
          writer.Queue(Frame{kPktHdr, {static_cast<Word>(n % 8), 32, 0}});
          ++n;
        }
        writer.Flush(ctx, 0);
      }
    };
    struct Drain : Process {
      std::string name() const override { return "drain"; }
      void Step(NodeContext& ctx) override {
        while (ctx.Receive(0)) {
        }
      }
    };
    int f = net.AddNode(std::make_unique<Feeder>());
    int c = net.AddNode(std::make_unique<Censor>(CensorStrictness::kCanonical));
    int d = net.AddNode(std::make_unique<Drain>());
    net.Connect(f, c);
    net.Connect(c, d);
    net.Run(600);
    benchmark::DoNotOptimize(net.now());
  }
}
BENCHMARK(BM_CensorChecks);

}  // namespace
}  // namespace sep

int main(int argc, char** argv) {
  sep::PrintTopologyTable();
  sep::PrintCovertTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
