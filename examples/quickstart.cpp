// Quickstart: build a two-regime separation-kernel system, run it, and
// check the six Proof-of-Separability conditions.
//
//   $ ./build/examples/quickstart
//
// This walks the complete public API surface in ~100 lines:
//   1. SystemBuilder — declare regimes (SM-11 assembly), devices, channels;
//   2. KernelizedSystem — run the shared machine under the kernel;
//   3. CheckSeparability — verify the kernel provides isolation.
#include <cstdio>

#include "src/core/kernel_system.h"
#include "src/core/separability.h"

namespace {

// RED: counts up and streams the counter to BLACK over the kernel channel.
constexpr char kRedProgram[] = R"(
START:  CLR R3
LOOP:   INC R3
        MOV R3, R1      ; word to send
        CLR R0          ; channel 0
        TRAP 1          ; SEND (drop on backpressure)
        TRAP 0          ; SWAP: yield the processor
        CMP #20, R3
        BNE LOOP
        TRAP 7          ; HALT: this regime is done
)";

// BLACK: receives words and accumulates them at partition address 0x80.
constexpr char kBlackProgram[] = R"(
START:  CLR R5          ; running sum
LOOP:   CLR R0          ; channel 0
        TRAP 2          ; RECV -> R0 status, R1 word
        TST R0
        BEQ YIELD
        ADD R1, R5
        MOV R5, @0x80
        BR LOOP
YIELD:  TRAP 0          ; SWAP
        BR LOOP
)";

}  // namespace

int main() {
  using namespace sep;

  // 1. Declare the system: two regimes, one one-directional channel.
  SystemBuilder builder;
  Result<int> red = builder.AddRegime("red", /*mem_words=*/512, kRedProgram);
  Result<int> black = builder.AddRegime("black", /*mem_words=*/512, kBlackProgram);
  if (!red.ok() || !black.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n", (!red.ok() ? red : black).error().c_str());
    return 1;
  }
  builder.AddChannel("red->black", *red, *black, /*capacity=*/8);

  Result<std::unique_ptr<KernelizedSystem>> system = builder.Build();
  if (!system.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", system.error().c_str());
    return 1;
  }

  // 2. Run the shared machine until RED halts (BLACK idles forever).
  (*system)->Run(5000);
  const auto& regimes = (*system)->kernel().config().regimes;
  const Word sum = (*system)->machine().memory().Read(regimes[1].mem_base + 0x80);
  std::printf("black's accumulated sum: %u (expected 1+2+...+20 = 210)\n", sum);
  std::printf("kernel stats: %llu swaps, %llu kernel calls\n",
              static_cast<unsigned long long>((*system)->kernel().SwapCount()),
              static_cast<unsigned long long>((*system)->kernel().KernelCallCount()));

  // 3. Verify separability on the wire-cut variant of the same system
  //    (Section 4 of the paper: cut the channels, prove total isolation).
  SystemBuilder cut_builder;
  (void)cut_builder.AddRegime("red", 512, kRedProgram);
  (void)cut_builder.AddRegime("black", 512, kBlackProgram);
  cut_builder.AddChannel("red->black", 0, 1, 8);
  cut_builder.CutChannels(true);
  Result<std::unique_ptr<KernelizedSystem>> cut_system = cut_builder.Build();
  if (!cut_system.ok()) {
    std::fprintf(stderr, "boot (cut) failed: %s\n", cut_system.error().c_str());
    return 1;
  }

  CheckerOptions options;
  options.trace_steps = 600;
  SeparabilityReport report = CheckSeparability(**cut_system, options);
  std::printf("proof of separability: %s\n", report.Summary().c_str());
  return report.Passed() ? 0 : 2;
}
