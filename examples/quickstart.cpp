// Quickstart: statically certify a two-regime separation-kernel system,
// run it, and check the six Proof-of-Separability conditions.
//
//   $ ./build/examples/quickstart
//
// This walks the complete public API surface in ~100 lines:
//   1. sepcheck::AnalyzeSystem — certify the guest binaries before running;
//   2. SystemBuilder — declare regimes (SM-11 assembly), devices, channels;
//   3. KernelizedSystem — run the shared machine under the kernel;
//   4. CheckSeparability — verify the kernel provides isolation.
//
// The guest sources (RED streams a counter to BLACK over the kernel
// channel; BLACK accumulates at partition address 0x80) live in
// src/sepcheck/guest_corpus.h so the analyzer, the tests and this example
// all agree on what the programs are.
#include <cstdio>

#include "src/core/kernel_system.h"
#include "src/core/separability.h"
#include "src/sepcheck/analyzer.h"
#include "src/sepcheck/guest_corpus.h"

int main() {
  using namespace sep;

  // 1. Statically certify the guests under the deployed (uncut) topology.
  //    The shared channel ring is flagged by the syntactic pass and
  //    discharged by the disjointness annotation in the RED source — the
  //    paper's Section 4 wire-cutting argument, run by a machine.
  sepcheck::SystemSpec spec;
  spec.name = "quickstart";
  spec.regimes = {{"red", sepcheck::kQuickstartRed, 512, 0},
                  {"black", sepcheck::kQuickstartBlack, 512, 0}};
  ChannelConfig wire;
  wire.name = "red->black";
  wire.sender = 0;
  wire.receiver = 1;
  wire.capacity = 8;
  spec.channels = {wire};
  spec.cut_channels = false;
  Result<sepcheck::SystemAnalysis> analysis = sepcheck::AnalyzeSystem(spec);
  if (!analysis.ok()) {
    std::fprintf(stderr, "sepcheck failed: %s\n", analysis.error().c_str());
    return 1;
  }
  std::printf("%s", FormatFindings(analysis->findings, /*json=*/false).c_str());
  std::printf("static certification: %s\n",
              analysis->certified ? "CERTIFIED" : "FLAGGED");
  if (!analysis->certified) {
    return 2;
  }

  // 2. Declare the system: two regimes, one one-directional channel.
  SystemBuilder builder;
  Result<int> red =
      builder.AddRegime("red", /*mem_words=*/512, sepcheck::kQuickstartRed);
  Result<int> black =
      builder.AddRegime("black", /*mem_words=*/512, sepcheck::kQuickstartBlack);
  if (!red.ok() || !black.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n", (!red.ok() ? red : black).error().c_str());
    return 1;
  }
  builder.AddChannel("red->black", *red, *black, /*capacity=*/8);

  Result<std::unique_ptr<KernelizedSystem>> system = builder.Build();
  if (!system.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", system.error().c_str());
    return 1;
  }

  // 3. Run the shared machine until RED halts (BLACK idles forever).
  (*system)->Run(5000);
  const auto& regimes = (*system)->kernel().config().regimes;
  const Word sum = (*system)->machine().memory().Read(regimes[1].mem_base + 0x80);
  std::printf("black's accumulated sum: %u (expected 1+2+...+20 = 210)\n", sum);
  std::printf("kernel stats: %llu swaps, %llu kernel calls\n",
              static_cast<unsigned long long>((*system)->kernel().SwapCount()),
              static_cast<unsigned long long>((*system)->kernel().KernelCallCount()));

  // 4. Verify separability on the wire-cut variant of the same system
  //    (Section 4 of the paper: cut the channels, prove total isolation).
  SystemBuilder cut_builder;
  (void)cut_builder.AddRegime("red", 512, sepcheck::kQuickstartRed);
  (void)cut_builder.AddRegime("black", 512, sepcheck::kQuickstartBlack);
  cut_builder.AddChannel("red->black", 0, 1, 8);
  cut_builder.CutChannels(true);
  Result<std::unique_ptr<KernelizedSystem>> cut_system = cut_builder.Build();
  if (!cut_system.ok()) {
    std::fprintf(stderr, "boot (cut) failed: %s\n", cut_system.error().c_str());
    return 1;
  }

  CheckerOptions options;
  options.trace_steps = 600;
  SeparabilityReport report = CheckSeparability(**cut_system, options);
  std::printf("proof of separability: %s\n", report.Summary().c_str());
  return report.Passed() ? 0 : 2;
}
