// The paper's Section 2 idealized multilevel-secure service: users on
// private machines, dedicated lines, ONE trusted component (the MLS
// file-server) — plus the printer-server and authentication service that a
// real deployment adds.
//
//   $ ./build/examples/mls_fileserver
#include <cstdio>

#include "src/components/auth.h"
#include "src/components/fileserver.h"
#include "src/components/printserver.h"

int main() {
  using namespace sep;
  CategoryRegistry::Instance().Reset();

  const SecurityLevel unclass(Classification::kUnclassified);
  const SecurityLevel secret(Classification::kSecret);
  const SecurityLevel topsecret(Classification::kTopSecret);

  // --- authentication -------------------------------------------------------
  {
    Network net;
    auto auth_owned = std::make_unique<AuthServer>(
        std::vector<AuthUser>{{"alice", "s3cret", topsecret}, {"bob", "hunter2", unclass}},
        AuthOptions{});
    AuthServer* auth = auth_owned.get();
    int auth_node = net.AddNode(std::move(auth_owned));

    struct Terminal : Process {
      Frame request;
      Frame reply{0, {}};
      bool sent = false;
      FrameReader reader;
      FrameWriter writer;
      explicit Terminal(Frame r) : request(std::move(r)) {}
      std::string name() const override { return "terminal"; }
      void Step(NodeContext& ctx) override {
        reader.Poll(ctx, 0);
        if (auto f = reader.Next()) {
          reply = *f;
        }
        if (!sent) {
          writer.Queue(request);
          sent = true;
        }
        writer.Flush(ctx, 0);
      }
    };
    auto term_owned =
        std::make_unique<Terminal>(AuthLoginRequest(secret, "alice", "s3cret"));
    Terminal* term = term_owned.get();
    int term_node = net.AddNode(std::move(term_owned));
    net.Connect(term_node, auth_node);
    net.Connect(auth_node, term_node);
    net.Run(100);

    std::printf("auth: alice logs in at SECRET -> %s\n",
                term->reply.type == kAuthGranted ? "granted" : "denied");
    if (term->reply.type == kAuthGranted) {
      AuthServer::SessionInfo info = auth->Validate(term->reply.fields[0]);
      std::printf("auth: token validates to user=%s level=%s\n", info.user.c_str(),
                  info.level.ToString().c_str());
    }
  }

  // --- the MLS file-server ---------------------------------------------------
  {
    Network net;
    auto server_owned = std::make_unique<FileServer>(std::vector<FileServerUser>{
        {"alice", secret}, {"bob", unclass}});
    FileServer* server = server_owned.get();
    int server_node = net.AddNode(std::move(server_owned));

    auto alice = std::make_unique<FileClient>(
        "alice",
        std::vector<Frame>{FsCreate(secret, "warplan"), FsWrite("warplan", {0xBAD, 0xC0DE}),
                           FsRead("warplan", 0, 2)});
    auto bob = std::make_unique<FileClient>(
        "bob",
        std::vector<Frame>{FsCreate(unclass, "memo"), FsWrite("memo", {1, 2}),
                           FsRead("warplan", 0, 2),  // no read up!
                           FsWrite("warplan", {7})}, // blind write up: fine
        /*start_delay=*/40);
    FileClient* alice_ptr = alice.get();
    FileClient* bob_ptr = bob.get();
    int a = net.AddNode(std::move(alice));
    int b = net.AddNode(std::move(bob));
    net.Connect(a, server_node);
    net.Connect(server_node, a);
    net.Connect(b, server_node);
    net.Connect(server_node, b);
    net.Run(3000);

    std::printf("\nfile-server: %zu files, %llu requests, %zu denials\n", server->file_count(),
                static_cast<unsigned long long>(server->requests_served()),
                server->monitor().denied_count());
    std::printf("  alice read her warplan back: %s\n",
                (alice_ptr->replies().size() == 3 && alice_ptr->replies()[2].type == kFsData)
                    ? "yes"
                    : "no");
    std::printf("  bob's read-up of warplan: %s\n",
                (bob_ptr->replies().size() >= 3 && bob_ptr->replies()[2].type == kFsErr)
                    ? "denied (indistinguishable from not-found)"
                    : "GRANTED (BROKEN!)");
    std::printf("  bob's blind write-up: %s\n",
                (bob_ptr->replies().size() >= 4 && bob_ptr->replies()[3].type == kFsOk)
                    ? "accepted"
                    : "rejected");
  }

  // --- the printer-server ------------------------------------------------------
  {
    Network net;
    auto server_owned = std::make_unique<PrintServer>(
        std::vector<PrintUser>{{"alice", secret}, {"bob", unclass}});
    PrintServer* server = server_owned.get();
    int server_node = net.AddNode(std::move(server_owned));
    int a = net.AddNode(
        std::make_unique<PrintClient>("alice", std::vector<std::string>{"attack at dawn"}));
    int b = net.AddNode(
        std::make_unique<PrintClient>("bob", std::vector<std::string>{"lunch menu"}));
    net.Connect(a, server_node);
    net.Connect(server_node, a);
    net.Connect(b, server_node);
    net.Connect(server_node, b);
    net.Run(2000);

    std::printf("\nprinter-server: %zu jobs completed, %zu BLP denials, spool backlog %zu\n",
                server->jobs_completed(), server->monitor().denied_count(),
                server->spool_backlog());
    std::printf("--- printed output ---\n%s----------------------\n",
                server->printed().c_str());
  }
  return 0;
}
