// The ACCAT Guard scenario from the paper's Section 1 (experiment E8):
// bidirectional message exchange between a LOW and a HIGH system, with
// different security requirements per direction.
//
//   $ ./build/examples/accat_guard
#include <cstdio>

#include "src/components/guard.h"

int main() {
  using namespace sep;

  Network net;
  auto guard_owned = std::make_unique<Guard>(DefaultWatchOfficer, /*review_delay=*/5);
  Guard* guard = guard_owned.get();
  int guard_node = net.AddNode(std::move(guard_owned));

  int low_src = net.AddNode(std::make_unique<MessageSource>(
      "low-system", std::vector<std::string>{
                        "request: status of convoy 7",
                        "request: weather for sector 4",
                    }));
  int high_src = net.AddNode(std::make_unique<MessageSource>(
      "high-system", std::vector<std::string>{
                         "UNCLAS:weather sector 4: clear skies",
                         "REVIEW:convoy 7 at grid 1234 5678, ETA 0600",
                         "TS codeword material - never releasable",
                     }));
  auto low_sink_owned = std::make_unique<MessageSink>("low-sink");
  MessageSink* low_sink = low_sink_owned.get();
  int low_sink_node = net.AddNode(std::move(low_sink_owned));
  auto high_sink_owned = std::make_unique<MessageSink>("high-sink");
  MessageSink* high_sink = high_sink_owned.get();
  int high_sink_node = net.AddNode(std::move(high_sink_owned));

  net.Connect(low_src, guard_node);        // guard in0: from LOW
  net.Connect(high_src, guard_node);       // guard in1: from HIGH
  net.Connect(guard_node, low_sink_node);  // guard out0: to LOW
  net.Connect(guard_node, high_sink_node); // guard out1: to HIGH

  net.Run(500);

  std::printf("LOW -> HIGH (unhindered, %llu messages):\n",
              static_cast<unsigned long long>(guard->stats().low_to_high));
  for (const std::string& m : high_sink->received()) {
    std::printf("  [high received] %s\n", m.c_str());
  }

  std::printf("\nHIGH -> LOW (via Security Watch Officer):\n");
  for (const std::string& m : low_sink->received()) {
    std::printf("  [low received]  %s\n", m.c_str());
  }
  std::printf("verdicts: %llu released, %llu redacted, %llu denied\n",
              static_cast<unsigned long long>(guard->stats().high_to_low_released),
              static_cast<unsigned long long>(guard->stats().high_to_low_redacted),
              static_cast<unsigned long long>(guard->stats().high_to_low_denied));

  std::printf("\naudit trail:\n");
  for (const std::string& entry : guard->audit()) {
    std::printf("  %s\n", entry.c_str());
  }
  return 0;
}
