// The Secure Network Front End (paper Section 2, Fig. 1) as a distributed
// system: host -> red -> {crypto, censored bypass} -> black -> network.
//
//   $ ./build/examples/snfe
//
// Runs the honest pipeline and then an adversarial red component that tries
// to leak a secret over the bypass, showing what each censor level does to
// the covert channel.
#include <cstdio>

#include "src/components/snfe.h"

int main() {
  using namespace sep;

  // --- honest run ---------------------------------------------------------
  {
    Network net;
    SnfeTopology topo = BuildSnfe(net, CensorStrictness::kSyntax, false, {}, {}, 24);
    net.Run(8000);

    auto& host = static_cast<HostSource&>(net.process(topo.host));
    auto& sink = static_cast<NetworkSink&>(net.process(topo.network));
    auto& censor = static_cast<Censor&>(net.process(topo.censor));

    std::printf("SNFE honest run: %zu host packets -> %zu network packets\n",
                host.packets().size(), sink.packets().size());
    std::printf("  censor: %llu forwarded, %llu dropped\n",
                static_cast<unsigned long long>(censor.stats().forwarded),
                static_cast<unsigned long long>(censor.stats().dropped));

    bool cleartext_seen = false;
    for (const Frame& packet : host.packets()) {
      std::vector<Word> payload(packet.fields.begin() + 3, packet.fields.end());
      cleartext_seen = cleartext_seen || sink.ContainsCleartext(payload);
    }
    std::printf("  cleartext on the wire: %s\n", cleartext_seen ? "YES (BROKEN!)" : "no");

    std::printf("  declared lines:\n");
    for (const auto& edge : net.edges()) {
      std::printf("    %s\n", edge.name.c_str());
    }
    std::printf("  red -> black direct edge: %s\n",
                net.Reachable(topo.red, topo.black) ? "only via crypto/censor" : "unreachable");
  }

  // --- adversarial runs -----------------------------------------------------
  const std::vector<int> secret = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 1};
  std::printf("\ncovert flag-channel vs censor strictness (secret: %zu bits):\n", secret.size());
  for (CensorStrictness strictness :
       {CensorStrictness::kOff, CensorStrictness::kSyntax, CensorStrictness::kCanonical,
        CensorStrictness::kRateLimited}) {
    Network net;
    SnfeTopology topo = BuildSnfe(net, strictness, /*evil=*/true, secret,
                                  LeakMode::kFlagEncoding, static_cast<int>(secret.size()));
    net.Run(8000);
    auto& sink = static_cast<NetworkSink&>(net.process(topo.network));
    std::size_t leaked = MatchingPrefixBits(secret, sink.DecodeFlagBits());
    std::printf("  censor=%-12s leaked %2zu/%zu bits\n", CensorStrictnessName(strictness),
                leaked, secret.size());
  }
  return 0;
}
