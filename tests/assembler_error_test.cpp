// Error-path coverage for the SM-11 assembler: malformed operands,
// unresolved symbols, directive misuse, range checks, and the `.ORG`
// overlap check. Each test pins the failure mode (and enough of the
// message to keep diagnostics useful), not exact wording.
#include <gtest/gtest.h>

#include "src/sm11asm/assembler.h"

namespace sep {
namespace {

testing::AssertionResult FailsWith(const std::string& source, const std::string& needle) {
  Result<AssembledProgram> program = Assemble(source);
  if (program.ok()) {
    return testing::AssertionFailure() << "assembled unexpectedly";
  }
  if (program.error().find(needle) == std::string::npos) {
    return testing::AssertionFailure()
           << "error \"" << program.error() << "\" does not mention \"" << needle << "\"";
  }
  return testing::AssertionSuccess();
}

TEST(AssemblerErrors, UnknownMnemonic) {
  EXPECT_TRUE(FailsWith("START: FROB R1\n", "unknown mnemonic"));
}

TEST(AssemblerErrors, ImmediateDestinationIsRejected) {
  EXPECT_TRUE(FailsWith("START: MOV R1, #2\n", "only valid as a source"));
}

TEST(AssemblerErrors, BadRegisterInDeferredOperand) {
  EXPECT_TRUE(FailsWith("START: MOV (R9), R1\n", "bad register in deferred operand"));
}

TEST(AssemblerErrors, BadRegisterInIndexedOperand) {
  EXPECT_TRUE(FailsWith("START: MOV 3(R9), R1\n", "bad register in indexed operand"));
}

TEST(AssemblerErrors, MalformedIndexedOperand) {
  // Ends with ')' but has no matching '(': not a valid indexed form.
  EXPECT_TRUE(FailsWith("START: CLR 3R1)\n", "malformed indexed operand"));
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_TRUE(FailsWith("START: MOV R1\n", "takes two operands"));
  EXPECT_TRUE(FailsWith("START: CLR R1, R2\n", "takes one operand"));
}

TEST(AssemblerErrors, UndefinedSymbol) {
  EXPECT_TRUE(FailsWith("START: MOV NOWHERE, R1\n", "undefined symbol: NOWHERE"));
}

TEST(AssemblerErrors, DuplicateSymbol) {
  EXPECT_TRUE(FailsWith(
      "A:  CLR R1\n"
      "A:  CLR R2\n",
      "duplicate symbol A"));
}

TEST(AssemblerErrors, TrapCodeOutOfRange) {
  EXPECT_TRUE(FailsWith("START: TRAP 0x400\n", "trap code out of range"));
}

TEST(AssemblerErrors, BranchTargetOutOfRange) {
  // A conditional branch has an 8-bit signed word offset; 0x200 words away
  // is unreachable.
  EXPECT_TRUE(FailsWith(
      "START: BNE FAR\n"
      "       .ORG 0x200\n"
      "FAR:   CLR R1\n",
      "branch target out of range"));
}

TEST(AssemblerErrors, MalformedNumber) {
  EXPECT_TRUE(FailsWith("START: MOV #0xZZ, R1\n", "malformed number"));
}

TEST(AssemblerErrors, DigitOutOfRangeForBase) {
  EXPECT_TRUE(FailsWith("START: MOV #0o9, R1\n", "digit out of range"));
}

TEST(AssemblerErrors, BadCharacterInExpression) {
  EXPECT_TRUE(FailsWith("START: MOV #$5, R1\n", "unexpected character"));
}

TEST(AssemblerErrors, EquNeedsNameAndValue) {
  EXPECT_TRUE(FailsWith(".EQU ONLYNAME\n", ".EQU needs NAME, VALUE"));
}

TEST(AssemblerErrors, AsciiNeedsQuotedString) {
  EXPECT_TRUE(FailsWith("S: .ASCII unquoted\n", ".ASCII needs a quoted string"));
}

TEST(AssemblerErrors, OrgOverlapIsAnError) {
  // Two chunks that assemble the same address must be rejected, not
  // silently merged (last-writer-wins would hide real layout bugs).
  EXPECT_TRUE(FailsWith(
      "START: CLR R1\n"
      "       CLR R2\n"
      "       .ORG 0x1\n"
      "       CLR R3\n",
      ".ORG overlap"));
}

TEST(AssemblerErrors, DisjointOrgChunksStillAssemble) {
  Result<AssembledProgram> program = Assemble(
      "START: CLR R1\n"
      "       .ORG 0x40\n"
      "DATA:  .WORD 7\n");
  ASSERT_TRUE(program.ok()) << program.error();
  EXPECT_EQ(program->words.size(), 0x41u);
  EXPECT_EQ(program->words[0x40], 7);
}

TEST(AssemblerErrors, SourceLineMapCoversEmittingLines) {
  Result<AssembledProgram> program = Assemble(
      "; comment only\n"
      "START: CLR R1\n"
      "       MOV #2, R2\n");
  ASSERT_TRUE(program.ok()) << program.error();
  EXPECT_EQ(program->LineOf(0), 2);  // CLR R1
  EXPECT_EQ(program->LineOf(1), 3);  // MOV #2, R2 (opcode word)
  EXPECT_EQ(program->LineOf(2), 3);  // ...and its extension word
}

}  // namespace
}  // namespace sep
