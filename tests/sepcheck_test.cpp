// Tests for the binary-level static separability analyzer (src/sepcheck):
// the interval domain, CFG lifting, region labelling, the wire-cut check,
// annotation discharge, and the machine-level SWAP-analogue story —
// flagged by the syntactic pass, shown secure by the two-run probe,
// discharged by an explicit disjointness annotation.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/sepcheck/absdomain.h"
#include "src/sepcheck/analyzer.h"
#include "src/sepcheck/annotations.h"
#include "src/sepcheck/catalog.h"
#include "src/sepcheck/cfg.h"
#include "src/sepcheck/guest_corpus.h"
#include "src/sepcheck/probe.h"
#include "src/sm11asm/assembler.h"

namespace sep::sepcheck {
namespace {

// --- interval domain -----------------------------------------------------

TEST(AbsDomain, JoinAndConstants) {
  EXPECT_TRUE(AbsVal().IsTop());
  EXPECT_TRUE(AbsVal::Const(7).IsConst());
  EXPECT_EQ(AbsVal::Const(7).ConstVal(), 7);
  EXPECT_EQ(AbsVal::Const(0).Join(AbsVal::Const(1)), AbsVal::Range(0, 1));
  EXPECT_TRUE(AbsVal::Const(3).Join(AbsVal::Top()).IsTop());
}

TEST(AbsDomain, ArithmeticGoesTopOnOverflow) {
  EXPECT_EQ(AbsVal::Add(AbsVal::Const(0x100), AbsVal::Const(6)), AbsVal::Const(0x106));
  EXPECT_TRUE(AbsVal::Add(AbsVal::Const(0xFFFF), AbsVal::Const(1)).IsTop());
  EXPECT_EQ(AbsVal::Sub(AbsVal::Const(10), AbsVal::Range(1, 3)), AbsVal::Range(7, 9));
  EXPECT_TRUE(AbsVal::Sub(AbsVal::Const(2), AbsVal::Const(3)).IsTop());
}

TEST(AbsDomain, BicBoundsByMaskComplement) {
  // BIC #0xFFF8 keeps only the low 3 bits: result <= 7 whatever dst was.
  EXPECT_EQ(AbsVal::BicMask(AbsVal::Top(), 0xFFF8), AbsVal::Range(0, 7));
  EXPECT_EQ(AbsVal::BicMask(AbsVal::Const(5), 0xFFF8), AbsVal::Range(0, 5));
}

TEST(AbsDomain, WideningMovesChangedBoundsToExtremes) {
  AbsVal grown = AbsVal::Range(0, 4).WidenedFrom(AbsVal::Range(0, 3));
  EXPECT_EQ(grown, AbsVal::Range(0, 0xFFFF));
  AbsVal stable = AbsVal::Range(0, 3).WidenedFrom(AbsVal::Range(0, 3));
  EXPECT_EQ(stable, AbsVal::Range(0, 3));
}

// --- annotations ---------------------------------------------------------

TEST(Annotations, ParsesTrustAndDisjointChannel) {
  Annotations a = ParseAnnotations(
      "START: CLR R0\n"
      "  MOV R1, (R4)  ; sepcheck: trust bounded by supply\n"
      "; sepcheck: disjoint-channel 2 ring discipline\n"
      "  TRAP 7 ; ordinary comment\n");
  ASSERT_EQ(a.trusted_lines.size(), 1u);
  EXPECT_EQ(a.trusted_lines.at(2), "bounded by supply");
  ASSERT_EQ(a.disjoint_channels.size(), 1u);
  EXPECT_EQ(a.disjoint_channels.at(2), "ring discipline");
}

TEST(Annotations, AnnotationsAreInvisibleToTheAssembler) {
  // The discharge is an argument about the program, not a change to it:
  // the annotated and unannotated sources must assemble to the same image.
  const char* bare =
      "START: CLR R0\n"
      "       TRAP 7\n";
  const char* annotated =
      "; sepcheck: disjoint-channel 0 ring discipline\n"
      "START: CLR R0   ; sepcheck: trust reason\n"
      "       TRAP 7\n";
  auto a = Assemble(bare);
  auto b = Assemble(annotated);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->words, b->words);
}

// --- CFG lifting ---------------------------------------------------------

Cfg Lift(const char* source) {
  auto program = Assemble(source);
  EXPECT_TRUE(program.ok()) << program.error();
  return LiftCfg(*program, {program->EntryPoint()}, "test");
}

TEST(CfgLift, StraightLineAndBranches) {
  Cfg cfg = Lift(
      "START: CLR R3\n"
      "LOOP:  INC R3\n"
      "       CMP #5, R3\n"
      "       BNE LOOP\n"
      "       TRAP 7\n");
  ASSERT_TRUE(cfg.findings.empty());
  // Layout: CLR@0, INC@1, CMP@2 (2 words), BNE@4, TRAP@5.
  // BNE has both the taken edge (back to LOOP at 1) and fall-through.
  const CfgNode& bne = cfg.nodes.at(4);
  EXPECT_EQ(bne.succs.size(), 2u);
  EXPECT_NE(std::find(bne.succs.begin(), bne.succs.end(), Word{1}), bne.succs.end());
  // TRAP 7 (HALT) is a terminator.
  EXPECT_TRUE(cfg.nodes.at(5).succs.empty());
}

TEST(CfgLift, JsrRtsEdges) {
  Cfg cfg = Lift(
      "START: JSR SUB\n"
      "       JSR SUB\n"
      "       TRAP 7\n"
      "SUB:   CLR R1\n"
      "       RTS\n");
  ASSERT_TRUE(cfg.findings.empty());
  const CfgNode& rts = cfg.nodes.at(6);
  ASSERT_TRUE(rts.is_rts);
  // RTS conservatively returns to the sites after BOTH calls.
  EXPECT_EQ(rts.succs.size(), 2u);
}

TEST(CfgLift, IndirectJumpIsRejectedNotAnalyzed) {
  Cfg cfg = Lift(
      "START: MOV #DONE, R2\n"
      "       JMP (R2)\n"
      "DONE:  TRAP 7\n");
  ASSERT_EQ(cfg.findings.size(), 1u);
  EXPECT_EQ(cfg.findings[0].kind, "indirect-jump");
  EXPECT_TRUE(cfg.findings[0].Blocking());
}

// --- program analysis ----------------------------------------------------

ProgramAnalysis Analyze(const std::string& source, std::uint32_t mem_words = 512,
                        std::vector<ChannelConfig> channels = {}, int index = 0) {
  auto program = Assemble(source);
  EXPECT_TRUE(program.ok()) << program.error();
  RegimeView view;
  view.name = "test";
  view.index = index;
  view.mem_words = mem_words;
  view.channels = std::move(channels);
  return AnalyzeProgram(*program, source, view);
}

bool HasKind(const std::vector<Finding>& findings, const std::string& kind) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.kind == kind; });
}

const Finding& Get(const std::vector<Finding>& findings, const std::string& kind) {
  for (const Finding& f : findings) {
    if (f.kind == kind) return f;
  }
  ADD_FAILURE() << "no finding of kind " << kind;
  static Finding none;
  return none;
}

TEST(AnalyzeProgram, InPartitionAccessIsSilent) {
  ProgramAnalysis a = Analyze(
      "START: MOV #3, @0x100\n"
      "       MOV @0x100, R1\n"
      "       TRAP 7\n");
  EXPECT_TRUE(a.Certified());
  EXPECT_TRUE(a.findings.empty());
}

TEST(AnalyzeProgram, OutOfPartitionWriteIsFlaggedWithWitness) {
  ProgramAnalysis a = Analyze(
      "START: CLR R1\n"
      "       MOV R1, @0x300\n"
      "       TRAP 7\n",
      /*mem_words=*/512);
  ASSERT_TRUE(HasKind(a.findings, "out-of-regime-write"));
  const Finding& f = Get(a.findings, "out-of-regime-write");
  EXPECT_EQ(f.address, 1);
  EXPECT_EQ(f.line, 2);
  // The witness is a CFG path from the entry to the offending instruction.
  ASSERT_FALSE(f.witness.empty());
  EXPECT_EQ(f.witness.front(), 0);
  EXPECT_EQ(f.witness.back(), 1);
}

TEST(AnalyzeProgram, DeviceWindowNeedsMappedSlots) {
  const char* source =
      "START: MOV @0xE001, R1\n"
      "       TRAP 7\n";
  // Without devices the window is unmapped...
  ProgramAnalysis no_dev = Analyze(source);
  EXPECT_TRUE(HasKind(no_dev.findings, "out-of-regime-read"));
  // ...with one device slot the same read is legal.
  auto program = Assemble(source);
  ASSERT_TRUE(program.ok());
  RegimeView view;
  view.mem_words = 512;
  view.device_slots = 1;
  view.device_window_words = 8;
  ProgramAnalysis with_dev = AnalyzeProgram(*program, source, view);
  EXPECT_TRUE(with_dev.Certified()) << FormatFindings(with_dev.findings, false);
}

TEST(AnalyzeProgram, UnboundedPointerIsFlaggedAndTrustDischarges) {
  // R4 grows without bound: the analyzer must refuse to certify the store.
  const char* undischarged =
      "START: MOV #0x100, R4\n"
      "LOOP:  MOV R1, (R4)\n"
      "       INC R4\n"
      "       BR LOOP\n";
  ProgramAnalysis raw = Analyze(undischarged);
  ASSERT_TRUE(HasKind(raw.findings, "unbounded-write"));
  EXPECT_FALSE(raw.Certified());

  // The same program with a trust annotation still reports the finding —
  // but discharged, so certification goes through.
  const char* discharged =
      "START: MOV #0x100, R4\n"
      "LOOP:  MOV R1, (R4)   ; sepcheck: trust externally bounded\n"
      "       INC R4\n"
      "       BR LOOP\n";
  ProgramAnalysis ok = Analyze(discharged);
  ASSERT_TRUE(HasKind(ok.findings, "unbounded-write"));
  EXPECT_EQ(Get(ok.findings, "unbounded-write").severity, FindingSeverity::kDischarged);
  EXPECT_EQ(Get(ok.findings, "unbounded-write").discharge_reason, "externally bounded");
  EXPECT_TRUE(ok.Certified());
}

TEST(AnalyzeProgram, SelfModifyingStoreIsRejected) {
  ProgramAnalysis a = Analyze(
      "START: MOV #0, @START\n"
      "       TRAP 7\n");
  EXPECT_TRUE(HasKind(a.findings, "self-modifying-code"));
  EXPECT_FALSE(a.Certified());
}

TEST(AnalyzeProgram, PrivilegedInstructionsAreFlaggedForGuests) {
  ProgramAnalysis a = Analyze("START: HALT\n");
  EXPECT_TRUE(HasKind(a.findings, "privileged-instruction"));
}

TEST(AnalyzeProgram, ChannelOwnershipIsChecked) {
  ChannelConfig ch;
  ch.name = "a->b";
  ch.sender = 0;
  ch.receiver = 1;
  ch.capacity = 8;
  const char* send =
      "START: CLR R0\n"
      "       MOV #1, R1\n"
      "       TRAP 1\n"
      "       TRAP 7\n";
  // Regime 0 owns the sender end; regime 1 does not.
  ProgramAnalysis as_sender = Analyze(send, 512, {ch}, /*index=*/0);
  EXPECT_TRUE(as_sender.Certified()) << FormatFindings(as_sender.findings, false);
  EXPECT_TRUE(as_sender.ring_touches.count({0, 0}));
  ProgramAnalysis as_receiver = Analyze(send, 512, {ch}, /*index=*/1);
  EXPECT_TRUE(HasKind(as_receiver.findings, "channel-not-owned"));
}

TEST(AnalyzeProgram, ChannelIndexOutOfRangeIsFlagged) {
  ChannelConfig ch;
  ch.name = "a->b";
  ch.sender = 0;
  ch.receiver = 1;
  ProgramAnalysis a = Analyze(
      "START: MOV #5, R0\n"
      "       TRAP 1\n"
      "       TRAP 7\n",
      512, {ch});
  EXPECT_TRUE(HasKind(a.findings, "channel-out-of-range"));
}

TEST(AnalyzeProgram, JoinOverCallSitesStaysBounded) {
  // R0 is 0 at one call site and 1 at the other: inside the subroutine the
  // join is [0,1], narrow enough to resolve the channel set. A widening
  // strategy that treats call-site fan-in like a loop would break this.
  ChannelConfig c0, c1;
  c0.name = "x";
  c0.sender = 0;
  c0.receiver = 1;
  c1.name = "y";
  c1.sender = 0;
  c1.receiver = 1;
  ProgramAnalysis a = Analyze(
      "START: CLR R0\n"
      "       JSR SENDW\n"
      "       MOV #1, R0\n"
      "       JSR SENDW\n"
      "       TRAP 7\n"
      "SENDW: TRAP 1\n"
      "       RTS\n",
      512, {c0, c1});
  EXPECT_TRUE(a.Certified()) << FormatFindings(a.findings, false);
  EXPECT_TRUE(a.ring_touches.count({0, 0}));
  EXPECT_TRUE(a.ring_touches.count({1, 0}));
}

TEST(AnalyzeProgram, InterruptHandlersAreDiscoveredThroughSetvec) {
  // The handler at HNDLR is only reachable via SETVEC; the analyzer must
  // find it and flag its out-of-partition store.
  auto program = Assemble(
      "START: MOV #0, R0\n"
      "       MOV #HNDLR, R1\n"
      "       TRAP 4\n"
      "IDLE:  TRAP 0\n"
      "       BR IDLE\n"
      "HNDLR: MOV R1, @0x700\n"
      "       TRAP 5\n");
  ASSERT_TRUE(program.ok()) << program.error();
  RegimeView view;
  view.mem_words = 512;
  view.device_slots = 1;
  view.device_window_words = 8;
  ProgramAnalysis a = AnalyzeProgram(*program, "", view);
  EXPECT_TRUE(HasKind(a.findings, "out-of-regime-write"));
}

// --- the wire-cut check and the SWAP-analogue story ----------------------

TEST(AnalyzeSystem, UncutChannelIsFlaggedAsSharedObject) {
  const CatalogEntry* entry = nullptr;
  for (const CatalogEntry& e : Catalog()) {
    if (e.name == "swap-analogue-undischarged") entry = &e;
  }
  ASSERT_NE(entry, nullptr);

  // 1. The syntactic pass flags the shared ring object...
  auto analysis = AnalyzeSystem(entry->spec);
  ASSERT_TRUE(analysis.ok()) << analysis.error();
  EXPECT_FALSE(analysis->certified);
  ASSERT_TRUE(HasKind(analysis->findings, "shared-channel-object"));
  EXPECT_EQ(Get(analysis->findings, "shared-channel-object").severity,
            FindingSeverity::kError);

  // 2. ...the semantic two-run probe shows there is no actual leak...
  auto leaks = MachineSemanticallyLeaks([&] { return BuildEntrySystem(*entry); },
                                        entry->probe);
  ASSERT_TRUE(leaks.ok()) << leaks.error();
  EXPECT_FALSE(*leaks) << "the shared-ring flag must be a false positive";

  // 3. ...and the disjointness annotation discharges the flag: the same
  // system with the annotated source certifies (catalogue entry
  // "quickstart" is exactly that configuration).
  const CatalogEntry* annotated = nullptr;
  for (const CatalogEntry& e : Catalog()) {
    if (e.name == "quickstart") annotated = &e;
  }
  ASSERT_NE(annotated, nullptr);
  auto discharged = AnalyzeSystem(annotated->spec);
  ASSERT_TRUE(discharged.ok());
  EXPECT_TRUE(discharged->certified);
  EXPECT_EQ(Get(discharged->findings, "shared-channel-object").severity,
            FindingSeverity::kDischarged);
}

TEST(AnalyzeSystem, CutChannelsHaveNothingToDischarge) {
  SystemSpec spec;
  spec.name = "cut";
  spec.regimes = {{"red", kQuickstartRed, 512, 0}, {"black", kQuickstartBlack, 512, 0}};
  ChannelConfig ch;
  ch.name = "red->black";
  ch.sender = 0;
  ch.receiver = 1;
  spec.channels = {ch};
  spec.cut_channels = true;
  auto analysis = AnalyzeSystem(spec);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->certified);
  EXPECT_FALSE(HasKind(analysis->findings, "shared-channel-object"));
}

TEST(Probe, DetectsARealLeakThroughTheChannel) {
  // The control entry ships its secret word down the declared channel: the
  // probe must see it. This is what makes the "secure" verdicts above
  // non-vacuous.
  const CatalogEntry* entry = nullptr;
  for (const CatalogEntry& e : Catalog()) {
    if (e.name == "leaky-sender-control") entry = &e;
  }
  ASSERT_NE(entry, nullptr);
  auto analysis = AnalyzeSystem(entry->spec);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->certified) << "resource separation holds";
  auto leaks = MachineSemanticallyLeaks([&] { return BuildEntrySystem(*entry); },
                                        entry->probe);
  ASSERT_TRUE(leaks.ok()) << leaks.error();
  EXPECT_TRUE(*leaks) << "the probe must detect secret-dependence";
}

TEST(Catalog, EveryEntryMeetsItsExpectation) {
  for (const CatalogEntry& entry : Catalog()) {
    auto analysis = AnalyzeSystem(entry.spec);
    ASSERT_TRUE(analysis.ok()) << entry.name << ": " << analysis.error();
    EXPECT_EQ(analysis->certified, entry.expect_certified)
        << entry.name << ":\n"
        << FormatFindings(analysis->findings, false);
    if (entry.expect_discharged) {
      EXPECT_TRUE(std::any_of(analysis->findings.begin(), analysis->findings.end(),
                              [](const Finding& f) {
                                return f.severity == FindingSeverity::kDischarged;
                              }))
          << entry.name;
    }
  }
}

TEST(Catalog, DeployedGuestsCertify) {
  // The catalogue must cover every deployed in-tree guest system.
  std::vector<std::string> required = {"quickstart", "snfe", "guard"};
  for (const std::string& name : required) {
    bool found = false;
    for (const CatalogEntry& e : Catalog()) {
      if (e.name == name) {
        found = true;
        EXPECT_TRUE(e.expect_certified) << name;
      }
    }
    EXPECT_TRUE(found) << name;
  }
}

// --- shared finding format ----------------------------------------------

TEST(Finding, JsonEscapesAndRoundTripsFields) {
  Finding f;
  f.tool = "sepcheck";
  f.unit = "red";
  f.kind = "out-of-regime-write";
  f.line = 3;
  f.address = 0x10;
  f.instruction = "MOV R1, @0x900";
  f.message = "write outside \"the\" map";
  f.witness = {0, 1, 0x10};
  const std::string json = f.ToJson();
  EXPECT_NE(json.find("\"tool\":\"sepcheck\""), std::string::npos);
  EXPECT_NE(json.find("\\\"the\\\""), std::string::npos);
  EXPECT_NE(json.find("\"witness\":[0,1,16]"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace sep::sepcheck
