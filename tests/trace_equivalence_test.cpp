// E11: guests cannot distinguish the separation kernel's regimes from
// private machines — identical observable traces in both deployments.
#include <gtest/gtest.h>

#include "src/core/indistinguishability.h"
#include "src/core/kernel_system.h"

namespace sep {
namespace {

// Echo guest: interrupt-driven, transmits every received word + 1.
constexpr char kEchoPlusOne[] = R"(
        .EQU DEV, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4          ; SETVEC
        MOV #DEV, R4
        MOV #0x40, (R4) ; RCSR IE
LOOP:   TRAP 6          ; AWAIT
        BR LOOP
HANDLER:
        MOV #DEV, R4
        MOV 1(R4), R2   ; RBUF
        INC R2
WAITTX: MOV 2(R4), R3   ; XCSR
        BIT #0x80, R3
        BEQ WAITTX      ; spin until transmitter idle
        MOV R2, 3(R4)   ; XBUF
        TRAP 5          ; RETI
)";

// Accumulator guest: sums received words into memory, transmits the running
// sum after each word.
constexpr char kAccumulator[] = R"(
        .EQU DEV, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4
        MOV #DEV, R4
        MOV #0x40, (R4)
LOOP:   TRAP 6
        BR LOOP
HANDLER:
        MOV #DEV, R4
        MOV 1(R4), R2
        ADD SUM, R2
        MOV R2, @SUM
WAITTX: MOV 2(R4), R3
        BIT #0x80, R3
        BEQ WAITTX
        MOV R2, 3(R4)
        TRAP 5
SUM:    .WORD 0
)";

// A processing pipeline stage: doubles each received word and forwards it.
constexpr char kDoubler[] = R"(
        .EQU DEV, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4
        MOV #DEV, R4
        MOV #0x40, (R4)
LOOP:   TRAP 6
        BR LOOP
HANDLER:
        MOV #DEV, R4
        MOV 1(R4), R2
        ASL R2
WAITTX: MOV 2(R4), R3
        BIT #0x80, R3
        BEQ WAITTX
        MOV R2, 3(R4)
        TRAP 5
)";

TEST(TraceEquivalence, SingleEchoGuest) {
  IndistConfig config;
  config.guests.push_back({"echo", kEchoPlusOne, 512});
  config.stimuli.push_back({0, {10, 20, 30, 40}});
  Result<IndistResult> result = RunIndistinguishability(config);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result->Indistinguishable());
  ASSERT_EQ(result->distributed[0].output, (std::vector<Word>{11, 21, 31, 41}));
}

TEST(TraceEquivalence, TwoIndependentGuests) {
  IndistConfig config;
  config.guests.push_back({"echo", kEchoPlusOne, 512});
  config.guests.push_back({"sum", kAccumulator, 512});
  config.stimuli.push_back({0, {5, 6}});
  config.stimuli.push_back({1, {1, 2, 3}});
  Result<IndistResult> result = RunIndistinguishability(config);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result->OutputsEqual());
  EXPECT_TRUE(result->MemoriesEqual());
  EXPECT_EQ(result->distributed[0].output, (std::vector<Word>{6, 7}));
  EXPECT_EQ(result->distributed[1].output, (std::vector<Word>{1, 3, 6}));
}

TEST(TraceEquivalence, WiredPipelineAcrossGuests) {
  // stimulus -> doubler --wire--> accumulator: inter-guest communication
  // over an external line, in both deployments.
  IndistConfig config;
  config.guests.push_back({"doubler", kDoubler, 512});
  config.guests.push_back({"sum", kAccumulator, 512});
  config.wires.push_back({0, 1});
  config.stimuli.push_back({0, {3, 4, 5}});
  Result<IndistResult> result = RunIndistinguishability(config);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result->Indistinguishable());
  EXPECT_EQ(result->distributed[0].output, (std::vector<Word>{6, 8, 10}));
  EXPECT_EQ(result->distributed[1].output, (std::vector<Word>{6, 14, 24}));
}

TEST(TraceEquivalence, ThreeGuestsSharedKernel) {
  IndistConfig config;
  config.guests.push_back({"echo-a", kEchoPlusOne, 512});
  config.guests.push_back({"echo-b", kEchoPlusOne, 512});
  config.guests.push_back({"sum", kAccumulator, 512});
  config.stimuli.push_back({0, {100}});
  config.stimuli.push_back({1, {200, 201}});
  config.stimuli.push_back({2, {7, 7, 7}});
  Result<IndistResult> result = RunIndistinguishability(config);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result->Indistinguishable());
}

TEST(TraceEquivalence, KernelizedIsSlowerButEquivalent) {
  IndistConfig config;
  config.guests.push_back({"echo-a", kEchoPlusOne, 512});
  config.guests.push_back({"echo-b", kEchoPlusOne, 512});
  config.stimuli.push_back({0, {1, 2, 3, 4, 5, 6, 7, 8}});
  config.stimuli.push_back({1, {9, 10, 11, 12}});
  Result<IndistResult> result = RunIndistinguishability(config);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result->Indistinguishable());
  // Rounds are lockstep machine steps: the distributed deployment has one
  // CPU per guest and quiesces no later (usually earlier in guest-work
  // terms; both end via the quiescence window, so just sanity-check both
  // terminated within budget).
  EXPECT_LT(result->distributed_rounds, config.max_rounds);
  EXPECT_LT(result->kernelized_rounds, config.max_rounds);
}

TEST(TraceEquivalence, LeakyKernelBreaksEquivalence) {
  // The skip_register_save defect (E3's "not an isolation leak") IS caught
  // here: a kernelized guest whose registers evaporate across SWAP behaves
  // differently from its private-machine twin.
  SystemBuilder good;
  SystemBuilder bad;
  for (SystemBuilder* b : {&good, &bad}) {
    ASSERT_TRUE(b->AddRegime("counter", 256, R"(
START:  CLR R3
LOOP:   INC R3
        MOV R3, @0x40
        TRAP 0
        CMP #12, R3
        BNE LOOP
        TRAP 7
)").ok());
  }
  KernelFaults faults;
  faults.skip_register_save = true;
  bad.WithFaults(faults);

  auto good_sys = good.Build();
  auto bad_sys = bad.Build();
  ASSERT_TRUE(good_sys.ok());
  ASSERT_TRUE(bad_sys.ok());
  (*good_sys)->Run(2000);
  (*bad_sys)->Run(2000);

  const auto& good_regime = (*good_sys)->kernel().config().regimes[0];
  const auto& bad_regime = (*bad_sys)->kernel().config().regimes[0];
  EXPECT_TRUE((*good_sys)->kernel().RegimeHalted(0));
  EXPECT_EQ((*good_sys)->machine().memory().Read(good_regime.mem_base + 0x40), 12);
  // With registers lost at every SWAP the loop never converges to 12.
  EXPECT_FALSE((*bad_sys)->kernel().RegimeHalted(0));
  (void)bad_regime;
}

}  // namespace
}  // namespace sep
