// Checker validation on hand-built model systems (experiment E4's
// foundation): the SharedSystem interface is generic, so the six conditions
// can be exercised on tiny systems whose security status is known by
// construction — independent of the machine/kernel stack.
#include <gtest/gtest.h>

#include "src/core/separability.h"
#include "src/model/shared_system.h"

namespace sep {
namespace {

// A toy shared system: two users, each with a private counter and a private
// I/O cell. The scheduler alternates colours. An optional defect adds the
// other user's counter into yours on every step.
class ToySystem : public SharedSystem {
 public:
  explicit ToySystem(bool leaky) : leaky_(leaky) {}

  std::unique_ptr<SharedSystem> Clone() const override {
    return std::make_unique<ToySystem>(*this);
  }

  int ColourCount() const override { return 2; }
  std::string ColourName(int colour) const override { return colour == 0 ? "red" : "black"; }
  int Colour() const override { return turn_; }

  OperationId NextOperation() const override {
    OperationId op;
    op.kind = OperationId::Kind::kInstruction;
    // The operation identity for colour c: its own counter parity decides
    // between "increment" and "double" — a function of c's state only.
    op.detail = {static_cast<Word>(counter_[turn_] & 1)};
    return op;
  }

  void ExecuteOperation() override {
    const int c = turn_;
    if (counter_[c] & 1) {
      counter_[c] = static_cast<Word>(counter_[c] * 2);
    } else {
      counter_[c] = static_cast<Word>(counter_[c] + 1);
    }
    if (leaky_) {
      counter_[c] = static_cast<Word>(counter_[c] + counter_[1 - c]);
    }
    turn_ = 1 - turn_;
  }

  AbstractState Abstract(int colour) const override {
    // The colour's private view: its counter, its I/O cell, and whether it
    // is its turn (each user can observe when it runs).
    return AbstractState{{counter_[colour], io_cell_[colour], inbox_[colour]}};
  }

  int UnitCount() const override { return 2; }
  int UnitColour(int unit) const override { return unit; }
  std::string UnitName(int unit) const override { return "cell-" + std::to_string(unit); }

  void StepUnit(int unit) override {
    // Device activity: move the inbox into the cell, emit the old cell.
    if (inbox_[unit] != 0) {
      pending_out_[unit].push_back(io_cell_[unit]);
      io_cell_[unit] = inbox_[unit];
      inbox_[unit] = 0;
    }
  }

  void InjectInput(int unit, Word value) override { inbox_[unit] = value; }

  std::vector<Word> DrainOutput(int unit) override {
    std::vector<Word> out = std::move(pending_out_[unit]);
    pending_out_[unit].clear();
    return out;
  }

  void PerturbOthers(int colour, Rng& rng) override {
    const int other = 1 - colour;
    counter_[other] = static_cast<Word>(rng.Next());
    io_cell_[other] = static_cast<Word>(rng.Next());
    inbox_[other] = static_cast<Word>(rng.Next());
    pending_out_[other].clear();
    // `turn_` is preserved: COLOUR(s) must not change.
  }

 private:
  bool leaky_;
  int turn_ = 0;
  Word counter_[2] = {0, 0};
  Word io_cell_[2] = {0, 0};
  Word inbox_[2] = {0, 0};
  std::vector<Word> pending_out_[2];
};

CheckerOptions ToyOptions() {
  CheckerOptions options;
  options.trace_steps = 400;
  options.sample_every = 5;
  options.perturb_variants = 3;
  return options;
}

TEST(ModelConditions, SecureToySystemPassesAllSix) {
  ToySystem system(/*leaky=*/false);
  SeparabilityReport report = CheckSeparability(system, ToyOptions());
  EXPECT_TRUE(report.Passed()) << report.Summary();
  // Every condition family was actually exercised.
  for (int c : {1, 2, 3, 4, 5, 6}) {
    EXPECT_GT(report.conditions[static_cast<std::size_t>(c)].checks, 0u) << "C" << c;
  }
}

TEST(ModelConditions, LeakyToySystemViolatesCondition1) {
  ToySystem system(/*leaky=*/true);
  SeparabilityReport report = CheckSeparability(system, ToyOptions());
  ASSERT_FALSE(report.Passed());
  bool c1 = false;
  for (const Violation& v : report.violations) {
    c1 = c1 || v.condition == 1;
  }
  EXPECT_TRUE(c1) << report.Summary();
}

// A system whose NEXTOP depends on the OTHER user's state: a pure
// condition-6 violation (state never leaks, but operation selection does).
class SchedulerLeakSystem : public ToySystem {
 public:
  SchedulerLeakSystem() : ToySystem(false) {}
  std::unique_ptr<SharedSystem> Clone() const override {
    return std::make_unique<SchedulerLeakSystem>(*this);
  }
  // Inherit everything; NextOperation is overridden to peek across.
  OperationId NextOperation() const override {
    OperationId op = ToySystem::NextOperation();
    op.detail.push_back(other_parity_);
    return op;
  }
  void PerturbOthers(int colour, Rng& rng) override {
    ToySystem::PerturbOthers(colour, rng);
    other_parity_ = static_cast<Word>(rng.Next() & 1);
  }

 private:
  Word other_parity_ = 0;
};

TEST(ModelConditions, SchedulerLeakViolatesCondition6) {
  SchedulerLeakSystem system;
  SeparabilityReport report = CheckSeparability(system, ToyOptions());
  ASSERT_FALSE(report.Passed());
  bool c6 = false;
  for (const Violation& v : report.violations) {
    c6 = c6 || v.condition == 6;
  }
  EXPECT_TRUE(c6) << report.Summary();
}

// Parameterized sweep: the secure toy system passes for many seeds — the
// checker's verdict is not a seed accident.
class ToySeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ToySeedSweep, SecurePassesLeakyFails) {
  CheckerOptions options = ToyOptions();
  options.seed = GetParam();
  EXPECT_TRUE(CheckSeparability(ToySystem(false), options).Passed());
  EXPECT_FALSE(CheckSeparability(ToySystem(true), options).Passed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ToySeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(ModelConditions, OperationIdFormatting) {
  OperationId a{OperationId::Kind::kInstruction, {0x1234}};
  EXPECT_NE(a.ToString().find("insn"), std::string::npos);
  OperationId b{OperationId::Kind::kInterrupt, {3}};
  EXPECT_NE(b.ToString().find("irq"), std::string::npos);
  EXPECT_FALSE(a == b);
}

TEST(ModelConditions, AbstractStateHashMatchesEquality) {
  AbstractState a{{1, 2, 3}};
  AbstractState b{{1, 2, 3}};
  AbstractState c{{1, 2, 4}};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), c.Hash());
}

}  // namespace
}  // namespace sep
