#include <gtest/gtest.h>

#include "src/machine/isa.h"

namespace sep {
namespace {

TEST(IsaShape, Classification) {
  EXPECT_EQ(OpcodeShape(0x00), OperandCount::kZero);   // HALT
  EXPECT_EQ(OpcodeShape(0x05), OperandCount::kTrap);   // TRAP
  EXPECT_EQ(OpcodeShape(0x10), OperandCount::kTwo);    // MOV
  EXPECT_EQ(OpcodeShape(0x20), OperandCount::kOne);    // CLR
  EXPECT_EQ(OpcodeShape(0x30), OperandCount::kBranch); // BR
  EXPECT_FALSE(OpcodeShape(0x0F).has_value());
  EXPECT_FALSE(OpcodeShape(0x3F).has_value());
}

TEST(IsaDecode, TwoOpRoundTrip) {
  OperandSpec src{AddrMode::kImmediate, 0};
  OperandSpec dst{AddrMode::kRegDeferred, 3};
  Word w = EncodeTwoOp(Opcode::kAdd, src, dst);
  auto insn = Decode(w);
  ASSERT_TRUE(insn.has_value());
  EXPECT_EQ(insn->opcode, Opcode::kAdd);
  EXPECT_EQ(insn->src.mode, AddrMode::kImmediate);
  EXPECT_EQ(insn->src.reg, 0);
  EXPECT_EQ(insn->dst.mode, AddrMode::kRegDeferred);
  EXPECT_EQ(insn->dst.reg, 3);
  EXPECT_EQ(insn->length, 2);  // one extension word for the immediate
}

TEST(IsaDecode, LengthCountsBothExtensions) {
  OperandSpec src{AddrMode::kImmediate, 0};
  OperandSpec dst{AddrMode::kIndexed, 2};
  auto insn = Decode(EncodeTwoOp(Opcode::kMov, src, dst));
  ASSERT_TRUE(insn.has_value());
  EXPECT_EQ(insn->length, 3);
}

TEST(IsaDecode, OneOpRoundTrip) {
  auto insn = Decode(EncodeOneOp(Opcode::kInc, {AddrMode::kReg, 5}));
  ASSERT_TRUE(insn.has_value());
  EXPECT_EQ(insn->opcode, Opcode::kInc);
  EXPECT_EQ(insn->dst.reg, 5);
  EXPECT_EQ(insn->length, 1);
}

TEST(IsaDecode, BranchOffsetSignExtension) {
  auto fwd = Decode(EncodeBranch(Opcode::kBne, 5));
  ASSERT_TRUE(fwd.has_value());
  EXPECT_EQ(fwd->branch_offset, 5);
  auto back = Decode(EncodeBranch(Opcode::kBr, -3));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->branch_offset, -3);
}

TEST(IsaDecode, TrapCode) {
  auto insn = Decode(EncodeTrap(0x2A5));
  ASSERT_TRUE(insn.has_value());
  EXPECT_EQ(insn->opcode, Opcode::kTrap);
  EXPECT_EQ(insn->trap_code, 0x2A5);
}

TEST(IsaDecode, AllValidOpcodesRoundTrip) {
  for (int op = 0; op < 64; ++op) {
    auto shape = OpcodeShape(static_cast<std::uint8_t>(op));
    Word w = static_cast<Word>(op << 10);
    auto insn = Decode(w);
    EXPECT_EQ(insn.has_value(), shape.has_value()) << "opcode " << op;
    if (insn.has_value()) {
      EXPECT_EQ(static_cast<int>(insn->opcode), op);
    }
  }
}

TEST(IsaDisasm, Renders) {
  auto mov = Decode(EncodeTwoOp(Opcode::kMov, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 1}));
  ASSERT_TRUE(mov.has_value());
  EXPECT_EQ(Disassemble(*mov, 5, 0), "MOV #000005, R1");
  auto trap = Decode(EncodeTrap(3));
  EXPECT_EQ(Disassemble(*trap, 0, 0), "TRAP 3");
}

}  // namespace
}  // namespace sep
