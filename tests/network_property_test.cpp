// Property sweeps of the distributed substrate: links preserve FIFO order
// and deliver exactly-once across every capacity/latency combination, and
// the network as a whole is deterministic.
#include <gtest/gtest.h>

#include <tuple>

#include "src/base/rng.h"
#include "src/distributed/network.h"

namespace sep {
namespace {

class Feeder : public Process {
 public:
  Feeder(int total, std::uint64_t seed) : total_(total), rng_(seed) {}
  std::string name() const override { return "feeder"; }
  void Step(NodeContext& ctx) override {
    // Bursty: sends 0..3 words per step, as the link accepts them.
    const int burst = static_cast<int>(rng_.NextBelow(4));
    for (int i = 0; i < burst && sent_ < total_; ++i) {
      if (!ctx.Send(0, static_cast<Word>(sent_ + 1))) {
        break;
      }
      ++sent_;
    }
  }
  bool Finished() const override { return sent_ >= total_; }

 private:
  int total_;
  int sent_ = 0;
  Rng rng_;
};

class Drain : public Process {
 public:
  Drain(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "drain"; }
  void Step(NodeContext& ctx) override {
    if (ctx.in_port_count() == 0) {
      return;  // disconnected node in the random-topology sweep
    }
    // Lazy: reads only sometimes, and only a few words.
    if (!rng_.NextChance(2, 3)) {
      return;
    }
    const int reads = static_cast<int>(rng_.NextBelow(5));
    for (int i = 0; i < reads; ++i) {
      std::optional<Word> w = ctx.Receive(0);
      if (!w.has_value()) {
        return;
      }
      got_.push_back(*w);
    }
  }
  const std::vector<Word>& got() const { return got_; }

 private:
  Rng rng_;
  std::vector<Word> got_;
};

using LinkParam = std::tuple<std::size_t /*capacity*/, Tick /*latency*/>;

class LinkSweep : public ::testing::TestWithParam<LinkParam> {};

TEST_P(LinkSweep, FifoExactlyOnceUnderBurstyTraffic) {
  const auto [capacity, latency] = GetParam();
  const int kTotal = 200;

  Network net;
  int feeder = net.AddNode(std::make_unique<Feeder>(kTotal, 11));
  int drain = net.AddNode(std::make_unique<Drain>(22));
  net.Connect(feeder, drain, capacity, latency);
  net.Run(20000);

  auto& sink = static_cast<Drain&>(net.process(drain));
  ASSERT_EQ(sink.got().size(), static_cast<std::size_t>(kTotal))
      << "capacity " << capacity << " latency " << latency;
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(sink.got()[static_cast<std::size_t>(i)], static_cast<Word>(i + 1))
        << "position " << i;
  }
}

TEST_P(LinkSweep, LatencyIsALowerBoundOnDelivery) {
  const auto [capacity, latency] = GetParam();
  Network net;
  int feeder = net.AddNode(std::make_unique<Feeder>(1, 1));
  int drain = net.AddNode(std::make_unique<Drain>(2));
  net.Connect(feeder, drain, capacity, latency);
  auto& sink = static_cast<Drain&>(net.process(drain));
  for (Tick step = 0; step < latency && sink.got().empty(); ++step) {
    net.Step();
    // Before `latency` steps have elapsed nothing can have arrived.
    EXPECT_TRUE(sink.got().empty()) << "step " << step << " latency " << latency;
  }
  net.Run(1000);
  EXPECT_EQ(sink.got().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LinkSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 7, 64),
                       ::testing::Values<Tick>(1, 3, 10)),
    [](const ::testing::TestParamInfo<LinkParam>& info) {
      return "cap" + std::to_string(std::get<0>(info.param)) + "_lat" +
             std::to_string(std::get<1>(info.param));
    });

TEST(NetworkProperty, EdgesAreTheOnlyFlowEverywhere) {
  // Random topologies: reachability computed from edges must agree with
  // actual word flow (a node with no path from the feeder receives nothing).
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    Network net;
    const int n = 5;
    int feeder = net.AddNode(std::make_unique<Feeder>(50, rng.Next()));
    std::vector<int> drains;
    for (int i = 1; i < n; ++i) {
      drains.push_back(net.AddNode(std::make_unique<Drain>(rng.Next())));
    }
    // Feeder gets exactly one outgoing link to a random drain; drains get a
    // random chain among themselves. NOTE: processes only use port 0, so
    // each node gets at most one in-link and one out-link here.
    std::vector<int> order = drains;
    rng.Shuffle(order);
    net.Connect(feeder, order[0], 32, 1);
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      if (rng.NextChance(1, 2)) {
        // Chain only forwards nothing (Drain never sends), but the edge
        // exists for reachability.
        net.Connect(order[i], order[i + 1], 32, 1);
      }
    }
    net.Run(3000);
    for (int drain : drains) {
      auto& sink = static_cast<Drain&>(net.process(drain));
      if (!net.Reachable(feeder, drain)) {
        EXPECT_TRUE(sink.got().empty());
      }
    }
    // The directly-connected drain received everything.
    auto& first = static_cast<Drain&>(net.process(order[0]));
    EXPECT_EQ(first.got().size(), 50u);
  }
}

}  // namespace
}  // namespace sep
