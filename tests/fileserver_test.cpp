// E12: the MLS file-server as the sole trusted component.
#include <gtest/gtest.h>

#include "src/components/fileserver.h"

namespace sep {
namespace {

SecurityLevel Unc() { return SecurityLevel(Classification::kUnclassified); }
SecurityLevel Sec() { return SecurityLevel(Classification::kSecret); }

struct Rig {
  Network net;
  FileServer* server = nullptr;
  std::vector<FileClient*> clients;

  // users[i] paired with scripts[i]; delays[i] holds back client i's first
  // request so cross-client scenarios are ordered deterministically.
  Rig(std::vector<FileServerUser> users, std::vector<std::vector<Frame>> scripts,
      std::vector<Tick> delays = {}) {
    auto server_owned = std::make_unique<FileServer>(users);
    server = server_owned.get();
    int server_node = net.AddNode(std::move(server_owned));
    for (std::size_t i = 0; i < users.size(); ++i) {
      const Tick delay = i < delays.size() ? delays[i] : 0;
      auto client = std::make_unique<FileClient>(users[i].name, scripts[i], delay);
      clients.push_back(client.get());
      int node = net.AddNode(std::move(client));
      // Line i: client -> server must be the server's in-port i, so connect
      // in user order; replies go back on out-port i.
      net.Connect(node, server_node);
      net.Connect(server_node, node);
    }
  }

  void Run(std::size_t steps = 3000) { net.Run(steps); }
};

TEST(FileServer, CreateWriteReadAtOwnLevel) {
  CategoryRegistry::Instance().Reset();
  Rig rig({{"alice", Sec()}},
          {{FsCreate(Sec(), "notes"), FsWrite("notes", {10, 20, 30}), FsRead("notes", 0, 8)}});
  rig.Run();
  const auto& replies = rig.clients[0]->replies();
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0].type, kFsOk);
  EXPECT_EQ(replies[1].type, kFsOk);
  ASSERT_EQ(replies[2].type, kFsData);
  EXPECT_EQ(replies[2].fields, (std::vector<Word>{kFsRead, 10, 20, 30}));
}

TEST(FileServer, NoReadUp) {
  CategoryRegistry::Instance().Reset();
  Rig rig({{"secret-user", Sec()}, {"low-user", Unc()}},
          {{FsCreate(Sec(), "warplan"), FsWrite("warplan", {1, 2, 3, 4})},
           {FsRead("warplan", 0, 4)}},
          {0, 20});
  rig.Run();
  const auto& low_replies = rig.clients[1]->replies();
  ASSERT_EQ(low_replies.size(), 1u);
  EXPECT_EQ(low_replies[0].type, kFsErr);
  // Denial is indistinguishable from nonexistence for the low user.
  EXPECT_EQ(low_replies[0].fields[1], kFsENotFound);
}

TEST(FileServer, NoWriteDown) {
  CategoryRegistry::Instance().Reset();
  Rig rig({{"low-user", Unc()}, {"secret-user", Sec()}},
          {{FsCreate(Unc(), "bulletin")},
           {FsWrite("bulletin", {0xDEAD})}});
  rig.Run();
  const auto& high_replies = rig.clients[1]->replies();
  ASSERT_EQ(high_replies.size(), 1u);
  EXPECT_EQ(high_replies[0].type, kFsErr);
  EXPECT_EQ(high_replies[0].fields[1], kFsEDenied);
  EXPECT_TRUE(rig.server->FileContents("bulletin").empty());
}

TEST(FileServer, BlindWriteUpAllowed) {
  CategoryRegistry::Instance().Reset();
  Rig rig({{"secret-user", Sec()}, {"low-user", Unc()}},
          {{FsCreate(Sec(), "dropbox")},
           {FsWrite("dropbox", {42}), FsRead("dropbox", 0, 1)}},
          {0, 20});
  rig.Run();
  const auto& low_replies = rig.clients[1]->replies();
  ASSERT_EQ(low_replies.size(), 2u);
  EXPECT_EQ(low_replies[0].type, kFsOk);        // append up: allowed
  EXPECT_EQ(low_replies[1].type, kFsErr);       // read back: denied
  EXPECT_EQ(rig.server->FileContents("dropbox"), (std::vector<Word>{42}));
}

TEST(FileServer, CreateDownDenied) {
  CategoryRegistry::Instance().Reset();
  Rig rig({{"secret-user", Sec()}}, {{FsCreate(Unc(), "leak-by-name")}});
  rig.Run();
  ASSERT_EQ(rig.clients[0]->replies().size(), 1u);
  EXPECT_EQ(rig.clients[0]->replies()[0].type, kFsErr);
  EXPECT_FALSE(rig.server->HasFile("leak-by-name"));
}

TEST(FileServer, DeleteRequiresSameLevel) {
  CategoryRegistry::Instance().Reset();
  Rig rig({{"low-user", Unc()}, {"secret-user", Sec()}},
          {{FsCreate(Unc(), "junk")},
           {FsDelete("junk")}},
          {0, 20});
  rig.Run();
  ASSERT_EQ(rig.clients[1]->replies().size(), 1u);
  EXPECT_EQ(rig.clients[1]->replies()[0].type, kFsErr);
  EXPECT_TRUE(rig.server->HasFile("junk"));
}

TEST(FileServer, ListShowsOnlyReadableFiles) {
  CategoryRegistry::Instance().Reset();
  Rig rig({{"secret-user", Sec()}, {"low-user", Unc()}},
          {{FsCreate(Sec(), "s-file")},
           {FsCreate(Unc(), "u-file"), FsList()}},
          {0, 20});
  rig.Run();
  const auto& low_replies = rig.clients[1]->replies();
  ASSERT_EQ(low_replies.size(), 2u);
  ASSERT_EQ(low_replies[1].type, kFsData);
  // Listing contains u-file only: [len=6]['u''-''f''i''l''e'].
  std::string names = WordsToString(low_replies[1].fields, 1);
  EXPECT_NE(names.find("u-file"), std::string::npos);
  EXPECT_EQ(names.find("s-file"), std::string::npos);
}

TEST(FileServer, HighUserSeesEverything) {
  CategoryRegistry::Instance().Reset();
  Rig rig({{"low-user", Unc()}, {"secret-user", Sec()}},
          {{FsCreate(Unc(), "low-data"), FsWrite("low-data", {7})},
           {FsRead("low-data", 0, 1)}},
          {0, 40});
  rig.Run();
  const auto& high_replies = rig.clients[1]->replies();
  ASSERT_EQ(high_replies.size(), 1u);
  ASSERT_EQ(high_replies[0].type, kFsData);
  EXPECT_EQ(high_replies[0].fields, (std::vector<Word>{kFsRead, 7}));
}

TEST(FileServer, AuditTrailRecordsDenials) {
  CategoryRegistry::Instance().Reset();
  Rig rig({{"secret-user", Sec()}, {"low-user", Unc()}},
          {{FsCreate(Sec(), "x"), FsWrite("x", {1})},
           {FsRead("x", 0, 1), FsRead("x", 0, 1)}},
          {0, 20});
  rig.Run();
  EXPECT_GE(rig.server->monitor().denied_count(), 2u);
}

TEST(FileServer, MalformedRequestsRejectedSafely) {
  CategoryRegistry::Instance().Reset();
  Rig rig({{"user", Unc()}},
          {{Frame{kFsCreate, {}}, Frame{kFsWrite, {50}}, Frame{0x7F, {1, 2}},
            Frame{kFsRead, {2, 'h', 'i'}}}});
  rig.Run();
  const auto& replies = rig.clients[0]->replies();
  ASSERT_EQ(replies.size(), 4u);
  for (const Frame& reply : replies) {
    EXPECT_EQ(reply.type, kFsErr);
  }
  EXPECT_EQ(rig.server->file_count(), 0u);
}

}  // namespace
}  // namespace sep
