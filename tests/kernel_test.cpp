// Functional tests of the separation kernel: partition isolation, SWAP
// round-robin, kernel-mediated channels, interrupt forwarding, fault
// containment.
#include <gtest/gtest.h>

#include "src/core/kernel_system.h"
#include "src/machine/devices.h"

namespace sep {
namespace {

// A regime that counts in R3 and yields each iteration, publishing the
// counter at partition word 0x40.
constexpr char kCounter[] = R"(
        .ORG 0x10
START:  CLR R3
LOOP:   INC R3
        MOV R3, @0x40
        TRAP 0          ; SWAP
        BR LOOP
)";

TEST(KernelBoot, TwoRegimesRunRoundRobin) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("red", 512, kCounter).ok());
  ASSERT_TRUE(builder.AddRegime("black", 512, kCounter).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  (*sys)->Run(200);
  // Both regimes made comparable progress.
  const auto& regimes = (*sys)->kernel().config().regimes;
  Word red_count = (*sys)->machine().memory().Read(regimes[0].mem_base + 0x40);
  Word black_count = (*sys)->machine().memory().Read(regimes[1].mem_base + 0x40);
  EXPECT_GT(red_count, 3);
  EXPECT_GT(black_count, 3);
  EXPECT_NEAR(red_count, black_count, 2);
  EXPECT_GT((*sys)->kernel().SwapCount(), 5u);
}

TEST(KernelBoot, EntryPointHonoursOrg) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("solo", 512, R"(
        .ORG 0x20
        MOV #7, R1
        MOV R1, @0x40
        TRAP 7          ; HALT
)").ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(50);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
  EXPECT_EQ((*sys)->machine().memory().Read(0x40), 7);
}

TEST(KernelIsolation, CrossPartitionReadFaultsAndHaltsRegime) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("spy", 512, R"(
        MOV #0x2000, R4
        MOV (R4), R0    ; page 1 is unmapped: MMU abort
        MOV #1, R1      ; never reached
)").ok());
  ASSERT_TRUE(builder.AddRegime("victim", 512, kCounter).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(100);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
  EXPECT_FALSE((*sys)->kernel().RegimeHalted(1));
  // The spy never got past the faulting instruction.
  EXPECT_EQ((*sys)->kernel().RegimeSavedReg(0, 1), 0);
}

TEST(KernelIsolation, WriteToKernelPartitionFaults) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("attacker", 256, R"(
        MOV #0x3000, R4
        MOV #0xDEAD, R0
        MOV R0, (R4)    ; outside the 256-word partition
)").ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(50);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
}

TEST(KernelIsolation, PrivilegedInstructionHaltsRegime) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("rogue", 256, "HALT\n").ok());
  ASSERT_TRUE(builder.AddRegime("peer", 256, kCounter).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(100);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
  EXPECT_FALSE((*sys)->machine().halted());
  EXPECT_FALSE((*sys)->kernel().RegimeHalted(1));
}

TEST(KernelChannels, SendReceiveInOrder) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("producer", 512, R"(
        CLR R3
LOOP:   INC R3
        MOV R3, R1
        CLR R0          ; channel 0
        TRAP 1          ; SEND
        TRAP 0          ; SWAP
        CMP #8, R3
        BNE LOOP
        TRAP 7
)").ok());
  ASSERT_TRUE(builder.AddRegime("consumer", 512, R"(
        MOV #0x80, R4   ; store incoming words from 0x80
LOOP:   CLR R0
        TRAP 2          ; RECV
        TST R0
        BEQ YIELD
        MOV R1, (R4)
        INC R4
        BR LOOP
YIELD:  TRAP 0
        BR LOOP
)").ok());
  builder.AddChannel("p2c", 0, 1, 4);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(2000);

  // The consumer stored 1..8 in order.
  const auto& regimes = (*sys)->kernel().config().regimes;
  for (Word i = 0; i < 8; ++i) {
    EXPECT_EQ((*sys)->machine().memory().Read(regimes[1].mem_base + 0x80 + i), i + 1)
        << "word " << i;
  }
}

TEST(KernelChannels, BackpressureWhenFull) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("flooder", 512, R"(
        CLR R3          ; successful sends
        CLR R5          ; rejected sends
        CLR R2          ; attempts
LOOP:   MOV #1, R1
        CLR R0
        TRAP 1          ; SEND (receiver never drains)
        TST R0
        BEQ FULL
        INC R3
        BR NEXT
FULL:   INC R5
NEXT:   INC R2
        CMP #10, R2
        BNE LOOP
        MOV R3, @0x40
        MOV R5, @0x42
        TRAP 7
)").ok());
  ASSERT_TRUE(builder.AddRegime("sleeper", 512, "LOOP: TRAP 0\n       BR LOOP\n").ok());
  builder.AddChannel("c", 0, 1, 4);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(2000);
  const auto& regimes = (*sys)->kernel().config().regimes;
  Word sent = (*sys)->machine().memory().Read(regimes[0].mem_base + 0x40);
  Word rejected = (*sys)->machine().memory().Read(regimes[0].mem_base + 0x42);
  EXPECT_EQ(sent, 4);       // capacity
  EXPECT_EQ(rejected, 6);   // the rest bounced
}

TEST(KernelChannels, SendWithoutRightsHaltsRegime) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("a", 256, R"(
        CLR R0
        TRAP 1          ; SEND on a channel owned by b->a: denied
)").ok());
  ASSERT_TRUE(builder.AddRegime("b", 256, kCounter).ok());
  builder.AddChannel("b2a", 1, 0, 4);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(100);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
}

TEST(KernelInterrupts, ForwardedToOwningRegime) {
  SystemBuilder builder;
  int slu = builder.AddDevice(std::make_unique<SerialLine>("slu", 16, 4, 1));
  ASSERT_TRUE(builder.AddRegime("driver", 512, R"(
        .EQU DEV, 0xE000
START:  CLR R0          ; local device 0
        MOV #HANDLER, R1
        TRAP 4          ; SETVEC
        MOV #DEV, R4
        MOV #0x40, (R4) ; RCSR interrupt enable
LOOP:   TRAP 6          ; AWAIT
        BR LOOP
HANDLER:
        MOV #DEV, R4
        MOV 1(R4), R2   ; read RBUF
        MOV R2, @0x60   ; publish
        TRAP 5          ; RETI
)", {slu}).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  (*sys)->machine().device(slu).InjectInput('X');
  (*sys)->Run(100);
  const auto& regimes = (*sys)->kernel().config().regimes;
  EXPECT_EQ((*sys)->machine().memory().Read(regimes[0].mem_base + 0x60), 'X');
  EXPECT_GE((*sys)->kernel().IrqForwardCount(), 1u);
}

TEST(KernelInterrupts, AwaitBlocksUntilInterrupt) {
  SystemBuilder builder;
  int clk = builder.AddDevice(std::make_unique<LineClock>("clk", 20, 6, 10));
  ASSERT_TRUE(builder.AddRegime("ticker", 512, R"(
        .EQU CLK, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4          ; SETVEC
        MOV #CLK, R4
        MOV #0x40, (R4) ; enable clock interrupts
LOOP:   TRAP 6          ; AWAIT
        BR LOOP
HANDLER:
        MOV TICKS, R2
        INC R2
        MOV R2, @TICKS
        MOV #CLK, R4
        MOV #0x40, (R4) ; clear DONE, keep IE
        TRAP 5          ; RETI
TICKS:  .WORD 0
)", {clk}).ok());
  ASSERT_TRUE(builder.AddRegime("busy", 512, kCounter).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(300);

  const auto& regimes = (*sys)->kernel().config().regimes;
  Word ticks_addr = 0;
  // TICKS label address: look it up by assembling again.
  Result<AssembledProgram> p = Assemble(R"(
        .EQU CLK, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4
        MOV #CLK, R4
        MOV #0x40, (R4)
LOOP:   TRAP 6
        BR LOOP
HANDLER:
        MOV TICKS, R2
        INC R2
        MOV R2, @TICKS
        MOV #CLK, R4
        MOV #0x40, (R4)
        TRAP 5
TICKS:  .WORD 0
)");
  ASSERT_TRUE(p.ok());
  ticks_addr = p->SymbolOr("TICKS", 0);
  Word ticks = (*sys)->machine().memory().Read(regimes[0].mem_base + ticks_addr);
  EXPECT_GE(ticks, 5);   // clock fires every 10 steps over a 300-step run
  EXPECT_LE(ticks, 40);
}

TEST(KernelLifecycle, AllHaltedStopsMachine) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("one", 256, "TRAP 7\n").ok());
  ASSERT_TRUE(builder.AddRegime("two", 256, "TRAP 7\n").ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(100);
  EXPECT_TRUE((*sys)->machine().halted());
  EXPECT_TRUE((*sys)->kernel().AllRegimesHalted());
}

TEST(KernelLifecycle, GetIdReturnsOwnIndex) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("zero", 256, R"(
        TRAP 8
        MOV R0, @0x40
        TRAP 7
)").ok());
  ASSERT_TRUE(builder.AddRegime("one", 256, R"(
        TRAP 8
        MOV R0, @0x40
        TRAP 7
)").ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(200);
  const auto& regimes = (*sys)->kernel().config().regimes;
  EXPECT_EQ((*sys)->machine().memory().Read(regimes[0].mem_base + 0x40), 0);
  EXPECT_EQ((*sys)->machine().memory().Read(regimes[1].mem_base + 0x40), 1);
}

TEST(KernelConfigValidation, OverlappingPartitionsRejected) {
  KernelConfig config;
  config.kernel_base = 0x4000;
  config.kernel_words = 1024;
  config.regimes.push_back({"a", 0, 512, 0, {}});
  config.regimes.push_back({"b", 256, 512, 0, {}});  // overlaps a
  EXPECT_FALSE(ValidateConfig(config, 1u << 15, 0).ok());
}

TEST(KernelConfigValidation, SharedDeviceRejected) {
  KernelConfig config;
  config.kernel_base = 0x4000;
  config.kernel_words = 1024;
  config.regimes.push_back({"a", 0, 512, 0, {0}});
  config.regimes.push_back({"b", 1024, 512, 0, {0}});
  EXPECT_FALSE(ValidateConfig(config, 1u << 15, 1).ok());
}

TEST(KernelConfigValidation, SelfChannelRejected) {
  KernelConfig config;
  config.kernel_base = 0x4000;
  config.kernel_words = 1024;
  config.regimes.push_back({"a", 0, 512, 0, {}});
  config.channels.push_back({"loop", 0, 0, 8});
  EXPECT_FALSE(ValidateConfig(config, 1u << 15, 0).ok());
}

}  // namespace
}  // namespace sep
