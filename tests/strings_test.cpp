// Strict CLI numeric parsing (sep::ParseInt / sep::ParseDouble). The whole
// point of these helpers is what they REJECT: atoi-style silent zeroes are
// how "--tolerance abc" became a hard-fail gate and "--jobs x" a zero-thread
// run before the CLIs moved to strict parsing.
#include <gtest/gtest.h>

#include "src/base/strings.h"

namespace sep {
namespace {

TEST(ParseInt, AcceptsPlainDecimal) {
  EXPECT_EQ(ParseInt("0", 0, 100), 0);
  EXPECT_EQ(ParseInt("42", 0, 100), 42);
  EXPECT_EQ(ParseInt("+7", 0, 100), 7);
  EXPECT_EQ(ParseInt("-5", -10, 10), -5);
}

TEST(ParseInt, BoundsAreInclusive) {
  EXPECT_EQ(ParseInt("1", 1, 8), 1);
  EXPECT_EQ(ParseInt("8", 1, 8), 8);
  EXPECT_EQ(ParseInt("0", 1, 8), std::nullopt);
  EXPECT_EQ(ParseInt("9", 1, 8), std::nullopt);
}

TEST(ParseInt, RejectsJunk) {
  EXPECT_EQ(ParseInt("", 0, 100), std::nullopt);
  EXPECT_EQ(ParseInt("abc", 0, 100), std::nullopt);
  EXPECT_EQ(ParseInt("12x", 0, 100), std::nullopt);   // the atoi("12x")==12 trap
  EXPECT_EQ(ParseInt("1e3", 0, 10000), std::nullopt); // exponents are not integers
  EXPECT_EQ(ParseInt(" 7", 0, 100), std::nullopt);    // no leading whitespace
  EXPECT_EQ(ParseInt("7 ", 0, 100), std::nullopt);    // no trailing whitespace
  EXPECT_EQ(ParseInt("-", -10, 10), std::nullopt);
  EXPECT_EQ(ParseInt("--5", -10, 10), std::nullopt);
}

TEST(ParseInt, RejectsOverflow) {
  EXPECT_EQ(ParseInt("99999999999999999999", 0, 100), std::nullopt);  // > LLONG_MAX
  EXPECT_EQ(ParseInt("-99999999999999999999", -100, 100), std::nullopt);
}

TEST(ParseInt, BaseZeroTakesPrefixes) {
  EXPECT_EQ(ParseInt("0x10", 0, 100, 0), 16);
  EXPECT_EQ(ParseInt("010", 0, 100, 0), 8);   // octal, classic strtol base 0
  EXPECT_EQ(ParseInt("10", 0, 100, 0), 10);
  // Base 10 stays strict: "0x10" is junk, not 0-followed-by-x10.
  EXPECT_EQ(ParseInt("0x10", 0, 100), std::nullopt);
}

TEST(ParseDouble, AcceptsFiniteNumbers) {
  EXPECT_EQ(ParseDouble("0.05"), 0.05);
  EXPECT_EQ(ParseDouble("-2.5"), -2.5);
  EXPECT_EQ(ParseDouble("1e-3"), 1e-3);
  EXPECT_EQ(ParseDouble("3"), 3.0);
}

TEST(ParseDouble, RejectsJunkAndNonFinite) {
  EXPECT_EQ(ParseDouble(""), std::nullopt);
  EXPECT_EQ(ParseDouble("abc"), std::nullopt);
  EXPECT_EQ(ParseDouble("1.5x"), std::nullopt);   // the strtod-trailing-junk trap
  EXPECT_EQ(ParseDouble(" 1.0"), std::nullopt);
  EXPECT_EQ(ParseDouble("inf"), std::nullopt);    // strtod accepts these; a
  EXPECT_EQ(ParseDouble("nan"), std::nullopt);    // tolerance must be finite
  EXPECT_EQ(ParseDouble("-inf"), std::nullopt);
  EXPECT_EQ(ParseDouble("1e400"), std::nullopt);  // overflows to infinity
}

}  // namespace
}  // namespace sep
