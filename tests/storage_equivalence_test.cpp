// Storage equivalence: the compact-store exhaustive checker (arena-interned
// serialized states + RestoreFullState reconstruction) must produce reports
// BYTE-IDENTICAL to the original clone-retaining implementation. The golden
// renderings below were captured from that implementation before the store
// was introduced; every counter, per-condition stat, violation order and
// Summary() byte is pinned, serial and parallel.
//
// Also here: FullState ∘ RestoreFullState round-trip properties, since the
// equivalence above is exactly as trustworthy as that inverse.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/base/thread_pool.h"
#include "src/core/exhaustive.h"
#include "src/core/kernel_system.h"
#include "src/model/toy_systems.h"

namespace sep {
namespace {

constexpr char kGoodA[] = R"(
START:  MOV #3, R0
        ADD #2, R0
        TRAP 0
        INC R1
        TRAP 7
)";

constexpr char kGoodB[] = R"(
START:  CLR R2
        INC R2
        TRAP 0
        ADD R0, R2
        TRAP 7
)";

std::unique_ptr<KernelizedSystem> BuildHalting(const KernelFaults& faults = {}) {
  SystemBuilder builder;
  builder.WithMemoryWords(1u << 12);
  EXPECT_TRUE(builder.AddRegime("red", 64, kGoodA).ok());
  EXPECT_TRUE(builder.AddRegime("black", 64, kGoodB).ok());
  builder.WithFaults(faults);
  auto system = builder.Build();
  EXPECT_TRUE(system.ok()) << system.error();
  return std::move(system.value());
}

// Renders every observable field of the report; golden comparison of this
// string pins the whole report, not just the verdict.
std::string Render(const ExhaustiveReport& r) {
  std::string out = r.Summary();
  out += "\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "transitions=%zu pairs=%zu\n", r.transitions, r.pairs_checked);
  out += buf;
  for (const Violation& v : r.violations) {
    std::snprintf(buf, sizeof buf, "V c%d colour%d step%llu ", v.condition, v.colour,
                  static_cast<unsigned long long>(v.step));
    out += buf;
    out += v.description;
    out += "\n";
  }
  return out;
}

std::string Check(const SharedSystem& system, int threads) {
  ExhaustiveOptions options;
  options.threads = threads;
  return Render(CheckSeparabilityExhaustive(system, options));
}

constexpr char kGoldenGood[] =
    "11 states, 11 transitions, 18 pairs, COMPLETE: "
    "C1 0/0 C2 0/12 C3 0/0 C4 0/0 C5 0/0 C6 0/0 => SEPARABLE\n"
    "transitions=11 pairs=18\n";

constexpr char kGoldenSkipRestore[] =
    "11 states, 11 transitions, 10 pairs, COMPLETE: "
    "C1 0/0 C2 3/12 C3 0/0 C4 0/0 C5 0/0 C6 0/0 => VIOLATIONS\n"
    "transitions=11 pairs=10\n"
    "V c2 colour1 step0 operation of colour 0 changed Φ of colour 1\n"
    "V c2 colour0 step0 operation of colour 1 changed Φ of colour 0\n"
    "V c2 colour1 step0 operation of colour 0 changed Φ of colour 1\n";

constexpr char kGoldenTinySecure[] =
    "3528 states, 24696 transitions, 217272 pairs, COMPLETE: "
    "C1 0/50802 C2 0/3528 C3 0/651816 C4 0/21168 C5 0/217272 C6 0/50802 => SEPARABLE\n"
    "transitions=24696 pairs=217272\n";

const std::string kGoldenTinyLeaky = [] {
  std::string golden =
      "2646 states, 18522 transitions, 70 pairs, COMPLETE: "
      "C1 16/36 C2 0/2646 C3 0/210 C4 0/15876 C5 0/70 C6 0/36 => VIOLATIONS\n"
      "transitions=18522 pairs=70\n";
  for (int i = 0; i < 16; ++i) {
    golden +=
        "V c1 colour0 step0 operation effect on colour 0 differs across Φ-equal states\n";
  }
  return golden;
}();

TEST(StorageEquivalence, KernelizedGoodMatchesGolden) {
  auto system = BuildHalting();
  EXPECT_EQ(Check(*system, 1), kGoldenGood);
  EXPECT_EQ(Check(*system, 4), kGoldenGood);
}

TEST(StorageEquivalence, KernelizedLeakConditionCodesMatchesGolden) {
  // This fault is not exposed by the halting config (neither program's Φ
  // depends on inherited condition codes), so its golden equals the good
  // one — what is pinned is that the checker still says exactly that.
  KernelFaults faults;
  faults.leak_condition_codes = true;
  auto system = BuildHalting(faults);
  EXPECT_EQ(Check(*system, 1), kGoldenGood);
  EXPECT_EQ(Check(*system, 4), kGoldenGood);
}

TEST(StorageEquivalence, KernelizedSkipRestoreMatchesGolden) {
  // A real defect: violation count, ORDER and texts are pinned, serial and
  // parallel.
  KernelFaults faults;
  faults.skip_register_restore = true;
  auto system = BuildHalting(faults);
  EXPECT_EQ(Check(*system, 1), kGoldenSkipRestore);
  EXPECT_EQ(Check(*system, 4), kGoldenSkipRestore);
}

TEST(StorageEquivalence, TinySystemsMatchGolden) {
  EXPECT_EQ(Check(TinyTwoUserSystem(false), 1), kGoldenTinySecure);
  EXPECT_EQ(Check(TinyTwoUserSystem(true), 1), kGoldenTinyLeaky);
}

TEST(StorageEquivalence, SchedulePerturbationKeepsReportsByteIdentical) {
  // The steal-victim order is a function of steal_seed; sweeping it at
  // several thread counts perturbs which worker expands which state and in
  // what order. The canonical post-pass must erase all of it: every
  // rendering equals the serial golden byte for byte.
  auto good = BuildHalting();
  KernelFaults faults;
  faults.skip_register_restore = true;
  auto leaky = BuildHalting(faults);

  int hw = ThreadPool::HardwareThreads();
  if (hw < 2) {
    hw = 4;  // oversubscribe on 1-core hosts: stealing still interleaves
  }
  for (int threads : {1, 2, hw}) {
    for (std::uint64_t seed : {0ull, 1ull, 0xDEADBEEFull, 0x9E3779B97F4A7C15ull}) {
      ExhaustiveOptions options;
      options.threads = threads;
      options.steal_seed = seed;
      EXPECT_EQ(Render(CheckSeparabilityExhaustive(*good, options)), kGoldenGood)
          << "threads=" << threads << " seed=" << seed;
      EXPECT_EQ(Render(CheckSeparabilityExhaustive(*leaky, options)), kGoldenSkipRestore)
          << "threads=" << threads << " seed=" << seed;
    }
  }
}

TEST(StorageEquivalence, SchedulePerturbationOnWiderStateSpace) {
  // Same sweep over the tiny system's 3528-state space: wide enough that
  // parallel workers genuinely race on shard inserts and steal from each
  // other, so a schedule-dependence bug cannot hide behind an 11-state
  // chain that one worker swallows whole.
  for (std::uint64_t seed : {1ull, 0xC0FFEEull}) {
    ExhaustiveOptions options;
    options.threads = 4;
    options.steal_seed = seed;
    EXPECT_EQ(Render(CheckSeparabilityExhaustive(TinyTwoUserSystem(false), options)),
              kGoldenTinySecure)
        << "seed=" << seed;
  }
}

TEST(StorageEquivalence, StoreDiagnosticsAreDeterministic) {
  // The new report fields are as deterministic as the rest: thread count
  // must not show through restore counts or the store's footprint.
  ExhaustiveOptions serial;
  serial.threads = 1;
  ExhaustiveOptions parallel;
  parallel.threads = 4;
  auto system = BuildHalting();
  const ExhaustiveReport a = CheckSeparabilityExhaustive(*system, serial);
  const ExhaustiveReport b = CheckSeparabilityExhaustive(*system, parallel);
  EXPECT_GT(a.peak_state_bytes, 0u);
  EXPECT_GT(a.restore_count, 0u);
  EXPECT_EQ(a.peak_state_bytes, b.peak_state_bytes);
  EXPECT_EQ(a.restore_count, b.restore_count);
}

// --- FullState ∘ RestoreFullState = id -----------------------------------

// Serializes, restores into `target`, and verifies both serializations and
// subsequent behaviour agree.
void ExpectRoundTrip(const SharedSystem& source, SharedSystem& target) {
  std::vector<Word> snapshot;
  source.AppendFullState(snapshot);
  ASSERT_TRUE(target.RestoreFullState(snapshot));
  std::vector<Word> again;
  target.AppendFullState(again);
  EXPECT_EQ(snapshot, again);
}

TEST(RestoreRoundTrip, TinySystemAcrossItsReachableStates) {
  TinyTwoUserSystem walker(false);
  TinyTwoUserSystem scratch(false);
  Rng rng(7);
  for (int step = 0; step < 200; ++step) {
    ExpectRoundTrip(walker, scratch);
    // Restored and original must select and execute identically.
    EXPECT_EQ(walker.Colour(), scratch.Colour());
    EXPECT_TRUE(walker.NextOperation() == scratch.NextOperation());
    switch (rng.NextBelow(3)) {
      case 0:
        walker.ExecuteOperation();
        break;
      case 1:
        walker.InjectInput(static_cast<int>(rng.NextBelow(2)),
                           static_cast<Word>(rng.NextBelow(3)));
        break;
      default: {
        const int unit = static_cast<int>(rng.NextBelow(2));
        walker.StepUnit(unit);
        (void)walker.DrainOutput(unit);
        break;
      }
    }
  }
}

TEST(RestoreRoundTrip, KernelizedSystemAcrossItsReachableStates) {
  auto walker = BuildHalting();
  auto scratch = walker->Clone();
  for (int step = 0; step < 120; ++step) {
    ExpectRoundTrip(*walker, *scratch);
    EXPECT_EQ(walker->Colour(), scratch->Colour());
    EXPECT_TRUE(walker->NextOperation() == scratch->NextOperation());
    walker->ExecuteOperation();
  }
}

TEST(RestoreRoundTrip, RestoredKernelizedSystemBehavesIdentically) {
  // Behavioural lockstep: restore a mid-execution state into a FRESH build
  // of the same configuration and run both to completion, comparing full
  // serializations at every step.
  auto original = BuildHalting();
  for (int i = 0; i < 7; ++i) {
    original->ExecuteOperation();
  }
  auto restored = BuildHalting();
  std::vector<Word> mid;
  original->AppendFullState(mid);
  ASSERT_TRUE(restored->RestoreFullState(mid));

  for (int i = 0; i < 50; ++i) {
    std::vector<Word> a;
    std::vector<Word> b;
    original->AppendFullState(a);
    restored->AppendFullState(b);
    ASSERT_EQ(a, b) << "diverged at step " << i;
    original->ExecuteOperation();
    restored->ExecuteOperation();
  }
}

TEST(RestoreRoundTrip, MalformedSnapshotsAreRejected) {
  auto system = BuildHalting();
  std::vector<Word> snapshot;
  system->AppendFullState(snapshot);

  auto victim = BuildHalting();
  std::vector<Word> truncated(snapshot.begin(), snapshot.begin() + 10);
  EXPECT_FALSE(victim->RestoreFullState(truncated));
  std::vector<Word> extended = snapshot;
  extended.push_back(0);
  EXPECT_FALSE(victim->RestoreFullState(extended));

  TinyTwoUserSystem tiny(false);
  EXPECT_FALSE(tiny.RestoreFullState(truncated));
}

}  // namespace
}  // namespace sep
