// Proof of Separability over the real kernel: the good kernel passes the
// six conditions on a variety of configurations (experiments E2/E4).
#include <gtest/gtest.h>

#include "src/core/kernel_system.h"
#include "src/core/separability.h"
#include "src/machine/devices.h"

namespace sep {
namespace {

// Busy worker: counts, stores, swaps.
constexpr char kWorker[] = R"(
START:  CLR R3
LOOP:   INC R3
        MOV R3, @0x40
        ADD R3, R2
        MOV R2, @0x42
        TRAP 0          ; SWAP
        BR LOOP
)";

// Producer/consumer over a (cut) channel; SEND results are ignored, RECV
// polls — exercises the kernel-call paths continuously.
constexpr char kProducer[] = R"(
START:  CLR R3
LOOP:   INC R3
        MOV R3, R1
        CLR R0
        TRAP 1          ; SEND
        TRAP 0          ; SWAP
        BR LOOP
)";

constexpr char kConsumer[] = R"(
START:  MOV #0x80, R4
LOOP:   CLR R0
        TRAP 2          ; RECV
        TST R0
        BEQ YIELD
        MOV R1, (R4)
        INC R4
YIELD:  TRAP 0
        BR LOOP
)";

// Serial driver: handler-based echo.
constexpr char kEchoDriver[] = R"(
        .EQU DEV, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4          ; SETVEC local device 0
        MOV #DEV, R4
        MOV #0x40, (R4) ; RCSR interrupt enable
LOOP:   TRAP 6          ; AWAIT
        BR LOOP
HANDLER:
        MOV #DEV, R4
        MOV 1(R4), R2   ; RBUF
        MOV R2, 3(R4)   ; XBUF: echo
        TRAP 5          ; RETI
)";

CheckerOptions FastOptions(std::uint64_t seed = 1) {
  CheckerOptions options;
  options.seed = seed;
  options.trace_steps = 350;
  options.sample_every = 11;
  options.perturb_variants = 2;
  return options;
}

TEST(Separability, TwoWorkerRegimesPass) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("red", 256, kWorker).ok());
  ASSERT_TRUE(builder.AddRegime("black", 256, kWorker).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  SeparabilityReport report = CheckSeparability(**sys, FastOptions());
  EXPECT_TRUE(report.Passed()) << report.Summary() << "\nfirst: "
                               << (report.violations.empty() ? ""
                                                             : report.violations[0].description);
  EXPECT_GT(report.TotalChecks(), 100u);
}

TEST(Separability, CutChannelConfigurationPasses) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("producer", 256, kProducer).ok());
  ASSERT_TRUE(builder.AddRegime("consumer", 256, kConsumer).ok());
  builder.AddChannel("p2c", 0, 1, 8);
  builder.CutChannels(true);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  SeparabilityReport report = CheckSeparability(**sys, FastOptions(2));
  EXPECT_TRUE(report.Passed()) << report.Summary() << "\nfirst: "
                               << (report.violations.empty() ? ""
                                                             : report.violations[0].description);
}

TEST(Separability, CutChannelDeliversNothing) {
  // Functional face of the wire cut: the consumer never receives a word.
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("producer", 256, kProducer).ok());
  ASSERT_TRUE(builder.AddRegime("consumer", 256, kConsumer).ok());
  builder.AddChannel("p2c", 0, 1, 8);
  builder.CutChannels(true);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(500);
  const auto& regimes = (*sys)->kernel().config().regimes;
  EXPECT_EQ((*sys)->machine().memory().Read(regimes[1].mem_base + 0x80), 0);
}

TEST(Separability, DeviceRegimesPass) {
  SystemBuilder builder;
  int slu_a = builder.AddDevice(std::make_unique<SerialLine>("slu-a", 16, 4, 2));
  int slu_b = builder.AddDevice(std::make_unique<SerialLine>("slu-b", 18, 5, 3));
  ASSERT_TRUE(builder.AddRegime("driver-a", 256, kEchoDriver, {slu_a}).ok());
  ASSERT_TRUE(builder.AddRegime("driver-b", 256, kEchoDriver, {slu_b}).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  CheckerOptions options = FastOptions(3);
  options.input_rate_percent = 20;  // heavy interrupt traffic
  SeparabilityReport report = CheckSeparability(**sys, options);
  EXPECT_TRUE(report.Passed()) << report.Summary() << "\nfirst: "
                               << (report.violations.empty() ? ""
                                                             : report.violations[0].description);
  // Interrupt-related conditions were actually exercised.
  EXPECT_GT(report.conditions[3].checks, 0u);
  EXPECT_GT(report.conditions[4].checks, 0u);
  EXPECT_GT(report.conditions[5].checks, 0u);
}

TEST(Separability, ThreeRegimeMixedConfigurationPasses) {
  SystemBuilder builder;
  int clk = builder.AddDevice(std::make_unique<LineClock>("clk", 20, 6, 7));
  ASSERT_TRUE(builder.AddRegime("worker", 256, kWorker).ok());
  ASSERT_TRUE(builder.AddRegime("producer", 256, kProducer).ok());
  ASSERT_TRUE(builder.AddRegime("ticker", 256, R"(
        .EQU CLK, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4
        MOV #CLK, R4
        MOV #0x40, (R4)
LOOP:   TRAP 6
        BR LOOP
HANDLER:
        MOV TICKS, R2
        INC R2
        MOV R2, @TICKS
        MOV #CLK, R4
        MOV #0x40, (R4)
        TRAP 5
TICKS:  .WORD 0
)", {clk}).ok());
  builder.AddChannel("p2w", 1, 0, 4);
  builder.CutChannels(true);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  SeparabilityReport report = CheckSeparability(**sys, FastOptions(4));
  EXPECT_TRUE(report.Passed()) << report.Summary() << "\nfirst: "
                               << (report.violations.empty() ? ""
                                                             : report.violations[0].description);
}

TEST(Separability, ReportSummaryMentionsVerdict) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("solo", 256, kWorker).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  SeparabilityReport report = CheckSeparability(**sys, FastOptions(5));
  EXPECT_NE(report.Summary().find("SEPARABLE"), std::string::npos);
}

TEST(Separability, DeterministicAcrossRuns) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("red", 256, kWorker).ok());
  ASSERT_TRUE(builder.AddRegime("black", 256, kWorker).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  SeparabilityReport a = CheckSeparability(**sys, FastOptions(7));
  SeparabilityReport b = CheckSeparability(**sys, FastOptions(7));
  EXPECT_EQ(a.TotalChecks(), b.TotalChecks());
  EXPECT_EQ(a.operations_executed, b.operations_executed);
}

}  // namespace
}  // namespace sep
