// Property-based sweeps of the SM-11 interpreter: algebraic identities of
// the ALU and condition codes, checked against independent reference
// computations over randomized operand sets.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/base/rng.h"
#include "src/machine/cpu.h"
#include "tests/test_util.h"

namespace sep {
namespace {

struct AluCase {
  Opcode op;
  const char* name;
};

class AluProperty : public ::testing::TestWithParam<AluCase> {
 protected:
  // Executes `op src_imm -> dst_reg(initial)` and returns final state.
  CpuState Run(Opcode op, Word src, Word dst_init) {
    FlatBus bus(64);
    CpuState state;
    state.regs[1] = dst_init;
    bus.Load(0, {EncodeTwoOp(op, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 1}), src});
    CpuEvent e = ExecuteOne(state, bus);
    EXPECT_EQ(e.kind, CpuEventKind::kOk);
    return state;
  }
};

TEST_P(AluProperty, FlagsConsistentWithResult) {
  const AluCase param = GetParam();
  Rng rng(0xA11CE);
  for (int trial = 0; trial < 500; ++trial) {
    const Word src = static_cast<Word>(rng.Next());
    const Word dst = static_cast<Word>(rng.Next());
    CpuState state = Run(param.op, src, dst);

    // Reference result.
    Word expected = 0;
    bool writes = true;
    switch (param.op) {
      case Opcode::kMov:
        expected = src;
        break;
      case Opcode::kAdd:
        expected = static_cast<Word>(dst + src);
        break;
      case Opcode::kSub:
        expected = static_cast<Word>(dst - src);
        break;
      case Opcode::kBic:
        expected = static_cast<Word>(dst & ~src);
        break;
      case Opcode::kBis:
        expected = static_cast<Word>(dst | src);
        break;
      case Opcode::kXor:
        expected = static_cast<Word>(dst ^ src);
        break;
      case Opcode::kCmp:
        expected = dst;  // unchanged
        writes = false;
        break;
      default:
        FAIL();
    }
    EXPECT_EQ(state.regs[1], expected) << param.name << " src=" << src << " dst=" << dst;

    // N and Z always describe the produced value (for CMP: src - dst).
    const Word flag_basis = param.op == Opcode::kCmp ? static_cast<Word>(src - dst)
                            : writes                 ? state.regs[1]
                                                     : expected;
    EXPECT_EQ(state.psw.z(), flag_basis == 0) << param.name;
    EXPECT_EQ(state.psw.n(), (flag_basis & 0x8000) != 0) << param.name;
  }
}

TEST_P(AluProperty, PcAdvancesByEncodedLength) {
  const AluCase param = GetParam();
  CpuState state = Run(param.op, 5, 9);
  EXPECT_EQ(state.pc(), 2);  // opcode word + immediate extension
}

INSTANTIATE_TEST_SUITE_P(AllTwoOperand, AluProperty,
                         ::testing::Values(AluCase{Opcode::kMov, "MOV"},
                                           AluCase{Opcode::kAdd, "ADD"},
                                           AluCase{Opcode::kSub, "SUB"},
                                           AluCase{Opcode::kCmp, "CMP"},
                                           AluCase{Opcode::kBic, "BIC"},
                                           AluCase{Opcode::kBis, "BIS"},
                                           AluCase{Opcode::kXor, "XOR"}),
                         [](const ::testing::TestParamInfo<AluCase>& info) {
                           return info.param.name;
                         });

TEST(CpuAlgebra, AddSubRoundTrip) {
  // (x + k) - k == x for all sampled x, k, and C flags of the pair encode
  // carry/borrow consistently.
  Rng rng(42);
  for (int trial = 0; trial < 1000; ++trial) {
    const Word x = static_cast<Word>(rng.Next());
    const Word k = static_cast<Word>(rng.Next());
    FlatBus bus(64);
    CpuState state;
    state.regs[1] = x;
    bus.Load(0, {EncodeTwoOp(Opcode::kAdd, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 1}), k,
                 EncodeTwoOp(Opcode::kSub, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 1}), k});
    ExecuteOne(state, bus);
    const bool carry = state.psw.c();
    ExecuteOne(state, bus);
    const bool borrow = state.psw.c();
    EXPECT_EQ(state.regs[1], x);
    // A carry on the way up implies no borrow coming back only when k != 0;
    // the invariant that always holds: carry and borrow cannot both be set
    // unless k == 0 (where neither is).
    if (k == 0) {
      EXPECT_FALSE(carry);
      EXPECT_FALSE(borrow);
    }
  }
}

TEST(CpuAlgebra, NegIsTwosComplement) {
  Rng rng(43);
  for (int trial = 0; trial < 500; ++trial) {
    const Word x = static_cast<Word>(rng.Next());
    FlatBus bus(64);
    CpuState state;
    state.regs[2] = x;
    bus.Load(0, {EncodeOneOp(Opcode::kNeg, {AddrMode::kReg, 2})});
    ExecuteOne(state, bus);
    EXPECT_EQ(state.regs[2], static_cast<Word>(0 - x));
    EXPECT_EQ(state.psw.c(), x != 0);
  }
}

TEST(CpuAlgebra, ComNegRelation) {
  // COM x == NEG x - 1  (i.e. ~x == -x - 1).
  Rng rng(44);
  for (int trial = 0; trial < 500; ++trial) {
    const Word x = static_cast<Word>(rng.Next());
    FlatBus bus(64);
    CpuState state;
    state.regs[2] = x;
    bus.Load(0, {EncodeOneOp(Opcode::kCom, {AddrMode::kReg, 2})});
    ExecuteOne(state, bus);
    EXPECT_EQ(state.regs[2], static_cast<Word>(static_cast<Word>(0 - x) - 1));
  }
}

TEST(CpuAlgebra, ShiftsAgreeWithArithmetic) {
  Rng rng(45);
  for (int trial = 0; trial < 500; ++trial) {
    const Word x = static_cast<Word>(rng.Next());
    {
      FlatBus bus(64);
      CpuState state;
      state.regs[2] = x;
      bus.Load(0, {EncodeOneOp(Opcode::kAsl, {AddrMode::kReg, 2})});
      ExecuteOne(state, bus);
      EXPECT_EQ(state.regs[2], static_cast<Word>(x << 1));
      EXPECT_EQ(state.psw.c(), (x & 0x8000) != 0);
    }
    {
      FlatBus bus(64);
      CpuState state;
      state.regs[2] = x;
      bus.Load(0, {EncodeOneOp(Opcode::kAsr, {AddrMode::kReg, 2})});
      ExecuteOne(state, bus);
      const Word expected = static_cast<Word>((x >> 1) | (x & 0x8000));
      EXPECT_EQ(state.regs[2], expected);
      EXPECT_EQ(state.psw.c(), (x & 1) != 0);
    }
  }
}

// Signed-branch semantics: BLT/BGE/BGT/BLE after CMP #a, Rb must agree with
// host signed comparison of a and b.
class SignedBranchProperty : public ::testing::TestWithParam<Opcode> {};

TEST_P(SignedBranchProperty, AgreesWithHostComparison) {
  const Opcode branch = GetParam();
  Rng rng(46);
  for (int trial = 0; trial < 600; ++trial) {
    const Word a = static_cast<Word>(rng.Next());
    const Word b = static_cast<Word>(rng.Next());
    const std::int16_t sa = static_cast<std::int16_t>(a);
    const std::int16_t sb = static_cast<std::int16_t>(b);

    FlatBus bus(64);
    CpuState state;
    state.regs[3] = b;
    // CMP #a, R3 computes a - b and sets flags; branch if taken jumps +4.
    bus.Load(0, {EncodeTwoOp(Opcode::kCmp, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 3}), a,
                 EncodeBranch(branch, 4)});
    ExecuteOne(state, bus);
    ExecuteOne(state, bus);

    bool expected = false;
    switch (branch) {
      case Opcode::kBlt:
        expected = sa < sb;
        break;
      case Opcode::kBge:
        expected = sa >= sb;
        break;
      case Opcode::kBgt:
        expected = sa > sb;
        break;
      case Opcode::kBle:
        expected = sa <= sb;
        break;
      default:
        FAIL();
    }
    const bool taken = state.pc() != 3;
    EXPECT_EQ(taken, expected) << "a=" << sa << " b=" << sb;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSignedBranches, SignedBranchProperty,
                         ::testing::Values(Opcode::kBlt, Opcode::kBge, Opcode::kBgt,
                                           Opcode::kBle),
                         [](const ::testing::TestParamInfo<Opcode>& info) {
                           return OpcodeName(info.param);
                         });

// Unsigned branches: BCS after CMP #a, Rb is "a < b" (borrow).
TEST(CpuAlgebra, UnsignedBranchAgreesWithHost) {
  Rng rng(47);
  for (int trial = 0; trial < 600; ++trial) {
    const Word a = static_cast<Word>(rng.Next());
    const Word b = static_cast<Word>(rng.Next());
    FlatBus bus(64);
    CpuState state;
    state.regs[3] = b;
    bus.Load(0, {EncodeTwoOp(Opcode::kCmp, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 3}), a,
                 EncodeBranch(Opcode::kBcs, 4)});
    ExecuteOne(state, bus);
    ExecuteOne(state, bus);
    EXPECT_EQ(state.pc() != 3, a < b);
  }
}

}  // namespace
}  // namespace sep
