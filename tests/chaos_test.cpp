// Chaos suite: fault injection on links, devices and kernel data, and the
// reliable-channel protocol that must mask the link-level misbehaviour.
//
// The acceptance property throughout: with faults within the tolerated
// envelope, every application-visible stream is BYTE-IDENTICAL to the
// fault-free run — the wire may misbehave, the system may not.
#include <gtest/gtest.h>

#include "src/components/guard.h"
#include "src/components/snfe_receive.h"
#include "src/core/kernel_system.h"
#include "src/distributed/faults.h"
#include "src/distributed/reliable.h"
#include "src/machine/devices.h"
#include "src/machine/faulty_device.h"

namespace sep {
namespace {

// --- reliable channel over a faulty line ------------------------------------

// Emits a deterministic word stream (seeded, so corruption to any fixed
// pattern is detectable) one word per step.
class WordSource : public Process {
 public:
  explicit WordSource(int count, std::uint64_t seed) : rng_(seed) {
    words_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      words_.push_back(static_cast<Word>(rng_.Next() & 0xFFFF));
    }
  }
  std::string name() const override { return "word-source"; }
  void Step(NodeContext& ctx) override {
    if (next_ < words_.size() && ctx.Send(0, words_[next_])) {
      ++next_;
    }
  }
  bool Finished() const override { return next_ >= words_.size(); }
  const std::vector<Word>& words() const { return words_; }

 private:
  Rng rng_;
  std::vector<Word> words_;
  std::size_t next_ = 0;
};

class WordSink : public Process {
 public:
  std::string name() const override { return "word-sink"; }
  void Step(NodeContext& ctx) override {
    while (std::optional<Word> w = ctx.Receive(0)) {
      got_.push_back(*w);
    }
  }
  const std::vector<Word>& got() const { return got_; }

 private:
  std::vector<Word> got_;
};

struct TunnelRun {
  std::vector<Word> sent;
  std::vector<Word> got;
  ReliableSenderStats sender;
  ReliableReceiverStats receiver;
  bool dead = false;
};

TunnelRun RunTunnel(int count, const FaultSpec& spec, std::uint64_t fault_seed,
                    ReliableConfig config = {}, std::size_t steps = 60000) {
  Network net;
  int src = net.AddNode(std::make_unique<WordSource>(count, /*seed=*/7));
  int dst = net.AddNode(std::make_unique<WordSink>());
  ReliableTunnel tunnel = SpliceReliableTunnel(net, src, dst, config,
                                               /*capacity=*/64, /*latency=*/2);
  if (spec.Any()) {
    net.InjectFaults(tunnel.data_link, spec, fault_seed);
    net.InjectFaults(tunnel.ack_link, spec, fault_seed ^ 0x1234567890ABCDEFULL);
  }
  net.Run(steps);

  TunnelRun run;
  run.sent = static_cast<WordSource&>(net.process(src)).words();
  run.got = static_cast<WordSink&>(net.process(dst)).got();
  run.sender = TunnelSenderStats(net, tunnel);
  run.receiver = TunnelReceiverStats(net, tunnel);
  run.dead =
      static_cast<ReliableIngress&>(net.process(tunnel.ingress_node)).sender().dead();
  return run;
}

TEST(ReliableChannel, CleanLineIsLosslessWithoutRetransmission) {
  TunnelRun run = RunTunnel(200, FaultSpec{}, 1);
  EXPECT_EQ(run.got, run.sent);
  EXPECT_EQ(run.sender.retransmits, 0u);
  EXPECT_EQ(run.sender.timeouts, 0u);
  EXPECT_EQ(run.receiver.corrupt_discarded, 0u);
}

TEST(ReliableChannel, UniformFaultsAtTenPercentAreMasked) {
  TunnelRun run = RunTunnel(200, FaultSpec::Uniform(10), 99);
  EXPECT_EQ(run.got, run.sent);
  EXPECT_GT(run.sender.retransmits, 0u);
}

TEST(ReliableChannel, DropAndCorruptAtTwentyPercentAreMasked) {
  TunnelRun run = RunTunnel(200, FaultSpec::DropCorrupt(20), 4242);
  EXPECT_EQ(run.got, run.sent);
  EXPECT_GT(run.sender.retransmits, 0u);
  EXPECT_GT(run.receiver.corrupt_discarded, 0u);
}

TEST(ReliableChannel, DeterministicGivenSeed) {
  TunnelRun a = RunTunnel(100, FaultSpec::Uniform(15), 5);
  TunnelRun b = RunTunnel(100, FaultSpec::Uniform(15), 5);
  EXPECT_EQ(a.got, b.got);
  EXPECT_EQ(a.sender.retransmits, b.sender.retransmits);
  EXPECT_EQ(a.receiver.resyncs, b.receiver.resyncs);
}

TEST(ReliableChannel, SeveredLineGivesUpAfterMaxRetries) {
  FaultSpec severed;
  severed.drop_percent = 100;
  ReliableConfig config;
  config.max_retries = 3;
  TunnelRun run = RunTunnel(20, severed, 3, config);
  EXPECT_TRUE(run.dead);
  EXPECT_EQ(run.sender.gave_up, 1u);
  EXPECT_TRUE(run.got.empty());
  // Backoff caps the retry count: exactly max_retries windows were retried.
  EXPECT_EQ(run.sender.timeouts, 4u);  // 3 retries + the final give-up expiry
}

TEST(ReliableChannel, SeqBeforeHandlesWraparound) {
  EXPECT_TRUE(SeqBefore(0xFFFF, 0x0000));
  EXPECT_TRUE(SeqBefore(0xFFFE, 0x0001));
  EXPECT_FALSE(SeqBefore(0x0000, 0xFFFF));
  EXPECT_FALSE(SeqBefore(5, 5));
  EXPECT_TRUE(SeqBefore(4, 5));
}

TEST(ReliableChannel, ChecksumDetectsSingleBitFlips) {
  Word frame[5] = {kRelData, 1, 2, 0xBEEF, 0x1234};
  const Word good = RelChecksum(frame, 5);
  for (int word = 0; word < 5; ++word) {
    for (int bit = 0; bit < 16; ++bit) {
      frame[word] = static_cast<Word>(frame[word] ^ (1u << bit));
      EXPECT_NE(RelChecksum(frame, 5), good) << "word " << word << " bit " << bit;
      frame[word] = static_cast<Word>(frame[word] ^ (1u << bit));
    }
  }
}

// --- SNFE over a lossy network ----------------------------------------------

std::vector<Frame> BaselinePackets(int count) {
  Network net;
  SnfePairTopology topo = BuildSnfePair(net, CensorStrictness::kSyntax, count);
  net.Run(20000);
  return static_cast<HostSink&>(net.process(topo.host_rx)).packets();
}

TEST(SnfeChaos, HostStreamByteIdenticalUnderEscalatingFaults) {
  const int kPackets = 12;
  const std::vector<Frame> baseline = BaselinePackets(kPackets);
  ASSERT_EQ(baseline.size(), static_cast<std::size_t>(kPackets));

  std::uint64_t prev_retransmits = 0;
  for (int rate : {0, 5, 10, 20}) {
    Network net;
    SnfeLossyTopology topo = BuildSnfePairReliable(
        net, CensorStrictness::kSyntax, FaultSpec::DropCorrupt(rate),
        /*fault_seed=*/1000 + static_cast<std::uint64_t>(rate), kPackets);
    net.Run(rate == 0 ? 30000 : 120000);

    const auto& packets =
        static_cast<HostSink&>(net.process(topo.pair.host_rx)).packets();
    ASSERT_EQ(packets.size(), baseline.size()) << "fault rate " << rate << "%";
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(packets[i].fields, baseline[i].fields)
          << "packet " << i << " at fault rate " << rate << "%";
    }

    const ReliableSenderStats& stats = TunnelSenderStats(net, topo.tunnel);
    if (rate == 0) {
      EXPECT_EQ(stats.retransmits, 0u);
    } else {
      EXPECT_GE(stats.retransmits, prev_retransmits)
          << "retransmission effort should not shrink as the wire degrades";
      prev_retransmits = stats.retransmits;
    }
  }
}

TEST(SnfeChaos, WireFaultCountersRecordTheInjectedMisbehaviour) {
  Network net;
  SnfeLossyTopology topo = BuildSnfePairReliable(
      net, CensorStrictness::kSyntax, FaultSpec::DropCorrupt(20), /*fault_seed=*/9, 8);
  net.Run(120000);
  const FaultCounters* data = net.FaultCountersFor(topo.tunnel.data_link);
  ASSERT_NE(data, nullptr);
  EXPECT_GT(data->offered, 0u);
  EXPECT_GT(data->dropped, 0u);
  EXPECT_GT(data->corrupted, 0u);
  EXPECT_EQ(data->total_faults(), data->dropped + data->duplicated + data->corrupted +
                                      data->reordered + data->delayed);
}

// --- guard over a lossy line -------------------------------------------------

struct GuardRun {
  std::vector<std::string> low_received;
  std::vector<std::string> high_received;
  std::uint64_t retransmits = 0;
};

GuardRun RunGuardScenario(bool lossy) {
  const std::vector<std::string> low_msgs = {"status query 1", "status query 2"};
  const std::vector<std::string> high_msgs = {
      "UNCLAS: convoy arrived",
      "REVIEW: position 51.50 -0.12",
      "operational plan bravo",  // denied
      "UNCLAS: resupply complete",
  };

  Network net;
  int low_src = net.AddNode(std::make_unique<MessageSource>("low-src", low_msgs));
  int high_src = net.AddNode(std::make_unique<MessageSource>("high-src", high_msgs));
  int guard = net.AddNode(std::make_unique<Guard>(DefaultWatchOfficer));
  int low_sink = net.AddNode(std::make_unique<MessageSink>("low-sink"));
  int high_sink = net.AddNode(std::make_unique<MessageSink>("high-sink"));

  std::uint64_t retransmits = 0;
  if (!lossy) {
    net.Connect(low_src, guard);   // guard in0
    net.Connect(high_src, guard);  // guard in1
    net.Connect(guard, low_sink);  // guard out0
    net.Connect(guard, high_sink); // guard out1
    net.Run(20000);
  } else {
    // The HIGH->guard feed and the guard->LOW release line both run over
    // faulty wires; splicing at the same wiring-order points keeps the
    // guard's port numbering identical to the direct build.
    net.Connect(low_src, guard);
    ReliableTunnel high_line =
        SpliceReliableTunnel(net, high_src, guard, {}, 64, 2, "high-line");
    ReliableTunnel release_line =
        SpliceReliableTunnel(net, guard, low_sink, {}, 64, 2, "release-line");
    net.Connect(guard, high_sink);
    const FaultSpec spec = FaultSpec::DropCorrupt(15);
    net.InjectFaults(high_line.data_link, spec, 21);
    net.InjectFaults(high_line.ack_link, spec, 22);
    net.InjectFaults(release_line.data_link, spec, 23);
    net.InjectFaults(release_line.ack_link, spec, 24);
    net.Run(120000);
    retransmits = TunnelSenderStats(net, high_line).retransmits +
                  TunnelSenderStats(net, release_line).retransmits;
  }

  GuardRun run;
  run.low_received = static_cast<MessageSink&>(net.process(low_sink)).received();
  run.high_received = static_cast<MessageSink&>(net.process(high_sink)).received();
  run.retransmits = retransmits;
  return run;
}

TEST(GuardChaos, VerdictStreamIdenticalOverLossyLines) {
  GuardRun baseline = RunGuardScenario(/*lossy=*/false);
  GuardRun lossy = RunGuardScenario(/*lossy=*/true);
  ASSERT_FALSE(baseline.low_received.empty());
  EXPECT_EQ(lossy.low_received, baseline.low_received);
  EXPECT_EQ(lossy.high_received, baseline.high_received);
  EXPECT_GT(lossy.retransmits, 0u);
}

// --- faulty devices -----------------------------------------------------------

TEST(FaultyDeviceTest, ZeroSpecIsTransparent) {
  SerialLine bare("slu", 16, 4, /*transmit_delay=*/2);
  FaultyDevice wrapped(std::make_unique<SerialLine>("slu", 16, 4, 2), DeviceFaultSpec{},
                       /*seed=*/1);
  for (Word w : {Word{0x11}, Word{0x22}, Word{0x33}}) {
    bare.InjectInput(w);
    wrapped.InjectInput(w);
  }
  for (int i = 0; i < 10; ++i) {
    bare.Step();
    wrapped.Step();
    EXPECT_EQ(wrapped.ReadRegister(0), bare.ReadRegister(0)) << "step " << i;
    if (bare.ReadRegister(0) & kCsrDone) {
      EXPECT_EQ(wrapped.ReadRegister(1), bare.ReadRegister(1));
    }
  }
  EXPECT_EQ(wrapped.fault_counters().stalls, 0u);
  EXPECT_EQ(wrapped.fault_counters().read_flips, 0u);
  EXPECT_EQ(wrapped.fault_counters().spurious_interrupts, 0u);
}

TEST(FaultyDeviceTest, ReadFlipsAreOnTheBusNotInTheDevice) {
  DeviceFaultSpec spec;
  spec.read_flip_percent = 100;
  FaultyDevice dev(std::make_unique<SerialLine>("slu", 16, 4, 1), spec, /*seed=*/5);
  for (int i = 0; i < 20; ++i) {
    const Word flipped = dev.ReadRegister(0);   // RCSR: side-effect-free
    const Word truth = dev.inner().ReadRegister(0);
    EXPECT_EQ(__builtin_popcount(flipped ^ truth), 1) << "iteration " << i;
  }
  EXPECT_EQ(dev.fault_counters().read_flips, 20u);
}

TEST(FaultyDeviceTest, StallsFreezeTheInnerDevice) {
  DeviceFaultSpec spec;
  spec.stall_percent = 100;
  FaultyDevice dev(std::make_unique<SerialLine>("slu", 16, 4, /*transmit_delay=*/1), spec,
                   /*seed=*/5);
  dev.WriteRegister(3, 0x42);  // start a transmission
  for (int i = 0; i < 50; ++i) {
    dev.Step();
  }
  // The transmitter never completed: no output, DONE still clear.
  EXPECT_EQ(dev.pending_output(), 0u);
  EXPECT_EQ(dev.inner().ReadRegister(2) & kCsrDone, 0);
  EXPECT_EQ(dev.fault_counters().stalls, 50u);
}

TEST(FaultyDeviceTest, SpuriousInterruptsHaveNoInnerCause) {
  DeviceFaultSpec spec;
  spec.spurious_irq_percent = 50;
  FaultyDevice dev(std::make_unique<SerialLine>("slu", 16, 4, 1), spec, /*seed=*/11);
  std::uint64_t raised = 0;
  for (int i = 0; i < 200; ++i) {
    dev.Step();
    if (dev.interrupt_pending()) {
      ++raised;
      dev.ClearInterrupt();
      // No DONE bit anywhere: the interrupt is pure noise.
      EXPECT_EQ(dev.inner().ReadRegister(0) & kCsrDone, 0);
    }
  }
  EXPECT_GT(raised, 0u);
  EXPECT_EQ(dev.fault_counters().spurious_interrupts, raised);
}

TEST(FaultyDeviceTest, CloneReplaysTheSameFaultSchedule) {
  DeviceFaultSpec spec;
  spec.read_flip_percent = 30;
  FaultyDevice original(std::make_unique<SerialLine>("slu", 16, 4, 1), spec, /*seed=*/77);
  std::unique_ptr<Device> clone = original.Clone();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(original.ReadRegister(0), clone->ReadRegister(0)) << "read " << i;
  }
}

TEST(FaultyDeviceTest, KernelizedSystemSurvivesSpuriousClockInterrupts) {
  DeviceFaultSpec spec;
  spec.spurious_irq_percent = 25;
  SystemBuilder builder;
  int clk = builder.AddDevice(std::make_unique<FaultyDevice>(
      std::make_unique<LineClock>("clk", 20, 6, /*interval=*/8), spec, /*seed=*/13));
  ASSERT_TRUE(builder.AddRegime("driver", 512, R"(
        .EQU CLK, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4          ; SETVEC
        MOV #CLK, R4
        MOV #0x40, (R4) ; enable clock interrupts
LOOP:   INC R3
        MOV R3, @0x40
        TRAP 0          ; SWAP: give the peer its turn
        BR LOOP
HANDLER:
        MOV @0x41, R2
        INC R2
        MOV R2, @0x41   ; count every delivery, spurious or real
        MOV #0x40, (R4) ; clear DONE if set, keep IE
        TRAP 5          ; RETI
)", {clk}).ok());
  ASSERT_TRUE(builder.AddRegime("peer", 256, R"(
LOOP:   INC R3
        MOV R3, @0x40
        TRAP 0
        BR LOOP
)").ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(4000);

  // Spurious interrupts were delivered and handled; nobody faulted and the
  // peer regime was untouched by the noisy device.
  const auto& regimes = (*sys)->kernel().config().regimes;
  EXPECT_FALSE((*sys)->kernel().RegimeHalted(0));
  EXPECT_FALSE((*sys)->kernel().RegimeHalted(1));
  EXPECT_EQ((*sys)->kernel().FaultCount(), 0u);
  EXPECT_GT((*sys)->machine().memory().Read(regimes[0].mem_base + 0x41), 0u);
  EXPECT_GT((*sys)->machine().memory().Read(regimes[1].mem_base + 0x40), 0u);
  auto& device = static_cast<FaultyDevice&>((*sys)->machine().device(clk));
  EXPECT_GT(device.fault_counters().spurious_interrupts, 0u);
}

// --- kernel defensive checks --------------------------------------------------

TEST(KernelDefense, CorruptedChannelRingFaultsTheCaller) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("producer", 512, R"(
LOOP:   MOV #5, R1
        CLR R0
        TRAP 1          ; SEND
        TRAP 0          ; SWAP
        BR LOOP
)").ok());
  ASSERT_TRUE(builder.AddRegime("consumer", 512, R"(
LOOP:   CLR R0
        TRAP 2          ; RECV
        TRAP 0
        BR LOOP
)").ok());
  builder.AddChannel("c", 0, 1, 4);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(200);
  ASSERT_FALSE((*sys)->kernel().RegimeHalted(0));
  ASSERT_EQ((*sys)->kernel().FaultCount(), 0u);

  // Smash the ring's count word (a regime cannot do this through the MMU;
  // this models a hardware fault in the kernel partition).
  const KernelConfig& config = (*sys)->kernel().config();
  (*sys)->machine().PhysWrite(config.kernel_base + ChannelRingOffset(config, 0, 0) + 1,
                              0xFFFF);
  (*sys)->Run(400);

  // The kernel detected the broken representation invariant at the next
  // SEND and faulted the caller instead of trusting the count.
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
  EXPECT_GE((*sys)->kernel().FaultCount(), 1u);
}

TEST(KernelDefense, SetvecHandlerOutsidePartitionFaults) {
  SystemBuilder builder;
  int clk = builder.AddDevice(std::make_unique<LineClock>("clk", 20, 6, 5));
  ASSERT_TRUE(builder.AddRegime("rogue", 512, R"(
        CLR R0
        MOV #0x1000, R1 ; far beyond the 512-word partition
        TRAP 4          ; SETVEC
        MOV #1, R3      ; never reached
)", {clk}).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(100);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
  EXPECT_EQ((*sys)->kernel().FaultCount(), 1u);
  EXPECT_EQ((*sys)->kernel().RegimeSavedReg(0, 3), 0);
}

TEST(KernelDefense, FaultCountTracksEveryDefensiveHalt) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("bad-call", 256, R"(
        MOV #99, R0
        TRAP 1          ; SEND on nonexistent channel
)").ok());
  ASSERT_TRUE(builder.AddRegime("bad-insn", 256, "HALT\n").ok());
  ASSERT_TRUE(builder.AddRegime("good", 256, R"(
        MOV #1, R3
        TRAP 7
)").ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(200);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(1));
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(2));  // clean TRAP 7 halt
  EXPECT_EQ((*sys)->kernel().FaultCount(), 2u);   // only the two offenders
}

}  // namespace
}  // namespace sep
