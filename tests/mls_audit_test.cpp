// A meta-check on the MLS file-server (experiment E12 hardened): drive it
// with a randomized multi-user workload, then verify a global information
// flow law over the resulting state — provenance-tagged content never
// becomes visible below its writer's level.
#include <gtest/gtest.h>

#include <map>

#include "src/base/rng.h"
#include "src/components/fileserver.h"

namespace sep {
namespace {

// A sharper version: drive the workload, then probe as a system-high user
// and confirm no BLACK-categorised content ever landed in a file a
// NUC-only user could read. (Content tags: each user writes words tagged
// with its own index; readable(file) x writer(user) pairs must satisfy the
// lattice.)
TEST(MlsAudit, ContentNeverFlowsDownTheLattice) {
  CategoryRegistry::Instance().Reset();
  Rng rng(7);

  const SecurityLevel low(Classification::kUnclassified);
  const SecurityLevel mid(Classification::kSecret);
  const SecurityLevel high(Classification::kTopSecret);
  std::vector<FileServerUser> users = {{"low", low}, {"mid", mid}, {"high", high}};

  // Every user tags its written words with (index+1) << 12.
  std::vector<std::vector<Frame>> scripts(3);
  std::vector<std::string> pool = {"a", "b", "c", "d"};
  for (int u = 0; u < 3; ++u) {
    for (int op = 0; op < 16; ++op) {
      const std::string& file = pool[rng.NextBelow(pool.size())];
      switch (rng.NextBelow(3)) {
        case 0: {
          const SecurityLevel levels[] = {low, mid, high};
          scripts[static_cast<std::size_t>(u)].push_back(
              FsCreate(levels[rng.NextBelow(3)], file));
          break;
        }
        default:
          scripts[static_cast<std::size_t>(u)].push_back(
              FsWrite(file, {static_cast<Word>(((u + 1) << 12) | (rng.Next() & 0xFFF))}));
          break;
      }
    }
  }

  Network net;
  auto server_owned = std::make_unique<FileServer>(users);
  FileServer* server = server_owned.get();
  int server_node = net.AddNode(std::move(server_owned));
  for (std::size_t u = 0; u < users.size(); ++u) {
    int node = net.AddNode(std::make_unique<FileClient>(users[u].name, scripts[u]));
    net.Connect(node, server_node);
    net.Connect(server_node, node);
  }
  net.Run(20000);

  // Decode provenance: if a file is readable by `low`, then no word in it
  // may carry a mid/high tag UNLESS that user wrote at low... but writes
  // only land at levels >= the writer (append rule), so a low-readable
  // file contains only low-written words. Verify by inspection.
  BlpMonitor probe;
  ASSERT_TRUE(probe.AddSubject({"low-probe", low, low, false}).ok());
  for (const std::string& file : pool) {
    if (!server->HasFile(file)) {
      continue;
    }
    // Determine the file's level by testing readability for each user...
    // the server's monitor knows; emulate: low can read iff low dominates
    // the file level, i.e. the file is at UNCLASSIFIED.
    const Object* object = server->monitor().FindObject(file);
    ASSERT_NE(object, nullptr);
    if (!low.Dominates(object->classification)) {
      continue;  // not low-readable; no constraint
    }
    for (Word w : server->FileContents(file)) {
      const int writer_tag = (w >> 12) & 0xF;
      EXPECT_EQ(writer_tag, 1) << "word written by user " << writer_tag
                               << " visible in low-readable file " << file;
    }
  }
}

}  // namespace
}  // namespace sep
