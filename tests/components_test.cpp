// Printer-server (E7's distributed resolution), auth server, and guard
// (E8) behaviour tests.
#include <gtest/gtest.h>

#include "src/components/auth.h"
#include "src/components/guard.h"
#include "src/components/printserver.h"

namespace sep {
namespace {

SecurityLevel Unc() { return SecurityLevel(Classification::kUnclassified); }
SecurityLevel Sec() { return SecurityLevel(Classification::kSecret); }

// --- printer-server ----------------------------------------------------------

struct PrintRig {
  Network net;
  PrintServer* server = nullptr;
  std::vector<PrintClient*> clients;

  PrintRig(std::vector<PrintUser> users, std::vector<std::vector<std::string>> jobs) {
    auto owned = std::make_unique<PrintServer>(users);
    server = owned.get();
    int server_node = net.AddNode(std::move(owned));
    for (std::size_t i = 0; i < users.size(); ++i) {
      auto client = std::make_unique<PrintClient>(users[i].name, jobs[i]);
      clients.push_back(client.get());
      int node = net.AddNode(std::move(client));
      net.Connect(node, server_node);
      net.Connect(server_node, node);
    }
  }
};

TEST(PrintServer, BannerCarriesClassification) {
  CategoryRegistry::Instance().Reset();
  PrintRig rig({{"alice", Sec()}}, {{"the payload"}});
  rig.net.Run(500);
  EXPECT_EQ(rig.server->jobs_completed(), 1u);
  EXPECT_NE(rig.server->printed().find("=== SECRET ==="), std::string::npos);
  EXPECT_NE(rig.server->printed().find("the payload"), std::string::npos);
}

TEST(PrintServer, JobsAreSerializedNotInterleaved) {
  CategoryRegistry::Instance().Reset();
  PrintRig rig({{"a", Unc()}, {"b", Sec()}},
               {{"AAAAAAAAAAAAAAAAAAAA"}, {"BBBBBBBBBBBBBBBBBBBB"}});
  rig.net.Run(1000);
  EXPECT_EQ(rig.server->jobs_completed(), 2u);
  const std::string& out = rig.server->printed();
  // Once a B appears, no later A may appear within the body region (and
  // vice versa): check there is no "AB+A" or "BA+B" interleaving.
  std::size_t first_b = out.find('B');
  std::size_t last_a = out.rfind('A');
  std::size_t first_a = out.find('A');
  std::size_t last_b = out.rfind('B');
  const bool a_then_b = last_a < first_b;
  const bool b_then_a = last_b < first_a;
  EXPECT_TRUE(a_then_b || b_then_a) << out;
}

TEST(PrintServer, SpoolDeletedAfterPrintWithoutExemption) {
  CategoryRegistry::Instance().Reset();
  PrintRig rig({{"low", Unc()}}, {{"job text"}});
  rig.net.Run(500);
  EXPECT_EQ(rig.server->spool_backlog(), 0u);
  EXPECT_EQ(rig.server->jobs_completed(), 1u);
  // THE point of E7: every spool operation (write, read, delete) was
  // granted by plain BLP — zero denials, zero trusted exemptions.
  EXPECT_EQ(rig.server->monitor().denied_count(), 0u);
  for (const AuditRecord& record : rig.server->monitor().audit()) {
    EXPECT_EQ(record.rule.find("trusted-exemption"), std::string::npos);
  }
}

TEST(PrintServer, CompletionNoticesGoOnlyToSubmitter) {
  CategoryRegistry::Instance().Reset();
  PrintRig rig({{"a", Unc()}, {"b", Sec()}}, {{"one", "two"}, {}});
  rig.net.Run(1000);
  EXPECT_EQ(rig.clients[0]->completions(), 2u);
  EXPECT_EQ(rig.clients[1]->completions(), 0u);
}

// --- auth server -------------------------------------------------------------

struct AuthRig {
  Network net;
  AuthServer* server = nullptr;
  MessageSink* unused = nullptr;

  struct Terminal : Process {
    std::vector<Frame> script;
    std::size_t next = 0;
    std::vector<Frame> replies;
    FrameReader reader;
    FrameWriter writer;
    Tick send_every;
    explicit Terminal(std::vector<Frame> s, Tick interval = 1)
        : script(std::move(s)), send_every(interval) {}
    std::string name() const override { return "terminal"; }
    void Step(NodeContext& ctx) override {
      reader.Poll(ctx, 0);
      while (auto f = reader.Next()) {
        replies.push_back(*f);
      }
      if (next < script.size() && writer.idle() && ctx.now() % send_every == 0) {
        writer.Queue(script[next++]);
      }
      writer.Flush(ctx, 0);
    }
  };

  Terminal* terminal = nullptr;

  AuthRig(std::vector<AuthUser> users, std::vector<Frame> script, AuthOptions options = {},
          Tick interval = 1) {
    auto owned = std::make_unique<AuthServer>(std::move(users), options);
    server = owned.get();
    int server_node = net.AddNode(std::move(owned));
    auto term = std::make_unique<Terminal>(std::move(script), interval);
    terminal = term.get();
    int term_node = net.AddNode(std::move(term));
    net.Connect(term_node, server_node);
    net.Connect(server_node, term_node);
  }
};

TEST(AuthServer, GrantsValidLogin) {
  CategoryRegistry::Instance().Reset();
  AuthRig rig({{"alice", "hunter2", Sec()}},
              {AuthLoginRequest(Sec(), "alice", "hunter2")});
  rig.net.Run(100);
  ASSERT_EQ(rig.terminal->replies.size(), 1u);
  EXPECT_EQ(rig.terminal->replies[0].type, kAuthGranted);
  const Word token = rig.terminal->replies[0].fields[0];
  AuthServer::SessionInfo info = rig.server->Validate(token);
  EXPECT_TRUE(info.valid);
  EXPECT_EQ(info.user, "alice");
  EXPECT_EQ(info.level, Sec());
}

TEST(AuthServer, RejectsWrongPassword) {
  CategoryRegistry::Instance().Reset();
  AuthRig rig({{"alice", "hunter2", Sec()}},
              {AuthLoginRequest(Sec(), "alice", "password1")});
  rig.net.Run(100);
  ASSERT_EQ(rig.terminal->replies.size(), 1u);
  EXPECT_EQ(rig.terminal->replies[0].type, kAuthDenied);
  EXPECT_EQ(rig.terminal->replies[0].fields[0], kAuthReasonBadCredentials);
}

TEST(AuthServer, RejectsLevelAboveClearance) {
  CategoryRegistry::Instance().Reset();
  AuthRig rig({{"bob", "pw", Unc()}}, {AuthLoginRequest(Sec(), "bob", "pw")});
  rig.net.Run(100);
  ASSERT_EQ(rig.terminal->replies.size(), 1u);
  EXPECT_EQ(rig.terminal->replies[0].fields[0], kAuthReasonLevelExceedsClearance);
}

TEST(AuthServer, LoginBelowClearanceAllowed) {
  CategoryRegistry::Instance().Reset();
  AuthRig rig({{"alice", "hunter2", Sec()}},
              {AuthLoginRequest(Unc(), "alice", "hunter2")});
  rig.net.Run(100);
  ASSERT_EQ(rig.terminal->replies.size(), 1u);
  EXPECT_EQ(rig.terminal->replies[0].type, kAuthGranted);
  EXPECT_EQ(DecodeLevel(rig.terminal->replies[0].fields[1]), Unc());
}

TEST(AuthServer, LockoutAfterRepeatedFailures) {
  CategoryRegistry::Instance().Reset();
  AuthOptions options;
  options.max_failures = 3;
  options.lockout_steps = 1000;
  AuthRig rig({{"alice", "hunter2", Sec()}},
              {AuthLoginRequest(Sec(), "alice", "a"), AuthLoginRequest(Sec(), "alice", "b"),
               AuthLoginRequest(Sec(), "alice", "c"),
               AuthLoginRequest(Sec(), "alice", "hunter2")},  // correct, but locked out
              options);
  rig.net.Run(200);
  ASSERT_EQ(rig.terminal->replies.size(), 4u);
  EXPECT_EQ(rig.terminal->replies[3].type, kAuthDenied);
  EXPECT_EQ(rig.terminal->replies[3].fields[0], kAuthReasonLockedOut);
}

TEST(AuthServer, UnknownTokenInvalid) {
  CategoryRegistry::Instance().Reset();
  AuthRig rig({{"alice", "hunter2", Sec()}}, {});
  EXPECT_FALSE(rig.server->Validate(0x9999).valid);
}

// --- guard (E8) ---------------------------------------------------------------

struct GuardRig {
  Network net;
  Guard* guard = nullptr;
  MessageSink* low_sink = nullptr;
  MessageSink* high_sink = nullptr;

  GuardRig(std::vector<std::string> low_msgs, std::vector<std::string> high_msgs,
           ReviewPolicy policy = DefaultWatchOfficer) {
    auto owned = std::make_unique<Guard>(std::move(policy));
    guard = owned.get();
    int guard_node = net.AddNode(std::move(owned));
    int low_src = net.AddNode(std::make_unique<MessageSource>("low-sys", std::move(low_msgs)));
    int high_src = net.AddNode(std::make_unique<MessageSource>("high-sys", std::move(high_msgs)));
    auto low_owned = std::make_unique<MessageSink>("low-sink");
    low_sink = low_owned.get();
    int low_sink_node = net.AddNode(std::move(low_owned));
    auto high_owned = std::make_unique<MessageSink>("high-sink");
    high_sink = high_owned.get();
    int high_sink_node = net.AddNode(std::move(high_owned));

    net.Connect(low_src, guard_node);    // guard in0 = from LOW
    net.Connect(high_src, guard_node);   // guard in1 = from HIGH
    net.Connect(guard_node, low_sink_node);   // guard out0 = to LOW
    net.Connect(guard_node, high_sink_node);  // guard out1 = to HIGH
  }
};

TEST(Guard, LowToHighPassesUnhindered) {
  GuardRig rig({"status report 1", "status report 2"}, {});
  rig.net.Run(300);
  ASSERT_EQ(rig.high_sink->received().size(), 2u);
  EXPECT_EQ(rig.high_sink->received()[0], "status report 1");
  EXPECT_EQ(rig.guard->stats().low_to_high, 2u);
}

TEST(Guard, HighToLowRequiresReview) {
  GuardRig rig({}, {"UNCLAS:weather is fine", "TOP SECRET battle plan"});
  rig.net.Run(300);
  ASSERT_EQ(rig.low_sink->received().size(), 1u);
  EXPECT_EQ(rig.low_sink->received()[0], "UNCLAS:weather is fine");
  EXPECT_EQ(rig.guard->stats().high_to_low_released, 1u);
  EXPECT_EQ(rig.guard->stats().high_to_low_denied, 1u);
}

TEST(Guard, RedactionMasksDigits) {
  GuardRig rig({}, {"REVIEW:convoy at grid 1234 5678"});
  rig.net.Run(300);
  ASSERT_EQ(rig.low_sink->received().size(), 1u);
  EXPECT_EQ(rig.low_sink->received()[0], "convoy at grid #### ####");
  EXPECT_EQ(rig.guard->stats().high_to_low_redacted, 1u);
}

TEST(Guard, ReviewDelayHoldsMessages) {
  GuardRig rig({}, {"UNCLAS:ping"});
  // The review delay is 5 steps; within the first few, nothing emerges.
  for (int i = 0; i < 4; ++i) {
    rig.net.Step();
  }
  EXPECT_TRUE(rig.low_sink->received().empty());
  rig.net.Run(100);
  EXPECT_EQ(rig.low_sink->received().size(), 1u);
}

TEST(Guard, AuditRecordsEveryVerdict) {
  GuardRig rig({"up"}, {"UNCLAS:ok", "secret stuff"});
  rig.net.Run(300);
  ASSERT_EQ(rig.guard->audit().size(), 3u);
}

TEST(Guard, CustomPolicyApplies) {
  // A paranoid officer who denies everything.
  GuardRig rig({}, {"UNCLAS:anything"},
               [](const std::string&) { return ReviewVerdict{ReviewOutcome::kDeny, {}}; });
  rig.net.Run(300);
  EXPECT_TRUE(rig.low_sink->received().empty());
  EXPECT_EQ(rig.guard->stats().high_to_low_denied, 1u);
}

}  // namespace
}  // namespace sep
