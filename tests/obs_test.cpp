// Unit tests for the observability layer: trace ring, recorder lifecycle,
// metrics registry, exporters.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sep {
namespace {

obs::TraceEvent Event(std::uint64_t tick, int colour, obs::Code code, Word a0 = 0,
                      Word a1 = 0) {
  obs::TraceEvent e;
  e.tick = tick;
  e.colour = static_cast<std::int16_t>(colour);
  e.category = obs::Category::kKernel;
  e.code = code;
  e.a0 = a0;
  e.a1 = a1;
  return e;
}

TEST(TraceRing, FifoOrder) {
  obs::TraceRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPush(Event(i, 0, obs::Code::kKernelCall)));
  }
  obs::TraceEvent out;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out.tick, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  obs::TraceRing ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  obs::TraceRing tiny(0);
  EXPECT_GE(tiny.capacity(), 2u);
}

TEST(TraceRing, FullRingRejectsInsteadOfBlocking) {
  obs::TraceRing ring(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPush(Event(static_cast<std::uint64_t>(i), 0, obs::Code::kKernelCall)));
  }
  EXPECT_FALSE(ring.TryPush(Event(99, 0, obs::Code::kKernelCall)));
  obs::TraceEvent out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out.tick, 0u);  // oldest survives; the overflow event was dropped
  EXPECT_TRUE(ring.TryPush(Event(100, 0, obs::Code::kKernelCall)));
}

TEST(TraceRing, ConcurrentProducersLoseNothingWhileSized) {
  // 4 producers x 1000 events into a ring big enough for all of them; every
  // event must come out exactly once. Run under tsan, this is also the
  // data-race check for the Vyukov cells.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  obs::TraceRing ring(kProducers * kPerProducer);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t tag =
            static_cast<std::uint64_t>(p) * kPerProducer + static_cast<std::uint64_t>(i);
        while (!ring.TryPush(Event(tag, p, obs::Code::kKernelCall))) {
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  std::vector<int> seen(kProducers * kPerProducer, 0);
  obs::TraceEvent out;
  while (ring.TryPop(&out)) {
    ++seen[static_cast<std::size_t>(out.tick)];
  }
  for (int count : seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST(TraceRecorder, DisabledEmitIsSilent) {
  obs::TraceRecorder recorder;
  recorder.Start(16);
  recorder.Stop();
  // Globally disabled: the convenience Emit must not reach the recorder.
  ASSERT_FALSE(obs::Enabled());
  obs::Emit(obs::Category::kKernel, obs::Code::kKernelCall, 0, 1);
  EXPECT_TRUE(obs::Recorder().Drain().empty());
}

TEST(TraceRecorder, StartStopDrainCycle) {
  obs::Recorder().Start(64);
  EXPECT_TRUE(obs::Enabled());
  obs::Emit(obs::Category::kKernel, obs::Code::kKernelCall, 2, 7, 1, 2);
  obs::Emit(obs::Category::kMachine, obs::Code::kMachineTrap, obs::kColourKernel, 8);
  obs::Recorder().Stop();
  EXPECT_FALSE(obs::Enabled());

  const std::vector<obs::TraceEvent> events = obs::Recorder().Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tick, 7u);
  EXPECT_EQ(events[0].colour, 2);
  EXPECT_EQ(events[0].a0, 1);
  EXPECT_EQ(events[1].code, obs::Code::kMachineTrap);

  // A fresh Start installs a fresh ring: nothing left over.
  obs::Recorder().Start(64);
  obs::Recorder().Stop();
  EXPECT_TRUE(obs::Recorder().Drain().empty());
}

TEST(TraceRecorder, CountsDrops) {
  obs::Recorder().Start(2);  // minimum-size ring
  for (int i = 0; i < 10; ++i) {
    obs::Emit(obs::Category::kKernel, obs::Code::kKernelCall, 0,
              static_cast<std::uint64_t>(i));
  }
  obs::Recorder().Stop();
  EXPECT_EQ(obs::Recorder().Drain().size(), 2u);
  EXPECT_EQ(obs::Recorder().dropped(), 8u);
}

TEST(Metrics, CountersAndGauges) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.GetCounter("test.counter");
  c.Add();
  c.Add(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&registry.GetCounter("test.counter"), &c) << "same name, same counter";

  obs::Gauge& g = registry.GetGauge("test.gauge");
  g.Set(42);
  g.Max(17);  // lower: no effect
  EXPECT_EQ(g.value(), 42);
  g.Max(99);
  EXPECT_EQ(g.value(), 99);

  const std::vector<obs::MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].name, "test.counter");
  EXPECT_TRUE(snapshot[0].is_counter);
  EXPECT_EQ(snapshot[0].value, 5);
  EXPECT_EQ(snapshot[1].name, "test.gauge");
  EXPECT_EQ(snapshot[1].value, 99);

  registry.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, ConcurrentBumpsDontLoseCounts) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kBumps = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      obs::Counter& c = registry.GetCounter("test.contended");
      for (int i = 0; i < kBumps; ++i) {
        c.Add();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(registry.GetCounter("test.contended").value(),
            static_cast<std::uint64_t>(kThreads) * kBumps);
}

TEST(Exporters, ChromeTraceJsonShape) {
  std::vector<obs::TraceEvent> events;
  events.push_back(Event(5, 1, obs::Code::kKernelCall, 6, 7));
  events.push_back(Event(9, obs::kColourKernel, obs::Code::kDispatch, 0));
  const std::string json = obs::ChromeTraceJson(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kernel-call\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":5"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);  // colour 1 -> row 2
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);  // kernel row
  EXPECT_EQ(json.back(), '\n');
}

TEST(Exporters, CanonicalColourTraceFiltersAndDropsTimestamps) {
  std::vector<obs::TraceEvent> events;
  events.push_back(Event(100, 0, obs::Code::kKernelCall, 6, 0));
  events.push_back(Event(101, 1, obs::Code::kKernelCall, 6, 0));       // other colour
  events.push_back(Event(102, obs::kColourKernel, obs::Code::kDispatch, 0));
  events.push_back(Event(103, 0, obs::Code::kIrqForward, 0));          // device-time
  events.push_back(Event(104, 0, obs::Code::kIrqDeliver, 0, 16));

  const std::string trace = obs::CanonicalColourTrace(events, 0);
  EXPECT_EQ(trace, "kernel-call 6 0\nirq-deliver 0 16\n");

  // Identical event sequence at different ticks: canonical form is equal —
  // timestamps are not part of a regime's observable view.
  std::vector<obs::TraceEvent> shifted;
  shifted.push_back(Event(9000, 0, obs::Code::kKernelCall, 6, 0));
  shifted.push_back(Event(9500, 0, obs::Code::kIrqDeliver, 0, 16));
  EXPECT_EQ(obs::CanonicalColourTrace(shifted, 0), trace);
}

TEST(Exporters, MetricsTextIsSortedNameValueLines) {
  obs::Metrics().ResetAll();
  obs::Metrics().GetCounter("zz.last").Add(3);
  obs::Metrics().GetCounter("aa.first").Add(1);
  const std::string text = obs::MetricsText();
  const std::size_t first = text.find("aa.first 1");
  const std::size_t last = text.find("zz.last 3");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(last, std::string::npos);
  EXPECT_LT(first, last);

  const std::string json = obs::MetricsJson();
  EXPECT_NE(json.find("\"aa.first\": 1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
}

}  // namespace
}  // namespace sep
