#include <gtest/gtest.h>

#include "src/security/level.h"

namespace sep {
namespace {

class LevelTest : public ::testing::Test {
 protected:
  void SetUp() override { CategoryRegistry::Instance().Reset(); }

  CategorySet Cat(const std::string& name) {
    return *CategoryRegistry::Instance().GetOrRegister(name);
  }
};

TEST_F(LevelTest, ClassificationChainDominance) {
  SecurityLevel u(Classification::kUnclassified);
  SecurityLevel c(Classification::kConfidential);
  SecurityLevel s(Classification::kSecret);
  SecurityLevel ts(Classification::kTopSecret);
  EXPECT_TRUE(ts.Dominates(s));
  EXPECT_TRUE(s.Dominates(c));
  EXPECT_TRUE(c.Dominates(u));
  EXPECT_FALSE(u.Dominates(c));
  EXPECT_TRUE(s.Dominates(s));
}

TEST_F(LevelTest, CategoriesInduceIncomparability) {
  SecurityLevel nuc(Classification::kSecret, Cat("NUC"));
  SecurityLevel crypto(Classification::kSecret, Cat("CRYPTO"));
  EXPECT_FALSE(nuc.Dominates(crypto));
  EXPECT_FALSE(crypto.Dominates(nuc));
  EXPECT_FALSE(nuc.ComparableWith(crypto));
}

TEST_F(LevelTest, HigherClassificationDoesNotOvercomeMissingCategory) {
  SecurityLevel ts_plain(Classification::kTopSecret);
  SecurityLevel s_nuc(Classification::kSecret, Cat("NUC"));
  EXPECT_FALSE(ts_plain.Dominates(s_nuc));
}

TEST_F(LevelTest, LubGlbAreBounds) {
  SecurityLevel a(Classification::kSecret, Cat("NUC"));
  SecurityLevel b(Classification::kConfidential, Cat("CRYPTO"));
  SecurityLevel lub = a.LeastUpperBound(b);
  SecurityLevel glb = a.GreatestLowerBound(b);
  EXPECT_TRUE(lub.Dominates(a));
  EXPECT_TRUE(lub.Dominates(b));
  EXPECT_TRUE(a.Dominates(glb));
  EXPECT_TRUE(b.Dominates(glb));
  EXPECT_EQ(lub.classification(), Classification::kSecret);
  EXPECT_EQ(glb.classification(), Classification::kConfidential);
  EXPECT_TRUE(glb.categories().empty());
}

TEST_F(LevelTest, LatticeAbsorption) {
  // a ⊔ (a ⊓ b) == a and a ⊓ (a ⊔ b) == a.
  SecurityLevel a(Classification::kSecret, Cat("NUC").Union(Cat("CRYPTO")));
  SecurityLevel b(Classification::kTopSecret, Cat("NUC"));
  EXPECT_EQ(a.LeastUpperBound(a.GreatestLowerBound(b)), a);
  EXPECT_EQ(a.GreatestLowerBound(a.LeastUpperBound(b)), a);
}

TEST_F(LevelTest, SystemHighDominatesEverything) {
  SecurityLevel high = SecurityLevel::SystemHigh();
  EXPECT_TRUE(high.Dominates(SecurityLevel(Classification::kTopSecret, Cat("NUC"))));
  EXPECT_TRUE(high.Dominates(SecurityLevel::SystemLow()));
}

TEST_F(LevelTest, ParseRoundTrip) {
  Result<SecurityLevel> parsed = SecurityLevel::Parse("SECRET {NUC,CRYPTO}");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed->classification(), Classification::kSecret);
  EXPECT_EQ(parsed->ToString(), "SECRET {NUC,CRYPTO}");
}

TEST_F(LevelTest, ParseShortForms) {
  EXPECT_EQ(SecurityLevel::Parse("TS")->classification(), Classification::kTopSecret);
  EXPECT_EQ(SecurityLevel::Parse("u")->classification(), Classification::kUnclassified);
}

TEST_F(LevelTest, ParseRejectsGarbage) {
  EXPECT_FALSE(SecurityLevel::Parse("MEDIUM").ok());
  EXPECT_FALSE(SecurityLevel::Parse("SECRET {NUC").ok());
}

TEST_F(LevelTest, RegistryCapacity) {
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(CategoryRegistry::Instance().GetOrRegister("C" + std::to_string(i)).ok());
  }
  EXPECT_FALSE(CategoryRegistry::Instance().GetOrRegister("ONE-TOO-MANY").ok());
  // Existing names still resolve.
  EXPECT_TRUE(CategoryRegistry::Instance().GetOrRegister("C3").ok());
}

TEST_F(LevelTest, DominanceIsPartialOrder) {
  // Reflexive, antisymmetric, transitive over a sample of levels.
  std::vector<SecurityLevel> levels = {
      SecurityLevel(Classification::kUnclassified),
      SecurityLevel(Classification::kSecret, Cat("NUC")),
      SecurityLevel(Classification::kSecret, Cat("CRYPTO")),
      SecurityLevel(Classification::kTopSecret, Cat("NUC").Union(Cat("CRYPTO"))),
  };
  for (const auto& a : levels) {
    EXPECT_TRUE(a.Dominates(a));
    for (const auto& b : levels) {
      if (a.Dominates(b) && b.Dominates(a)) {
        EXPECT_EQ(a, b);
      }
      for (const auto& c : levels) {
        if (a.Dominates(b) && b.Dominates(c)) {
          EXPECT_TRUE(a.Dominates(c));
        }
      }
    }
  }
}

}  // namespace
}  // namespace sep
