// Tests for sepcheck v2's sharper abstract domain (src/sepcheck):
// condition-code branch refinement, threshold widening, the relational
// (difference-constraint) layer, depth-1 call-string contexts, and the
// proof-obligation ledger the analysis emits. Each guest here is the
// smallest program whose safety proof needs exactly one of those
// mechanisms — if the mechanism regresses, that guest stops certifying
// (or a pruned path starts producing findings).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/sepcheck/absdomain.h"
#include "src/sepcheck/analyzer.h"
#include "src/sepcheck/obligations.h"
#include "src/sm11asm/assembler.h"

namespace sep::sepcheck {
namespace {

ProgramAnalysis Analyze(const std::string& source, std::uint32_t mem_words = 512) {
  auto program = Assemble(source);
  EXPECT_TRUE(program.ok()) << program.error();
  RegimeView view;
  view.name = "test";
  view.mem_words = mem_words;
  return AnalyzeProgram(*program, source, view);
}

bool HasKind(const std::vector<Finding>& findings, const std::string& kind) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.kind == kind; });
}

int CountStatus(const std::vector<Obligation>& obligations, ObligationStatus s) {
  return static_cast<int>(std::count_if(
      obligations.begin(), obligations.end(),
      [&](const Obligation& o) { return o.status == s; }));
}

// --- threshold widening --------------------------------------------------

TEST(ThresholdWidening, MovedBoundJumpsToNextLandmarkNotExtreme) {
  const std::vector<std::uint32_t> landmarks = {0x79, 0x7A, 0x7B};
  // hi grew 0x5C -> 0x5D: jump to the smallest landmark >= 0x5D, not 0xFFFF.
  AbsVal w = AbsVal::Range(0x5B, 0x5D).WidenedFrom(AbsVal::Range(0x5B, 0x5C),
                                                   landmarks);
  EXPECT_EQ(w, AbsVal::Range(0x5B, 0x79));
  // lo fell 0x90 -> 0x7A: jump down to the largest landmark <= 0x7A.
  w = AbsVal::Range(0x7A, 0x95).WidenedFrom(AbsVal::Range(0x90, 0x95), landmarks);
  EXPECT_EQ(w, AbsVal::Range(0x7A, 0x95));
}

TEST(ThresholdWidening, BeyondTheLastLandmarkGoesToTheExtreme) {
  const std::vector<std::uint32_t> landmarks = {0x10};
  AbsVal w = AbsVal::Range(0, 0x20).WidenedFrom(AbsVal::Range(0, 0x11), landmarks);
  EXPECT_EQ(w.hi, 0xFFFFu);
  w = AbsVal::Range(0x5, 0x30).WidenedFrom(AbsVal::Range(0x8, 0x30), landmarks);
  EXPECT_EQ(w.lo, 0u);  // no landmark <= 0x5
}

TEST(ThresholdWidening, StableBoundsAreUntouched) {
  const std::vector<std::uint32_t> landmarks = {0x40};
  AbsVal w =
      AbsVal::Range(0x20, 0x30).WidenedFrom(AbsVal::Range(0x20, 0x30), landmarks);
  EXPECT_EQ(w, AbsVal::Range(0x20, 0x30));
}

// --- relational layer (difference constraints) ---------------------------

TEST(RelSet, RefineGetAndCopySemantics) {
  RelSet rel;
  EXPECT_TRUE(rel.Get(3, 4).IsTop());
  ASSERT_TRUE(rel.Refine(4, 3, 0x100, 0x100));  // R4 - R3 == 0x100
  EXPECT_EQ(rel.Get(4, 3).lo, 0x100);
  EXPECT_EQ(rel.Get(3, 4).hi, -0x100);  // the mirror is negated
  // An empty intersection reports unreachability.
  EXPECT_FALSE(rel.Refine(4, 3, 0, 0));

  RelSet copy;
  ASSERT_TRUE(copy.Refine(1, 0, 5, 7));
  copy.CopyFrom(2, 1);  // R2 := R1
  EXPECT_EQ(copy.Get(2, 1).lo, 0);
  EXPECT_EQ(copy.Get(2, 1).hi, 0);
  EXPECT_EQ(copy.Get(2, 0).lo, 5);  // inherited through R1
  EXPECT_EQ(copy.Get(2, 0).hi, 7);
}

TEST(RelSet, ShiftMovesAllConstraintsOfOneRegister) {
  RelSet rel;
  ASSERT_TRUE(rel.Refine(4, 3, 0x100, 0x100));
  rel.Shift(3, 1, 1);  // INC R3
  EXPECT_EQ(rel.Get(4, 3).lo, 0xFF);
  rel.Shift(4, 1, 1);  // INC R4: lockstep restored
  EXPECT_EQ(rel.Get(4, 3).lo, 0x100);
  EXPECT_EQ(rel.Get(4, 3).hi, 0x100);
}

// --- branch refinement on guests -----------------------------------------

// The guard-regime pattern: an unsigned CMP/BCS guard before every store
// bounds the cursor, so no trust annotation is needed. This is the
// flagship of branch refinement — it exercises the kCmp flags model, the
// fall-through refinement (s >= d), and threshold widening (the cursor's
// upper bound must stabilize on the guard's cap instead of blowing
// through it and wrapping on INC).
TEST(BranchRefinement, CmpBcsGuardProvesBoundedCursorStore) {
  ProgramAnalysis a = Analyze(
      "START: MOV #0x100, R4\n"
      "LOOP:  CMP #0x11F, R4\n"
      "       BCS DONE\n"          // taken: 0x11F < R4, cursor past the area
      "       MOV R1, (R4)\n"      // here R4 <= 0x11F
      "       INC R4\n"
      "       BR LOOP\n"
      "DONE:  TRAP 7\n");
  EXPECT_TRUE(a.Certified()) << FormatFindings(a.findings, false);
  EXPECT_FALSE(HasKind(a.findings, "unbounded-write"));
}

TEST(BranchRefinement, EqualityEdgeNarrowsToTheComparedConstant) {
  // R1 is unknown (memory contents are untracked), but on the BNE
  // fall-through the analyzer knows R1 == 0x100 exactly.
  ProgramAnalysis a = Analyze(
      "START: MOV @0x80, R1\n"
      "       CMP #0x100, R1\n"
      "       BNE SKIP\n"
      "       MOV R5, (R1)\n"
      "SKIP:  TRAP 7\n");
  EXPECT_TRUE(a.Certified()) << FormatFindings(a.findings, false);
}

TEST(BranchRefinement, TstBeqProvesZeroOnTheTakenEdge) {
  // After TST/BNE falls through, R3 == 0, so 0x90(R3) is the constant
  // address 0x90.
  ProgramAnalysis a = Analyze(
      "START: MOV @0x80, R3\n"
      "       TST R3\n"
      "       BNE SKIP\n"
      "       MOV R5, 0x90(R3)\n"
      "SKIP:  TRAP 7\n");
  EXPECT_TRUE(a.Certified()) << FormatFindings(a.findings, false);
}

TEST(BranchRefinement, StaticallyImpossibleEdgeIsPruned) {
  // BCS after CMP #5, R2 with R2 == 0 would need 5 < 0: the taken edge is
  // unreachable, so the wild store behind it must produce no finding.
  ProgramAnalysis a = Analyze(
      "START: CLR R2\n"
      "       CMP #5, R2\n"
      "       BCS NEVER\n"
      "       TRAP 7\n"
      "NEVER: MOV R5, @0x8000\n"
      "       TRAP 7\n");
  EXPECT_TRUE(a.Certified()) << FormatFindings(a.findings, false);
}

TEST(BranchRefinement, TakenEdgeLowerBoundStillFlagsOutOfPartition) {
  // Refinement must work for the *taken* edge too — and must not make the
  // analysis unsound: past the guard the cursor is provably >= 0x200,
  // which is outside the 512-word partition.
  ProgramAnalysis a = Analyze(
      "START: MOV @0x80, R2\n"
      "       CMP #0x1FF, R2\n"
      "       BCS HIGH\n"
      "       TRAP 7\n"
      "HIGH:  MOV R5, (R2)\n"   // R2 >= 0x200 here: never in the partition
      "       TRAP 7\n");
  EXPECT_FALSE(a.Certified());
  EXPECT_TRUE(HasKind(a.findings, "out-of-regime-write"));
}

// --- relational proofs on guests -----------------------------------------

// Lockstep indexing: the loop counts R3 from 0 and walks R4 from 0x100,
// but only R3 is compared. The store at (R4) is provable only through the
// difference constraint R4 - R3 == 0x100, which survives widening because
// it is loop-invariant (intervals on R4 alone are not).
TEST(RelationalDomain, LockstepCursorIsBoundedThroughTheCounter) {
  ProgramAnalysis a = Analyze(
      "START: CLR R3\n"
      "       MOV #0x100, R4\n"
      "LOOP:  CMP #0x1F, R3\n"
      "       BCS DONE\n"          // taken: R3 > 0x1F
      "       MOV R1, (R4)\n"      // R4 = R3 + 0x100 <= 0x11F
      "       INC R3\n"
      "       INC R4\n"
      "       BR LOOP\n"
      "DONE:  TRAP 7\n");
  EXPECT_TRUE(a.Certified()) << FormatFindings(a.findings, false);
  EXPECT_FALSE(HasKind(a.findings, "unbounded-write"));
}

TEST(RelationalDomain, MovAliasTransfersTheComparedBound) {
  // The guard compares R3 but the store uses its copy R4: the copy's
  // equality constraint (from MOV) carries the refinement across.
  ProgramAnalysis a = Analyze(
      "START: MOV @0x80, R3\n"
      "       MOV R3, R4\n"
      "       CMP #0x17F, R3\n"
      "       BCS SKIP\n"
      "       CMP #0x100, R3\n"
      "       BCC SKIP\n"          // taken means R3 < 0x100: skip
      "       MOV R5, (R4)\n"      // 0x100 <= R4 == R3 <= 0x17F
      "SKIP:  TRAP 7\n");
  EXPECT_TRUE(a.Certified()) << FormatFindings(a.findings, false);
}

// --- depth-1 call-string contexts ----------------------------------------

TEST(CallStringContexts, ReturnStatesDoNotSmearAcrossCallSites) {
  // SUB is called once with R5 unknown and once with R5 == 0x100. A
  // context-insensitive RTS would merge both callers and lose the bound
  // at the store after the second call.
  ProgramAnalysis a = Analyze(
      "START: MOV @0x80, R5\n"
      "       JSR SUB\n"
      "       MOV #0x100, R5\n"
      "       JSR SUB\n"
      "       MOV R1, (R5)\n"      // R5 is still exactly 0x100 here
      "       TRAP 7\n"
      "SUB:   INC R2\n"
      "       RTS\n");
  EXPECT_TRUE(a.Certified()) << FormatFindings(a.findings, false);
  EXPECT_FALSE(HasKind(a.findings, "unbounded-write"));
}

TEST(CallStringContexts, GuardInsideSubroutineProvesCallersStores) {
  // The snfe-black pattern: the bounds check lives inside the subroutine
  // and must hold for every call site.
  ProgramAnalysis a = Analyze(
      "START: MOV #0x100, R5\n"
      "LOOP:  JSR STOREW\n"
      "       JSR STOREW\n"
      "       BR LOOP\n"
      "STOREW: CMP #0x117, R5\n"
      "       BCS FULL\n"
      "       MOV R1, (R5)\n"
      "       INC R5\n"
      "FULL:  RTS\n");
  EXPECT_TRUE(a.Certified()) << FormatFindings(a.findings, false);
}

// --- soundness backstops -------------------------------------------------

TEST(Soundness, UnguardedGrowingCursorStaysFlagged) {
  // Threshold widening must not fabricate a bound where no guard exists.
  ProgramAnalysis a = Analyze(
      "START: MOV #0x100, R4\n"
      "LOOP:  MOV R1, (R4)\n"
      "       INC R4\n"
      "       BR LOOP\n");
  EXPECT_FALSE(a.Certified());
  EXPECT_TRUE(HasKind(a.findings, "unbounded-write"));
}

TEST(Soundness, GuardOnTheWrongRegisterDoesNotHelp) {
  // The comparison bounds R3; nothing relates R3 to the stored-through R4
  // (no MOV, no lockstep), so the store must stay flagged.
  ProgramAnalysis a = Analyze(
      "START: MOV @0x80, R3\n"
      "       MOV @0x82, R4\n"
      "       CMP #0x11F, R3\n"
      "       BCS SKIP\n"
      "       MOV R5, (R4)\n"
      "SKIP:  TRAP 7\n");
  EXPECT_FALSE(a.Certified());
}

TEST(Soundness, SignedBranchesRefineOnlyWhenBothSidesAreSmall) {
  // BLT/BGE compare signed; for values that may exceed 0x7FFF the
  // analyzer must not treat them as unsigned bounds. A store guarded only
  // by BGE against an unknown word stays unproved.
  ProgramAnalysis a = Analyze(
      "START: MOV @0x80, R2\n"
      "       CMP #0x100, R2\n"
      "       BGE SKIP\n"          // signed: refines only if R2 < 0x8000
      "       MOV R5, (R2)\n"      // R2 "less than 0x100" signed may be 0x8000+
      "SKIP:  TRAP 7\n");
  EXPECT_FALSE(a.Certified());
}

// --- stale annotations ---------------------------------------------------

TEST(StaleAnnotations, UnknownDirectiveIsFlagged) {
  ProgramAnalysis a = Analyze(
      "; sepcheck: trsut the loop is bounded\n"
      "START: TRAP 7\n");
  EXPECT_TRUE(HasKind(a.findings, "stale-annotation"));
  EXPECT_FALSE(a.Certified());
}

TEST(StaleAnnotations, TrustThatDischargesNothingIsFlagged) {
  ProgramAnalysis a = Analyze(
      "START: MOV R1, @0x80   ; sepcheck: trust in-partition store\n"
      "       TRAP 7\n");
  EXPECT_TRUE(HasKind(a.findings, "stale-annotation"));
  EXPECT_FALSE(a.Certified());
}

TEST(StaleAnnotations, UsedTrustIsNotStale) {
  ProgramAnalysis a = Analyze(
      "START: MOV #0x100, R4\n"
      "LOOP:  MOV R1, (R4)   ; sepcheck: trust externally bounded\n"
      "       INC R4\n"
      "       BR LOOP\n");
  EXPECT_TRUE(a.Certified());
  EXPECT_FALSE(HasKind(a.findings, "stale-annotation"));
}

// --- the obligation ledger -----------------------------------------------

TEST(Obligations, CertifiedProgramCoversAllSixConditions) {
  ProgramAnalysis a = Analyze(
      "START: MOV R1, @0x100\n"
      "       TRAP 7\n");
  ASSERT_TRUE(a.Certified());
  ObligationSummary summary;
  for (const Obligation& o : a.obligations) summary.Add(o);
  EXPECT_TRUE(summary.CoversAllConditions());
  EXPECT_EQ(summary.Open(), 0);
}

TEST(Obligations, BlockingFindingsMatchOpenObligations) {
  ProgramAnalysis a = Analyze(
      "START: CLR R1\n"
      "       MOV R1, @0x300\n"
      "       TRAP 7\n");
  ASSERT_FALSE(a.Certified());
  const int open = CountStatus(a.obligations, ObligationStatus::kOpen);
  int blocking = 0;
  for (const Finding& f : a.findings) blocking += f.Blocking() ? 1 : 0;
  EXPECT_EQ(open, blocking);
  EXPECT_GT(open, 0);
}

TEST(Obligations, AnnotatedDischargeCarriesTheReason) {
  ProgramAnalysis a = Analyze(
      "START: MOV #0x100, R4\n"
      "LOOP:  MOV R1, (R4)   ; sepcheck: trust externally bounded\n"
      "       INC R4\n"
      "       BR LOOP\n");
  ASSERT_TRUE(a.Certified());
  const auto it = std::find_if(
      a.obligations.begin(), a.obligations.end(), [](const Obligation& o) {
        return o.status == ObligationStatus::kAnnotated;
      });
  ASSERT_NE(it, a.obligations.end());
  EXPECT_EQ(it->condition, Condition::kMemoryPartition);
  EXPECT_EQ(it->discharge_reason, "externally bounded");
}

TEST(Obligations, RenderedJsonCarriesTheSchemaTag) {
  ProgramAnalysis a = Analyze("START: TRAP 7\n");
  EntryObligations entry;
  entry.entry = "unit";
  entry.certified = a.Certified();
  entry.obligations = a.obligations;
  const std::string json = RenderObligationsJson({entry});
  EXPECT_NE(json.find(kObligationsSchemaTag), std::string::npos);
  EXPECT_NE(json.find("\"entries\""), std::string::npos);
}

}  // namespace
}  // namespace sep::sepcheck
