// Kernel edge cases: malformed kernel calls, stack abuse, device-window
// boundaries, STAT semantics, AWAIT corner cases. A separation kernel's
// security includes being unimpressed by hostile regimes.
#include <gtest/gtest.h>

#include "src/core/kernel_system.h"
#include "src/machine/devices.h"

namespace sep {
namespace {

constexpr char kIdle[] = "LOOP: TRAP 0\n      BR LOOP\n";

TEST(KernelEdge, RetiOutsideHandlerHaltsRegime) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("rogue", 256, "TRAP 5\n").ok());
  ASSERT_TRUE(builder.AddRegime("peer", 256, kIdle).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(100);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
  EXPECT_FALSE((*sys)->kernel().RegimeHalted(1));
}

TEST(KernelEdge, UnknownKernelCallHaltsRegime) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("rogue", 256, "TRAP 999\n").ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(100);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
}

TEST(KernelEdge, SetvecForNonexistentDeviceHaltsRegime) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("rogue", 256, R"(
        MOV #3, R0      ; no local device 3
        MOV #0x10, R1
        TRAP 4
)").ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(100);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
}

TEST(KernelEdge, InterruptDeliveryWithCorruptStackHaltsRegimeOnly) {
  SystemBuilder builder;
  int clk = builder.AddDevice(std::make_unique<LineClock>("clk", 20, 6, 5));
  ASSERT_TRUE(builder.AddRegime("corrupt", 512, R"(
        .EQU CLK, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4
        MOV #0x7000, SP ; point the stack outside the partition
        MOV #CLK, R4
        MOV #0x40, (R4) ; enable interrupts
LOOP:   NOP
        BR LOOP
HANDLER:
        TRAP 5
)", {clk}).ok());
  ASSERT_TRUE(builder.AddRegime("peer", 256, kIdle).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(200);
  // The interrupt could not be delivered (stack outside the partition);
  // the offending regime is contained, the peer unharmed.
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
  EXPECT_FALSE((*sys)->kernel().RegimeHalted(1));
  EXPECT_FALSE((*sys)->machine().halted());
}

TEST(KernelEdge, StatReportsBothEndsCorrectly) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("sender", 512, R"(
        ; send 3 words, then publish STAT
        MOV #3, R3
LOOP:   MOV #7, R1
        CLR R0
        TRAP 1
        DEC R3
        BNE LOOP
        CLR R0
        TRAP 3          ; STAT -> R0 readable (0 for sender), R1 space
        MOV R0, @0x40
        MOV R1, @0x42
        TRAP 7
)").ok());
  ASSERT_TRUE(builder.AddRegime("receiver", 512, R"(
        ; wait until data arrives, then publish STAT
WAIT:   CLR R0
        TRAP 3          ; STAT -> R0 readable, R1 space (0 for receiver)
        TST R0
        BEQ YIELD
        CMP #3, R0
        BNE YIELD
        MOV R0, @0x40
        MOV R1, @0x42
        TRAP 7
YIELD:  TRAP 0
        BR WAIT
)").ok());
  builder.AddChannel("c", 0, 1, 8);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(1000);
  const auto& regimes = (*sys)->kernel().config().regimes;
  EXPECT_EQ((*sys)->machine().memory().Read(regimes[0].mem_base + 0x40), 0);  // sender readable
  EXPECT_EQ((*sys)->machine().memory().Read(regimes[0].mem_base + 0x42), 5);  // space 8-3
  EXPECT_EQ((*sys)->machine().memory().Read(regimes[1].mem_base + 0x40), 3);  // receiver readable
  EXPECT_EQ((*sys)->machine().memory().Read(regimes[1].mem_base + 0x42), 0);  // receiver space
}

TEST(KernelEdge, StatWithoutEndpointRightsHaltsRegime) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("a", 256, kIdle).ok());
  ASSERT_TRUE(builder.AddRegime("b", 256, kIdle).ok());
  ASSERT_TRUE(builder.AddRegime("snoop", 256, R"(
        CLR R0
        TRAP 3          ; STAT on a channel snoop is no endpoint of
)").ok());
  builder.AddChannel("a2b", 0, 1, 8);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(100);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(2));
  EXPECT_FALSE((*sys)->kernel().RegimeHalted(0));
}

TEST(KernelEdge, AwaitWithAlreadyPendingReturnsImmediately) {
  SystemBuilder builder;
  int slu = builder.AddDevice(std::make_unique<SerialLine>("slu", 16, 4, 1));
  ASSERT_TRUE(builder.AddRegime("drv", 512, R"(
        .EQU DEV, 0xE000
START:  MOV #DEV, R4
        MOV #0x40, (R4) ; IE on; no handler installed
        ; spin a while so the interrupt is fielded and left pending
        MOV #20, R3
SPIN:   DEC R3
        BNE SPIN
        TRAP 6          ; AWAIT: pending already set -> immediate return
        MOV R0, @0x50   ; publish the pending mask we were handed
        TRAP 7
)", {slu}).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->machine().device(slu).InjectInput('A');
  (*sys)->Run(200);
  const auto& regime = (*sys)->kernel().config().regimes[0];
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
  EXPECT_EQ((*sys)->machine().memory().Read(regime.mem_base + 0x50), 1);  // local device 0
}

TEST(KernelEdge, DeviceWindowEndsAtOwnedRegisters) {
  // The regime owns one serial line (8-word block). Reading past the block
  // must fault even though the address is within page 7.
  SystemBuilder builder;
  int slu = builder.AddDevice(std::make_unique<SerialLine>("slu", 16, 4, 1));
  builder.AddDevice(std::make_unique<SerialLine>("other", 18, 4, 1));  // unowned
  ASSERT_TRUE(builder.AddRegime("drv", 256, R"(
        MOV #0xE008, R4 ; first word of the NEXT device's block
        MOV (R4), R0
)", {slu}).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(50);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
}

TEST(KernelEdge, RegisterValuesSurviveManySwaps) {
  // Ping-pong 100 times; each regime's full register file must round-trip
  // perfectly through the save areas every time.
  SystemBuilder builder;
  for (const char* name : {"a", "b"}) {
    ASSERT_TRUE(builder.AddRegime(name, 512, R"(
START:  MOV #0x1111, R0
        MOV #0x2222, R1
        MOV #0x3333, R2
        CLR R3
LOOP:   INC R3
        TRAP 0
        CMP #100, R3
        BNE LOOP
        ; verify nothing was disturbed across 100 switches
        CMP #0x1111, R0
        BNE BAD
        CMP #0x2222, R1
        BNE BAD
        CMP #0x3333, R2
        BNE BAD
        MOV #1, R4
        MOV R4, @0x60   ; success marker
        TRAP 7
BAD:    TRAP 7
)").ok());
  }
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(5000);
  const auto& regimes = (*sys)->kernel().config().regimes;
  EXPECT_EQ((*sys)->machine().memory().Read(regimes[0].mem_base + 0x60), 1);
  EXPECT_EQ((*sys)->machine().memory().Read(regimes[1].mem_base + 0x60), 1);
}

TEST(KernelEdge, SingleRegimeSystemRunsAlone) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("solo", 256, R"(
        CLR R3
LOOP:   INC R3
        TRAP 0          ; SWAP with nobody else: comes straight back
        CMP #5, R3
        BNE LOOP
        MOV R3, @0x40
        TRAP 7
)").ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(200);
  EXPECT_TRUE((*sys)->machine().halted());
  EXPECT_EQ((*sys)->machine().memory().Read(0x40), 5);
}

TEST(KernelEdge, IdleMachineWakesOnInterrupt) {
  SystemBuilder builder;
  int clk = builder.AddDevice(std::make_unique<LineClock>("clk", 20, 6, 25));
  ASSERT_TRUE(builder.AddRegime("sleeper", 512, R"(
        .EQU CLK, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4
        MOV #CLK, R4
        MOV #0x40, (R4)
        TRAP 6          ; AWAIT: nothing pending -> the machine goes idle
        MOV #1, R2
        MOV R2, @0x40
        TRAP 7
HANDLER:
        TRAP 5
)", {clk}).ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(200);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
  EXPECT_EQ((*sys)->machine().memory().Read(0x40), 1);
}

// Parameterized sweep: channel capacity edge cases all preserve FIFO order
// and exact counts.
class ChannelCapacitySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChannelCapacitySweep, FifoExactlyOnce) {
  const std::uint32_t capacity = GetParam();
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("producer", 512, R"(
        CLR R3
LOOP:   INC R3
        MOV R3, R1
SRETRY: CLR R0
        TRAP 1
        TST R0
        BNE NEXT
        TRAP 0
        BR SRETRY
NEXT:   CMP #30, R3
        BNE LOOP
        TRAP 7
)").ok());
  ASSERT_TRUE(builder.AddRegime("consumer", 512, R"(
        MOV #0x80, R4
        CLR R3
LOOP:   CLR R0
        TRAP 2
        TST R0
        BEQ YIELD
        MOV R1, (R4)
        INC R4
        INC R3
        CMP #30, R3
        BNE LOOP
        TRAP 7
YIELD:  TRAP 0
        BR LOOP
)").ok());
  builder.AddChannel("c", 0, 1, capacity);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(20000);
  EXPECT_TRUE((*sys)->machine().halted());
  const auto& regimes = (*sys)->kernel().config().regimes;
  for (Word i = 0; i < 30; ++i) {
    ASSERT_EQ((*sys)->machine().memory().Read(regimes[1].mem_base + 0x80 + i), i + 1)
        << "capacity " << capacity << " position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, ChannelCapacitySweep,
                         ::testing::Values(1u, 2u, 3u, 8u, 29u, 30u, 31u, 64u));

// --- corrupted ring headers ---------------------------------------------------
//
// The kernel consults RingIntact before trusting any channel ring header; a
// corrupted head or count (a hardware fault in the kernel partition — no
// regime can reach it through the MMU) must become a COUNTED regime fault at
// the next SEND/RECV/STAT, never slot arithmetic on garbage or a spin.

enum class RingCall { kSend, kRecv, kStat };
enum class RingDamage { kHeadPastCapacity, kCountPastCapacity };

class CorruptRingSweep
    : public ::testing::TestWithParam<std::tuple<RingCall, RingDamage>> {};

TEST_P(CorruptRingSweep, PerturbedHeaderFaultsCallerOnly) {
  const auto [call, damage] = GetParam();
  // Only the regime exercising the call-under-test touches the ring; the
  // peer just yields, so the fault provably belongs to that caller.
  constexpr char kSender[] = R"(
LOOP:   MOV #5, R1
        CLR R0
        TRAP 1          ; SEND
        TRAP 0
        BR LOOP
)";
  constexpr char kReceiver[] = R"(
LOOP:   CLR R0
        TRAP 2          ; RECV
        TRAP 0
        BR LOOP
)";
  constexpr char kAuditor[] = R"(
LOOP:   CLR R0
        TRAP 3          ; STAT
        TRAP 0
        BR LOOP
)";
  SystemBuilder builder;
  ASSERT_TRUE(builder
                  .AddRegime("producer", 512, call == RingCall::kSend ? kSender : kIdle)
                  .ok());
  ASSERT_TRUE(builder
                  .AddRegime("consumer", 512,
                             call == RingCall::kRecv
                                 ? kReceiver
                                 : (call == RingCall::kStat ? kAuditor : kIdle))
                  .ok());
  builder.AddChannel("c", 0, 1, 4);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(300);
  ASSERT_EQ((*sys)->kernel().FaultCount(), 0u);

  const KernelConfig& config = (*sys)->kernel().config();
  // cut_channels is off: both ends alias ring 0, so one smash covers every
  // caller. head is word 0 of the header, count word 1.
  const PhysAddr header = config.kernel_base + ChannelRingOffset(config, 0, 0);
  (*sys)->machine().PhysWrite(header + (damage == RingDamage::kHeadPastCapacity ? 0 : 1),
                              0xFFFF);
  (*sys)->Run(600);

  // The caller faulted at its next trap; nobody looped forever, nobody did
  // modular arithmetic on the garbage, and the fault was counted.
  EXPECT_EQ((*sys)->kernel().FaultCount(), 1u);
  const int victim = call == RingCall::kSend ? 0 : 1;
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(victim))
      << "caller should be halted by the intactness check";
  EXPECT_FALSE((*sys)->kernel().RegimeHalted(1 - victim)) << "bystander regime harmed";
}

INSTANTIATE_TEST_SUITE_P(
    CallsAndDamage, CorruptRingSweep,
    ::testing::Combine(::testing::Values(RingCall::kSend, RingCall::kRecv, RingCall::kStat),
                       ::testing::Values(RingDamage::kHeadPastCapacity,
                                         RingDamage::kCountPastCapacity)),
    [](const ::testing::TestParamInfo<std::tuple<RingCall, RingDamage>>& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case RingCall::kSend: name = "Send"; break;
        case RingCall::kRecv: name = "Recv"; break;
        case RingCall::kStat: name = "Stat"; break;
      }
      name += std::get<1>(info.param) == RingDamage::kHeadPastCapacity ? "HeadSmashed"
                                                                       : "CountSmashed";
      return name;
    });

// A zero-capacity channel can never reach the ring helpers: configuration
// validation rejects it at Build, so the RingPush/RingPop/RingIntact
// capacity==0 guards are pure defence in depth.
TEST(KernelEdge, ZeroCapacityChannelRejectedAtBuild) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("a", 256, kIdle).ok());
  ASSERT_TRUE(builder.AddRegime("b", 256, kIdle).ok());
  builder.AddChannel("degenerate", 0, 1, 0);
  auto sys = builder.Build();
  EXPECT_FALSE(sys.ok());
}

// --- shared-ring call edges ---------------------------------------------------

TEST(KernelEdge, RingGetOverReleaseFaults) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("producer", 512, R"(
        MOV #0x77, R2
        MOV R2, @0x8000
        CLR R0
        MOV #1, R1
        TRAP 11         ; publish one word
YIELD:  TRAP 0
        BR YIELD
)").ok());
  ASSERT_TRUE(builder.AddRegime("consumer", 512, R"(
        CLR R0
        MOV #2, R1
        TRAP 12         ; release TWO: head would walk past tail
        TRAP 7
)").ok());
  builder.AddSharedRing("r", 0, 1, 8);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(500);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(1));
  EXPECT_GE((*sys)->kernel().FaultCount(), 1u);
  EXPECT_FALSE((*sys)->kernel().RegimeHalted(0));
}

TEST(KernelEdge, RingGetOfZeroWordsFaults) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("producer", 256, kIdle).ok());
  ASSERT_TRUE(builder.AddRegime("consumer", 512, R"(
        CLR R0
        CLR R1
        TRAP 12         ; n == 0 is a protocol violation, not a no-op
        TRAP 7
)").ok());
  builder.AddSharedRing("r", 0, 1, 8);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(300);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(1));
  EXPECT_GE((*sys)->kernel().FaultCount(), 1u);
}

TEST(KernelEdge, RingCallsWithoutEndpointRightsFault) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("producer", 256, kIdle).ok());
  ASSERT_TRUE(builder.AddRegime("consumer", 256, kIdle).ok());
  ASSERT_TRUE(builder.AddRegime("snoop", 512, R"(
        CLR R0
        TRAP 13         ; RINGSTAT on a ring snoop is no endpoint of
        TRAP 7
)").ok());
  ASSERT_TRUE(builder.AddRegime("forger", 512, R"(
        CLR R0
        MOV #1, R1
        TRAP 11         ; RINGPUT without being the producer
        TRAP 7
)").ok());
  builder.AddSharedRing("r", 0, 1, 8);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(500);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(2));
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(3));
  EXPECT_GE((*sys)->kernel().FaultCount(), 2u);
  EXPECT_FALSE((*sys)->kernel().RegimeHalted(0));
  EXPECT_FALSE((*sys)->kernel().RegimeHalted(1));
}

TEST(KernelEdge, CorruptedSharedRingIndicesFaultNextCall) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("producer", 512, R"(
LOOP:   MOV #1, R2
        MOV R2, @0x8000
        CLR R0
        MOV #1, R1
        TRAP 11
        TRAP 0
        BR LOOP
)").ok());
  ASSERT_TRUE(builder.AddRegime("consumer", 512, R"(
LOOP:   CLR R0
        TRAP 13         ; poll occupancy
        TST R0
        BEQ YIELD
        CLR R0
        MOV #1, R1
        TRAP 12
YIELD:  TRAP 0
        BR LOOP
)").ok());
  builder.AddSharedRing("r", 0, 1, 8);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(300);
  ASSERT_EQ((*sys)->kernel().FaultCount(), 0u);

  // Make occupancy = Word(tail - head) exceed the capacity: a state no legal
  // RINGPUT/RINGGET sequence can reach (hardware fault model, as above).
  const KernelConfig& config = (*sys)->kernel().config();
  const PhysAddr ctl = config.kernel_base + SharedRingCtlOffset(config, 0);
  (*sys)->machine().PhysWrite(ctl + kSharedRingHead, 0);
  (*sys)->machine().PhysWrite(ctl + kSharedRingTail, 9);  // occupancy 9 > cap 8
  (*sys)->Run(600);

  EXPECT_GE((*sys)->kernel().FaultCount(), 1u);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0) || (*sys)->kernel().RegimeHalted(1))
      << "somebody must have tripped the corrupted-indices check";
}

// --- malformed scatter-gather tables ------------------------------------------

struct SendvCase {
  const char* name;
  const char* source;
};

class SendvAbuseSweep : public ::testing::TestWithParam<SendvCase> {};

TEST_P(SendvAbuseSweep, MalformedDescriptorsFaultSender) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("rogue", 512, GetParam().source).ok());
  ASSERT_TRUE(builder.AddRegime("peer", 256, kIdle).ok());
  builder.AddChannel("c", 0, 1, 64);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(300);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
  EXPECT_GE((*sys)->kernel().FaultCount(), 1u);
  EXPECT_FALSE((*sys)->kernel().RegimeHalted(1));
}

INSTANTIATE_TEST_SUITE_P(
    Tables, SendvAbuseSweep,
    ::testing::Values(
        SendvCase{"ZeroDescriptors", R"(
        CLR R0
        MOV #0x40, R1
        CLR R2          ; descriptor count 0
        TRAP 9
)"},
        SendvCase{"CountAboveLimit", R"(
        CLR R0
        MOV #0x40, R1
        MOV #9, R2      ; kMaxBatchDescriptors is 8
        TRAP 9
)"},
        SendvCase{"TableOutsidePartition", R"(
        CLR R0
        MOV #0x1FE, R1  ; 2 words short of the 512-word partition end
        MOV #3, R2      ; 6 table words would run past it
        TRAP 9
)"},
        SendvCase{"ZeroLengthExtent", R"(
        CLR R0
        MOV #TBL, R1
        MOV #1, R2
        TRAP 9
TBL:    .WORD 0x100
        .WORD 0         ; zero-length extent
)"},
        SendvCase{"PayloadOutsidePartition", R"(
        CLR R0
        MOV #TBL, R1
        MOV #1, R2
        TRAP 9
TBL:    .WORD 0x1F0
        .WORD 32        ; 0x1F0 + 32 > 512-word partition
)"},
        SendvCase{"BatchAboveSixtyFourWords", R"(
        CLR R0
        MOV #TBL, R1
        MOV #2, R2
        TRAP 9
TBL:    .WORD 0x100
        .WORD 40
        .WORD 0x140
        .WORD 40        ; 80 words total > kMaxBatchWords
)"}),
    [](const ::testing::TestParamInfo<SendvCase>& info) { return info.param.name; });

}  // namespace
}  // namespace sep
