// Machine-level interrupt arbitration: priorities, PSW masking, WAIT
// semantics — the hardware behaviour the kernel's fielding relies on.
#include <gtest/gtest.h>

#include "src/machine/devices.h"
#include "src/machine/machine.h"
#include "src/sm11asm/assembler.h"
#include "tests/test_util.h"

namespace sep {
namespace {

// Records which device's interrupt the client saw, in order.
struct RecordingClient : MachineClient {
  std::vector<int> interrupts;
  std::vector<TrapInfo::Kind> traps;
  void OnTrap(const TrapInfo& info) override { traps.push_back(info.kind); }
  void OnInterrupt(int device_index) override { interrupts.push_back(device_index); }
};

TEST(InterruptPriority, HigherPriorityDeviceWinsArbitration) {
  auto m = MakeBareMachine();
  int low = m->AddDevice(std::make_unique<LineClock>("low", 20, /*priority=*/3, 2));
  int high = m->AddDevice(std::make_unique<LineClock>("high", 22, /*priority=*/6, 2));
  RecordingClient client;
  m->set_client(&client);

  // Enable both clocks; both fire on the same step.
  m->device(low).WriteRegister(0, kCsrIe);
  m->device(high).WriteRegister(0, kCsrIe);
  Result<AssembledProgram> p = Assemble("LOOP: NOP\n      BR LOOP\n");
  ASSERT_TRUE(p.ok());
  m->memory().LoadImage(0x100, p->words);
  m->cpu().set_pc(0x100);
  m->cpu().set_sp(0x1000);

  m->Run(10);
  ASSERT_GE(client.interrupts.size(), 2u);
  EXPECT_EQ(client.interrupts[0], high);
  EXPECT_EQ(client.interrupts[1], low);
}

TEST(InterruptPriority, PswPriorityMasksLowerDevices) {
  auto m = MakeBareMachine();
  int clk = m->AddDevice(std::make_unique<LineClock>("clk", 20, /*priority=*/4, 2));
  RecordingClient client;
  m->set_client(&client);
  m->device(clk).WriteRegister(0, kCsrIe);

  Result<AssembledProgram> p = Assemble("LOOP: NOP\n      BR LOOP\n");
  ASSERT_TRUE(p.ok());
  m->memory().LoadImage(0x100, p->words);
  m->cpu().set_pc(0x100);
  m->cpu().psw.set_priority(7);  // masks priority-4 devices

  m->Run(20);
  EXPECT_TRUE(client.interrupts.empty());

  m->cpu().psw.set_priority(3);  // unmask
  m->Run(10);
  EXPECT_FALSE(client.interrupts.empty());
}

TEST(InterruptPriority, EqualPriorityIsMasked) {
  // A device interrupts only if its priority EXCEEDS the processor's.
  auto m = MakeBareMachine();
  int clk = m->AddDevice(std::make_unique<LineClock>("clk", 20, 4, 2));
  RecordingClient client;
  m->set_client(&client);
  m->device(clk).WriteRegister(0, kCsrIe);
  Result<AssembledProgram> p = Assemble("LOOP: NOP\n      BR LOOP\n");
  ASSERT_TRUE(p.ok());
  m->memory().LoadImage(0x100, p->words);
  m->cpu().set_pc(0x100);
  m->cpu().psw.set_priority(4);
  m->Run(20);
  EXPECT_TRUE(client.interrupts.empty());
}

TEST(InterruptPriority, WaitIdlesUntilInterrupt) {
  auto m = MakeBareMachine();
  int clk = m->AddDevice(std::make_unique<LineClock>("clk", 20, 5, /*interval=*/8));
  RecordingClient client;
  m->set_client(&client);
  m->device(clk).WriteRegister(0, kCsrIe);

  Result<AssembledProgram> p = Assemble("WAIT\nHALT\n");
  ASSERT_TRUE(p.ok());
  m->memory().LoadImage(0x100, p->words);
  m->cpu().set_pc(0x100);

  m->Step();  // executes WAIT
  EXPECT_TRUE(m->waiting());
  std::size_t idle_steps = 0;
  while (client.interrupts.empty() && idle_steps < 20) {
    m->Step();
    ++idle_steps;
  }
  EXPECT_FALSE(client.interrupts.empty());
  EXPECT_FALSE(m->waiting());  // delivery cleared the wait
}

TEST(InterruptPriority, DevicesKeepRunningWhileCpuWaits) {
  auto m = MakeBareMachine();
  int lp = m->AddDevice(std::make_unique<LinePrinter>("lp", 20, 3, /*print_delay=*/3));
  m->device(lp).WriteRegister(1, 'Z');  // start a print, no interrupts enabled
  Result<AssembledProgram> p = Assemble("WAIT\nHALT\n");
  ASSERT_TRUE(p.ok());
  m->memory().LoadImage(0x100, p->words);
  m->cpu().set_pc(0x100);
  m->Run(10);
  // The CPU never woke (no IE), but the device finished its work.
  EXPECT_TRUE(m->waiting());
  std::vector<Word> out = m->device(lp).DrainOutput();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 'Z');
}

TEST(InterruptPriority, InterruptClearsDeviceLineOnDelivery) {
  auto m = MakeBareMachine();
  int clk = m->AddDevice(std::make_unique<LineClock>("clk", 20, 5, 3));
  RecordingClient client;
  m->set_client(&client);
  m->device(clk).WriteRegister(0, kCsrIe);
  Result<AssembledProgram> p = Assemble("LOOP: NOP\n      BR LOOP\n");
  ASSERT_TRUE(p.ok());
  m->memory().LoadImage(0x100, p->words);
  m->cpu().set_pc(0x100);
  m->Run(4);
  ASSERT_EQ(client.interrupts.size(), 1u);
  EXPECT_FALSE(m->device(clk).interrupt_pending());
}

}  // namespace
}  // namespace sep
