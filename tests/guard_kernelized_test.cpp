// The ACCAT-style Guard deployed on the separation kernel: low-interface,
// high-interface and guard as SM-11 regimes, kernel channels as the only
// lines. The paper's Section 1 criticises the real Guard for sitting on a
// multilevel kernel (KSOS) that its HIGH->LOW path had to fight; here it
// gets the kernel the paper recommends — one that enforces no policy at
// all, while the guard regime enforces exactly its own.
//
// Message protocol on every channel: [len][len words...]. The guard
// forwards LOW->HIGH unhindered; HIGH->LOW messages are released only when
// the first word is the 'U' (unclassified) marker — the scripted stand-in
// for the Security Watch Officer, as in the native-component Guard.
#include <gtest/gtest.h>

#include "src/core/kernel_system.h"
#include "src/core/separability.h"

namespace sep {
namespace {

// Channels: 0 low->guard, 1 high->guard, 2 guard->low, 3 guard->high.
constexpr char kGuardRegime[] = R"(
        .EQU FROM_LOW, 0
        .EQU FROM_HIGH, 1
        .EQU TO_LOW, 2
        .EQU TO_HIGH, 3

MAIN:   ; --- LOW -> HIGH: pass through unhindered ---
        MOV #FROM_LOW, R0
        TRAP 2
        TST R0
        BEQ TRYHI
        MOV R1, R3          ; len
        MOV #TO_HIGH, R0
        JSR SENDB
CPY:    TST R3
        BEQ TRYHI
LRCV:   MOV #FROM_LOW, R0
        TRAP 2
        TST R0
        BEQ LWAIT
        MOV #TO_HIGH, R0
        JSR SENDB
        DEC R3
        BR CPY
LWAIT:  TRAP 0
        BR LRCV

TRYHI:  ; --- HIGH -> LOW: buffer, review, release or deny ---
        MOV #FROM_HIGH, R0
        TRAP 2
        TST R0
        BEQ YIELD
        MOV R1, R3          ; len
        MOV #BUF, R4
        MOV R3, R5          ; remaining
HRCV:   TST R5
        BEQ REVIEW
HRCV2:  MOV #FROM_HIGH, R0
        TRAP 2
        TST R0
        BEQ HWAIT
        MOV R1, (R4)
        INC R4
        DEC R5
        BR HRCV
HWAIT:  TRAP 0
        BR HRCV2
REVIEW: MOV BUF, R2         ; the watch-officer rule: first word is 'U'?
        CMP #'U', R2
        BNE DENY
        MOV R3, R1          ; release: len, then the words
        MOV #TO_LOW, R0
        JSR SENDB
        MOV #BUF, R4
RLOOP:  TST R3
        BEQ YIELD
        MOV (R4), R1
        MOV #TO_LOW, R0
        JSR SENDB
        INC R4
        DEC R3
        BR RLOOP
DENY:   MOV DENIED, R2
        INC R2
        MOV R2, @DENIED
YIELD:  TRAP 0
        BR MAIN

; blocking send: word in R1, channel in R0; clobbers R0, R2
SENDB:  MOV R0, R2
SBLOOP: MOV R2, R0
        TRAP 1
        TST R0
        BNE SBDONE
        TRAP 0
        BR SBLOOP
SBDONE: RTS

DENIED: .WORD 0
BUF:    .BLKW 32
)";

// Sends one message, then collects everything the guard forwards to it.
constexpr char kLowSide[] = R"(
        ; send [2,'H','I'] on channel 0
        MOV #2, R1
        CLR R0
        JSR SENDB
        MOV #'H', R1
        CLR R0
        JSR SENDB
        MOV #'I', R1
        CLR R0
        JSR SENDB
        MOV #0x100, R4
RLOOP:  MOV #2, R0          ; channel 2: guard -> low
        TRAP 2
        TST R0
        BEQ RYIELD
        MOV R1, (R4)
        INC R4
        BR RLOOP
RYIELD: TRAP 0
        BR RLOOP
SENDB:  MOV R0, R2
SBLOOP: MOV R2, R0
        TRAP 1
        TST R0
        BNE SBDONE
        TRAP 0
        BR SBLOOP
SBDONE: RTS
)";

// Sends a releasable message and a secret one, then collects LOW->HIGH
// traffic.
constexpr char kHighSide[] = R"(
        ; message 1: [3,'U','O','K'] - marked releasable
        MOV #3, R1
        MOV #1, R0
        JSR SENDB
        MOV #'U', R1
        MOV #1, R0
        JSR SENDB
        MOV #'O', R1
        MOV #1, R0
        JSR SENDB
        MOV #'K', R1
        MOV #1, R0
        JSR SENDB
        ; message 2: [3,'S','E','C'] - not marked: must be denied
        MOV #3, R1
        MOV #1, R0
        JSR SENDB
        MOV #'S', R1
        MOV #1, R0
        JSR SENDB
        MOV #'E', R1
        MOV #1, R0
        JSR SENDB
        MOV #'C', R1
        MOV #1, R0
        JSR SENDB
        MOV #0x100, R4
RLOOP:  MOV #3, R0          ; channel 3: guard -> high
        TRAP 2
        TST R0
        BEQ RYIELD
        MOV R1, (R4)
        INC R4
        BR RLOOP
RYIELD: TRAP 0
        BR RLOOP
SENDB:  MOV R0, R2
SBLOOP: MOV R2, R0
        TRAP 1
        TST R0
        BNE SBDONE
        TRAP 0
        BR SBLOOP
SBDONE: RTS
)";

struct KernelizedGuard {
  std::unique_ptr<KernelizedSystem> system;

  KernelizedGuard() {
    SystemBuilder builder;
    EXPECT_TRUE(builder.AddRegime("guard", 512, kGuardRegime).ok());
    EXPECT_TRUE(builder.AddRegime("low", 512, kLowSide).ok());
    EXPECT_TRUE(builder.AddRegime("high", 512, kHighSide).ok());
    builder.AddChannel("low->guard", 1, 0, 16);
    builder.AddChannel("high->guard", 2, 0, 16);
    builder.AddChannel("guard->low", 0, 1, 16);
    builder.AddChannel("guard->high", 0, 2, 16);
    auto built = builder.Build();
    EXPECT_TRUE(built.ok()) << built.error();
    system = std::move(built.value());
  }

  Word LowMem(Word offset) {
    const auto& regime = system->kernel().config().regimes[1];
    return system->machine().memory().Read(regime.mem_base + offset);
  }
  Word HighMem(Word offset) {
    const auto& regime = system->kernel().config().regimes[2];
    return system->machine().memory().Read(regime.mem_base + offset);
  }
  Word GuardDenied() {
    Result<AssembledProgram> program = Assemble(kGuardRegime);
    EXPECT_TRUE(program.ok());
    const auto& regime = system->kernel().config().regimes[0];
    return system->machine().memory().Read(regime.mem_base +
                                           program->SymbolOr("DENIED", 0));
  }
};

TEST(KernelizedGuard, LowToHighPassesUnhindered) {
  KernelizedGuard rig;
  rig.system->Run(30000);
  // High side received [2,'H','I'] at 0x100.
  EXPECT_EQ(rig.HighMem(0x100), 2);
  EXPECT_EQ(rig.HighMem(0x101), 'H');
  EXPECT_EQ(rig.HighMem(0x102), 'I');
}

TEST(KernelizedGuard, HighToLowFiltersUnmarkedMessages) {
  KernelizedGuard rig;
  rig.system->Run(30000);
  // Low side received ONLY the 'U'-marked message.
  EXPECT_EQ(rig.LowMem(0x100), 3);
  EXPECT_EQ(rig.LowMem(0x101), 'U');
  EXPECT_EQ(rig.LowMem(0x102), 'O');
  EXPECT_EQ(rig.LowMem(0x103), 'K');
  EXPECT_EQ(rig.LowMem(0x104), 0);  // nothing after it: SEC never arrived
  EXPECT_EQ(rig.GuardDenied(), 1);
}

TEST(KernelizedGuard, NoDirectLowHighChannelExists) {
  KernelizedGuard rig;
  const auto& channels = rig.system->kernel().config().channels;
  for (const ChannelConfig& channel : channels) {
    // Regimes: 0 = guard, 1 = low, 2 = high. Every line touches the guard.
    EXPECT_TRUE(channel.sender == 0 || channel.receiver == 0) << channel.name;
    EXPECT_FALSE(channel.sender == 1 && channel.receiver == 2);
    EXPECT_FALSE(channel.sender == 2 && channel.receiver == 1);
  }
}

TEST(KernelizedGuard, CutVariantSatisfiesSeparability) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("guard", 512, kGuardRegime).ok());
  ASSERT_TRUE(builder.AddRegime("low", 512, kLowSide).ok());
  ASSERT_TRUE(builder.AddRegime("high", 512, kHighSide).ok());
  builder.AddChannel("low->guard", 1, 0, 16);
  builder.AddChannel("high->guard", 2, 0, 16);
  builder.AddChannel("guard->low", 0, 1, 16);
  builder.AddChannel("guard->high", 0, 2, 16);
  builder.CutChannels(true);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  CheckerOptions options;
  options.trace_steps = 500;
  options.sample_every = 7;
  SeparabilityReport report = CheckSeparability(**sys, options);
  EXPECT_TRUE(report.Passed()) << report.Summary() << "\nfirst: "
                               << (report.violations.empty() ? ""
                                                             : report.violations[0].description);
}

}  // namespace
}  // namespace sep
