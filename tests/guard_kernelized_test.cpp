// The ACCAT-style Guard deployed on the separation kernel: low-interface,
// high-interface and guard as SM-11 regimes, kernel channels as the only
// lines. The paper's Section 1 criticises the real Guard for sitting on a
// multilevel kernel (KSOS) that its HIGH->LOW path had to fight; here it
// gets the kernel the paper recommends — one that enforces no policy at
// all, while the guard regime enforces exactly its own.
//
// Message protocol on every channel: [len][len words...]. The guard
// forwards LOW->HIGH unhindered; HIGH->LOW messages are released only when
// the first word is the 'U' (unclassified) marker — the scripted stand-in
// for the Security Watch Officer, as in the native-component Guard.
#include <gtest/gtest.h>

#include "src/core/kernel_system.h"
#include "src/core/separability.h"
#include "src/sepcheck/guest_corpus.h"

namespace sep {
namespace {

// The guest programs live in src/sepcheck/guest_corpus.h so the static
// separability analyzer lints exactly what these tests execute.
// Channels: 0 low->guard, 1 high->guard, 2 guard->low, 3 guard->high.
using sepcheck::kGuardGuard;
using sepcheck::kGuardHigh;
using sepcheck::kGuardLow;
struct KernelizedGuard {
  std::unique_ptr<KernelizedSystem> system;

  KernelizedGuard() {
    SystemBuilder builder;
    EXPECT_TRUE(builder.AddRegime("guard", 512, kGuardGuard).ok());
    EXPECT_TRUE(builder.AddRegime("low", 512, kGuardLow).ok());
    EXPECT_TRUE(builder.AddRegime("high", 512, kGuardHigh).ok());
    builder.AddChannel("low->guard", 1, 0, 16);
    builder.AddChannel("high->guard", 2, 0, 16);
    builder.AddChannel("guard->low", 0, 1, 16);
    builder.AddChannel("guard->high", 0, 2, 16);
    auto built = builder.Build();
    EXPECT_TRUE(built.ok()) << built.error();
    system = std::move(built.value());
  }

  Word LowMem(Word offset) {
    const auto& regime = system->kernel().config().regimes[1];
    return system->machine().memory().Read(regime.mem_base + offset);
  }
  Word HighMem(Word offset) {
    const auto& regime = system->kernel().config().regimes[2];
    return system->machine().memory().Read(regime.mem_base + offset);
  }
  Word GuardDenied() {
    Result<AssembledProgram> program = Assemble(kGuardGuard);
    EXPECT_TRUE(program.ok());
    const auto& regime = system->kernel().config().regimes[0];
    return system->machine().memory().Read(regime.mem_base +
                                           program->SymbolOr("DENIED", 0));
  }
};

TEST(KernelizedGuard, LowToHighPassesUnhindered) {
  KernelizedGuard rig;
  rig.system->Run(30000);
  // High side received [2,'H','I'] at 0x100.
  EXPECT_EQ(rig.HighMem(0x100), 2);
  EXPECT_EQ(rig.HighMem(0x101), 'H');
  EXPECT_EQ(rig.HighMem(0x102), 'I');
}

TEST(KernelizedGuard, HighToLowFiltersUnmarkedMessages) {
  KernelizedGuard rig;
  rig.system->Run(30000);
  // Low side received ONLY the 'U'-marked message.
  EXPECT_EQ(rig.LowMem(0x100), 3);
  EXPECT_EQ(rig.LowMem(0x101), 'U');
  EXPECT_EQ(rig.LowMem(0x102), 'O');
  EXPECT_EQ(rig.LowMem(0x103), 'K');
  EXPECT_EQ(rig.LowMem(0x104), 0);  // nothing after it: SEC never arrived
  EXPECT_EQ(rig.GuardDenied(), 1);
}

TEST(KernelizedGuard, NoDirectLowHighChannelExists) {
  KernelizedGuard rig;
  const auto& channels = rig.system->kernel().config().channels;
  for (const ChannelConfig& channel : channels) {
    // Regimes: 0 = guard, 1 = low, 2 = high. Every line touches the guard.
    EXPECT_TRUE(channel.sender == 0 || channel.receiver == 0) << channel.name;
    EXPECT_FALSE(channel.sender == 1 && channel.receiver == 2);
    EXPECT_FALSE(channel.sender == 2 && channel.receiver == 1);
  }
}

TEST(KernelizedGuard, CutVariantSatisfiesSeparability) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("guard", 512, kGuardGuard).ok());
  ASSERT_TRUE(builder.AddRegime("low", 512, kGuardLow).ok());
  ASSERT_TRUE(builder.AddRegime("high", 512, kGuardHigh).ok());
  builder.AddChannel("low->guard", 1, 0, 16);
  builder.AddChannel("high->guard", 2, 0, 16);
  builder.AddChannel("guard->low", 0, 1, 16);
  builder.AddChannel("guard->high", 0, 2, 16);
  builder.CutChannels(true);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  CheckerOptions options;
  options.trace_steps = 500;
  options.sample_every = 7;
  SeparabilityReport report = CheckSeparability(**sys, options);
  EXPECT_TRUE(report.Passed()) << report.Summary() << "\nfirst: "
                               << (report.violations.empty() ? ""
                                                             : report.violations[0].description);
}

}  // namespace
}  // namespace sep
