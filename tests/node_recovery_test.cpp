// Crash–restart survivability (experiment E18).
//
// The link-level chaos suite (chaos_test.cpp) makes the WIRES hostile; this
// suite makes the MACHINES mortal. The acceptance property is the same and
// stricter: with node crashes inside the tolerated envelope — crashable
// endpoints checkpointed, ack-commit on, deterministic segmentation — every
// application-visible stream is BYTE-IDENTICAL to the crash-free run. A
// crash may cost time (recovery_ticks), never bytes.
#include <gtest/gtest.h>

#include "src/components/guard.h"
#include "src/components/snfe_receive.h"
#include "src/core/kernel_system.h"
#include "src/core/node_recovery.h"
#include "src/distributed/faults.h"
#include "src/distributed/network.h"
#include "src/distributed/recoverable.h"
#include "src/distributed/recovery.h"
#include "src/distributed/reliable.h"
#include "src/machine/devices.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace sep {
namespace {

// --- Link::Reset -------------------------------------------------------------

TEST(LinkReset, FlushesInFlightAndReadyWords) {
  Link link("l", 16, /*latency=*/4);
  ASSERT_TRUE(link.Push(0xAAAA, /*now=*/0));
  ASSERT_TRUE(link.Push(0xBBBB, /*now=*/0));
  link.Advance(4);  // both delivered to the ready queue
  ASSERT_TRUE(link.Push(0xCCCC, /*now=*/4));  // still in flight
  ASSERT_EQ(link.ReadyCount(), 2u);

  link.Reset(/*now=*/5);
  EXPECT_EQ(link.ReadyCount(), 0u);
  EXPECT_FALSE(link.Pop().has_value());
  link.Advance(100);  // nothing ghosts back out of the flight queue
  EXPECT_EQ(link.ReadyCount(), 0u);
  EXPECT_EQ(link.resets(), 1u);
  EXPECT_EQ(link.last_reset(), 5u);
}

TEST(LinkReset, RestoresFullCapacity) {
  Link link("l", 4, 1);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(link.Push(static_cast<Word>(i), 0));
  }
  EXPECT_EQ(link.Space(), 0u);
  link.Reset(1);
  EXPECT_EQ(link.Space(), 4u);
}

TEST(LinkReset, SurvivesTheInstalledFaultPlan) {
  Link link("l", 16, 1);
  link.InstallFaults(FaultSpec::Uniform(50), /*seed=*/7);
  for (int i = 0; i < 8; ++i) {
    link.Push(static_cast<Word>(i), 0);
  }
  link.Reset(1);
  // The plan (the wire's own misbehaviour) persists; only traffic died.
  ASSERT_NE(link.faults(), nullptr);
  EXPECT_EQ(link.faults()->counters().offered, 8u);
  link.Push(0x1234, 2);
  EXPECT_EQ(link.faults()->counters().offered, 9u);
}

// --- NodeFaultPlan -----------------------------------------------------------

TEST(NodeFaultPlan, DeterministicGivenSeed) {
  NodeFaultSpec spec;
  spec.crash_percent = 10;
  spec.stall_percent = 20;
  NodeFaultPlan a(spec, 42);
  NodeFaultPlan b(spec, 42);
  for (int i = 0; i < 500; ++i) {
    const NodeFaultPlan::Decision da = a.Decide();
    const NodeFaultPlan::Decision db = b.Decide();
    EXPECT_EQ(da.crash, db.crash);
    EXPECT_EQ(da.restart_delay, db.restart_delay);
    EXPECT_EQ(da.stall_ticks, db.stall_ticks);
  }
  EXPECT_EQ(a.counters().crashes, b.counters().crashes);
  EXPECT_GT(a.counters().crashes, 0u);
  EXPECT_GT(a.counters().stalls, 0u);
}

TEST(NodeFaultPlan, RestartDelayStaysInBounds) {
  NodeFaultSpec spec;
  spec.crash_percent = 100;
  spec.min_restart_delay = 3;
  spec.max_restart_delay = 9;
  NodeFaultPlan plan(spec, 1);
  for (int i = 0; i < 200; ++i) {
    const NodeFaultPlan::Decision d = plan.Decide();
    ASSERT_TRUE(d.crash);
    EXPECT_GE(d.restart_delay, 3u);
    EXPECT_LE(d.restart_delay, 9u);
  }
}

TEST(NodeFaultPlan, MaxCrashesCapsTheSchedule) {
  NodeFaultSpec spec;
  spec.crash_percent = 100;
  spec.max_crashes = 3;
  NodeFaultPlan plan(spec, 5);
  int crashes = 0;
  for (int i = 0; i < 100; ++i) {
    if (plan.Decide().crash) {
      ++crashes;
    }
  }
  EXPECT_EQ(crashes, 3);
}

// --- checkpoint serialization ------------------------------------------------

TEST(CheckpointFormat, RoundTripsEveryFieldKind) {
  std::vector<Word> image;
  CkptWriter w(image);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.Flag(true);
  w.Flag(false);
  std::deque<Word> words = {1, 2, 3};
  w.Words(words);
  w.MaybeWord(std::optional<Word>(0x77));
  w.MaybeWord(std::nullopt);

  CkptReader r(image);
  EXPECT_EQ(r.U16(), 0xBEEF);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.Flag());
  EXPECT_FALSE(r.Flag());
  std::deque<Word> back;
  r.Words(back);
  EXPECT_EQ(back, words);
  EXPECT_EQ(r.MaybeWord(), std::optional<Word>(0x77));
  EXPECT_EQ(r.MaybeWord(), std::nullopt);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(CheckpointFormat, TruncatedImageTurnsStickyInvalid) {
  std::vector<Word> image;
  CkptWriter w(image);
  w.U32(0x11223344u);
  image.pop_back();  // truncate

  CkptReader r(image);
  (void)r.U32();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U16(), 0u);  // sticky: everything after the overrun reads 0
  EXPECT_FALSE(r.AtEnd());
}

TEST(CheckpointFormat, OversizedContainerCountIsRejected) {
  std::vector<Word> image;
  CkptWriter w(image);
  w.U32(1000000);  // claims a million words follow
  CkptReader r(image);
  std::vector<Word> out;
  r.Words(out);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(out.empty());
}

// --- crash lifecycle on a plain network --------------------------------------

// Counts its own steps; checkpoint/restore-capable so restarts are warm.
class TickCounter : public Process {
 public:
  std::string name() const override { return "tick-counter"; }
  void Step(NodeContext&) override { ++count_; }
  bool Checkpoint(std::vector<Word>& out) override {
    CkptWriter w(out);
    w.U64(count_);
    return true;
  }
  bool Restore(std::span<const Word> state) override {
    CkptReader r(state);
    count_ = r.U64();
    return r.AtEnd();
  }
  void OnColdRestart() override { ++cold_; }
  std::uint64_t count() const { return count_; }
  std::uint64_t cold() const { return cold_; }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t cold_ = 0;
};

TEST(CrashLifecycle, ScheduledCrashRollsBackToNewestCheckpoint) {
  Network net;
  const int node = net.AddNode(std::make_unique<TickCounter>());
  ASSERT_TRUE(net.EnableRecovery(node, /*checkpoint_interval=*/10));
  net.ScheduleCrash(node, /*at=*/25, /*restart_delay=*/5);
  net.Run(50);

  const auto& counter = static_cast<TickCounter&>(net.process(node));
  const Network::NodeStatus& status = net.node_status(node);
  EXPECT_EQ(status.crashes, 1u);
  EXPECT_EQ(status.restores, 1u);
  EXPECT_EQ(status.cold_starts, 0u);
  EXPECT_EQ(counter.cold(), 0u);
  // Crashed at 25 with checkpoints at 10 and 20: the work of ticks 21-24
  // (4 quanta) was lost, plus the 5 dead ticks and the reboot tick.
  ASSERT_EQ(net.recovery_log().size(), 1u);
  const Network::NodeRecoveryEvent& event = net.recovery_log()[0];
  EXPECT_EQ(event.node, node);
  EXPECT_EQ(event.crashed_at, 25u);
  EXPECT_EQ(event.lost_ticks, 5u);  // 25 - 20
  EXPECT_FALSE(event.cold);
  EXPECT_EQ(status.last_recovery_ticks, 5u);
  // Crash at 25, restart fires AT down_until=30: of the 50 ticks, the node
  // loses the crash tick, 4 dead ticks (26-29), the reboot tick (30), and
  // the 4 rolled-back quanta (21-24).
  EXPECT_EQ(counter.count(), 50u - 1u - 4u - 1u - 4u);
}

TEST(CrashLifecycle, CrashBeforeFirstCheckpointIsAColdStart) {
  Network net;
  const int node = net.AddNode(std::make_unique<TickCounter>());
  ASSERT_TRUE(net.EnableRecovery(node, /*checkpoint_interval=*/100));
  net.ScheduleCrash(node, /*at=*/5, /*restart_delay=*/3);
  net.Run(20);

  const auto& counter = static_cast<TickCounter&>(net.process(node));
  EXPECT_EQ(net.node_status(node).cold_starts, 1u);
  EXPECT_EQ(net.node_status(node).restores, 0u);
  EXPECT_EQ(counter.cold(), 1u);
  ASSERT_EQ(net.recovery_log().size(), 1u);
  EXPECT_TRUE(net.recovery_log()[0].cold);
}

TEST(CrashLifecycle, NonRecoverableNodeStaysDown) {
  Network net;
  const int node = net.AddNode(std::make_unique<TickCounter>());
  net.ScheduleCrash(node, /*at=*/5, /*restart_delay=*/2);
  net.Run(30);
  EXPECT_FALSE(net.NodeUp(node));
  EXPECT_EQ(static_cast<TickCounter&>(net.process(node)).count(), 4u);
}

TEST(CrashLifecycle, StallFreezesWithStateIntact) {
  Network net;
  const int node = net.AddNode(std::make_unique<TickCounter>());
  NodeFaultSpec spec;
  spec.stall_percent = 30;
  spec.max_stall = 4;
  net.InjectNodeFaults(node, spec, /*seed=*/9);
  net.Run(200);
  const auto& counter = static_cast<TickCounter&>(net.process(node));
  const Network::NodeStatus& status = net.node_status(node);
  EXPECT_GT(status.stalls, 0u);
  EXPECT_LT(counter.count(), 200u);  // stalled quanta executed nothing
  EXPECT_GT(counter.count(), 0u);
  EXPECT_EQ(status.crashes, 0u);  // stalls never lose state
}

// --- recoverable tunnel end-to-end (E18 core) --------------------------------

class WordSource : public Process {
 public:
  explicit WordSource(int count, std::uint64_t seed) : rng_(seed) {
    words_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      words_.push_back(static_cast<Word>(rng_.Next() & 0xFFFF));
    }
  }
  std::string name() const override { return "word-source"; }
  void Step(NodeContext& ctx) override {
    if (next_ < words_.size() && ctx.Send(0, words_[next_])) {
      ++next_;
    }
  }
  bool Finished() const override { return next_ >= words_.size(); }
  const std::vector<Word>& words() const { return words_; }

 private:
  Rng rng_;
  std::vector<Word> words_;
  std::size_t next_ = 0;
};

class WordSink : public Process {
 public:
  std::string name() const override { return "word-sink"; }
  void Step(NodeContext& ctx) override {
    while (std::optional<Word> w = ctx.Receive(0)) {
      got_.push_back(*w);
    }
  }
  const std::vector<Word>& got() const { return got_; }

 private:
  std::vector<Word> got_;
};

struct RecoverableRun {
  std::vector<Word> sent;
  std::vector<Word> got;
  Network::NodeStatus ingress;
  Network::NodeStatus egress;
  ReliableSenderStats tunnel_sender;
  ReliableReceiverStats tunnel_receiver;
  std::uint64_t ingress_cold = 0;
  std::uint64_t egress_cold = 0;
  std::size_t recoveries = 0;
};

struct CrashSchedule {
  bool crash_ingress = false;
  bool crash_egress = false;
  std::uint64_t seed = 0;
  int crash_percent = 1;
  int max_crashes = 2;
};

RecoverableRun RunRecoverableTunnel(int count, const FaultSpec& wire, std::uint64_t wire_seed,
                                    const CrashSchedule& crashes,
                                    TunnelRecoveryOptions recovery = {},
                                    std::size_t steps = 60000) {
  Network net;
  const int src = net.AddNode(std::make_unique<WordSource>(count, /*seed=*/7));
  const int dst = net.AddNode(std::make_unique<WordSink>());
  const RecoverableTunnel tunnel = SpliceRecoverableTunnel(net, src, dst, {}, recovery,
                                                           /*capacity=*/64, /*latency=*/2);
  if (wire.Any()) {
    net.InjectFaults(tunnel.data_link, wire, wire_seed);
    net.InjectFaults(tunnel.ack_link, wire, wire_seed ^ 0x1234567890ABCDEFULL);
  }
  NodeFaultSpec node_spec;
  node_spec.crash_percent = crashes.crash_percent;
  node_spec.max_crashes = crashes.max_crashes;
  node_spec.min_restart_delay = 4;
  node_spec.max_restart_delay = 24;
  if (crashes.crash_ingress) {
    net.InjectNodeFaults(tunnel.ingress_node, node_spec, crashes.seed);
  }
  if (crashes.crash_egress) {
    net.InjectNodeFaults(tunnel.egress_node, node_spec, crashes.seed ^ 0xFEEDu);
  }
  net.Run(steps);

  RecoverableRun run;
  run.sent = static_cast<WordSource&>(net.process(src)).words();
  run.got = static_cast<WordSink&>(net.process(dst)).got();
  run.ingress = net.node_status(tunnel.ingress_node);
  run.egress = net.node_status(tunnel.egress_node);
  run.tunnel_sender = TunnelIngress(net, tunnel).tunnel_sender().stats();
  run.tunnel_receiver = TunnelEgress(net, tunnel).tunnel_receiver().stats();
  run.ingress_cold = TunnelIngress(net, tunnel).cold_restarts();
  run.egress_cold = TunnelEgress(net, tunnel).cold_restarts();
  run.recoveries = net.recovery_log().size();
  return run;
}

TEST(RecoverableTunnel, CleanRunWithoutCrashesIsLossless) {
  RecoverableRun run = RunRecoverableTunnel(120, FaultSpec{}, 1, CrashSchedule{});
  EXPECT_EQ(run.got, run.sent);
  EXPECT_EQ(run.ingress.crashes, 0u);
  EXPECT_EQ(run.egress.crashes, 0u);
}

TEST(RecoverableTunnel, IngressCrashesAreMasked) {
  CrashSchedule crashes;
  crashes.crash_ingress = true;
  crashes.seed = 11;
  RecoverableRun run =
      RunRecoverableTunnel(120, FaultSpec::DropCorrupt(20), 500, crashes);
  ASSERT_GT(run.ingress.crashes, 0u);
  EXPECT_EQ(run.got, run.sent);
}

TEST(RecoverableTunnel, EgressCrashesAreMasked) {
  CrashSchedule crashes;
  crashes.crash_egress = true;
  crashes.seed = 12;
  RecoverableRun run =
      RunRecoverableTunnel(120, FaultSpec::DropCorrupt(20), 501, crashes);
  ASSERT_GT(run.egress.crashes, 0u);
  EXPECT_EQ(run.got, run.sent);
}

TEST(RecoverableTunnel, CrashesOfBothEndpointsAreMasked) {
  // E18's headline: >= 3 distinct seeded crash/restart schedules combined
  // with 20% drop+corrupt wire chaos, byte-identical delivery on every one.
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    CrashSchedule crashes;
    crashes.crash_ingress = true;
    crashes.crash_egress = true;
    crashes.seed = seed;
    RecoverableRun run =
        RunRecoverableTunnel(120, FaultSpec::DropCorrupt(20), 600 + seed, crashes);
    ASSERT_GT(run.ingress.crashes + run.egress.crashes, 0u) << "seed " << seed;
    EXPECT_EQ(run.got, run.sent) << "seed " << seed;
    EXPECT_EQ(run.recoveries, run.ingress.crashes + run.egress.crashes) << "seed " << seed;
  }
}

TEST(RecoverableTunnel, DeterministicGivenSeeds) {
  CrashSchedule crashes;
  crashes.crash_ingress = true;
  crashes.crash_egress = true;
  crashes.seed = 33;
  RecoverableRun a = RunRecoverableTunnel(80, FaultSpec::DropCorrupt(15), 77, crashes);
  RecoverableRun b = RunRecoverableTunnel(80, FaultSpec::DropCorrupt(15), 77, crashes);
  EXPECT_EQ(a.got, b.got);
  EXPECT_EQ(a.ingress.crashes, b.ingress.crashes);
  EXPECT_EQ(a.egress.crashes, b.egress.crashes);
  EXPECT_EQ(a.tunnel_sender.retransmits, b.tunnel_sender.retransmits);
}

TEST(RecoverableTunnel, GenesisOnlyRecoveryStillDeliversEverything) {
  // checkpoint_interval = 0: every restart is COLD, so delivery relies
  // entirely on ack-commit ("no checkpoint => nothing ever acknowledged")
  // plus the session resync handshake.
  TunnelRecoveryOptions recovery;
  recovery.checkpoint_interval = 0;
  CrashSchedule crashes;
  crashes.crash_egress = true;
  crashes.seed = 44;
  crashes.max_crashes = 1;
  RecoverableRun run =
      RunRecoverableTunnel(60, FaultSpec{}, 0, crashes, recovery);
  ASSERT_GT(run.egress.crashes, 0u);
  EXPECT_EQ(run.egress.cold_starts, run.egress.crashes);
  EXPECT_GT(run.egress_cold, 0u);
  EXPECT_EQ(run.got, run.sent);
}

// --- resync edges (satellite: retransmit storm / both endpoints / give-up) ---

TEST(ResyncEdges, RestartDuringRetransmitStorm) {
  // A severed wire puts the tunnel sender into a full retransmit storm;
  // the ingress then crashes mid-storm. After the wire heals and the node
  // restarts, the stream must still complete byte-identically.
  Network net;
  const int src = net.AddNode(std::make_unique<WordSource>(40, 7));
  const int dst = net.AddNode(std::make_unique<WordSink>());
  const RecoverableTunnel tunnel =
      SpliceRecoverableTunnel(net, src, dst, {}, {}, 64, 2);
  FaultSpec severed;
  severed.drop_percent = 100;
  net.InjectFaults(tunnel.data_link, severed, 1);
  net.Run(200);  // storm builds: every data frame dies on the wire
  EXPECT_GT(TunnelIngress(net, tunnel).tunnel_sender().stats().retransmits, 0u);
  const std::uint64_t storm_retransmits =
      TunnelIngress(net, tunnel).tunnel_sender().stats().retransmits;

  net.CrashNow(tunnel.ingress_node, /*restart_delay=*/8);
  net.ClearFaults(tunnel.data_link);  // the wire heals while the node is down
  net.Run(20000);

  const auto& got = static_cast<WordSink&>(net.process(dst)).got();
  const auto& sent = static_cast<WordSource&>(net.process(src)).words();
  EXPECT_EQ(got, sent);
  // Monotone across recovery: the restored sender only ever ADDS to the
  // stats the observer saw before the crash.
  EXPECT_GE(TunnelIngress(net, tunnel).tunnel_sender().stats().retransmits,
            storm_retransmits);
}

TEST(ResyncEdges, SimultaneousRestartOfBothEndpoints) {
  Network net;
  const int src = net.AddNode(std::make_unique<WordSource>(60, 7));
  const int dst = net.AddNode(std::make_unique<WordSink>());
  const RecoverableTunnel tunnel =
      SpliceRecoverableTunnel(net, src, dst, {}, {}, 64, 2);
  net.ScheduleCrash(tunnel.ingress_node, /*at=*/40, /*restart_delay=*/10);
  net.ScheduleCrash(tunnel.egress_node, /*at=*/40, /*restart_delay=*/14);
  net.Run(20000);
  EXPECT_EQ(net.node_status(tunnel.ingress_node).crashes, 1u);
  EXPECT_EQ(net.node_status(tunnel.egress_node).crashes, 1u);
  EXPECT_EQ(static_cast<WordSink&>(net.process(dst)).got(),
            static_cast<WordSource&>(net.process(src)).words());
}

TEST(ResyncEdges, GiveUpThenRestartRevivesTheLine) {
  // The tunnel sender gives up on a severed wire (max_retries exceeded);
  // the egress endpoint then restarts and SYNREQs. The revived sender must
  // finish the stream.
  Network net;
  const int src = net.AddNode(std::make_unique<WordSource>(30, 7));
  const int dst = net.AddNode(std::make_unique<WordSink>());
  ReliableConfig config;
  config.max_retries = 3;
  const RecoverableTunnel tunnel =
      SpliceRecoverableTunnel(net, src, dst, config, {}, 64, 2);
  FaultSpec severed;
  severed.drop_percent = 100;
  net.InjectFaults(tunnel.data_link, severed, 1);
  net.Run(3000);  // long enough to exhaust max_retries and give up
  ASSERT_TRUE(TunnelIngress(net, tunnel).tunnel_sender().dead());
  ASSERT_EQ(TunnelIngress(net, tunnel).tunnel_sender().stats().gave_up, 1u);

  net.ClearFaults(tunnel.data_link);
  net.CrashNow(tunnel.egress_node, /*restart_delay=*/6);
  net.Run(20000);

  EXPECT_FALSE(TunnelIngress(net, tunnel).tunnel_sender().dead());
  EXPECT_GT(TunnelIngress(net, tunnel).tunnel_sender().stats().revivals, 0u);
  EXPECT_EQ(static_cast<WordSink&>(net.process(dst)).got(),
            static_cast<WordSource&>(net.process(src)).words());
}

TEST(ResyncEdges, RetransmitCountersStayMonotoneAcrossRecovery) {
  Network net;
  const int src = net.AddNode(std::make_unique<WordSource>(100, 7));
  const int dst = net.AddNode(std::make_unique<WordSink>());
  const RecoverableTunnel tunnel =
      SpliceRecoverableTunnel(net, src, dst, {}, {}, 64, 2);
  net.InjectFaults(tunnel.data_link, FaultSpec::DropCorrupt(15), 9);
  NodeFaultSpec spec;
  spec.crash_percent = 2;
  spec.max_crashes = 3;
  net.InjectNodeFaults(tunnel.ingress_node, spec, 5);

  std::uint64_t prev_retransmits = 0;
  std::uint64_t prev_timeouts = 0;
  std::uint64_t prev_accepted = 0;
  for (int chunk = 0; chunk < 40; ++chunk) {
    net.Run(500);
    const ReliableSenderStats& tx = TunnelIngress(net, tunnel).tunnel_sender().stats();
    const ReliableReceiverStats& rx = TunnelEgress(net, tunnel).tunnel_receiver().stats();
    EXPECT_GE(tx.retransmits, prev_retransmits) << "chunk " << chunk;
    EXPECT_GE(tx.timeouts, prev_timeouts) << "chunk " << chunk;
    EXPECT_GE(rx.accepted, prev_accepted) << "chunk " << chunk;
    prev_retransmits = tx.retransmits;
    prev_timeouts = tx.timeouts;
    prev_accepted = rx.accepted;
  }
  EXPECT_GT(net.node_status(tunnel.ingress_node).crashes, 0u);
  EXPECT_EQ(static_cast<WordSink&>(net.process(dst)).got(),
            static_cast<WordSource&>(net.process(src)).words());
}

// --- the negative fixture ----------------------------------------------------

TEST(NegativeFixture, BrokenAckCommitLosesDataUnderCrashes) {
  // With the write-ahead rule OFF, the egress acknowledges data before its
  // checkpoint covers it; the ingress drops those segments from its window,
  // and a crash rolls the egress back to a state nobody can refill. The
  // stream comes out wrong — this is the deliberate breakage the chaos
  // sweep (chaos_run --break-resync) must catch.
  TunnelRecoveryOptions broken;
  broken.ack_commit = false;
  bool any_loss = false;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    CrashSchedule crashes;
    crashes.crash_egress = true;
    crashes.seed = seed;
    crashes.crash_percent = 2;
    crashes.max_crashes = 3;
    RecoverableRun run = RunRecoverableTunnel(120, FaultSpec{}, 0, crashes, broken,
                                              /*steps=*/20000);
    if (run.egress.crashes > 0 && run.got != run.sent) {
      any_loss = true;
      break;
    }
  }
  EXPECT_TRUE(any_loss) << "breaking ack-commit should corrupt at least one schedule";
}

// --- E18: the SNFE pair across machine crashes -------------------------------

struct SnfePairRun {
  std::vector<Frame> sent;
  std::vector<Frame> got;
  std::uint64_t crashes = 0;
};

SnfePairRun RunSnfePairRecoverable(const FaultSpec& wire, std::uint64_t wire_seed,
                                   bool crash_endpoints, std::uint64_t crash_seed,
                                   std::size_t steps = 120000) {
  Network net;
  SnfeRecoverableTopology topo = BuildSnfePairRecoverable(
      net, CensorStrictness::kSyntax, wire, wire_seed, {}, /*packet_count=*/8);
  if (crash_endpoints) {
    NodeFaultSpec node_spec;
    node_spec.crash_percent = 1;
    node_spec.max_crashes = 2;
    node_spec.min_restart_delay = 4;
    node_spec.max_restart_delay = 24;
    net.InjectNodeFaults(topo.tunnel.ingress_node, node_spec, crash_seed);
    net.InjectNodeFaults(topo.tunnel.egress_node, node_spec, crash_seed ^ 0xFEEDu);
  }
  net.Run(steps);

  SnfePairRun run;
  run.sent = static_cast<HostSource&>(net.process(topo.pair.transmit.host)).packets();
  run.got = static_cast<HostSink&>(net.process(topo.pair.host_rx)).packets();
  run.crashes = net.node_status(topo.tunnel.ingress_node).crashes +
                net.node_status(topo.tunnel.egress_node).crashes;
  return run;
}

TEST(SnfeAcrossCrashes, CleanRecoverableNetworkDeliversEveryPacket) {
  SnfePairRun run = RunSnfePairRecoverable(FaultSpec{}, 1, /*crash_endpoints=*/false, 0);
  ASSERT_EQ(run.got.size(), run.sent.size());
  for (std::size_t i = 0; i < run.sent.size(); ++i) {
    EXPECT_EQ(run.got[i].fields, run.sent[i].fields) << "packet " << i;
  }
}

TEST(SnfeAcrossCrashes, HostStreamSurvivesCrashesOfEitherNetworkEndpoint) {
  // E18 for the SNFE pair: three distinct seeded crash/restart schedules on
  // the network relays, each combined with 20% drop+corrupt wire chaos; the
  // receiving host's cleartext stream must be byte-identical every time.
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    SnfePairRun run = RunSnfePairRecoverable(FaultSpec::DropCorrupt(20), 700 + seed,
                                             /*crash_endpoints=*/true, seed);
    ASSERT_GT(run.crashes, 0u) << "seed " << seed;
    ASSERT_EQ(run.got.size(), run.sent.size()) << "seed " << seed;
    for (std::size_t i = 0; i < run.sent.size(); ++i) {
      EXPECT_EQ(run.got[i].fields, run.sent[i].fields) << "seed " << seed << " packet " << i;
    }
  }
}

// --- E18: the guard across machine crashes -----------------------------------

// The guard's released HIGH->LOW channel rides a recoverable tunnel: the
// Security Watch Officer's verdicts must reach LOW byte-identically even
// when the machines carrying them die.
std::vector<std::string> RunGuardOverRecoverableTunnel(bool chaos, std::uint64_t seed) {
  Network net;
  auto guard_owned = std::make_unique<Guard>(DefaultWatchOfficer);
  const int guard_node = net.AddNode(std::move(guard_owned));
  const int low_src = net.AddNode(std::make_unique<MessageSource>(
      "low-sys", std::vector<std::string>{"status report 1"}));
  const int high_src = net.AddNode(std::make_unique<MessageSource>(
      "high-sys", std::vector<std::string>{"UNCLAS:weather is fine",
                                           "REVIEW:convoy at grid 1234 5678",
                                           "TOP SECRET battle plan",
                                           "UNCLAS:supply convoy arrived"}));
  auto low_sink_owned = std::make_unique<MessageSink>("low-sink");
  MessageSink* low_sink = low_sink_owned.get();
  const int low_sink_node = net.AddNode(std::move(low_sink_owned));
  const int high_sink_node = net.AddNode(std::make_unique<MessageSink>("high-sink"));

  net.Connect(low_src, guard_node);   // guard in0 = from LOW
  net.Connect(high_src, guard_node);  // guard in1 = from HIGH
  // guard out0 (to LOW) runs through the crash-survivable pipeline.
  const RecoverableTunnel tunnel =
      SpliceRecoverableTunnel(net, guard_node, low_sink_node, {}, {}, 64, 2, "guard-low");
  net.Connect(guard_node, high_sink_node);  // guard out1 = to HIGH

  if (chaos) {
    net.InjectFaults(tunnel.data_link, FaultSpec::DropCorrupt(20), seed * 131);
    net.InjectFaults(tunnel.ack_link, FaultSpec::DropCorrupt(20), seed * 131 + 7);
    NodeFaultSpec node_spec;
    node_spec.crash_percent = 1;
    node_spec.max_crashes = 2;
    node_spec.min_restart_delay = 4;
    node_spec.max_restart_delay = 24;
    net.InjectNodeFaults(tunnel.ingress_node, node_spec, seed);
    net.InjectNodeFaults(tunnel.egress_node, node_spec, seed ^ 0xFEEDu);
  }
  net.Run(80000);
  if (chaos) {
    EXPECT_GT(net.node_status(tunnel.ingress_node).crashes +
                  net.node_status(tunnel.egress_node).crashes,
              0u)
        << "seed " << seed << " scheduled no crashes";
  }
  return low_sink->received();
}

TEST(GuardAcrossCrashes, ReleasedMessagesSurviveTunnelEndpointCrashes) {
  const std::vector<std::string> baseline =
      RunGuardOverRecoverableTunnel(/*chaos=*/false, 0);
  // Sanity on the scenario itself: both UNCLAS releases and the redaction
  // made it; the TOP SECRET message did not.
  ASSERT_EQ(baseline.size(), 3u);
  EXPECT_EQ(baseline[0], "UNCLAS:weather is fine");
  EXPECT_EQ(baseline[1], "convoy at grid #### ####");
  EXPECT_EQ(baseline[2], "UNCLAS:supply convoy arrived");

  for (std::uint64_t seed : {41u, 42u, 43u}) {
    EXPECT_EQ(RunGuardOverRecoverableTunnel(/*chaos=*/true, seed), baseline)
        << "seed " << seed;
  }
}

// --- E17 across a crash/restart boundary (kernelized node) -------------------

// Same interrupt-driven echo guest as obs_trace_equivalence_test.cpp: its
// canonical colour-0 trace is the E17 yardstick.
constexpr char kEcho[] = R"(
        .EQU DEV, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4          ; SETVEC
        MOV #DEV, R4
        MOV #0x40, (R4) ; RCSR IE
LOOP:   TRAP 6          ; AWAIT
        BR LOOP
HANDLER:
        MOV #DEV, R4
        MOV 1(R4), R2   ; RBUF
        INC R2
WAITTX: MOV 2(R4), R3   ; XCSR
        BIT #0x80, R3
        BEQ WAITTX
        MOV R2, 3(R4)   ; XBUF
        TRAP 5          ; RETI
)";

std::unique_ptr<KernelizedSystem> BuildEchoNode(const std::vector<Word>& stimulus,
                                                int* slot_out) {
  SystemBuilder builder;
  const int slot =
      builder.AddDevice(std::make_unique<SerialLine>("slu0", 16, 4, /*transmit_delay=*/2));
  Result<int> regime = builder.AddRegime("guest0", 512, kEcho, {slot});
  EXPECT_TRUE(regime.ok()) << (regime.ok() ? "" : regime.error());
  Result<std::unique_ptr<KernelizedSystem>> system = builder.Build();
  EXPECT_TRUE(system.ok()) << (system.ok() ? "" : system.error());
  for (Word w : stimulus) {
    (*system)->machine().device(slot).InjectInput(w);
  }
  *slot_out = slot;
  return std::move(*system);
}

struct EchoRun {
  std::string canonical;
  std::vector<Word> output;
  KernelNodeSupervisor::Stats stats;
};

EchoRun RunEchoUninterrupted(const std::vector<Word>& stimulus, std::size_t steps) {
  int slot = -1;
  std::unique_ptr<KernelizedSystem> system = BuildEchoNode(stimulus, &slot);
  obs::Recorder().Start(std::size_t{1} << 16);
  system->Run(steps);
  obs::Recorder().Stop();
  EchoRun run;
  run.canonical = obs::CanonicalColourTrace(obs::Recorder().Drain(), 0);
  run.output = system->machine().device(slot).DrainOutput();
  return run;
}

// Runs the same node under the supervisor, crashing it after each prefix in
// `crash_after_steps`, then running `tail_steps` more to finish the work.
EchoRun RunEchoSupervised(const std::vector<Word>& stimulus, std::size_t checkpoint_interval,
                          const std::vector<std::size_t>& crash_after_steps,
                          std::size_t tail_steps) {
  int slot = -1;
  std::unique_ptr<KernelizedSystem> system = BuildEchoNode(stimulus, &slot);
  obs::Recorder().Start(std::size_t{1} << 16);
  KernelNodeSupervisor supervisor(*system, {checkpoint_interval});
  for (std::size_t steps : crash_after_steps) {
    supervisor.Run(steps);
    EXPECT_TRUE(supervisor.Crash());
  }
  supervisor.Run(tail_steps);
  supervisor.Seal();
  obs::Recorder().Stop();
  obs::Recorder().Drain();  // discard whatever trails the sealed log
  EchoRun run;
  run.canonical = obs::CanonicalColourTrace(supervisor.committed_events(), 0);
  run.output = system->machine().device(slot).DrainOutput();
  run.stats = supervisor.stats();
  return run;
}

TEST(TraceAcrossCrash, WarmRecoveryPreservesCanonicalTraceAndOutput) {
  const std::vector<Word> stimulus = {10, 20, 30, 40};
  const EchoRun alone = RunEchoUninterrupted(stimulus, 30000);
  ASSERT_EQ(alone.output, (std::vector<Word>{11, 21, 31, 41}));
  ASSERT_NE(alone.canonical.find("irq-deliver"), std::string::npos);

  const EchoRun crashed =
      RunEchoSupervised(stimulus, /*checkpoint_interval=*/512, {4096, 9216}, 30000);
  EXPECT_EQ(crashed.stats.crashes, 2u);
  EXPECT_EQ(crashed.stats.warm_restores, 2u);
  EXPECT_GT(crashed.stats.checkpoints, 0u);

  // The E18 demand on E17: byte-identical canonical trace AND byte-identical
  // device output across the crash/restart boundary.
  EXPECT_EQ(crashed.canonical, alone.canonical)
      << "crashed:\n" << crashed.canonical << "\nalone:\n" << alone.canonical;
  EXPECT_EQ(crashed.output, alone.output);
}

TEST(TraceAcrossCrash, ColdRestartFromGenesisPreservesCanonicalTraceAndOutput) {
  const std::vector<Word> stimulus = {7, 8, 9};
  const EchoRun alone = RunEchoUninterrupted(stimulus, 30000);
  ASSERT_EQ(alone.output, (std::vector<Word>{8, 9, 10}));

  // checkpoint_interval=0: no checkpoint ever exists, the crash rolls all
  // the way back to the boot image and re-runs the node from scratch.
  const EchoRun crashed = RunEchoSupervised(stimulus, /*checkpoint_interval=*/0, {3000}, 30000);
  EXPECT_EQ(crashed.stats.cold_restarts, 1u);
  EXPECT_EQ(crashed.stats.checkpoints, 0u);
  EXPECT_EQ(crashed.canonical, alone.canonical);
  EXPECT_EQ(crashed.output, alone.output);
}

TEST(TraceAcrossCrash, NaiveLoggingWithoutCommitProtocolDoubleCountsReplay) {
  // Negative control: record the trace WITHOUT the supervisor's write-ahead
  // commit/discard protocol. The rollback then replays a window of events
  // that were already logged, and the canonical trace must differ — if it
  // did not, the commit protocol would be dead weight.
  const std::vector<Word> stimulus = {10, 20, 30, 40};
  const EchoRun alone = RunEchoUninterrupted(stimulus, 30000);

  int slot = -1;
  std::unique_ptr<KernelizedSystem> system = BuildEchoNode(stimulus, &slot);
  std::vector<obs::TraceEvent> naive_log;
  const auto drain_into_log = [&naive_log] {
    std::vector<obs::TraceEvent> drained = obs::Recorder().Drain();
    naive_log.insert(naive_log.end(), drained.begin(), drained.end());
    std::size_t observable = 0;
    for (const obs::TraceEvent& e : drained) {
      observable += obs::ColourObservable(e.code) ? 1 : 0;
    }
    return observable;
  };

  obs::Recorder().Start(std::size_t{1} << 16);
  system->Run(40);  // snapshot early, before the echo work completes
  drain_into_log();
  const std::optional<std::vector<Word>> snapshot = system->FullState();
  ASSERT_TRUE(snapshot.has_value());
  system->Run(4000);
  // The doomed window must contain observable events or the control is vacuous.
  ASSERT_GT(drain_into_log(), 0u);
  ASSERT_TRUE(system->RestoreFullState(*snapshot));
  system->Run(30000);
  drain_into_log();
  obs::Recorder().Stop();
  const std::string naive = obs::CanonicalColourTrace(naive_log, 0);

  EXPECT_NE(naive, alone.canonical);
  EXPECT_GT(naive.size(), alone.canonical.size());  // replayed events logged twice
}

}  // namespace
}  // namespace sep
