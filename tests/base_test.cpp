#include <gtest/gtest.h>

#include <set>

#include "src/base/hash.h"
#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/strings.h"

namespace sep {
namespace {

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> bad = Err("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "nope");
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Result, VoidResult) {
  Result<> ok = Ok();
  EXPECT_TRUE(ok.ok());
  Result<> bad = Err("broken");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "broken");
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextInRangeBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ForkIndependent) {
  Rng parent(3);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Hash, OrderSensitive) {
  Hasher a;
  a.Mix(1).Mix(2);
  Hasher b;
  b.Mix(2).Mix(1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, RangeIncludesLength) {
  std::vector<std::uint16_t> one = {0};
  std::vector<std::uint16_t> two = {0, 0};
  Hasher a;
  a.MixRange(one);
  Hasher b;
  b.MixRange(two);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Strings, SplitPreservesEmpties) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWhitespaceDropsEmpties) {
  auto parts = SplitWhitespace("  a \t b  ");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, TrimBothEnds) { EXPECT_EQ(Trim("  x y \t"), "x y"); }

TEST(Strings, OctalFormatting) { EXPECT_EQ(Octal(0777), "000777"); }

TEST(Strings, HexFormatting) { EXPECT_EQ(Hex(0xBEEF), "0xBEEF"); }

TEST(Strings, FormatBasic) { EXPECT_EQ(Format("%d-%s", 3, "x"), "3-x"); }

TEST(Strings, JoinWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_EQ(ToLower("aBc"), "abc");
}

}  // namespace
}  // namespace sep
