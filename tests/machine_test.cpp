#include <gtest/gtest.h>

#include "src/machine/devices.h"
#include "src/machine/machine.h"
#include "src/sm11asm/assembler.h"
#include "tests/test_util.h"

namespace sep {
namespace {

// Assembles and loads `source` at physical 0 and runs in kernel mode.
void LoadKernelProgram(Machine& m, const std::string& source) {
  Result<AssembledProgram> p = Assemble(source);
  ASSERT_TRUE(p.ok()) << p.error();
  m.memory().LoadImage(p->base, p->words);
  m.cpu().set_pc(p->EntryPoint());
  m.cpu().set_sp(0x1000);
}

TEST(MachineBasics, RunsProgramToHalt) {
  auto m = MakeBareMachine();
  LoadKernelProgram(*m, R"(
        CLR R0
LOOP:   INC R0
        CMP #5, R0
        BNE LOOP
        HALT
)");
  m->Run(100);
  EXPECT_TRUE(m->halted());
  EXPECT_EQ(m->cpu().regs[0], 5);
}

TEST(MachineBasics, PcRelativeLoadWorks) {
  auto m = MakeBareMachine();
  LoadKernelProgram(*m, R"(
        MOV VAR, R1
        MOV R1, @0x200
        HALT
VAR:    .WORD 4321
)");
  m->Run(100);
  EXPECT_TRUE(m->halted());
  EXPECT_EQ(m->cpu().regs[1], 4321);
  EXPECT_EQ(m->memory().Read(0x200), 4321);
}

TEST(MachineMmu, UserModeDeniedOutsidePages) {
  MachineConfig config;
  config.memory_words = 1u << 14;
  Machine m(config);
  // Map user page 0 to a 256-word window at 0x1000, read-write.
  m.mmu().SetPage(CpuMode::kUser, 0, {0x1000, 256, PageAccess::kReadWrite});

  auto denied = m.mmu().Translate(CpuMode::kUser, 300, AccessKind::kReadData);
  EXPECT_FALSE(denied.translation.has_value());
  EXPECT_EQ(denied.fault, MmuFault::kLengthViolation);

  auto other_page = m.mmu().Translate(CpuMode::kUser, kPageWords + 5, AccessKind::kReadData);
  EXPECT_FALSE(other_page.translation.has_value());
  EXPECT_EQ(other_page.fault, MmuFault::kPageDisabled);

  auto ok = m.mmu().Translate(CpuMode::kUser, 10, AccessKind::kReadData);
  ASSERT_TRUE(ok.translation.has_value());
  EXPECT_EQ(ok.translation->phys, 0x1000u + 10);
}

TEST(MachineMmu, ReadOnlyPageRejectsWrites) {
  Mmu mmu;
  mmu.SetPage(CpuMode::kUser, 0, {0, 100, PageAccess::kReadOnly});
  EXPECT_TRUE(mmu.Translate(CpuMode::kUser, 5, AccessKind::kReadData).translation.has_value());
  auto w = mmu.Translate(CpuMode::kUser, 5, AccessKind::kWriteData);
  EXPECT_FALSE(w.translation.has_value());
  EXPECT_EQ(w.fault, MmuFault::kAccessViolation);
}

TEST(MachineDevices, SerialLineRoundTrip) {
  auto m = MakeBareMachine();
  int slot = m->AddDevice(std::make_unique<SerialLine>("slu", 16, 4, /*transmit_delay=*/2));
  Device& slu = m->device(slot);

  // Inject a word from the environment; after one device step it is in RBUF.
  slu.InjectInput('Q');
  m->StepDevicePhase(slot);
  EXPECT_EQ(slu.ReadRegister(0) & kCsrDone, kCsrDone);
  EXPECT_EQ(slu.ReadRegister(1), 'Q');
  // Reading RBUF cleared DONE.
  EXPECT_EQ(slu.ReadRegister(0) & kCsrDone, 0);

  // Transmit: write XBUF, takes 2 steps to appear on the wire.
  ASSERT_EQ(slu.ReadRegister(2) & kCsrDone, kCsrDone);
  slu.WriteRegister(3, 'Z');
  EXPECT_EQ(slu.ReadRegister(2) & kCsrDone, 0);
  m->StepDevicePhase(slot);
  EXPECT_TRUE(slu.DrainOutput().empty());
  m->StepDevicePhase(slot);
  std::vector<Word> out = slu.DrainOutput();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 'Z');
}

TEST(MachineDevices, CpuAccessesDeviceThroughIoPage) {
  auto m = MakeBareMachine();
  int slot = m->AddDevice(std::make_unique<SerialLine>("slu", 16, 4, 1));
  m->device(slot).InjectInput('A');
  m->StepDevicePhase(slot);

  // Kernel page 7 maps io_base; RBUF is at io page offset slot*8+1 = 1.
  LoadKernelProgram(*m, R"(
        .EQU IOPAGE, 0xE000
        MOV #IOPAGE, R4
        MOV 1(R4), R0   ; read RBUF
        HALT
)");
  m->Run(100);
  EXPECT_TRUE(m->halted());
  EXPECT_EQ(m->cpu().regs[0], 'A');
}

TEST(MachineDevices, NonexistentDeviceRegisterFaults) {
  auto m = MakeBareMachine();
  LoadKernelProgram(*m, R"(
        .EQU IOPAGE, 0xE000
        MOV #IOPAGE, R4
        MOV (R4), R0    ; no device at slot 0
        HALT
)");
  // No client: hardware-vectors through the MMU-fault vector, which is 0 ->
  // executes from 0 again... install a halt at the fault vector target.
  m->memory().Write(kVectorMmuFault, 0x300);
  m->memory().Write(kVectorMmuFault + 1, 0);
  Result<AssembledProgram> halt = Assemble(".ORG 0x300\nHALT\n");
  ASSERT_TRUE(halt.ok());
  m->memory().LoadImage(0x300, std::vector<Word>(halt->words.end() - 1, halt->words.end()));
  m->Run(100);
  EXPECT_TRUE(m->halted());
}

TEST(MachineDevices, ClockInterruptsWhenEnabled) {
  auto m = MakeBareMachine();
  int slot = m->AddDevice(std::make_unique<LineClock>("clk", 20, 6, /*interval=*/3));
  // Enable interrupts on the clock, then WAIT; the vector handler halts.
  m->memory().Write(20, 0x300);  // vector PC
  m->memory().Write(21, 0x00E0); // vector PSW: priority 7 (mask further irqs)
  Result<AssembledProgram> prog = Assemble(R"(
        .EQU LKS, 0xE000
        MOV #0x40, R0
        MOV R0, @LKS    ; enable clock interrupts
        WAIT
        HALT            ; never reached; handler halts first
)");
  ASSERT_TRUE(prog.ok()) << prog.error();
  m->memory().LoadImage(0x100, prog->words);
  m->cpu().set_pc(0x100);
  m->cpu().set_sp(0x1000);
  Result<AssembledProgram> handler = Assemble("HALT\n");
  ASSERT_TRUE(handler.ok());
  m->memory().LoadImage(0x300, handler->words);

  m->Run(50);
  EXPECT_TRUE(m->halted());
  EXPECT_GT(m->tick(), 3u);
  (void)slot;
}

TEST(MachineClone, CloneIsIndependentAndEqual) {
  auto m = MakeBareMachine(1u << 12);
  m->AddDevice(std::make_unique<SerialLine>("slu", 16, 4, 1));
  LoadKernelProgram(*m, R"(
LOOP:   INC R0
        BR LOOP
)");
  m->Run(10);
  auto clone = m->Clone();
  EXPECT_EQ(m->StateHash(), clone->StateHash());
  EXPECT_EQ(m->SnapshotFull(), clone->SnapshotFull());
  clone->Run(5);
  EXPECT_NE(m->StateHash(), clone->StateHash());
  m->Run(5);
  EXPECT_EQ(m->StateHash(), clone->StateHash());  // determinism
}

TEST(MachineVectors, TrapInstructionVectorsThroughTable) {
  auto m = MakeBareMachine();
  m->memory().Write(kVectorTrap, 0x300);
  m->memory().Write(kVectorTrap + 1, 0);
  LoadKernelProgram(*m, "TRAP 9\nHALT\n");
  Result<AssembledProgram> handler = Assemble(".ORG 0x300\nMOV #1, R5\nRTI\n");
  ASSERT_TRUE(handler.ok());
  for (std::size_t i = 0; i < handler->words.size(); ++i) {
    m->memory().Write(handler->base + static_cast<PhysAddr>(i), handler->words[i]);
  }
  m->Run(20);
  EXPECT_TRUE(m->halted());
  EXPECT_EQ(m->cpu().regs[5], 1);  // handler ran
}

TEST(MachineState, SnapshotDetectsMemoryDifference) {
  auto a = MakeBareMachine(1024);
  auto b = MakeBareMachine(1024);
  EXPECT_EQ(a->SnapshotFull(), b->SnapshotFull());
  b->memory().Write(512, 1);
  EXPECT_NE(a->SnapshotFull(), b->SnapshotFull());
  EXPECT_NE(a->StateHash(), b->StateHash());
}

}  // namespace
}  // namespace sep
