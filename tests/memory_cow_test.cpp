// Copy-on-write PhysicalMemory: clones share unmodified pages, writes
// isolate, and version counters (the predecode cache's invalidation signal)
// move only when content actually changes.
#include <gtest/gtest.h>

#include "src/machine/machine.h"
#include "src/machine/memory.h"
#include "src/sm11asm/assembler.h"
#include "tests/test_util.h"

namespace sep {
namespace {

constexpr std::size_t kWords = 1u << 12;

TEST(CowMemory, FreshMemoryOwnsNoPages) {
  // Every page of a fresh memory is the shared zero page.
  PhysicalMemory mem(kWords);
  EXPECT_EQ(mem.PrivatePageCount(), 0u);
  for (PhysAddr a : {PhysAddr{0}, PhysAddr{1000}, PhysAddr{kWords - 1}}) {
    EXPECT_EQ(mem.Read(a), 0u);
  }
}

TEST(CowMemory, CopySharesAllPages) {
  PhysicalMemory mem(kWords);
  mem.Write(100, 0xBEEF);
  mem.Fill(512, 300, 7);
  PhysicalMemory copy = mem;
  // The copy holds references, not words: no page is exclusively owned by
  // either side.
  EXPECT_EQ(mem.PrivatePageCount(), 0u);
  EXPECT_EQ(copy.PrivatePageCount(), 0u);
  EXPECT_TRUE(mem == copy);
}

TEST(CowMemory, WriteAfterCopyIsolates) {
  PhysicalMemory mem(kWords);
  mem.Write(100, 1);
  PhysicalMemory copy = mem;

  copy.Write(100, 2);
  EXPECT_EQ(mem.Read(100), 1u);
  EXPECT_EQ(copy.Read(100), 2u);
  EXPECT_FALSE(mem == copy);

  // Exactly the written page was unshared — and with the copy diverged, the
  // original is again sole owner of its version of that page.
  EXPECT_EQ(copy.PrivatePageCount(), 1u);
  EXPECT_EQ(mem.PrivatePageCount(), 1u);
}

TEST(CowMemory, FillAndLoadImageOnSharedPagesIsolate) {
  PhysicalMemory mem(kWords);
  PhysicalMemory copy = mem;
  copy.Fill(0, PhysicalMemory::kCowPageWords * 2, 0xAA);
  copy.LoadImage(PhysicalMemory::kCowPageWords * 3, {1, 2, 3});
  EXPECT_EQ(mem.Read(0), 0u);
  EXPECT_EQ(mem.Read(PhysicalMemory::kCowPageWords * 3), 0u);
  EXPECT_EQ(copy.Read(0), 0xAAu);
  EXPECT_EQ(copy.Read(PhysicalMemory::kCowPageWords * 3 + 2), 3u);
}

TEST(CowMemory, CowCopyDoesNotBumpVersions) {
  PhysicalMemory mem(kWords);
  mem.Write(0, 5);
  PhysicalMemory copy = mem;
  const std::uint64_t gen = copy.generation();
  const std::uint64_t v0 = copy.PageVersion(0);
  const std::uint64_t v1 = copy.PageVersion(PhysicalMemory::kVersionPageWords);
  // Writing a NEIGHBOURING version page unshares the COW page (256 words)
  // but must bump only the written version page, by one — the COW copy
  // itself is not a content change.
  copy.Write(PhysicalMemory::kVersionPageWords, 9);
  EXPECT_EQ(copy.PageVersion(0), v0);
  EXPECT_EQ(copy.PageVersion(PhysicalMemory::kVersionPageWords), v1 + 1);
  EXPECT_EQ(copy.generation(), gen + 1);
}

TEST(CowMemory, RestoreWordsRoundTripsAndKeepsUnchangedVersions) {
  PhysicalMemory mem(kWords);
  mem.Fill(0, 64, 3);
  mem.Write(2000, 0x1234);

  std::vector<Word> snapshot;
  mem.AppendTo(snapshot);
  ASSERT_EQ(snapshot.size(), kWords);

  // Restoring the state the memory is already in is version-neutral.
  const std::uint64_t gen = mem.generation();
  const std::uint64_t v_code = mem.PageVersion(0);
  mem.RestoreWords(snapshot);
  EXPECT_EQ(mem.generation(), gen);
  EXPECT_EQ(mem.PageVersion(0), v_code);

  // Mutate, then restore: content is back and only the pages that differed
  // moved their versions.
  mem.Write(2000, 0xFFFF);
  mem.Write(2001, 0xEEEE);
  const std::uint64_t v_far = mem.PageVersion(3000);
  mem.RestoreWords(snapshot);
  EXPECT_EQ(mem.Read(2000), 0x1234u);
  EXPECT_EQ(mem.Read(2001), 0u);
  EXPECT_EQ(mem.Read(0), 3u);
  EXPECT_EQ(mem.PageVersion(0), v_code);    // untouched content, untouched version
  EXPECT_EQ(mem.PageVersion(3000), v_far);  // never written at all
  PhysicalMemory fresh(kWords);
  fresh.Fill(0, 64, 3);
  fresh.Write(2000, 0x1234);
  EXPECT_TRUE(mem == fresh);
}

TEST(CowMemory, RestoredCodeKeepsPredecodedCacheValid) {
  // A machine restored to a snapshot where its CODE is unchanged must keep
  // executing correctly: RestoreWords may only leave a version untouched
  // when the content is untouched, or the predecode cache would serve stale
  // instructions.
  auto m = MakeBareMachine();
  Result<AssembledProgram> p = Assemble(R"(
        CLR R0
LOOP:   INC R0
        CMP #5, R0
        BNE LOOP
        HALT
)");
  ASSERT_TRUE(p.ok()) << p.error();
  m->memory().LoadImage(p->base, p->words);
  m->cpu().set_pc(p->EntryPoint());
  m->cpu().set_sp(0x1000);

  const std::vector<Word> boot = m->SnapshotFull();
  m->Run(100);
  EXPECT_TRUE(m->halted());
  EXPECT_EQ(m->cpu().regs[0], 5);

  // Restore to boot (same code, different registers/flags) and re-run: the
  // predecoded loop body must still execute to the same result.
  ASSERT_TRUE(m->RestoreFull(boot));
  EXPECT_FALSE(m->halted());
  EXPECT_EQ(m->cpu().regs[0], 0u);
  m->Run(100);
  EXPECT_TRUE(m->halted());
  EXPECT_EQ(m->cpu().regs[0], 5);
}

TEST(CowMemory, ClonedMachinesDivergeIndependently) {
  // Clone mid-run: both machines continue from the same state but must not
  // observe each other's writes (the checker's per-transition isolation).
  auto m = MakeBareMachine();
  Result<AssembledProgram> p = Assemble(R"(
        CLR R0
LOOP:   INC R0
        MOV R0, @0x300
        CMP #8, R0
        BNE LOOP
        HALT
)");
  ASSERT_TRUE(p.ok()) << p.error();
  m->memory().LoadImage(p->base, p->words);
  m->cpu().set_pc(p->EntryPoint());
  m->cpu().set_sp(0x1000);

  m->Step();  // CLR
  m->Step();  // first INC
  auto clone = m->Clone();

  m->Run(100);
  EXPECT_TRUE(m->halted());
  EXPECT_EQ(m->memory().Read(0x300), 8u);

  // The clone is still parked before its first store.
  EXPECT_FALSE(clone->halted());
  EXPECT_EQ(clone->memory().Read(0x300), 0u);
  clone->Run(100);
  EXPECT_TRUE(clone->halted());
  EXPECT_EQ(clone->memory().Read(0x300), 8u);
}

}  // namespace
}  // namespace sep
