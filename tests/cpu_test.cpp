#include <gtest/gtest.h>

#include "src/machine/cpu.h"
#include "tests/test_util.h"

namespace sep {
namespace {

class CpuTest : public ::testing::Test {
 protected:
  CpuTest() : bus_(4096) {}

  // Loads words at address 0 and points the PC there.
  void Load(const std::vector<Word>& words) {
    bus_.Load(0, words);
    state_.set_pc(0);
  }

  CpuEvent Step() { return ExecuteOne(state_, bus_); }

  CpuState state_;
  FlatBus bus_;
};

TEST_F(CpuTest, MovImmediateToRegister) {
  Load({EncodeTwoOp(Opcode::kMov, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 2}), 1234});
  EXPECT_EQ(Step().kind, CpuEventKind::kOk);
  EXPECT_EQ(state_.regs[2], 1234);
  EXPECT_EQ(state_.pc(), 2);
  EXPECT_FALSE(state_.psw.z());
  EXPECT_FALSE(state_.psw.n());
}

TEST_F(CpuTest, MovSetsNZ) {
  Load({EncodeTwoOp(Opcode::kMov, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 0}), 0x8000});
  Step();
  EXPECT_TRUE(state_.psw.n());
  EXPECT_FALSE(state_.psw.z());
}

TEST_F(CpuTest, AddCarryAndOverflow) {
  state_.regs[1] = 0xFFFF;
  Load({EncodeTwoOp(Opcode::kAdd, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 1}), 1});
  Step();
  EXPECT_EQ(state_.regs[1], 0);
  EXPECT_TRUE(state_.psw.z());
  EXPECT_TRUE(state_.psw.c());
  EXPECT_FALSE(state_.psw.v());
}

TEST_F(CpuTest, AddSignedOverflow) {
  state_.regs[1] = 0x7FFF;
  Load({EncodeTwoOp(Opcode::kAdd, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 1}), 1});
  Step();
  EXPECT_EQ(state_.regs[1], 0x8000);
  EXPECT_TRUE(state_.psw.v());
  EXPECT_TRUE(state_.psw.n());
  EXPECT_FALSE(state_.psw.c());
}

TEST_F(CpuTest, SubBorrow) {
  state_.regs[1] = 3;
  Load({EncodeTwoOp(Opcode::kSub, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 1}), 5});
  Step();
  EXPECT_EQ(state_.regs[1], static_cast<Word>(-2));
  EXPECT_TRUE(state_.psw.c());  // borrow
  EXPECT_TRUE(state_.psw.n());
}

TEST_F(CpuTest, CmpDoesNotWrite) {
  state_.regs[2] = 9;
  Load({EncodeTwoOp(Opcode::kCmp, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 2}), 9});
  Step();
  EXPECT_EQ(state_.regs[2], 9);
  EXPECT_TRUE(state_.psw.z());
}

TEST_F(CpuTest, LogicalOps) {
  state_.regs[0] = 0b1100;
  Load({EncodeTwoOp(Opcode::kBic, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 0}), 0b0100});
  Step();
  EXPECT_EQ(state_.regs[0], 0b1000);

  state_.regs[1] = 0b0001;
  Load({EncodeTwoOp(Opcode::kBis, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 1}), 0b0110});
  Step();
  EXPECT_EQ(state_.regs[1], 0b0111);

  state_.regs[2] = 0b1010;
  Load({EncodeTwoOp(Opcode::kXor, {AddrMode::kImmediate, 0}, {AddrMode::kReg, 2}), 0b0110});
  Step();
  EXPECT_EQ(state_.regs[2], 0b1100);
}

TEST_F(CpuTest, RegisterDeferredReadWrite) {
  bus_[100] = 7;
  state_.regs[3] = 100;
  // INC (R3)
  Load({EncodeOneOp(Opcode::kInc, {AddrMode::kRegDeferred, 3})});
  Step();
  Word w = 0;
  bus_.Read(100, AccessKind::kReadData, &w);
  EXPECT_EQ(w, 8);
}

TEST_F(CpuTest, IndexedAddressing) {
  bus_[205] = 42;
  state_.regs[4] = 200;
  // MOV 5(R4), R0
  Load({EncodeTwoOp(Opcode::kMov, {AddrMode::kIndexed, 4}, {AddrMode::kReg, 0}), 5});
  Step();
  EXPECT_EQ(state_.regs[0], 42);
}

TEST_F(CpuTest, AbsoluteDestination) {
  state_.regs[0] = 11;
  // MOV R0, @300
  Load({EncodeTwoOp(Opcode::kMov, {AddrMode::kReg, 0}, {AddrMode::kImmediate, 0}), 300});
  Step();
  Word w = 0;
  bus_.Read(300, AccessKind::kReadData, &w);
  EXPECT_EQ(w, 11);
}

TEST_F(CpuTest, ClrTstNegComAsrAsl) {
  state_.regs[0] = 77;
  Load({EncodeOneOp(Opcode::kClr, {AddrMode::kReg, 0})});
  Step();
  EXPECT_EQ(state_.regs[0], 0);
  EXPECT_TRUE(state_.psw.z());

  state_.regs[1] = 5;
  Load({EncodeOneOp(Opcode::kNeg, {AddrMode::kReg, 1})});
  Step();
  EXPECT_EQ(state_.regs[1], static_cast<Word>(-5));
  EXPECT_TRUE(state_.psw.c());

  state_.regs[2] = 0x00FF;
  Load({EncodeOneOp(Opcode::kCom, {AddrMode::kReg, 2})});
  Step();
  EXPECT_EQ(state_.regs[2], 0xFF00);
  EXPECT_TRUE(state_.psw.c());

  state_.regs[3] = 0b110;
  Load({EncodeOneOp(Opcode::kAsr, {AddrMode::kReg, 3})});
  Step();
  EXPECT_EQ(state_.regs[3], 0b011);
  EXPECT_FALSE(state_.psw.c());

  state_.regs[4] = 0x8001;
  Load({EncodeOneOp(Opcode::kAsr, {AddrMode::kReg, 4})});
  Step();
  EXPECT_EQ(state_.regs[4], 0xC000);  // arithmetic: sign preserved
  EXPECT_TRUE(state_.psw.c());

  state_.regs[5] = 0x4001;
  Load({EncodeOneOp(Opcode::kAsl, {AddrMode::kReg, 5})});
  Step();
  EXPECT_EQ(state_.regs[5], 0x8002);
}

TEST_F(CpuTest, BranchesTakenAndNot) {
  // BEQ +3 with Z clear: not taken.
  state_.psw.SetFlags(false, false, false, false);
  Load({EncodeBranch(Opcode::kBeq, 3)});
  Step();
  EXPECT_EQ(state_.pc(), 1);
  // BEQ +3 with Z set: taken (offset from instruction end).
  state_.psw.SetFlags(false, true, false, false);
  Load({EncodeBranch(Opcode::kBeq, 3)});
  Step();
  EXPECT_EQ(state_.pc(), 4);
}

TEST_F(CpuTest, SignedBranches) {
  // BLT taken iff N^V.
  state_.psw.SetFlags(true, false, false, false);
  Load({EncodeBranch(Opcode::kBlt, 2)});
  Step();
  EXPECT_EQ(state_.pc(), 3);
  state_.psw.SetFlags(true, false, true, false);  // N and V: not less-than
  Load({EncodeBranch(Opcode::kBlt, 2)});
  Step();
  EXPECT_EQ(state_.pc(), 1);
}

TEST_F(CpuTest, JsrRtsRoundTrip) {
  state_.set_sp(1000);
  // JSR @500 ; target returns with RTS
  Load({EncodeOneOp(Opcode::kJsr, {AddrMode::kImmediate, 0}), 500});
  bus_[500] = EncodeZeroOp(Opcode::kRts);
  Step();
  EXPECT_EQ(state_.pc(), 500);
  EXPECT_EQ(state_.sp(), 999);
  Step();  // RTS
  EXPECT_EQ(state_.pc(), 2);
  EXPECT_EQ(state_.sp(), 1000);
}

TEST_F(CpuTest, JmpRegisterModeIllegal) {
  Load({EncodeOneOp(Opcode::kJmp, {AddrMode::kReg, 1})});
  EXPECT_EQ(Step().kind, CpuEventKind::kIllegalInstruction);
}

TEST_F(CpuTest, TrapReturnsCode) {
  Load({EncodeTrap(42)});
  CpuEvent e = Step();
  EXPECT_EQ(e.kind, CpuEventKind::kTrap);
  EXPECT_EQ(e.trap_code, 42);
  EXPECT_EQ(state_.pc(), 1);  // committed past the TRAP
}

TEST_F(CpuTest, PrivilegedOpsFaultInUserMode) {
  state_.psw.set_mode(CpuMode::kUser);
  Load({EncodeZeroOp(Opcode::kHalt)});
  EXPECT_EQ(Step().kind, CpuEventKind::kIllegalInstruction);
  Load({EncodeZeroOp(Opcode::kWait)});
  EXPECT_EQ(Step().kind, CpuEventKind::kIllegalInstruction);
  Load({EncodeZeroOp(Opcode::kRti)});
  EXPECT_EQ(Step().kind, CpuEventKind::kIllegalInstruction);
}

TEST_F(CpuTest, FaultLeavesStateUntouched) {
  state_.regs[1] = 77;
  state_.set_sp(500);
  // MOV R1, @9999 — out of bus range.
  Load({EncodeTwoOp(Opcode::kMov, {AddrMode::kReg, 1}, {AddrMode::kImmediate, 0}), 9999});
  CpuEvent e = Step();
  EXPECT_EQ(e.kind, CpuEventKind::kBusFault);
  EXPECT_EQ(e.fault_addr, 9999u);
  EXPECT_EQ(state_.pc(), 0);  // not committed
  EXPECT_EQ(state_.regs[1], 77);
}

TEST_F(CpuTest, RtiRestoresPswAndPc) {
  state_.set_sp(998);
  bus_[998] = 700;     // saved PC (top of stack)
  bus_[999] = 0x000C;  // saved PSW: N and Z set
  Load({EncodeZeroOp(Opcode::kRti)});
  EXPECT_EQ(Step().kind, CpuEventKind::kOk);
  EXPECT_EQ(state_.pc(), 700);
  EXPECT_TRUE(state_.psw.n());
  EXPECT_TRUE(state_.psw.z());
  EXPECT_EQ(state_.sp(), 1000);
}

TEST_F(CpuTest, IncDecOverflowFlags) {
  state_.regs[0] = 0x7FFF;
  Load({EncodeOneOp(Opcode::kInc, {AddrMode::kReg, 0})});
  Step();
  EXPECT_TRUE(state_.psw.v());
  state_.regs[0] = 0x8000;
  Load({EncodeOneOp(Opcode::kDec, {AddrMode::kReg, 0})});
  Step();
  EXPECT_TRUE(state_.psw.v());
}

}  // namespace
}  // namespace sep
