// Information flow analysis tests, culminating in the paper's Section 4
// argument (experiment E6): IFA rejects the secure SWAP while the semantic
// two-run test — and Proof of Separability on the real kernel — accept it.
#include <gtest/gtest.h>

#include "src/ifa/analyzer.h"
#include "src/ifa/interpreter.h"
#include "src/ifa/kernel_programs.h"
#include "src/ifa/parser.h"
#include "src/ifa/semantic.h"

namespace sep {
namespace {

std::unique_ptr<Program> MustParse(const std::string& source) {
  Result<std::unique_ptr<Program>> p = ParseSimpl(source);
  EXPECT_TRUE(p.ok()) << p.error();
  return p.ok() ? std::move(p.value()) : nullptr;
}

TEST(SimplParser, DeclarationsAndClasses) {
  auto p = MustParse(R"(
var a : RED;
var b : RED|BLACK;
var c : LOW;
)");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->variables.size(), 3u);
  EXPECT_FALSE(p->variables[0].security_class.IsLow());
  EXPECT_TRUE(p->variables[0].security_class.FlowsTo(p->variables[1].security_class));
  EXPECT_TRUE(p->variables[2].security_class.IsLow());
}

TEST(SimplParser, RejectsUndeclaredVariables) {
  EXPECT_FALSE(ParseSimpl("x := 1;").ok());
  EXPECT_FALSE(ParseSimpl("var x : RED; x := y;").ok());
}

TEST(SimplParser, RejectsDuplicateDeclaration) {
  EXPECT_FALSE(ParseSimpl("var x : RED; var x : BLACK;").ok());
}

TEST(SimplParser, PrecedenceAndParens) {
  auto p = MustParse("var x : LOW; x := 2 + 3 * 4;");
  ASSERT_NE(p, nullptr);
  Result<SimplEnv> env = RunSimpl(*p, {});
  ASSERT_TRUE(env.ok()) << env.error();
  EXPECT_EQ((*env)["x"], 14);

  auto q = MustParse("var x : LOW; x := (2 + 3) * 4;");
  env = RunSimpl(*q, {});
  EXPECT_EQ((*env)["x"], 20);
}

TEST(SimplInterp, ControlFlow) {
  auto p = MustParse(R"(
var n : LOW;
var sum : LOW;
var i : LOW;
i := 1;
sum := 0;
while i <= n {
  sum := sum + i;
  i := i + 1;
}
)");
  ASSERT_NE(p, nullptr);
  Result<SimplEnv> env = RunSimpl(*p, {{"n", 10}});
  ASSERT_TRUE(env.ok()) << env.error();
  EXPECT_EQ((*env)["sum"], 55);
}

TEST(SimplInterp, IfElse) {
  auto p = MustParse(R"(
var x : LOW;
var y : LOW;
if x > 5 { y := 1; } else { y := 2; }
)");
  ASSERT_NE(p, nullptr);
  SimplEnv hi = *RunSimpl(*p, {{"x", 9}});
  SimplEnv lo = *RunSimpl(*p, {{"x", 1}});
  EXPECT_EQ(hi["y"], 1);
  EXPECT_EQ(lo["y"], 2);
}

TEST(SimplInterp, DivisionByZeroFaults) {
  auto p = MustParse("var x : LOW; x := 1 / x;");
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(RunSimpl(*p, {{"x", 0}}).ok());
}

TEST(SimplInterp, RunawayLoopBounded) {
  auto p = MustParse("var x : LOW; while 1 == 1 { x := x + 1; }");
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(RunSimpl(*p, {}).ok());
}

TEST(FlowAnalysis, CertifiesCleanPrograms) {
  auto p = MustParse(R"(
var a : RED;
var b : RED;
var low : LOW;
b := a + 1;
a := b * 2 + low;
)");
  ASSERT_NE(p, nullptr);
  FlowReport report = AnalyzeFlows(*p);
  EXPECT_TRUE(report.Certified());
  EXPECT_EQ(report.statements_checked, 2u);
}

TEST(FlowAnalysis, ExplicitFlowViolation) {
  auto p = MustParse(R"(
var secret : RED;
var pub : LOW;
pub := secret;
)");
  ASSERT_NE(p, nullptr);
  FlowReport report = AnalyzeFlows(*p);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_FALSE(report.violations[0].implicit);
}

TEST(FlowAnalysis, ImplicitFlowViolation) {
  auto p = MustParse(R"(
var secret : RED;
var pub : LOW;
if secret > 0 { pub := 1; }
)");
  ASSERT_NE(p, nullptr);
  FlowReport report = AnalyzeFlows(*p);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_TRUE(report.violations[0].implicit);
}

TEST(FlowAnalysis, NestedGuardsAccumulate) {
  auto p = MustParse(R"(
var r : RED;
var b : BLACK;
var out : RED|BLACK;
if r > 0 {
  while b > 0 {
    out := 1;       // pc = RED|BLACK flows into RED|BLACK: fine
    b := b - 1;     // pc includes RED: RED -> BLACK implicit violation
  }
}
)");
  ASSERT_NE(p, nullptr);
  FlowReport report = AnalyzeFlows(*p);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].target, "b");
  EXPECT_TRUE(report.violations[0].implicit);
}

TEST(FlowAnalysis, WriteUpIsPermitted) {
  auto p = MustParse(R"(
var low : LOW;
var high : RED|BLACK;
high := low + 1;
)");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(AnalyzeFlows(*p).Certified());
}

// --- E6: the SWAP false positive -------------------------------------------

TEST(SwapArgument, IfaRejectsSecureSwapUnderAnyLabelling) {
  for (const char* name : {"swap/regs-high", "swap/regs-red"}) {
    const CatalogEntry* entry = nullptr;
    for (const CatalogEntry& e : KernelProgramCatalog()) {
      if (e.name == name) {
        entry = &e;
      }
    }
    ASSERT_NE(entry, nullptr);
    auto p = MustParse(entry->source);
    ASSERT_NE(p, nullptr);
    EXPECT_FALSE(AnalyzeFlows(*p).Certified()) << name;
  }
}

TEST(SwapArgument, SecureSwapPassesSemanticTwoRunTest) {
  for (const char* name : {"swap/regs-high", "swap/regs-red"}) {
    const CatalogEntry* entry = nullptr;
    for (const CatalogEntry& e : KernelProgramCatalog()) {
      if (e.name == name) {
        entry = &e;
      }
    }
    ASSERT_NE(entry, nullptr);
    auto p = MustParse(entry->source);
    ASSERT_NE(p, nullptr);
    EXPECT_FALSE(SemanticallyLeaks(*p, entry->secrets, entry->observables)) << name;
  }
}

TEST(SwapArgument, LeakySwapFailsBothAnalyses) {
  const CatalogEntry* entry = nullptr;
  for (const CatalogEntry& e : KernelProgramCatalog()) {
    if (e.name == "swap/leaky") {
      entry = &e;
    }
  }
  ASSERT_NE(entry, nullptr);
  auto p = MustParse(entry->source);
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(AnalyzeFlows(*p).Certified());
  EXPECT_TRUE(SemanticallyLeaks(*p, entry->secrets, entry->observables));
}

TEST(SwapArgument, WholeCatalogMatchesExpectations) {
  // Every row of the E6 table is self-checking: the recorded IFA verdict
  // and ground truth must match what the analyses actually compute.
  for (const CatalogEntry& entry : KernelProgramCatalog()) {
    auto p = MustParse(entry.source);
    ASSERT_NE(p, nullptr) << entry.name;
    EXPECT_EQ(AnalyzeFlows(*p).Certified(), entry.ifa_certifies) << entry.name;
    if (!entry.secrets.empty()) {
      EXPECT_EQ(SemanticallyLeaks(*p, entry.secrets, entry.observables), entry.actually_leaks)
          << entry.name;
    }
  }
}

TEST(SwapArgument, IfaIsSoundOnTheCatalog) {
  // Soundness: everything IFA certifies is semantically leak-free.
  for (const CatalogEntry& entry : KernelProgramCatalog()) {
    if (entry.ifa_certifies) {
      EXPECT_FALSE(entry.actually_leaks) << entry.name;
    }
  }
}

TEST(SwapArgument, IfaIsIncompleteOnTheCatalog) {
  // Incompleteness: at least the SWAP variants are rejected yet secure.
  int false_positives = 0;
  for (const CatalogEntry& entry : KernelProgramCatalog()) {
    if (!entry.ifa_certifies && !entry.actually_leaks) {
      ++false_positives;
    }
  }
  EXPECT_GE(false_positives, 2);
}

}  // namespace
}  // namespace sep
