// Shared helpers for the test suite.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/types.h"
#include "src/machine/cpu.h"
#include "src/machine/machine.h"
#include "src/machine/mmu.h"

namespace sep {

// A flat bus backed by a plain vector, for CPU unit tests.
class FlatBus : public Bus {
 public:
  explicit FlatBus(std::size_t words) : mem_(words, 0) {}

  bool Read(VirtAddr addr, AccessKind, Word* out) override {
    if (addr >= mem_.size()) {
      return false;
    }
    *out = mem_[addr];
    return true;
  }

  bool Write(VirtAddr addr, Word value) override {
    if (addr >= mem_.size()) {
      return false;
    }
    mem_[addr] = value;
    return true;
  }

  Word& operator[](std::size_t i) { return mem_[i]; }
  void Load(VirtAddr base, const std::vector<Word>& words) {
    for (std::size_t i = 0; i < words.size(); ++i) {
      mem_[base + i] = words[i];
    }
  }

 private:
  std::vector<Word> mem_;
};

// A machine whose kernel mode identity-maps all of RAM (pages 0..6) and the
// start of the I/O page (page 7): the environment standalone SM-11 programs
// run in, with hardware trap/interrupt vectoring.
inline std::unique_ptr<Machine> MakeBareMachine(std::size_t memory_words = 1u << 15) {
  MachineConfig config;
  config.memory_words = memory_words;
  auto machine = std::make_unique<Machine>(config);
  for (int page = 0; page < 7; ++page) {
    const PhysAddr base = static_cast<PhysAddr>(page) * kPageWords;
    if (base >= memory_words) {
      break;
    }
    const std::uint32_t length =
        static_cast<std::uint32_t>(std::min<std::size_t>(kPageWords, memory_words - base));
    machine->mmu().SetPage(CpuMode::kKernel, page, {base, length, PageAccess::kReadWrite});
  }
  machine->mmu().SetPage(CpuMode::kKernel, 7, {config.io_base, kPageWords, PageAccess::kReadWrite});
  return machine;
}

}  // namespace sep

#endif  // TESTS_TEST_UTIL_H_
