// Bell-LaPadula reference-monitor tests, including the paper's Section 1
// spooler dilemma (experiment E7): a system-high spooler cannot delete
// lowly-classified spool files without a trusted-process exemption.
#include <gtest/gtest.h>

#include "src/security/blp.h"

namespace sep {
namespace {

SecurityLevel Unc() { return SecurityLevel(Classification::kUnclassified); }
SecurityLevel Sec() { return SecurityLevel(Classification::kSecret); }
SecurityLevel Top() { return SecurityLevel(Classification::kTopSecret); }

class BlpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CategoryRegistry::Instance().Reset();
    ASSERT_TRUE(monitor_.AddSubject({"low", Unc(), Unc(), false}).ok());
    ASSERT_TRUE(monitor_.AddSubject({"mid", Sec(), Sec(), false}).ok());
    ASSERT_TRUE(monitor_.AddSubject({"high", Top(), Top(), false}).ok());
    ASSERT_TRUE(monitor_.AddObject({"file.u", Unc()}).ok());
    ASSERT_TRUE(monitor_.AddObject({"file.s", Sec()}).ok());
    ASSERT_TRUE(monitor_.AddObject({"file.ts", Top()}).ok());
  }

  BlpMonitor monitor_;
};

TEST_F(BlpTest, SsPropertyNoReadUp) {
  EXPECT_FALSE(monitor_.Check("low", "file.s", AccessMode::kRead).granted);
  EXPECT_FALSE(monitor_.Check("mid", "file.ts", AccessMode::kRead).granted);
  EXPECT_TRUE(monitor_.Check("high", "file.u", AccessMode::kRead).granted);
  EXPECT_TRUE(monitor_.Check("mid", "file.s", AccessMode::kRead).granted);
}

TEST_F(BlpTest, StarPropertyNoWriteDown) {
  EXPECT_FALSE(monitor_.Check("high", "file.u", AccessMode::kWrite).granted);
  EXPECT_FALSE(monitor_.Check("mid", "file.u", AccessMode::kWrite).granted);
  EXPECT_TRUE(monitor_.Check("mid", "file.s", AccessMode::kWrite).granted);
}

TEST_F(BlpTest, AppendUpAllowed) {
  // Blind append flows information upward only: permitted.
  EXPECT_TRUE(monitor_.Check("low", "file.ts", AccessMode::kAppend).granted);
  EXPECT_FALSE(monitor_.Check("high", "file.u", AccessMode::kAppend).granted);
}

TEST_F(BlpTest, WriteUpDeniedBySsProperty) {
  // Write implies observation, so writing up is denied too.
  EXPECT_FALSE(monitor_.Check("low", "file.ts", AccessMode::kWrite).granted);
}

TEST_F(BlpTest, ExecuteAlwaysAllowed) {
  EXPECT_TRUE(monitor_.Check("low", "file.ts", AccessMode::kExecute).granted);
}

TEST_F(BlpTest, UnknownSubjectOrObjectDenied) {
  EXPECT_FALSE(monitor_.Check("ghost", "file.u", AccessMode::kRead).granted);
  EXPECT_FALSE(monitor_.Check("low", "ghost", AccessMode::kRead).granted);
}

TEST_F(BlpTest, CurrentLevelLogin) {
  // A TS-cleared user logging in at UNCLASSIFIED may write low files.
  ASSERT_TRUE(monitor_.SetCurrentLevel("high", Unc()).ok());
  EXPECT_TRUE(monitor_.Check("high", "file.u", AccessMode::kWrite).granted);
  EXPECT_FALSE(monitor_.Check("high", "file.ts", AccessMode::kRead).granted);
}

TEST_F(BlpTest, CurrentLevelCannotExceedClearance) {
  EXPECT_FALSE(monitor_.SetCurrentLevel("low", Top()).ok());
}

TEST_F(BlpTest, AuditTrailRecordsEverything) {
  monitor_.ClearAudit();
  monitor_.Check("low", "file.s", AccessMode::kRead);
  monitor_.Check("mid", "file.s", AccessMode::kRead);
  ASSERT_EQ(monitor_.audit().size(), 2u);
  EXPECT_FALSE(monitor_.audit()[0].granted);
  EXPECT_TRUE(monitor_.audit()[1].granted);
  EXPECT_EQ(monitor_.denied_count(), 1u);
}

// --- E7: the spooler dilemma -------------------------------------------------

class SpoolerDilemmaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CategoryRegistry::Instance().Reset();
    // The spooler runs system-high so it can read spool files of all
    // classifications (the paper's Section 1 setup).
    ASSERT_TRUE(monitor_.AddSubject({"spooler", Top(), Top(), false}).ok());
    ASSERT_TRUE(monitor_.AddObject({"spool/low-job", Unc()}).ok());
    ASSERT_TRUE(monitor_.AddObject({"spool/high-job", Top()}).ok());
  }

  BlpMonitor monitor_;
};

TEST_F(SpoolerDilemmaTest, SpoolerCanReadAllSpoolFiles) {
  EXPECT_TRUE(monitor_.Check("spooler", "spool/low-job", AccessMode::kRead).granted);
  EXPECT_TRUE(monitor_.Check("spooler", "spool/high-job", AccessMode::kRead).granted);
}

TEST_F(SpoolerDilemmaTest, DeleteAfterPrintViolatesStarProperty) {
  // The dilemma itself: after printing the low job, the high spooler cannot
  // delete its spool file — deletion is an alteration of a lower object.
  AccessDecision d = monitor_.Check("spooler", "spool/low-job", AccessMode::kDelete);
  EXPECT_FALSE(d.granted);
  EXPECT_NE(d.rule.find("*-property"), std::string::npos);
}

TEST_F(SpoolerDilemmaTest, TrustedProcessExemptionResolvesItBadly) {
  // The conventional-kernel escape hatch: mark the spooler trusted. The
  // deletion is now granted — and the kernel is no longer the sole arbiter
  // of security, which is the paper's complaint.
  BlpMonitor m;
  ASSERT_TRUE(m.AddSubject({"spooler", Top(), Top(), /*trusted=*/true}).ok());
  ASSERT_TRUE(m.AddObject({"spool/low-job", Unc()}).ok());
  AccessDecision d = m.Check("spooler", "spool/low-job", AccessMode::kDelete);
  EXPECT_TRUE(d.granted);
  EXPECT_NE(d.rule.find("trusted-exemption"), std::string::npos);
}

TEST_F(SpoolerDilemmaTest, DistributedPrinterServerNeedsNoExemption) {
  // The paper's resolution: a dedicated printer-server owns the spool files
  // at its own level per job — file operations happen at matching levels,
  // so plain BLP suffices with no trusted exemption anywhere.
  BlpMonitor m;
  ASSERT_TRUE(m.AddSubject({"printer-server@low", Top(), Unc(), false}).ok());
  ASSERT_TRUE(m.AddObject({"spool/low-job", Unc()}).ok());
  EXPECT_TRUE(m.Check("printer-server@low", "spool/low-job", AccessMode::kRead).granted);
  EXPECT_TRUE(m.Check("printer-server@low", "spool/low-job", AccessMode::kDelete).granted);
  EXPECT_EQ(m.denied_count(), 0u);
}

}  // namespace
}  // namespace sep
