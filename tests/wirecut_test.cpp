// The wire-cutting argument of Section 4 (experiment E5).
//
// The paper reduces "only the allowed channels exist" to a proof of total
// isolation for a kernel whose channels are cut: every shared channel
// object X is aliased into two ends X1/X2. These tests exhibit both halves
// of the argument operationally:
//   * the UNCUT kernel cannot satisfy the isolation conditions — a SEND by
//     one colour visibly changes the receiving colour's abstract state
//     (that is what communication IS);
//   * the CUT kernel, which differs only in the ring-base aliasing, passes
//     all six conditions — so the channel was the only flow.
#include <gtest/gtest.h>

#include "src/core/kernel_system.h"
#include "src/core/separability.h"

namespace sep {
namespace {

constexpr char kProducer[] = R"(
START:  CLR R3
LOOP:   INC R3
        MOV R3, R1
        CLR R0
        TRAP 1          ; SEND
        TRAP 0          ; SWAP
        BR LOOP
)";

constexpr char kConsumer[] = R"(
START:  MOV #0x80, R4
LOOP:   CLR R0
        TRAP 2          ; RECV
        TST R0
        BEQ YIELD
        MOV R1, (R4)
        INC R4
YIELD:  TRAP 0
        BR LOOP
)";

std::unique_ptr<KernelizedSystem> BuildPipeline(bool cut) {
  SystemBuilder builder;
  EXPECT_TRUE(builder.AddRegime("producer", 256, kProducer).ok());
  EXPECT_TRUE(builder.AddRegime("consumer", 256, kConsumer).ok());
  builder.AddChannel("p2c", 0, 1, 8);
  builder.CutChannels(cut);
  auto sys = builder.Build();
  EXPECT_TRUE(sys.ok()) << sys.error();
  return std::move(sys.value());
}

CheckerOptions Options(std::uint64_t seed) {
  CheckerOptions options;
  options.seed = seed;
  options.trace_steps = 400;
  options.sample_every = 9;
  options.perturb_variants = 2;
  return options;
}

TEST(WireCut, UncutChannelViolatesIsolation) {
  auto sys = BuildPipeline(/*cut=*/false);
  SeparabilityReport report = CheckSeparability(*sys, Options(1));
  ASSERT_FALSE(report.Passed())
      << "an uncut channel IS an information flow; isolation must fail";
  // The violation is attributable to the channel: a condition-2 breach
  // (another colour's operation changed my abstract state).
  bool saw_condition2 = false;
  for (const Violation& v : report.violations) {
    if (v.condition == 2) {
      saw_condition2 = true;
    }
  }
  EXPECT_TRUE(saw_condition2);
}

TEST(WireCut, CutChannelRestoresIsolation) {
  auto sys = BuildPipeline(/*cut=*/true);
  SeparabilityReport report = CheckSeparability(*sys, Options(2));
  EXPECT_TRUE(report.Passed()) << report.Summary() << "\nfirst: "
                               << (report.violations.empty() ? ""
                                                             : report.violations[0].description);
}

TEST(WireCut, UncutChannelActuallyCommunicates) {
  auto sys = BuildPipeline(/*cut=*/false);
  sys->Run(800);
  const auto& regimes = sys->kernel().config().regimes;
  // The consumer received the producer's 1, 2, 3, ...
  EXPECT_EQ(sys->machine().memory().Read(regimes[1].mem_base + 0x80), 1);
  EXPECT_EQ(sys->machine().memory().Read(regimes[1].mem_base + 0x81), 2);
}

TEST(WireCut, CutChannelStarvesConsumer) {
  auto sys = BuildPipeline(/*cut=*/true);
  sys->Run(800);
  const auto& regimes = sys->kernel().config().regimes;
  EXPECT_EQ(sys->machine().memory().Read(regimes[1].mem_base + 0x80), 0);
  // ... while the producer eventually sees backpressure, exactly as if the
  // receiver had stopped reading: the cut is invisible to the sender except
  // through the channel's own interface.
  EXPECT_EQ(sys->kernel().ChannelCount(0, 0), 8);  // X1 full
  EXPECT_EQ(sys->kernel().ChannelCount(0, 1), 0);  // X2 empty
}

TEST(WireCut, CutAndUncutShareKernelCodePaths) {
  // The aliasing is a configuration difference, not a code difference: both
  // variants execute the same kernel entry points (SEND/RECV/SWAP all in
  // active use under both configurations).
  auto uncut = BuildPipeline(false);
  auto cut = BuildPipeline(true);
  uncut->Run(500);
  cut->Run(500);
  EXPECT_GT(uncut->kernel().KernelCallCount(), 50u);
  EXPECT_GT(cut->kernel().KernelCallCount(), 50u);
  EXPECT_GT(uncut->kernel().SwapCount(), 10u);
  EXPECT_GT(cut->kernel().SwapCount(), 10u);
}

}  // namespace
}  // namespace sep
