// Race-condition stress for the work-stealing frontier plumbing: the
// Chase–Lev deque, the scheduler's termination detection and the sharded
// intern index. These are the three structures the exhaustive checker
// trusts for exactly-once expansion; the CI tsan matrix job runs this
// binary under ThreadSanitizer to certify them (.github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/base/arena.h"
#include "src/base/hash.h"
#include "src/base/thread_pool.h"
#include "src/base/work_steal.h"

namespace sep {
namespace {

TEST(StealDeque, OwnerPopsLifo) {
  StealDeque dq;
  for (std::int64_t i = 0; i < 100; ++i) {
    dq.Push(i);
  }
  for (std::int64_t i = 99; i >= 0; --i) {
    std::int64_t item = -1;
    ASSERT_TRUE(dq.Pop(&item));
    EXPECT_EQ(item, i);
  }
  std::int64_t item;
  EXPECT_FALSE(dq.Pop(&item));
}

TEST(StealDeque, ThiefStealsFifo) {
  StealDeque dq;
  for (std::int64_t i = 0; i < 10; ++i) {
    dq.Push(i);
  }
  for (std::int64_t i = 0; i < 10; ++i) {
    std::int64_t item = -1;
    ASSERT_EQ(dq.TrySteal(&item), StealDeque::StealResult::kGot);
    EXPECT_EQ(item, i);
  }
  std::int64_t item;
  EXPECT_EQ(dq.TrySteal(&item), StealDeque::StealResult::kEmpty);
}

TEST(StealDeque, GrowsPastInitialCapacity) {
  StealDeque dq(8);
  for (std::int64_t i = 0; i < 4096; ++i) {
    dq.Push(i);
  }
  EXPECT_EQ(dq.SizeApprox(), 4096u);
  for (std::int64_t i = 0; i < 4096; ++i) {
    std::int64_t item = -1;
    ASSERT_EQ(dq.TrySteal(&item), StealDeque::StealResult::kGot);
    EXPECT_EQ(item, i);
  }
}

// Owner pushes and pops while thieves hammer TrySteal: every pushed item
// must be consumed exactly once, whether by the owner or by a thief. This
// is the test that exercises the last-item CAS race and buffer growth under
// concurrent readers.
TEST(StealDeque, ConcurrentStealExactlyOnce) {
  constexpr std::int64_t kItems = 20000;
  constexpr int kThieves = 3;
  StealDeque dq(8);  // tiny start so growth happens mid-race
  std::atomic<std::int64_t> consumed{0};
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) {
    s.store(0, std::memory_order_relaxed);
  }
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::int64_t item;
      while (!done.load(std::memory_order_acquire)) {
        if (dq.TrySteal(&item) == StealDeque::StealResult::kGot) {
          seen[static_cast<std::size_t>(item)].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::int64_t item;
  for (std::int64_t i = 0; i < kItems; ++i) {
    dq.Push(i);
    if ((i & 3) == 0 && dq.Pop(&item)) {
      seen[static_cast<std::size_t>(item)].fetch_add(1, std::memory_order_relaxed);
      consumed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  while (dq.Pop(&item)) {
    seen[static_cast<std::size_t>(item)].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  }
  while (consumed.load(std::memory_order_acquire) < kItems) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) {
    th.join();
  }

  for (std::int64_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

// Every seeded and emitted item is processed exactly once and Run only
// returns after all of them — including items emitted from stolen work.
TEST(StealScheduler, ProcessesEveryEmittedItemExactlyOnce) {
  ThreadPool pool(4);
  StealScheduler sched(pool.size(), /*seed=*/42);
  // A binary fan-out: item i < kLeafBase emits 2i+1 and 2i+2.
  constexpr std::int64_t kLeafBase = 4095;  // full tree: ids 0..2*kLeafBase
  std::vector<std::atomic<int>> seen(2 * kLeafBase + 1);
  for (auto& s : seen) {
    s.store(0, std::memory_order_relaxed);
  }
  sched.Seed(0);
  sched.Run(pool, [&](std::int64_t item, int worker) {
    seen[static_cast<std::size_t>(item)].fetch_add(1, std::memory_order_relaxed);
    if (item < kLeafBase) {
      sched.Emit(worker, 2 * item + 1);
      sched.Emit(worker, 2 * item + 2);
    }
  });
  std::uint64_t processed = 0;
  for (int w = 0; w < pool.size(); ++w) {
    processed += sched.processed(w);
  }
  EXPECT_EQ(processed, seen.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

TEST(StealScheduler, SingleWorkerDegradesToSerialLoop) {
  ThreadPool pool(1);
  StealScheduler sched(pool.size(), /*seed=*/0);
  int count = 0;
  sched.Seed(0);
  sched.Run(pool, [&](std::int64_t item, int worker) {
    ++count;
    if (item < 99) {
      sched.Emit(worker, item + 1);
    }
  });
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sched.steal_count(), 0u);
}

TEST(ShardedIndexTest, PackedIdRoundTrip) {
  for (std::size_t s : {std::size_t{0}, std::size_t{5}, kShardCount - 1}) {
    for (std::size_t l : {std::size_t{0}, std::size_t{77}, kShardLocalMax}) {
      const std::int32_t packed = PackShardId(s, l);
      EXPECT_GE(packed, 0);  // sign bit stays clear: -1 remains a sentinel
      EXPECT_EQ(ShardOfId(packed), s);
      EXPECT_EQ(LocalOfId(packed), l);
    }
  }
  EXPECT_EQ(ShardForHash(~0ull), kShardCount - 1);
  EXPECT_EQ(ShardForHash(0ull), 0u);
}

// N threads intern overlapping ranges of keys concurrently, forcing both
// shard-index growth and duplicate insert races. Afterwards: exact dedup
// (size == distinct keys) and agreement (every thread got the same packed
// id for the same key).
TEST(ShardedIndexTest, ConcurrentGrowthDedupsExactly) {
  constexpr std::uint64_t kKeys = 8192;
  constexpr int kThreads = 4;
  ShardedIndex index;
  // Per-shard record storage guarded by the shard mutex via the callbacks.
  std::array<std::vector<std::uint64_t>, kShardCount> records;

  std::vector<std::vector<std::int32_t>> ids(
      kThreads, std::vector<std::int32_t>(kKeys, -1));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the key space at a different stride so insert
      // order differs per thread and collisions interleave.
      for (std::uint64_t n = 0; n < kKeys; ++n) {
        const std::uint64_t key = (n * (2 * static_cast<std::uint64_t>(t) + 1)) % kKeys;
        const std::uint64_t hash = Mix64(key + 1);
        const std::size_t shard = ShardForHash(hash);
        auto [packed, inserted] = index.FindOrInsert(
            hash, [&](std::int32_t local) { return records[shard][static_cast<std::size_t>(local)] == key; },
            [&] {
              records[shard].push_back(key);
              return records[shard].size() - 1;
            },
            [&](std::int32_t local) {
              return Mix64(records[shard][static_cast<std::size_t>(local)] + 1);
            });
        ids[static_cast<std::size_t>(t)][key] = packed;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  EXPECT_EQ(index.size(), kKeys);
  EXPECT_LE(index.max_load(), kKeys);
  EXPECT_GT(index.bytes(), 0u);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::int32_t expected = ids[0][key];
    ASSERT_GE(expected, 0);
    EXPECT_EQ(records[ShardOfId(expected)][LocalOfId(expected)], key);
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(ids[static_cast<std::size_t>(t)][key], expected)
          << "thread " << t << " key " << key;
    }
  }
}

}  // namespace
}  // namespace sep
