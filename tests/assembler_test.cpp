#include <gtest/gtest.h>

#include "src/machine/isa.h"
#include "src/sm11asm/assembler.h"

namespace sep {
namespace {

TEST(Assembler, EmptyProgram) {
  auto p = Assemble("; nothing but comments\n\n");
  ASSERT_TRUE(p.ok()) << p.error();
  EXPECT_TRUE(p->words.empty());
}

TEST(Assembler, MovImmediate) {
  auto p = Assemble("MOV #5, R0\n");
  ASSERT_TRUE(p.ok()) << p.error();
  ASSERT_EQ(p->words.size(), 2u);
  auto insn = Decode(p->words[0]);
  ASSERT_TRUE(insn.has_value());
  EXPECT_EQ(insn->opcode, Opcode::kMov);
  EXPECT_EQ(insn->src.mode, AddrMode::kImmediate);
  EXPECT_EQ(p->words[1], 5);
}

TEST(Assembler, LabelsAndBranches) {
  auto p = Assemble(R"(
START:  CLR R0
LOOP:   INC R0
        CMP #3, R0
        BNE LOOP
        HALT
)");
  ASSERT_TRUE(p.ok()) << p.error();
  EXPECT_EQ(p->SymbolOr("START", 99), 0);
  EXPECT_EQ(p->SymbolOr("LOOP", 99), 1);
}

TEST(Assembler, NumberBases) {
  auto p = Assemble(".WORD 10, 0x10, 0o10, 'A'\n");
  ASSERT_TRUE(p.ok()) << p.error();
  ASSERT_EQ(p->words.size(), 4u);
  EXPECT_EQ(p->words[0], 10);
  EXPECT_EQ(p->words[1], 16);
  EXPECT_EQ(p->words[2], 8);
  EXPECT_EQ(p->words[3], 'A');
}

TEST(Assembler, ExpressionsWithSymbols) {
  auto p = Assemble(R"(
        .EQU BASE, 0x100
        .WORD BASE + 2, BASE - 1
)");
  ASSERT_TRUE(p.ok()) << p.error();
  EXPECT_EQ(p->words[0], 0x102);
  EXPECT_EQ(p->words[1], 0x0FF);
}

TEST(Assembler, AsciiAndBlkw) {
  auto p = Assemble(R"(
MSG:    .ASCII "HI"
BUF:    .BLKW 3
END:    .WORD 0xFFFF
)");
  ASSERT_TRUE(p.ok()) << p.error();
  ASSERT_EQ(p->words.size(), 6u);
  EXPECT_EQ(p->words[0], 'H');
  EXPECT_EQ(p->words[1], 'I');
  EXPECT_EQ(p->SymbolOr("BUF", 99), 2);
  EXPECT_EQ(p->SymbolOr("END", 99), 5);
}

TEST(Assembler, OrgSetsLocation) {
  auto p = Assemble(R"(
        .ORG 0x10
        .WORD 1
        .ORG 0x20
HERE:   .WORD 2
)");
  ASSERT_TRUE(p.ok()) << p.error();
  EXPECT_EQ(p->base, 0x10);
  EXPECT_EQ(p->words.size(), 0x11u);  // 0x10..0x20 inclusive
  EXPECT_EQ(p->words[0], 1);
  EXPECT_EQ(p->words[0x10], 2);
  EXPECT_EQ(p->SymbolOr("HERE", 0), 0x20);
}

TEST(Assembler, BranchOutOfRangeRejected) {
  std::string source = "START: NOP\n";
  for (int i = 0; i < 200; ++i) {
    source += "       NOP\n";
  }
  source += "       BR START\n";
  auto p = Assemble(source);
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error().find("out of range"), std::string::npos);
}

TEST(Assembler, UndefinedSymbolRejected) {
  auto p = Assemble("BR NOWHERE\n");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error().find("undefined symbol"), std::string::npos);
}

TEST(Assembler, DuplicateLabelRejected) {
  auto p = Assemble("A: NOP\nA: NOP\n");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error().find("duplicate"), std::string::npos);
}

TEST(Assembler, ImmediateDestinationRejected) {
  auto p = Assemble("MOV R0, #5\n");
  ASSERT_FALSE(p.ok());
}

TEST(Assembler, PcRelativeSourceReadsMemory) {
  // MOV VAR, R0 assembles to indexed-on-PC; the extension word holds the
  // displacement from the post-fetch PC to VAR.
  auto p = Assemble(R"(
        MOV VAR, R0
        HALT
VAR:    .WORD 77
)");
  ASSERT_TRUE(p.ok()) << p.error();
  ASSERT_EQ(p->words.size(), 4u);
  auto insn = Decode(p->words[0]);
  ASSERT_TRUE(insn.has_value());
  EXPECT_EQ(insn->src.mode, AddrMode::kIndexed);
  EXPECT_EQ(insn->src.reg, kPc);
  // ext at address 1; PC after fetching it = 2; VAR = 3 -> displacement 1.
  EXPECT_EQ(p->words[1], 1);
}

TEST(Assembler, TrapCodes) {
  auto p = Assemble("TRAP 7\n");
  ASSERT_TRUE(p.ok()) << p.error();
  auto insn = Decode(p->words[0]);
  EXPECT_EQ(insn->trap_code, 7);
  EXPECT_FALSE(Assemble("TRAP 0x400\n").ok());  // > 10 bits
}

TEST(Assembler, IndexedOperands) {
  auto p = Assemble("MOV 2(R3), 4(R4)\n");
  ASSERT_TRUE(p.ok()) << p.error();
  ASSERT_EQ(p->words.size(), 3u);
  EXPECT_EQ(p->words[1], 2);
  EXPECT_EQ(p->words[2], 4);
}

TEST(Assembler, SpAndPcAliases) {
  auto p = Assemble("MOV SP, R0\nMOV PC, R1\n");
  ASSERT_TRUE(p.ok()) << p.error();
  auto i0 = Decode(p->words[0]);
  EXPECT_EQ(i0->src.reg, kSp);
  auto i1 = Decode(p->words[1]);
  EXPECT_EQ(i1->src.reg, kPc);
}

TEST(Assembler, CommentsInsideStrings) {
  auto p = Assemble(".ASCII \"A;B\"\n");
  ASSERT_TRUE(p.ok()) << p.error();
  ASSERT_EQ(p->words.size(), 3u);
  EXPECT_EQ(p->words[1], ';');
}

TEST(Assembler, ListingProduced) {
  auto p = Assemble("START: MOV #1, R0\n");
  ASSERT_TRUE(p.ok()) << p.error();
  ASSERT_FALSE(p->listing.empty());
  EXPECT_NE(p->listing[0].find("MOV"), std::string::npos);
}


TEST(Assembler, UnaryMinusInExpressions) {
  auto p = Assemble(".WORD -1, -0x10, 5 + -2\n");
  ASSERT_TRUE(p.ok()) << p.error();
  ASSERT_EQ(p->words.size(), 3u);
  EXPECT_EQ(p->words[0], 0xFFFF);
  EXPECT_EQ(p->words[1], static_cast<Word>(-16));
  EXPECT_EQ(p->words[2], 3);
}

TEST(Assembler, NegativeImmediates) {
  auto p = Assemble("MOV #-1, R0\n");
  ASSERT_TRUE(p.ok()) << p.error();
  ASSERT_EQ(p->words.size(), 2u);
  EXPECT_EQ(p->words[1], 0xFFFF);
}

}  // namespace
}  // namespace sep
