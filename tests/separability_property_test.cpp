// Property sweeps of the headline result: the good kernel passes Proof of
// Separability across seeds, regime counts, channel shapes and input rates;
// and machine-level determinism (same seed -> bit-identical evolution).
#include <gtest/gtest.h>

#include <tuple>

#include "src/core/kernel_system.h"
#include "src/core/separability.h"
#include "src/machine/devices.h"

namespace sep {
namespace {

constexpr char kWorker[] = R"(
START:  CLR R3
LOOP:   INC R3
        MOV R3, @0x40
        ADD R3, R2
        TRAP 0
        BR LOOP
)";

constexpr char kDriver[] = R"(
        .EQU DEV, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4
        MOV #DEV, R4
        MOV #0x40, (R4)
LOOP:   TRAP 6
        BR LOOP
HANDLER:
        MOV #DEV, R4
        MOV 1(R4), R2
        MOV R2, 3(R4)
        TRAP 5
)";

// (regimes, with_devices, seed)
using SweepParam = std::tuple<int, bool, std::uint64_t>;

class SeparabilitySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SeparabilitySweep, GoodKernelAlwaysPasses) {
  const auto [regimes, with_devices, seed] = GetParam();

  SystemBuilder builder;
  std::vector<int> slots;
  if (with_devices) {
    for (int r = 0; r < regimes; ++r) {
      slots.push_back(builder.AddDevice(
          std::make_unique<SerialLine>("slu" + std::to_string(r), 16 + r * 2, 4, 2)));
    }
  }
  for (int r = 0; r < regimes; ++r) {
    std::vector<int> owned = with_devices ? std::vector<int>{slots[static_cast<std::size_t>(r)]}
                                          : std::vector<int>{};
    ASSERT_TRUE(builder
                    .AddRegime("r" + std::to_string(r), 256, with_devices ? kDriver : kWorker,
                               owned)
                    .ok());
  }
  // A ring of cut channels when more than one regime.
  if (regimes > 1) {
    for (int r = 0; r < regimes; ++r) {
      builder.AddChannel("ring" + std::to_string(r), r, (r + 1) % regimes, 4);
    }
    builder.CutChannels(true);
  }
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  CheckerOptions options;
  options.seed = seed;
  options.trace_steps = 250;
  options.sample_every = 7;
  options.perturb_variants = 2;
  options.input_rate_percent = with_devices ? 15 : 0;
  SeparabilityReport report = CheckSeparability(**sys, options);
  EXPECT_TRUE(report.Passed())
      << report.Summary() << "\nfirst: "
      << (report.violations.empty() ? "" : report.violations[0].description);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, SeparabilitySweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4), ::testing::Bool(),
                       ::testing::Values(1u, 99u, 2026u)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "r" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_dev" : "_plain") + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// Leak detection is seed-robust too (the dual sweep).
class DetectionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectionSweep, RegisterLeakAlwaysDetected) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("red", 256, kWorker).ok());
  ASSERT_TRUE(builder.AddRegime("probe", 256, R"(
START:  MOV R0, @0x50
        MOV R3, @0x53
        TRAP 0
        BR START
)").ok());
  KernelFaults faults;
  faults.skip_register_restore = true;
  builder.WithFaults(faults);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  CheckerOptions options;
  options.seed = GetParam();
  options.trace_steps = 400;
  options.sample_every = 7;
  EXPECT_FALSE(CheckSeparability(**sys, options).Passed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectionSweep,
                         ::testing::Values(1u, 7u, 42u, 1001u, 77777u));

TEST(MachineDeterminism, IdenticalRunsBitIdentical) {
  // Two systems built identically and stepped identically (with identical
  // injections) hash identically at every sampled point.
  auto build = [] {
    SystemBuilder builder;
    int slu = builder.AddDevice(std::make_unique<SerialLine>("slu", 16, 4, 2));
    (void)builder.AddRegime("drv", 256, kDriver, {slu});
    (void)builder.AddRegime("work", 256, kWorker);
    auto sys = builder.Build();
    EXPECT_TRUE(sys.ok());
    return std::move(sys.value());
  };
  auto a = build();
  auto b = build();
  Rng rng(5);
  for (int step = 0; step < 500; ++step) {
    if (rng.NextChance(1, 5)) {
      const Word w = static_cast<Word>(rng.Next());
      a->machine().device(0).InjectInput(w);
      b->machine().device(0).InjectInput(w);
    }
    a->machine().Step();
    b->machine().Step();
    if (step % 50 == 0) {
      ASSERT_EQ(a->machine().StateHash(), b->machine().StateHash()) << "step " << step;
    }
  }
  EXPECT_EQ(a->machine().SnapshotFull(), b->machine().SnapshotFull());
}

TEST(MachineDeterminism, CloneForksIdenticalFutures) {
  SystemBuilder builder;
  (void)builder.AddRegime("a", 256, kWorker);
  (void)builder.AddRegime("b", 256, kWorker);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok());
  (*sys)->Run(123);

  auto clone = (*sys)->Clone();
  auto* cloned = static_cast<KernelizedSystem*>(clone.get());
  for (int i = 0; i < 500; ++i) {
    (*sys)->machine().Step();
    cloned->machine().Step();
  }
  EXPECT_EQ((*sys)->machine().SnapshotFull(), cloned->machine().SnapshotFull());
}

TEST(MachineDeterminism, CheckerDoesNotDisturbTheSystem) {
  SystemBuilder builder;
  (void)builder.AddRegime("a", 256, kWorker);
  (void)builder.AddRegime("b", 256, kWorker);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok());
  const std::uint64_t before = (*sys)->machine().StateHash();
  CheckerOptions options;
  options.trace_steps = 200;
  (void)CheckSeparability(**sys, options);
  EXPECT_EQ((*sys)->machine().StateHash(), before);
}

}  // namespace
}  // namespace sep
