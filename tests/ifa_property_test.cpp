// Property test of the central soundness claim for IFA: any randomly
// generated SIMPL program that Denning certification accepts must be
// semantically leak-free (the two-run probe finds no flow from RED inputs
// to BLACK outputs). The converse (completeness) is FALSE — the SWAP
// catalogue proves it — so this test also tallies observed false positives
// to confirm the generator exercises both sides.
#include <gtest/gtest.h>

#include <string>

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/ifa/analyzer.h"
#include "src/ifa/parser.h"
#include "src/ifa/semantic.h"

namespace sep {
namespace {

// Generates a random straight-line/branching SIMPL program over a fixed
// variable universe: r0..r2 : RED, b0..b2 : BLACK, l0..l2 : LOW.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    body_.clear();
    counter_decls_.clear();
    const int statements = static_cast<int>(rng_.NextInRange(3, 8));
    for (int i = 0; i < statements; ++i) {
      body_ += Statement(2);
    }
    return "var r0 : RED;\nvar r1 : RED;\nvar r2 : RED;\n"
           "var b0 : BLACK;\nvar b1 : BLACK;\nvar b2 : BLACK;\n"
           "var l0 : LOW;\nvar l1 : LOW;\nvar l2 : LOW;\n" +
           counter_decls_ + body_;
  }

 private:
  // Variable groups by colour; loop counters are reserved names the body
  // generator never touches, so loops always terminate.
  enum class Group : int { kRed = 0, kBlack = 1, kLow = 2, kAny = 3 };

  std::string Var(Group group) {
    static const char* kRed[] = {"r0", "r1", "r2"};
    static const char* kBlack[] = {"b0", "b1", "b2"};
    static const char* kLow[] = {"l0", "l1", "l2"};
    switch (group) {
      case Group::kRed:
        // RED expressions may also read LOW (LOW flows into RED).
        return rng_.NextChance(1, 3) ? kLow[rng_.NextBelow(3)] : kRed[rng_.NextBelow(3)];
      case Group::kBlack:
        return rng_.NextChance(1, 3) ? kLow[rng_.NextBelow(3)] : kBlack[rng_.NextBelow(3)];
      case Group::kLow:
        return kLow[rng_.NextBelow(3)];
      case Group::kAny: {
        static const char* kAll[] = {"r0", "r1", "r2", "b0", "b1", "b2", "l0", "l1", "l2"};
        return kAll[rng_.NextBelow(9)];
      }
    }
    return "l0";
  }

  std::string Expr(Group group, int depth) {
    if (depth <= 0 || rng_.NextChance(1, 2)) {
      if (rng_.NextChance(1, 3)) {
        return std::to_string(rng_.NextBelow(100));
      }
      return Var(group);
    }
    static const char* kOps[] = {"+", "-", "*", "%"};
    const char* op = kOps[rng_.NextBelow(4)];
    std::string rhs = Expr(group, depth - 1);
    if (op[0] == '%') {
      rhs = std::to_string(1 + rng_.NextBelow(50));  // modulo by nonzero literal
    }
    return "(" + Expr(group, depth - 1) + " " + op + " " + rhs + ")";
  }

  std::string Condition(Group group) {
    static const char* kCmps[] = {"<", ">", "==", "!=", "<=", ">="};
    return Expr(group, 1) + " " + kCmps[rng_.NextBelow(6)] + " " + Expr(group, 1);
  }

  // Most statements stay colour-coherent (certifiable); a minority mix
  // colours freely (usually rejected) so both analyzer outcomes occur.
  std::string Statement(int depth) {
    const bool coherent = !rng_.NextChance(1, 4);
    const Group group = static_cast<Group>(rng_.NextBelow(3));
    const Group expr_group = coherent ? group : Group::kAny;
    const std::uint64_t kind = rng_.NextBelow(depth > 0 ? 4 : 2);
    switch (kind) {
      case 0:
      case 1: {
        static const char* kTargets[3][3] = {{"r0", "r1", "r2"},
                                             {"b0", "b1", "b2"},
                                             {"l0", "l1", "l2"}};
        std::string target = kTargets[static_cast<int>(group)][rng_.NextBelow(3)];
        return target + " := " + Expr(expr_group, 2) + ";\n";
      }
      case 2: {
        std::string out =
            "if " + Condition(expr_group) + " {\n" + Statement(depth - 1) + "}";
        if (rng_.NextChance(1, 2)) {
          out += " else {\n" + Statement(depth - 1) + "}";
        }
        return out + "\n";
      }
      default: {
        // Bounded loop on a fresh reserved counter: the body cannot touch
        // it, so termination is structural. Declarations are only legal at
        // the top level, so they are accumulated and emitted up front.
        const std::string counter = "lc" + std::to_string(next_counter_++);
        counter_decls_ += "var " + counter + " : LOW;\n";
        return counter + " := 0;\nwhile " + counter + " < " +
               std::to_string(1 + rng_.NextBelow(5)) + " {\n" + Statement(depth - 1) + counter +
               " := " + counter + " + 1;\n}\n";
      }
    }
  }

  Rng rng_;
  int next_counter_ = 0;
  std::string body_;
  std::string counter_decls_;
};

class IfaSoundnessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IfaSoundnessSweep, CertifiedProgramsNeverLeak) {
  ProgramGenerator generator(GetParam());
  int certified = 0;
  int rejected_but_secure = 0;
  for (int i = 0; i < 60; ++i) {
    const std::string source = generator.Generate();
    Result<std::unique_ptr<Program>> program = ParseSimpl(source);
    ASSERT_TRUE(program.ok()) << program.error() << "\n" << source;

    const bool certified_now = AnalyzeFlows(**program).Certified();
    const bool leaks = SemanticallyLeaks(**program, {"r0", "r1", "r2"}, {"b0", "b1", "b2"},
                                         {GetParam() + static_cast<std::uint64_t>(i), 60, 500});
    if (certified_now) {
      ++certified;
      // SOUNDNESS: certification implies no RED -> BLACK leak.
      EXPECT_FALSE(leaks) << "IFA certified a leaking program:\n" << source;
    } else if (!leaks) {
      ++rejected_but_secure;  // incompleteness in the wild
    }
  }
  // The generator must produce some certified programs, or the soundness
  // sweep is vacuous.
  EXPECT_GT(certified, 0);
  // Incompleteness shows up naturally in random programs too.
  EXPECT_GT(rejected_but_secure, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IfaSoundnessSweep,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u));

// The dual property on hand-made leaking programs: the semantic probe never
// misses a direct copy, whatever the surrounding noise.
class LeakDetectSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeakDetectSweep, DirectCopyAlwaysCaught) {
  ProgramGenerator generator(GetParam());
  for (int i = 0; i < 20; ++i) {
    std::string source = generator.Generate();
    // Plant the leak through fresh variables the generator never touches,
    // so the surrounding noise cannot mask it.
    source += "var rx : RED;\nvar bx : BLACK;\nbx := rx;\n";
    Result<std::unique_ptr<Program>> program = ParseSimpl(source);
    ASSERT_TRUE(program.ok());
    EXPECT_FALSE(AnalyzeFlows(**program).Certified());
    EXPECT_TRUE(SemanticallyLeaks(**program, {"rx"}, {"bx"},
                                  {GetParam() + static_cast<std::uint64_t>(i), 100, 500}))
        << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeakDetectSweep, ::testing::Values(100u, 200u, 300u));

}  // namespace
}  // namespace sep
