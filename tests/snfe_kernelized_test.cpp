// The SNFE deployed the way the paper actually proposes: red, censor and
// black as REGIMES of the separation kernel on one machine, the crypto as a
// trusted hardware device owned by red, and the kernel's channels as the
// only lines. This is the configuration the SUE existed to support.
#include <gtest/gtest.h>

#include "src/core/kernel_system.h"
#include "src/core/separability.h"
#include "src/machine/devices.h"
#include "src/sepcheck/guest_corpus.h"

namespace sep {
namespace {

// The guest programs live in src/sepcheck/guest_corpus.h so the static
// separability analyzer lints exactly what these tests execute.
using sepcheck::kSnfeBlack;
using sepcheck::kSnfeCensor;
using sepcheck::kSnfeRed;

constexpr std::uint64_t kCryptoKey = 0xFEED;

// A dishonest red that tries to push an out-of-range destination (a data
// word smuggled into the header field).
constexpr char kEvilRedRegime[] = R"(
START:  MOV #9999, R1         ; "dest" is really data
        CLR R0
        JSR SENDW
        MOV #1, R1
        CLR R0
        JSR SENDW
        CLR R1
        CLR R0
        JSR SENDW
        TRAP 7
SENDW:  MOV R0, R5
SRETRY: MOV R5, R0
        TRAP 1
        TST R0
        BNE SDONE
        TRAP 0
        BR SRETRY
SDONE:  RTS
)";

struct KernelizedSnfe {
  std::unique_ptr<KernelizedSystem> system;
  int crypto_slot = -1;

  explicit KernelizedSnfe(const char* red_program, bool cut = false) {
    SystemBuilder builder;
    crypto_slot =
        builder.AddDevice(std::make_unique<CryptoUnit>("crypto", 16, 4, kCryptoKey, 2));
    EXPECT_TRUE(builder.AddRegime("red", 512, red_program, {crypto_slot}).ok());
    EXPECT_TRUE(builder.AddRegime("censor", 512, kSnfeCensor).ok());
    EXPECT_TRUE(builder.AddRegime("black", 512, kSnfeBlack).ok());
    builder.AddChannel("red->censor", 0, 1, 16);   // channel 0: the bypass
    builder.AddChannel("red->black", 0, 2, 16);    // channel 1: ciphertext
    builder.AddChannel("censor->black", 1, 2, 16); // channel 2: vetted headers
    builder.CutChannels(cut);
    auto built = builder.Build();
    EXPECT_TRUE(built.ok()) << built.error();
    system = std::move(built.value());
  }
};

TEST(KernelizedSnfe, PacketsFlowEndToEnd) {
  KernelizedSnfe rig(kSnfeRed);
  rig.system->Run(20000);
  EXPECT_TRUE(rig.system->kernel().RegimeHalted(0));  // red finished

  const auto& black = rig.system->kernel().config().regimes[2];
  for (Word i = 1; i <= 6; ++i) {
    const PhysAddr base = black.mem_base + 0x100 + (i - 1) * 4;
    EXPECT_EQ(rig.system->machine().memory().Read(base + 0), i & 7) << "dest " << i;
    EXPECT_EQ(rig.system->machine().memory().Read(base + 1), 1) << "len " << i;
    EXPECT_EQ(rig.system->machine().memory().Read(base + 2), 0) << "flags " << i;
    // Payload arrives encrypted; the shared-key peer can decrypt it.
    const Word cipher = rig.system->machine().memory().Read(base + 3);
    const Word clear = static_cast<Word>(0x100 + i);
    EXPECT_NE(cipher, clear) << "cleartext on channel! " << i;
    EXPECT_EQ(static_cast<Word>(cipher ^ CryptoUnit::Keystream(kCryptoKey, i - 1)), clear)
        << "packet " << i;
  }
}

TEST(KernelizedSnfe, CensorDropsSmuggledHeader) {
  KernelizedSnfe rig(kEvilRedRegime);
  rig.system->Run(20000);
  const auto& black = rig.system->kernel().config().regimes[2];
  const auto& censor = rig.system->kernel().config().regimes[1];
  // Nothing reached black...
  EXPECT_EQ(rig.system->machine().memory().Read(black.mem_base + 0x100), 0);
  // ...and the censor counted exactly one dropped header.
  Result<AssembledProgram> program = Assemble(kSnfeCensor);
  ASSERT_TRUE(program.ok());
  const Word drops_addr = program->SymbolOr("DROPS", 0);
  ASSERT_NE(drops_addr, 0);
  EXPECT_EQ(rig.system->machine().memory().Read(censor.mem_base + drops_addr), 1);
}

TEST(KernelizedSnfe, CutVariantSatisfiesSeparability) {
  // The verification story for the deployed SNFE: cut the three channels
  // and check total isolation of red, censor and black.
  KernelizedSnfe rig(kSnfeRed, /*cut=*/true);
  CheckerOptions options;
  options.trace_steps = 500;
  options.sample_every = 7;
  SeparabilityReport report = CheckSeparability(*rig.system, options);
  EXPECT_TRUE(report.Passed()) << report.Summary() << "\nfirst: "
                               << (report.violations.empty() ? ""
                                                             : report.violations[0].description);
}

TEST(KernelizedSnfe, ChannelTopologyIsExactlyThePaper) {
  KernelizedSnfe rig(kSnfeRed);
  const KernelConfig& config = rig.system->kernel().config();
  ASSERT_EQ(config.channels.size(), 3u);
  // No channel black->red or black->censor or censor->red exists: the
  // static configuration IS the security topology.
  for (const ChannelConfig& channel : config.channels) {
    EXPECT_NE(channel.sender, 2) << "black must have no outbound line here";
    EXPECT_FALSE(channel.sender == 1 && channel.receiver == 0);
  }
  // The crypto is red's exclusive device.
  EXPECT_EQ(rig.system->kernel().DeviceOwner(rig.crypto_slot), 0);
}

}  // namespace
}  // namespace sep
