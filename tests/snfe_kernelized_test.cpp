// The SNFE deployed the way the paper actually proposes: red, censor and
// black as REGIMES of the separation kernel on one machine, the crypto as a
// trusted hardware device owned by red, and the kernel's channels as the
// only lines. This is the configuration the SUE existed to support.
#include <gtest/gtest.h>

#include "src/core/kernel_system.h"
#include "src/core/separability.h"
#include "src/machine/devices.h"

namespace sep {
namespace {

constexpr std::uint64_t kCryptoKey = 0xFEED;

// Red regime: for each of 6 packets, sends a 3-word header (dest, len,
// flags) to the censor on channel 0 and one crypto-encrypted payload word
// to black on channel 1. The crypto unit is its trusted device.
constexpr char kRedRegime[] = R"(
        .EQU CRYPTO, 0xE000   ; CCSR +0, DATA_IN +1, DATA_OUT +2
        .EQU N, 6
START:  CLR R3
LOOP:   INC R3
        ; header: dest = i & 7
        MOV R3, R1
        BIC #0xFFF8, R1
        CLR R0
        JSR SENDW
        ; header: len = 1
        MOV #1, R1
        CLR R0
        JSR SENDW
        ; header: flags = 0
        CLR R1
        CLR R0
        JSR SENDW
        ; payload 0x100+i through the crypto device
        MOV #0x100, R2
        ADD R3, R2
        MOV #CRYPTO, R4
        MOV R2, 1(R4)
CWAIT:  MOV (R4), R5
        BIT #0x80, R5
        BEQ CWAIT
        MOV 2(R4), R1         ; ciphertext
        MOV #1, R0
        JSR SENDW
        CMP #N, R3
        BNE LOOP
        TRAP 7
; send R1 on channel R0, retrying over SWAP until accepted
SENDW:  MOV R0, R5
SRETRY: MOV R5, R0
        TRAP 1
        TST R0
        BNE SDONE
        TRAP 0
        BR SRETRY
SDONE:  RTS
)";

// A dishonest red that tries to push an out-of-range destination (a data
// word smuggled into the header field).
constexpr char kEvilRedRegime[] = R"(
START:  MOV #9999, R1         ; "dest" is really data
        CLR R0
        JSR SENDW
        MOV #1, R1
        CLR R0
        JSR SENDW
        CLR R1
        CLR R0
        JSR SENDW
        TRAP 7
SENDW:  MOV R0, R5
SRETRY: MOV R5, R0
        TRAP 1
        TST R0
        BNE SDONE
        TRAP 0
        BR SRETRY
SDONE:  RTS
)";

// Censor regime: procedural checks on 3-word headers (dest < 64,
// len <= 128, flags <= 1); forwards valid headers on channel 2, counts
// drops at 0x90.
constexpr char kCensorRegime[] = R"(
START:  JSR RECVW
        MOV R1, R2            ; dest
        JSR RECVW
        MOV R1, R3            ; len
        JSR RECVW
        MOV R1, R4            ; flags
        CMP #63, R2
        BCS DROP              ; dest > 63
        CMP #128, R3
        BCS DROP              ; len > 128
        CMP #1, R4
        BCS DROP              ; flags > 1
        MOV R2, R1
        JSR SENDW
        MOV R3, R1
        JSR SENDW
        MOV R4, R1
        JSR SENDW
        BR START
DROP:   MOV DROPS, R1
        INC R1
        MOV R1, @DROPS
        BR START
RECVW:  CLR R0
        TRAP 2
        TST R0
        BNE RDONE
        TRAP 0
        BR RECVW
RDONE:  RTS
SENDW:  MOV #2, R0
        TRAP 1
        TST R0
        BNE SDONE
        TRAP 0
        BR SENDW
SDONE:  RTS
DROPS:  .WORD 0
)";

// Black regime: pairs censored headers (channel 2) with ciphertext words
// (channel 1) into 4-word packets at 0x100.
constexpr char kBlackRegime[] = R"(
START:  MOV #0x100, R5
LOOP:   MOV #2, R0
        JSR RECVC
        MOV R1, (R5)
        INC R5
        MOV #2, R0
        JSR RECVC
        MOV R1, (R5)
        INC R5
        MOV #2, R0
        JSR RECVC
        MOV R1, (R5)
        INC R5
        MOV #1, R0
        JSR RECVC
        MOV R1, (R5)
        INC R5
        BR LOOP
RECVC:  MOV R0, R4
RLOOP:  MOV R4, R0
        TRAP 2
        TST R0
        BNE RDONE
        TRAP 0
        BR RLOOP
RDONE:  RTS
)";

struct KernelizedSnfe {
  std::unique_ptr<KernelizedSystem> system;
  int crypto_slot = -1;

  explicit KernelizedSnfe(const char* red_program, bool cut = false) {
    SystemBuilder builder;
    crypto_slot =
        builder.AddDevice(std::make_unique<CryptoUnit>("crypto", 16, 4, kCryptoKey, 2));
    EXPECT_TRUE(builder.AddRegime("red", 512, red_program, {crypto_slot}).ok());
    EXPECT_TRUE(builder.AddRegime("censor", 512, kCensorRegime).ok());
    EXPECT_TRUE(builder.AddRegime("black", 512, kBlackRegime).ok());
    builder.AddChannel("red->censor", 0, 1, 16);   // channel 0: the bypass
    builder.AddChannel("red->black", 0, 2, 16);    // channel 1: ciphertext
    builder.AddChannel("censor->black", 1, 2, 16); // channel 2: vetted headers
    builder.CutChannels(cut);
    auto built = builder.Build();
    EXPECT_TRUE(built.ok()) << built.error();
    system = std::move(built.value());
  }
};

TEST(KernelizedSnfe, PacketsFlowEndToEnd) {
  KernelizedSnfe rig(kRedRegime);
  rig.system->Run(20000);
  EXPECT_TRUE(rig.system->kernel().RegimeHalted(0));  // red finished

  const auto& black = rig.system->kernel().config().regimes[2];
  for (Word i = 1; i <= 6; ++i) {
    const PhysAddr base = black.mem_base + 0x100 + (i - 1) * 4;
    EXPECT_EQ(rig.system->machine().memory().Read(base + 0), i & 7) << "dest " << i;
    EXPECT_EQ(rig.system->machine().memory().Read(base + 1), 1) << "len " << i;
    EXPECT_EQ(rig.system->machine().memory().Read(base + 2), 0) << "flags " << i;
    // Payload arrives encrypted; the shared-key peer can decrypt it.
    const Word cipher = rig.system->machine().memory().Read(base + 3);
    const Word clear = static_cast<Word>(0x100 + i);
    EXPECT_NE(cipher, clear) << "cleartext on channel! " << i;
    EXPECT_EQ(static_cast<Word>(cipher ^ CryptoUnit::Keystream(kCryptoKey, i - 1)), clear)
        << "packet " << i;
  }
}

TEST(KernelizedSnfe, CensorDropsSmuggledHeader) {
  KernelizedSnfe rig(kEvilRedRegime);
  rig.system->Run(20000);
  const auto& black = rig.system->kernel().config().regimes[2];
  const auto& censor = rig.system->kernel().config().regimes[1];
  // Nothing reached black...
  EXPECT_EQ(rig.system->machine().memory().Read(black.mem_base + 0x100), 0);
  // ...and the censor counted exactly one dropped header.
  Result<AssembledProgram> program = Assemble(kCensorRegime);
  ASSERT_TRUE(program.ok());
  const Word drops_addr = program->SymbolOr("DROPS", 0);
  ASSERT_NE(drops_addr, 0);
  EXPECT_EQ(rig.system->machine().memory().Read(censor.mem_base + drops_addr), 1);
}

TEST(KernelizedSnfe, CutVariantSatisfiesSeparability) {
  // The verification story for the deployed SNFE: cut the three channels
  // and check total isolation of red, censor and black.
  KernelizedSnfe rig(kRedRegime, /*cut=*/true);
  CheckerOptions options;
  options.trace_steps = 500;
  options.sample_every = 7;
  SeparabilityReport report = CheckSeparability(*rig.system, options);
  EXPECT_TRUE(report.Passed()) << report.Summary() << "\nfirst: "
                               << (report.violations.empty() ? ""
                                                             : report.violations[0].description);
}

TEST(KernelizedSnfe, ChannelTopologyIsExactlyThePaper) {
  KernelizedSnfe rig(kRedRegime);
  const KernelConfig& config = rig.system->kernel().config();
  ASSERT_EQ(config.channels.size(), 3u);
  // No channel black->red or black->censor or censor->red exists: the
  // static configuration IS the security topology.
  for (const ChannelConfig& channel : config.channels) {
    EXPECT_NE(channel.sender, 2) << "black must have no outbound line here";
    EXPECT_FALSE(channel.sender == 1 && channel.receiver == 0);
  }
  // The crypto is red's exclusive device.
  EXPECT_EQ(rig.system->kernel().DeviceOwner(rig.crypto_slot), 0);
}

}  // namespace
}  // namespace sep
