// The zero-copy batched channel fabric: SENDV/RECVV scatter-gather calls,
// shared-memory doorbell rings, and per-regime backpressure accounting.
//
// The acceptance property is transport-independence: the SAME payload moved
// over the classic one-word-per-trap channel, the batched scatter-gather
// calls, and the shared-ring doorbell fabric must arrive byte-identical —
// and each transport's canonical per-colour trace (E17 sense) must be
// byte-identical whether the pair runs alone or shares the processor with a
// stranger regime. A faster path that perturbed either stream would be a
// new information channel, not an optimisation.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/core/kernel_system.h"
#include "src/distributed/reliable.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sep {
namespace {

// --- payload + program builders ----------------------------------------------

constexpr int kPayloadWords = 24;

std::vector<Word> Payload() {
  std::vector<Word> words;
  words.reserve(kPayloadWords);
  for (int i = 0; i < kPayloadWords; ++i) {
    words.push_back(static_cast<Word>(0xA001 + 0x10F * i));
  }
  return words;
}

std::string WordLines(const std::vector<Word>& words, std::size_t begin, std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end; ++i) {
    out += Format("        .WORD 0x%04X\n", words[i]);
  }
  return out;
}

// Classic transport: one SEND trap per word, one RECV trap per word.
std::string ClassicProducer() {
  return Format(R"(
        MOV #PAYLOAD, R3
        MOV #%d, R5
SLOOP:  MOV (R3), R1
        CLR R0
        TRAP 1          ; SEND
        INC R3
        DEC R5
        BNE SLOOP
        TRAP 7
PAYLOAD:
%s)",
                kPayloadWords, WordLines(Payload(), 0, kPayloadWords).c_str());
}

constexpr char kClassicConsumer[] = R"(
        MOV #0x100, R4
RLOOP:  CLR R0
        TRAP 2          ; RECV
        TST R0
        BEQ DONE
        MOV R1, (R4)
        INC R4
        BR RLOOP
DONE:   TRAP 7
)";

// Batched transport: the producer describes the payload as TWO scatter
// extents and moves all of it with a single SENDV; the consumer gathers the
// whole batch with one RECVV into 0x100.
std::string BatchedProducer() {
  const std::vector<Word> payload = Payload();
  return Format(R"(
        CLR R0
        MOV #TBL, R1
        MOV #2, R2
        TRAP 9          ; SENDV (two extents, one trap)
        TRAP 7
TBL:    .WORD PAY0
        .WORD 10
        .WORD PAY1
        .WORD %d
PAY0:
%sPAY1:
%s)",
                kPayloadWords - 10, WordLines(payload, 0, 10).c_str(),
                WordLines(payload, 10, kPayloadWords).c_str());
}

std::string BatchedConsumer() {
  return Format(R"(
        CLR R0
        MOV #TBL, R1
        MOV #1, R2
        TRAP 10         ; RECVV
        TRAP 7
TBL:    .WORD 0x100
        .WORD %d
)",
                kPayloadWords);
}

// Shared-ring transport: the producer writes the payload straight into its
// read-write data window (vaddr 0x8000) and publishes it with one RINGPUT;
// the consumer reads the occupancy via RINGSTAT, copies the words out of its
// read-only window, and releases them with one RINGGET. Zero kernel copies.
std::string RingProducer() {
  return Format(R"(
; sepcheck: shared-ring 0 producer-only tail advance + read-only consumer window keep the object one-directional
        MOV #PAYLOAD, R3
        MOV #0x8000, R4
        MOV #%d, R5
WLOOP:  MOV (R3), R2
        MOV R2, (R4)
        INC R3
        INC R4
        DEC R5
        BNE WLOOP
        CLR R0
        MOV #%d, R1
        TRAP 11         ; RINGPUT: publish the whole batch
        TRAP 7
PAYLOAD:
%s)",
                kPayloadWords, kPayloadWords, WordLines(Payload(), 0, kPayloadWords).c_str());
}

constexpr char kRingConsumer[] = R"(
        CLR R0
        TRAP 13         ; RINGSTAT -> R0 = occupancy
        TST R0
        BEQ DONE        ; nothing published (never taken: producer runs first)
        MOV R0, R5
        MOV R0, R1      ; RINGGET count
        MOV #0x8000, R3
        MOV #0x100, R4
RLOOP:  MOV (R3), R2
        MOV R2, (R4)
        INC R3
        INC R4
        DEC R5
        BNE RLOOP
        CLR R0
        TRAP 12         ; RINGGET: release everything we copied
DONE:   TRAP 7
)";

// A stranger regime for the E17 runs: bounded SWAP loop, then a clean halt.
constexpr char kStranger[] = R"(
        MOV #50, R5
SLOOP:  TRAP 0
        DEC R5
        BNE SLOOP
        TRAP 7
)";

enum class Transport { kClassic, kBatched, kSharedRing };

struct FabricRun {
  std::vector<Word> delivered;            // consumer partition 0x100..
  std::string producer_trace;             // canonical colour-0 trace
  std::string consumer_trace;             // canonical colour-1 trace
  std::uint64_t faults = 0;
  bool producer_halted = false;
  bool consumer_halted = false;
};

// Builds producer(regime 0) -> consumer(regime 1) over `transport`, plus an
// optional stranger regime, runs to completion and reads back the delivered
// stream. `record` wraps the run in the trace recorder and extracts the
// canonical per-colour traces.
FabricRun RunFabricPair(Transport transport, bool with_stranger, bool record) {
  SystemBuilder builder;
  std::string producer_src;
  std::string consumer_src;
  switch (transport) {
    case Transport::kClassic:
      producer_src = ClassicProducer();
      consumer_src = kClassicConsumer;
      break;
    case Transport::kBatched:
      producer_src = BatchedProducer();
      consumer_src = BatchedConsumer();
      break;
    case Transport::kSharedRing:
      producer_src = RingProducer();
      consumer_src = kRingConsumer;
      break;
  }
  EXPECT_TRUE(builder.AddRegime("producer", 512, producer_src).ok());
  EXPECT_TRUE(builder.AddRegime("consumer", 512, consumer_src).ok());
  if (with_stranger) {
    EXPECT_TRUE(builder.AddRegime("stranger", 256, kStranger).ok());
  }
  if (transport == Transport::kSharedRing) {
    builder.AddSharedRing("fabric", /*producer=*/0, /*consumer=*/1, /*capacity=*/32);
  } else {
    builder.AddChannel("fabric", /*sender=*/0, /*receiver=*/1, /*capacity=*/32);
  }
  Result<std::unique_ptr<KernelizedSystem>> system = builder.Build();
  EXPECT_TRUE(system.ok()) << system.error();

  if (record) {
    obs::Recorder().Start(std::size_t{1} << 16);
  }
  (*system)->Run(20000);
  if (record) {
    obs::Recorder().Stop();
  }

  FabricRun run;
  if (record) {
    const std::vector<obs::TraceEvent> events = obs::Recorder().Drain();
    run.producer_trace = obs::CanonicalColourTrace(events, 0);
    run.consumer_trace = obs::CanonicalColourTrace(events, 1);
  }
  const KernelConfig& config = (*system)->kernel().config();
  const PhysAddr consumer_base = config.regimes[1].mem_base;
  for (int i = 0; i < kPayloadWords; ++i) {
    run.delivered.push_back(
        (*system)->machine().memory().Read(consumer_base + 0x100 + static_cast<PhysAddr>(i)));
  }
  run.faults = (*system)->kernel().FaultCount();
  run.producer_halted = (*system)->kernel().RegimeHalted(0);
  run.consumer_halted = (*system)->kernel().RegimeHalted(1);
  return run;
}

// --- three-way transport equivalence -----------------------------------------

TEST(ChannelFabric, ThreeTransportsDeliverByteIdenticalStreams) {
  const std::vector<Word> payload = Payload();
  const FabricRun classic = RunFabricPair(Transport::kClassic, false, false);
  const FabricRun batched = RunFabricPair(Transport::kBatched, false, false);
  const FabricRun ring = RunFabricPair(Transport::kSharedRing, false, false);

  for (const FabricRun* run : {&classic, &batched, &ring}) {
    EXPECT_EQ(run->faults, 0u);
    EXPECT_TRUE(run->producer_halted);
    EXPECT_TRUE(run->consumer_halted);
  }
  EXPECT_EQ(classic.delivered, payload);
  EXPECT_EQ(batched.delivered, classic.delivered);
  EXPECT_EQ(ring.delivered, classic.delivered);
}

// --- E17 for every transport: strangers must be invisible --------------------

class ChannelFabricTrace : public ::testing::TestWithParam<Transport> {};

TEST_P(ChannelFabricTrace, CanonicalTracesUnchangedByStranger) {
  const FabricRun alone = RunFabricPair(GetParam(), /*with_stranger=*/false, /*record=*/true);
  const FabricRun shared = RunFabricPair(GetParam(), /*with_stranger=*/true, /*record=*/true);

  // Both deployments finished the transfer...
  EXPECT_EQ(alone.delivered, Payload());
  EXPECT_EQ(shared.delivered, alone.delivered);
  // ...and produced non-vacuous traces.
  EXPECT_NE(alone.producer_trace.find("kernel-call"), std::string::npos);
  EXPECT_NE(alone.consumer_trace.find("kernel-call"), std::string::npos);

  // The security property: byte equality per colour across deployments.
  EXPECT_EQ(shared.producer_trace, alone.producer_trace)
      << "shared:\n" << shared.producer_trace << "\nalone:\n" << alone.producer_trace;
  EXPECT_EQ(shared.consumer_trace, alone.consumer_trace)
      << "shared:\n" << shared.consumer_trace << "\nalone:\n" << alone.consumer_trace;
}

INSTANTIATE_TEST_SUITE_P(AllTransports, ChannelFabricTrace,
                         ::testing::Values(Transport::kClassic, Transport::kBatched,
                                           Transport::kSharedRing),
                         [](const ::testing::TestParamInfo<Transport>& info) {
                           switch (info.param) {
                             case Transport::kClassic: return std::string("Classic");
                             case Transport::kBatched: return std::string("Batched");
                             case Transport::kSharedRing: return std::string("SharedRing");
                           }
                           return std::string("Unknown");
                         });

// --- doorbell semantics -------------------------------------------------------

// An AWAITing consumer is woken by the producer's empty->non-empty RINGPUT:
// the doorbell line arrives in R0 exactly like a device interrupt mask, and
// draining the ring lowers it.
TEST(ChannelFabric, DoorbellWakesAwaitingConsumer) {
  SystemBuilder builder;
  // Consumer is regime 0 so it provably AWAITs BEFORE the producer runs.
  ASSERT_TRUE(builder.AddRegime("consumer", 512, R"(
        TRAP 6          ; AWAIT with nothing pending: blocks
        MOV R0, @0x100  ; the doorbell mask AWAIT handed back
        MOV @0x8000, R2
        MOV R2, @0x101  ; the published word, straight from the window
        CLR R0
        MOV #1, R1
        TRAP 12         ; RINGGET: drain-to-empty lowers the doorbell
        TRAP 7
)").ok());
  ASSERT_TRUE(builder.AddRegime("producer", 512, R"(
        MOV #0x5A5A, R2
        MOV R2, @0x8000
        CLR R0
        MOV #1, R1
        TRAP 11         ; RINGPUT: empty->non-empty raises the doorbell
        TRAP 7
)").ok());
  builder.AddSharedRing("bell", /*producer=*/1, /*consumer=*/0, /*capacity=*/8);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(4000);

  const KernelConfig& config = (*sys)->kernel().config();
  EXPECT_EQ((*sys)->kernel().FaultCount(), 0u);
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(0));
  EXPECT_TRUE((*sys)->kernel().RegimeHalted(1));
  // The consumer has no devices, so its doorbell is line 0: AWAIT returned 1.
  EXPECT_EQ((*sys)->machine().memory().Read(config.regimes[0].mem_base + 0x100), 1u);
  EXPECT_EQ((*sys)->machine().memory().Read(config.regimes[0].mem_base + 0x101), 0x5A5Au);
  // Drain-to-empty cleared the pending bit and emptied the ring.
  EXPECT_EQ((*sys)->kernel().RegimePendingMask(0), 0u);
  EXPECT_EQ((*sys)->kernel().SharedRingOccupancy(0), 0u);
}

// --- backpressure accounting --------------------------------------------------

// A full shared ring stalls RINGPUT (R0 = 0), bumps kernel.channel_stall,
// emits the channel-stall trace event tagged with the stalled producer — and
// the watermark records the high-water occupancy for STAT-style polling.
TEST(ChannelFabric, SharedRingBackpressureIsCountedAndTraced) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("producer", 512, R"(
        MOV #8, R5
        MOV #0x8000, R4
        MOV #0x11, R2
FILL:   MOV R2, (R4)
        INC R4
        INC R2
        DEC R5
        BNE FILL
        CLR R0
        MOV #8, R1
        TRAP 11         ; fills the ring exactly
        MOV R0, @0x100
        CLR R0
        MOV #4, R1
        TRAP 11         ; no room: backpressure stall, not a fault
        MOV R0, @0x101
        CLR R0
        TRAP 13         ; RINGSTAT
        MOV R2, @0x102  ; watermark
        MOV R0, @0x103  ; occupancy
        TRAP 7
)").ok());
  ASSERT_TRUE(builder.AddRegime("consumer", 256, "        TRAP 7\n").ok());
  builder.AddSharedRing("full", /*producer=*/0, /*consumer=*/1, /*capacity=*/8);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  const std::uint64_t stalls_before =
      obs::Metrics().GetCounter("kernel.channel_stall").value();
  obs::Recorder().Start(std::size_t{1} << 12);
  (*sys)->Run(4000);
  obs::Recorder().Stop();
  const std::vector<obs::TraceEvent> events = obs::Recorder().Drain();

  const KernelConfig& config = (*sys)->kernel().config();
  const PhysAddr base = config.regimes[0].mem_base;
  EXPECT_EQ((*sys)->kernel().FaultCount(), 0u);
  EXPECT_EQ((*sys)->machine().memory().Read(base + 0x100), 1u);  // fill accepted
  EXPECT_EQ((*sys)->machine().memory().Read(base + 0x101), 0u);  // overflow stalled
  EXPECT_EQ((*sys)->machine().memory().Read(base + 0x102), 8u);  // watermark = cap
  EXPECT_EQ((*sys)->machine().memory().Read(base + 0x103), 8u);  // occupancy = cap
  EXPECT_EQ((*sys)->kernel().SharedRingWatermark(0), 8u);

  EXPECT_EQ(obs::Metrics().GetCounter("kernel.channel_stall").value(), stalls_before + 1);
  int stall_events = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.code == obs::Code::kChannelStall) {
      ++stall_events;
      EXPECT_EQ(e.colour, 0);            // tagged with the stalled producer
      EXPECT_EQ(e.a0, 0x8000u);          // 0x8000 | ring 0
      EXPECT_EQ(e.a1, 4u);               // the rejected batch size
    }
  }
  EXPECT_EQ(stall_events, 1);
  // Stalls are profiling events, NOT colour-observable: occupancy depends on
  // the peer's drain rate, so the canonical view must exclude them.
  EXPECT_EQ(obs::CanonicalColourTrace(events, 0).find("channel-stall"), std::string::npos);
}

// Classic SEND on a full channel takes the same stall path: R0 = 0 and one
// counted stall per rejected word, never a fault.
TEST(ChannelFabric, ClassicSendStallIsCountedOnce) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("producer", 512, R"(
        MOV #5, R5
        MOV #0x21, R1
SLOOP:  CLR R0
        TRAP 1          ; SEND (5th hits a full capacity-4 ring)
        MOV R0, @0x100
        DEC R5
        BNE SLOOP
        TRAP 7
)").ok());
  ASSERT_TRUE(builder.AddRegime("consumer", 256, "        TRAP 7\n").ok());
  builder.AddChannel("tight", /*sender=*/0, /*receiver=*/1, /*capacity=*/4);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  const std::uint64_t stalls_before =
      obs::Metrics().GetCounter("kernel.channel_stall").value();
  obs::Recorder().Start(std::size_t{1} << 12);
  (*sys)->Run(2000);
  obs::Recorder().Stop();
  const std::vector<obs::TraceEvent> events = obs::Recorder().Drain();

  EXPECT_EQ((*sys)->kernel().FaultCount(), 0u);
  const KernelConfig& config = (*sys)->kernel().config();
  EXPECT_EQ((*sys)->machine().memory().Read(config.regimes[0].mem_base + 0x100), 0u);
  EXPECT_EQ(obs::Metrics().GetCounter("kernel.channel_stall").value(), stalls_before + 1);
  int stall_events = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.code == obs::Code::kChannelStall) {
      ++stall_events;
      EXPECT_EQ(e.a0, 0u);  // classic channel id, no ring tag
      EXPECT_EQ(e.a1, 1u);  // one word requested
    }
  }
  EXPECT_EQ(stall_events, 1);
}

// --- reliable tunnel under downstream backpressure ----------------------------

// Emits a deterministic word stream, one word per step.
class WordSource : public Process {
 public:
  explicit WordSource(int count) {
    words_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      words_.push_back(static_cast<Word>(0x3000 + 7 * i));
    }
  }
  std::string name() const override { return "word-source"; }
  void Step(NodeContext& ctx) override {
    if (next_ < words_.size() && ctx.Send(0, words_[next_])) {
      ++next_;
    }
  }
  bool Finished() const override { return next_ >= words_.size(); }
  const std::vector<Word>& words() const { return words_; }

 private:
  std::vector<Word> words_;
  std::size_t next_ = 0;
};

// Refuses to drain its in-port until `open_at`: 100% momentary backpressure
// on the egress's downstream hop, then a full drain.
class StutterSink : public Process {
 public:
  explicit StutterSink(Tick open_at) : open_at_(open_at) {}
  std::string name() const override { return "stutter-sink"; }
  void Step(NodeContext& ctx) override {
    if (ctx.now() < open_at_) {
      return;
    }
    while (std::optional<Word> w = ctx.Receive(0)) {
      got_.push_back(*w);
    }
  }
  const std::vector<Word>& got() const { return got_; }

 private:
  Tick open_at_;
  std::vector<Word> got_;
};

// Pins the egress staging bugfix: when the downstream link refuses a word,
// the retry must re-offer the SAME staged word without re-dequeuing it — so
// every word is pushed downstream exactly once and no counter is inflated.
TEST(ChannelFabric, ReliableEgressDeliversExactlyOnceUnderFullBackpressure) {
  constexpr int kCount = 40;
  constexpr Tick kOpenAt = 2000;
  // redundancy = 1: with no frame copies and a clean wire, any duplicate the
  // receiver sees could only come from the staging retry re-dequeuing — the
  // exact bug this test pins. (The default triplicate coding would mask it.)
  ReliableConfig config;
  config.redundancy = 1;
  Network net;
  const int src = net.AddNode(std::make_unique<WordSource>(kCount));
  const int ingress = net.AddNode(std::make_unique<ReliableIngress>("rel-ingress", config));
  const int egress = net.AddNode(std::make_unique<ReliableEgress>("rel-egress", config));
  const int dst = net.AddNode(std::make_unique<StutterSink>(kOpenAt));
  net.Connect(src, ingress, /*capacity=*/64, /*latency=*/1);      // plain feed
  net.Connect(ingress, egress, /*capacity=*/64, /*latency=*/2);   // data frames
  net.Connect(egress, ingress, /*capacity=*/64, /*latency=*/2);   // ACKs
  // The downstream hop is tiny on purpose: two words in flight and every
  // further Send fails until the sink opens.
  const int downstream = net.Connect(egress, dst, /*capacity=*/2, /*latency=*/1);

  // Phase 1: the sink refuses everything. The tunnel keeps accepting and
  // ACKing (acceptance is at parse time), but nothing reaches the sink.
  // (Stop short of the boundary: Run leaves now == steps, and the sink
  // opens the moment its quantum sees now >= kOpenAt.)
  net.Run(kOpenAt - 10);
  auto& sink = static_cast<StutterSink&>(net.process(dst));
  auto& rx = static_cast<ReliableEgress&>(net.process(egress));
  EXPECT_TRUE(sink.got().empty());
  EXPECT_GT(rx.receiver().stats().accepted, 2u) << "tunnel should accept despite the stall";

  // Phase 2: the sink opens; everything drains.
  net.Run(30000);
  const std::vector<Word>& sent = static_cast<WordSource&>(net.process(src)).words();
  EXPECT_EQ(sink.got(), sent);

  // Exactly-once, and the metrics agree: every payload word was accepted
  // once (the one-word-per-step feed makes every segment a single word),
  // pushed downstream once, and never re-counted by the retry loop.
  EXPECT_EQ(rx.receiver().stats().accepted, static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(rx.receiver().stats().duplicates_discarded, 0u);
  EXPECT_EQ(net.link(downstream).total_pushed(), static_cast<std::uint64_t>(kCount));
}

// The Batched() preset (wider segments, matching the kernel fabric's batch
// sizing) must still mask wire faults byte-identically.
TEST(ChannelFabric, BatchedTunnelPresetMasksWireFaults) {
  for (int rate : {0, 10}) {
    Network net;
    const int src = net.AddNode(std::make_unique<WordSource>(120));
    const int dst_node = net.AddNode(std::make_unique<StutterSink>(/*open_at=*/0));
    ReliableTunnel tunnel = SpliceReliableTunnel(net, src, dst_node,
                                                 ReliableConfig::Batched(),
                                                 /*capacity=*/64, /*latency=*/2);
    if (rate != 0) {
      net.InjectFaults(tunnel.data_link, FaultSpec::DropCorrupt(rate), /*seed=*/77);
      net.InjectFaults(tunnel.ack_link, FaultSpec::DropCorrupt(rate), /*seed=*/78);
    }
    net.Run(rate == 0 ? 30000 : 120000);
    const std::vector<Word>& sent = static_cast<WordSource&>(net.process(src)).words();
    const auto& got = static_cast<StutterSink&>(net.process(dst_node)).got();
    EXPECT_EQ(got, sent) << "fault rate " << rate << "%";
    const ReliableSenderStats& stats = TunnelSenderStats(net, tunnel);
    if (rate == 0) {
      EXPECT_EQ(stats.retransmits, 0u);
    } else {
      EXPECT_GT(stats.retransmits, 0u);
    }
  }
}

}  // namespace
}  // namespace sep
