// E1: the SNFE topology and its security property — user data must not
// reach the network in cleartext; red and black may communicate ONLY via
// the crypto and the censored bypass.
#include <gtest/gtest.h>

#include "src/components/snfe.h"
#include "src/machine/devices.h"

namespace sep {
namespace {

TEST(SnfeTopology, ExactLineSetOfThePaper) {
  Network net;
  SnfeTopology topo = BuildSnfe(net, CensorStrictness::kSyntax);
  // Six lines, none other (the paper's figure).
  ASSERT_EQ(net.link_count(), 6);
  // Red reaches black only THROUGH crypto or censor: there is no red->black
  // edge, but red->black reachability holds via both mediators.
  bool direct = false;
  for (const auto& edge : net.edges()) {
    if (edge.from == topo.red && edge.to == topo.black) {
      direct = true;
    }
  }
  EXPECT_FALSE(direct);
  EXPECT_TRUE(net.Reachable(topo.red, topo.black));
  EXPECT_TRUE(net.Reachable(topo.red, topo.crypto));
  EXPECT_TRUE(net.Reachable(topo.red, topo.censor));
  // Nothing flows backwards from the network side into the host side.
  EXPECT_FALSE(net.Reachable(topo.network, topo.host));
  EXPECT_FALSE(net.Reachable(topo.black, topo.red));
}

TEST(SnfePipeline, PacketsTraverseEndToEnd) {
  Network net;
  SnfeTopology topo = BuildSnfe(net, CensorStrictness::kSyntax, false, {}, {}, 16);
  net.Run(4000);
  auto& sink = static_cast<NetworkSink&>(net.process(topo.network));
  EXPECT_EQ(sink.packets().size(), 16u);
}

TEST(SnfePipeline, PayloadIsEncryptedOnTheWire) {
  Network net;
  SnfeTopology topo = BuildSnfe(net, CensorStrictness::kSyntax, false, {}, {}, 8);
  auto& host = static_cast<HostSource&>(net.process(topo.host));
  net.Run(4000);
  auto& sink = static_cast<NetworkSink&>(net.process(topo.network));
  ASSERT_EQ(sink.packets().size(), 8u);
  for (const Frame& original : host.packets()) {
    std::vector<Word> cleartext(original.fields.begin() + 3, original.fields.end());
    EXPECT_FALSE(sink.ContainsCleartext(cleartext))
        << "cleartext payload visible on the network";
  }
}

TEST(SnfePipeline, CiphertextDecryptsWithSharedKey) {
  Network net;
  const std::uint64_t key = 0xC0FFEE;
  SnfeTopology topo =
      BuildSnfe(net, CensorStrictness::kSyntax, false, {}, {}, 4, key);
  auto& host = static_cast<HostSource&>(net.process(topo.host));
  net.Run(4000);
  auto& sink = static_cast<NetworkSink&>(net.process(topo.network));
  ASSERT_EQ(sink.packets().size(), 4u);

  // A peer SNFE with the same key can recover every payload.
  std::uint64_t counter = 0;
  for (std::size_t p = 0; p < sink.packets().size(); ++p) {
    const Frame& net_packet = sink.packets()[p];
    const Frame& original = host.packets()[p];
    ASSERT_GE(net_packet.fields.size(), 3u);
    std::vector<Word> recovered;
    for (std::size_t i = 3; i < net_packet.fields.size(); ++i) {
      recovered.push_back(
          static_cast<Word>(net_packet.fields[i] ^ CryptoUnit::Keystream(key, counter++)));
    }
    std::vector<Word> cleartext(original.fields.begin() + 3, original.fields.end());
    EXPECT_EQ(recovered, cleartext) << "packet " << p;
  }
}

TEST(SnfePipeline, HeadersSurviveTheCensor) {
  Network net;
  SnfeTopology topo = BuildSnfe(net, CensorStrictness::kSyntax, false, {}, {}, 8);
  auto& host = static_cast<HostSource&>(net.process(topo.host));
  net.Run(4000);
  auto& sink = static_cast<NetworkSink&>(net.process(topo.network));
  ASSERT_EQ(sink.packets().size(), 8u);
  for (std::size_t p = 0; p < sink.packets().size(); ++p) {
    EXPECT_EQ(sink.packets()[p].fields[0], host.packets()[p].fields[0]);  // dest preserved
  }
}

TEST(SnfeCensor, MalformedBypassTrafficDropped) {
  Network net;
  // Hand-built: a source that sends garbage frames straight into a censor.
  struct GarbageSource : Process {
    FrameWriter writer;
    int sent = 0;
    std::string name() const override { return "garbage"; }
    void Step(NodeContext& ctx) override {
      if (sent < 4 && writer.idle()) {
        switch (sent) {
          case 0:
            writer.Queue(Frame{kPktHdr, {9999, 8, 0}});        // dest out of range
            break;
          case 1:
            writer.Queue(Frame{kPktHdr, {1, 8, 0, 77, 78}});   // extra fields (data!)
            break;
          case 2:
            writer.Queue(Frame{kPktPayload, {1, 2, 3}});        // wrong type on bypass
            break;
          case 3:
            writer.Queue(Frame{kPktHdr, {1, 8, 0}});            // legitimate
            break;
        }
        ++sent;
      }
      writer.Flush(ctx, 0);
    }
  };
  struct HdrSink : Process {
    FrameReader reader;
    std::vector<Frame> got;
    std::string name() const override { return "sink"; }
    void Step(NodeContext& ctx) override {
      reader.Poll(ctx, 0);
      while (auto f = reader.Next()) {
        got.push_back(*f);
      }
    }
  };
  int src = net.AddNode(std::make_unique<GarbageSource>());
  int censor_node = net.AddNode(std::make_unique<Censor>(CensorStrictness::kSyntax));
  int sink_node = net.AddNode(std::make_unique<HdrSink>());
  net.Connect(src, censor_node);
  net.Connect(censor_node, sink_node);
  net.Run(200);

  auto& censor = static_cast<Censor&>(net.process(censor_node));
  auto& sink = static_cast<HdrSink&>(net.process(sink_node));
  EXPECT_EQ(censor.stats().dropped, 3u);
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.got[0], (Frame{kPktHdr, {1, 8, 0}}));
}

TEST(SnfeCovert, FlagChannelWorksWithoutCensor) {
  std::vector<int> secret = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0};
  Network net;
  SnfeTopology topo = BuildSnfe(net, CensorStrictness::kOff, /*evil=*/true, secret,
                                LeakMode::kFlagEncoding, 12);
  net.Run(4000);
  auto& sink = static_cast<NetworkSink&>(net.process(topo.network));
  EXPECT_GE(MatchingPrefixBits(secret, sink.DecodeFlagBits()), secret.size());
}

TEST(SnfeCovert, CanonicalizationKillsFlagChannel) {
  std::vector<int> secret = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0};
  Network net;
  SnfeTopology topo = BuildSnfe(net, CensorStrictness::kCanonical, /*evil=*/true, secret,
                                LeakMode::kFlagEncoding, 12);
  net.Run(4000);
  auto& sink = static_cast<NetworkSink&>(net.process(topo.network));
  // Every flag arrives as the canonical 0: the decoder recovers no secret.
  std::vector<int> decoded = sink.DecodeFlagBits();
  for (int bit : decoded) {
    EXPECT_EQ(bit, 0);
  }
}

TEST(SnfeCovert, RateLimitingDegradesTimingChannel) {
  std::vector<int> secret = {1, 0, 1, 1, 0, 1, 0, 0, 1, 0};
  auto decode_with = [&](CensorStrictness strictness) {
    Network net;
    SnfeTopology topo =
        BuildSnfe(net, strictness, /*evil=*/true, secret, LeakMode::kTimingEncoding, 10,
                  0xC0FFEE, /*censor_gap=*/8);
    net.Run(6000);
    auto& sink = static_cast<NetworkSink&>(net.process(topo.network));
    return MatchingPrefixBits(secret, sink.DecodeTimingBits());
  };
  const std::size_t without = decode_with(CensorStrictness::kOff);
  const std::size_t with = decode_with(CensorStrictness::kRateLimited);
  EXPECT_GE(without, 8u);  // timing channel works against no censor
  EXPECT_LT(with, without);  // rate limiting flattens the gaps
}

}  // namespace
}  // namespace sep
