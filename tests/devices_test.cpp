// Device-level unit tests: register semantics, interrupt behaviour
// (including the IE-rising-edge rule), clone fidelity, and the Perturb
// contract every device must honour for the checker.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/machine/devices.h"

namespace sep {
namespace {

TEST(SerialLineDevice, EnableAfterDoneStillInterrupts) {
  SerialLine slu("slu", 16, 4, 1);
  slu.InjectInput('A');
  slu.Step();  // DONE sets with IE off: no interrupt
  EXPECT_FALSE(slu.interrupt_pending());
  slu.WriteRegister(0, kCsrIe);  // IE rising edge with DONE set
  EXPECT_TRUE(slu.interrupt_pending());
}

TEST(SerialLineDevice, TransmitBusyDropsOverlappingWrites) {
  SerialLine slu("slu", 16, 4, 3);
  slu.WriteRegister(3, 'X');
  slu.WriteRegister(3, 'Y');  // ignored: transmitter busy
  for (int i = 0; i < 5; ++i) {
    slu.Step();
  }
  std::vector<Word> out = slu.DrainOutput();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 'X');
}

TEST(SerialLineDevice, ReceiveQueuePreservedWhileBufferFull) {
  SerialLine slu("slu", 16, 4, 1);
  slu.InjectInput(1);
  slu.InjectInput(2);
  slu.InjectInput(3);
  slu.Step();  // latches 1
  EXPECT_EQ(slu.ReadRegister(1), 1);  // read clears DONE
  slu.Step();  // latches 2
  EXPECT_EQ(slu.ReadRegister(1), 2);
  slu.Step();
  EXPECT_EQ(slu.ReadRegister(1), 3);
}

TEST(LineClockDevice, PeriodIsExact) {
  LineClock clk("clk", 20, 6, 4);
  int fires = 0;
  for (int step = 1; step <= 20; ++step) {
    clk.Step();
    if (clk.ReadRegister(0) & kCsrDone) {
      ++fires;
      clk.WriteRegister(0, 0);  // acknowledge
    }
  }
  EXPECT_EQ(fires, 5);
}

TEST(LinePrinterDevice, CharactersEmergeAfterDelay) {
  LinePrinter lp("lp", 18, 3, 3);
  lp.WriteRegister(1, 'Q');
  EXPECT_EQ(lp.ReadRegister(0) & kCsrDone, 0);  // busy
  lp.Step();
  lp.Step();
  EXPECT_TRUE(lp.DrainOutput().empty());
  lp.Step();
  std::vector<Word> out = lp.DrainOutput();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 'Q');
  EXPECT_EQ(lp.ReadRegister(0) & kCsrDone, kCsrDone);
}

TEST(LinePrinterDevice, WriteWhileBusyIgnored) {
  LinePrinter lp("lp", 18, 3, 4);
  lp.WriteRegister(1, 'A');
  lp.WriteRegister(1, 'B');  // ignored
  for (int i = 0; i < 10; ++i) {
    lp.Step();
  }
  std::vector<Word> out = lp.DrainOutput();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 'A');
}

TEST(CryptoUnitDevice, EncryptsAfterLatency) {
  CryptoUnit crypto("c", 16, 4, /*key=*/7, /*latency=*/2);
  crypto.WriteRegister(1, 0x1234);
  crypto.Step();
  EXPECT_EQ(crypto.ReadRegister(0) & kCsrDone, 0);
  crypto.Step();
  EXPECT_EQ(crypto.ReadRegister(0) & kCsrDone, kCsrDone);
  const Word cipher = crypto.ReadRegister(2);
  EXPECT_EQ(cipher, static_cast<Word>(0x1234 ^ CryptoUnit::Keystream(7, 0)));
  EXPECT_EQ(crypto.ReadRegister(0) & kCsrDone, 0);  // read cleared DONE
}

TEST(CryptoUnitDevice, KeystreamAdvancesPerOperation) {
  CryptoUnit crypto("c", 16, 4, 7, 1);
  Word first = 0;
  Word second = 0;
  crypto.WriteRegister(1, 0);
  crypto.Step();
  first = crypto.ReadRegister(2);
  crypto.WriteRegister(1, 0);
  crypto.Step();
  second = crypto.ReadRegister(2);
  EXPECT_EQ(first, CryptoUnit::Keystream(7, 0));
  EXPECT_EQ(second, CryptoUnit::Keystream(7, 1));
  EXPECT_NE(first, second);
}

TEST(CryptoUnitDevice, XorIsInvolutive) {
  // Encrypt then re-encrypt with a counter-matched peer: identity.
  for (std::uint64_t n = 0; n < 50; ++n) {
    const Word clear = static_cast<Word>(n * 1103 + 13);
    const Word cipher = static_cast<Word>(clear ^ CryptoUnit::Keystream(99, n));
    EXPECT_EQ(static_cast<Word>(cipher ^ CryptoUnit::Keystream(99, n)), clear);
  }
}

TEST(CryptoUnitDevice, DifferentKeysDiverge) {
  int same = 0;
  for (std::uint64_t n = 0; n < 64; ++n) {
    if (CryptoUnit::Keystream(1, n) == CryptoUnit::Keystream(2, n)) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

// Every device type: clone equality and the Perturb contract.
template <typename MakeDevice>
void CheckCloneAndPerturb(MakeDevice make) {
  // Clone preserves snapshot.
  auto original = make();
  original->InjectInput(42);
  original->Step();
  auto clone = original->Clone();
  EXPECT_EQ(original->SnapshotState(), clone->SnapshotState());

  // Perturb never flips the interrupt line (the checker's requirement).
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    auto device = make();
    const bool irq_before = device->interrupt_pending();
    device->Perturb(rng);
    EXPECT_EQ(device->interrupt_pending(), irq_before);
  }
}

TEST(DeviceContracts, SerialLine) {
  CheckCloneAndPerturb([] { return std::make_unique<SerialLine>("s", 16, 4, 2); });
}
TEST(DeviceContracts, LineClock) {
  CheckCloneAndPerturb([] { return std::make_unique<LineClock>("c", 18, 5, 7); });
}
TEST(DeviceContracts, LinePrinter) {
  CheckCloneAndPerturb([] { return std::make_unique<LinePrinter>("p", 20, 3, 4); });
}
TEST(DeviceContracts, CryptoUnit) {
  CheckCloneAndPerturb([] { return std::make_unique<CryptoUnit>("x", 22, 4, 5, 2); });
}

TEST(DeviceContracts, PerturbedStatesAreValidToStep) {
  // A perturbed device must remain steppable without tripping invariants:
  // run many random states forward.
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    SerialLine slu("s", 16, 4, 2);
    slu.Perturb(rng);
    for (int i = 0; i < 20; ++i) {
      slu.Step();
      (void)slu.ReadRegister(0);
      (void)slu.ReadRegister(1);
    }
    LineClock clk("c", 18, 5, 9);
    clk.Perturb(rng);
    for (int i = 0; i < 20; ++i) {
      clk.Step();
    }
    CryptoUnit crypto("x", 22, 4, 5, 3);
    crypto.Perturb(rng);
    for (int i = 0; i < 20; ++i) {
      crypto.Step();
    }
  }
}

}  // namespace
}  // namespace sep
