#include <gtest/gtest.h>

#include "src/components/wire.h"
#include "src/distributed/network.h"

namespace sep {
namespace {

// Emits 1..n on out-port 0, one word per step.
class Emitter : public Process {
 public:
  explicit Emitter(Word n) : n_(n) {}
  std::string name() const override { return "emitter"; }
  void Step(NodeContext& ctx) override {
    if (next_ <= n_) {
      if (ctx.Send(0, next_)) {
        ++next_;
      }
    }
  }
  bool Finished() const override { return next_ > n_; }

 private:
  Word n_;
  Word next_ = 1;
};

class Collector : public Process {
 public:
  std::string name() const override { return "collector"; }
  void Step(NodeContext& ctx) override {
    if (ctx.in_port_count() == 0) {
      return;
    }
    while (std::optional<Word> w = ctx.Receive(0)) {
      got_.push_back(*w);
    }
  }
  const std::vector<Word>& got() const { return got_; }

 private:
  std::vector<Word> got_;
};

TEST(Network, DeliversInOrder) {
  Network net;
  int a = net.AddNode(std::make_unique<Emitter>(10));
  int b = net.AddNode(std::make_unique<Collector>());
  net.Connect(a, b);
  net.Run(100);
  auto& collector = static_cast<Collector&>(net.process(b));
  ASSERT_EQ(collector.got().size(), 10u);
  for (Word i = 0; i < 10; ++i) {
    EXPECT_EQ(collector.got()[i], i + 1);
  }
}

TEST(Network, LatencyDelaysDelivery) {
  Network net;
  int a = net.AddNode(std::make_unique<Emitter>(1));
  int b = net.AddNode(std::make_unique<Collector>());
  net.Connect(a, b, 64, /*latency=*/10);
  auto& collector = static_cast<Collector&>(net.process(b));
  for (int i = 0; i < 5; ++i) {
    net.Step();
  }
  EXPECT_TRUE(collector.got().empty());
  for (int i = 0; i < 20; ++i) {
    net.Step();
  }
  EXPECT_EQ(collector.got().size(), 1u);
}

TEST(Network, CapacityExertsBackpressure) {
  Network net;
  int a = net.AddNode(std::make_unique<Emitter>(100));
  int b = net.AddNode(std::make_unique<Collector>());
  net.Connect(a, b, /*capacity=*/4, /*latency=*/1);
  net.Run(500);
  auto& collector = static_cast<Collector&>(net.process(b));
  EXPECT_EQ(collector.got().size(), 100u);  // all eventually arrive
}

TEST(Network, NoLinkMeansNoFlow) {
  Network net;
  int a = net.AddNode(std::make_unique<Emitter>(5));
  int b = net.AddNode(std::make_unique<Collector>());
  int c = net.AddNode(std::make_unique<Collector>());
  net.Connect(a, b);
  net.Run(50);
  EXPECT_FALSE(net.Reachable(a, c));
  EXPECT_TRUE(net.Reachable(a, b));
  auto& lonely = static_cast<Collector&>(net.process(c));
  EXPECT_TRUE(lonely.got().empty());
}

TEST(Network, ReachabilityIsTransitive) {
  Network net;
  int a = net.AddNode(std::make_unique<Emitter>(1));
  int b = net.AddNode(std::make_unique<Collector>());
  int c = net.AddNode(std::make_unique<Collector>());
  net.Connect(a, b);
  net.Connect(b, c);
  EXPECT_TRUE(net.Reachable(a, c));
  EXPECT_FALSE(net.Reachable(c, a));
}

TEST(Network, ReachabilityTerminatesOnCycles) {
  Network net;
  int a = net.AddNode(std::make_unique<Emitter>(1));
  int b = net.AddNode(std::make_unique<Collector>());
  int c = net.AddNode(std::make_unique<Collector>());
  int d = net.AddNode(std::make_unique<Collector>());
  net.Connect(a, b);
  net.Connect(b, c);
  net.Connect(c, a);  // cycle a -> b -> c -> a
  net.Connect(c, d);
  EXPECT_TRUE(net.Reachable(a, d));
  EXPECT_TRUE(net.Reachable(b, a));
  EXPECT_TRUE(net.Reachable(a, a));
  EXPECT_FALSE(net.Reachable(d, a));
}

TEST(Network, ZeroLatencyDeliversNextStep) {
  Network net;
  int a = net.AddNode(std::make_unique<Emitter>(1));
  int b = net.AddNode(std::make_unique<Collector>());
  net.Connect(a, b, 64, /*latency=*/0);
  auto& collector = static_cast<Collector&>(net.process(b));
  net.Step();  // emitter pushes; links advance before nodes, so not yet seen
  EXPECT_TRUE(collector.got().empty());
  net.Step();
  EXPECT_EQ(collector.got().size(), 1u);
}

TEST(Network, CapacityOneLinkStillDeliversEverything) {
  Network net;
  int a = net.AddNode(std::make_unique<Emitter>(20));
  int b = net.AddNode(std::make_unique<Collector>());
  net.Connect(a, b, /*capacity=*/1, /*latency=*/1);
  net.Run(500);
  auto& collector = static_cast<Collector&>(net.process(b));
  ASSERT_EQ(collector.got().size(), 20u);
  for (Word i = 0; i < 20; ++i) {
    EXPECT_EQ(collector.got()[i], i + 1);
  }
}

TEST(Network, SpaceNeverUnderflowsPastCapacity) {
  // Fault-injected duplication can push occupancy beyond the declared
  // capacity; Space() must clamp to zero rather than wrap around.
  Link link("dup", /*capacity=*/3, /*latency=*/1);
  FaultSpec spec;
  spec.duplicate_percent = 100;
  link.InstallFaults(spec, /*seed=*/1);
  EXPECT_TRUE(link.Push(1, 0));  // occupies 2 slots (original + echo)
  EXPECT_TRUE(link.Push(2, 0));  // occupancy now 4 > capacity 3
  EXPECT_EQ(link.Space(), 0u);   // must clamp, not wrap around
  EXPECT_FALSE(link.Push(3, 0));
}

TEST(Network, AdvanceDeliversDelayedWordsOutOfArrivalOrder) {
  // Extra fault delay makes deliver_at non-monotone in the flight queue; a
  // delayed word must not block the words pushed after it.
  Link link("delay", 64, /*latency=*/1);
  FaultSpec spec;
  spec.delay_percent = 100;
  spec.max_extra_delay = 8;
  link.InstallFaults(spec, /*seed=*/3);
  EXPECT_TRUE(link.Push(0xA, 0));  // delayed by some amount in [1, 8]
  link.ClearFaults();
  EXPECT_TRUE(link.Push(0xB, 0));  // normal latency 1
  link.Advance(1);
  ASSERT_EQ(link.ReadyCount(), 1u);  // 0xB overtook the delayed 0xA
  EXPECT_EQ(link.Pop(), std::optional<Word>(0xB));
  link.Advance(20);
  EXPECT_EQ(link.Pop(), std::optional<Word>(0xA));
}

TEST(Network, DeterministicAcrossRuns) {
  auto run = [] {
    Network net;
    int a = net.AddNode(std::make_unique<Emitter>(50));
    int b = net.AddNode(std::make_unique<Collector>());
    net.Connect(a, b, 8, 3);
    net.Run(1000);
    return static_cast<Collector&>(net.process(b)).got();
  };
  EXPECT_EQ(run(), run());
}

TEST(Wire, FrameRoundTrip) {
  FrameWriter writer;
  writer.Queue(Frame{7, {1, 2, 3}});
  writer.Queue(Frame{9, {}});

  // Shuttle through a reader manually.
  FrameReader reader;
  // Flush via a fake context is awkward; use a direct link instead.
  Network net;
  struct Pipe : Process {
    FrameWriter* w;
    explicit Pipe(FrameWriter* writer) : w(writer) {}
    std::string name() const override { return "pipe"; }
    void Step(NodeContext& ctx) override { w->Flush(ctx, 0); }
  };
  struct Sink : Process {
    FrameReader reader;
    std::vector<Frame> frames;
    std::string name() const override { return "sink"; }
    void Step(NodeContext& ctx) override {
      reader.Poll(ctx, 0);
      while (auto f = reader.Next()) {
        frames.push_back(*f);
      }
    }
  };
  int a = net.AddNode(std::make_unique<Pipe>(&writer));
  int b = net.AddNode(std::make_unique<Sink>());
  net.Connect(a, b);
  net.Run(20);
  auto& sink = static_cast<Sink&>(net.process(b));
  ASSERT_EQ(sink.frames.size(), 2u);
  EXPECT_EQ(sink.frames[0], (Frame{7, {1, 2, 3}}));
  EXPECT_EQ(sink.frames[1], (Frame{9, {}}));
  (void)reader;
}

TEST(Wire, LevelCodeRoundTrip) {
  CategoryRegistry::Instance().Reset();
  CategorySet nuc = *CategoryRegistry::Instance().GetOrRegister("NUC");
  SecurityLevel level(Classification::kSecret, nuc);
  EXPECT_EQ(DecodeLevel(EncodeLevel(level)), level);
}

TEST(Wire, StringEncodingRoundTrip) {
  std::vector<Word> words = StringToWords("hello");
  EXPECT_EQ(WordsToString(words), "hello");
  EXPECT_EQ(WordsToString(words, 1, 3), "ell");
}

TEST(Wire, PartialFrameWaits) {
  FrameReader reader;
  reader.Feed(3);  // frame of length 3 announced
  reader.Feed(7);
  EXPECT_FALSE(reader.Next().has_value());
  reader.Feed(1);
  reader.Feed(2);
  auto frame = reader.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, 7);
  EXPECT_EQ(frame->fields, (std::vector<Word>{1, 2}));
}

}  // namespace
}  // namespace sep
