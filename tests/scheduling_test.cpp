// Scheduling and allowed-channel properties the paper acknowledges rather
// than solves:
//
//   * "Because the whole system is dedicated to a single function, 'denial
//      of service' is not a security problem (although it is clearly a
//      reliability issue)." — a regime that never yields CAN starve its
//      peers; the kernel does not (and per the paper, need not) prevent it.
//   * An ALLOWED channel is allowed to carry information: its backpressure
//     face is a receiver->sender signal by design. Proof of Separability is
//     about the ABSENCE of channels, not about making the declared ones
//     one-directional in the information-theoretic sense.
#include <gtest/gtest.h>

#include "src/core/kernel_system.h"

namespace sep {
namespace {

TEST(Scheduling, CpuHogStarvesPeersExactlyAsThePaperConcedes) {
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("hog", 256, R"(
LOOP:   INC R3          ; never SWAPs, never faults
        BR LOOP
)").ok());
  ASSERT_TRUE(builder.AddRegime("victim", 256, R"(
        MOV #1, R2
        MOV R2, @0x40   ; would mark progress — never reached
        TRAP 7
)").ok());
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(5000);
  // The victim never ran: denial of service, not an isolation breach.
  const auto& regimes = (*sys)->kernel().config().regimes;
  EXPECT_EQ((*sys)->machine().memory().Read(regimes[1].mem_base + 0x40), 0);
  EXPECT_FALSE((*sys)->kernel().RegimeHalted(1));
  EXPECT_EQ((*sys)->kernel().SwapCount(), 1u);  // only the boot dispatch
}

TEST(Scheduling, YieldingRestoresFairness) {
  SystemBuilder builder;
  for (const char* name : {"a", "b", "c"}) {
    ASSERT_TRUE(builder.AddRegime(name, 256, R"(
LOOP:   INC R3
        MOV R3, @0x40
        TRAP 0
        BR LOOP
)").ok());
  }
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(3000);
  const auto& regimes = (*sys)->kernel().config().regimes;
  Word counts[3];
  for (int r = 0; r < 3; ++r) {
    counts[r] = (*sys)->machine().memory().Read(regimes[static_cast<std::size_t>(r)].mem_base +
                                                0x40);
  }
  // Round-robin: equal progress within one iteration.
  EXPECT_NEAR(counts[0], counts[1], 1);
  EXPECT_NEAR(counts[1], counts[2], 1);
  EXPECT_GT(counts[0], 50);
}

TEST(AllowedChannel, BackpressureIsAReceiverToSenderSignal) {
  // The receiver drains the channel in bursts; the sender observes the
  // full/not-full status — about one bit per send attempt. This is part of
  // the DECLARED channel, visible in the topology, priced in by the
  // designer: precisely the paper's "what channels are available" framing.
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("sender", 512, R"(
        ; record the status stream of repeated sends at 0x80...
        MOV #0x80, R4
        CLR R3
LOOP:   MOV #1, R1
        CLR R0
        TRAP 1          ; SEND
        MOV R0, (R4)    ; log status (1 = accepted, 0 = full)
        INC R4
        INC R3
        TRAP 0
        CMP #24, R3
        BNE LOOP
        TRAP 7
)").ok());
  ASSERT_TRUE(builder.AddRegime("receiver", 512, R"(
        ; drain 4, sleep 4 swaps, repeat: a recognisable rhythm
        CLR R5
OUTER:  MOV #4, R3
DRAIN:  CLR R0
        TRAP 2
        DEC R3
        BNE DRAIN
        MOV #4, R3
SLEEP:  TRAP 0
        DEC R3
        BNE SLEEP
        BR OUTER
)").ok());
  builder.AddChannel("c", 0, 1, 2);  // tiny capacity: backpressure bites
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(5000);

  const auto& regimes = (*sys)->kernel().config().regimes;
  int accepted = 0;
  int rejected = 0;
  for (Word i = 0; i < 24; ++i) {
    const Word status = (*sys)->machine().memory().Read(regimes[0].mem_base + 0x80 + i);
    (status != 0 ? accepted : rejected) += 1;
  }
  // Both outcomes occurred: the sender demonstrably observes the
  // receiver's draining rhythm through the allowed channel.
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
}

TEST(AllowedChannel, CutChannelSilencesTheBackchannel) {
  // With the wire cut, the sender's status stream depends only on ITS OWN
  // history: the first `capacity` sends succeed, all later ones fail —
  // whatever the receiver does.
  SystemBuilder builder;
  ASSERT_TRUE(builder.AddRegime("sender", 512, R"(
        MOV #0x80, R4
        CLR R3
LOOP:   MOV #1, R1
        CLR R0
        TRAP 1
        MOV R0, (R4)
        INC R4
        INC R3
        TRAP 0
        CMP #12, R3
        BNE LOOP
        TRAP 7
)").ok());
  ASSERT_TRUE(builder.AddRegime("receiver", 512, R"(
LOOP:   CLR R0
        TRAP 2          ; drains eagerly — but the wire is cut
        TRAP 0
        BR LOOP
)").ok());
  builder.AddChannel("c", 0, 1, 2);
  builder.CutChannels(true);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();
  (*sys)->Run(5000);

  const auto& regimes = (*sys)->kernel().config().regimes;
  for (Word i = 0; i < 12; ++i) {
    const Word status = (*sys)->machine().memory().Read(regimes[0].mem_base + 0x80 + i);
    EXPECT_EQ(status, i < 2 ? 1 : 0) << "send " << i;
  }
}

}  // namespace
}  // namespace sep
