// Checker validation (experiment E3): the Proof-of-Separability checker
// must DETECT each deliberately leaky kernel, not merely pass good ones.
#include <gtest/gtest.h>

#include "src/core/kernel_system.h"
#include "src/core/separability.h"
#include "src/machine/devices.h"

namespace sep {
namespace {

constexpr char kWorker[] = R"(
START:  CLR R3
LOOP:   INC R3
        MOV R3, @0x40
        TRAP 0          ; SWAP
        BR LOOP
)";

// A regime that inspects every register it can see and folds them into its
// own memory — the natural "listener" for register-leak channels.
constexpr char kRegisterProbe[] = R"(
START:  MOV R0, @0x50
        MOV R1, @0x51
        MOV R2, @0x52
        MOV R3, @0x53
        MOV R4, @0x54
        MOV R5, @0x55
        TRAP 0          ; SWAP
        BR START
)";

// A spy that reads virtual page 1 (the shared_mmu_window defect maps it to
// regime 0's partition) and publishes what it sees.
constexpr char kPageSpy[] = R"(
START:  MOV #0x2000, R4
LOOP:   MOV (R4), R2
        MOV R2, @0x60
        TRAP 0
        BR LOOP
)";

// A regime that suspends with the carry flag deliberately SET and branches
// on it at resume — the listener for the PSW condition-code channel. A
// correct kernel restores C = 1; the leaky kernel hands it the other
// regime's flags (C = 0 for kWorker, which never produces a carry).
constexpr char kCcProbe[] = R"(
START:  COM R1          ; COM always sets C
        TRAP 0          ; SWAP with C = 1 in the saved PSW
        BCS START       ; C survived: loop again
        MOV #1, R2      ; C was lost: the leak is observable
        MOV R2, @0x70
        BR START
)";

CheckerOptions DetectOptions(std::uint64_t seed = 1) {
  CheckerOptions options;
  options.seed = seed;
  options.trace_steps = 600;
  options.sample_every = 7;
  options.perturb_variants = 3;
  return options;
}

SeparabilityReport CheckWith(const KernelFaults& faults, const char* program_a,
                             const char* program_b, std::uint64_t seed = 1) {
  SystemBuilder builder;
  EXPECT_TRUE(builder.AddRegime("red", 256, program_a).ok());
  EXPECT_TRUE(builder.AddRegime("black", 256, program_b).ok());
  builder.WithFaults(faults);
  auto sys = builder.Build();
  EXPECT_TRUE(sys.ok()) << sys.error();
  return CheckSeparability(**sys, DetectOptions(seed));
}

TEST(FaultInjection, SkipRegisterRestoreDetected) {
  KernelFaults faults;
  faults.skip_register_restore = true;
  SeparabilityReport report = CheckWith(faults, kWorker, kRegisterProbe);
  EXPECT_FALSE(report.Passed()) << report.Summary();
}

TEST(FaultInjection, LeakConditionCodesDetected) {
  KernelFaults faults;
  faults.leak_condition_codes = true;
  SeparabilityReport report = CheckWith(faults, kWorker, kCcProbe);
  EXPECT_FALSE(report.Passed()) << report.Summary();
}

TEST(FaultInjection, SharedMmuWindowDetected) {
  KernelFaults faults;
  faults.shared_mmu_window = true;
  SeparabilityReport report = CheckWith(faults, kWorker, kPageSpy);
  EXPECT_FALSE(report.Passed()) << report.Summary();
}

TEST(FaultInjection, BroadcastInterruptsDetected) {
  KernelFaults faults;
  faults.broadcast_interrupts = true;

  SystemBuilder builder;
  int slu = builder.AddDevice(std::make_unique<SerialLine>("slu", 16, 4, 2));
  EXPECT_TRUE(builder.AddRegime("driver", 256, R"(
        .EQU DEV, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4
        MOV #DEV, R4
        MOV #0x40, (R4)
LOOP:   TRAP 6
        BR LOOP
HANDLER:
        MOV #DEV, R4
        MOV 1(R4), R2
        TRAP 5
)", {slu}).ok());
  EXPECT_TRUE(builder.AddRegime("bystander", 256, kWorker).ok());
  builder.WithFaults(faults);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  CheckerOptions options = DetectOptions(2);
  options.input_rate_percent = 25;
  SeparabilityReport report = CheckSeparability(**sys, options);
  EXPECT_FALSE(report.Passed()) << report.Summary();
}

TEST(FaultInjection, MisroutedChannelsDetected) {
  KernelFaults faults;
  faults.misroute_channels = true;

  SystemBuilder builder;
  EXPECT_TRUE(builder.AddRegime("a", 256, R"(
START:  CLR R3
LOOP:   INC R3
        MOV R3, R1
        CLR R0
        TRAP 1          ; SEND on channel 0
        TRAP 0
        BR LOOP
)").ok());
  EXPECT_TRUE(builder.AddRegime("b", 256, R"(
START:  CLR R3
LOOP:   INC R3
        MOV R3, R1
        MOV #1, R0
        TRAP 1          ; SEND on channel 1
        TRAP 0
        BR LOOP
)").ok());
  EXPECT_TRUE(builder.AddRegime("c", 256, kWorker).ok());
  // Channel 0: a -> c. Channel 1: b -> c. Misrouting sends a's words into
  // channel 1's ring, which is receiver-c state fed by colour b — but the
  // WRITES happen under colour a into ring X1 of channel 1... with cut
  // channels, a's SEND mutates channel 1's sender ring: state in b's view.
  builder.AddChannel("a2c", 0, 2, 4);
  builder.AddChannel("b2c", 1, 2, 4);
  builder.CutChannels(true);
  builder.WithFaults(faults);
  auto sys = builder.Build();
  ASSERT_TRUE(sys.ok()) << sys.error();

  SeparabilityReport report = CheckSeparability(**sys, DetectOptions(3));
  EXPECT_FALSE(report.Passed()) << report.Summary();
}

TEST(FaultInjection, SkipRegisterSaveIsNotAnIsolationLeak) {
  // Losing the outgoing regime's registers corrupts that regime's own
  // state but leaks nothing across colours: separability genuinely HOLDS.
  // (The defect is a correctness bug, caught by trace-equivalence testing
  // in E11, not by Proof of Separability — exactly the division of labour
  // the paper describes between security and correctness arguments.)
  KernelFaults faults;
  faults.skip_register_save = true;
  SeparabilityReport report = CheckWith(faults, kWorker, kWorker, 4);
  EXPECT_TRUE(report.Passed()) << report.Summary();
}

TEST(FaultInjection, AllLeaksDetectedAcrossSeeds) {
  // Detection must not hinge on one lucky seed.
  for (std::uint64_t seed : {11ull, 22ull}) {
    KernelFaults faults;
    faults.skip_register_restore = true;
    EXPECT_FALSE(CheckWith(faults, kWorker, kRegisterProbe, seed).Passed())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace sep
