// Exhaustive (finite-model) Proof of Separability: for micro-systems the
// six conditions are decided over the ENTIRE reachable state space — the
// executable analogue of the paper's proof obligation.
#include <gtest/gtest.h>

#include "src/core/exhaustive.h"
#include "src/model/toy_systems.h"

namespace sep {
namespace {

using TinySystem = TinyTwoUserSystem;

TEST(Exhaustive, SecureTinySystemProvenSeparable) {
  ExhaustiveReport report = CheckSeparabilityExhaustive(TinySystem(false));
  EXPECT_TRUE(report.complete) << report.Summary();
  EXPECT_TRUE(report.Passed()) << report.Summary();
  // The whole space really was covered and all condition families checked.
  EXPECT_GT(report.states_explored, 100u);
  EXPECT_GT(report.pairs_checked, 100u);
  for (int c : {1, 2, 3, 4, 5, 6}) {
    EXPECT_GT(report.conditions[static_cast<std::size_t>(c)].checks, 0u) << "C" << c;
  }
}

TEST(Exhaustive, LeakyTinySystemRefutedWithCounterexample) {
  ExhaustiveReport report = CheckSeparabilityExhaustive(TinySystem(true));
  ASSERT_FALSE(report.Passed()) << report.Summary();
  // The leak couples counters through the OPERATION: condition 1 (or 2 via
  // the reverse direction) must carry the refutation.
  bool c1_or_c2 = false;
  for (const Violation& v : report.violations) {
    c1_or_c2 = c1_or_c2 || v.condition == 1 || v.condition == 2;
  }
  EXPECT_TRUE(c1_or_c2);
}

TEST(Exhaustive, StateBudgetMakesResultPartialNotWrong) {
  ExhaustiveOptions options;
  options.max_states = 50;  // far below the reachable count
  ExhaustiveReport report = CheckSeparabilityExhaustive(TinySystem(false), options);
  EXPECT_FALSE(report.complete);
  EXPECT_TRUE(report.Passed());  // no false violations from truncation
  EXPECT_EQ(report.states_explored, 50u);
}

TEST(Exhaustive, UnsupportedSystemReportsGracefully) {
  // A system without FullState(): the checker refuses rather than guessing.
  class NoState : public TinySystem {
   public:
    NoState() : TinySystem(false) {}
    std::unique_ptr<SharedSystem> Clone() const override {
      return std::make_unique<NoState>(*this);
    }
    std::optional<std::vector<Word>> FullState() const override { return std::nullopt; }
  };
  ExhaustiveReport report = CheckSeparabilityExhaustive(NoState());
  EXPECT_FALSE(report.Passed());
  EXPECT_EQ(report.states_explored, 0u);
}

TEST(Exhaustive, DeterministicAcrossRuns) {
  ExhaustiveReport a = CheckSeparabilityExhaustive(TinySystem(false));
  ExhaustiveReport b = CheckSeparabilityExhaustive(TinySystem(false));
  EXPECT_EQ(a.states_explored, b.states_explored);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.pairs_checked, b.pairs_checked);
}

}  // namespace
}  // namespace sep
