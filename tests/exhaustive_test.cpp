// Exhaustive (finite-model) Proof of Separability: for micro-systems the
// six conditions are decided over the ENTIRE reachable state space — the
// executable analogue of the paper's proof obligation.
#include <gtest/gtest.h>

#include "src/core/exhaustive.h"
#include "src/model/toy_systems.h"

namespace sep {
namespace {

using TinySystem = TinyTwoUserSystem;

TEST(Exhaustive, SecureTinySystemProvenSeparable) {
  ExhaustiveReport report = CheckSeparabilityExhaustive(TinySystem(false));
  EXPECT_TRUE(report.complete) << report.Summary();
  EXPECT_TRUE(report.Passed()) << report.Summary();
  // The whole space really was covered and all condition families checked.
  EXPECT_GT(report.states_explored, 100u);
  EXPECT_GT(report.pairs_checked, 100u);
  for (int c : {1, 2, 3, 4, 5, 6}) {
    EXPECT_GT(report.conditions[static_cast<std::size_t>(c)].checks, 0u) << "C" << c;
  }
}

TEST(Exhaustive, LeakyTinySystemRefutedWithCounterexample) {
  ExhaustiveReport report = CheckSeparabilityExhaustive(TinySystem(true));
  ASSERT_FALSE(report.Passed()) << report.Summary();
  // The leak couples counters through the OPERATION: condition 1 (or 2 via
  // the reverse direction) must carry the refutation.
  bool c1_or_c2 = false;
  for (const Violation& v : report.violations) {
    c1_or_c2 = c1_or_c2 || v.condition == 1 || v.condition == 2;
  }
  EXPECT_TRUE(c1_or_c2);
}

TEST(Exhaustive, StateBudgetMakesResultPartialNotWrong) {
  ExhaustiveOptions options;
  options.max_states = 50;  // far below the reachable count
  ExhaustiveReport report = CheckSeparabilityExhaustive(TinySystem(false), options);
  EXPECT_FALSE(report.complete);
  EXPECT_TRUE(report.Passed());  // no false violations from truncation
  EXPECT_EQ(report.states_explored, 50u);
}

TEST(Exhaustive, UnsupportedSystemReportsGracefully) {
  // A system without FullState(): the checker refuses rather than guessing.
  class NoState : public TinySystem {
   public:
    NoState() : TinySystem(false) {}
    std::unique_ptr<SharedSystem> Clone() const override {
      return std::make_unique<NoState>(*this);
    }
    std::optional<std::vector<Word>> FullState() const override { return std::nullopt; }
  };
  ExhaustiveReport report = CheckSeparabilityExhaustive(NoState());
  EXPECT_FALSE(report.Passed());
  EXPECT_EQ(report.states_explored, 0u);
}

TEST(Exhaustive, DeterministicAcrossRuns) {
  ExhaustiveReport a = CheckSeparabilityExhaustive(TinySystem(false));
  ExhaustiveReport b = CheckSeparabilityExhaustive(TinySystem(false));
  EXPECT_EQ(a.states_explored, b.states_explored);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.pairs_checked, b.pairs_checked);
}

// Every observable field of the report, compared exactly. The parallel
// checker promises a report BYTE-IDENTICAL to the serial one; any drift in
// counters, per-condition stats or violation ordering is a bug.
void ExpectIdenticalReports(const ExhaustiveReport& serial, const ExhaustiveReport& parallel) {
  EXPECT_EQ(serial.states_explored, parallel.states_explored);
  EXPECT_EQ(serial.transitions, parallel.transitions);
  EXPECT_EQ(serial.pairs_checked, parallel.pairs_checked);
  EXPECT_EQ(serial.complete, parallel.complete);
  for (std::size_t c = 0; c < serial.conditions.size(); ++c) {
    EXPECT_EQ(serial.conditions[c].checks, parallel.conditions[c].checks) << "C" << c;
    EXPECT_EQ(serial.conditions[c].violations, parallel.conditions[c].violations) << "C" << c;
  }
  ASSERT_EQ(serial.violations.size(), parallel.violations.size());
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    EXPECT_EQ(serial.violations[i].condition, parallel.violations[i].condition) << i;
    EXPECT_EQ(serial.violations[i].colour, parallel.violations[i].colour) << i;
    EXPECT_EQ(serial.violations[i].step, parallel.violations[i].step) << i;
    EXPECT_EQ(serial.violations[i].description, parallel.violations[i].description) << i;
  }
  // The state-store diagnostics are deterministic too: the merged store and
  // the per-task restore counts are independent of worker scheduling.
  EXPECT_EQ(serial.peak_state_bytes, parallel.peak_state_bytes);
  EXPECT_EQ(serial.restore_count, parallel.restore_count);
  EXPECT_EQ(serial.Summary(), parallel.Summary());
}

TEST(Exhaustive, ParallelReportMatchesSerialOnSecureSystem) {
  ExhaustiveOptions serial_opts;
  serial_opts.threads = 1;
  ExhaustiveOptions parallel_opts;
  parallel_opts.threads = 4;
  ExpectIdenticalReports(CheckSeparabilityExhaustive(TinySystem(false), serial_opts),
                         CheckSeparabilityExhaustive(TinySystem(false), parallel_opts));
}

TEST(Exhaustive, ParallelReportMatchesSerialOnLeakySystem) {
  // The leaky system exercises the hard part of determinism: violations must
  // appear in the same order and be cut off at max_violations at the same
  // point regardless of which worker found them first.
  ExhaustiveOptions serial_opts;
  serial_opts.threads = 1;
  ExhaustiveOptions parallel_opts;
  parallel_opts.threads = 4;
  ExhaustiveReport serial = CheckSeparabilityExhaustive(TinySystem(true), serial_opts);
  ExhaustiveReport parallel = CheckSeparabilityExhaustive(TinySystem(true), parallel_opts);
  ASSERT_FALSE(serial.Passed());
  ExpectIdenticalReports(serial, parallel);
}

TEST(Exhaustive, ParallelReportMatchesSerialUnderStateBudget) {
  // Truncation order matters too: the overflow flag and the exact set of
  // interned states depend on BFS order, which must not vary with threads.
  ExhaustiveOptions serial_opts;
  serial_opts.threads = 1;
  serial_opts.max_states = 50;
  ExhaustiveOptions parallel_opts = serial_opts;
  parallel_opts.threads = 4;
  ExhaustiveReport serial = CheckSeparabilityExhaustive(TinySystem(false), serial_opts);
  ExhaustiveReport parallel = CheckSeparabilityExhaustive(TinySystem(false), parallel_opts);
  EXPECT_FALSE(serial.complete);
  ExpectIdenticalReports(serial, parallel);
}

TEST(Exhaustive, ZeroThreadsMeansHardwareConcurrency) {
  ExhaustiveOptions opts;
  opts.threads = 0;  // all hardware threads
  ExhaustiveReport report = CheckSeparabilityExhaustive(TinySystem(false), opts);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.Passed());
}

}  // namespace
}  // namespace sep
