// Edge-case coverage for the SIMPL lexer/parser (src/ifa/parser.cpp):
// malformed tokens, declaration errors, unterminated constructs, operator
// precedence, and unary operators.
#include <gtest/gtest.h>

#include "src/ifa/parser.h"

namespace sep {
namespace {

testing::AssertionResult RejectsWith(const std::string& source, const std::string& needle) {
  Result<std::unique_ptr<Program>> program = ParseSimpl(source);
  if (program.ok()) {
    return testing::AssertionFailure() << "parsed unexpectedly";
  }
  if (program.error().find(needle) == std::string::npos) {
    return testing::AssertionFailure()
           << "error \"" << program.error() << "\" does not mention \"" << needle << "\"";
  }
  return testing::AssertionSuccess();
}

TEST(SimplParser, UnexpectedCharacter) {
  EXPECT_TRUE(RejectsWith("var x : LOW;\nx := 1 $ 2;\n", "unexpected character '$'"));
}

TEST(SimplParser, DuplicateVariable) {
  EXPECT_TRUE(RejectsWith("var x : LOW;\nvar x : LOW;\n", "duplicate variable x"));
}

TEST(SimplParser, AssignmentToUndeclaredVariable) {
  EXPECT_TRUE(RejectsWith("y := 1;\n", "assignment to undeclared variable y"));
}

TEST(SimplParser, UndeclaredVariableInExpression) {
  EXPECT_TRUE(RejectsWith("var x : LOW;\nx := ghost;\n", "undeclared variable ghost"));
}

TEST(SimplParser, UnterminatedBlock) {
  EXPECT_TRUE(RejectsWith("var x : LOW;\nif x { x := 1;\n", "unterminated block"));
}

TEST(SimplParser, MissingSemicolon) {
  EXPECT_TRUE(RejectsWith("var x : LOW;\nx := 1\n", "expected ';'"));
}

TEST(SimplParser, MissingAssignOperator) {
  EXPECT_TRUE(RejectsWith("var x : LOW;\nx 1;\n", "expected ':='"));
}

TEST(SimplParser, DeclarationNeedsClass) {
  EXPECT_TRUE(RejectsWith("var x;\n", "expected ':'"));
}

TEST(SimplParser, ExpressionNeedsOperand) {
  EXPECT_TRUE(RejectsWith("var x : LOW;\nx := 1 + ;\n", "expected expression"));
}

TEST(SimplParser, ErrorsCarryLineNumbers) {
  Result<std::unique_ptr<Program>> program =
      ParseSimpl("var x : LOW;\nvar y : LOW;\nx := 1 $ 2;\n");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.error().find("line 3"), std::string::npos) << program.error();
}

TEST(SimplParser, CommentsRunToEndOfLine) {
  Result<std::unique_ptr<Program>> program = ParseSimpl(
      "// leading comment with $ % junk\n"
      "var x : LOW; // trailing\n"
      "x := 2;\n");
  ASSERT_TRUE(program.ok()) << program.error();
  ASSERT_EQ((*program)->statements.size(), 1u);
}

TEST(SimplParser, PrecedenceMulBindsTighterThanAdd) {
  Result<std::unique_ptr<Program>> program = ParseSimpl(
      "var x : LOW;\n"
      "x := 1 + 2 * 3;\n");
  ASSERT_TRUE(program.ok()) << program.error();
  const Stmt& assign = *(*program)->statements[0];
  ASSERT_EQ(assign.kind, Stmt::Kind::kAssign);
  const Expr& top = *assign.value;
  ASSERT_EQ(top.kind, Expr::Kind::kBinary);
  EXPECT_EQ(top.bin_op, BinOp::kAdd);
  ASSERT_EQ(top.rhs->kind, Expr::Kind::kBinary);
  EXPECT_EQ(top.rhs->bin_op, BinOp::kMul);
}

TEST(SimplParser, ComparisonsBindTighterThanAnd) {
  Result<std::unique_ptr<Program>> program = ParseSimpl(
      "var x : LOW;\n"
      "x := 1 < 2 && 3 < 4;\n");
  ASSERT_TRUE(program.ok()) << program.error();
  const Expr& top = *(*program)->statements[0]->value;
  ASSERT_EQ(top.kind, Expr::Kind::kBinary);
  EXPECT_EQ(top.bin_op, BinOp::kAnd);
  EXPECT_EQ(top.lhs->bin_op, BinOp::kLt);
  EXPECT_EQ(top.rhs->bin_op, BinOp::kLt);
}

TEST(SimplParser, UnaryOperatorsNest) {
  Result<std::unique_ptr<Program>> program = ParseSimpl(
      "var x : LOW;\n"
      "x := !-1;\n");
  ASSERT_TRUE(program.ok()) << program.error();
  const Expr& top = *(*program)->statements[0]->value;
  ASSERT_EQ(top.kind, Expr::Kind::kUnary);
  EXPECT_EQ(top.un_op, UnOp::kNot);
  ASSERT_EQ(top.lhs->kind, Expr::Kind::kUnary);
  EXPECT_EQ(top.lhs->un_op, UnOp::kNeg);
}

TEST(SimplParser, IfElseAndWhileStructure) {
  Result<std::unique_ptr<Program>> program = ParseSimpl(
      "var x : LOW;\n"
      "if x { x := 1; } else { x := 2; }\n"
      "while x { x := x - 1; }\n");
  ASSERT_TRUE(program.ok()) << program.error();
  ASSERT_EQ((*program)->statements.size(), 2u);
  const Stmt& cond = *(*program)->statements[0];
  EXPECT_EQ(cond.kind, Stmt::Kind::kIf);
  EXPECT_EQ(cond.body.size(), 1u);
  EXPECT_EQ(cond.orelse.size(), 1u);
  const Stmt& loop = *(*program)->statements[1];
  EXPECT_EQ(loop.kind, Stmt::Kind::kWhile);
  EXPECT_EQ(loop.body.size(), 1u);
}

TEST(SimplParser, MultiAtomClassExpression) {
  Result<std::unique_ptr<Program>> program = ParseSimpl(
      "var shared : RED|BLACK;\n"
      "var red_only : RED;\n"
      "shared := 1;\n");
  ASSERT_TRUE(program.ok()) << program.error();
  ASSERT_EQ((*program)->variables.size(), 2u);
}

}  // namespace
}  // namespace sep
