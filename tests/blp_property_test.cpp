// Property sweeps of the Bell-LaPadula reference monitor over randomized
// lattice points: the decision rules as algebraic laws.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/security/blp.h"

namespace sep {
namespace {

SecurityLevel RandomLevel(Rng& rng) {
  return SecurityLevel(static_cast<Classification>(rng.NextBelow(4)),
                       CategorySet(static_cast<std::uint16_t>(rng.Next() & 0x000F)));
}

class BlpLawSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlpLawSweep, DecisionRulesMatchLatticeExactly) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    const SecurityLevel subject_level = RandomLevel(rng);
    const SecurityLevel object_level = RandomLevel(rng);

    BlpMonitor monitor;
    ASSERT_TRUE(monitor.AddSubject({"s", subject_level, subject_level, false}).ok());
    ASSERT_TRUE(monitor.AddObject({"o", object_level}).ok());

    // ss-property: read iff subject dominates object.
    EXPECT_EQ(monitor.Check("s", "o", AccessMode::kRead).granted,
              subject_level.Dominates(object_level));
    // *-property: append iff object dominates subject.
    EXPECT_EQ(monitor.Check("s", "o", AccessMode::kAppend).granted,
              object_level.Dominates(subject_level));
    // write iff levels equal.
    EXPECT_EQ(monitor.Check("s", "o", AccessMode::kWrite).granted,
              subject_level == object_level);
    // delete iff levels equal (untrusted).
    EXPECT_EQ(monitor.Check("s", "o", AccessMode::kDelete).granted,
              subject_level == object_level);
    // execute always.
    EXPECT_TRUE(monitor.Check("s", "o", AccessMode::kExecute).granted);
  }
}

TEST_P(BlpLawSweep, NoReadWritePairEverCrossesLevels) {
  // The composition law behind "no leak": if s can READ o1 and WRITE/APPEND
  // o2, then level(o2) dominates level(o1) — information can only move up.
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 300; ++trial) {
    const SecurityLevel s = RandomLevel(rng);
    const SecurityLevel o1 = RandomLevel(rng);
    const SecurityLevel o2 = RandomLevel(rng);

    BlpMonitor monitor;
    ASSERT_TRUE(monitor.AddSubject({"s", s, s, false}).ok());
    ASSERT_TRUE(monitor.AddObject({"o1", o1}).ok());
    ASSERT_TRUE(monitor.AddObject({"o2", o2}).ok());

    const bool can_read = monitor.Check("s", "o1", AccessMode::kRead).granted;
    const bool can_alter = monitor.Check("s", "o2", AccessMode::kAppend).granted ||
                           monitor.Check("s", "o2", AccessMode::kWrite).granted;
    if (can_read && can_alter) {
      EXPECT_TRUE(o2.Dominates(o1))
          << "leak path: read " << o1.ToString() << " -> alter " << o2.ToString()
          << " at subject level " << s.ToString();
    }
  }
}

TEST_P(BlpLawSweep, TrustedExemptionOnlyWidensAlterDown) {
  // A trusted subject gains exactly the downward alterations; reads are
  // unchanged (trust does not breach the ss-property).
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 300; ++trial) {
    const SecurityLevel s = RandomLevel(rng);
    const SecurityLevel o = RandomLevel(rng);

    BlpMonitor plain;
    ASSERT_TRUE(plain.AddSubject({"s", s, s, false}).ok());
    ASSERT_TRUE(plain.AddObject({"o", o}).ok());
    BlpMonitor trusted;
    ASSERT_TRUE(trusted.AddSubject({"s", s, s, true}).ok());
    ASSERT_TRUE(trusted.AddObject({"o", o}).ok());

    EXPECT_EQ(plain.Check("s", "o", AccessMode::kRead).granted,
              trusted.Check("s", "o", AccessMode::kRead).granted);
    // Everything plain grants, trusted also grants (monotone).
    for (AccessMode mode : {AccessMode::kAppend, AccessMode::kWrite, AccessMode::kDelete}) {
      if (plain.Check("s", "o", mode).granted) {
        EXPECT_TRUE(trusted.Check("s", "o", mode).granted);
      }
    }
    // And any extra grant is a downward alteration.
    for (AccessMode mode : {AccessMode::kAppend, AccessMode::kWrite, AccessMode::kDelete}) {
      BlpMonitor p2;
      ASSERT_TRUE(p2.AddSubject({"s", s, s, false}).ok());
      ASSERT_TRUE(p2.AddObject({"o", o}).ok());
      BlpMonitor t2;
      ASSERT_TRUE(t2.AddSubject({"s", s, s, true}).ok());
      ASSERT_TRUE(t2.AddObject({"o", o}).ok());
      const bool plain_grant = p2.Check("s", "o", mode).granted;
      const bool trusted_grant = t2.Check("s", "o", mode).granted;
      if (trusted_grant && !plain_grant) {
        EXPECT_TRUE(s.Dominates(o));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlpLawSweep, ::testing::Values(1u, 17u, 4242u));

// Link FIFO property across latency/capacity combinations.
}  // namespace
}  // namespace sep
