// End-to-end encryption around the network (paper Section 2): a transmit
// SNFE and a receive SNFE with a shared key, hosts on both ends, ciphertext
// in the middle.
#include <gtest/gtest.h>

#include "src/components/snfe_receive.h"

namespace sep {
namespace {

TEST(SnfePair, HostToHostDelivery) {
  Network net;
  SnfePairTopology topo = BuildSnfePair(net, CensorStrictness::kSyntax, 12);
  net.Run(20000);

  auto& source = static_cast<HostSource&>(net.process(topo.transmit.host));
  auto& sink = static_cast<HostSink&>(net.process(topo.host_rx));
  ASSERT_EQ(sink.packets().size(), source.packets().size());
  for (std::size_t i = 0; i < source.packets().size(); ++i) {
    // The receiving host gets the ORIGINAL cleartext packet back.
    EXPECT_EQ(sink.packets()[i].fields, source.packets()[i].fields) << "packet " << i;
  }
}

TEST(SnfePair, OnlyCiphertextCrossesTheNetwork) {
  Network net;
  SnfePairTopology topo = BuildSnfePair(net, CensorStrictness::kSyntax, 8);

  // Tap "the-network" link by monitoring the words in flight: run the
  // system and capture everything the transmit black emits by checking
  // that no cleartext run appears in any network-bound frame. We re-run
  // the transmit side standalone for the tap.
  net.Run(20000);
  auto& source = static_cast<HostSource&>(net.process(topo.transmit.host));
  auto& sink = static_cast<HostSink&>(net.process(topo.host_rx));
  ASSERT_FALSE(sink.packets().empty());

  // Build a tap variant: transmit side only, ending at a NetworkSink.
  Network tap_net;
  SnfeTopology tap = BuildSnfe(tap_net, CensorStrictness::kSyntax, false, {}, {}, 8);
  tap_net.Run(20000);
  auto& tap_sink = static_cast<NetworkSink&>(tap_net.process(tap.network));
  for (const Frame& packet : source.packets()) {
    std::vector<Word> cleartext(packet.fields.begin() + 3, packet.fields.end());
    EXPECT_FALSE(tap_sink.ContainsCleartext(cleartext));
  }
}

TEST(SnfePair, ReceiveSideCensorGuardsTheInboundBypass) {
  // The receive bypass is censored too: a malformed header arriving from
  // the network is dropped before it reaches the red side.
  Network net;
  struct EvilNetwork : Process {
    FrameWriter writer;
    bool sent = false;
    std::string name() const override { return "evil-net"; }
    void Step(NodeContext& ctx) override {
      if (!sent) {
        // dest out of range; payload word smuggled into the packet.
        Frame net_packet{kPktNet, {9999, 8, 0, 0xAAAA}};
        writer.Queue(net_packet);
        sent = true;
      }
      writer.Flush(ctx, 0);
    }
  };
  int evil = net.AddNode(std::make_unique<EvilNetwork>());
  int black_rx = net.AddNode(std::make_unique<BlackReceiver>());
  int crypto_rx = net.AddNode(std::make_unique<CryptoBox>(1));
  int censor_rx = net.AddNode(std::make_unique<Censor>(CensorStrictness::kSyntax));
  int red_rx = net.AddNode(std::make_unique<RedReceiver>());
  auto host_owned = std::make_unique<HostSink>();
  HostSink* host = host_owned.get();
  int host_rx = net.AddNode(std::move(host_owned));
  net.Connect(evil, black_rx);
  net.Connect(black_rx, crypto_rx);
  net.Connect(black_rx, censor_rx);
  net.Connect(censor_rx, red_rx);
  net.Connect(crypto_rx, red_rx);
  net.Connect(red_rx, host_rx);
  net.Run(500);

  // The decrypted payload waits forever for a header that never clears
  // review: the host receives nothing.
  EXPECT_TRUE(host->packets().empty());
  auto& censor = static_cast<Censor&>(net.process(censor_rx));
  EXPECT_EQ(censor.stats().dropped, 1u);
}

TEST(SnfePair, TopologyHasNoCleartextPathAroundTheCrypto) {
  Network net;
  SnfePairTopology topo = BuildSnfePair(net, CensorStrictness::kSyntax, 4);
  // Structural audit: every path from the transmit red to the receive host
  // passes through either a crypto or a censor node. Equivalently: remove
  // crypto+censor nodes and red must not reach the receive host. Our
  // Network has no node-removal; audit edges directly instead — red's only
  // outbound lines go to crypto and censor.
  int red_out = 0;
  for (const auto& edge : net.edges()) {
    if (edge.from == topo.transmit.red) {
      ++red_out;
      EXPECT_TRUE(edge.to == topo.transmit.crypto || edge.to == topo.transmit.censor)
          << "unexpected red outbound line: " << edge.name;
    }
  }
  EXPECT_EQ(red_out, 2);
  // And the receive red's only inbound lines come from its crypto/censor.
  for (const auto& edge : net.edges()) {
    if (edge.to == topo.red_rx) {
      EXPECT_TRUE(edge.from == topo.crypto_rx || edge.from == topo.censor_rx)
          << "unexpected red-rx inbound line: " << edge.name;
    }
  }
}

}  // namespace
}  // namespace sep
