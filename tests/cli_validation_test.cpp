// End-to-end CLI input validation: every tool must reject malformed numeric
// arguments with a non-zero exit and a usage message, and must exit 0 on
// --help. Runs the real binaries as subprocesses (SEP_TOOLS_DIR is injected
// by tests/CMakeLists.txt); each rejection here was a silent-zero bug when
// the tools still used atoi/strtod with no end-pointer checks.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <string>

namespace sep {
namespace {

std::string Tool(const char* name) { return std::string(SEP_TOOLS_DIR) + "/" + name; }

// Runs `cmd` silenced, returns the exit code (-1 if it did not exit cleanly).
int RunTool(const std::string& cmd) {
  const int status = std::system((cmd + " >/dev/null 2>&1").c_str());
  if (status == -1 || !WIFEXITED(status)) {
    return -1;
  }
  return WEXITSTATUS(status);
}

TEST(CliValidation, HelpExitsZeroEverywhere) {
  EXPECT_EQ(RunTool(Tool("sm11run") + " --help"), 0);
  EXPECT_EQ(RunTool(Tool("sepcheck") + " --help"), 0);
  EXPECT_EQ(RunTool(Tool("chaos_run") + " --help"), 0);
  EXPECT_EQ(RunTool(Tool("bench_report") + " --help"), 0);
  EXPECT_EQ(RunTool(Tool("sep_trace") + " --help"), 0);
}

TEST(CliValidation, Sm11RunRejectsBadNumbers) {
  EXPECT_EQ(RunTool(Tool("sm11run") + " --steps 12x prog.s"), 2);
  EXPECT_EQ(RunTool(Tool("sm11run") + " --steps 0 prog.s"), 2);      // must be >= 1
  EXPECT_EQ(RunTool(Tool("sm11run") + " --dump 0x10000 4 prog.s"), 2);  // > 16-bit
  EXPECT_EQ(RunTool(Tool("sm11run") + " --bogus prog.s"), 2);
  EXPECT_EQ(RunTool(Tool("sm11run")), 2);  // no program
}

TEST(CliValidation, Sm11RunValidatesSuperblockFlag) {
  // Strict on|off: anything else is a usage error, and a missing value must
  // not silently swallow the program path.
  EXPECT_EQ(RunTool(Tool("sm11run") + " --superblock yes prog.s"), 2);
  EXPECT_EQ(RunTool(Tool("sm11run") + " --superblock 1 prog.s"), 2);
  EXPECT_EQ(RunTool(Tool("sm11run") + " --superblock"), 2);
  // Valid values reach the file loader (exit 1: prog.s does not exist).
  EXPECT_EQ(RunTool(Tool("sm11run") + " --superblock on prog.s"), 1);
  EXPECT_EQ(RunTool(Tool("sm11run") + " --superblock off prog.s"), 1);
}

TEST(CliValidation, SepcheckRejectsBadNumbers) {
  EXPECT_EQ(RunTool(Tool("sepcheck") + " --jobs x --all"), 2);
  EXPECT_EQ(RunTool(Tool("sepcheck") + " --jobs -1 --all"), 2);
  EXPECT_EQ(RunTool(Tool("sepcheck") + " --words 0 guest.s"), 2);  // must be >= 1
  EXPECT_EQ(RunTool(Tool("sepcheck") + " --devices 9999 guest.s"), 2);
  // --obligations needs a real path operand, not a following flag.
  EXPECT_EQ(RunTool(Tool("sepcheck") + " --all --obligations"), 2);
  EXPECT_EQ(RunTool(Tool("sepcheck") + " --all --obligations --json"), 2);
}

// Runs `cmd` exactly as given (the caller owns any redirections), returns
// the exit code.
int RunToolRaw(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  if (status == -1 || !WIFEXITED(status)) {
    return -1;
  }
  return WEXITSTATUS(status);
}

// Reads a whole file; empty string if it cannot be opened.
std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

TEST(CliValidation, SepcheckParallelRunIsByteIdenticalToSerial) {
  // The findings text and the obligation ledger must not depend on --jobs:
  // entries are analyzed in parallel but buffered and emitted in catalogue
  // order.
  const std::string dir = testing::TempDir();
  const std::string serial = dir + "/sepcheck_serial.out";
  const std::string parallel = dir + "/sepcheck_parallel.out";
  const std::string serial_obl = dir + "/sepcheck_serial.json";
  const std::string parallel_obl = dir + "/sepcheck_parallel.json";
  ASSERT_EQ(RunToolRaw(Tool("sepcheck") + " --all --obligations " + serial_obl +
                       " > " + serial + " 2>/dev/null"),
            0);
  ASSERT_EQ(RunToolRaw(Tool("sepcheck") + " --all --jobs 4 --obligations " +
                       parallel_obl + " > " + parallel + " 2>/dev/null"),
            0);
  const std::string serial_text = Slurp(serial);
  ASSERT_FALSE(serial_text.empty());
  EXPECT_EQ(serial_text, Slurp(parallel));
  const std::string ledger = Slurp(serial_obl);
  ASSERT_FALSE(ledger.empty());
  EXPECT_EQ(ledger, Slurp(parallel_obl));
}

TEST(CliValidation, CheckObligationsGatesTheLedger) {
  const std::string dir = testing::TempDir();
  const std::string ledger = dir + "/obligations.json";
  ASSERT_EQ(RunTool(Tool("sepcheck") + " --all --obligations " + ledger), 0);
  EXPECT_EQ(RunTool(Tool("check_obligations") + " " + ledger), 0);
  EXPECT_EQ(RunTool(Tool("check_obligations") + " /nonexistent/ledger.json"), 2);
  EXPECT_EQ(RunTool(Tool("check_obligations")), 2);

  // A ledger claiming certification with an open obligation must fail.
  const std::string forged = dir + "/forged.json";
  std::string text = Slurp(ledger);
  const std::string from = "\"status\":\"proved\"";
  const std::size_t at = text.find(from);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, from.size(), "\"status\":\"open\"");
  std::ofstream(forged) << text;
  EXPECT_EQ(RunTool(Tool("check_obligations") + " " + forged), 1);
}

TEST(CliValidation, ChaosRunRejectsBadNumbers) {
  EXPECT_EQ(RunTool(Tool("chaos_run") + " -5"), 2);       // the atoi(-5) trap
  EXPECT_EQ(RunTool(Tool("chaos_run") + " abc"), 2);
  EXPECT_EQ(RunTool(Tool("chaos_run") + " 12 34 56"), 2); // too many positionals
  EXPECT_EQ(RunTool(Tool("chaos_run") + " 0"), 2);        // zero packets
}

TEST(CliValidation, ChaosRunRejectsBadSweepArguments) {
  EXPECT_EQ(RunTool(Tool("chaos_run") + " --seed-range 5"), 2);      // no ..
  EXPECT_EQ(RunTool(Tool("chaos_run") + " --seed-range 9..3"), 2);   // reversed
  EXPECT_EQ(RunTool(Tool("chaos_run") + " --seed-range a..b"), 2);
  EXPECT_EQ(RunTool(Tool("chaos_run") + " --seed-range"), 2);        // missing value
  EXPECT_EQ(RunTool(Tool("chaos_run") + " --seed-range 0..1 --rate 99"), 2);
  EXPECT_EQ(RunTool(Tool("chaos_run") + " --replay /nonexistent/path.sched"), 2);
}

TEST(CliValidation, ChaosRunValidatesBatchWords) {
  // The batched-fabric segment size must be a real integer in [1, 64]
  // (kMaxBatchWords); rejections are usage errors, not silent clamps.
  EXPECT_EQ(RunTool(Tool("chaos_run") + " --batch-words 0"), 2);
  EXPECT_EQ(RunTool(Tool("chaos_run") + " --batch-words -5"), 2);
  EXPECT_EQ(RunTool(Tool("chaos_run") + " --batch-words abc"), 2);
  EXPECT_EQ(RunTool(Tool("chaos_run") + " --batch-words 65"), 2);  // > kMaxBatchWords
  EXPECT_EQ(RunTool(Tool("chaos_run") + " --batch-words"), 2);     // missing value
}

TEST(CliValidation, BenchReportRejectsBadNumbers) {
  EXPECT_EQ(RunTool(Tool("bench_report") + " --tolerance abc"), 2);
  EXPECT_EQ(RunTool(Tool("bench_report") + " --tolerance -0.5"), 2);
  EXPECT_EQ(RunTool(Tool("bench_report") + " --jobs x"), 2);
  EXPECT_EQ(RunTool(Tool("bench_report") + " --bogus"), 2);
}

TEST(CliValidation, BenchReportRejectsMalformedBaseline) {
  // A --compare file without the sep-bench-v1 schema marker must be a clean
  // exit-2 diagnostic (pre-flight, before any benchmark runs), not a crash
  // or a silently-empty comparison.
  const std::string path = testing::TempDir() + "/not_a_baseline.json";
  std::ofstream(path) << "{\"schema\": \"something-else\"}\n";
  EXPECT_EQ(RunTool(Tool("bench_report") + " --compare " + path), 2);
  EXPECT_EQ(RunTool(Tool("bench_report") + " --compare /nonexistent/baseline.json"), 2);
}

TEST(CliValidation, SepTraceRejectsBadArguments) {
  EXPECT_EQ(RunTool(Tool("sep_trace")), 2);  // no guests
  EXPECT_EQ(RunTool(Tool("sep_trace") + " --steps abc guest.s"), 2);
  EXPECT_EQ(RunTool(Tool("sep_trace") + " --colour 99 guest.s"), 2);
  EXPECT_EQ(RunTool(Tool("sep_trace") + " --format bogus guest.s"), 2);
  EXPECT_EQ(RunTool(Tool("sep_trace") + " --format canonical guest.s"), 2);  // no --colour
  EXPECT_EQ(RunTool(Tool("sep_trace") + " --exhaustive abc guest.s"), 2);
  EXPECT_EQ(RunTool(Tool("sep_trace") + " --exhaustive 0 guest.s"), 2);
  EXPECT_EQ(RunTool(Tool("sep_trace") + " --exhaustive -5 guest.s"), 2);
}

}  // namespace
}  // namespace sep
