// The paper's Section 2 "special services" argument, made concrete:
//
//   "the printer-server may need to co-operate with the file-server and may
//    require services from the file-server that are different from those
//    provided to ordinary users (for example, the ability to delete spool
//    files of all security classifications)."
//
// The crucial design point: the special service is NOT an exemption from
// the rules. The printer-server holds one dedicated line to the file-server
// PER LEVEL it prints; each line is an ordinary subject at that one level.
// "Deleting spool files of all classifications" decomposes into N perfectly
// ordinary same-level deletions — precisely specifiable, fully understood.
#include <gtest/gtest.h>

#include "src/components/fileserver.h"

namespace sep {
namespace {

SecurityLevel LevelOf(int i) { return SecurityLevel(static_cast<Classification>(i)); }

TEST(Cooperation, PrinterDeletesSpoolOfEveryLevelViaPerLevelLines) {
  CategoryRegistry::Instance().Reset();

  // File-server lines: four user lines (one per level) and four
  // printer-service lines (one per level).
  std::vector<FileServerUser> users;
  for (int level = 0; level < 4; ++level) {
    users.push_back({"user" + std::to_string(level), LevelOf(level)});
  }
  for (int level = 0; level < 4; ++level) {
    users.push_back({"printer@" + std::to_string(level), LevelOf(level)});
  }

  // Each user spools one job (a file at the user's level); each printer
  // line later reads and deletes the spool at ITS level.
  std::vector<std::vector<Frame>> scripts;
  for (int level = 0; level < 4; ++level) {
    const std::string spool = "spool/job" + std::to_string(level);
    scripts.push_back({FsCreate(LevelOf(level), spool), FsWrite(spool, {0x100, 0x200})});
  }
  for (int level = 0; level < 4; ++level) {
    const std::string spool = "spool/job" + std::to_string(level);
    scripts.push_back({FsRead(spool, 0, 2), FsDelete(spool)});
  }

  Network net;
  auto server_owned = std::make_unique<FileServer>(users);
  FileServer* server = server_owned.get();
  int server_node = net.AddNode(std::move(server_owned));
  std::vector<FileClient*> clients;
  for (std::size_t i = 0; i < users.size(); ++i) {
    // Printer lines start later so the spools exist first.
    const Tick delay = i >= 4 ? 60 : 0;
    auto client = std::make_unique<FileClient>(users[i].name, scripts[i], delay);
    clients.push_back(client.get());
    int node = net.AddNode(std::move(client));
    net.Connect(node, server_node);
    net.Connect(server_node, node);
  }
  net.Run(5000);

  // Every spool was read and deleted by the printer's matching-level line.
  EXPECT_EQ(server->file_count(), 0u);
  for (int level = 0; level < 4; ++level) {
    const auto& replies = clients[static_cast<std::size_t>(4 + level)]->replies();
    ASSERT_EQ(replies.size(), 2u) << "printer line " << level;
    EXPECT_EQ(replies[0].type, kFsData) << "printer read at level " << level;
    EXPECT_EQ(replies[1].type, kFsOk) << "printer delete at level " << level;
  }
  // And not a single denial or exemption was needed anywhere.
  EXPECT_EQ(server->monitor().denied_count(), 0u);
}

TEST(Cooperation, SingleHighPrinterLineCannotDoTheJob) {
  // The contrast: ONE printer line at system-high can read every spool but
  // can delete none below its level — the kernelized spooler dilemma
  // reappears the moment the per-level structure is given up.
  CategoryRegistry::Instance().Reset();
  std::vector<FileServerUser> users = {
      {"user0", LevelOf(0)},
      {"printer@high", SecurityLevel(Classification::kTopSecret)},
  };
  std::vector<std::vector<Frame>> scripts = {
      {FsCreate(LevelOf(0), "spool/low")},
      {FsRead("spool/low", 0, 1), FsDelete("spool/low")},
  };

  Network net;
  auto server_owned = std::make_unique<FileServer>(users);
  FileServer* server = server_owned.get();
  int server_node = net.AddNode(std::move(server_owned));
  std::vector<FileClient*> clients;
  for (std::size_t i = 0; i < users.size(); ++i) {
    auto client = std::make_unique<FileClient>(users[i].name, scripts[i], i == 1 ? 40 : 0);
    clients.push_back(client.get());
    int node = net.AddNode(std::move(client));
    net.Connect(node, server_node);
    net.Connect(server_node, node);
  }
  net.Run(3000);

  const auto& replies = clients[1]->replies();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].type, kFsData);  // reading down: fine
  EXPECT_EQ(replies[1].type, kFsErr);   // deleting down: the dilemma
  EXPECT_TRUE(server->HasFile("spool/low"));
  EXPECT_GE(server->monitor().denied_count(), 1u);
}

}  // namespace
}  // namespace sep
