// E17: per-colour trace equivalence — the observability layer's colour
// tagging is itself subject to the paper's security argument.
//
// The canonical per-colour trace (obs::CanonicalColourTrace) of a regime in
// the SHARED kernelized machine must be byte-identical to the trace of the
// same guest running ALONE as the sole regime of its own kernel. Events that
// appear in, vanish from, or move within a regime's canonical trace because
// strangers share the processor would BE an information channel — the
// dynamic analogue of Φ^c equality across deployments (E11).
//
// The negative control runs the shared machine under an injected kernel
// defect (broadcast_interrupts: every regime learns of every interrupt) and
// demands the victim's trace now DIFFER — a trace check that could not see
// the defect would be vacuous.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/kernel_system.h"
#include "src/machine/devices.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace sep {
namespace {

// Interrupt-driven echo guest (same shape as the E11 guests): AWAITs, and
// the handler transmits every received word + 1. All interrupt deliveries
// are anchored to the guest's own kernel-call stream: the first delivery
// lands right after IE is enabled (the guest runs uninterleaved from boot in
// both deployments), later ones chain at RETI while the input queue drains.
constexpr char kEcho[] = R"(
        .EQU DEV, 0xE000
START:  CLR R0
        MOV #HANDLER, R1
        TRAP 4          ; SETVEC
        MOV #DEV, R4
        MOV #0x40, (R4) ; RCSR IE
LOOP:   TRAP 6          ; AWAIT
        BR LOOP
HANDLER:
        MOV #DEV, R4
        MOV 1(R4), R2   ; RBUF
        INC R2
WAITTX: MOV 2(R4), R3   ; XCSR
        BIT #0x80, R3
        BEQ WAITTX
        MOV R2, 3(R4)   ; XBUF
        TRAP 5          ; RETI
)";

struct TraceRun {
  std::string canonical;           // canonical colour-0 trace
  std::vector<obs::TraceEvent> events;
  std::vector<Word> output;        // colour 0's transmitted words
};

// Runs `guests` guests (all kEcho, one serial line each) for `steps` machine
// steps with the given stimulus injected into EVERY guest's receiver before
// the run, recording the trace. Returns colour 0's canonical trace.
TraceRun RunEchoSystem(int guests, const std::vector<Word>& stimulus, std::size_t steps,
                       const KernelFaults* faults = nullptr) {
  SystemBuilder builder;
  std::vector<int> slots;
  for (int g = 0; g < guests; ++g) {
    slots.push_back(builder.AddDevice(std::make_unique<SerialLine>(
        "slu" + std::to_string(g), 16 + g * 2, 4, /*transmit_delay=*/2)));
  }
  for (int g = 0; g < guests; ++g) {
    Result<int> regime =
        builder.AddRegime("guest" + std::to_string(g), 512, kEcho, {slots[g]});
    EXPECT_TRUE(regime.ok()) << regime.error();
  }
  if (faults != nullptr) {
    builder.WithFaults(*faults);
  }
  Result<std::unique_ptr<KernelizedSystem>> system = builder.Build();
  EXPECT_TRUE(system.ok()) << system.error();

  for (int g = 0; g < guests; ++g) {
    for (Word w : stimulus) {
      (*system)->machine().device(slots[g]).InjectInput(w);
    }
  }

  obs::Recorder().Start(std::size_t{1} << 16);
  (*system)->Run(steps);
  obs::Recorder().Stop();

  TraceRun run;
  run.events = obs::Recorder().Drain();
  run.canonical = obs::CanonicalColourTrace(run.events, 0);
  run.output = (*system)->machine().device(slots[0]).DrainOutput();
  return run;
}

// THE headline property: the victim regime's canonical trace in the shared
// deployment is byte-identical to its trace running alone.
TEST(ObsTraceEquivalence, SharedTraceEqualsAloneTrace) {
  const std::vector<Word> stimulus = {10, 20, 30, 40};
  const TraceRun shared = RunEchoSystem(/*guests=*/2, stimulus, /*steps=*/20000);
  const TraceRun alone = RunEchoSystem(/*guests=*/1, stimulus, /*steps=*/20000);

  // Sanity: both deployments actually did the work (echoed every word)...
  EXPECT_EQ(shared.output, (std::vector<Word>{11, 21, 31, 41}));
  EXPECT_EQ(alone.output, (std::vector<Word>{11, 21, 31, 41}));
  // ...and the trace is not vacuously empty: one delivery per word reached
  // colour 0's canonical view.
  EXPECT_NE(shared.canonical.find("irq-deliver"), std::string::npos);
  EXPECT_NE(shared.canonical.find("kernel-call"), std::string::npos);

  // The security check proper: byte equality.
  EXPECT_EQ(shared.canonical, alone.canonical)
      << "shared:\n" << shared.canonical << "\nalone:\n" << alone.canonical;
}

// Three-guest variant: more strangers, same victim view.
TEST(ObsTraceEquivalence, ThreeGuestSharedTraceEqualsAloneTrace) {
  const std::vector<Word> stimulus = {7, 8, 9};
  const TraceRun shared = RunEchoSystem(/*guests=*/3, stimulus, /*steps=*/30000);
  const TraceRun alone = RunEchoSystem(/*guests=*/1, stimulus, /*steps=*/30000);
  EXPECT_EQ(shared.canonical, alone.canonical);
}

// Negative control: under the broadcast_interrupts kernel defect every
// regime's pending mask sees every interrupt, so the victim receives
// spurious deliveries — its canonical trace MUST change, or this check
// could never catch a real isolation failure.
TEST(ObsTraceEquivalence, DefectiveKernelBreaksTraceEquivalence) {
  const std::vector<Word> stimulus = {10, 20, 30, 40};
  KernelFaults faults;
  faults.broadcast_interrupts = true;
  const TraceRun shared = RunEchoSystem(/*guests=*/2, stimulus, /*steps=*/20000, &faults);
  const TraceRun alone = RunEchoSystem(/*guests=*/1, stimulus, /*steps=*/20000);

  EXPECT_NE(shared.canonical, alone.canonical)
      << "broadcast_interrupts went unnoticed by the canonical trace";
}

// The kernel-internal row (dispatch, MMU remaps) legitimately differs across
// deployments — which is exactly why kColourKernel events are excluded from
// every canonical view. Guard that exclusion.
TEST(ObsTraceEquivalence, KernelInternalEventsStayOutOfColourViews) {
  const std::vector<Word> stimulus = {5};
  const TraceRun shared = RunEchoSystem(/*guests=*/2, stimulus, /*steps=*/10000);
  EXPECT_EQ(shared.canonical.find("dispatch"), std::string::npos);
  EXPECT_EQ(shared.canonical.find("mmu-remap"), std::string::npos);
  EXPECT_EQ(shared.canonical.find("irq-forward"), std::string::npos);

  bool saw_kernel_internal = false;
  for (const obs::TraceEvent& e : shared.events) {
    if (e.colour == obs::kColourKernel &&
        (e.code == obs::Code::kDispatch || e.code == obs::Code::kMmuRemap)) {
      saw_kernel_internal = true;
    }
    // No canonical-view code may ever carry the kernel colour.
    if (obs::ColourObservable(e.code)) {
      EXPECT_NE(e.colour, obs::kColourKernel) << "observable event without a regime colour";
    }
  }
  EXPECT_TRUE(saw_kernel_internal) << "instrumentation lost the kernel-internal events";
}

}  // namespace
}  // namespace sep
