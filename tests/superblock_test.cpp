// Superblocks must be invisible: batched Run with superblocks on is
// bit-identical to Run with them off and to repeated Step(), across traps,
// interrupts, self-modifying code, MMU remaps and restore-from-snapshot.
// These tests drive a superblock machine through Run() (the only path that
// builds or executes traces) against Step()-driven references with the
// predecode cache off, comparing complete state hashes.
#include <gtest/gtest.h>

#include <string>

#include "src/machine/devices.h"
#include "src/machine/machine.h"
#include "src/sm11asm/assembler.h"
#include "tests/test_util.h"

namespace sep {
namespace {

void LoadProgram(Machine& m, const std::string& source) {
  Result<AssembledProgram> p = Assemble(source);
  ASSERT_TRUE(p.ok()) << p.error();
  m.memory().LoadImage(p->base, p->words);
  m.cpu().set_pc(p->EntryPoint());
  m.cpu().set_sp(0x1000);
}

// A hot loop long past the build threshold: every iteration takes the
// backward BNE, so the LOOP entry becomes a superblock anchor quickly.
constexpr char kHotLoop[] = R"(
START:  CLR R0
        CLR R1
LOOP:   INC R0
        ADD R0, R1
        MOV R1, @0x300
        CMP #600, R0
        BNE LOOP
        HALT
)";

// The predecode suite's mixed workload: every direct form, TRAP through the
// vector table, RTI, and a HALT after 40 iterations.
constexpr char kMixedProgram[] = R"(
        .ORG 0x100
START:  CLR R0
        CLR R5
LOOP:   INC R0
        ADD R0, R1
        SUB #1, R2
        MOV R1, @0x300
        CMP #40, R0
        BIT #1, R0
        BNE SKIP
        COM R3
SKIP:   BIC #8, R1
        BIS #2, R4
        XOR R0, R3
        NEG R3
        ASL R1
        ASR R1
        DEC R2
        TST R2
        BMI NEG1
NEG1:   BPL POS1
POS1:   BCS CAR1
CAR1:   BCC NOC1
NOC1:   BVS OVF1
OVF1:   BVC NOV1
NOV1:   BLT LT1
LT1:    BGE GE1
GE1:    BGT GT1
GT1:    BLE LE1
LE1:    TRAP 3
        CMP #40, R0
        BNE LOOP
        HALT
        .ORG 0x200
HANDLER:
        INC R5
        RTI
)";

void LoadMixedProgram(Machine& m) {
  LoadProgram(m, kMixedProgram);
  m.memory().Write(kVectorTrap, 0x200);  // handler PC
  m.memory().Write(kVectorTrap + 1, 0);  // handler PSW: kernel, priority 0
  m.cpu().set_pc(0x100);
}

// Runs `fast` in Run() batches of `chunk` and `ref` by single Step()s,
// asserting identical state at every batch boundary until `fast` halts or
// `total` steps elapse.
void ExpectChunkedRunParity(Machine& fast, Machine& ref, std::size_t chunk,
                            std::size_t total) {
  std::size_t done = 0;
  while (done < total && !fast.halted()) {
    const std::size_t ran = fast.Run(chunk);
    for (std::size_t i = 0; i < ran; ++i) {
      ref.Step();
    }
    done += ran;
    ASSERT_EQ(fast.StateHash(), ref.StateHash())
        << "diverged after " << done << " steps (chunk " << chunk << ")";
    if (ran < chunk) {
      break;
    }
  }
  ASSERT_EQ(fast.halted(), ref.halted());
}

TEST(SuperblockParity, HotLoopBuildsAndMatchesStep) {
  auto fast = MakeBareMachine();
  auto ref = MakeBareMachine();
  ref->set_predecode_enabled(false);
  LoadProgram(*fast, kHotLoop);
  LoadProgram(*ref, kHotLoop);

  ExpectChunkedRunParity(*fast, *ref, 512, 5000);
  EXPECT_TRUE(fast->halted());
  EXPECT_EQ(fast->cpu().regs[0], 600);
  EXPECT_GE(fast->superblock_builds(), 1u);
  EXPECT_GE(fast->superblock_count(), 1u);
}

TEST(SuperblockParity, MixedWorkloadSweepOnOffStep) {
  auto sb_on = MakeBareMachine();
  auto sb_off = MakeBareMachine();
  auto ref = MakeBareMachine();
  sb_off->set_superblock_enabled(false);
  ref->set_predecode_enabled(false);
  LoadMixedProgram(*sb_on);
  LoadMixedProgram(*sb_off);
  LoadMixedProgram(*ref);

  // Run(1) forces the threaded loop to re-enter every step — the harshest
  // interleaving of superblock entry, budget exhaustion and trap dispatch.
  for (int i = 0; i < 2000 && !ref->halted(); ++i) {
    (void)sb_on->Run(1);
    (void)sb_off->Run(1);
    ref->Step();
    ASSERT_EQ(sb_on->StateHash(), ref->StateHash()) << "sb-on diverged at step " << i;
    ASSERT_EQ(sb_off->StateHash(), ref->StateHash()) << "sb-off diverged at step " << i;
  }
  EXPECT_TRUE(sb_on->halted());
  EXPECT_EQ(sb_on->cpu().regs[0], 40);
  EXPECT_EQ(sb_on->cpu().regs[5], 40);  // every iteration trapped and returned
  EXPECT_EQ(sb_off->superblock_builds(), 0u);
}

TEST(SuperblockParity, ChunkedRunSweep) {
  for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                            std::size_t{64}, std::size_t{1000}}) {
    auto fast = MakeBareMachine();
    auto ref = MakeBareMachine();
    ref->set_predecode_enabled(false);
    LoadMixedProgram(*fast);
    LoadMixedProgram(*ref);
    ExpectChunkedRunParity(*fast, *ref, chunk, 2000);
    EXPECT_TRUE(fast->halted()) << "chunk " << chunk;
    EXPECT_EQ(fast->cpu().regs[0], 40) << "chunk " << chunk;
  }
}

// A guest that overwrites the middle of its own hot loop. The loop runs long
// past the heat threshold, so the patching store lands inside a live
// superblock; the post-store version recheck must stop the trace before the
// next (now stale) stitched instruction executes.
TEST(SuperblockInvalidation, SelfModifyingHotLoopMiddleOverwrite) {
  constexpr char kSelfMod[] = R"(
START:  CLR R0
        CLR R2
LOOP:   INC R2
PATCH:  INC R0
        CMP #64, R2
        BNE NEXT
        MOV NEWOP, @PATCH       ; overwrite the INC R0 word with DEC R0
NEXT:   CMP #128, R2
        BNE LOOP
        HALT
NEWOP:  DEC R0
)";
  auto fast = MakeBareMachine();
  auto ref = MakeBareMachine();
  ref->set_predecode_enabled(false);
  LoadProgram(*fast, kSelfMod);
  LoadProgram(*ref, kSelfMod);

  ExpectChunkedRunParity(*fast, *ref, 128, 4000);
  ASSERT_TRUE(fast->halted());
  // 64 iterations execute INC, then the patch lands and 64 execute DEC: R0
  // ends at 0. A superblock that kept serving the stitched INC would not.
  EXPECT_EQ(fast->cpu().regs[0], 0);
  EXPECT_GE(fast->superblock_builds(), 1u);
  EXPECT_GE(fast->superblock_invalidations(), 1u);
}

// Kernel-driven MMU reprogramming landing on a live superblock, both ways a
// remap can land: (1) the mapping changes but the anchor stays reachable
// (page limit shrinks) — the hoisted mapping guard must catch it on entry
// and invalidate; (2) the page is swung onto a different physical frame —
// the fetch re-translates to new code and the stale trace, anchored on the
// old frame, simply never executes again (lazy invalidation).
TEST(SuperblockInvalidation, MmuRemapWithLiveSuperblocks) {
  auto fast = MakeBareMachine();
  auto ref = MakeBareMachine();
  ref->set_predecode_enabled(false);

  Result<AssembledProgram> a = Assemble("LOOP: INC R0\n      BR LOOP\n");
  Result<AssembledProgram> b = Assemble("LOOP: INC R1\n      BR LOOP\n");
  ASSERT_TRUE(a.ok() && b.ok());
  for (Machine* m : {fast.get(), ref.get()}) {
    m->memory().LoadImage(0, a->words);
    m->memory().LoadImage(kPageWords, b->words);
    m->cpu().set_pc(0);
    m->cpu().set_sp(0x1000);
  }

  ExpectChunkedRunParity(*fast, *ref, 100, 200);
  ASSERT_GE(fast->superblock_builds(), 1u);
  const std::uint64_t invalidations_before = fast->superblock_invalidations();

  // (1) Shrink page 0's limit, keeping the base: the loop still fetches
  // fine, but the entry guard recorded the old limit, so the superblock
  // must die and rebuild under the new mapping.
  for (Machine* m : {fast.get(), ref.get()}) {
    m->mmu().SetPage(CpuMode::kKernel, 0, {0, 0x1000, PageAccess::kReadWrite});
  }
  ExpectChunkedRunParity(*fast, *ref, 100, 200);
  EXPECT_GT(fast->superblock_invalidations(), invalidations_before);
  ASSERT_GE(fast->superblock_builds(), 2u);  // rebuilt after the guard tripped

  // (2) Swing virtual page 0 onto frame B; the very next fetch must execute
  // frame B's code even though frame A's superblock may still be anchored.
  for (Machine* m : {fast.get(), ref.get()}) {
    m->mmu().SetPage(CpuMode::kKernel, 0, {kPageWords, kPageWords, PageAccess::kReadWrite});
    m->cpu().set_pc(0);
  }
  const Word r0_at_remap = fast->cpu().regs[0];
  ExpectChunkedRunParity(*fast, *ref, 100, 200);
  EXPECT_EQ(fast->cpu().regs[0], r0_at_remap);
  EXPECT_GT(fast->cpu().regs[1], 0);
}

// RestoreFull into a machine with live superblocks — the exhaustive-checker
// path: the snapshot carries different code for the same addresses, so the
// stitched traces must die through the version guards RestoreWords bumps.
TEST(SuperblockInvalidation, RestoreFullWithLiveSuperblocks) {
  auto fast = MakeBareMachine();
  auto donor = MakeBareMachine();
  auto ref = MakeBareMachine();
  ref->set_predecode_enabled(false);

  LoadProgram(*fast, "LOOP: INC R0\n      ADD R0, R2\n      BR LOOP\n");
  LoadProgram(*donor, "LOOP: INC R1\n      SUB R1, R3\n      BR LOOP\n");
  (void)fast->Run(400);
  ASSERT_GE(fast->superblock_builds(), 1u);
  ASSERT_GE(fast->superblock_count(), 1u);
  (void)donor->Run(123);

  const std::vector<Word> snapshot = donor->SnapshotFull();
  ASSERT_TRUE(fast->RestoreFull(snapshot));
  ASSERT_TRUE(ref->RestoreFull(snapshot));
  ASSERT_EQ(fast->StateHash(), donor->StateHash());

  // The restored machine must run the donor's code, not the stitched trace.
  ExpectChunkedRunParity(*fast, *ref, 64, 600);
  EXPECT_GT(fast->cpu().regs[1], donor->cpu().regs[1]);
  EXPECT_GE(fast->superblock_invalidations(), 1u);
}

// A branch that flips against its predicted direction mid-trace takes the
// guarded side exit and re-enters the ordinary dispatch.
TEST(SuperblockSideExit, UnpredictedBranchSideExits) {
  constexpr char kAlternating[] = R"(
START:  CLR R0
        CLR R1
LOOP:   INC R0
        BIT #1, R0
        BNE ODD
        INC R1
ODD:    CMP #300, R0
        BNE LOOP
        HALT
)";
  auto fast = MakeBareMachine();
  auto ref = MakeBareMachine();
  ref->set_predecode_enabled(false);
  LoadProgram(*fast, kAlternating);
  LoadProgram(*ref, kAlternating);

  ExpectChunkedRunParity(*fast, *ref, 256, 4000);
  ASSERT_TRUE(fast->halted());
  EXPECT_EQ(fast->cpu().regs[0], 300);
  EXPECT_EQ(fast->cpu().regs[1], 150);
  EXPECT_GE(fast->superblock_builds(), 1u);
  EXPECT_GE(fast->superblock_side_exits(), 1u);
}

// Interrupt sweep: with a device attached Run() degrades to the stepping
// loop, so superblocks never execute — but the flag must still be inert.
// Drives clock-interrupt vectoring with superblocks on, off, and predecode
// off, in lockstep.
TEST(SuperblockParity, InterruptVectoringSweep) {
  auto make = [](bool predecode, bool superblock) {
    auto m = MakeBareMachine();
    m->set_predecode_enabled(predecode);
    m->set_superblock_enabled(superblock);
    m->AddDevice(std::make_unique<LineClock>("clk", 20, /*priority=*/6, /*interval=*/7));
    Result<AssembledProgram> p =
        Assemble("LOOP: INC R0\n      BR LOOP\n      .ORG 0x80\nISR:  INC R4\n      RTI\n");
    EXPECT_TRUE(p.ok());
    m->memory().LoadImage(0, p->words);
    m->memory().Write(20, 0x80);  // clock vector: ISR PC
    m->memory().Write(21, 0);     // ISR PSW
    m->cpu().set_pc(0);
    m->cpu().set_sp(0x1000);
    m->device(0).WriteRegister(0, kCsrIe);
    return m;
  };
  auto sb_on = make(true, true);
  auto sb_off = make(true, false);
  auto ref = make(false, false);
  for (int i = 0; i < 500; ++i) {
    sb_on->Step();
    sb_off->Step();
    ref->Step();
    ASSERT_EQ(sb_on->StateHash(), ref->StateHash()) << "sb-on diverged at step " << i;
    ASSERT_EQ(sb_off->StateHash(), ref->StateHash()) << "sb-off diverged at step " << i;
  }
  EXPECT_GT(ref->cpu().regs[4], 0);  // interrupts actually delivered
}

TEST(SuperblockFlag, DisableTearsDownEnableRebuilds) {
  auto m = MakeBareMachine();
  LoadProgram(*m, "LOOP: INC R0\n      BR LOOP\n");
  (void)m->Run(200);
  EXPECT_GE(m->superblock_builds(), 1u);
  ASSERT_GE(m->superblock_count(), 1u);
  const std::uint64_t builds = m->superblock_builds();
  const std::size_t live = m->superblock_count();

  m->set_superblock_enabled(false);
  EXPECT_EQ(m->superblock_count(), 0u);
  EXPECT_GE(m->superblock_invalidations(), live);
  const Word r0 = m->cpu().regs[0];
  (void)m->Run(200);
  EXPECT_EQ(m->superblock_builds(), builds);  // no builds while off
  EXPECT_EQ(m->cpu().regs[0], static_cast<Word>(r0 + 100));  // still correct

  m->set_superblock_enabled(true);
  (void)m->Run(200);
  EXPECT_GT(m->superblock_builds(), builds);  // rebuilt from fresh heat
}

// Disabling the predecode cache drops anchored superblocks with it.
TEST(SuperblockFlag, PredecodeDisableFlushesSuperblocks) {
  auto m = MakeBareMachine();
  LoadProgram(*m, "LOOP: INC R0\n      BR LOOP\n");
  (void)m->Run(200);
  ASSERT_GE(m->superblock_count(), 1u);
  m->set_predecode_enabled(false);
  EXPECT_EQ(m->superblock_count(), 0u);
  (void)m->Run(50);
  EXPECT_EQ(m->superblock_builds() == 0u, false);  // builds counter keeps history
  m->set_predecode_enabled(true);
  const std::uint64_t builds = m->superblock_builds();
  (void)m->Run(200);
  EXPECT_GT(m->superblock_builds(), builds);
}

}  // namespace
}  // namespace sep
