// The predecoded-instruction cache must be invisible: traces are identical
// with the cache on or off, across self-modifying code, MMU remaps and the
// batched Run loop. These tests drive cache-on and cache-off machines in
// lockstep and compare complete state hashes every step.
#include <gtest/gtest.h>

#include <string>

#include "src/machine/machine.h"
#include "src/sm11asm/assembler.h"
#include "tests/test_util.h"

namespace sep {
namespace {

void LoadProgram(Machine& m, const std::string& source) {
  Result<AssembledProgram> p = Assemble(source);
  ASSERT_TRUE(p.ok()) << p.error();
  m.memory().LoadImage(p->base, p->words);
  m.cpu().set_pc(p->EntryPoint());
  m.cpu().set_sp(0x1000);
}

// Steps `cached` (predecode on) and `plain` (predecode off) in lockstep,
// asserting identical step events and identical architectural state after
// every step.
void ExpectLockstepParity(Machine& cached, Machine& plain, int steps) {
  for (int i = 0; i < steps; ++i) {
    StepEvent a = cached.Step();
    StepEvent b = plain.Step();
    ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind)) << "step " << i;
    ASSERT_EQ(a.device, b.device) << "step " << i;
    ASSERT_EQ(static_cast<int>(a.trap.kind), static_cast<int>(b.trap.kind)) << "step " << i;
    ASSERT_EQ(cached.StateHash(), plain.StateHash()) << "state diverged at step " << i;
  }
}

// A workload touching every fast-path form plus traps and a HALT: two-op
// ALU, one-op ALU, shifts, memory operands, immediate operands, the whole
// branch family, TRAP (vectored through memory) and RTI. Assembled away
// from the vector table; the tests install the trap vector directly.
constexpr char kMixedProgram[] = R"(
        .ORG 0x100
START:  CLR R0
        CLR R5
LOOP:   INC R0
        ADD R0, R1
        SUB #1, R2
        MOV R1, @0x300
        CMP #40, R0
        BIT #1, R0
        BNE SKIP
        COM R3
SKIP:   BIC #8, R1
        BIS #2, R4
        XOR R0, R3
        NEG R3
        ASL R1
        ASR R1
        DEC R2
        TST R2
        BMI NEG1
NEG1:   BPL POS1
POS1:   BCS CAR1
CAR1:   BCC NOC1
NOC1:   BVS OVF1
OVF1:   BVC NOV1
NOV1:   BLT LT1
LT1:    BGE GE1
GE1:    BGT GT1
GT1:    BLE LE1
LE1:    TRAP 3
        CMP #40, R0
        BNE LOOP
        HALT
        .ORG 0x200
HANDLER:
        INC R5
        RTI
)";

void LoadMixedProgram(Machine& m) {
  LoadProgram(m, kMixedProgram);
  m.memory().Write(kVectorTrap, 0x200);      // handler PC
  m.memory().Write(kVectorTrap + 1, 0);      // handler PSW: kernel, priority 0
  m.cpu().set_pc(0x100);
}

TEST(PredecodeParity, MixedWorkloadLockstep) {
  auto cached = MakeBareMachine();
  auto plain = MakeBareMachine();
  plain->set_predecode_enabled(false);
  LoadMixedProgram(*cached);
  LoadMixedProgram(*plain);
  ExpectLockstepParity(*cached, *plain, 2000);
  EXPECT_TRUE(cached->halted());
  EXPECT_EQ(cached->cpu().regs[0], 40);  // the loop actually ran to completion
  EXPECT_EQ(cached->cpu().regs[5], 40);  // every iteration trapped and returned
  EXPECT_GT(cached->predecode_hits(), 0u);
  EXPECT_EQ(plain->predecode_hits(), 0u);
}

TEST(PredecodeParity, RunMatchesRepeatedStep) {
  auto batched = MakeBareMachine();
  auto stepped = MakeBareMachine();
  LoadMixedProgram(*batched);
  LoadMixedProgram(*stepped);
  const std::size_t ran = batched->Run(2000);
  std::size_t stepped_count = 0;
  for (; stepped_count < 2000 && !stepped->halted(); ++stepped_count) {
    stepped->Step();
  }
  EXPECT_GT(ran, 100u);
  EXPECT_EQ(ran, stepped_count);
  EXPECT_EQ(batched->tick(), stepped->tick());
  EXPECT_EQ(batched->StateHash(), stepped->StateHash());
  EXPECT_TRUE(batched->halted());
}

// The same batched-vs-stepped workload swept with superblocks on and off:
// the superblock layer rides on the predecode cache, so the predecode-only
// configuration must stay bit-identical to both Step() and the full stack
// (traps, RTI and all direct forms included via the mixed program).
TEST(PredecodeParity, RunSweepsSuperblocksOnOff) {
  auto sb_on = MakeBareMachine();
  auto sb_off = MakeBareMachine();
  auto stepped = MakeBareMachine();
  sb_off->set_superblock_enabled(false);
  stepped->set_predecode_enabled(false);
  LoadMixedProgram(*sb_on);
  LoadMixedProgram(*sb_off);
  LoadMixedProgram(*stepped);
  while (!stepped->halted()) {
    const std::size_t a = sb_on->Run(64);
    const std::size_t b = sb_off->Run(64);
    ASSERT_EQ(a, b);
    for (std::size_t i = 0; i < a; ++i) {
      stepped->Step();
    }
    ASSERT_EQ(sb_on->StateHash(), stepped->StateHash());
    ASSERT_EQ(sb_off->StateHash(), stepped->StateHash());
  }
  EXPECT_TRUE(sb_on->halted());
  EXPECT_GE(sb_on->superblock_builds(), 1u);
  EXPECT_EQ(sb_off->superblock_builds(), 0u);
}

// Self-modifying code: the loop rewrites the instruction ahead of it (an INC
// becomes a DEC), so a stale cache entry would produce the wrong register
// value. The page-version check must catch the store.
TEST(PredecodeInvalidation, SelfModifyingCode) {
  constexpr char kSelfMod[] = R"(
START:  CLR R0
        CLR R2
LOOP:   INC R2
PATCH:  INC R0
        CMP #8, R2
        BNE NEXT
        MOV NEWOP, @PATCH       ; overwrite the INC R0 word with DEC R0
NEXT:   CMP #16, R2
        BNE LOOP
        HALT
NEWOP:  DEC R0
)";
  auto cached = MakeBareMachine();
  auto plain = MakeBareMachine();
  plain->set_predecode_enabled(false);
  LoadProgram(*cached, kSelfMod);
  LoadProgram(*plain, kSelfMod);
  ExpectLockstepParity(*cached, *plain, 200);
  ASSERT_TRUE(cached->halted());
  // 8 iterations execute INC, then the patch lands and 8 execute DEC:
  // R0 ends at 0. A stale cache entry that kept serving INC would leave 16.
  EXPECT_EQ(cached->cpu().regs[0], 0);
  // The patched word forces at least one refill beyond the cold misses: the
  // PATCH entry is decoded, invalidated by the store, and decoded again.
  EXPECT_GT(cached->predecode_misses(), 0u);
}

TEST(PredecodeInvalidation, SelfModifyingCodeUnderRun) {
  constexpr char kSelfMod[] = R"(
START:  CLR R0
        CLR R2
LOOP:   INC R2
PATCH:  INC R0
        CMP #8, R2
        BNE NEXT
        MOV NEWOP, @PATCH
NEXT:   CMP #16, R2
        BNE LOOP
        HALT
NEWOP:  DEC R0
)";
  auto batched = MakeBareMachine();
  LoadProgram(*batched, kSelfMod);
  (void)batched->Run(400);
  ASSERT_TRUE(batched->halted());
  EXPECT_EQ(batched->cpu().regs[0], 0);
}

// Remapping the executing page mid-run must serve instructions from the new
// mapping immediately even though entries for the old physical frame are
// still warm: the fast path re-translates from live MMU state every step.
TEST(PredecodeInvalidation, MmuRemapSwitchesCode) {
  auto cached = MakeBareMachine();
  auto plain = MakeBareMachine();
  plain->set_predecode_enabled(false);

  // Frame A (phys page 0): spin incrementing R0. Frame B (phys page 1,
  // virtually mapped at the same page-0 window): spin incrementing R1.
  Result<AssembledProgram> a = Assemble("LOOP: INC R0\n      BR LOOP\n");
  ASSERT_TRUE(a.ok()) << a.error();
  Result<AssembledProgram> b = Assemble("LOOP: INC R1\n      BR LOOP\n");
  ASSERT_TRUE(b.ok()) << b.error();
  for (Machine* m : {cached.get(), plain.get()}) {
    m->memory().LoadImage(0, a->words);
    m->memory().LoadImage(kPageWords, b->words);
    m->cpu().set_pc(0);
    m->cpu().set_sp(0x1000);
  }

  ExpectLockstepParity(*cached, *plain, 50);
  EXPECT_GT(cached->cpu().regs[0], 0);
  EXPECT_EQ(cached->cpu().regs[1], 0);

  // Swing virtual page 0 onto frame B. PC keeps its virtual value; the next
  // fetch must decode frame B's INC R1.
  for (Machine* m : {cached.get(), plain.get()}) {
    m->mmu().SetPage(CpuMode::kKernel, 0, {kPageWords, kPageWords, PageAccess::kReadWrite});
    m->cpu().set_pc(0);
  }
  const Word r0_at_remap = cached->cpu().regs[0];
  ExpectLockstepParity(*cached, *plain, 50);
  EXPECT_EQ(cached->cpu().regs[0], r0_at_remap);
  EXPECT_GT(cached->cpu().regs[1], 0);
}

TEST(PredecodeInvalidation, MmuRemapUnderRun) {
  auto m = MakeBareMachine();
  Result<AssembledProgram> a = Assemble("LOOP: INC R0\n      BR LOOP\n");
  Result<AssembledProgram> b = Assemble("LOOP: INC R1\n      BR LOOP\n");
  ASSERT_TRUE(a.ok() && b.ok());
  m->memory().LoadImage(0, a->words);
  m->memory().LoadImage(kPageWords, b->words);
  m->cpu().set_pc(0);
  m->cpu().set_sp(0x1000);
  EXPECT_EQ(m->Run(100), 100u);
  const Word r0 = m->cpu().regs[0];
  EXPECT_GT(r0, 0);
  m->mmu().SetPage(CpuMode::kKernel, 0, {kPageWords, kPageWords, PageAccess::kReadWrite});
  m->cpu().set_pc(0);
  EXPECT_EQ(m->Run(100), 100u);
  EXPECT_EQ(m->cpu().regs[0], r0);
  EXPECT_GT(m->cpu().regs[1], 0);
}

// Disabling the cache mid-flight drops all entries; re-enabling starts cold.
TEST(PredecodeInvalidation, DisableClearsCache) {
  auto m = MakeBareMachine();
  LoadProgram(*m, "LOOP: INC R0\n      BR LOOP\n");
  (void)m->Run(100);
  EXPECT_GT(m->predecode_hits(), 0u);
  const std::uint64_t misses_warm = m->predecode_misses();
  m->set_predecode_enabled(false);
  (void)m->Run(10);
  EXPECT_EQ(m->predecode_misses(), misses_warm);  // generic path, no refills
  m->set_predecode_enabled(true);
  (void)m->Run(10);
  EXPECT_GT(m->predecode_misses(), misses_warm);  // cold again
}

using PredecodeDeathTest = ::testing::Test;

TEST(PredecodeDeathTest, LoadImageBeyondEndAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto m = MakeBareMachine(1u << 12);
  std::vector<Word> image(16, 0);
  EXPECT_DEATH(m->memory().LoadImage((1u << 12) - 8, image), "CHECK failed");
  // A base beyond the end with a small image must not wrap the sum.
  EXPECT_DEATH(m->memory().LoadImage(0xFFFFFFF0u, image), "CHECK failed");
}

}  // namespace
}  // namespace sep
