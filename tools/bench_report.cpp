// bench_report — one-shot performance report for the repo.
//
// Runs the google-benchmark binaries (bench_machine, bench_separability)
// and the sepcheck static analyzer, distills the results into a small
// schema-stable JSON document (schema "sep-bench-v1", committed at the repo
// root as BENCH_<pr>.json), and can compare the fresh numbers against a
// committed baseline, failing on regressions beyond a tolerance.
//
//   bench_report --bindir build-rel --out BENCH_3.json
//   bench_report --bindir build-rel --smoke --compare BENCH_3.json
//
// Only `guarded_metrics` participate in the comparison: dimensionless ratios
// (cache speedup, parallel speedup) that are stable across host speeds,
// unlike absolute instructions/second. docs/PERFORMANCE.md documents every
// metric.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"

namespace {

constexpr char kUsage[] =
    "usage: bench_report [--bindir DIR] [--out FILE] [--compare FILE]\n"
    "                    [--tolerance F] [--jobs N] [--smoke] [--help]\n"
    "\n"
    "Runs the benchmark binaries under DIR, writes a sep-bench-v1 JSON\n"
    "report, and (with --compare) fails on guarded-metric regressions\n"
    "beyond the tolerance (default 0.25). --jobs bounds sepcheck\n"
    "parallelism; --smoke trades precision for runtime.\n";

int UsageError(const char* message, const char* value) {
  std::fprintf(stderr, "bench_report: %s: %s\n%s", message, value, kUsage);
  return 2;
}

struct Options {
  std::string bindir = ".";
  std::string out;
  std::string compare;
  double tolerance = 0.25;
  bool smoke = false;
  int jobs = 0;  // 0 = hardware_concurrency
};

// Runs `command`, returning its whole stdout; exits on failure. stderr is
// left attached to ours so benchmark diagnostics stay visible.
std::string Capture(const std::string& command) {
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "bench_report: cannot run: %s\n", command.c_str());
    std::exit(2);
  }
  std::string output;
  char buffer[4096];
  std::size_t got;
  while ((got = fread(buffer, 1, sizeof buffer, pipe)) > 0) {
    output.append(buffer, got);
  }
  const int status = pclose(pipe);
  if (status != 0) {
    std::fprintf(stderr, "bench_report: command failed (%d): %s\n", status, command.c_str());
    std::exit(2);
  }
  return output;
}

// Minimal extraction from google-benchmark's --benchmark_format=json output:
// maps benchmark name -> the numeric `field` of its result object (e.g.
// "items_per_second", or a user counter like "bytes_per_state"). Tolerant of
// leading non-JSON noise (tables printed before benchmark::Initialize takes
// over).
std::map<std::string, double> ParseBenchField(const std::string& json, const std::string& field) {
  const std::string needle = "\"" + field + "\":";
  std::map<std::string, double> result;
  std::size_t pos = 0;
  while ((pos = json.find("\"name\":", pos)) != std::string::npos) {
    const std::size_t open = json.find('"', pos + 7);
    if (open == std::string::npos) break;
    const std::size_t close = json.find('"', open + 1);
    if (close == std::string::npos) break;
    const std::string name = json.substr(open + 1, close - open - 1);
    const std::size_t next_name = json.find("\"name\":", close);
    const std::size_t value = json.find(needle, close);
    pos = close;
    if (value != std::string::npos && (next_name == std::string::npos || value < next_name)) {
      result[name] = std::strtod(json.c_str() + value + needle.size(), nullptr);
    }
  }
  return result;
}

std::map<std::string, double> ParseItemsPerSecond(const std::string& json) {
  return ParseBenchField(json, "items_per_second");
}

// Wall-clock best-of-N of a command (min over runs: noise on a shared host
// only ever adds time).
double BestSeconds(const std::string& command, int runs) {
  double best = 1e9;
  for (int i = 0; i < runs; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)Capture(command);
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

double Metric(const std::map<std::string, double>& table, const char* name) {
  const auto it = table.find(name);
  if (it == table.end() || it->second <= 0) {
    std::fprintf(stderr, "bench_report: benchmark '%s' missing from output\n", name);
    std::exit(2);
  }
  return it->second;
}

// Reads `key` out of a flat JSON metrics object ("key": value). Returns
// false if absent — baselines may predate newly added metrics.
bool JsonNumber(const std::string& json, const std::string& key, double* out) {
  const std::size_t pos = json.find("\"" + key + "\":");
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + key.size() + 3, nullptr);
  return true;
}

std::string ReadFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_report: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::string data;
  char buffer[4096];
  std::size_t got;
  while ((got = fread(buffer, 1, sizeof buffer, f)) > 0) data.append(buffer, got);
  std::fclose(f);
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_report: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--bindir") {
      opt.bindir = next();
    } else if (arg == "--out") {
      opt.out = next();
    } else if (arg == "--compare") {
      opt.compare = next();
    } else if (arg == "--tolerance") {
      const std::string value = next();
      const std::optional<double> parsed = sep::ParseDouble(value);
      if (!parsed.has_value() || *parsed < 0) {
        return UsageError("--tolerance needs a non-negative number", value.c_str());
      }
      opt.tolerance = *parsed;
    } else if (arg == "--jobs") {
      const std::string value = next();
      const std::optional<long long> parsed = sep::ParseInt(value, 1, 4096);
      if (!parsed.has_value()) {
        return UsageError("--jobs needs an integer in [1, 4096]", value.c_str());
      }
      opt.jobs = static_cast<int>(*parsed);
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else {
      return UsageError("unknown argument", arg.c_str());
    }
  }

  // Validate the baseline BEFORE running minutes of benchmarks: a missing
  // file or a non-baseline JSON document should fail immediately, not after
  // the work is done.
  std::string baseline;
  if (!opt.compare.empty()) {
    baseline = ReadFile(opt.compare);
    if (baseline.find("\"schema\": \"sep-bench-v1\"") == std::string::npos) {
      std::fprintf(stderr,
                   "bench_report: %s is not a sep-bench-v1 baseline (missing schema marker)\n",
                   opt.compare.c_str());
      return 2;
    }
  }
  const int threads = static_cast<int>(std::thread::hardware_concurrency());
  const int jobs = opt.jobs > 0 ? opt.jobs : std::max(threads, 1);
  // Smoke mode trades precision for runtime so CI can gate on it.
  const char* min_time = opt.smoke ? "0.05" : "0.5";
  const int sepcheck_runs = opt.smoke ? 3 : 15;

  const std::string machine =
      opt.bindir + "/bench/bench_machine --benchmark_format=json --benchmark_min_time=" +
      min_time + " --benchmark_filter='BM_InstructionThroughput|BM_KernelizedStep'";
  const std::string separability =
      opt.bindir +
      "/bench/bench_separability --notables --benchmark_format=json --benchmark_min_time=" +
      min_time + " --benchmark_filter='BM_Exhaustive'";
  const std::string recovery =
      opt.bindir + "/bench/bench_recovery --benchmark_format=json --benchmark_min_time=" +
      min_time + " --benchmark_filter='BM_RecoveryChaos'";
  const std::string channels =
      opt.bindir + "/bench/bench_channels --benchmark_format=json --benchmark_min_time=" +
      min_time + " --benchmark_filter='BM_Channel'";

  std::fprintf(stderr, "bench_report: running bench_machine...\n");
  const std::map<std::string, double> m1 = ParseItemsPerSecond(Capture(machine));
  std::fprintf(stderr, "bench_report: running bench_separability...\n");
  const std::string separability_json = Capture(separability);
  const std::map<std::string, double> m2 = ParseItemsPerSecond(separability_json);
  const std::map<std::string, double> m2_bytes =
      ParseBenchField(separability_json, "bytes_per_state");
  std::fprintf(stderr, "bench_report: running bench_recovery...\n");
  const std::map<std::string, double> m3 =
      ParseBenchField(Capture(recovery), "recovery_ticks_p99");
  std::fprintf(stderr, "bench_report: running bench_channels...\n");
  const std::map<std::string, double> m4 = ParseItemsPerSecond(Capture(channels));
  std::fprintf(stderr, "bench_report: timing sepcheck...\n");
  const std::string sepcheck = opt.bindir + "/tools/sepcheck --all";
  const double sepcheck_serial = BestSeconds(sepcheck + " > /dev/null", sepcheck_runs);
  const double sepcheck_parallel =
      BestSeconds(sepcheck + " --jobs " + std::to_string(jobs) + " > /dev/null", sepcheck_runs);

  const double cached = Metric(m1, "BM_InstructionThroughput");
  const double uncached = Metric(m1, "BM_InstructionThroughputNoCache");
  const double no_superblock = Metric(m1, "BM_InstructionThroughputNoSuperblock");
  const double insn_storm = Metric(m1, "BM_InstructionThroughputInvalidationStorm");
  const double trace_off = Metric(m1, "BM_KernelizedStepTraceOff");
  const double trace_on = Metric(m1, "BM_KernelizedStepTraceOn");
  const double kernelized_storm = Metric(m1, "BM_KernelizedStepInvalidationStorm");
  const double ex_serial = Metric(m2, "BM_ExhaustiveCheck");
  const double ex_parallel = Metric(m2, "BM_ExhaustiveCheckParallel");
  const double ex_kernelized = Metric(m2, "BM_ExhaustiveKernelized");
  const double ex_steal = Metric(m2, "BM_ExhaustiveKernelizedSteal");
  const double bytes_per_state = Metric(m2_bytes, "BM_ExhaustiveKernelized");
  const double chan_classic = Metric(m4, "BM_ChannelClassicWords");
  const double chan_batched = Metric(m4, "BM_ChannelBatchedWords");
  const double chan_ring = Metric(m4, "BM_ChannelSharedRingWords");
  const double chan_xnode_plain = Metric(m4, "BM_ChannelTunnelPlainWords");
  const double chan_xnode_batched = Metric(m4, "BM_ChannelTunnelBatchedWords");

  std::map<std::string, double> metrics;
  metrics["insn_throughput_cached_ips"] = cached;
  metrics["insn_throughput_uncached_ips"] = uncached;
  metrics["predecode_speedup"] = cached / uncached;
  metrics["insn_throughput_nosb_ips"] = no_superblock;
  // Batched Run with superblocks on vs the same predecoded engine with them
  // off: the win from hoisting per-instruction entry validation to trace
  // entry. A dimensionless ratio, so it guards across host speeds.
  metrics["superblock_speedup"] = cached / no_superblock;
  // Flush-every-batch throughput: dominated by re-decode and superblock
  // rebuild cost. Absolute (host-speed-dependent), so unguarded; recorded to
  // make rebuild-cost regressions visible in the committed history.
  metrics["insn_throughput_storm_ips"] = insn_storm;
  metrics["kernelized_step_storm_ips"] = kernelized_storm;
  metrics["kernelized_step_trace_off_ips"] = trace_off;
  metrics["kernelized_step_trace_on_ips"] = trace_on;
  // Kernel-call-dense stepping with tracing compiled in but DISABLED,
  // relative to the same workload with the recorder live. The disabled path
  // must stay a relaxed load + branch per slow-path site; if it grows real
  // work, this ratio collapses toward 1 and the guard below fires.
  metrics["trace_disabled_overhead"] = trace_off / trace_on;
  metrics["exhaustive_serial_sps"] = ex_serial;
  metrics["exhaustive_parallel_sps"] = ex_parallel;
  metrics["exhaustive_parallel_speedup"] = ex_parallel / ex_serial;
  metrics["exhaustive_kernelized_sps"] = ex_kernelized;
  metrics["exhaustive_steal_sps"] = ex_steal;
  // Work-stealing frontier vs the serial schedule on the full kernelized
  // exploration. On a >= 4-core host the design target is >= 2.5; on a
  // single-core host the honest value is <= 1 and the guard is skipped
  // with a printed note (see parallel_guards below). BENCH_3..BENCH_7
  // baselines predate this metric and were recorded on 1-core hosts.
  metrics["exhaustive_steal_speedup"] = ex_steal / ex_kernelized;
  // Compact-store density: full kernelized machine states per MiB of state
  // store. A pure data-layout property, independent of host speed.
  metrics["exhaustive_states_per_mib"] = (1024.0 * 1024.0) / bytes_per_state;
  // Kernelized states proven per second, per million emulated instructions
  // per second: normalizes checker throughput by the host's machine speed so
  // the ratio tracks checker overhead, not the CPU it ran on.
  metrics["exhaustive_sps_per_mips"] = ex_kernelized / (cached / 1e6);
  // Delivered words/second over each kernel channel transport (absolute,
  // host-speed-dependent, unguarded) and the dimensionless ratios against the
  // one-word-per-trap baseline (guarded): a SENDV/RECVV batch amortizes the
  // kernel-call slow path over up to 64 words and the shared ring adds
  // zero-copy publication on top, so both ratios are design claims that hold
  // on any host. Design floor for channel_batch_speedup is 8x.
  metrics["channel_classic_wps"] = chan_classic;
  metrics["channel_batched_wps"] = chan_batched;
  metrics["channel_ring_wps"] = chan_ring;
  metrics["channel_batch_speedup"] = chan_batched / chan_classic;
  metrics["channel_ring_speedup"] = chan_ring / chan_classic;
  // Cross-node words/second through the reliable tunnel. The network
  // simulation is tick-deterministic, so the plain-vs-Batched() ratio is a
  // pure framing property (segment size x window depth), exactly stable
  // across hosts — guarded; the absolute rates are not.
  metrics["channel_xnode_plain_wps"] = chan_xnode_plain;
  metrics["channel_xnode_batched_wps"] = chan_xnode_batched;
  metrics["channel_xnode_batch_speedup"] = chan_xnode_batched / chan_xnode_plain;
  metrics["sepcheck_all_seconds"] = sepcheck_serial;
  metrics["sepcheck_jobs_seconds"] = sepcheck_parallel;
  // Full static-analysis catalogue passes per second, per million emulated
  // instructions per second. Normalizing by the host's machine speed makes
  // this track the analyzer's own cost (relational joins, widening, branch
  // refinement), not the CPU it ran on, so a precision feature that blows up
  // fixpoint iteration counts fires the guard even on a faster machine.
  metrics["sepcheck_all_per_mips"] = (1.0 / sepcheck_serial) / (cached / 1e6);
  // 99th-percentile ticks of forward progress a node crash discards, at the
  // default checkpoint interval (16 quanta). The chaos simulation is fully
  // deterministic, so this is a design property of the checkpoint cadence —
  // host-independent, guardable, and LOWER is better (see below).
  metrics["recovery_ticks_p99"] = Metric(m3, "BM_RecoveryChaos/16");

  // Ratios only: absolute rates swing with host speed, ratios are the
  // design-level claims (the cache pays; the state store is compact; the
  // checker's per-state overhead is bounded; parallelism pays given cores).
  // Parallel-speedup guards are skipped when either the baseline host or
  // this one has a single hardware thread — on such hosts the speedup is
  // honestly <= 1 and says nothing about the design.
  const std::vector<std::string> guarded = {"predecode_speedup", "superblock_speedup",
                                            "exhaustive_states_per_mib",
                                            "exhaustive_sps_per_mips",
                                            "exhaustive_parallel_speedup",
                                            "exhaustive_steal_speedup",
                                            "trace_disabled_overhead", "recovery_ticks_p99",
                                            "sepcheck_all_per_mips", "channel_batch_speedup",
                                            "channel_ring_speedup",
                                            "channel_xnode_batch_speedup"};
  const std::vector<std::string> parallel_guards = {"exhaustive_parallel_speedup",
                                                    "exhaustive_steal_speedup"};
  // Cost metrics regress UPWARD: the guard fires when the value exceeds the
  // baseline by the tolerance, not when it falls below it.
  const std::vector<std::string> lower_is_better = {"recovery_ticks_p99"};

  std::string json = "{\n  \"schema\": \"sep-bench-v1\",\n";
  json += "  \"host\": {\"hardware_threads\": " + std::to_string(threads) + "},\n";
  json += "  \"config\": {\"smoke\": " + std::string(opt.smoke ? "true" : "false") +
          ", \"jobs\": " + std::to_string(jobs) + "},\n";
  json += "  \"metrics\": {\n";
  bool first = true;
  for (const auto& [name, value] : metrics) {
    // A zero-duration run or a missing counter would put inf/nan into the
    // report, which is not JSON and poisons every later comparison. Skip the
    // metric with a note instead; JsonNumber treats absence as "skip".
    if (!std::isfinite(value)) {
      std::fprintf(stderr, "bench_report: note: %s is non-finite (%g); omitted from report\n",
                   name.c_str(), value);
      continue;
    }
    char line[160];
    std::snprintf(line, sizeof line, "%s    \"%s\": %.6g", first ? "" : ",\n", name.c_str(),
                  value);
    json += line;
    first = false;
  }
  json += "\n  },\n  \"guarded_metrics\": [";
  for (std::size_t i = 0; i < guarded.size(); ++i) {
    json += (i ? ", \"" : "\"") + guarded[i] + "\"";
  }
  json += "]\n}\n";

  std::fputs(json.c_str(), stdout);
  if (!opt.out.empty()) {
    FILE* f = std::fopen(opt.out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_report: cannot write %s\n", opt.out.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }

  if (!opt.compare.empty()) {
    // Parallel speedups compare meaningfully only between multi-threaded
    // hosts; a baseline recorded on (or a check run on) a single hardware
    // thread would fail them for reasons unrelated to the change under test.
    double baseline_threads = 0;
    if (!JsonNumber(baseline, "hardware_threads", &baseline_threads)) {
      std::fprintf(stderr, "bench_report: baseline lacks host.hardware_threads; "
                           "treating it as single-threaded\n");
      baseline_threads = 1;
    }
    int failures = 0;
    for (const std::string& name : guarded) {
      const bool parallel_guard =
          std::find(parallel_guards.begin(), parallel_guards.end(), name) !=
          parallel_guards.end();
      if (parallel_guard && (baseline_threads <= 1 || threads <= 1)) {
        std::fprintf(stderr,
                     "bench_report: note: skipping %s (baseline host %d thread(s), "
                     "this host %d thread(s))\n",
                     name.c_str(), static_cast<int>(baseline_threads), threads);
        continue;
      }
      double base = 0;
      if (!JsonNumber(baseline, name, &base) || base <= 0) {
        std::fprintf(stderr, "bench_report: baseline lacks %s; skipping\n", name.c_str());
        continue;
      }
      const double current = metrics[name];
      if (!std::isfinite(current)) {
        std::fprintf(stderr, "bench_report: note: %s is non-finite here; skipping\n",
                     name.c_str());
        continue;
      }
      const bool inverted = std::find(lower_is_better.begin(), lower_is_better.end(), name) !=
                            lower_is_better.end();
      if (inverted) {
        const double ceiling = base * (1.0 + opt.tolerance);
        if (current > ceiling) {
          std::fprintf(stderr,
                       "bench_report: REGRESSION %s: %.3f > %.3f (baseline %.3f + %.0f%%)\n",
                       name.c_str(), current, ceiling, base, opt.tolerance * 100);
          ++failures;
        } else {
          std::fprintf(stderr, "bench_report: ok %s: %.3f (baseline %.3f)\n", name.c_str(),
                       current, base);
        }
        continue;
      }
      const double floor = base * (1.0 - opt.tolerance);
      if (current < floor) {
        std::fprintf(stderr,
                     "bench_report: REGRESSION %s: %.3f < %.3f (baseline %.3f - %.0f%%)\n",
                     name.c_str(), current, floor, base, opt.tolerance * 100);
        ++failures;
      } else {
        std::fprintf(stderr, "bench_report: ok %s: %.3f (baseline %.3f)\n", name.c_str(),
                     current, base);
      }
    }
    if (failures > 0) return 1;
  }
  return 0;
}
