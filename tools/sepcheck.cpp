// sepcheck: static separability linter for SM-11 guest programs.
//
//   sepcheck --all [--json] [--probe] [--jobs N] [--obligations FILE]
//                                                  lint the in-tree catalogue
//   sepcheck [options] program.s                   lint one assembly file
//
// File-mode options:
//   --words N     partition size in words (default 512)
//   --devices N   local device slots mapped at 0xE000 (default 0)
//   --bare        bare-machine program: HALT legal, TRAPs not kernel calls
//   --json        machine-readable findings (JSON lines)
//
// Both modes accept --obligations FILE: write the proof-obligation ledger
// (every load/store/kernel-call proof step, tagged with the separability
// condition it discharges) as JSON to FILE. The document's schema is
// docs/obligations.schema.json; tools/check_obligations validates it.
//
// --all exits 0 iff every catalogue entry meets its expectation: real
// guests certify (possibly via discharged findings), negative fixtures are
// flagged. With --probe it additionally runs the machine-level two-run
// semantic probe on entries that carry one and checks the expected verdict
// (the EXPERIMENTS.md E14 table). --jobs N analyzes entries on N threads
// (0 = all hardware threads); output — the findings text and the ledger —
// stays in catalogue order, byte-identical to a serial run.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/base/thread_pool.h"

#include "src/analysis/finding.h"
#include "src/base/result.h"
#include "src/sepcheck/catalog.h"

namespace sep {
namespace {

using sepcheck::AnalyzeProgram;
using sepcheck::AnalyzeSystem;
using sepcheck::BuildEntrySystem;
using sepcheck::Catalog;
using sepcheck::CatalogEntry;
using sepcheck::EntryObligations;
using sepcheck::MachineSemanticallyLeaks;
using sepcheck::RegimeView;
using sepcheck::RenderObligationsJson;
using sepcheck::SystemAnalysis;

constexpr char kUsage[] =
    "usage: sepcheck --all [--json] [--probe] [--jobs N] [--obligations FILE]\n"
    "       sepcheck [--words N] [--devices N] [--bare] [--json]\n"
    "                [--obligations FILE] program.s\n";

int Usage() {
  std::fputs(kUsage, stderr);
  return 2;
}

int UsageError(const char* message, const char* value) {
  std::fprintf(stderr, "sepcheck: %s: %s\n", message, value);
  return Usage();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Err("cannot open " + path);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int DischargedCount(const std::vector<Finding>& findings) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.severity == FindingSeverity::kDischarged) ++n;
  }
  return n;
}

// The outcome of analyzing one catalogue entry, buffered so entries can be
// analyzed in parallel and still print in catalogue order.
struct EntryOutcome {
  std::string out;  // stdout text
  std::string err;  // stderr text
  bool ok = false;
  EntryObligations ledger;
};

// Writes `text` to `path`; reports and fails loudly on error.
bool WriteFileOrComplain(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  if (!out) {
    std::fprintf(stderr, "sepcheck: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

EntryOutcome CheckEntry(const CatalogEntry& entry, bool json, bool probe) {
  EntryOutcome r;
  Result<SystemAnalysis> analysis = AnalyzeSystem(entry.spec);
  if (!analysis.ok()) {
    r.err = Format("%s: %s\n", entry.name.c_str(), analysis.error().c_str());
    return r;
  }
  const int discharged = DischargedCount(analysis->findings);
  r.ok = analysis->certified == entry.expect_certified &&
         (!entry.expect_discharged || discharged > 0);
  r.ledger.entry = entry.name;
  r.ledger.certified = analysis->certified;
  r.ledger.obligations = analysis->obligations;

  std::string semantic = "-";
  if (probe && entry.has_probe) {
    Result<bool> leaks =
        MachineSemanticallyLeaks([&] { return BuildEntrySystem(entry); }, entry.probe);
    if (!leaks.ok()) {
      r.err += Format("%s: probe: %s\n", entry.name.c_str(), leaks.error().c_str());
      r.ok = false;
    } else {
      semantic = *leaks ? "leaks" : "secure";
      if (*leaks != entry.probe_expect_leak) r.ok = false;
    }
  }

  if (json) {
    r.out = FormatFindings(analysis->findings, /*json=*/true);
    r.out += Format(
        "{\"entry\":\"%s\",\"certified\":%s,\"discharged\":%d,"
        "\"semantic\":\"%s\",\"expected\":%s}\n",
        entry.name.c_str(), analysis->certified ? "true" : "false", discharged,
        semantic.c_str(), r.ok ? "true" : "false");
  } else {
    r.out = Format("== %s: %zu regime(s), %zu channel(s), %s\n", entry.name.c_str(),
                   entry.spec.regimes.size(), entry.spec.channels.size(),
                   entry.spec.cut_channels ? "cut" : "uncut");
    r.out += FormatFindings(analysis->findings, /*json=*/false);
    r.out += Format("   verdict: %s (%d discharged)%s%s — %s\n",
                    analysis->certified ? "CERTIFIED" : "FLAGGED", discharged,
                    probe && entry.has_probe ? ", semantic: " : "",
                    probe && entry.has_probe ? semantic.c_str() : "",
                    r.ok ? "as expected" : "UNEXPECTED");
  }
  return r;
}

int RunAll(bool json, bool probe, int jobs, const std::string& obligations_path) {
  // Materialize the catalogue before fanning out; entry analysis itself is
  // pure (clone-based machine runs, no shared mutable state).
  const std::vector<CatalogEntry>& catalog = Catalog();
  std::vector<EntryOutcome> outcomes(catalog.size());
  ThreadPool pool(jobs);
  pool.ParallelFor(catalog.size(), [&](std::size_t i) {
    outcomes[i] = CheckEntry(catalog[i], json, probe);
  });

  int failures = 0;
  for (const EntryOutcome& r : outcomes) {
    if (!r.err.empty()) std::fputs(r.err.c_str(), stderr);
    if (!r.out.empty()) std::fputs(r.out.c_str(), stdout);
    if (!r.ok) ++failures;
  }
  if (!obligations_path.empty()) {
    // Ledgers are collected in catalogue order, so the document is
    // byte-identical regardless of --jobs.
    std::vector<EntryObligations> ledgers;
    ledgers.reserve(outcomes.size());
    for (EntryOutcome& r : outcomes) ledgers.push_back(std::move(r.ledger));
    if (!WriteFileOrComplain(obligations_path, RenderObligationsJson(ledgers))) {
      return 2;
    }
  }
  if (!json) {
    std::printf("%d of %zu catalogue entries off expectation\n", failures, catalog.size());
  }
  return failures == 0 ? 0 : 1;
}

int RunFile(const std::string& path, std::uint32_t words, int devices, bool bare,
            bool json, const std::string& obligations_path) {
  Result<std::string> source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.error().c_str());
    return 2;
  }
  Result<AssembledProgram> program = Assemble(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), program.error().c_str());
    return 2;
  }
  RegimeView view;
  view.name = path;
  view.mem_words = words;
  view.device_slots = devices;
  view.device_window_words = static_cast<std::uint32_t>(devices) * 8;
  view.bare = bare;
  sepcheck::ProgramAnalysis analysis = AnalyzeProgram(*program, *source, view);
  if (!obligations_path.empty()) {
    EntryObligations ledger;
    ledger.entry = path;
    ledger.certified = analysis.Certified();
    ledger.obligations = analysis.obligations;
    if (!WriteFileOrComplain(obligations_path, RenderObligationsJson({ledger}))) {
      return 2;
    }
  }
  std::printf("%s", FormatFindings(analysis.findings, json).c_str());
  if (!json) {
    std::printf("%s: %s (%zu finding(s), %d discharged)\n", path.c_str(),
                analysis.Certified() ? "CERTIFIED" : "FLAGGED",
                analysis.findings.size(), DischargedCount(analysis.findings));
  }
  return analysis.Certified() ? 0 : 1;
}

}  // namespace
}  // namespace sep

int main(int argc, char** argv) {
  bool all = false;
  bool json = false;
  bool probe = false;
  bool bare = false;
  std::uint32_t words = 512;
  int devices = 0;
  int jobs = 1;
  std::string path;
  std::string obligations_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--all") {
      all = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--probe") {
      probe = true;
    } else if (arg == "--bare") {
      bare = true;
    } else if (arg == "--words" && i + 1 < argc) {
      // Base 0: 0x... and octal literals are natural for partition sizes.
      const std::optional<long long> parsed = sep::ParseInt(argv[++i], 1, 1 << 22, 0);
      if (!parsed.has_value()) {
        return sep::UsageError("--words needs a positive word count", argv[i]);
      }
      words = static_cast<std::uint32_t>(*parsed);
    } else if (arg == "--devices" && i + 1 < argc) {
      const std::optional<long long> parsed = sep::ParseInt(argv[++i], 0, 256, 0);
      if (!parsed.has_value()) {
        return sep::UsageError("--devices needs an integer in [0, 256]", argv[i]);
      }
      devices = static_cast<int>(*parsed);
    } else if (arg == "--obligations" && i + 1 < argc) {
      obligations_path = argv[++i];
      if (obligations_path.empty() || obligations_path[0] == '-') {
        return sep::UsageError("--obligations needs an output file path",
                               obligations_path.c_str());
      }
    } else if (arg == "--jobs" && i + 1 < argc) {
      // 0 = all hardware threads (ThreadPool convention).
      const std::optional<long long> parsed = sep::ParseInt(argv[++i], 0, 4096, 0);
      if (!parsed.has_value()) {
        return sep::UsageError("--jobs needs an integer in [0, 4096]", argv[i]);
      }
      jobs = static_cast<int>(*parsed);
    } else if (arg == "--help") {
      std::fputs(sep::kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      return sep::Usage();
    }
  }

  if (all) {
    return sep::RunAll(json, probe, jobs, obligations_path);
  }
  if (path.empty()) {
    return sep::Usage();
  }
  return sep::RunFile(path, words, devices, bare, json, obligations_path);
}
