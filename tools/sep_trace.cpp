// sep_trace — run SM-11 guests under the separation kernel with the trace
// recorder on, and export what the observability layer saw.
//
//   sep_trace guest.s                      one-regime system, Chrome JSON
//   sep_trace red.s green.s                one regime per file, shared kernel
//   sep_trace --steps N ...               step budget (default 20000)
//   sep_trace --colour C ...              restrict the export to one colour
//   sep_trace --format chrome|text|canonical|metrics
//   sep_trace --exhaustive N ...          also run the exhaustive checker
//   sep_trace --out FILE ...              write there instead of stdout
//
// `--format canonical` emits the canonical per-colour trace (requires
// --colour): the timestamp-free, colour-observable event stream whose byte
// equality across deployments is the per-colour trace-equivalence check of
// docs/OBSERVABILITY.md and EXPERIMENTS.md E17.
//
// `--exhaustive N` runs the exhaustive separability checker (state budget
// N, all hardware threads) on the built system before exporting, so
// `--format metrics` includes the `exhaustive.*` gauges — states,
// transitions, steal_count, shard_max_load and the per-worker
// expansion/restore counters that show how evenly the work-stealing
// frontier spread the exploration (docs/PERFORMANCE.md §6).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/strings.h"
#include "src/core/exhaustive.h"
#include "src/core/kernel_system.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace {

constexpr char kUsage[] =
    "usage: sep_trace [--steps N] [--colour C] [--format chrome|text|canonical|metrics]\n"
    "                 [--exhaustive N] [--out FILE] guest.s [guest.s ...]\n"
    "  Runs each guest as one regime of a shared separation kernel with the\n"
    "  trace recorder on, then exports the recorded events. --exhaustive N\n"
    "  additionally runs the exhaustive checker (state budget N) so --format\n"
    "  metrics includes the exhaustive.* exploration-balance gauges.\n";

int UsageError(const char* message, const char* value) {
  std::fprintf(stderr, "sep_trace: %s: %s\n%s", message, value, kUsage);
  return 2;
}

sep::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return sep::Err("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

enum class Format { kChrome, kText, kCanonical, kMetrics };

}  // namespace

int main(int argc, char** argv) {
  std::size_t steps = 20000;
  std::size_t exhaustive_states = 0;  // 0 = skip the exhaustive checker
  int colour = -2;  // -2 = unset; obs::kColourKernel is -1
  Format format = Format::kChrome;
  std::string out_path;
  std::vector<std::string> guests;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--steps" && i + 1 < argc) {
      const std::optional<long long> parsed = sep::ParseInt(argv[++i], 1, 1LL << 40, 0);
      if (!parsed.has_value()) {
        return UsageError("--steps needs a positive step count", argv[i]);
      }
      steps = static_cast<std::size_t>(*parsed);
    } else if (arg == "--colour" && i + 1 < argc) {
      const std::optional<long long> parsed =
          sep::ParseInt(argv[++i], sep::obs::kColourKernel, sep::kMaxRegimes - 1);
      if (!parsed.has_value()) {
        return UsageError("--colour needs a regime index (or -1 for kernel)", argv[i]);
      }
      colour = static_cast<int>(*parsed);
    } else if (arg == "--format" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "chrome") {
        format = Format::kChrome;
      } else if (value == "text") {
        format = Format::kText;
      } else if (value == "canonical") {
        format = Format::kCanonical;
      } else if (value == "metrics") {
        format = Format::kMetrics;
      } else {
        return UsageError("--format must be chrome|text|canonical|metrics", value.c_str());
      }
    } else if (arg == "--exhaustive" && i + 1 < argc) {
      const std::optional<long long> parsed = sep::ParseInt(argv[++i], 1, 1LL << 30, 0);
      if (!parsed.has_value()) {
        return UsageError("--exhaustive needs a positive state budget", argv[i]);
      }
      exhaustive_states = static_cast<std::size_t>(*parsed);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      guests.push_back(arg);
    } else {
      return UsageError("unknown or incomplete argument", arg.c_str());
    }
  }
  if (guests.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (static_cast<int>(guests.size()) > sep::kMaxRegimes) {
    return UsageError("too many guests (max 8)", guests.back().c_str());
  }
  if (format == Format::kCanonical && colour == -2) {
    std::fprintf(stderr, "sep_trace: --format canonical requires --colour\n%s", kUsage);
    return 2;
  }

  sep::SystemBuilder builder;
  for (std::size_t g = 0; g < guests.size(); ++g) {
    sep::Result<std::string> source = ReadFile(guests[g]);
    if (!source.ok()) {
      std::fprintf(stderr, "sep_trace: %s\n", source.error().c_str());
      return 2;
    }
    sep::Result<int> regime =
        builder.AddRegime("regime" + std::to_string(g), 4096, *source);
    if (!regime.ok()) {
      std::fprintf(stderr, "sep_trace: %s: %s\n", guests[g].c_str(),
                   regime.error().c_str());
      return 2;
    }
  }
  sep::Result<std::unique_ptr<sep::KernelizedSystem>> system = builder.Build();
  if (!system.ok()) {
    std::fprintf(stderr, "sep_trace: %s\n", system.error().c_str());
    return 2;
  }

  sep::obs::Recorder().Start(std::size_t{1} << 18);
  const std::size_t executed = (*system)->Run(steps);
  sep::obs::Recorder().Stop();
  std::vector<sep::obs::TraceEvent> events = sep::obs::Recorder().Drain();

  if (exhaustive_states > 0) {
    // A fresh build of the same configuration: the traced run above has
    // already advanced (*system); the checker wants the initial state.
    sep::Result<std::unique_ptr<sep::KernelizedSystem>> fresh = builder.Build();
    if (!fresh.ok()) {
      std::fprintf(stderr, "sep_trace: %s\n", fresh.error().c_str());
      return 2;
    }
    sep::ExhaustiveOptions options;
    options.max_states = exhaustive_states;
    options.threads = 0;  // all hardware threads: exercise the stealing pool
    const sep::ExhaustiveReport report = sep::CheckSeparabilityExhaustive(**fresh, options);
    std::fprintf(stderr, "sep_trace: exhaustive: %s\n", report.Summary().c_str());
  }

  // --colour filters the chrome/text exports too, so one regime's full
  // timeline (observable and device-time events alike) can be inspected.
  if (colour != -2 && format != Format::kCanonical && format != Format::kMetrics) {
    std::vector<sep::obs::TraceEvent> kept;
    for (const sep::obs::TraceEvent& e : events) {
      if (e.colour == colour) {
        kept.push_back(e);
      }
    }
    events.swap(kept);
  }

  std::string output;
  switch (format) {
    case Format::kChrome:
      output = sep::obs::ChromeTraceJson(events);
      break;
    case Format::kText:
      output = sep::obs::TraceText(events);
      break;
    case Format::kCanonical:
      output = sep::obs::CanonicalColourTrace(events, colour);
      break;
    case Format::kMetrics:
      output = sep::obs::MetricsText();
      break;
  }

  if (out_path.empty()) {
    std::fputs(output.c_str(), stdout);
  } else {
    FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "sep_trace: cannot write %s\n", out_path.c_str());
      return 2;
    }
    std::fwrite(output.data(), 1, output.size(), f);
    std::fclose(f);
  }

  std::fprintf(stderr, "sep_trace: %zu step(s), %zu event(s)%s\n", executed, events.size(),
               sep::obs::Recorder().dropped() > 0 ? " (ring dropped some)" : "");
  return 0;
}
