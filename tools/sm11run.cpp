// sm11run — assemble and execute an SM-11 program from the command line.
//
//   sm11run prog.s                 run bare (kernel mode, identity mapping)
//   sm11run --regime prog.s       run as the sole regime of a separation
//                                  kernel (user mode, kernel-call ABI)
//   sm11run --steps N prog.s      step budget (default 100000)
//   sm11run --dump ADDR COUNT     print a memory range after the run
//   sm11run --listing prog.s      print the assembler listing and exit
//   sm11run --disasm prog.s       disassemble each instruction as it runs
//   sm11run --trace FILE prog.s   write a Chrome trace-event JSON of the run
//   sm11run --metrics FILE prog.s write the flat metrics dump of the run
//
// The program's serial line (if it uses one) is the process's stdin/stdout:
// input bytes are injected into the device before the run; transmitted
// words are printed as characters afterwards.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/kernel_system.h"
#include "src/base/strings.h"
#include "src/machine/devices.h"
#include "src/machine/machine.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"
#include "src/sm11asm/assembler.h"

namespace {

struct Options {
  std::string path;
  bool as_regime = false;
  bool listing = false;
  bool disasm = false;
  std::size_t steps = 100000;
  bool dump = false;
  unsigned dump_addr = 0;
  unsigned dump_count = 0;
  std::string trace_path;
  std::string metrics_path;
  bool superblock = true;
};

constexpr char kUsage[] =
    "usage: sm11run [--regime] [--steps N] [--dump ADDR COUNT] [--listing]\n"
    "               [--disasm] [--trace FILE] [--metrics FILE]\n"
    "               [--superblock on|off] prog.s\n";

int UsageError(const char* message, const char* value) {
  std::fprintf(stderr, "sm11run: %s: %s\n%s", message, value, kUsage);
  return 2;
}

sep::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return sep::Err("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int RunBare(const sep::AssembledProgram& program, const Options& options) {
  using namespace sep;
  MachineConfig config;
  config.memory_words = 1u << 15;
  Machine machine(config);
  machine.set_superblock_enabled(options.superblock);
  for (int page = 0; page < 4; ++page) {
    machine.mmu().SetPage(CpuMode::kKernel, page,
                          {static_cast<PhysAddr>(page) * kPageWords, kPageWords,
                           PageAccess::kReadWrite});
  }
  machine.mmu().SetPage(CpuMode::kKernel, 7, {config.io_base, kPageWords,
                                              PageAccess::kReadWrite});
  int slu = machine.AddDevice(std::make_unique<SerialLine>("console", 16, 4, 1));

  machine.memory().LoadImage(program.base, program.words);
  machine.cpu().set_pc(program.EntryPoint());
  machine.cpu().set_sp(0x1000);

  // stdin (if redirected) feeds the console device.
  if (!isatty(0)) {
    int c;
    while ((c = std::getchar()) != EOF) {
      machine.device(slu).InjectInput(static_cast<Word>(c));
    }
  }

  std::size_t executed = 0;
  while (executed < options.steps && !machine.halted()) {
    if (options.disasm && !machine.waiting()) {
      const Word pc = machine.cpu().pc();
      std::optional<Word> w0 = machine.PeekVirt(pc);
      if (w0.has_value()) {
        if (std::optional<DecodedInsn> insn = Decode(*w0)) {
          const Word e1 = machine.PeekVirt(pc + 1).value_or(0);
          const Word e2 = machine.PeekVirt(pc + 2).value_or(0);
          std::fprintf(stderr, "%s: %s\n", Octal(pc).c_str(),
                       Disassemble(*insn, e1, e2).c_str());
        }
      }
    }
    machine.Step();
    ++executed;
  }

  std::vector<Word> out = machine.device(slu).DrainOutput();
  for (Word w : out) {
    std::putchar(static_cast<int>(w & 0xFF));
  }
  std::fprintf(stderr, "\n[%zu steps, %s]\n", executed,
               machine.halted() ? "halted" : "step budget exhausted");
  if (options.dump) {
    for (unsigned i = 0; i < options.dump_count; ++i) {
      const unsigned addr = options.dump_addr + i;
      std::printf("%06o: %06o\n", addr, machine.memory().Read(addr));
    }
  }
  return machine.halted() ? 0 : 3;
}

int RunRegime(const std::string& source, const Options& options) {
  using namespace sep;
  SystemBuilder builder;
  int slu = builder.AddDevice(std::make_unique<SerialLine>("console", 16, 4, 1));
  Result<int> regime = builder.AddRegime("main", 4096, source, {slu});
  if (!regime.ok()) {
    std::fprintf(stderr, "error: %s\n", regime.error().c_str());
    return 1;
  }
  Result<std::unique_ptr<KernelizedSystem>> system = builder.Build();
  if (!system.ok()) {
    std::fprintf(stderr, "error: %s\n", system.error().c_str());
    return 1;
  }
  (*system)->machine().set_superblock_enabled(options.superblock);
  if (!isatty(0)) {
    int c;
    while ((c = std::getchar()) != EOF) {
      (*system)->machine().device(slu).InjectInput(static_cast<Word>(c));
    }
  }
  std::size_t executed = (*system)->Run(options.steps);
  std::vector<Word> out = (*system)->machine().device(slu).DrainOutput();
  for (Word w : out) {
    std::putchar(static_cast<int>(w & 0xFF));
  }
  std::fprintf(stderr, "\n[%zu steps, %s; %llu kernel calls, %llu swaps]\n", executed,
               (*system)->machine().halted() ? "halted" : "budget exhausted",
               static_cast<unsigned long long>((*system)->kernel().KernelCallCount()),
               static_cast<unsigned long long>((*system)->kernel().SwapCount()));
  if (options.dump) {
    const RegimeConfig& rc = (*system)->kernel().config().regimes[0];
    for (unsigned i = 0; i < options.dump_count; ++i) {
      const unsigned addr = options.dump_addr + i;
      if (addr < rc.mem_words) {
        std::printf("%06o: %06o\n", addr,
                    (*system)->machine().memory().Read(rc.mem_base + addr));
      }
    }
  }
  return (*system)->machine().halted() ? 0 : 3;
}

}  // namespace

int WriteFileOrDie(const std::string& path, const std::string& data) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "sm11run: cannot write %s\n", path.c_str());
    return 2;
  }
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return 0;
}

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--regime") {
      options.as_regime = true;
    } else if (arg == "--listing") {
      options.listing = true;
    } else if (arg == "--disasm") {
      options.disasm = true;
    } else if (arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--trace" && i + 1 < argc) {
      options.trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      options.metrics_path = argv[++i];
    } else if (arg == "--superblock" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "on") {
        options.superblock = true;
      } else if (value == "off") {
        options.superblock = false;
      } else {
        return UsageError("--superblock must be 'on' or 'off'", argv[i]);
      }
    } else if (arg == "--steps" && i + 1 < argc) {
      const std::optional<long long> parsed = sep::ParseInt(argv[++i], 1, 1LL << 40, 0);
      if (!parsed.has_value()) {
        return UsageError("--steps needs a positive step count", argv[i]);
      }
      options.steps = static_cast<std::size_t>(*parsed);
    } else if (arg == "--dump" && i + 2 < argc) {
      options.dump = true;
      const std::optional<long long> addr = sep::ParseInt(argv[++i], 0, 0xFFFF, 0);
      if (!addr.has_value()) {
        return UsageError("--dump ADDR must be a 16-bit address", argv[i]);
      }
      const std::optional<long long> count = sep::ParseInt(argv[++i], 0, 0x10000, 0);
      if (!count.has_value()) {
        return UsageError("--dump COUNT must be in [0, 65536]", argv[i]);
      }
      options.dump_addr = static_cast<unsigned>(*addr);
      options.dump_count = static_cast<unsigned>(*count);
    } else if (!arg.empty() && arg[0] != '-') {
      options.path = arg;
    } else {
      return UsageError("unknown or incomplete argument", arg.c_str());
    }
  }
  if (options.path.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  sep::Result<std::string> source = ReadFile(options.path);
  if (!source.ok()) {
    std::fprintf(stderr, "error: %s\n", source.error().c_str());
    return 1;
  }
  sep::Result<sep::AssembledProgram> program = sep::Assemble(*source);
  if (!program.ok()) {
    std::fprintf(stderr, "assembly error: %s\n", program.error().c_str());
    return 1;
  }
  if (options.listing) {
    for (const std::string& line : program->listing) {
      std::printf("%s\n", line.c_str());
    }
    return 0;
  }

  const bool observe = !options.trace_path.empty() || !options.metrics_path.empty();
  if (observe) {
    sep::obs::Recorder().Start(std::size_t{1} << 18);
  }
  const int rc = options.as_regime ? RunRegime(*source, options) : RunBare(*program, options);
  if (observe) {
    sep::obs::Recorder().Stop();
    const std::vector<sep::obs::TraceEvent> events = sep::obs::Recorder().Drain();
    if (!options.trace_path.empty()) {
      const int wrc = WriteFileOrDie(options.trace_path, sep::obs::ChromeTraceJson(events));
      if (wrc != 0) return wrc;
    }
    if (!options.metrics_path.empty()) {
      const int wrc = WriteFileOrDie(options.metrics_path, sep::obs::MetricsText());
      if (wrc != 0) return wrc;
    }
  }
  return rc;
}
