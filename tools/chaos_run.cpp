// Chaos soak harness: drives the SNFE pair over a reliable tunnel while the
// "network" links misbehave at escalating rates, and reports what the wire
// did versus what the hosts saw.
//
//   chaos_run [--trace FILE] [--metrics FILE] [packets] [seed]
//
// For each fault rate the harness prints wire-level counters (drops,
// corruptions, ...), protocol effort (segments, retransmits, timeouts) and
// the verdict: whether the receiving host's packet stream was byte-identical
// to the fault-free baseline. Rates climb until the protocol gives up, so
// the output shows both the tolerated envelope and the failure mode beyond
// it (with bounded retries the line is declared dead rather than wedged).
//
// --trace FILE writes a Chrome trace-event JSON of the run's network events
// (retransmits, timeouts, injected faults); --metrics FILE writes the flat
// metrics dump. Either flag turns the recorder on for the whole run.
//
// CRASH-CHAOS SCHEDULER (experiment E18). --seed-range A..B switches to the
// sweep mode: for every seed in [A, B] the SNFE pair runs over a CRASH-
// SURVIVABLE tunnel (src/distributed/recoverable.h) whose two relay machines
// die under a seeded NodeFaultPlan while the wire carries drop+corrupt
// chaos. Each seed deterministically fixes the whole (crash-point x
// restart-delay x link-fault) schedule; the verdict per seed is whether the
// receiving host's stream was byte-identical to the undisturbed baseline.
// Any failing seed makes the exit status non-zero; with --record FILE the
// failing schedule (the crashes the run actually performed) is greedily
// shrunk to a minimal still-failing schedule and appended to FILE, which
// --replay FILE re-executes to confirm the failure reproduces exactly.
// --break-resync disables the write-ahead ack-commit rule and the restart
// handshake — the deliberately broken configuration the sweep must catch.
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/components/snfe_receive.h"
#include "src/distributed/reliable.h"
#include "src/kernel/config.h"  // kMaxBatchWords bounds --batch-words
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace sep {
namespace {

std::vector<Frame> Baseline(int packets) {
  Network net;
  SnfePairTopology topo = BuildSnfePair(net, CensorStrictness::kSyntax, packets);
  net.Run(40000);
  return static_cast<HostSink&>(net.process(topo.host_rx)).packets();
}

bool SameStream(const std::vector<Frame>& a, const std::vector<Frame>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].type != b[i].type || a[i].fields != b[i].fields) {
      return false;
    }
  }
  return true;
}

constexpr char kUsage[] =
    "usage: chaos_run [--trace FILE] [--metrics FILE] [--batch-words N]\n"
    "                 [packets] [seed]\n"
    "       chaos_run --seed-range A..B [--rate PCT] [--record FILE]\n"
    "                 [--break-resync] [packets]\n"
    "       chaos_run --replay FILE\n"
    "  packets: 1..4096 (default 16); seed: u64, 0x-prefix ok\n"
    "  --batch-words N    tunnel segment size in payload words (1..64,\n"
    "                     default 2); 16 matches ReliableConfig::Batched()\n"
    "  --seed-range A..B  crash-chaos sweep over seeds A..B (inclusive)\n"
    "  --rate PCT         wire drop+corrupt percentage for the sweep (0..45,\n"
    "                     default 20)\n"
    "  --record FILE      append each failing seed's shrunk crash schedule\n"
    "  --replay FILE      re-run recorded schedules; fails unless every one\n"
    "                     reproduces its failure\n"
    "  --break-resync     disable ack-commit + restart resync (negative fixture)\n";

int UsageError(const char* message, const char* value) {
  std::fprintf(stderr, "chaos_run: %s: %s\n%s", message, value, kUsage);
  return 2;
}

bool WriteFile(const std::string& path, const std::string& data) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "chaos_run: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return true;
}

// --- crash-chaos sweep (E18) -------------------------------------------------

// One crash of a tunnel endpoint, in replay-file coordinates.
struct ExplicitCrash {
  bool ingress = false;  // else egress
  Tick at = 0;
  Tick delay = 0;
};

struct CrashChaosResult {
  bool identical = false;
  std::uint64_t crashes = 0;
  std::uint64_t cold = 0;
  std::vector<ExplicitCrash> performed;  // what the run actually did
};

// Runs the SNFE pair over the recoverable tunnel under one chaos schedule:
// seeded NodeFaultPlans when `script` is null, the exact scripted crashes
// otherwise (same wire seed either way — that is what makes a recorded
// schedule replayable).
CrashChaosResult RunCrashChaos(int packets, int rate, std::uint64_t seed, bool broken,
                               const std::vector<ExplicitCrash>* script,
                               const std::vector<Frame>& baseline) {
  Network net;
  TunnelRecoveryOptions recovery;
  if (broken) {
    recovery.ack_commit = false;
    recovery.resync = false;
  }
  SnfeRecoverableTopology topo =
      BuildSnfePairRecoverable(net, CensorStrictness::kSyntax, FaultSpec::DropCorrupt(rate),
                               seed ^ 0xD00DULL, recovery, packets);
  if (script == nullptr) {
    NodeFaultSpec spec;
    spec.crash_percent = 1;
    spec.max_crashes = 2;
    spec.min_restart_delay = 4;
    spec.max_restart_delay = 24;
    net.InjectNodeFaults(topo.tunnel.ingress_node, spec, seed);
    net.InjectNodeFaults(topo.tunnel.egress_node, spec, seed ^ 0xFEEDULL);
  } else {
    for (const ExplicitCrash& crash : *script) {
      net.ScheduleCrash(crash.ingress ? topo.tunnel.ingress_node : topo.tunnel.egress_node,
                        crash.at, crash.delay);
    }
  }

  const auto& sink = static_cast<HostSink&>(net.process(topo.pair.host_rx));
  for (int burst = 0; burst < 60 && sink.packets().size() < baseline.size(); ++burst) {
    net.Run(2000);  // early exit once everything arrived; chaos needs slack
  }

  CrashChaosResult result;
  result.identical = SameStream(sink.packets(), baseline);
  result.crashes = net.node_status(topo.tunnel.ingress_node).crashes +
                   net.node_status(topo.tunnel.egress_node).crashes;
  for (const Network::NodeRecoveryEvent& event : net.recovery_log()) {
    result.performed.push_back({event.node == topo.tunnel.ingress_node, event.crashed_at,
                                event.restarted_at - event.crashed_at});
    result.cold += event.cold ? 1 : 0;
  }
  return result;
}

// Greedy shrink: drop crashes one at a time while the failure persists. The
// result is 1-minimal — removing any single remaining crash makes the run
// pass again.
std::vector<ExplicitCrash> ShrinkSchedule(int packets, int rate, std::uint64_t seed,
                                          bool broken, const std::vector<Frame>& baseline,
                                          std::vector<ExplicitCrash> schedule) {
  bool progress = true;
  while (progress && schedule.size() > 1) {
    progress = false;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      std::vector<ExplicitCrash> candidate = schedule;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (!RunCrashChaos(packets, rate, seed, broken, &candidate, baseline).identical) {
        schedule = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return schedule;
}

std::string FormatSchedule(std::uint64_t seed, int rate, int packets, bool broken,
                           const std::vector<ExplicitCrash>& schedule) {
  std::string line = Format("seed %llu rate %d packets %d broken %d",
                            static_cast<unsigned long long>(seed), rate, packets,
                            broken ? 1 : 0);
  for (const ExplicitCrash& crash : schedule) {
    line += Format(" crash %s %llu %llu", crash.ingress ? "ingress" : "egress",
                   static_cast<unsigned long long>(crash.at),
                   static_cast<unsigned long long>(crash.delay));
  }
  line += "\n";
  return line;
}

bool AppendFile(const std::string& path, const std::string& data) {
  FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    std::fprintf(stderr, "chaos_run: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return true;
}

int SweepMain(std::uint64_t seed_lo, std::uint64_t seed_hi, int packets, int rate,
              bool broken, const std::string& record_path) {
  const std::vector<Frame> baseline = Baseline(packets);
  std::printf("chaos_run: crash-chaos sweep, seeds %llu..%llu, %d packets, %d%% "
              "drop+corrupt%s\n",
              static_cast<unsigned long long>(seed_lo),
              static_cast<unsigned long long>(seed_hi), packets, rate,
              broken ? ", ack-commit/resync DISABLED" : "");

  std::uint64_t failed = 0;
  for (std::uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
    const CrashChaosResult run = RunCrashChaos(packets, rate, seed, broken, nullptr, baseline);
    std::printf("seed %-8llu crashes %llu (%llu cold)  %s\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(run.crashes),
                static_cast<unsigned long long>(run.cold),
                run.identical ? "PASS" : "FAIL");
    if (run.identical) {
      continue;
    }
    ++failed;
    // Confirm the failure is reproducible from the performed crashes alone,
    // then shrink to a minimal failing schedule.
    std::vector<ExplicitCrash> schedule = run.performed;
    if (!schedule.empty() &&
        !RunCrashChaos(packets, rate, seed, broken, &schedule, baseline).identical) {
      schedule = ShrinkSchedule(packets, rate, seed, broken, baseline, schedule);
    }
    const std::string line = FormatSchedule(seed, rate, packets, broken, schedule);
    std::printf("  failing schedule (shrunk): %s", line.c_str());
    if (!record_path.empty() && !AppendFile(record_path, line)) {
      return 2;
    }
  }

  const std::uint64_t total = seed_hi - seed_lo + 1;
  std::printf("sweep: %llu/%llu seeds passed\n",
              static_cast<unsigned long long>(total - failed),
              static_cast<unsigned long long>(total));
  return failed == 0 ? 0 : 1;
}

int ReplayMain(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "chaos_run: cannot read %s\n", path.c_str());
    return 2;
  }
  std::string data;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    data.append(buf, n);
  }
  std::fclose(f);

  int line_no = 0;
  std::uint64_t reproduced = 0, total = 0;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t eol = data.find('\n', pos);
    const std::string line = data.substr(pos, eol == std::string::npos ? eol : eol - pos);
    pos = eol == std::string::npos ? data.size() : eol + 1;
    ++line_no;
    if (line.empty()) {
      continue;
    }
    // Tokenize and strictly parse: "seed S rate R packets P broken B
    // [crash ingress|egress AT DELAY]..."
    std::vector<std::string> tok;
    std::size_t start = 0;
    while (start < line.size()) {
      const std::size_t end = line.find(' ', start);
      tok.push_back(line.substr(start, end == std::string::npos ? end : end - start));
      start = end == std::string::npos ? line.size() : end + 1;
    }
    const auto bad = [&](const char* what) {
      std::fprintf(stderr, "chaos_run: %s:%d: malformed schedule (%s)\n", path.c_str(),
                   line_no, what);
      return 2;
    };
    if (tok.size() < 8 || tok[0] != "seed" || tok[2] != "rate" || tok[4] != "packets" ||
        tok[6] != "broken") {
      return bad("header");
    }
    const std::optional<long long> seed = ParseInt(tok[1], 0, LLONG_MAX, 0);
    const std::optional<long long> rate = ParseInt(tok[3], 0, 45);
    const std::optional<long long> packets = ParseInt(tok[5], 1, 4096);
    const std::optional<long long> broken = ParseInt(tok[7], 0, 1);
    if (!seed || !rate || !packets || !broken) {
      return bad("numeric field");
    }
    std::vector<ExplicitCrash> schedule;
    for (std::size_t i = 8; i < tok.size(); i += 4) {
      if (i + 3 >= tok.size() || tok[i] != "crash" ||
          (tok[i + 1] != "ingress" && tok[i + 1] != "egress")) {
        return bad("crash entry");
      }
      const std::optional<long long> at = ParseInt(tok[i + 2], 0, LLONG_MAX);
      const std::optional<long long> delay = ParseInt(tok[i + 3], 1, LLONG_MAX);
      if (!at || !delay) {
        return bad("crash numerics");
      }
      schedule.push_back({tok[i + 1] == "ingress", static_cast<Tick>(*at),
                          static_cast<Tick>(*delay)});
    }

    ++total;
    const std::vector<Frame> baseline = Baseline(static_cast<int>(*packets));
    const CrashChaosResult run =
        RunCrashChaos(static_cast<int>(*packets), static_cast<int>(*rate),
                      static_cast<std::uint64_t>(*seed), *broken != 0, &schedule, baseline);
    const bool ok = !run.identical;  // a recorded FAILURE must fail again
    reproduced += ok ? 1 : 0;
    std::printf("replay seed %-8llu crashes %zu  %s\n",
                static_cast<unsigned long long>(*seed), schedule.size(),
                ok ? "REPRODUCED" : "NOT REPRODUCED");
  }
  std::printf("replay: %llu/%llu schedules reproduced their failure\n",
              static_cast<unsigned long long>(reproduced),
              static_cast<unsigned long long>(total));
  if (total == 0) {
    std::fprintf(stderr, "chaos_run: %s holds no schedules\n", path.c_str());
    return 2;
  }
  return reproduced == total ? 0 : 1;
}

int Main(int argc, char** argv) {
  int packets = 16;
  std::uint64_t seed = 0xC4A05ULL;
  std::string trace_path;
  std::string metrics_path;
  std::string record_path;
  std::string replay_path;
  bool sweep = false;
  std::uint64_t seed_lo = 0, seed_hi = 0;
  int rate = 20;
  int batch_words = 2;
  bool break_resync = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--trace") {
      const char* value = next();
      if (value == nullptr) return UsageError("--trace needs a file", arg.c_str());
      trace_path = value;
    } else if (arg == "--metrics") {
      const char* value = next();
      if (value == nullptr) return UsageError("--metrics needs a file", arg.c_str());
      metrics_path = value;
    } else if (arg == "--seed-range") {
      const char* value = next();
      if (value == nullptr) return UsageError("--seed-range needs A..B", arg.c_str());
      const std::string range = value;
      const std::size_t dots = range.find("..");
      if (dots == std::string::npos) {
        return UsageError("--seed-range must be A..B", range.c_str());
      }
      const std::optional<long long> lo = ParseInt(range.substr(0, dots), 0, LLONG_MAX, 0);
      const std::optional<long long> hi = ParseInt(range.substr(dots + 2), 0, LLONG_MAX, 0);
      if (!lo || !hi || *hi < *lo || *hi - *lo >= (1 << 20)) {
        return UsageError("--seed-range must be A..B with A <= B, span < 2^20",
                          range.c_str());
      }
      seed_lo = static_cast<std::uint64_t>(*lo);
      seed_hi = static_cast<std::uint64_t>(*hi);
      sweep = true;
    } else if (arg == "--batch-words") {
      const char* value = next();
      if (value == nullptr) return UsageError("--batch-words needs a count", arg.c_str());
      const std::optional<long long> parsed = ParseInt(value, 1, kMaxBatchWords);
      if (!parsed.has_value()) {
        return UsageError("--batch-words must be an integer in [1, 64]", value);
      }
      batch_words = static_cast<int>(*parsed);
    } else if (arg == "--rate") {
      const char* value = next();
      if (value == nullptr) return UsageError("--rate needs a percentage", arg.c_str());
      const std::optional<long long> parsed = ParseInt(value, 0, 45);
      if (!parsed.has_value()) {
        return UsageError("--rate must be an integer in [0, 45]", value);
      }
      rate = static_cast<int>(*parsed);
    } else if (arg == "--record") {
      const char* value = next();
      if (value == nullptr) return UsageError("--record needs a file", arg.c_str());
      record_path = value;
    } else if (arg == "--replay") {
      const char* value = next();
      if (value == nullptr) return UsageError("--replay needs a file", arg.c_str());
      replay_path = value;
    } else if (arg == "--break-resync") {
      break_resync = true;
    } else if (positional == 0) {
      const std::optional<long long> parsed = ParseInt(arg, 1, 4096);
      if (!parsed.has_value()) {
        return UsageError("packets must be an integer in [1, 4096]", arg.c_str());
      }
      packets = static_cast<int>(*parsed);
      ++positional;
    } else if (positional == 1) {
      const std::optional<long long> parsed = ParseInt(arg, 0, LLONG_MAX, 0);
      if (!parsed.has_value()) {
        return UsageError("seed must be a non-negative integer", arg.c_str());
      }
      seed = static_cast<std::uint64_t>(*parsed);
      ++positional;
    } else {
      return UsageError("unexpected argument", arg.c_str());
    }
  }

  if (!replay_path.empty()) {
    return ReplayMain(replay_path);
  }
  if (sweep) {
    return SweepMain(seed_lo, seed_hi, packets, rate, break_resync, record_path);
  }

  const bool observe = !trace_path.empty() || !metrics_path.empty();
  if (observe) {
    obs::Recorder().Start(std::size_t{1} << 18);
  }

  const std::vector<Frame> baseline = Baseline(packets);
  std::printf("chaos_run: %d packets, seed 0x%llX, baseline %zu packets delivered\n\n",
              packets, static_cast<unsigned long long>(seed), baseline.size());
  std::printf("%-6s %-9s %-8s %-9s %-9s %-9s %-9s %-8s %s\n", "rate%", "offered",
              "dropped", "corrupt", "segments", "retrans", "timeouts", "resyncs",
              "verdict");

  std::uint64_t prev_retransmits = 0;
  bool monotone = true;
  for (int rate : {0, 2, 5, 10, 15, 20, 30, 40}) {
    Network net;
    ReliableConfig config;
    // Bounded retries: a hopeless line dies instead of wedging. Sized for
    // the envelope: at 20% drop+corrupt a retransmission round advances the
    // window with p ~ 0.15, so 64 consecutive failures (~3e-6) never happen
    // inside the envelope, while at 30%+ (p ~ 0.01) the line dies quickly.
    config.max_retries = 64;
    // Tunnel segment size: default 2 (the chaos-envelope sweet spot);
    // --batch-words 16 runs the soak with the Batched() preset's frames.
    config.max_segment_words = static_cast<std::size_t>(batch_words);
    SnfeLossyTopology topo =
        BuildSnfePairReliable(net, CensorStrictness::kSyntax, FaultSpec::DropCorrupt(rate),
                              seed + static_cast<std::uint64_t>(rate), packets,
                              /*key=*/0xC0FFEE, config);
    net.Run(rate == 0 ? 40000 : 250000);

    const auto& got = static_cast<HostSink&>(net.process(topo.pair.host_rx)).packets();
    const ReliableSenderStats& tx = TunnelSenderStats(net, topo.tunnel);
    const ReliableReceiverStats& rx = TunnelReceiverStats(net, topo.tunnel);
    const FaultCounters* wire = net.FaultCountersFor(topo.tunnel.data_link);

    const char* verdict;
    if (tx.gave_up) {
      verdict = "GAVE UP (line declared dead)";
    } else if (SameStream(got, baseline)) {
      verdict = "IDENTICAL";
    } else {
      verdict = "MISMATCH";
    }
    if (tx.retransmits < prev_retransmits && !tx.gave_up) {
      monotone = false;
    }
    prev_retransmits = tx.gave_up ? prev_retransmits : tx.retransmits;

    std::printf("%-6d %-9llu %-8llu %-9llu %-9llu %-9llu %-9llu %-8llu %s\n", rate,
                static_cast<unsigned long long>(wire ? wire->offered : 0),
                static_cast<unsigned long long>(wire ? wire->dropped : 0),
                static_cast<unsigned long long>(wire ? wire->corrupted : 0),
                static_cast<unsigned long long>(tx.segments_sent),
                static_cast<unsigned long long>(tx.retransmits),
                static_cast<unsigned long long>(tx.timeouts),
                static_cast<unsigned long long>(rx.resyncs), verdict);
  }

  std::printf("\nretransmit counts monotone with fault rate: %s\n",
              monotone ? "yes" : "NO");

  if (observe) {
    obs::Recorder().Stop();
    const std::vector<obs::TraceEvent> events = obs::Recorder().Drain();
    if (!trace_path.empty() && !WriteFile(trace_path, obs::ChromeTraceJson(events))) {
      return 2;
    }
    if (!metrics_path.empty() && !WriteFile(metrics_path, obs::MetricsText())) {
      return 2;
    }
    if (obs::Recorder().dropped() > 0) {
      std::fprintf(stderr, "chaos_run: note: trace ring dropped %llu event(s)\n",
                   static_cast<unsigned long long>(obs::Recorder().dropped()));
    }
  }
  return monotone ? 0 : 1;
}

}  // namespace
}  // namespace sep

int main(int argc, char** argv) { return sep::Main(argc, argv); }
