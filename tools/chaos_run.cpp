// Chaos soak harness: drives the SNFE pair over a reliable tunnel while the
// "network" links misbehave at escalating rates, and reports what the wire
// did versus what the hosts saw.
//
//   chaos_run [packets] [seed]
//
// For each fault rate the harness prints wire-level counters (drops,
// corruptions, ...), protocol effort (segments, retransmits, timeouts) and
// the verdict: whether the receiving host's packet stream was byte-identical
// to the fault-free baseline. Rates climb until the protocol gives up, so
// the output shows both the tolerated envelope and the failure mode beyond
// it (with bounded retries the line is declared dead rather than wedged).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/components/snfe_receive.h"
#include "src/distributed/reliable.h"

namespace sep {
namespace {

std::vector<Frame> Baseline(int packets) {
  Network net;
  SnfePairTopology topo = BuildSnfePair(net, CensorStrictness::kSyntax, packets);
  net.Run(40000);
  return static_cast<HostSink&>(net.process(topo.host_rx)).packets();
}

bool SameStream(const std::vector<Frame>& a, const std::vector<Frame>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].type != b[i].type || a[i].fields != b[i].fields) {
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  const int packets = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 0xC4A05ULL;

  const std::vector<Frame> baseline = Baseline(packets);
  std::printf("chaos_run: %d packets, seed 0x%llX, baseline %zu packets delivered\n\n",
              packets, static_cast<unsigned long long>(seed), baseline.size());
  std::printf("%-6s %-9s %-8s %-9s %-9s %-9s %-9s %-8s %s\n", "rate%", "offered",
              "dropped", "corrupt", "segments", "retrans", "timeouts", "resyncs",
              "verdict");

  std::uint64_t prev_retransmits = 0;
  bool monotone = true;
  for (int rate : {0, 2, 5, 10, 15, 20, 30, 40}) {
    Network net;
    ReliableConfig config;
    // Bounded retries: a hopeless line dies instead of wedging. Sized for
    // the envelope: at 20% drop+corrupt a retransmission round advances the
    // window with p ~ 0.15, so 64 consecutive failures (~3e-6) never happen
    // inside the envelope, while at 30%+ (p ~ 0.01) the line dies quickly.
    config.max_retries = 64;
    SnfeLossyTopology topo =
        BuildSnfePairReliable(net, CensorStrictness::kSyntax, FaultSpec::DropCorrupt(rate),
                              seed + static_cast<std::uint64_t>(rate), packets,
                              /*key=*/0xC0FFEE, config);
    net.Run(rate == 0 ? 40000 : 250000);

    const auto& got = static_cast<HostSink&>(net.process(topo.pair.host_rx)).packets();
    const ReliableSenderStats& tx = TunnelSenderStats(net, topo.tunnel);
    const ReliableReceiverStats& rx = TunnelReceiverStats(net, topo.tunnel);
    const FaultCounters* wire = net.FaultCountersFor(topo.tunnel.data_link);

    const char* verdict;
    if (tx.gave_up) {
      verdict = "GAVE UP (line declared dead)";
    } else if (SameStream(got, baseline)) {
      verdict = "IDENTICAL";
    } else {
      verdict = "MISMATCH";
    }
    if (tx.retransmits < prev_retransmits && !tx.gave_up) {
      monotone = false;
    }
    prev_retransmits = tx.gave_up ? prev_retransmits : tx.retransmits;

    std::printf("%-6d %-9llu %-8llu %-9llu %-9llu %-9llu %-9llu %-8llu %s\n", rate,
                static_cast<unsigned long long>(wire ? wire->offered : 0),
                static_cast<unsigned long long>(wire ? wire->dropped : 0),
                static_cast<unsigned long long>(wire ? wire->corrupted : 0),
                static_cast<unsigned long long>(tx.segments_sent),
                static_cast<unsigned long long>(tx.retransmits),
                static_cast<unsigned long long>(tx.timeouts),
                static_cast<unsigned long long>(rx.resyncs), verdict);
  }

  std::printf("\nretransmit counts monotone with fault rate: %s\n",
              monotone ? "yes" : "NO");
  return monotone ? 0 : 1;
}

}  // namespace
}  // namespace sep

int main(int argc, char** argv) { return sep::Main(argc, argv); }
