// Chaos soak harness: drives the SNFE pair over a reliable tunnel while the
// "network" links misbehave at escalating rates, and reports what the wire
// did versus what the hosts saw.
//
//   chaos_run [--trace FILE] [--metrics FILE] [packets] [seed]
//
// For each fault rate the harness prints wire-level counters (drops,
// corruptions, ...), protocol effort (segments, retransmits, timeouts) and
// the verdict: whether the receiving host's packet stream was byte-identical
// to the fault-free baseline. Rates climb until the protocol gives up, so
// the output shows both the tolerated envelope and the failure mode beyond
// it (with bounded retries the line is declared dead rather than wedged).
//
// --trace FILE writes a Chrome trace-event JSON of the run's network events
// (retransmits, timeouts, injected faults); --metrics FILE writes the flat
// metrics dump. Either flag turns the recorder on for the whole run.
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/components/snfe_receive.h"
#include "src/distributed/reliable.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace sep {
namespace {

std::vector<Frame> Baseline(int packets) {
  Network net;
  SnfePairTopology topo = BuildSnfePair(net, CensorStrictness::kSyntax, packets);
  net.Run(40000);
  return static_cast<HostSink&>(net.process(topo.host_rx)).packets();
}

bool SameStream(const std::vector<Frame>& a, const std::vector<Frame>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].type != b[i].type || a[i].fields != b[i].fields) {
      return false;
    }
  }
  return true;
}

constexpr char kUsage[] =
    "usage: chaos_run [--trace FILE] [--metrics FILE] [packets] [seed]\n"
    "  packets: 1..4096 (default 16); seed: u64, 0x-prefix ok\n";

int UsageError(const char* message, const char* value) {
  std::fprintf(stderr, "chaos_run: %s: %s\n%s", message, value, kUsage);
  return 2;
}

bool WriteFile(const std::string& path, const std::string& data) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "chaos_run: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  int packets = 16;
  std::uint64_t seed = 0xC4A05ULL;
  std::string trace_path;
  std::string metrics_path;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--trace") {
      const char* value = next();
      if (value == nullptr) return UsageError("--trace needs a file", arg.c_str());
      trace_path = value;
    } else if (arg == "--metrics") {
      const char* value = next();
      if (value == nullptr) return UsageError("--metrics needs a file", arg.c_str());
      metrics_path = value;
    } else if (positional == 0) {
      const std::optional<long long> parsed = ParseInt(arg, 1, 4096);
      if (!parsed.has_value()) {
        return UsageError("packets must be an integer in [1, 4096]", arg.c_str());
      }
      packets = static_cast<int>(*parsed);
      ++positional;
    } else if (positional == 1) {
      const std::optional<long long> parsed = ParseInt(arg, 0, LLONG_MAX, 0);
      if (!parsed.has_value()) {
        return UsageError("seed must be a non-negative integer", arg.c_str());
      }
      seed = static_cast<std::uint64_t>(*parsed);
      ++positional;
    } else {
      return UsageError("unexpected argument", arg.c_str());
    }
  }

  const bool observe = !trace_path.empty() || !metrics_path.empty();
  if (observe) {
    obs::Recorder().Start(std::size_t{1} << 18);
  }

  const std::vector<Frame> baseline = Baseline(packets);
  std::printf("chaos_run: %d packets, seed 0x%llX, baseline %zu packets delivered\n\n",
              packets, static_cast<unsigned long long>(seed), baseline.size());
  std::printf("%-6s %-9s %-8s %-9s %-9s %-9s %-9s %-8s %s\n", "rate%", "offered",
              "dropped", "corrupt", "segments", "retrans", "timeouts", "resyncs",
              "verdict");

  std::uint64_t prev_retransmits = 0;
  bool monotone = true;
  for (int rate : {0, 2, 5, 10, 15, 20, 30, 40}) {
    Network net;
    ReliableConfig config;
    // Bounded retries: a hopeless line dies instead of wedging. Sized for
    // the envelope: at 20% drop+corrupt a retransmission round advances the
    // window with p ~ 0.15, so 64 consecutive failures (~3e-6) never happen
    // inside the envelope, while at 30%+ (p ~ 0.01) the line dies quickly.
    config.max_retries = 64;
    SnfeLossyTopology topo =
        BuildSnfePairReliable(net, CensorStrictness::kSyntax, FaultSpec::DropCorrupt(rate),
                              seed + static_cast<std::uint64_t>(rate), packets,
                              /*key=*/0xC0FFEE, config);
    net.Run(rate == 0 ? 40000 : 250000);

    const auto& got = static_cast<HostSink&>(net.process(topo.pair.host_rx)).packets();
    const ReliableSenderStats& tx = TunnelSenderStats(net, topo.tunnel);
    const ReliableReceiverStats& rx = TunnelReceiverStats(net, topo.tunnel);
    const FaultCounters* wire = net.FaultCountersFor(topo.tunnel.data_link);

    const char* verdict;
    if (tx.gave_up) {
      verdict = "GAVE UP (line declared dead)";
    } else if (SameStream(got, baseline)) {
      verdict = "IDENTICAL";
    } else {
      verdict = "MISMATCH";
    }
    if (tx.retransmits < prev_retransmits && !tx.gave_up) {
      monotone = false;
    }
    prev_retransmits = tx.gave_up ? prev_retransmits : tx.retransmits;

    std::printf("%-6d %-9llu %-8llu %-9llu %-9llu %-9llu %-9llu %-8llu %s\n", rate,
                static_cast<unsigned long long>(wire ? wire->offered : 0),
                static_cast<unsigned long long>(wire ? wire->dropped : 0),
                static_cast<unsigned long long>(wire ? wire->corrupted : 0),
                static_cast<unsigned long long>(tx.segments_sent),
                static_cast<unsigned long long>(tx.retransmits),
                static_cast<unsigned long long>(tx.timeouts),
                static_cast<unsigned long long>(rx.resyncs), verdict);
  }

  std::printf("\nretransmit counts monotone with fault rate: %s\n",
              monotone ? "yes" : "NO");

  if (observe) {
    obs::Recorder().Stop();
    const std::vector<obs::TraceEvent> events = obs::Recorder().Drain();
    if (!trace_path.empty() && !WriteFile(trace_path, obs::ChromeTraceJson(events))) {
      return 2;
    }
    if (!metrics_path.empty() && !WriteFile(metrics_path, obs::MetricsText())) {
      return 2;
    }
    if (obs::Recorder().dropped() > 0) {
      std::fprintf(stderr, "chaos_run: note: trace ring dropped %llu event(s)\n",
                   static_cast<unsigned long long>(obs::Recorder().dropped()));
    }
  }
  return monotone ? 0 : 1;
}

}  // namespace
}  // namespace sep

int main(int argc, char** argv) { return sep::Main(argc, argv); }
