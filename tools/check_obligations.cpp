// check_obligations: schema + consistency gate for sepcheck's proof-
// obligation ledger.
//
//   check_obligations [--schema docs/obligations.schema.json] ledger.json
//
// Validates a document written by `sepcheck --obligations FILE` against the
// checked-in schema (docs/obligations.schema.json) and enforces the
// cross-record rules a generic schema checker cannot express:
//
//   * the per-entry summary and `open` count equal the counts recomputed
//     from the obligation records;
//   * an `annotated` obligation carries a non-empty discharge reason;
//   * a certified entry has zero open obligations and at least one record
//     for every one of the paper's six separability conditions.
//
// With --schema the schema file's "$id" must match the document's schema
// tag, so the two cannot drift apart silently. Exit 0 iff the ledger is
// valid; 1 on validation failure; 2 on usage or I/O errors.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/sepcheck/obligations.h"

namespace sep {
namespace {

// --- minimal JSON parser ------------------------------------------------------
//
// Just enough JSON for the ledger: objects, arrays, strings (with the
// escapes sepcheck emits), integers, booleans. Objects keep insertion
// order so duplicate keys can be rejected.

struct JsonValue;
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  long long number = 0;
  std::string str;
  std::vector<JsonValue> items;
  JsonMembers members;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue& out) {
    ok_ = ParseValue(out);
    SkipSpace();
    if (ok_ && pos_ != text_.size()) Fail("trailing content");
    return ok_;
  }
  const std::string& error() const { return error_; }

 private:
  void Fail(const std::string& what) {
    if (ok_) error_ = Format("offset %zu: %s", pos_, what.c_str());
    ok_ = false;
  }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    Fail(Format("expected '%c'", c));
    return false;
  }
  bool ParseLiteral(const char* word, JsonValue& out, JsonValue::Kind kind,
                    bool boolean) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) {
      Fail(Format("bad literal, expected %s", word));
      return false;
    }
    pos_ += n;
    out.kind = kind;
    out.boolean = boolean;
    return true;
  }
  bool ParseString(std::string& out) {
    if (!Consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // The ledger never emits \u escapes; accept and keep them raw.
            out += "\\u";
            break;
          default:
            Fail("bad escape");
            return false;
        }
      } else {
        out += c;
      }
    }
    Fail("unterminated string");
    return false;
  }
  bool ParseValue(JsonValue& out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        out.kind = JsonValue::Kind::kObject;
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          std::string key;
          if (!ParseString(key)) return false;
          if (out.Find(key) != nullptr) {
            Fail(Format("duplicate key \"%s\"", key.c_str()));
            return false;
          }
          if (!Consume(':')) return false;
          JsonValue v;
          if (!ParseValue(v)) return false;
          out.members.emplace_back(std::move(key), std::move(v));
          SkipSpace();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          return Consume('}');
        }
      }
      case '[': {
        ++pos_;
        out.kind = JsonValue::Kind::kArray;
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue v;
          if (!ParseValue(v)) return false;
          out.items.push_back(std::move(v));
          SkipSpace();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          return Consume(']');
        }
      }
      case '"':
        out.kind = JsonValue::Kind::kString;
        return ParseString(out.str);
      case 't':
        return ParseLiteral("true", out, JsonValue::Kind::kBool, true);
      case 'f':
        return ParseLiteral("false", out, JsonValue::Kind::kBool, false);
      case 'n':
        return ParseLiteral("null", out, JsonValue::Kind::kNull, false);
      default: {
        out.kind = JsonValue::Kind::kNumber;
        std::size_t end = pos_;
        if (end < text_.size() && text_[end] == '-') ++end;
        while (end < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[end]))) {
          ++end;
        }
        if (end == pos_ || (text_[pos_] == '-' && end == pos_ + 1)) {
          Fail("bad token");
          return false;
        }
        out.number = std::stoll(text_.substr(pos_, end - pos_));
        pos_ = end;
        return true;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

// --- ledger validation --------------------------------------------------------

constexpr const char* kConditions[] = {
    "memory-partition",  "channel-exclusivity", "io-exclusivity",
    "interrupt-routing", "register-save",       "kernel-call-legality",
};
constexpr const char* kStatuses[] = {"proved", "annotated", "open"};

int IndexOf(const char* const* table, int n, const std::string& s) {
  for (int i = 0; i < n; ++i) {
    if (s == table[i]) return i;
  }
  return -1;
}

class Validator {
 public:
  bool Validate(const JsonValue& doc) {
    if (doc.kind != JsonValue::Kind::kObject) {
      return Problem("top level", "document is not a JSON object");
    }
    CheckKeys(doc, "top level", {"schema", "conditions", "entries"});
    const JsonValue* schema = doc.Find("schema");
    if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
        schema->str != sepcheck::kObligationsSchemaTag) {
      Problem("top level", Format("\"schema\" must be \"%s\"",
                                  sepcheck::kObligationsSchemaTag));
    }
    const JsonValue* conditions = doc.Find("conditions");
    if (conditions == nullptr || conditions->kind != JsonValue::Kind::kArray ||
        conditions->items.size() != 6) {
      Problem("top level", "\"conditions\" must list the six conditions");
    } else {
      for (int i = 0; i < 6; ++i) {
        if (conditions->items[static_cast<std::size_t>(i)].str != kConditions[i]) {
          Problem("top level",
                  Format("conditions[%d] must be \"%s\"", i, kConditions[i]));
        }
      }
    }
    const JsonValue* entries = doc.Find("entries");
    if (entries == nullptr || entries->kind != JsonValue::Kind::kArray) {
      return Problem("top level", "\"entries\" must be an array");
    }
    for (const JsonValue& entry : entries->items) ValidateEntry(entry);
    return problems_ == 0;
  }

  int problems() const { return problems_; }

 private:
  bool Problem(const std::string& where, const std::string& what) {
    std::fprintf(stderr, "check_obligations: %s: %s\n", where.c_str(),
                 what.c_str());
    ++problems_;
    return false;
  }

  void CheckKeys(const JsonValue& obj, const std::string& where,
                 const std::vector<std::string>& allowed) {
    for (const auto& [key, value] : obj.members) {
      bool known = false;
      for (const std::string& a : allowed) known = known || key == a;
      if (!known) Problem(where, Format("unknown key \"%s\"", key.c_str()));
    }
  }

  void ValidateEntry(const JsonValue& entry) {
    if (entry.kind != JsonValue::Kind::kObject) {
      Problem("entries", "entry is not an object");
      return;
    }
    const JsonValue* name = entry.Find("entry");
    const std::string where =
        name != nullptr && name->kind == JsonValue::Kind::kString && !name->str.empty()
            ? name->str
            : "(unnamed entry)";
    if (where == "(unnamed entry)") {
      Problem(where, "\"entry\" must be a non-empty string");
    }
    CheckKeys(entry, where, {"entry", "certified", "open", "summary", "obligations"});
    const JsonValue* certified = entry.Find("certified");
    if (certified == nullptr || certified->kind != JsonValue::Kind::kBool) {
      Problem(where, "\"certified\" must be a boolean");
      return;
    }
    const JsonValue* obligations = entry.Find("obligations");
    if (obligations == nullptr || obligations->kind != JsonValue::Kind::kArray) {
      Problem(where, "\"obligations\" must be an array");
      return;
    }

    // Recompute the per-condition counts from the records.
    int counts[6][3] = {};
    for (const JsonValue& o : obligations->items) {
      ValidateObligation(o, where, counts);
    }
    int open = 0;
    bool covered = true;
    for (const auto& by_status : counts) {
      open += by_status[2];
      covered = covered && by_status[0] + by_status[1] + by_status[2] > 0;
    }

    const JsonValue* open_field = entry.Find("open");
    if (open_field == nullptr || open_field->kind != JsonValue::Kind::kNumber ||
        open_field->number != open) {
      Problem(where, Format("\"open\" must equal the recomputed count %d", open));
    }
    ValidateSummary(entry.Find("summary"), where, counts);

    // The certification gate: a certified unit must carry a fully
    // discharged ledger that touches every condition.
    if (certified->boolean) {
      if (open != 0) {
        Problem(where, Format("certified entry has %d open obligation(s)", open));
      }
      if (!covered) {
        Problem(where, "certified entry does not cover all six conditions");
      }
    }
  }

  void ValidateObligation(const JsonValue& o, const std::string& where,
                          int (&counts)[6][3]) {
    if (o.kind != JsonValue::Kind::kObject) {
      Problem(where, "obligation is not an object");
      return;
    }
    CheckKeys(o, where,
              {"condition", "status", "unit", "address", "line", "instruction",
               "detail", "discharge"});
    const JsonValue* condition = o.Find("condition");
    const JsonValue* status = o.Find("status");
    const int c = condition != nullptr && condition->kind == JsonValue::Kind::kString
                      ? IndexOf(kConditions, 6, condition->str)
                      : -1;
    const int s = status != nullptr && status->kind == JsonValue::Kind::kString
                      ? IndexOf(kStatuses, 3, status->str)
                      : -1;
    if (c < 0) {
      Problem(where, "obligation \"condition\" is not one of the six conditions");
    }
    if (s < 0) {
      Problem(where, "obligation \"status\" must be proved/annotated/open");
    }
    if (c >= 0 && s >= 0) ++counts[c][s];

    const JsonValue* unit = o.Find("unit");
    if (unit == nullptr || unit->kind != JsonValue::Kind::kString || unit->str.empty()) {
      Problem(where, "obligation \"unit\" must be a non-empty string");
    }
    const JsonValue* address = o.Find("address");
    if (address != nullptr && (address->kind != JsonValue::Kind::kNumber ||
                               address->number < 0 || address->number > 0xFFFF)) {
      Problem(where, "obligation \"address\" must be a machine address");
    }
    const JsonValue* line = o.Find("line");
    if (line != nullptr &&
        (line->kind != JsonValue::Kind::kNumber || line->number < 1)) {
      Problem(where, "obligation \"line\" must be a positive line number");
    }
    const JsonValue* discharge = o.Find("discharge");
    if (s == 1 && (discharge == nullptr ||
                   discharge->kind != JsonValue::Kind::kString ||
                   discharge->str.empty())) {
      Problem(where, "annotated obligation lacks a discharge reason");
    }
  }

  void ValidateSummary(const JsonValue* summary, const std::string& where,
                       const int (&counts)[6][3]) {
    if (summary == nullptr || summary->kind != JsonValue::Kind::kObject) {
      Problem(where, "\"summary\" must be an object");
      return;
    }
    std::vector<std::string> allowed;
    for (const char* c : kConditions) allowed.emplace_back(c);
    CheckKeys(*summary, where, allowed);
    for (int c = 0; c < 6; ++c) {
      const JsonValue* per = summary->Find(kConditions[c]);
      if (per == nullptr || per->kind != JsonValue::Kind::kObject) {
        Problem(where, Format("summary lacks \"%s\"", kConditions[c]));
        continue;
      }
      for (int s = 0; s < 3; ++s) {
        const JsonValue* n = per->Find(kStatuses[s]);
        if (n == nullptr || n->kind != JsonValue::Kind::kNumber ||
            n->number != counts[c][s]) {
          Problem(where, Format("summary[%s][%s] must equal the recomputed %d",
                                kConditions[c], kStatuses[s], counts[c][s]));
        }
      }
    }
  }

  int problems_ = 0;
};

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int Usage() {
  std::fputs(
      "usage: check_obligations [--schema docs/obligations.schema.json] "
      "ledger.json\n",
      stderr);
  return 2;
}

}  // namespace
}  // namespace sep

int main(int argc, char** argv) {
  std::string ledger_path;
  std::string schema_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--schema" && i + 1 < argc) {
      schema_path = argv[++i];
    } else if (arg == "--help") {
      sep::Usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-' && ledger_path.empty()) {
      ledger_path = arg;
    } else {
      return sep::Usage();
    }
  }
  if (ledger_path.empty()) return sep::Usage();

  if (!schema_path.empty()) {
    // Drift guard: the checked-in schema must describe the same document
    // version this validator (and sepcheck) implements.
    std::string schema_text;
    if (!sep::ReadFile(schema_path, schema_text)) {
      std::fprintf(stderr, "check_obligations: cannot open %s\n",
                   schema_path.c_str());
      return 2;
    }
    const std::string want =
        sep::Format("\"$id\": \"%s\"", sep::sepcheck::kObligationsSchemaTag);
    if (schema_text.find(want) == std::string::npos) {
      std::fprintf(stderr,
                   "check_obligations: %s does not declare $id %s — schema and "
                   "tool have drifted\n",
                   schema_path.c_str(), sep::sepcheck::kObligationsSchemaTag);
      return 1;
    }
  }

  std::string text;
  if (!sep::ReadFile(ledger_path, text)) {
    std::fprintf(stderr, "check_obligations: cannot open %s\n", ledger_path.c_str());
    return 2;
  }
  sep::JsonValue doc;
  sep::JsonParser parser(text);
  if (!parser.Parse(doc)) {
    std::fprintf(stderr, "check_obligations: %s: JSON parse error: %s\n",
                 ledger_path.c_str(), parser.error().c_str());
    return 1;
  }
  sep::Validator validator;
  if (!validator.Validate(doc)) {
    std::fprintf(stderr, "check_obligations: %s: %d problem(s)\n",
                 ledger_path.c_str(), validator.problems());
    return 1;
  }
  std::printf("check_obligations: %s: OK (%zu entries)\n", ledger_path.c_str(),
              doc.Find("entries")->items.size());
  return 0;
}
