// The system catalogue `tools/sepcheck --all` lints.
//
// Every in-tree guest program (examples + kernelized tests, via
// guest_corpus.h) appears here under its deployed channel topology, plus
// intentional negative fixtures that MUST be flagged — so the CTest gate
// fails both when a real guest stops certifying and when the analyzer goes
// blind. Entries with a probe spec also carry the machine-level semantic
// ground truth used by the E14 experiment.
#ifndef SEP_SEPCHECK_CATALOG_H_
#define SEP_SEPCHECK_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sepcheck/analyzer.h"
#include "src/sepcheck/probe.h"

namespace sep::sepcheck {

struct CatalogEntry {
  std::string name;
  SystemSpec spec;
  // Per-regime device kind ("" or "crypto"), parallel to spec.regimes;
  // used when the entry is built into a runnable system for the probe.
  std::vector<std::string> device_kinds;

  bool expect_certified = true;
  // Entry is expected to produce at least one annotation-discharged
  // finding (the paper's flagged-then-argued-away pattern).
  bool expect_discharged = false;

  bool has_probe = false;
  MachineProbeSpec probe;
  bool probe_expect_leak = false;
};

const std::vector<CatalogEntry>& Catalog();

// Builds the runnable kernelized system for an entry (for the semantic
// probe and for tests that want to execute catalogue systems).
Result<std::unique_ptr<KernelizedSystem>> BuildEntrySystem(const CatalogEntry& entry);

}  // namespace sep::sepcheck

#endif  // SEP_SEPCHECK_CATALOG_H_
