#include "src/sepcheck/guest_corpus.h"

namespace sep::sepcheck {

// RED: counts up and streams the counter to BLACK over the kernel channel.
const char kQuickstartRed[] = R"(
; sepcheck: disjoint-channel 0 kernel ring discipline keeps the ends time-disjoint (paper s4 wire-cut argument)
START:  CLR R3
LOOP:   INC R3
        MOV R3, R1      ; word to send
        CLR R0          ; channel 0
        TRAP 1          ; SEND (drop on backpressure)
        TRAP 0          ; SWAP: yield the processor
        CMP #20, R3
        BNE LOOP
        TRAP 7          ; HALT: this regime is done
)";

// BLACK: receives words and accumulates them at partition address 0x80.
const char kQuickstartBlack[] = R"(
START:  CLR R5          ; running sum
LOOP:   CLR R0          ; channel 0
        TRAP 2          ; RECV -> R0 status, R1 word
        TST R0
        BEQ YIELD
        ADD R1, R5
        MOV R5, @0x80
        BR LOOP
YIELD:  TRAP 0          ; SWAP
        BR LOOP
)";

// Red regime: for each of 6 packets, sends a 3-word header (dest, len,
// flags) to the censor on channel 0 and one crypto-encrypted payload word
// to black on channel 1. The crypto unit is its trusted device.
const char kSnfeRed[] = R"(
; sepcheck: disjoint-channel 0 kernel ring discipline keeps the ends time-disjoint (paper s4)
; sepcheck: disjoint-channel 1 kernel ring discipline keeps the ends time-disjoint (paper s4)
        .EQU CRYPTO, 0xE000   ; CCSR +0, DATA_IN +1, DATA_OUT +2
        .EQU N, 6
START:  CLR R3
LOOP:   INC R3
        ; header: dest = i & 7
        MOV R3, R1
        BIC #0xFFF8, R1
        CLR R0
        JSR SENDW
        ; header: len = 1
        MOV #1, R1
        CLR R0
        JSR SENDW
        ; header: flags = 0
        CLR R1
        CLR R0
        JSR SENDW
        ; payload 0x100+i through the crypto device
        MOV #0x100, R2
        ADD R3, R2
        MOV #CRYPTO, R4
        MOV R2, 1(R4)
CWAIT:  MOV (R4), R5
        BIT #0x80, R5
        BEQ CWAIT
        MOV 2(R4), R1         ; ciphertext
        MOV #1, R0
        JSR SENDW
        CMP #N, R3
        BNE LOOP
        TRAP 7
; send R1 on channel R0, retrying over SWAP until accepted
SENDW:  MOV R0, R5
SRETRY: MOV R5, R0
        TRAP 1
        TST R0
        BNE SDONE
        TRAP 0
        BR SRETRY
SDONE:  RTS
)";

// Censor regime: procedural checks on 3-word headers (dest < 64,
// len <= 128, flags <= 1); forwards valid headers on channel 2, counts
// drops at DROPS.
const char kSnfeCensor[] = R"(
; sepcheck: disjoint-channel 2 kernel ring discipline keeps the ends time-disjoint (paper s4)
START:  JSR RECVW
        MOV R1, R2            ; dest
        JSR RECVW
        MOV R1, R3            ; len
        JSR RECVW
        MOV R1, R4            ; flags
        CMP #63, R2
        BCS DROP              ; dest > 63
        CMP #128, R3
        BCS DROP              ; len > 128
        CMP #1, R4
        BCS DROP              ; flags > 1
        MOV R2, R1
        JSR SENDW
        MOV R3, R1
        JSR SENDW
        MOV R4, R1
        JSR SENDW
        BR START
DROP:   MOV DROPS, R1
        INC R1
        MOV R1, @DROPS
        BR START
RECVW:  CLR R0
        TRAP 2
        TST R0
        BNE RDONE
        TRAP 0
        BR RECVW
RDONE:  RTS
SENDW:  MOV #2, R0
        TRAP 1
        TST R0
        BNE SDONE
        TRAP 0
        BR SENDW
SDONE:  RTS
DROPS:  .WORD 0
)";

// Black regime: pairs censored headers (channel 2) with ciphertext words
// (channel 1) into 4-word packets at PKTS. The packet area is explicitly
// bounded: STOREW compares the cursor against the last packet word before
// every store, so sepcheck proves the writes stay inside [PKTS, PKTE)
// without any trust annotation. The deployed supply (6 packets = 24 words)
// exactly fills the area, so the guard never fires at run time.
const char kSnfeBlack[] = R"(
        .EQU PKTS, 0x100      ; packet area: 24 words
        .EQU PKTE, 0x118
START:  MOV #PKTS, R5
LOOP:   MOV #2, R0
        JSR RECVC
        JSR STOREW
        MOV #2, R0
        JSR RECVC
        JSR STOREW
        MOV #2, R0
        JSR RECVC
        JSR STOREW
        MOV #1, R0
        JSR RECVC
        JSR STOREW
        BR LOOP
RECVC:  MOV R0, R4
RLOOP:  MOV R4, R0
        TRAP 2
        TST R0
        BNE RDONE
        TRAP 0
        BR RLOOP
RDONE:  RTS
; store R1 at the packet cursor unless the area is full
STOREW: CMP #PKTE-1, R5
        BCS SFULL             ; cursor beyond the last packet word: drop
        MOV R1, (R5)
        INC R5
SFULL:  RTS
)";

// Guard regime. The HIGH->LOW buffer walk (R4 over BUF) takes its length
// from the peer, so the cursor is compared against BUF's last word before
// every buffer access: a HIGH peer sending len > 32 has its excess words
// consumed but not stored. sepcheck's branch refinement proves both the
// fill and the release walk stay inside BUF's 32 words — no trust
// annotation needed (earlier versions discharged these stores by hand).
const char kGuardGuard[] = R"(
; sepcheck: disjoint-channel 0 kernel ring discipline keeps the ends time-disjoint (paper s4)
; sepcheck: disjoint-channel 1 kernel ring discipline keeps the ends time-disjoint (paper s4)
; sepcheck: disjoint-channel 2 kernel ring discipline keeps the ends time-disjoint (paper s4)
; sepcheck: disjoint-channel 3 kernel ring discipline keeps the ends time-disjoint (paper s4)
        .EQU FROM_LOW, 0
        .EQU FROM_HIGH, 1
        .EQU TO_LOW, 2
        .EQU TO_HIGH, 3

MAIN:   ; --- LOW -> HIGH: pass through unhindered ---
        MOV #FROM_LOW, R0
        TRAP 2
        TST R0
        BEQ TRYHI
        MOV R1, R3          ; len
        MOV #TO_HIGH, R0
        JSR SENDB
CPY:    TST R3
        BEQ TRYHI
LRCV:   MOV #FROM_LOW, R0
        TRAP 2
        TST R0
        BEQ LWAIT
        MOV #TO_HIGH, R0
        JSR SENDB
        DEC R3
        BR CPY
LWAIT:  TRAP 0
        BR LRCV

TRYHI:  ; --- HIGH -> LOW: buffer, review, release or deny ---
        MOV #FROM_HIGH, R0
        TRAP 2
        TST R0
        BEQ YIELD
        MOV R1, R3          ; len
        MOV #BUF, R4
        MOV R3, R5          ; remaining
HRCV:   TST R5
        BEQ REVIEW
HRCV2:  MOV #FROM_HIGH, R0
        TRAP 2
        TST R0
        BEQ HWAIT
        CMP #BUF+31, R4
        BCS HSKIP           ; cursor past BUF's last word: consume, don't store
        MOV R1, (R4)
        INC R4
HSKIP:  DEC R5
        BR HRCV
HWAIT:  TRAP 0
        BR HRCV2
REVIEW: MOV BUF, R2         ; the watch-officer rule: first word is 'U'?
        CMP #'U', R2
        BNE DENY
        MOV R3, R1          ; release: len, then the words
        MOV #TO_LOW, R0
        JSR SENDB
        MOV #BUF, R4
RLOOP:  TST R3
        BEQ YIELD
        CMP #BUF+31, R4
        BCS YIELD           ; never read past BUF's last word
        MOV (R4), R1
        MOV #TO_LOW, R0
        JSR SENDB
        INC R4
        DEC R3
        BR RLOOP
DENY:   MOV DENIED, R2
        INC R2
        MOV R2, @DENIED
YIELD:  TRAP 0
        BR MAIN

; blocking send: word in R1, channel in R0; clobbers R0, R2
SENDB:  MOV R0, R2
SBLOOP: MOV R2, R0
        TRAP 1
        TST R0
        BNE SBDONE
        TRAP 0
        BR SBLOOP
SBDONE: RTS

DENIED: .WORD 0
BUF:    .BLKW 32
)";

// Sends one message, then collects everything the guard forwards to it.
const char kGuardLow[] = R"(
        ; send [2,'H','I'] on channel 0
        MOV #2, R1
        CLR R0
        JSR SENDB
        MOV #'H', R1
        CLR R0
        JSR SENDB
        MOV #'I', R1
        CLR R0
        JSR SENDB
        MOV #0x100, R4
RLOOP:  MOV #2, R0          ; channel 2: guard -> low
        TRAP 2
        TST R0
        BEQ RYIELD
        CMP #0x13F, R4
        BCS RYIELD          ; collect area full (64 words)
        MOV R1, (R4)
        INC R4
        BR RLOOP
RYIELD: TRAP 0
        BR RLOOP
SENDB:  MOV R0, R2
SBLOOP: MOV R2, R0
        TRAP 1
        TST R0
        BNE SBDONE
        TRAP 0
        BR SBLOOP
SBDONE: RTS
)";

// Sends a releasable message and a secret one, then collects LOW->HIGH
// traffic.
const char kGuardHigh[] = R"(
        ; message 1: [3,'U','O','K'] - marked releasable
        MOV #3, R1
        MOV #1, R0
        JSR SENDB
        MOV #'U', R1
        MOV #1, R0
        JSR SENDB
        MOV #'O', R1
        MOV #1, R0
        JSR SENDB
        MOV #'K', R1
        MOV #1, R0
        JSR SENDB
        ; message 2: [3,'S','E','C'] - not marked: must be denied
        MOV #3, R1
        MOV #1, R0
        JSR SENDB
        MOV #'S', R1
        MOV #1, R0
        JSR SENDB
        MOV #'E', R1
        MOV #1, R0
        JSR SENDB
        MOV #'C', R1
        MOV #1, R0
        JSR SENDB
        MOV #0x100, R4
RLOOP:  MOV #3, R0          ; channel 3: guard -> high
        TRAP 2
        TST R0
        BEQ RYIELD
        CMP #0x13F, R4
        BCS RYIELD          ; collect area full (64 words)
        MOV R1, (R4)
        INC R4
        BR RLOOP
RYIELD: TRAP 0
        BR RLOOP
SENDB:  MOV R0, R2
SBLOOP: MOV R2, R0
        TRAP 1
        TST R0
        BNE SBDONE
        TRAP 0
        BR SBLOOP
SBDONE: RTS
)";

}  // namespace sep::sepcheck
