#include "src/sepcheck/cfg.h"

#include <algorithm>
#include <deque>

#include "src/base/strings.h"
#include "src/kernel/config.h"

namespace sep::sepcheck {

namespace {

// Words outside the assembled image are zero in a freshly-loaded partition.
Word ImageWord(const AssembledProgram& program, Word addr) {
  if (addr >= program.base &&
      static_cast<std::size_t>(addr - program.base) < program.words.size()) {
    return program.words[addr - program.base];
  }
  return 0;
}

// Static jump target of a JMP/JSR destination operand, if resolvable.
// `ext_addr` is the address of the operand's extension word (the CPU's PC
// equals ext_addr + 1 once it has fetched that word).
std::optional<Word> StaticJumpTarget(const OperandSpec& dst, Word ext, Word ext_addr) {
  switch (dst.mode) {
    case AddrMode::kImmediate:  // absolute target in the extension word
      return ext;
    case AddrMode::kIndexed:
      if (dst.reg == kPc) {
        return static_cast<Word>(ext + ext_addr + 1);
      }
      return std::nullopt;  // computed through a register
    case AddrMode::kReg:
    case AddrMode::kRegDeferred:
      return std::nullopt;  // computed through a register
  }
  return std::nullopt;
}

}  // namespace

std::vector<Word> Cfg::WitnessTo(Word addr) const {
  std::vector<Word> path;
  Word at = addr;
  while (true) {
    path.push_back(at);
    auto it = bfs_parent.find(at);
    if (it == bfs_parent.end() || it->second == at) break;
    at = it->second;
    if (path.size() > 64) break;  // cycle guard; parents form a tree in practice
  }
  std::reverse(path.begin(), path.end());
  // Long paths are abbreviated for reporting: keep the ends.
  if (path.size() > 8) {
    path.erase(path.begin() + 4, path.end() - 4);
  }
  return path;
}

Cfg LiftCfg(const AssembledProgram& program, const std::vector<Word>& roots,
            const std::string& unit) {
  Cfg cfg;
  cfg.base = program.base;
  cfg.roots = roots;

  auto flag = [&](Word addr, const std::string& kind, const std::string& text,
                  const std::string& message) {
    Finding f;
    f.tool = "sepcheck";
    f.unit = unit;
    f.kind = kind;
    f.address = addr;
    f.line = program.LineOf(addr);
    f.instruction = text;
    f.message = message;
    cfg.findings.push_back(f);
  };

  std::vector<Word> work = roots;
  while (!work.empty()) {
    const Word addr = work.back();
    work.pop_back();
    if (cfg.nodes.count(addr) != 0) continue;

    CfgNode node;
    node.addr = addr;
    const Word insn_word = ImageWord(program, addr);
    std::optional<DecodedInsn> decoded = Decode(insn_word);
    if (!decoded.has_value()) {
      node.text = Format(".WORD 0x%04X", insn_word);
      flag(addr, "invalid-opcode", node.text,
           "control flow reaches a word that does not decode");
      cfg.code_words.insert(addr);
      cfg.nodes.emplace(addr, std::move(node));
      continue;
    }
    node.insn = *decoded;
    node.ext1 = ImageWord(program, static_cast<Word>(addr + 1));
    node.ext2 = ImageWord(program, static_cast<Word>(addr + 2));
    node.text = Disassemble(node.insn, node.ext1, node.ext2);
    for (int i = 0; i < node.insn.length; ++i) {
      cfg.code_words.insert(static_cast<Word>(addr + i));
    }
    const Word fall = static_cast<Word>(addr + node.insn.length);

    switch (node.insn.opcode) {
      case Opcode::kHalt:
      case Opcode::kWait:
      case Opcode::kRti:
        // Terminators. (In user mode these are privileged; the analyzer
        // reports that separately so the CFG stays reusable in bare mode.)
        break;
      case Opcode::kRts:
        node.is_rts = true;  // successors wired after exploration
        break;
      case Opcode::kTrap:
        if (node.insn.trap_code != kCallHalt && node.insn.trap_code != kCallReti) {
          node.succs.push_back(fall);
        }
        break;
      case Opcode::kJmp:
      case Opcode::kJsr: {
        std::optional<Word> target =
            StaticJumpTarget(node.insn.dst, node.ext1, static_cast<Word>(addr + 1));
        if (!target.has_value()) {
          flag(addr, "indirect-jump", node.text,
               "computed jump target cannot be resolved statically; rejected");
          break;
        }
        node.succs.push_back(*target);
        if (node.insn.opcode == Opcode::kJsr) {
          node.is_jsr = true;
          node.jsr_target = *target;
          node.jsr_return = fall;
          cfg.jsr_returns.push_back(fall);
          work.push_back(fall);  // reachable via some RTS
        }
        break;
      }
      case Opcode::kBr:
        node.succs.push_back(static_cast<Word>(addr + 1 + node.insn.branch_offset));
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBmi:
      case Opcode::kBpl:
      case Opcode::kBcs:
      case Opcode::kBcc:
      case Opcode::kBvs:
      case Opcode::kBvc:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBgt:
      case Opcode::kBle:
        node.succs.push_back(static_cast<Word>(addr + 1 + node.insn.branch_offset));
        node.succs.push_back(fall);
        break;
      default:
        node.succs.push_back(fall);
        break;
    }

    for (Word s : node.succs) work.push_back(s);
    cfg.nodes.emplace(addr, std::move(node));
  }

  // Every RTS may return to the continuation of every JSR.
  for (auto& [addr, node] : cfg.nodes) {
    if (node.is_rts) {
      node.succs = cfg.jsr_returns;
    }
  }

  // Shortest-path tree for witness reporting (JSR return edges included so
  // code after a call has a witness even though dataflow goes via RTS).
  std::deque<Word> queue;
  for (Word r : cfg.roots) {
    if (cfg.bfs_parent.emplace(r, r).second) queue.push_back(r);
  }
  while (!queue.empty()) {
    const Word at = queue.front();
    queue.pop_front();
    auto it = cfg.nodes.find(at);
    if (it == cfg.nodes.end()) continue;
    std::vector<Word> out = it->second.succs;
    if (it->second.is_jsr) out.push_back(it->second.jsr_return);
    if (it->second.is_rts) out.clear();  // witnesses use call edges, not returns
    for (Word s : out) {
      if (cfg.bfs_parent.emplace(s, at).second) queue.push_back(s);
    }
  }
  return cfg;
}

}  // namespace sep::sepcheck
