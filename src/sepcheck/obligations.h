// Machine-discharged proof obligations for the paper's six separability
// conditions.
//
// The paper's Appendix reduces security of the shared machine to six
// conditions. sepcheck used to certify guests with a bare verdict; the
// obligation engine instead records, for every load, store and kernel call
// the analyzer reasons about, WHICH condition the proof step discharges and
// HOW it was discharged:
//
//   * proved    — the abstract interpreter bounded the operation itself;
//   * annotated — the analyzer flagged it and an analyst `; sepcheck:`
//                 annotation discharged it (the paper's flagged-then-
//                 argued-away SWAP pattern);
//   * open      — neither: the obligation blocks certification and is in
//                 1:1 correspondence with a blocking Finding.
//
// A certified guest therefore ships an auditable condition-by-condition
// ledger (rendered as JSON by `sepcheck --obligations out.json` and gated
// by tools/check_obligations) instead of a bare CERTIFIED verdict. See
// docs/STATIC_ANALYSIS.md and EXPERIMENTS.md E19.
#ifndef SEP_SEPCHECK_OBLIGATIONS_H_
#define SEP_SEPCHECK_OBLIGATIONS_H_

#include <string>
#include <vector>

namespace sep::sepcheck {

// The six separability conditions of the paper's Appendix, in its order.
enum class Condition {
  kMemoryPartition = 0,   // every access stays inside the regime's partition
  kChannelExclusivity,    // each channel-ring object has one addressing regime
  kIoExclusivity,         // device windows are touched only by their owner
  kInterruptRouting,      // interrupts vector only into owned handlers
  kRegisterSave,          // register file saved/restored across switches
  kKernelCallLegality,    // TRAPs enter the kernel only at legal entries
};
inline constexpr int kConditionCount = 6;

// Stable machine-readable slug, e.g. "memory-partition".
const char* ConditionSlug(Condition c);

enum class ObligationStatus {
  kProved = 0,
  kAnnotated,
  kOpen,
};
const char* ObligationStatusSlug(ObligationStatus s);

// One proof obligation: a site (or a whole-unit vacuous fact) tied to the
// condition it discharges.
struct Obligation {
  Condition condition = Condition::kMemoryPartition;
  ObligationStatus status = ObligationStatus::kProved;
  std::string unit;         // regime / system name
  int address = -1;         // machine address, or -1 for unit-level facts
  int line = -1;            // 1-based source line, or -1
  std::string instruction;  // disassembled site, if any
  std::string detail;       // what was proved, or what remains open
  std::string discharge_reason;  // analyst's reason when status == annotated

  std::string ToJson() const;  // single-line JSON object
};

// Per-condition status counts for one ledger.
struct ObligationSummary {
  int counts[kConditionCount][3] = {};

  void Add(const Obligation& o) {
    ++counts[static_cast<int>(o.condition)][static_cast<int>(o.status)];
  }
  int Open() const {
    int n = 0;
    for (const auto& by_status : counts) n += by_status[2];
    return n;
  }
  // True iff every condition has at least one obligation record.
  bool CoversAllConditions() const {
    for (const auto& by_status : counts) {
      if (by_status[0] + by_status[1] + by_status[2] == 0) return false;
    }
    return true;
  }
  std::string ToJson() const;
};

// The ledger of one catalogue entry (or one standalone file).
struct EntryObligations {
  std::string entry;
  bool certified = false;
  std::vector<Obligation> obligations;
};

// Schema tag of the JSON document; tools/check_obligations and
// docs/obligations.schema.json must agree with it.
inline constexpr char kObligationsSchemaTag[] = "sepcheck-obligations-v1";

// Renders the full obligations document (pretty-printed, stable order).
std::string RenderObligationsJson(const std::vector<EntryObligations>& entries);

}  // namespace sep::sepcheck

#endif  // SEP_SEPCHECK_OBLIGATIONS_H_
