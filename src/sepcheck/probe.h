// Machine-level semantic two-run probe.
//
// The ground truth against which sepcheck's syntactic verdicts are judged,
// lifting the src/ifa/semantic.* pattern from SIMPL programs to whole
// kernelized machines: build the same system twice, differing only in
// designated "secret" words of one regime's partition, run both for the
// same number of steps, and compare the observing regime's abstract
// projection Φ^observer. If the projections ever differ, information about
// the secret reached the observer semantically; if they never differ over
// all trials, a syntactic flag against this system is a false positive
// (for these runs — the probe is a test, not a proof).
#ifndef SEP_SEPCHECK_PROBE_H_
#define SEP_SEPCHECK_PROBE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/core/kernel_system.h"

namespace sep::sepcheck {

struct MachineProbeSpec {
  int secret_regime = 0;
  // Partition-relative word addresses whose contents are the secret.
  std::vector<Word> secret_addrs;
  int observer_regime = 1;
  std::size_t steps = 20000;  // whole machine steps per run
  int trials = 6;
  std::uint64_t seed = 0x5EC2;
};

// Builds a fresh system per run via `make`; run B of each trial gets random
// values written into the secret words before execution. Returns true iff
// any trial left the observer's abstract projection different from the
// unmodified run's.
Result<bool> MachineSemanticallyLeaks(
    const std::function<Result<std::unique_ptr<KernelizedSystem>>()>& make,
    const MachineProbeSpec& spec);

}  // namespace sep::sepcheck

#endif  // SEP_SEPCHECK_PROBE_H_
