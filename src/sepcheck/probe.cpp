#include "src/sepcheck/probe.h"

#include "src/base/rng.h"

namespace sep::sepcheck {

Result<bool> MachineSemanticallyLeaks(
    const std::function<Result<std::unique_ptr<KernelizedSystem>>()>& make,
    const MachineProbeSpec& spec) {
  Rng rng(spec.seed);
  for (int trial = 0; trial < spec.trials; ++trial) {
    Result<std::unique_ptr<KernelizedSystem>> a = make();
    if (!a.ok()) return Err(a.error());
    Result<std::unique_ptr<KernelizedSystem>> b = make();
    if (!b.ok()) return Err(b.error());

    const KernelConfig& config = (*a)->kernel().config();
    if (spec.secret_regime < 0 ||
        spec.secret_regime >= static_cast<int>(config.regimes.size()) ||
        spec.observer_regime < 0 ||
        spec.observer_regime >= static_cast<int>(config.regimes.size())) {
      return Err("probe regime index out of range");
    }
    const RegimeConfig& secret_rc =
        config.regimes[static_cast<std::size_t>(spec.secret_regime)];
    for (Word addr : spec.secret_addrs) {
      if (addr >= secret_rc.mem_words) {
        return Err("secret address outside the secret regime's partition");
      }
      (*b)->machine().PhysWrite(secret_rc.mem_base + addr,
                                static_cast<Word>(rng.Next() & 0xFFFF));
    }

    (*a)->Run(spec.steps);
    (*b)->Run(spec.steps);
    if ((*a)->kernel().AbstractProjection(spec.observer_regime) !=
        (*b)->kernel().AbstractProjection(spec.observer_regime)) {
      return true;
    }
  }
  return false;
}

}  // namespace sep::sepcheck
