// Abstract domain for SM-11 register values: intervals, difference
// constraints, and a condition-code model.
//
// sepcheck needs just enough arithmetic precision to bound the addresses a
// guest program can touch: constants (MOV #CRYPTO, R4), small joins from
// different call sites (R0 in {0,1} -> [0,1]) and monotone pointer updates
// (INC R4 in a loop, driven to TOP by widening). Three layers cooperate:
//
//   * AbsVal      — a classic interval [lo, hi] over 16-bit words;
//   * RelSet      — difference constraints Ri − Rj ∈ [lo, hi] over R0..SP,
//                   exact (non-wrapping) integers. They survive widening of
//                   the plain intervals, so a lockstep pointer/counter loop
//                   keeps "R4 − R3 = 0x100" even when R4's interval blows
//                   up, and the counter's branch bound transfers to the
//                   pointer;
//   * FlagsSrc    — what the condition codes reflect (a CMP of two sides,
//                   or the Z/N of one register), so conditional branch
//                   edges can refine intervals and constraints.
//
// Anything the domain cannot bound becomes TOP and downstream checks must
// treat the access as unprovable — the domain is sound, never
// precise-by-luck. See docs/STATIC_ANALYSIS.md.
#ifndef SEP_SEPCHECK_ABSDOMAIN_H_
#define SEP_SEPCHECK_ABSDOMAIN_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/strings.h"
#include "src/base/types.h"

namespace sep::sepcheck {

// A closed interval [lo, hi] of 16-bit unsigned values. There is no bottom
// element; unreachable states are represented by AbsState::reachable.
struct AbsVal {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0xFFFF;  // default-constructed value is TOP

  static AbsVal Top() { return {0, 0xFFFF}; }
  static AbsVal Const(Word w) { return {w, w}; }
  static AbsVal Range(std::uint32_t lo, std::uint32_t hi) { return {lo, hi}; }

  bool IsTop() const { return lo == 0 && hi == 0xFFFF; }
  bool IsConst() const { return lo == hi; }
  Word ConstVal() const { return static_cast<Word>(lo); }
  std::uint32_t Width() const { return hi - lo; }

  bool operator==(const AbsVal& o) const = default;

  AbsVal Join(const AbsVal& o) const {
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }

  // Classic interval widening: any bound that moved jumps to its extreme.
  AbsVal WidenedFrom(const AbsVal& old) const {
    return {lo < old.lo ? 0u : lo, hi > old.hi ? 0xFFFFu : hi};
  }

  // Threshold widening: a moved bound jumps to the nearest landmark beyond
  // it instead of all the way to the extreme. Landmarks are the program's
  // own comparison constants (±1) and the partition bounds, so a bound
  // that is being squeezed toward a guard's cap (CMP #BUF+31 / BCS) lands
  // exactly on the cap rather than blowing through it to 0xFFFF — which
  // would make the next INC wrap the interval to TOP. `thresholds` is
  // sorted ascending; termination holds because each widening step climbs
  // at least one landmark and the landmark set is finite.
  AbsVal WidenedFrom(const AbsVal& old,
                     const std::vector<std::uint32_t>& thresholds) const {
    AbsVal w = *this;
    if (hi > old.hi) {
      auto it = std::lower_bound(thresholds.begin(), thresholds.end(), hi);
      w.hi = it != thresholds.end() ? *it : 0xFFFFu;
    }
    if (lo < old.lo) {
      auto it = std::upper_bound(thresholds.begin(), thresholds.end(), lo);
      w.lo = it != thresholds.begin() ? *std::prev(it) : 0u;
    }
    return w;
  }

  // Machine arithmetic wraps mod 2^16; the abstract versions go to TOP
  // instead of tracking wrapped intervals.
  static AbsVal Add(const AbsVal& a, const AbsVal& b) {
    if (a.hi + b.hi > 0xFFFF) return Top();
    return {a.lo + b.lo, a.hi + b.hi};
  }
  static AbsVal Sub(const AbsVal& a, const AbsVal& b) {
    if (a.lo < b.hi) return Top();
    return {a.lo - b.hi, a.hi - b.lo};
  }
  // dst & ~mask for a constant mask: bounded above by both operands.
  static AbsVal BicMask(const AbsVal& dst, Word mask) {
    return {0, std::min<std::uint32_t>(dst.hi, static_cast<Word>(~mask))};
  }
  static AbsVal Asr(const AbsVal& a) {
    if (a.hi >= 0x8000) return Top();  // arithmetic shift of "negative" values
    return {a.lo >> 1, a.hi >> 1};
  }
  static AbsVal Asl(const AbsVal& a) {
    if (a.hi * 2 > 0xFFFF) return Top();
    return {a.lo * 2, a.hi * 2};
  }

  std::string ToString() const {
    if (IsTop()) return "T";
    if (IsConst()) return Format("0x%04X", lo);
    return Format("[0x%04X,0x%04X]", lo, hi);
  }
};

// One difference constraint Ri − Rj ∈ [lo, hi] in exact (non-wrapping)
// integers; bounds at ±kInf mean unconstrained on that side.
struct RelBound {
  // Strictly beyond any real difference of two 16-bit words (±0xFFFF).
  static constexpr std::int32_t kInf = 0x10000;
  std::int32_t lo = -kInf;
  std::int32_t hi = kInf;

  bool IsTop() const { return lo <= -kInf && hi >= kInf; }
  bool operator==(const RelBound& o) const = default;
};

// Difference constraints over the registers whose values the analyzer
// tracks symbolically: R0..R5 and SP. (PC is known per-node.) Constraints
// are exact integer facts about machine values — every transfer function
// drops a constraint whenever the concrete update could wrap — so they
// remain sound to intersect with the wrapped-aware intervals.
struct RelSet {
  static constexpr int kRegs = 7;  // R0..R5 and SP
  std::array<RelBound, kRegs*(kRegs - 1) / 2> pairs;  // canonical i < j: Ri − Rj

  bool operator==(const RelSet& o) const = default;

  static int Index(int i, int j) {  // requires i < j
    return i * kRegs - i * (i + 1) / 2 + (j - i - 1);
  }

  // Ri − Rj for any register order (negated when i > j).
  RelBound Get(int i, int j) const {
    if (i < j) return pairs[static_cast<std::size_t>(Index(i, j))];
    const RelBound b = pairs[static_cast<std::size_t>(Index(j, i))];
    return {b.hi >= RelBound::kInf ? -RelBound::kInf : -b.hi,
            b.lo <= -RelBound::kInf ? RelBound::kInf : -b.lo};
  }

  // Intersects Ri − Rj with [lo, hi]; false when the result is empty (the
  // state is unreachable). Saturates at ±kInf.
  bool Refine(int i, int j, std::int32_t lo, std::int32_t hi) {
    if (i > j) {
      std::swap(i, j);
      const std::int32_t nlo = hi >= RelBound::kInf ? -RelBound::kInf : -hi;
      const std::int32_t nhi = lo <= -RelBound::kInf ? RelBound::kInf : -lo;
      lo = nlo;
      hi = nhi;
    }
    RelBound& b = pairs[static_cast<std::size_t>(Index(i, j))];
    const std::int32_t rlo = std::max(b.lo, std::max(lo, -RelBound::kInf));
    const std::int32_t rhi = std::min(b.hi, std::min(hi, RelBound::kInf));
    if (rlo > rhi) return false;
    b = {rlo, rhi};
    return true;
  }

  // Forgets everything known about register r.
  void Drop(int r) {
    for (int q = 0; q < kRegs; ++q) {
      if (q == r) continue;
      pairs[static_cast<std::size_t>(r < q ? Index(r, q) : Index(q, r))] = RelBound{};
    }
  }

  // dst := src (MOV Rsrc, Rdst): dst inherits src's constraints and is
  // exactly equal to src.
  void CopyFrom(int dst, int src) {
    if (dst == src) return;
    std::array<RelBound, kRegs> inherited;
    for (int q = 0; q < kRegs; ++q) {
      inherited[static_cast<std::size_t>(q)] = Get(src, q);
    }
    Drop(dst);
    for (int q = 0; q < kRegs; ++q) {
      if (q == dst || q == src) continue;
      const RelBound b = inherited[static_cast<std::size_t>(q)];
      (void)Refine(dst, q, b.lo, b.hi);
    }
    (void)Refine(dst, src, 0, 0);
  }

  // r += [dlo, dhi], exact: caller must have proved the concrete update
  // cannot wrap.
  void Shift(int r, std::int32_t dlo, std::int32_t dhi) {
    for (int q = 0; q < kRegs; ++q) {
      if (q == r) continue;
      const bool canon = r < q;
      RelBound& b =
          pairs[static_cast<std::size_t>(canon ? Index(r, q) : Index(q, r))];
      // Canonical slot holds Ri − Rj with i < j; shifting r moves it by
      // +delta when r is i, by −delta when r is j.
      const std::int32_t add_lo = canon ? dlo : -dhi;
      const std::int32_t add_hi = canon ? dhi : -dlo;
      b.lo = b.lo <= -RelBound::kInf ? -RelBound::kInf
                                     : std::max(b.lo + add_lo, -RelBound::kInf);
      b.hi = b.hi >= RelBound::kInf ? RelBound::kInf
                                    : std::min(b.hi + add_hi, RelBound::kInf);
    }
  }

  // Convex-hull join (with widening to ±inf on moved bounds); returns true
  // if anything changed.
  bool JoinFrom(const RelSet& o, bool widen) {
    bool changed = false;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      RelBound j{std::min(pairs[i].lo, o.pairs[i].lo),
                 std::max(pairs[i].hi, o.pairs[i].hi)};
      if (widen) {
        if (j.lo < pairs[i].lo) j.lo = -RelBound::kInf;
        if (j.hi > pairs[i].hi) j.hi = RelBound::kInf;
      }
      if (!(j == pairs[i])) {
        pairs[i] = j;
        changed = true;
      }
    }
    return changed;
  }
};

// What the condition codes reflect at a program point — tracked just enough
// to refine intervals and constraints on conditional branch edges.
struct FlagsSrc {
  enum class Kind : std::uint8_t {
    kNone,  // unknown / clobbered
    kCmp,   // CMP src,dst: flags encode the comparison of the two sides
    kZn,    // Z and N reflect the value of one register (TST / ALU result)
  };
  Kind kind = Kind::kNone;
  // A CMP side is either a live register (0..5) or a value snapshot.
  // SP/PC/memory/immediate sides are snapshots: the interval at the CMP is
  // a sound description of the compared *value* even if the storage later
  // mutates, because every tracked write to R0..R5 resets the flags and
  // the only flag-preserving register updates (JSR/RTS on SP) never appear
  // as a live side. For kZn, d_reg names the register.
  std::int8_t s_reg = -1;
  std::int8_t d_reg = -1;
  AbsVal s_val;
  AbsVal d_val;

  bool operator==(const FlagsSrc& o) const = default;

  static FlagsSrc Zn(int reg) {
    FlagsSrc f;
    f.kind = Kind::kZn;
    f.d_reg = static_cast<std::int8_t>(reg);
    return f;
  }
};

// Abstract machine state at one program point. R7 (PC) is not tracked; its
// exact value is known from the instruction address.
struct AbsState {
  bool reachable = false;
  std::array<AbsVal, 8> regs;
  RelSet rel;
  FlagsSrc flags;

  bool operator==(const AbsState& o) const = default;

  // Joins `o` into this state; returns true if anything changed. Applies
  // widening once an edge has been joined more than `widen_after` times
  // (callers pass a per-edge counter); with `thresholds` the widening is
  // threshold widening (see AbsVal::WidenedFrom). Condition-code knowledge
  // joins to "unknown" unless both sides agree exactly.
  bool JoinFrom(const AbsState& o, bool widen,
                const std::vector<std::uint32_t>* thresholds = nullptr) {
    if (!o.reachable) return false;
    if (!reachable) {
      *this = o;
      return true;
    }
    bool changed = false;
    for (int i = 0; i < 8; ++i) {
      AbsVal joined = regs[i].Join(o.regs[i]);
      if (widen) {
        joined = thresholds ? joined.WidenedFrom(regs[i], *thresholds)
                            : joined.WidenedFrom(regs[i]);
      }
      if (!(joined == regs[i])) {
        regs[i] = joined;
        changed = true;
      }
    }
    if (rel.JoinFrom(o.rel, widen)) changed = true;
    if (!(flags == o.flags) && flags.kind != FlagsSrc::Kind::kNone) {
      flags = FlagsSrc{};
      changed = true;
    }
    return changed;
  }
};

}  // namespace sep::sepcheck

#endif  // SEP_SEPCHECK_ABSDOMAIN_H_
