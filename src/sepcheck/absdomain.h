// Interval abstract domain for SM-11 register values.
//
// sepcheck needs just enough arithmetic precision to bound the addresses a
// guest program can touch: constants (MOV #CRYPTO, R4), small joins from
// different call sites (R0 in {0,1} -> [0,1]) and monotone pointer updates
// (INC R4 in a loop, driven to TOP by widening). Anything it cannot bound
// becomes TOP and downstream checks must treat the access as unprovable —
// the domain is sound, never precise-by-luck. See docs/STATIC_ANALYSIS.md.
#ifndef SEP_SEPCHECK_ABSDOMAIN_H_
#define SEP_SEPCHECK_ABSDOMAIN_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

#include "src/base/strings.h"
#include "src/base/types.h"

namespace sep::sepcheck {

// A closed interval [lo, hi] of 16-bit unsigned values. There is no bottom
// element; unreachable states are represented by AbsState::reachable.
struct AbsVal {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0xFFFF;  // default-constructed value is TOP

  static AbsVal Top() { return {0, 0xFFFF}; }
  static AbsVal Const(Word w) { return {w, w}; }
  static AbsVal Range(std::uint32_t lo, std::uint32_t hi) { return {lo, hi}; }

  bool IsTop() const { return lo == 0 && hi == 0xFFFF; }
  bool IsConst() const { return lo == hi; }
  Word ConstVal() const { return static_cast<Word>(lo); }
  std::uint32_t Width() const { return hi - lo; }

  bool operator==(const AbsVal& o) const = default;

  AbsVal Join(const AbsVal& o) const {
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }

  // Classic interval widening: any bound that moved jumps to its extreme.
  AbsVal WidenedFrom(const AbsVal& old) const {
    return {lo < old.lo ? 0u : lo, hi > old.hi ? 0xFFFFu : hi};
  }

  // Machine arithmetic wraps mod 2^16; the abstract versions go to TOP
  // instead of tracking wrapped intervals.
  static AbsVal Add(const AbsVal& a, const AbsVal& b) {
    if (a.hi + b.hi > 0xFFFF) return Top();
    return {a.lo + b.lo, a.hi + b.hi};
  }
  static AbsVal Sub(const AbsVal& a, const AbsVal& b) {
    if (a.lo < b.hi) return Top();
    return {a.lo - b.hi, a.hi - b.lo};
  }
  // dst & ~mask for a constant mask: bounded above by both operands.
  static AbsVal BicMask(const AbsVal& dst, Word mask) {
    return {0, std::min<std::uint32_t>(dst.hi, static_cast<Word>(~mask))};
  }
  static AbsVal Asr(const AbsVal& a) {
    if (a.hi >= 0x8000) return Top();  // arithmetic shift of "negative" values
    return {a.lo >> 1, a.hi >> 1};
  }
  static AbsVal Asl(const AbsVal& a) {
    if (a.hi * 2 > 0xFFFF) return Top();
    return {a.lo * 2, a.hi * 2};
  }

  std::string ToString() const {
    if (IsTop()) return "T";
    if (IsConst()) return Format("0x%04X", lo);
    return Format("[0x%04X,0x%04X]", lo, hi);
  }
};

// Abstract register file at one program point. R7 (PC) is not tracked here;
// its exact value is known from the instruction address.
struct AbsState {
  bool reachable = false;
  std::array<AbsVal, 8> regs;

  bool operator==(const AbsState& o) const = default;

  // Joins `o` into this state; returns true if anything changed. Applies
  // widening once a register has been joined more than `widen_after` times
  // (callers pass a per-node counter).
  bool JoinFrom(const AbsState& o, bool widen) {
    if (!o.reachable) return false;
    if (!reachable) {
      *this = o;
      return true;
    }
    bool changed = false;
    for (int i = 0; i < 8; ++i) {
      AbsVal joined = regs[i].Join(o.regs[i]);
      if (widen) joined = joined.WidenedFrom(regs[i]);
      if (!(joined == regs[i])) {
        regs[i] = joined;
        changed = true;
      }
    }
    return changed;
  }
};

}  // namespace sep::sepcheck

#endif  // SEP_SEPCHECK_ABSDOMAIN_H_
