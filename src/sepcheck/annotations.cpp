#include "src/sepcheck/annotations.h"

#include <cstdlib>

#include "src/base/strings.h"

namespace sep::sepcheck {

Annotations ParseAnnotations(const std::string& source) {
  Annotations out;
  std::vector<std::string> lines = Split(source, '\n');
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const int line_number = static_cast<int>(i + 1);
    const std::string& line = lines[i];
    std::size_t comment = line.find(';');
    if (comment == std::string::npos) continue;
    std::string text = Trim(line.substr(comment + 1));
    if (!StartsWith(text, "sepcheck:")) continue;
    text = Trim(text.substr(std::string("sepcheck:").size()));

    if (StartsWith(text, "trust")) {
      std::string reason = Trim(text.substr(5));
      out.trusted_lines[line_number] = reason.empty() ? "trusted by annotation" : reason;
    } else if (StartsWith(text, "disjoint-channel")) {
      std::string rest = Trim(text.substr(std::string("disjoint-channel").size()));
      char* end = nullptr;
      long channel = std::strtol(rest.c_str(), &end, 0);
      if (end == rest.c_str() || channel < 0) {
        out.unknown_directives.emplace_back(line_number, text);  // malformed
        continue;
      }
      std::string reason = Trim(std::string(end));
      out.disjoint_channels[static_cast<int>(channel)] =
          reason.empty() ? "ends declared time-disjoint" : reason;
      out.disjoint_channel_lines.emplace(static_cast<int>(channel), line_number);
    } else if (StartsWith(text, "shared-ring")) {
      std::string rest = Trim(text.substr(std::string("shared-ring").size()));
      char* end = nullptr;
      long ring = std::strtol(rest.c_str(), &end, 0);
      if (end == rest.c_str() || ring < 0) {
        out.unknown_directives.emplace_back(line_number, text);  // malformed
        continue;
      }
      std::string reason = Trim(std::string(end));
      out.shared_rings[static_cast<int>(ring)] =
          reason.empty() ? "one-directional by MMU asymmetry + head/tail ownership"
                         : reason;
      out.shared_ring_lines.emplace(static_cast<int>(ring), line_number);
    } else {
      out.unknown_directives.emplace_back(line_number, text);
    }
  }
  return out;
}

}  // namespace sep::sepcheck
