#include "src/sepcheck/analyzer.h"

#include <algorithm>
#include <deque>
#include <map>
#include <tuple>

#include "src/base/strings.h"
#include "src/machine/machine.h"  // kDeviceRegSpan
#include "src/sepcheck/absdomain.h"

namespace sep::sepcheck {

namespace {

// Join budget before a CFG edge's target is widened. Small because guest
// programs are small; correctness does not depend on the value.
constexpr int kWidenAfter = 3;
// Channel-index intervals wider than this are treated as unprovable rather
// than enumerating their members.
constexpr std::uint32_t kMaxChannelFanout = 64;
// Handler-discovery iterations (SETVEC roots found by one dataflow round
// feed the next lift).
constexpr int kMaxLiftRounds = 8;

// A resolved operand: a register, an immediate value, or a memory cell
// whose address is abstractly known.
struct OperandInfo {
  enum class Kind { kNone, kReg, kImm, kMem } kind = Kind::kNone;
  int reg = 0;
  Word imm = 0;
  AbsVal mem_addr;
};

// Check-site tags, so findings and obligations from different operand
// positions of one instruction stay distinct when results from several
// analysis contexts are merged. Channel checks use kSiteChannelBase + k.
enum Site {
  kSiteSrc = 0,
  kSiteDst = 1,
  kSiteStack = 2,
  kSiteTrapLegal = 3,
  kSiteTrapRegisterSave = 4,
  kSiteControl = 5,
  kSiteSetvec = 6,
  kSiteSgTable = 7,
  kSiteChannelBase = 100,
  kSiteRingBase = 200,
};

// Comparison predicate between the two CMP sides (source vs destination),
// derived from the branch opcode and edge direction.
enum class CmpRel { kNone, kEq, kNe, kLt, kLe, kGt, kGe };

CmpRel Negate(CmpRel r) {
  switch (r) {
    case CmpRel::kEq:
      return CmpRel::kNe;
    case CmpRel::kNe:
      return CmpRel::kEq;
    case CmpRel::kLt:
      return CmpRel::kGe;
    case CmpRel::kGe:
      return CmpRel::kLt;
    case CmpRel::kGt:
      return CmpRel::kLe;
    case CmpRel::kLe:
      return CmpRel::kGt;
    case CmpRel::kNone:
      break;
  }
  return CmpRel::kNone;
}

bool IsCondBranch(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBmi:
    case Opcode::kBpl:
    case Opcode::kBcs:
    case Opcode::kBcc:
    case Opcode::kBvs:
    case Opcode::kBvc:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBgt:
    case Opcode::kBle:
      return true;
    default:
      return false;
  }
}

AbsVal AddConstMod(const AbsVal& a, Word k) {
  if (a.IsConst()) return AbsVal::Const(static_cast<Word>(a.ConstVal() + k));
  return AbsVal::Add(a, AbsVal::Const(k));
}

// Removes the single point `c` from `v` when it sits on an endpoint;
// returns false when v was exactly {c} (the edge is unreachable).
bool TrimPoint(AbsVal& v, std::uint32_t c) {
  if (v.IsConst()) return v.lo != c;
  if (v.lo == c) {
    ++v.lo;
  } else if (v.hi == c) {
    --v.hi;
  }
  return true;
}

class ProgramAnalyzer {
 public:
  ProgramAnalyzer(const AssembledProgram& program, const std::string& source,
                  const RegimeView& view)
      : program_(program), view_(view), annotations_(ParseAnnotations(source)) {
    // Mirror ProgramMmuFor: this regime's shared-ring data windows, in
    // shared_rings declaration order, at pages kSharedRingPageBase..;
    // producer read-write, consumer read-only.
    int window = 0;
    for (std::size_t k = 0; k < view_.shared_rings.size(); ++k) {
      const SharedRingConfig& ring = view_.shared_rings[k];
      const bool producer = ring.producer == view_.index;
      if (!producer && ring.consumer != view_.index) continue;
      ring_windows_.push_back(RingWindow{
          static_cast<int>(k), PageVBase(kSharedRingPageBase + window), ring.capacity,
          producer});
      ++window;
    }
  }

  ProgramAnalysis Run() {
    std::vector<Word> roots = {program_.EntryPoint()};
    for (int round = 0; round < kMaxLiftRounds; ++round) {
      cfg_ = LiftCfg(program_, roots, view_.name);
      CollectWidenThresholds();
      Solve(roots);
      std::vector<Word> discovered = DiscoverHandlers();
      bool grew = false;
      for (Word h : discovered) {
        if (std::find(roots.begin(), roots.end(), h) == roots.end()) {
          roots.push_back(h);
          grew = true;
        }
      }
      if (!grew) break;
    }

    for (const Finding& f : cfg_.findings) {
      // Lift-time findings (indirect jumps, invalid opcodes): execution
      // containment, part of the memory-partition condition.
      Report(f, Condition::kMemoryPartition, kSiteControl);
    }
    for (const auto& [addr, node] : cfg_.nodes) {
      for (int ctx = 0; ctx < static_cast<int>(contexts_.size()); ++ctx) {
        auto it = in_.find({addr, ctx});
        if (it == in_.end() || !it->second.reachable) continue;
        CheckNode(node, it->second);
      }
    }
    ReportStaleAnnotations();
    FillVacuousObligations();

    ProgramAnalysis out;
    out.cfg = std::move(cfg_);
    out.findings = std::move(findings_);
    out.ring_touches = std::move(ring_touches_);
    out.obligations = std::move(obligations_);
    return out;
  }

 private:
  // Depth-1 call-string context: index 0 is the root context (entry and
  // interrupt handlers); every JSR site opens one more, identified by the
  // call-site address, returning to that site's continuation.
  struct Ctx {
    Word call_site = 0;
    Word ret = 0;
  };
  using StateKey = std::pair<Word, int>;  // (instruction address, context)

  // --- dataflow ---------------------------------------------------------------

  AbsState EntryState() const {
    AbsState s;
    s.reachable = true;
    for (int i = 0; i < 6; ++i) s.regs[i] = AbsVal::Const(0);
    s.regs[kSp] = AbsVal::Const(static_cast<Word>(view_.mem_words));
    s.regs[kPc] = AbsVal::Top();  // PC is known per-node, not tracked
    return s;
  }

  static AbsState HandlerState() {
    // A handler can be entered from any point, with the interrupted
    // context's registers: nothing is known.
    AbsState s;
    s.reachable = true;
    return s;
  }

  int CtxForSite(const CfgNode& node) {
    auto [it, inserted] = ctx_of_site_.try_emplace(node.addr,
                                                   static_cast<int>(contexts_.size()));
    if (inserted) {
      contexts_.push_back(Ctx{node.addr, node.jsr_return});
      parents_.emplace_back();
    }
    return it->second;
  }

  // The widening landmarks: every immediate and index constant in the
  // program (±1, so both the "<= k" and ">= k+1" sides of a comparison are
  // exact landmarks) plus the partition bounds. Widening jumps to the next
  // landmark instead of the interval extreme; a cursor squeezed against a
  // guard's CMP cap then stabilizes on the cap instead of blowing through
  // it to 0xFFFF, where the next INC would wrap the interval to TOP.
  void CollectWidenThresholds() {
    std::vector<std::uint32_t> t;
    auto add = [&t](std::int64_t v) {
      if (v >= 1 && v <= 0xFFFE) t.push_back(static_cast<std::uint32_t>(v));
    };
    for (const auto& [addr, node] : cfg_.nodes) {
      const bool src_ext = node.insn.src.NeedsExtension();
      const bool dst_ext = node.insn.dst.NeedsExtension();
      for (int i = 0; i < 2; ++i) {
        if (i == 0 ? !src_ext : !dst_ext) continue;
        const Word ext = (i == 0 || !src_ext) ? node.ext1 : node.ext2;
        add(static_cast<std::int64_t>(ext) - 1);
        add(ext);
        add(static_cast<std::int64_t>(ext) + 1);
      }
    }
    add(static_cast<std::int64_t>(view_.mem_words) - 1);
    add(view_.mem_words);
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
    widen_thresholds_ = std::move(t);
  }

  // `allow_widen` is false on conditional-branch out-edges: their states
  // approach the refinement cap gradually (min(growing bound, cap)), and
  // even threshold widening there would discard the refinement work in
  // progress. Termination is preserved because every value-producing
  // (arithmetic) node's out-edge is an ordinary edge and still widens.
  void Propagate(Word from, Word to, int to_ctx, const AbsState& state,
                 std::deque<StateKey>& work, bool allow_widen = true) {
    int& joins = join_counts_[{from, to, to_ctx}];
    if (in_[{to, to_ctx}].JoinFrom(state, allow_widen && joins >= kWidenAfter,
                                   &widen_thresholds_)) {
      ++joins;
      work.push_back({to, to_ctx});
    }
  }

  void Solve(const std::vector<Word>& roots) {
    in_.clear();
    join_counts_.clear();
    contexts_.assign(1, Ctx{});
    ctx_of_site_.clear();
    parents_.assign(1, {});
    rts_outs_.clear();
    std::deque<StateKey> work;
    for (std::size_t i = 0; i < roots.size(); ++i) {
      in_[{roots[i], 0}] = i == 0 ? EntryState() : HandlerState();
      work.push_back({roots[i], 0});
    }
    std::size_t iterations = 0;
    // Budget scales with the context count: every JSR site opens one.
    const std::size_t budget =
        (cfg_.nodes.size() + 1) * 256 * (cfg_.jsr_returns.size() + 1);
    while (!work.empty() && iterations++ < budget) {
      const auto [addr, ctx] = work.front();
      work.pop_front();
      auto node_it = cfg_.nodes.find(addr);
      if (node_it == cfg_.nodes.end()) continue;
      const CfgNode& node = node_it->second;
      const AbsState out = Transfer(node, in_[{addr, ctx}]);
      if (!out.reachable) continue;

      if (node.is_jsr) {
        const int callee = CtxForSite(node);
        if (parents_[static_cast<std::size_t>(callee)].insert(ctx).second) {
          // A caller discovered after the callee's RTS already ran: replay
          // the recorded return states into the new parent.
          for (const auto& [key, st] : rts_outs_) {
            if (key.second == callee) {
              Propagate(key.first, contexts_[static_cast<std::size_t>(callee)].ret,
                        ctx, st, work);
            }
          }
        }
        Propagate(addr, node.jsr_target, callee, out, work);
      } else if (node.is_rts) {
        rts_outs_[{addr, ctx}] = out;
        if (ctx == 0) {
          // RTS outside any tracked call (root context): fall back to the
          // CFG's sound over-approximation — every JSR continuation.
          for (Word r : cfg_.jsr_returns) Propagate(addr, r, 0, out, work);
        } else {
          const Ctx& c = contexts_[static_cast<std::size_t>(ctx)];
          for (int p : parents_[static_cast<std::size_t>(ctx)]) {
            Propagate(addr, c.ret, p, out, work);
          }
        }
      } else if (IsCondBranch(node.insn.opcode) && node.succs.size() == 2 &&
                 node.succs[0] != node.succs[1]) {
        AbsState taken = out;
        if (RefineBranch(node.insn.opcode, taken, /*taken=*/true)) {
          Propagate(addr, node.succs[0], ctx, taken, work, /*allow_widen=*/false);
        }
        AbsState fall = out;
        if (RefineBranch(node.insn.opcode, fall, /*taken=*/false)) {
          Propagate(addr, node.succs[1], ctx, fall, work, /*allow_widen=*/false);
        }
      } else {
        for (Word succ : node.succs) Propagate(addr, succ, ctx, out, work);
      }
    }
  }

  // --- branch refinement ------------------------------------------------------

  // Narrows `s` along one edge of a conditional branch; returns false when
  // the refined state is empty (the edge is statically unreachable).
  bool RefineBranch(Opcode branch, AbsState& s, bool taken) const {
    const FlagsSrc& f = s.flags;
    if (f.kind == FlagsSrc::Kind::kZn) {
      if (f.d_reg < 0) return true;
      AbsVal& v = s.regs[f.d_reg];
      switch (branch) {
        case Opcode::kBeq:
          return RefineZero(v, taken);
        case Opcode::kBne:
          return RefineZero(v, !taken);
        case Opcode::kBmi:
          return RefineSign(v, taken);
        case Opcode::kBpl:
          return RefineSign(v, !taken);
        default:
          return true;
      }
    }
    if (f.kind != FlagsSrc::Kind::kCmp) return true;

    CmpRel rel = CmpRel::kNone;
    switch (branch) {
      case Opcode::kBeq:
        rel = CmpRel::kEq;
        break;
      case Opcode::kBne:
        rel = CmpRel::kNe;
        break;
      case Opcode::kBcs:  // C = (src < dst) unsigned
        rel = CmpRel::kLt;
        break;
      case Opcode::kBcc:
        rel = CmpRel::kGe;
        break;
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBgt:
      case Opcode::kBle: {
        // Signed compare coincides with unsigned when both sides are
        // provably non-negative 16-bit values.
        const AbsVal sv = f.s_reg >= 0 ? s.regs[f.s_reg] : f.s_val;
        const AbsVal dv = f.d_reg >= 0 ? s.regs[f.d_reg] : f.d_val;
        if (sv.hi >= 0x8000 || dv.hi >= 0x8000) return true;
        rel = branch == Opcode::kBlt   ? CmpRel::kLt
              : branch == Opcode::kBge ? CmpRel::kGe
              : branch == Opcode::kBgt ? CmpRel::kGt
                                       : CmpRel::kLe;
        break;
      }
      default:
        return true;  // BVS/BVC/BMI/BPL on a subtraction: not modelled
    }
    if (!taken) rel = Negate(rel);
    return ApplyCmp(s, rel);
  }

  static bool RefineZero(AbsVal& v, bool is_zero) {
    if (is_zero) {
      if (v.lo > 0) return false;
      v = AbsVal::Const(0);
      return true;
    }
    return TrimPoint(v, 0);
  }

  static bool RefineSign(AbsVal& v, bool negative) {
    if (negative) {
      if (v.hi < 0x8000) return false;
      v.lo = std::max<std::uint32_t>(v.lo, 0x8000);
    } else {
      if (v.lo >= 0x8000) return false;
      v.hi = std::min<std::uint32_t>(v.hi, 0x7FFF);
    }
    return true;
  }

  // Applies `s_value REL d_value` to the CMP sides recorded in the flags:
  // narrows the interval of each live side and the difference constraint
  // between two live sides.
  bool ApplyCmp(AbsState& st, CmpRel rel) const {
    const FlagsSrc& f = st.flags;
    AbsVal sv = f.s_reg >= 0 ? st.regs[f.s_reg] : f.s_val;
    AbsVal dv = f.d_reg >= 0 ? st.regs[f.d_reg] : f.d_val;
    const bool both = f.s_reg >= 0 && f.d_reg >= 0;
    constexpr std::int32_t kInf = RelBound::kInf;
    switch (rel) {
      case CmpRel::kNone:
        return true;
      case CmpRel::kEq: {
        const std::uint32_t lo = std::max(sv.lo, dv.lo);
        const std::uint32_t hi = std::min(sv.hi, dv.hi);
        if (lo > hi) return false;
        sv = dv = AbsVal::Range(lo, hi);
        if (both && !st.rel.Refine(f.s_reg, f.d_reg, 0, 0)) return false;
        break;
      }
      case CmpRel::kNe: {
        if (sv.IsConst() && dv.IsConst() && sv.lo == dv.lo) return false;
        if (sv.IsConst() && !TrimPoint(dv, sv.lo)) return false;
        if (dv.IsConst() && !TrimPoint(sv, dv.lo)) return false;
        if (both) {
          const RelBound b = st.rel.Get(f.s_reg, f.d_reg);
          if (b.lo == 0 && b.hi == 0) return false;
          if (b.lo == 0 && !st.rel.Refine(f.s_reg, f.d_reg, 1, kInf)) return false;
          if (b.hi == 0 && !st.rel.Refine(f.s_reg, f.d_reg, -kInf, -1)) return false;
        }
        break;
      }
      case CmpRel::kLt:  // src < dst
        if (dv.hi == 0 || sv.lo == 0xFFFF) return false;
        sv.hi = std::min(sv.hi, dv.hi - 1);
        dv.lo = std::max(dv.lo, sv.lo + 1);
        if (sv.lo > sv.hi || dv.lo > dv.hi) return false;
        if (both && !st.rel.Refine(f.s_reg, f.d_reg, -kInf, -1)) return false;
        break;
      case CmpRel::kLe:  // src <= dst
        sv.hi = std::min(sv.hi, dv.hi);
        dv.lo = std::max(dv.lo, sv.lo);
        if (sv.lo > sv.hi || dv.lo > dv.hi) return false;
        if (both && !st.rel.Refine(f.s_reg, f.d_reg, -kInf, 0)) return false;
        break;
      case CmpRel::kGt:  // src > dst
        if (sv.hi == 0 || dv.lo == 0xFFFF) return false;
        sv.lo = std::max(sv.lo, dv.lo + 1);
        dv.hi = std::min(dv.hi, sv.hi - 1);
        if (sv.lo > sv.hi || dv.lo > dv.hi) return false;
        if (both && !st.rel.Refine(f.s_reg, f.d_reg, 1, kInf)) return false;
        break;
      case CmpRel::kGe:  // src >= dst
        sv.lo = std::max(sv.lo, dv.lo);
        dv.hi = std::min(dv.hi, sv.hi);
        if (sv.lo > sv.hi || dv.lo > dv.hi) return false;
        if (both && !st.rel.Refine(f.s_reg, f.d_reg, 0, kInf)) return false;
        break;
    }
    if (f.s_reg >= 0) st.regs[f.s_reg] = sv;
    if (f.d_reg >= 0) st.regs[f.d_reg] = dv;
    return true;
  }

  // --- transfer functions -----------------------------------------------------

  // Interval of register r tightened by one closure step over the
  // difference constraints: r ∈ regs[r] ∩ (regs[q] + rel(r,q)) for every
  // constrained partner q. This is what lets a widened pointer inherit the
  // branch-refined bound of its lockstep counter.
  AbsVal EffectiveReg(const AbsState& s, int r) const {
    if (r >= RelSet::kRegs) {
      return r == kPc ? AbsVal::Top() : s.regs[r];
    }
    AbsVal v = s.regs[r];
    for (int q = 0; q < RelSet::kRegs; ++q) {
      if (q == r) continue;
      const RelBound b = s.rel.Get(r, q);
      if (b.IsTop()) continue;
      const AbsVal& qv = s.regs[q];
      std::int64_t lo = v.lo;
      std::int64_t hi = v.hi;
      if (b.lo > -RelBound::kInf) {
        lo = std::max<std::int64_t>(lo, static_cast<std::int64_t>(qv.lo) + b.lo);
      }
      if (b.hi < RelBound::kInf) {
        hi = std::min<std::int64_t>(hi, static_cast<std::int64_t>(qv.hi) + b.hi);
      }
      lo = std::clamp<std::int64_t>(lo, 0, 0xFFFF);
      hi = std::clamp<std::int64_t>(hi, 0, 0xFFFF);
      if (lo > hi) return s.regs[r];  // inconsistent residue: stay conservative
      v = AbsVal::Range(static_cast<std::uint32_t>(lo),
                        static_cast<std::uint32_t>(hi));
    }
    return v;
  }

  // After a register write that produced a constant, records its exact
  // difference with every other constant register. This seeds relations
  // between independently initialized registers (CLR R3 / MOV #0x100, R4)
  // so that lockstep updates later in a loop (INC R3 / INC R4) keep the
  // difference exact even after the intervals themselves widen apart.
  static void SeedConstRels(AbsState& s, int r) {
    if (r >= RelSet::kRegs || !s.regs[r].IsConst()) return;
    for (int q = 0; q < RelSet::kRegs; ++q) {
      if (q == r || !s.regs[q].IsConst()) continue;
      const std::int32_t d = static_cast<std::int32_t>(s.regs[r].ConstVal()) -
                             static_cast<std::int32_t>(s.regs[q].ConstVal());
      (void)s.rel.Refine(r, q, d, d);
    }
  }

  OperandInfo EvalOperand(const CfgNode& node, bool is_src, const AbsState& s) const {
    const OperandSpec& spec = is_src ? node.insn.src : node.insn.dst;
    const bool src_has_ext = node.insn.src.NeedsExtension();
    const Word ext = is_src ? node.ext1 : (src_has_ext ? node.ext2 : node.ext1);
    const Word ext_addr =
        static_cast<Word>(node.addr + 1 + ((!is_src && src_has_ext) ? 1 : 0));
    OperandInfo out;
    switch (spec.mode) {
      case AddrMode::kReg:
        out.kind = OperandInfo::Kind::kReg;
        out.reg = spec.reg;
        break;
      case AddrMode::kRegDeferred:
        out.kind = OperandInfo::Kind::kMem;
        out.mem_addr = spec.reg == kPc
                           ? AbsVal::Const(static_cast<Word>(node.addr + 1))
                           : EffectiveReg(s, spec.reg);
        break;
      case AddrMode::kImmediate:
        if (is_src) {
          out.kind = OperandInfo::Kind::kImm;
          out.imm = ext;
        } else {  // absolute destination address
          out.kind = OperandInfo::Kind::kMem;
          out.mem_addr = AbsVal::Const(ext);
        }
        break;
      case AddrMode::kIndexed:
        out.kind = OperandInfo::Kind::kMem;
        out.mem_addr = spec.reg == kPc
                           ? AbsVal::Const(static_cast<Word>(ext + ext_addr + 1))
                           : AddConstMod(EffectiveReg(s, spec.reg), ext);
        break;
    }
    return out;
  }

  AbsVal ReadValue(const OperandInfo& op, const AbsState& s) const {
    switch (op.kind) {
      case OperandInfo::Kind::kReg:
        return op.reg == kPc ? AbsVal::Top() : EffectiveReg(s, op.reg);
      case OperandInfo::Kind::kImm:
        return AbsVal::Const(op.imm);
      default:
        return AbsVal::Top();  // memory contents are not tracked
    }
  }

  // Records the condition codes after a CMP: each side is a live register
  // (R0..R5) or a value snapshot.
  void SetCmpFlags(AbsState& s, const OperandInfo& src, const OperandInfo& dst) const {
    FlagsSrc f;
    f.kind = FlagsSrc::Kind::kCmp;
    if (src.kind == OperandInfo::Kind::kReg && src.reg < 6) {
      f.s_reg = static_cast<std::int8_t>(src.reg);
    } else {
      f.s_val = ReadValue(src, s);
    }
    if (dst.kind == OperandInfo::Kind::kReg && dst.reg < 6) {
      f.d_reg = static_cast<std::int8_t>(dst.reg);
    } else {
      f.d_val = ReadValue(dst, s);
    }
    s.flags = f;
  }

  AbsState Transfer(const CfgNode& node, const AbsState& in) const {
    AbsState s = in;
    if (!s.reachable) return s;
    const Opcode op = node.insn.opcode;
    switch (op) {
      case Opcode::kMov: {
        const OperandInfo src = EvalOperand(node, true, s);
        const OperandInfo dst = EvalOperand(node, false, s);
        const AbsVal v = ReadValue(src, s);
        if (dst.kind == OperandInfo::Kind::kReg && dst.reg != kPc) {
          const int r = dst.reg;
          const bool self = src.kind == OperandInfo::Kind::kReg && src.reg == r;
          if (!self) {
            if (r < RelSet::kRegs) {
              if (src.kind == OperandInfo::Kind::kReg && src.reg < RelSet::kRegs) {
                s.rel.CopyFrom(r, src.reg);
              } else {
                s.rel.Drop(r);
              }
            }
            s.regs[r] = v;
            SeedConstRels(s, r);
          }
          if (r < 6) {
            s.flags = FlagsSrc::Zn(r);
          } else {
            s.flags = FlagsSrc{};
          }
        } else {
          // Memory (or PC) destination: NZ reflect the moved value; usable
          // when the source is a live register.
          s.flags = src.kind == OperandInfo::Kind::kReg && src.reg < 6
                        ? FlagsSrc::Zn(src.reg)
                        : FlagsSrc{};
        }
        break;
      }
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kBic:
      case Opcode::kBis:
      case Opcode::kXor: {
        const OperandInfo src = EvalOperand(node, true, s);
        const OperandInfo dst = EvalOperand(node, false, s);
        const AbsVal a = ReadValue(src, s);
        const AbsVal d = ReadValue(dst, s);
        AbsVal r;
        switch (op) {
          case Opcode::kAdd:
            r = AbsVal::Add(a, d);
            break;
          case Opcode::kSub:
            r = AbsVal::Sub(d, a);
            break;
          case Opcode::kBic:
            r = a.IsConst() ? AbsVal::BicMask(d, a.ConstVal())
                            : ConstOnly(d, a, [](Word x, Word y) { return x & ~y; });
            break;
          case Opcode::kBis:
            r = ConstOnly(d, a, [](Word x, Word y) { return x | y; });
            break;
          default:  // kXor
            r = ConstOnly(d, a, [](Word x, Word y) { return x ^ y; });
            break;
        }
        if (dst.kind == OperandInfo::Kind::kReg && dst.reg != kPc) {
          const int rr = dst.reg;
          if (rr < RelSet::kRegs) {
            const bool src_is_reg =
                src.kind == OperandInfo::Kind::kReg && src.reg < RelSet::kRegs;
            if (op == Opcode::kAdd && a.hi + d.hi <= 0xFFFF) {
              if (src_is_reg && src.reg != rr) {
                // new Rr − Rsrc = old Rr
                s.rel.Drop(rr);
                (void)s.rel.Refine(rr, src.reg, static_cast<std::int32_t>(d.lo),
                                   static_cast<std::int32_t>(d.hi));
              } else if (src.kind == OperandInfo::Kind::kImm ||
                         (!src_is_reg && src.kind != OperandInfo::Kind::kReg &&
                          a.IsConst())) {
                s.rel.Shift(rr, static_cast<std::int32_t>(a.lo),
                            static_cast<std::int32_t>(a.hi));
              } else {
                s.rel.Drop(rr);
              }
            } else if (op == Opcode::kSub && d.lo >= a.hi && !src_is_reg &&
                       src.kind != OperandInfo::Kind::kReg) {
              s.rel.Shift(rr, -static_cast<std::int32_t>(a.hi),
                          -static_cast<std::int32_t>(a.lo));
            } else {
              s.rel.Drop(rr);
            }
          }
          s.regs[rr] = r;
          s.flags = rr < 6 ? FlagsSrc::Zn(rr) : FlagsSrc{};
        } else {
          s.flags = FlagsSrc{};
        }
        break;
      }
      case Opcode::kCmp: {
        const OperandInfo src = EvalOperand(node, true, s);
        const OperandInfo dst = EvalOperand(node, false, s);
        SetCmpFlags(s, src, dst);
        break;
      }
      case Opcode::kBit:
        s.flags = FlagsSrc{};  // NZ of src & dst: not modelled
        break;
      case Opcode::kTst: {
        const OperandInfo dst = EvalOperand(node, false, s);
        s.flags = dst.kind == OperandInfo::Kind::kReg && dst.reg < 6
                      ? FlagsSrc::Zn(dst.reg)
                      : FlagsSrc{};
        break;
      }
      case Opcode::kClr: {
        const OperandInfo dst = EvalOperand(node, false, s);
        if (dst.kind == OperandInfo::Kind::kReg && dst.reg != kPc) {
          if (dst.reg < RelSet::kRegs) s.rel.Drop(dst.reg);
          s.regs[dst.reg] = AbsVal::Const(0);
          SeedConstRels(s, dst.reg);
          s.flags = dst.reg < 6 ? FlagsSrc::Zn(dst.reg) : FlagsSrc{};
        } else {
          s.flags = FlagsSrc{};
        }
        break;
      }
      case Opcode::kInc:
      case Opcode::kDec: {
        const OperandInfo dst = EvalOperand(node, false, s);
        if (dst.kind == OperandInfo::Kind::kReg && dst.reg != kPc) {
          const int r = dst.reg;
          const AbsVal d = ReadValue(dst, s);
          const bool wraps = op == Opcode::kInc ? d.hi >= 0xFFFF : d.lo == 0;
          if (r < RelSet::kRegs) {
            if (wraps) {
              s.rel.Drop(r);
            } else {
              s.rel.Shift(r, op == Opcode::kInc ? 1 : -1, op == Opcode::kInc ? 1 : -1);
            }
          }
          s.regs[r] = op == Opcode::kInc ? AbsVal::Add(d, AbsVal::Const(1))
                                         : AbsVal::Sub(d, AbsVal::Const(1));
          s.flags = r < 6 ? FlagsSrc::Zn(r) : FlagsSrc{};
        } else {
          s.flags = FlagsSrc{};
        }
        break;
      }
      case Opcode::kNeg:
      case Opcode::kCom:
      case Opcode::kAsr:
      case Opcode::kAsl: {
        const OperandInfo dst = EvalOperand(node, false, s);
        if (dst.kind == OperandInfo::Kind::kReg && dst.reg != kPc) {
          const int r = dst.reg;
          const AbsVal d = ReadValue(dst, s);
          AbsVal v;
          switch (op) {
            case Opcode::kNeg:
              v = d.IsConst() ? AbsVal::Const(static_cast<Word>(-d.ConstVal()))
                              : AbsVal::Top();
              break;
            case Opcode::kCom:
              v = d.IsConst() ? AbsVal::Const(static_cast<Word>(~d.ConstVal()))
                              : AbsVal::Top();
              break;
            case Opcode::kAsr:
              v = AbsVal::Asr(d);
              break;
            default:  // kAsl
              v = AbsVal::Asl(d);
              break;
          }
          if (r < RelSet::kRegs) s.rel.Drop(r);
          s.regs[r] = v;
          s.flags = r < 6 ? FlagsSrc::Zn(r) : FlagsSrc{};
        } else {
          s.flags = FlagsSrc{};
        }
        break;
      }
      case Opcode::kJsr: {
        // Pushes the return address. JSR leaves the condition codes alone,
        // and FlagsSrc never holds SP as a live side, so flags survive.
        const AbsVal sp = s.regs[kSp];
        if (sp.lo >= 1) {
          s.rel.Shift(kSp, -1, -1);
        } else {
          s.rel.Drop(kSp);
        }
        s.regs[kSp] = AbsVal::Sub(sp, AbsVal::Const(1));
        break;
      }
      case Opcode::kRts: {
        const AbsVal sp = s.regs[kSp];
        if (sp.hi + 1 <= 0xFFFF) {
          s.rel.Shift(kSp, 1, 1);
        } else {
          s.rel.Drop(kSp);
        }
        s.regs[kSp] = AbsVal::Add(sp, AbsVal::Const(1));
        break;
      }
      case Opcode::kTrap:
        TransferTrap(node.insn.trap_code, s);
        break;
      default:
        break;  // HALT/WAIT/RTI/NOP/JMP/branches: no register effect
    }
    return s;
  }

  void TransferTrap(std::uint16_t code, AbsState& s) const {
    // The kernel entry/exit path makes no promise about condition codes.
    s.flags = FlagsSrc{};
    if (view_.bare) {
      // Vectors through the program's own kernel-mode handler; outside the
      // per-regime model, so assume nothing afterwards.
      for (int i = 0; i < 6; ++i) {
        s.regs[i] = AbsVal::Top();
        s.rel.Drop(i);
      }
      return;
    }
    switch (code) {
      case kCallSend:
        s.regs[0] = AbsVal::Range(0, 1);  // 1 = delivered, 0 = full
        s.rel.Drop(0);
        break;
      case kCallRecv:
        s.regs[0] = AbsVal::Range(0, 1);
        s.regs[1] = AbsVal::Top();  // the received word
        s.rel.Drop(0);
        s.rel.Drop(1);
        break;
      case kCallStat:
        s.regs[0] = AbsVal::Top();
        s.regs[1] = AbsVal::Top();
        s.rel.Drop(0);
        s.rel.Drop(1);
        break;
      case kCallAwait:
        s.regs[0] = AbsVal::Top();  // pending-interrupt mask
        s.rel.Drop(0);
        break;
      case kCallGetId:
        s.regs[0] = AbsVal::Const(static_cast<Word>(view_.index));
        s.rel.Drop(0);
        break;
      case kCallSendv:
      case kCallRecvv:
        // R0 = words moved: 0 on stall (SENDV) up to the batch bound.
        s.regs[0] = AbsVal::Range(0, kMaxBatchWords);
        s.rel.Drop(0);
        break;
      case kCallRingPut:
      case kCallRingGet:
        s.regs[0] = AbsVal::Range(0, 1);  // 1 = committed, 0 = stall
        s.rel.Drop(0);
        break;
      case kCallRingStat:
        s.regs[0] = AbsVal::Top();  // occupancy
        s.regs[1] = AbsVal::Top();  // free slots
        s.regs[2] = AbsVal::Top();  // high watermark
        s.rel.Drop(0);
        s.rel.Drop(1);
        s.rel.Drop(2);
        break;
      default:
        break;  // SWAP/SETVEC preserve registers; HALT/RETI do not return
    }
  }

  // Binary result helper: exact when both operands are constants.
  template <typename F>
  static AbsVal ConstOnly(const AbsVal& a, const AbsVal& b, F f) {
    if (a.IsConst() && b.IsConst()) {
      return AbsVal::Const(static_cast<Word>(f(a.ConstVal(), b.ConstVal())));
    }
    return AbsVal::Top();
  }

  // --- findings and obligations ----------------------------------------------

  // Reports a finding once per (address, site, kind) across contexts, and
  // mirrors it into the obligation ledger under `cond`. Annotation
  // discharge is applied here; a used trust line is marked so it is not
  // audited as stale.
  void Report(Finding f, Condition cond, int site) {
    if (f.line < 0 && f.address >= 0) f.line = program_.LineOf(static_cast<Word>(f.address));
    f.condition = ConditionSlug(cond);
    auto trusted = annotations_.trusted_lines.find(f.line);
    const bool discharged = trusted != annotations_.trusted_lines.end() &&
                            f.severity == FindingSeverity::kError;
    if (discharged) {
      f.severity = FindingSeverity::kDischarged;
      f.discharge_reason = trusted->second;
      used_trust_lines_.insert(f.line);
    }
    if (!reported_.insert({f.address, site, f.kind}).second) return;
    Obligation o;
    o.condition = cond;
    o.status = f.severity == FindingSeverity::kError ? ObligationStatus::kOpen
                                                     : ObligationStatus::kAnnotated;
    o.unit = view_.name;
    o.address = f.address;
    o.line = f.line;
    o.instruction = f.instruction;
    o.detail = f.kind + (f.message.empty() ? "" : ": " + f.message);
    o.discharge_reason = f.discharge_reason;
    RecordObligation(f.address >= 0 ? static_cast<Word>(f.address) : 0, site,
                     std::move(o));
    findings_.push_back(std::move(f));
  }

  // Records a successfully proved obligation for a site.
  void Proved(const CfgNode& node, Condition cond, int site, std::string detail) {
    Obligation o;
    o.condition = cond;
    o.status = ObligationStatus::kProved;
    o.unit = view_.name;
    o.address = node.addr;
    o.line = program_.LineOf(node.addr);
    o.instruction = node.text;
    o.detail = std::move(detail);
    RecordObligation(node.addr, site, std::move(o));
  }

  // Merges an obligation into the ledger keyed by (address, site,
  // condition); when several contexts disagree the worst status wins
  // (open > annotated > proved), so a site proved in one context but
  // flagged in another stays an open obligation.
  void RecordObligation(Word addr, int site, Obligation o) {
    const auto key = std::tuple(addr, site, static_cast<int>(o.condition));
    auto [it, inserted] = obligation_index_.try_emplace(key, obligations_.size());
    if (inserted) {
      obligations_.push_back(std::move(o));
      return;
    }
    Obligation& existing = obligations_[it->second];
    if (static_cast<int>(o.status) > static_cast<int>(existing.status)) {
      existing = std::move(o);
    }
  }

  // Audits the annotation layer: a trust line that discharged nothing, and
  // any directive the parser did not recognize, are loud findings (outside
  // the six-condition ledger — they block certification directly).
  void ReportStaleAnnotations() {
    for (const auto& [line, text] : annotations_.unknown_directives) {
      Finding f;
      f.tool = "sepcheck";
      f.unit = view_.name;
      f.kind = "stale-annotation";
      f.line = line;
      f.message =
          Format("unrecognized sepcheck directive \"%s\"; a typo here would "
                 "silently weaken the audit trail",
                 text.c_str());
      findings_.push_back(std::move(f));
    }
    for (const auto& [line, reason] : annotations_.trusted_lines) {
      if (used_trust_lines_.count(line) != 0) continue;
      Finding f;
      f.tool = "sepcheck";
      f.unit = view_.name;
      f.kind = "stale-annotation";
      f.line = line;
      f.message = Format(
          "trust annotation (\"%s\") discharged nothing: the analyzer proves "
          "this line safe (or the line has no finding to discharge); delete "
          "the annotation",
          reason.c_str());
      findings_.push_back(std::move(f));
    }
  }

  // Guarantees every condition appears in the ledger: conditions with no
  // relevant site in this regime are vacuously discharged.
  void FillVacuousObligations() {
    bool seen[kConditionCount] = {};
    for (const Obligation& o : obligations_) {
      seen[static_cast<int>(o.condition)] = true;
    }
    for (int c = 0; c < kConditionCount; ++c) {
      if (seen[c]) continue;
      Obligation o;
      o.condition = static_cast<Condition>(c);
      o.status = ObligationStatus::kProved;
      o.unit = view_.name;
      o.detail = "no relevant operations in this regime (vacuously discharged)";
      obligations_.push_back(std::move(o));
    }
  }

  Finding MakeFinding(const CfgNode& node, const std::string& kind,
                      const std::string& message) const {
    Finding f;
    f.tool = "sepcheck";
    f.unit = view_.name;
    f.kind = kind;
    f.address = node.addr;
    f.instruction = node.text;
    f.message = message;
    f.witness = cfg_.WitnessTo(node.addr);
    return f;
  }

  // --- checks -----------------------------------------------------------------

  bool IntersectsCode(const AbsVal& a) const {
    auto it = cfg_.code_words.lower_bound(static_cast<Word>(a.lo));
    return it != cfg_.code_words.end() && *it <= a.hi;
  }

  std::string DescribeRegion(const AbsVal& a) const {
    if (a.hi < 0x2000) {
      return Format("page 0 beyond partition end 0x%04X",
                    static_cast<unsigned>(view_.mem_words));
    }
    if (a.lo >= kDeviceWindowBase) {
      return view_.device_window_words == 0 ? "device window (no devices owned)"
                                            : "beyond device-register window";
    }
    return "unmapped address space";
  }

  void CheckAccess(const CfgNode& node, const AbsVal& a, bool write, int site,
                   Condition cond) {
    const char* rw = write ? "write" : "read";
    if (a.IsTop()) {
      Finding f = MakeFinding(node, Format("unbounded-%s", rw),
                              "address cannot be bounded by the abstract domain");
      f.region = "unknown";
      Report(std::move(f), cond, site);
      return;
    }
    if (a.hi < view_.mem_words) {
      if (write && IntersectsCode(a)) {
        Finding f = MakeFinding(node, "self-modifying-code",
                                "store can overwrite the program's own instructions; "
                                "rejected, not analyzed");
        f.region = a.ToString() + " within code image";
        Report(std::move(f), Condition::kMemoryPartition, site);
        return;
      }
      Proved(node, cond, site,
             Format("%s %s stays inside the %u-word partition", rw,
                    a.ToString().c_str(), static_cast<unsigned>(view_.mem_words)));
      return;  // own partition
    }
    if (view_.device_window_words > 0 && a.lo >= kDeviceWindowBase &&
        a.hi < kDeviceWindowBase + view_.device_window_words) {
      Proved(node, Condition::kIoExclusivity, site,
             Format("device-register %s %s stays inside the regime's own "
                    "%u-word window",
                    rw, a.ToString().c_str(),
                    static_cast<unsigned>(view_.device_window_words)));
      return;  // own device-register window
    }
    for (const RingWindow& w : ring_windows_) {
      if (a.lo < w.vbase || a.hi >= w.vbase + w.words) continue;
      const SharedRingConfig& rc = view_.shared_rings[static_cast<std::size_t>(w.ring)];
      if (write && !w.writable) {
        // The MMU would fault this at run time; statically it is a
        // violation of the ring's one-directional discipline.
        Finding f = MakeFinding(
            node, "ring-window-write",
            Format("store into shared ring %d (\"%s\") through the CONSUMER's "
                   "read-only window; only the producer may write payload",
                   w.ring, rc.name.c_str()));
        f.region = a.ToString() + Format(": shared-ring %d data window", w.ring);
        Report(std::move(f), Condition::kChannelExclusivity, site);
        return;
      }
      Proved(node, Condition::kChannelExclusivity, site,
             Format("%s %s stays inside the regime's own shared-ring %d "
                    "(\"%s\") %s window",
                    rw, a.ToString().c_str(), w.ring, rc.name.c_str(),
                    w.writable ? "read-write producer" : "read-only consumer"));
      return;  // own shared-ring data window
    }
    Finding f = MakeFinding(node, Format("out-of-regime-%s", rw),
                            Format("%s outside the regime's memory map", rw));
    f.region = a.ToString() + ": " + DescribeRegion(a);
    Report(std::move(f), cond, site);
  }

  void CheckChannelCall(const CfgNode& node, const AbsState& s, std::uint16_t code) {
    const AbsVal chan = EffectiveReg(s, 0);
    const int nchan = static_cast<int>(view_.channels.size());
    const char* call = code == kCallSend    ? "SEND"
                       : code == kCallRecv  ? "RECV"
                       : code == kCallSendv ? "SENDV"
                       : code == kCallRecvv ? "RECVV"
                                            : "STAT";
    if (chan.IsTop() || chan.Width() > kMaxChannelFanout) {
      Finding f = MakeFinding(
          node, "unprovable-channel",
          Format("%s channel index cannot be bounded (R0 = %s)", call,
                 chan.ToString().c_str()));
      f.region = "kernel channel table";
      Report(std::move(f), Condition::kChannelExclusivity, kSiteChannelBase - 1);
      return;
    }
    for (std::uint32_t k = chan.lo; k <= chan.hi; ++k) {
      const int site = kSiteChannelBase + static_cast<int>(k);
      if (k >= static_cast<std::uint32_t>(nchan)) {
        Finding f = MakeFinding(node, "channel-out-of-range",
                                Format("%s on channel %u but only %d configured", call,
                                       k, nchan));
        f.region = "kernel channel table";
        Report(std::move(f), Condition::kChannelExclusivity, site);
        continue;
      }
      const ChannelConfig& cc = view_.channels[k];
      const bool sends = code == kCallSend || code == kCallSendv;
      const bool recvs = code == kCallRecv || code == kCallRecvv;
      const bool is_sender = cc.sender == view_.index;
      const bool is_receiver = cc.receiver == view_.index;
      if ((sends && !is_sender) || (recvs && !is_receiver) ||
          (code == kCallStat && !is_sender && !is_receiver)) {
        Finding f = MakeFinding(
            node, "channel-not-owned",
            Format("%s on channel %u (\"%s\") owned by other regimes", call, k,
                   cc.name.c_str()));
        f.region = Format("channel %u %s end", k, sends ? "sender" : "receiver");
        Report(std::move(f), Condition::kChannelExclusivity, site);
        continue;
      }
      Proved(node, Condition::kChannelExclusivity, site,
             Format("%s on channel %u (\"%s\"): this regime is the configured "
                    "%s end",
                    call, k, cc.name.c_str(),
                    sends || (code == kCallStat && is_sender) ? "sender"
                                                              : "receiver"));
      if (sends || (code == kCallStat && is_sender)) {
        ring_touches_.insert({static_cast<int>(k), 0});
      }
      if (recvs || (code == kCallStat && is_receiver)) {
        ring_touches_.insert({static_cast<int>(k), 1});
      }
    }
  }

  // SENDV/RECVV descriptor table: R2 entries of (vaddr, words) pairs at
  // regime vaddr R1, all inside the caller's partition. The kernel
  // re-validates every entry at run time and faults on any violation; what
  // can be discharged statically is the table extent itself (the payload
  // extents are memory CONTENTS, which the domain does not track).
  void CheckSgTable(const CfgNode& node, const AbsState& s) {
    const AbsVal count = EffectiveReg(s, 2);
    if (count.IsTop() || count.lo == 0 || count.hi > kMaxBatchDescriptors) {
      Finding f = MakeFinding(
          node, "sg-bad-count",
          Format("descriptor count R2 = %s not provably in [1, %d]; the kernel "
                 "faults the regime on a bad count",
                 count.ToString().c_str(), kMaxBatchDescriptors));
      f.region = "scatter-gather descriptor table";
      Report(std::move(f), Condition::kKernelCallLegality, kSiteSgTable);
      return;
    }
    const AbsVal table = EffectiveReg(s, 1);
    // The kernel reads [R1, R1 + 2*R2 - 1] on the caller's behalf.
    const AbsVal span = AbsVal::Add(
        table, AbsVal::Range(0, 2 * count.hi - 1));
    CheckAccess(node, span, /*write=*/false, kSiteSgTable,
                Condition::kMemoryPartition);
  }

  void CheckSharedRingCall(const CfgNode& node, const AbsState& s, std::uint16_t code) {
    const AbsVal ring = EffectiveReg(s, 0);
    const int nrings = static_cast<int>(view_.shared_rings.size());
    const char* call = code == kCallRingPut   ? "RINGPUT"
                       : code == kCallRingGet ? "RINGGET"
                                              : "RINGSTAT";
    if (ring.IsTop() || ring.Width() > kMaxChannelFanout) {
      Finding f = MakeFinding(
          node, "unprovable-ring",
          Format("%s ring index cannot be bounded (R0 = %s)", call,
                 ring.ToString().c_str()));
      f.region = "kernel shared-ring table";
      Report(std::move(f), Condition::kChannelExclusivity, kSiteRingBase - 1);
      return;
    }
    for (std::uint32_t k = ring.lo; k <= ring.hi; ++k) {
      const int site = kSiteRingBase + static_cast<int>(k);
      if (k >= static_cast<std::uint32_t>(nrings)) {
        Finding f = MakeFinding(
            node, "ring-out-of-range",
            Format("%s on shared ring %u but only %d configured", call, k, nrings));
        f.region = "kernel shared-ring table";
        Report(std::move(f), Condition::kChannelExclusivity, site);
        continue;
      }
      const SharedRingConfig& rc = view_.shared_rings[k];
      const bool is_producer = rc.producer == view_.index;
      const bool is_consumer = rc.consumer == view_.index;
      if ((code == kCallRingPut && !is_producer) ||
          (code == kCallRingGet && !is_consumer) ||
          (code == kCallRingStat && !is_producer && !is_consumer)) {
        Finding f = MakeFinding(
            node, "ring-not-owned",
            Format("%s on shared ring %u (\"%s\") owned by other regimes", call, k,
                   rc.name.c_str()));
        f.region = Format("shared ring %u %s end", k,
                          code == kCallRingPut ? "producer" : "consumer");
        Report(std::move(f), Condition::kChannelExclusivity, site);
        continue;
      }
      Proved(node, Condition::kChannelExclusivity, site,
             Format("%s on shared ring %u (\"%s\"): this regime is the "
                    "configured %s end",
                    call, k, rc.name.c_str(),
                    code == kCallRingPut || (code == kCallRingStat && is_producer)
                        ? "producer"
                        : "consumer"));
    }
  }

  void CheckTrap(const CfgNode& node, const AbsState& s) {
    const std::uint16_t code = node.insn.trap_code;
    if (view_.bare) return;
    bool legal = true;
    switch (code) {
      case kCallSwap:
      case kCallAwait:
      case kCallReti:
      case kCallHalt:
      case kCallGetId:
        break;
      case kCallSend:
      case kCallRecv:
      case kCallStat:
        CheckChannelCall(node, s, code);
        break;
      case kCallSendv:
      case kCallRecvv:
        CheckChannelCall(node, s, code);
        CheckSgTable(node, s);
        break;
      case kCallRingPut:
      case kCallRingGet:
      case kCallRingStat:
        CheckSharedRingCall(node, s, code);
        break;
      case kCallSetVec: {
        const AbsVal dev = EffectiveReg(s, 0);
        const AbsVal handler = EffectiveReg(s, 1);
        bool routed = true;
        if (dev.IsTop() ||
            dev.hi >= static_cast<std::uint32_t>(view_.device_slots)) {
          Finding f = MakeFinding(
              node, "setvec-bad-device",
              Format("SETVEC device index %s not within the regime's %d local devices",
                     dev.ToString().c_str(), view_.device_slots));
          f.region = "kernel vector table";
          Report(std::move(f), Condition::kInterruptRouting, kSiteSetvec);
          routed = false;
        }
        if (!handler.IsConst()) {
          Finding f = MakeFinding(
              node, "unprovable-handler",
              Format("SETVEC handler address %s is not a static constant; handler "
                     "code cannot be analyzed",
                     handler.ToString().c_str()));
          f.region = "kernel vector table";
          Report(std::move(f), Condition::kInterruptRouting, kSiteSetvec);
          routed = false;
        } else if (handler.ConstVal() >= view_.mem_words) {
          Finding f = MakeFinding(node, "setvec-bad-handler",
                                  "SETVEC handler address outside the partition");
          f.region = "kernel vector table";
          Report(std::move(f), Condition::kInterruptRouting, kSiteSetvec);
          routed = false;
        }
        if (routed) {
          Proved(node, Condition::kInterruptRouting, kSiteSetvec,
                 Format("SETVEC binds local device %s to handler %s inside the "
                        "partition; the handler entry is lifted and analyzed",
                        dev.ToString().c_str(), handler.ToString().c_str()));
        }
        break;
      }
      default: {
        Finding f = MakeFinding(node, "unknown-kernel-call",
                                Format("TRAP %u is not a kernel call; the kernel "
                                       "faults the regime",
                                       code));
        f.region = "kernel entry table";
        Report(std::move(f), Condition::kKernelCallLegality, kSiteTrapLegal);
        legal = false;
        break;
      }
    }
    if (legal) {
      Proved(node, Condition::kKernelCallLegality, kSiteTrapLegal,
             Format("TRAP %u enters the kernel at a defined call gate", code));
      Proved(node, Condition::kRegisterSave, kSiteTrapRegisterSave,
             "kernel entry saves and kernel exit restores the full register "
             "file (the verified swap path of E2-E4)");
    }
  }

  void CheckNode(const CfgNode& node, const AbsState& s) {
    const Opcode op = node.insn.opcode;

    if (!view_.bare &&
        (op == Opcode::kHalt || op == Opcode::kWait || op == Opcode::kRti)) {
      Report(MakeFinding(node, "privileged-instruction",
                         Format("%s is privileged; in user mode it traps and the "
                                "kernel faults the regime",
                                OpcodeName(op))),
             Condition::kKernelCallLegality, kSiteControl);
      return;
    }

    // Writes to PC through data instructions are control flow the CFG does
    // not model; reject them like indirect jumps.
    const bool writes_dst = op == Opcode::kMov || op == Opcode::kAdd ||
                            op == Opcode::kSub || op == Opcode::kBic ||
                            op == Opcode::kBis || op == Opcode::kXor ||
                            op == Opcode::kClr || op == Opcode::kInc ||
                            op == Opcode::kDec || op == Opcode::kNeg ||
                            op == Opcode::kCom || op == Opcode::kAsr ||
                            op == Opcode::kAsl;
    const bool reads_dst = writes_dst ? (op != Opcode::kMov && op != Opcode::kClr)
                                      : (op == Opcode::kCmp || op == Opcode::kBit ||
                                         op == Opcode::kTst);
    const bool has_dst = writes_dst || reads_dst;
    const bool has_src = op == Opcode::kMov || op == Opcode::kAdd ||
                         op == Opcode::kSub || op == Opcode::kCmp ||
                         op == Opcode::kBit || op == Opcode::kBic ||
                         op == Opcode::kBis || op == Opcode::kXor;

    if (has_src) {
      OperandInfo src = EvalOperand(node, true, s);
      if (src.kind == OperandInfo::Kind::kMem) {
        CheckAccess(node, src.mem_addr, /*write=*/false, kSiteSrc,
                    Condition::kMemoryPartition);
      }
    }
    if (has_dst) {
      OperandInfo dst = EvalOperand(node, false, s);
      if (dst.kind == OperandInfo::Kind::kMem) {
        if (reads_dst) {
          CheckAccess(node, dst.mem_addr, /*write=*/false, kSiteDst,
                      Condition::kMemoryPartition);
        }
        if (writes_dst) {
          CheckAccess(node, dst.mem_addr, /*write=*/true, kSiteDst,
                      Condition::kMemoryPartition);
        }
      } else if (dst.kind == OperandInfo::Kind::kReg && dst.reg == kPc &&
                 writes_dst) {
        Report(MakeFinding(node, "pc-write",
                           "data instruction targets PC; computed control flow is "
                           "rejected, not analyzed"),
               Condition::kMemoryPartition, kSiteDst);
      }
    }

    // JSR/RTS keep the guest's register-save area (its stack) inside its
    // own partition — the per-guest half of the register-save condition.
    if (op == Opcode::kJsr) {
      CheckAccess(node, AbsVal::Sub(EffectiveReg(s, kSp), AbsVal::Const(1)),
                  /*write=*/true, kSiteStack, Condition::kRegisterSave);
    } else if (op == Opcode::kRts) {
      CheckAccess(node, EffectiveReg(s, kSp), /*write=*/false, kSiteStack,
                  Condition::kRegisterSave);
    } else if (op == Opcode::kTrap) {
      CheckTrap(node, s);
    }
  }

  std::vector<Word> DiscoverHandlers() {
    std::vector<Word> out;
    for (const auto& [key, s] : in_) {
      if (!s.reachable) continue;
      auto it = cfg_.nodes.find(key.first);
      if (it == cfg_.nodes.end()) continue;
      const CfgNode& node = it->second;
      if (node.insn.opcode != Opcode::kTrap || node.insn.trap_code != kCallSetVec) {
        continue;
      }
      const AbsVal handler = EffectiveReg(s, 1);
      if (handler.IsConst() && handler.ConstVal() < view_.mem_words) {
        out.push_back(handler.ConstVal());
      }
    }
    return out;
  }

  const AssembledProgram& program_;
  const RegimeView& view_;
  Annotations annotations_;
  Cfg cfg_;
  std::vector<Ctx> contexts_;
  std::map<Word, int> ctx_of_site_;
  std::vector<std::set<int>> parents_;           // per context: caller contexts
  std::map<StateKey, AbsState> rts_outs_;        // latest RTS out-state per context
  std::map<StateKey, AbsState> in_;
  std::map<std::tuple<Word, Word, int>, int> join_counts_;  // (from, to, to_ctx)
  std::vector<std::uint32_t> widen_thresholds_;  // sorted widening landmarks
  std::vector<Finding> findings_;
  std::set<std::tuple<int, int, std::string>> reported_;  // (addr, site, kind)
  std::set<int> used_trust_lines_;
  std::vector<Obligation> obligations_;
  std::map<std::tuple<Word, int, int>, std::size_t> obligation_index_;
  std::set<std::pair<int, int>> ring_touches_;
  // This regime's shared-ring data windows (MMU pages kSharedRingPageBase..).
  struct RingWindow {
    int ring;
    std::uint32_t vbase;
    std::uint32_t words;
    bool writable;  // producer end; the consumer's window is read-only
  };
  std::vector<RingWindow> ring_windows_;
};

}  // namespace

ProgramAnalysis AnalyzeProgram(const AssembledProgram& program, const std::string& source,
                               const RegimeView& view) {
  return ProgramAnalyzer(program, source, view).Run();
}

Result<SystemAnalysis> AnalyzeSystem(const SystemSpec& spec) {
  SystemAnalysis out;
  // Physical ring object -> set of regimes whose code addresses it. With
  // cut channels the object is the (channel, end) pair; uncut, both ends
  // collapse onto ring 0 — the paper's shared X.
  std::map<std::pair<int, int>, std::set<int>> ring_users;
  Annotations merged;

  for (std::size_t r = 0; r < spec.regimes.size(); ++r) {
    const SystemSpec::Regime& regime = spec.regimes[r];
    Result<AssembledProgram> program = Assemble(regime.source);
    if (!program.ok()) {
      return Err(Format("regime %s: %s", regime.name.c_str(), program.error().c_str()));
    }
    RegimeView view;
    view.name = regime.name;
    view.index = static_cast<int>(r);
    view.mem_words = regime.mem_words;
    view.device_window_words =
        static_cast<std::uint32_t>(regime.device_slots) * kDeviceRegSpan;
    view.device_slots = regime.device_slots;
    view.channels = spec.channels;
    view.shared_rings = spec.shared_rings;
    ProgramAnalysis pa = AnalyzeProgram(*program, regime.source, view);
    for (Finding& f : pa.findings) out.findings.push_back(std::move(f));
    for (Obligation& o : pa.obligations) out.obligations.push_back(std::move(o));
    for (const auto& [channel, end] : pa.ring_touches) {
      const int object_end = spec.cut_channels ? end : 0;
      ring_users[{channel, object_end}].insert(static_cast<int>(r));
    }
    Annotations ann = ParseAnnotations(regime.source);
    for (const auto& [k, reason] : ann.disjoint_channels) {
      merged.disjoint_channels.emplace(k, reason);
      auto line = ann.disjoint_channel_lines.find(k);
      if (line != ann.disjoint_channel_lines.end()) {
        merged.disjoint_channel_lines.emplace(k, line->second);
      }
    }
    for (const auto& [k, reason] : ann.shared_rings) {
      merged.shared_rings.emplace(k, reason);
      auto line = ann.shared_ring_lines.find(k);
      if (line != ann.shared_ring_lines.end()) {
        merged.shared_ring_lines.emplace(k, line->second);
      }
    }
  }

  // Wire-cut discipline: every physical ring object may be addressed by at
  // most one regime's code. Cut channels satisfy this by construction
  // (X1 for the sender, X2 for the receiver); an uncut channel whose both
  // ends are used collapses to one object with two users — flagged.
  for (const auto& [object, users] : ring_users) {
    const auto& [channel, end] = object;
    const std::string channel_name =
        channel < static_cast<int>(spec.channels.size())
            ? spec.channels[static_cast<std::size_t>(channel)].name
            : Format("#%d", channel);
    Obligation o;
    o.condition = Condition::kChannelExclusivity;
    o.unit = spec.name;
    if (users.size() <= 1) {
      o.status = ObligationStatus::kProved;
      o.detail = Format(
          "channel %d (\"%s\") ring %d is addressed by exactly one regime",
          channel, channel_name.c_str(), end);
      out.obligations.push_back(std::move(o));
      continue;
    }
    Finding f;
    f.tool = "sepcheck";
    f.unit = spec.name;
    f.kind = "shared-channel-object";
    f.condition = ConditionSlug(Condition::kChannelExclusivity);
    std::string names;
    for (int u : users) {
      if (!names.empty()) names += ", ";
      names += spec.regimes[static_cast<std::size_t>(u)].name;
    }
    f.region = Format("channel %d (\"%s\") ring %d", channel, channel_name.c_str(), end);
    f.message = Format(
        "uncut channel: one ring object is addressed by %zu regimes (%s); "
        "syntactic separability cannot be concluded",
        users.size(), names.c_str());
    auto it = merged.disjoint_channels.find(channel);
    if (it != merged.disjoint_channels.end()) {
      f.severity = FindingSeverity::kDischarged;
      f.discharge_reason = it->second;
    }
    o.status = f.severity == FindingSeverity::kDischarged
                   ? ObligationStatus::kAnnotated
                   : ObligationStatus::kOpen;
    o.detail = f.kind + ": " + f.message;
    o.discharge_reason = f.discharge_reason;
    out.obligations.push_back(std::move(o));
    out.findings.push_back(std::move(f));
  }

  // Shared rings are, BY CONSTRUCTION, one memory object mapped into both
  // endpoints: the producer writes payload through its read-write window,
  // the consumer reads it through its read-only one. No wire-cutting
  // applies — the object is shared whether or not any instruction touches
  // it (the MMU maps it at boot) — so every configured ring is flagged,
  // and the analyst discharges it with a `shared-ring <k>` annotation
  // arguing the MMU's asymmetric mapping plus the kernel's head/tail
  // ownership discipline keep the object one-directional.
  for (std::size_t k = 0; k < spec.shared_rings.size(); ++k) {
    const SharedRingConfig& rc = spec.shared_rings[k];
    Finding f;
    f.tool = "sepcheck";
    f.unit = spec.name;
    f.kind = "shared-ring-object";
    f.condition = ConditionSlug(Condition::kChannelExclusivity);
    auto name_of = [&spec](int r) {
      return r >= 0 && r < static_cast<int>(spec.regimes.size())
                 ? spec.regimes[static_cast<std::size_t>(r)].name
                 : Format("#%d", r);
    };
    f.region = Format("shared ring %zu (\"%s\") data object", k, rc.name.c_str());
    f.message = Format(
        "shared ring: one %u-word object is mapped into %s (read-write) and "
        "%s (read-only); syntactic separability cannot be concluded",
        rc.capacity, name_of(rc.producer).c_str(), name_of(rc.consumer).c_str());
    auto it = merged.shared_rings.find(static_cast<int>(k));
    if (it != merged.shared_rings.end()) {
      f.severity = FindingSeverity::kDischarged;
      f.discharge_reason = it->second;
    }
    Obligation o;
    o.condition = Condition::kChannelExclusivity;
    o.unit = spec.name;
    o.status = f.severity == FindingSeverity::kDischarged
                   ? ObligationStatus::kAnnotated
                   : ObligationStatus::kOpen;
    o.detail = f.kind + ": " + f.message;
    o.discharge_reason = f.discharge_reason;
    out.obligations.push_back(std::move(o));
    out.findings.push_back(std::move(f));
  }

  // Audit the wire-cut annotation layer: a disjoint-channel directive for a
  // channel the configuration does not even have can discharge nothing.
  for (const auto& [k, reason] : merged.disjoint_channels) {
    if (k < static_cast<int>(spec.channels.size())) continue;
    Finding f;
    f.tool = "sepcheck";
    f.unit = spec.name;
    f.kind = "stale-annotation";
    auto line = merged.disjoint_channel_lines.find(k);
    if (line != merged.disjoint_channel_lines.end()) f.line = line->second;
    f.message = Format(
        "disjoint-channel %d (\"%s\") names a channel this configuration "
        "does not have (%zu configured)",
        k, reason.c_str(), spec.channels.size());
    out.findings.push_back(std::move(f));
  }
  for (const auto& [k, reason] : merged.shared_rings) {
    if (k < static_cast<int>(spec.shared_rings.size())) continue;
    Finding f;
    f.tool = "sepcheck";
    f.unit = spec.name;
    f.kind = "stale-annotation";
    auto line = merged.shared_ring_lines.find(k);
    if (line != merged.shared_ring_lines.end()) f.line = line->second;
    f.message = Format(
        "shared-ring %d (\"%s\") names a ring this configuration does not "
        "have (%zu configured)",
        k, reason.c_str(), spec.shared_rings.size());
    out.findings.push_back(std::move(f));
  }

  out.certified = Certified(out.findings);
  return out;
}

}  // namespace sep::sepcheck
