#include "src/sepcheck/analyzer.h"

#include <algorithm>
#include <deque>
#include <map>

#include "src/base/strings.h"
#include "src/machine/machine.h"  // kDeviceRegSpan
#include "src/sepcheck/absdomain.h"

namespace sep::sepcheck {

namespace {

// Join budget before a node's in-state is widened. Small because guest
// programs are small; correctness does not depend on the value.
constexpr int kWidenAfter = 3;
// Channel-index intervals wider than this are treated as unprovable rather
// than enumerating their members.
constexpr std::uint32_t kMaxChannelFanout = 64;
// Handler-discovery iterations (SETVEC roots found by one dataflow round
// feed the next lift).
constexpr int kMaxLiftRounds = 8;

// A resolved operand: a register, an immediate value, or a memory cell
// whose address is abstractly known.
struct OperandInfo {
  enum class Kind { kNone, kReg, kImm, kMem } kind = Kind::kNone;
  int reg = 0;
  Word imm = 0;
  AbsVal mem_addr;
};

AbsVal AddConstMod(const AbsVal& a, Word k) {
  if (a.IsConst()) return AbsVal::Const(static_cast<Word>(a.ConstVal() + k));
  return AbsVal::Add(a, AbsVal::Const(k));
}

class ProgramAnalyzer {
 public:
  ProgramAnalyzer(const AssembledProgram& program, const std::string& source,
                  const RegimeView& view)
      : program_(program), view_(view), annotations_(ParseAnnotations(source)) {}

  ProgramAnalysis Run() {
    std::vector<Word> roots = {program_.EntryPoint()};
    for (int round = 0; round < kMaxLiftRounds; ++round) {
      cfg_ = LiftCfg(program_, roots, view_.name);
      Solve(roots);
      std::vector<Word> discovered = DiscoverHandlers();
      bool grew = false;
      for (Word h : discovered) {
        if (std::find(roots.begin(), roots.end(), h) == roots.end()) {
          roots.push_back(h);
          grew = true;
        }
      }
      if (!grew) break;
    }

    ProgramAnalysis out;
    for (const Finding& f : cfg_.findings) {
      Report(f);  // lift-time findings (indirect jumps, invalid opcodes)
    }
    for (const auto& [addr, node] : cfg_.nodes) {
      CheckNode(node);
    }
    out.cfg = std::move(cfg_);
    out.findings = std::move(findings_);
    out.ring_touches = std::move(ring_touches_);
    return out;
  }

 private:
  // --- dataflow ---------------------------------------------------------------

  AbsState EntryState() const {
    AbsState s;
    s.reachable = true;
    for (int i = 0; i < 6; ++i) s.regs[i] = AbsVal::Const(0);
    s.regs[kSp] = AbsVal::Const(static_cast<Word>(view_.mem_words));
    s.regs[kPc] = AbsVal::Top();  // PC is known per-node, not tracked
    return s;
  }

  static AbsState HandlerState() {
    // A handler can be entered from any point, with the interrupted
    // context's registers: nothing is known.
    AbsState s;
    s.reachable = true;
    return s;
  }

  void Solve(const std::vector<Word>& roots) {
    in_.clear();
    join_counts_.clear();
    std::deque<Word> work;
    for (std::size_t i = 0; i < roots.size(); ++i) {
      in_[roots[i]] = i == 0 ? EntryState() : HandlerState();
      work.push_back(roots[i]);
    }
    std::size_t iterations = 0;
    const std::size_t budget = (cfg_.nodes.size() + 1) * 256;
    while (!work.empty() && iterations++ < budget) {
      const Word addr = work.front();
      work.pop_front();
      auto node_it = cfg_.nodes.find(addr);
      if (node_it == cfg_.nodes.end()) continue;
      const CfgNode& node = node_it->second;
      AbsState out = Transfer(node, in_[addr]);
      if (!out.reachable) continue;
      for (Word succ : node.succs) {
        // Widening is counted per CFG *edge*: a loop re-joins its head
        // through the same backedge, while a subroutine entry joined once
        // from each of several JSR sites must not be widened to Top.
        int& joins = join_counts_[{addr, succ}];
        if (in_[succ].JoinFrom(out, joins >= kWidenAfter)) {
          ++joins;
          work.push_back(succ);
        }
      }
    }
  }

  OperandInfo EvalOperand(const CfgNode& node, bool is_src, const AbsState& s) const {
    const OperandSpec& spec = is_src ? node.insn.src : node.insn.dst;
    const bool src_has_ext = node.insn.src.NeedsExtension();
    const Word ext = is_src ? node.ext1 : (src_has_ext ? node.ext2 : node.ext1);
    const Word ext_addr =
        static_cast<Word>(node.addr + 1 + ((!is_src && src_has_ext) ? 1 : 0));
    OperandInfo out;
    switch (spec.mode) {
      case AddrMode::kReg:
        out.kind = OperandInfo::Kind::kReg;
        out.reg = spec.reg;
        break;
      case AddrMode::kRegDeferred:
        out.kind = OperandInfo::Kind::kMem;
        out.mem_addr = spec.reg == kPc
                           ? AbsVal::Const(static_cast<Word>(node.addr + 1))
                           : s.regs[spec.reg];
        break;
      case AddrMode::kImmediate:
        if (is_src) {
          out.kind = OperandInfo::Kind::kImm;
          out.imm = ext;
        } else {  // absolute destination address
          out.kind = OperandInfo::Kind::kMem;
          out.mem_addr = AbsVal::Const(ext);
        }
        break;
      case AddrMode::kIndexed:
        out.kind = OperandInfo::Kind::kMem;
        out.mem_addr = spec.reg == kPc
                           ? AbsVal::Const(static_cast<Word>(ext + ext_addr + 1))
                           : AddConstMod(s.regs[spec.reg], ext);
        break;
    }
    return out;
  }

  AbsVal ReadValue(const OperandInfo& op, const AbsState& s) const {
    switch (op.kind) {
      case OperandInfo::Kind::kReg:
        return op.reg == kPc ? AbsVal::Top() : s.regs[op.reg];
      case OperandInfo::Kind::kImm:
        return AbsVal::Const(op.imm);
      default:
        return AbsVal::Top();  // memory contents are not tracked
    }
  }

  static void WriteValue(const OperandInfo& op, const AbsVal& v, AbsState& s) {
    if (op.kind == OperandInfo::Kind::kReg) {
      s.regs[op.reg] = v;
    }
  }

  // Binary result helper: exact when both operands are constants.
  template <typename F>
  static AbsVal ConstOnly(const AbsVal& a, const AbsVal& b, F f) {
    if (a.IsConst() && b.IsConst()) {
      return AbsVal::Const(static_cast<Word>(f(a.ConstVal(), b.ConstVal())));
    }
    return AbsVal::Top();
  }

  AbsState Transfer(const CfgNode& node, const AbsState& in) const {
    AbsState s = in;
    if (!s.reachable) return s;
    const Opcode op = node.insn.opcode;
    switch (op) {
      case Opcode::kMov: {
        OperandInfo src = EvalOperand(node, true, s);
        OperandInfo dst = EvalOperand(node, false, s);
        WriteValue(dst, ReadValue(src, s), s);
        break;
      }
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kBic:
      case Opcode::kBis:
      case Opcode::kXor: {
        OperandInfo src = EvalOperand(node, true, s);
        OperandInfo dst = EvalOperand(node, false, s);
        const AbsVal a = ReadValue(src, s);
        const AbsVal d = ReadValue(dst, s);
        AbsVal r;
        switch (op) {
          case Opcode::kAdd:
            r = AbsVal::Add(a, d);
            break;
          case Opcode::kSub:
            r = AbsVal::Sub(d, a);
            break;
          case Opcode::kBic:
            r = a.IsConst() ? AbsVal::BicMask(d, a.ConstVal())
                            : ConstOnly(d, a, [](Word x, Word y) { return x & ~y; });
            break;
          case Opcode::kBis:
            r = ConstOnly(d, a, [](Word x, Word y) { return x | y; });
            break;
          default:  // kXor
            r = ConstOnly(d, a, [](Word x, Word y) { return x ^ y; });
            break;
        }
        WriteValue(dst, r, s);
        break;
      }
      case Opcode::kCmp:
      case Opcode::kBit:
        break;  // condition codes only (not tracked; no branch refinement)
      case Opcode::kClr:
        WriteValue(EvalOperand(node, false, s), AbsVal::Const(0), s);
        break;
      case Opcode::kInc: {
        OperandInfo dst = EvalOperand(node, false, s);
        WriteValue(dst, AbsVal::Add(ReadValue(dst, s), AbsVal::Const(1)), s);
        break;
      }
      case Opcode::kDec: {
        OperandInfo dst = EvalOperand(node, false, s);
        WriteValue(dst, AbsVal::Sub(ReadValue(dst, s), AbsVal::Const(1)), s);
        break;
      }
      case Opcode::kNeg: {
        OperandInfo dst = EvalOperand(node, false, s);
        const AbsVal d = ReadValue(dst, s);
        WriteValue(dst,
                   d.IsConst() ? AbsVal::Const(static_cast<Word>(-d.ConstVal()))
                               : AbsVal::Top(),
                   s);
        break;
      }
      case Opcode::kCom: {
        OperandInfo dst = EvalOperand(node, false, s);
        const AbsVal d = ReadValue(dst, s);
        WriteValue(dst,
                   d.IsConst() ? AbsVal::Const(static_cast<Word>(~d.ConstVal()))
                               : AbsVal::Top(),
                   s);
        break;
      }
      case Opcode::kTst:
        break;
      case Opcode::kAsr: {
        OperandInfo dst = EvalOperand(node, false, s);
        WriteValue(dst, AbsVal::Asr(ReadValue(dst, s)), s);
        break;
      }
      case Opcode::kAsl: {
        OperandInfo dst = EvalOperand(node, false, s);
        WriteValue(dst, AbsVal::Asl(ReadValue(dst, s)), s);
        break;
      }
      case Opcode::kJsr:
        s.regs[kSp] = AbsVal::Sub(s.regs[kSp], AbsVal::Const(1));
        break;
      case Opcode::kRts:
        s.regs[kSp] = AbsVal::Add(s.regs[kSp], AbsVal::Const(1));
        break;
      case Opcode::kTrap:
        TransferTrap(node.insn.trap_code, s);
        break;
      default:
        break;  // HALT/WAIT/RTI/NOP/JMP/branches: no register effect
    }
    return s;
  }

  void TransferTrap(std::uint16_t code, AbsState& s) const {
    if (view_.bare) {
      // Vectors through the program's own kernel-mode handler; outside the
      // per-regime model, so assume nothing afterwards.
      for (int i = 0; i < 6; ++i) s.regs[i] = AbsVal::Top();
      return;
    }
    switch (code) {
      case kCallSend:
        s.regs[0] = AbsVal::Range(0, 1);  // 1 = delivered, 0 = full
        break;
      case kCallRecv:
        s.regs[0] = AbsVal::Range(0, 1);
        s.regs[1] = AbsVal::Top();  // the received word
        break;
      case kCallStat:
        s.regs[0] = AbsVal::Top();
        s.regs[1] = AbsVal::Top();
        break;
      case kCallAwait:
        s.regs[0] = AbsVal::Top();  // pending-interrupt mask
        break;
      case kCallGetId:
        s.regs[0] = AbsVal::Const(static_cast<Word>(view_.index));
        break;
      default:
        break;  // SWAP/SETVEC preserve registers; HALT/RETI do not return
    }
  }

  // --- checks -----------------------------------------------------------------

  void Report(Finding f) {
    if (f.line < 0 && f.address >= 0) f.line = program_.LineOf(static_cast<Word>(f.address));
    auto trusted = annotations_.trusted_lines.find(f.line);
    if (trusted != annotations_.trusted_lines.end() &&
        f.severity == FindingSeverity::kError) {
      f.severity = FindingSeverity::kDischarged;
      f.discharge_reason = trusted->second;
    }
    findings_.push_back(std::move(f));
  }

  Finding MakeFinding(const CfgNode& node, const std::string& kind,
                      const std::string& message) const {
    Finding f;
    f.tool = "sepcheck";
    f.unit = view_.name;
    f.kind = kind;
    f.address = node.addr;
    f.instruction = node.text;
    f.message = message;
    f.witness = cfg_.WitnessTo(node.addr);
    return f;
  }

  bool IntersectsCode(const AbsVal& a) const {
    auto it = cfg_.code_words.lower_bound(static_cast<Word>(a.lo));
    return it != cfg_.code_words.end() && *it <= a.hi;
  }

  std::string DescribeRegion(const AbsVal& a) const {
    if (a.hi < 0x2000) {
      return Format("page 0 beyond partition end 0x%04X",
                    static_cast<unsigned>(view_.mem_words));
    }
    if (a.lo >= kDeviceWindowBase) {
      return view_.device_window_words == 0 ? "device window (no devices owned)"
                                            : "beyond device-register window";
    }
    return "unmapped address space";
  }

  void CheckAccess(const CfgNode& node, const AbsVal& a, bool write) {
    const char* rw = write ? "write" : "read";
    if (a.IsTop()) {
      Finding f = MakeFinding(node, Format("unbounded-%s", rw),
                              "address cannot be bounded by the abstract domain");
      f.region = "unknown";
      Report(std::move(f));
      return;
    }
    if (a.hi < view_.mem_words) {
      if (write && IntersectsCode(a)) {
        Finding f = MakeFinding(node, "self-modifying-code",
                                "store can overwrite the program's own instructions; "
                                "rejected, not analyzed");
        f.region = a.ToString() + " within code image";
        Report(std::move(f));
      }
      return;  // own partition
    }
    if (view_.device_window_words > 0 && a.lo >= kDeviceWindowBase &&
        a.hi < kDeviceWindowBase + view_.device_window_words) {
      return;  // own device-register window
    }
    Finding f = MakeFinding(node, Format("out-of-regime-%s", rw),
                            Format("%s outside the regime's memory map", rw));
    f.region = a.ToString() + ": " + DescribeRegion(a);
    Report(std::move(f));
  }

  void CheckChannelCall(const CfgNode& node, const AbsState& s, std::uint16_t code) {
    const AbsVal chan = s.regs[0];
    const int nchan = static_cast<int>(view_.channels.size());
    const char* call = code == kCallSend ? "SEND" : code == kCallRecv ? "RECV" : "STAT";
    if (chan.IsTop() || chan.Width() > kMaxChannelFanout) {
      Finding f = MakeFinding(
          node, "unprovable-channel",
          Format("%s channel index cannot be bounded (R0 = %s)", call,
                 chan.ToString().c_str()));
      f.region = "kernel channel table";
      Report(std::move(f));
      return;
    }
    for (std::uint32_t k = chan.lo; k <= chan.hi; ++k) {
      if (k >= static_cast<std::uint32_t>(nchan)) {
        Finding f = MakeFinding(node, "channel-out-of-range",
                                Format("%s on channel %u but only %d configured", call,
                                       k, nchan));
        f.region = "kernel channel table";
        Report(std::move(f));
        continue;
      }
      const ChannelConfig& cc = view_.channels[k];
      const bool sends = code == kCallSend;
      const bool recvs = code == kCallRecv;
      const bool is_sender = cc.sender == view_.index;
      const bool is_receiver = cc.receiver == view_.index;
      if ((sends && !is_sender) || (recvs && !is_receiver) ||
          (code == kCallStat && !is_sender && !is_receiver)) {
        Finding f = MakeFinding(
            node, "channel-not-owned",
            Format("%s on channel %u (\"%s\") owned by other regimes", call, k,
                   cc.name.c_str()));
        f.region = Format("channel %u %s end", k, sends ? "sender" : "receiver");
        Report(std::move(f));
        continue;
      }
      if (sends || (code == kCallStat && is_sender)) {
        ring_touches_.insert({static_cast<int>(k), 0});
      }
      if (recvs || (code == kCallStat && is_receiver)) {
        ring_touches_.insert({static_cast<int>(k), 1});
      }
    }
  }

  void CheckTrap(const CfgNode& node, const AbsState& s) {
    const std::uint16_t code = node.insn.trap_code;
    if (view_.bare) return;
    switch (code) {
      case kCallSwap:
      case kCallAwait:
      case kCallReti:
      case kCallHalt:
      case kCallGetId:
        break;
      case kCallSend:
      case kCallRecv:
      case kCallStat:
        CheckChannelCall(node, s, code);
        break;
      case kCallSetVec: {
        const AbsVal dev = s.regs[0];
        const AbsVal handler = s.regs[1];
        if (dev.IsTop() ||
            dev.hi >= static_cast<std::uint32_t>(view_.device_slots)) {
          Finding f = MakeFinding(
              node, "setvec-bad-device",
              Format("SETVEC device index %s not within the regime's %d local devices",
                     dev.ToString().c_str(), view_.device_slots));
          f.region = "kernel vector table";
          Report(std::move(f));
        }
        if (!handler.IsConst()) {
          Finding f = MakeFinding(
              node, "unprovable-handler",
              Format("SETVEC handler address %s is not a static constant; handler "
                     "code cannot be analyzed",
                     handler.ToString().c_str()));
          f.region = "kernel vector table";
          Report(std::move(f));
        } else if (handler.ConstVal() >= view_.mem_words) {
          Finding f = MakeFinding(node, "setvec-bad-handler",
                                  "SETVEC handler address outside the partition");
          f.region = "kernel vector table";
          Report(std::move(f));
        }
        break;
      }
      default: {
        Finding f = MakeFinding(node, "unknown-kernel-call",
                                Format("TRAP %u is not a kernel call; the kernel "
                                       "faults the regime",
                                       code));
        f.region = "kernel entry table";
        Report(std::move(f));
        break;
      }
    }
  }

  void CheckNode(const CfgNode& node) {
    const AbsState& s = in_[node.addr];
    if (!s.reachable) return;
    const Opcode op = node.insn.opcode;

    if (!view_.bare &&
        (op == Opcode::kHalt || op == Opcode::kWait || op == Opcode::kRti)) {
      Report(MakeFinding(node, "privileged-instruction",
                         Format("%s is privileged; in user mode it traps and the "
                                "kernel faults the regime",
                                OpcodeName(op))));
      return;
    }

    // Writes to PC through data instructions are control flow the CFG does
    // not model; reject them like indirect jumps.
    const bool writes_dst = op == Opcode::kMov || op == Opcode::kAdd ||
                            op == Opcode::kSub || op == Opcode::kBic ||
                            op == Opcode::kBis || op == Opcode::kXor ||
                            op == Opcode::kClr || op == Opcode::kInc ||
                            op == Opcode::kDec || op == Opcode::kNeg ||
                            op == Opcode::kCom || op == Opcode::kAsr ||
                            op == Opcode::kAsl;
    const bool reads_dst = writes_dst ? (op != Opcode::kMov && op != Opcode::kClr)
                                      : (op == Opcode::kCmp || op == Opcode::kBit ||
                                         op == Opcode::kTst);
    const bool has_dst = writes_dst || reads_dst;
    const bool has_src = op == Opcode::kMov || op == Opcode::kAdd ||
                         op == Opcode::kSub || op == Opcode::kCmp ||
                         op == Opcode::kBit || op == Opcode::kBic ||
                         op == Opcode::kBis || op == Opcode::kXor;

    if (has_src) {
      OperandInfo src = EvalOperand(node, true, s);
      if (src.kind == OperandInfo::Kind::kMem) {
        CheckAccess(node, src.mem_addr, /*write=*/false);
      }
    }
    if (has_dst) {
      OperandInfo dst = EvalOperand(node, false, s);
      if (dst.kind == OperandInfo::Kind::kMem) {
        if (reads_dst) CheckAccess(node, dst.mem_addr, /*write=*/false);
        if (writes_dst) CheckAccess(node, dst.mem_addr, /*write=*/true);
      } else if (dst.kind == OperandInfo::Kind::kReg && dst.reg == kPc &&
                 writes_dst) {
        Report(MakeFinding(node, "pc-write",
                           "data instruction targets PC; computed control flow is "
                           "rejected, not analyzed"));
      }
    }

    if (op == Opcode::kJsr) {
      CheckAccess(node, AbsVal::Sub(s.regs[kSp], AbsVal::Const(1)), /*write=*/true);
    } else if (op == Opcode::kRts) {
      CheckAccess(node, s.regs[kSp], /*write=*/false);
    } else if (op == Opcode::kTrap) {
      CheckTrap(node, s);
    }
  }

  std::vector<Word> DiscoverHandlers() {
    std::vector<Word> out;
    for (const auto& [addr, node] : cfg_.nodes) {
      if (node.insn.opcode != Opcode::kTrap || node.insn.trap_code != kCallSetVec) {
        continue;
      }
      const AbsState& s = in_[addr];
      if (!s.reachable) continue;
      if (s.regs[1].IsConst() && s.regs[1].ConstVal() < view_.mem_words) {
        out.push_back(s.regs[1].ConstVal());
      }
    }
    return out;
  }

  const AssembledProgram& program_;
  const RegimeView& view_;
  Annotations annotations_;
  Cfg cfg_;
  std::map<Word, AbsState> in_;
  std::map<std::pair<Word, Word>, int> join_counts_;
  std::vector<Finding> findings_;
  std::set<std::pair<int, int>> ring_touches_;
};

}  // namespace

ProgramAnalysis AnalyzeProgram(const AssembledProgram& program, const std::string& source,
                               const RegimeView& view) {
  return ProgramAnalyzer(program, source, view).Run();
}

Result<SystemAnalysis> AnalyzeSystem(const SystemSpec& spec) {
  SystemAnalysis out;
  // Physical ring object -> set of regimes whose code addresses it. With
  // cut channels the object is the (channel, end) pair; uncut, both ends
  // collapse onto ring 0 — the paper's shared X.
  std::map<std::pair<int, int>, std::set<int>> ring_users;
  Annotations merged;

  for (std::size_t r = 0; r < spec.regimes.size(); ++r) {
    const SystemSpec::Regime& regime = spec.regimes[r];
    Result<AssembledProgram> program = Assemble(regime.source);
    if (!program.ok()) {
      return Err(Format("regime %s: %s", regime.name.c_str(), program.error().c_str()));
    }
    RegimeView view;
    view.name = regime.name;
    view.index = static_cast<int>(r);
    view.mem_words = regime.mem_words;
    view.device_window_words =
        static_cast<std::uint32_t>(regime.device_slots) * kDeviceRegSpan;
    view.device_slots = regime.device_slots;
    view.channels = spec.channels;
    ProgramAnalysis pa = AnalyzeProgram(*program, regime.source, view);
    for (Finding& f : pa.findings) out.findings.push_back(std::move(f));
    for (const auto& [channel, end] : pa.ring_touches) {
      const int object_end = spec.cut_channels ? end : 0;
      ring_users[{channel, object_end}].insert(static_cast<int>(r));
    }
    Annotations ann = ParseAnnotations(regime.source);
    for (const auto& [k, reason] : ann.disjoint_channels) {
      merged.disjoint_channels.emplace(k, reason);
    }
  }

  // Wire-cut discipline: every physical ring object may be addressed by at
  // most one regime's code. Cut channels satisfy this by construction
  // (X1 for the sender, X2 for the receiver); an uncut channel whose both
  // ends are used collapses to one object with two users — flagged.
  for (const auto& [object, users] : ring_users) {
    if (users.size() <= 1) continue;
    const auto& [channel, end] = object;
    Finding f;
    f.tool = "sepcheck";
    f.unit = spec.name;
    f.kind = "shared-channel-object";
    std::string names;
    for (int u : users) {
      if (!names.empty()) names += ", ";
      names += spec.regimes[static_cast<std::size_t>(u)].name;
    }
    const std::string channel_name =
        channel < static_cast<int>(spec.channels.size())
            ? spec.channels[static_cast<std::size_t>(channel)].name
            : Format("#%d", channel);
    f.region = Format("channel %d (\"%s\") ring %d", channel, channel_name.c_str(), end);
    f.message = Format(
        "uncut channel: one ring object is addressed by %zu regimes (%s); "
        "syntactic separability cannot be concluded",
        users.size(), names.c_str());
    auto it = merged.disjoint_channels.find(channel);
    if (it != merged.disjoint_channels.end()) {
      f.severity = FindingSeverity::kDischarged;
      f.discharge_reason = it->second;
    }
    out.findings.push_back(std::move(f));
  }

  out.certified = Certified(out.findings);
  return out;
}

}  // namespace sep::sepcheck
