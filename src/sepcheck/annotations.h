// Analyst annotations embedded in SM-11 assembly comments.
//
// sepcheck's syntactic pass is sound but incomplete (the paper's Section 4
// SWAP argument); when a flagged access is in fact secure, the analyst
// records an explicit discharge in the source, next to the code it excuses:
//
//   MOV R1, (R5)   ; sepcheck: trust writes bounded by channel supply
//   ; sepcheck: disjoint-channel 0 ends used time-disjointly (wire-cut arg)
//
// Annotations live in comments, so the assembled image — and therefore
// every run-time behaviour — is byte-identical with or without them. The
// finding is still reported, marked discharged, exactly like the paper's
// flagged-then-argued-away SWAP.
#ifndef SEP_SEPCHECK_ANNOTATIONS_H_
#define SEP_SEPCHECK_ANNOTATIONS_H_

#include <map>
#include <string>

namespace sep::sepcheck {

struct Annotations {
  // `trust` directives: source line -> analyst's reason. Findings whose
  // instruction was emitted by that line are discharged.
  std::map<int, std::string> trusted_lines;
  // `disjoint-channel <k>` directives: channel index -> reason. Discharges
  // the shared-channel-object finding for that channel (the SWAP analogue).
  std::map<int, std::string> disjoint_channels;

  bool Empty() const { return trusted_lines.empty() && disjoint_channels.empty(); }
};

// Scans assembly source for `sepcheck:` comment directives. Unknown
// directives are ignored (they may belong to a future analyzer version).
Annotations ParseAnnotations(const std::string& source);

}  // namespace sep::sepcheck

#endif  // SEP_SEPCHECK_ANNOTATIONS_H_
