// Analyst annotations embedded in SM-11 assembly comments.
//
// sepcheck's syntactic pass is sound but incomplete (the paper's Section 4
// SWAP argument); when a flagged access is in fact secure, the analyst
// records an explicit discharge in the source, next to the code it excuses:
//
//   MOV R1, (R5)   ; sepcheck: trust writes bounded by channel supply
//   ; sepcheck: disjoint-channel 0 ends used time-disjointly (wire-cut arg)
//
// Annotations live in comments, so the assembled image — and therefore
// every run-time behaviour — is byte-identical with or without them. The
// finding is still reported, marked discharged, exactly like the paper's
// flagged-then-argued-away SWAP.
//
// Annotations are audited, not merely consumed: a directive the parser does
// not recognize, and a `trust` that discharges nothing, each produce a
// `stale-annotation` finding (a typo'd discharge line must weaken the audit
// trail loudly, never silently).
#ifndef SEP_SEPCHECK_ANNOTATIONS_H_
#define SEP_SEPCHECK_ANNOTATIONS_H_

#include <map>
#include <string>
#include <vector>

namespace sep::sepcheck {

struct Annotations {
  // `trust` directives: source line -> analyst's reason. Findings whose
  // instruction was emitted by that line are discharged.
  std::map<int, std::string> trusted_lines;
  // `disjoint-channel <k>` directives: channel index -> reason. Discharges
  // the shared-channel-object finding for that channel (the SWAP analogue).
  std::map<int, std::string> disjoint_channels;
  // Source line of each disjoint-channel directive, for audit findings.
  std::map<int, int> disjoint_channel_lines;
  // `shared-ring <k>` directives: shared-ring index -> reason. A shared
  // ring is BY CONSTRUCTION one memory object mapped into both endpoints
  // (producer read-write, consumer read-only), so the analyzer flags every
  // configured ring; the analyst discharges it by arguing the MMU's
  // asymmetric mapping plus the kernel's head/tail ownership discipline
  // (only the producer's RINGPUT advances tail, only the consumer's
  // RINGGET advances head) keep the object one-directional.
  std::map<int, std::string> shared_rings;
  std::map<int, int> shared_ring_lines;
  // `sepcheck:` comments the parser did not recognize (unknown directive,
  // malformed arguments): source line -> the offending text. The analyzer
  // reports each as a stale-annotation finding.
  std::vector<std::pair<int, std::string>> unknown_directives;

  bool Empty() const {
    return trusted_lines.empty() && disjoint_channels.empty() &&
           shared_rings.empty() && unknown_directives.empty();
  }
};

// Scans assembly source for `sepcheck:` comment directives.
Annotations ParseAnnotations(const std::string& source);

}  // namespace sep::sepcheck

#endif  // SEP_SEPCHECK_ANNOTATIONS_H_
