#include "src/sepcheck/catalog.h"

#include "src/machine/devices.h"
#include "src/sepcheck/guest_corpus.h"

namespace sep::sepcheck {

namespace {

// Negative fixtures: each one violates exactly the discipline named in its
// catalogue entry. They are the analyzer's own regression corpus — if one
// stops being flagged, sepcheck has gone blind.

// Writes beyond its partition (page 0 length fault) and reads an unmapped
// page.
constexpr char kFixtureOutOfPartition[] = R"(
START:  MOV #1, R1
        MOV R1, @0x900      ; partition is 512 words; 0x900 is past the end
        MOV @0x4000, R2     ; page 2 is unmapped for every regime
        TRAP 7
)";

// Sends on a channel whose sender end belongs to the other regime.
constexpr char kFixtureForeignSend[] = R"(
START:  MOV #42, R1
        CLR R0              ; channel 0 - but this regime is the RECEIVER
        TRAP 1
        TRAP 7
)";

// Computed jump: sepcheck rejects what it cannot follow.
constexpr char kFixtureIndirectJump[] = R"(
START:  MOV #DONE, R2
        JMP (R2)
DONE:   TRAP 7
)";

// Stores over its own first instruction.
constexpr char kFixtureSelfModify[] = R"(
START:  MOV #0, @START
        TRAP 7
)";

// Statically certified, semantically leaky-by-design: ships its secret
// word down the declared channel. The probe's true-positive control — the
// two-run probe must see the secret-dependence that resource-level
// separability analysis, by design, does not police.
constexpr char kFixtureLeakySender[] = R"(
; sepcheck: disjoint-channel 0 kernel ring discipline keeps the ends time-disjoint (paper s4)
START:  MOV SECRET, R1
        CLR R0
        TRAP 1
        TRAP 0
        TRAP 7
        .ORG 0x40
SECRET: .WORD 0
)";

// The quickstart pair WITHOUT the disjointness annotation: the raw
// machine-level SWAP analogue. Uncut, the two channel ends alias one ring
// object, the syntactic pass flags it, and nothing discharges it.
constexpr char kQuickstartRedUnannotated[] = R"(
START:  CLR R3
LOOP:   INC R3
        MOV R3, R1
        CLR R0
        TRAP 1
        TRAP 0
        CMP #20, R3
        BNE LOOP
        TRAP 7
)";

// Annotation-audit fixture: a typo'd directive and a trust that discharges
// nothing. Both must surface as stale-annotation findings — a silent
// annotation layer would let a mistyped discharge weaken the audit trail.
constexpr char kFixtureStaleAnnotation[] = R"(
; sepcheck: trsut the loop is bounded (typo: not a directive)
START:  MOV #1, R1
        MOV R1, @0x80       ; sepcheck: trust in-partition store (discharges nothing)
        TRAP 7
)";

// Wrong-discharge fixture: the trust annotation CLAIMS the table walk is
// bounded, but nothing bounds it — the cursor runs past TBL into SECRET
// and ships it down the channel. Statically the annotation discharges the
// finding (sepcheck takes the analyst at their word); the semantic probe
// is the backstop that catches the lie.
constexpr char kFixtureWrongDischarge[] = R"(
; sepcheck: disjoint-channel 0 kernel ring discipline keeps the ends time-disjoint (paper s4)
START:  MOV #TBL, R4
LOOP:   MOV (R4), R1        ; sepcheck: trust reads stay inside TBL's four words (WRONG: nothing bounds the walk)
        JSR SENDW
        INC R4
        TRAP 0
        BR LOOP
SENDW:  CLR R0
        TRAP 1
        TST R0
        BNE SDONE
        TRAP 0
        BR SENDW
SDONE:  RTS
        .ORG 0x30
TBL:    .WORD 1
        .WORD 2
        .WORD 3
        .WORD 4
SECRET: .WORD 0
)";

// Intentional-trust fixture: the receiver's cursor is genuinely unbounded
// by anything in THIS program — the bound lives in the peer's protocol
// (exactly 20 words). This is the legitimate use of `trust` that survives
// branch refinement: a cross-program invariant the per-program analysis
// cannot see.
constexpr char kFixtureIntentionalTrust[] = R"(
START:  MOV #0x100, R4
LOOP:   CLR R0
        TRAP 2
        TST R0
        BEQ YIELD
        MOV R1, (R4)        ; sepcheck: trust peer sends exactly 20 words; cursor stays within [0x100,0x113]
        INC R4
        BR LOOP
YIELD:  TRAP 0
        BR LOOP
)";

// Zero-copy fabric pair: the producer ships two extents in ONE SENDV trap
// (static descriptor table, so every bound is a constant the analyzer
// proves), the consumer drains them with one RECVV.
constexpr char kFixtureBatchedProducer[] = R"(
START:  CLR R0              ; channel 0
        MOV #0x20, R1       ; descriptor table
        MOV #2, R2          ; two extents
        TRAP 9              ; SENDV: both extents in one trap
        TRAP 0
        TRAP 7
        .ORG 0x20
TBL:    .WORD 0x30          ; extent 0: 3 words at 0x30
        .WORD 3
        .WORD 0x40          ; extent 1: 5 words at 0x40
        .WORD 5
)";

constexpr char kFixtureBatchedConsumer[] = R"(
START:  CLR R0              ; channel 0
        MOV #0x20, R1       ; descriptor table
        MOV #1, R2          ; one extent
        TRAP 10             ; RECVV: up to 8 words into the buffer
        TRAP 0
        TRAP 7
        .ORG 0x20
TBL:    .WORD 0x30          ; 8-word receive buffer at 0x30
        .WORD 8
)";

// Shared-ring doorbell pair. The ring data object is mapped read-write
// into the producer at 0x8000 and read-only into the consumer at the same
// virtual base; only RINGPUT advances tail, only RINGGET advances head.
constexpr char kFixtureRingProducer[] = R"(
; sepcheck: shared-ring 0 producer-only tail advance + read-only consumer window keep the object one-directional
START:  MOV #7, R1
        MOV R1, @0x8000     ; payload into the producer's read-write window
        CLR R0              ; ring 0
        MOV #1, R1          ; publish one word
        TRAP 11             ; RINGPUT: doorbell on the empty -> non-empty edge
        TRAP 0
        TRAP 7
)";

constexpr char kFixtureRingConsumer[] = R"(
START:  CLR R0              ; ring 0
        TRAP 13             ; RINGSTAT: R0 = occupancy
        TST R0
        BEQ YIELD
        MOV @0x8000, R2     ; read the payload through the read-only window
        CLR R0
        MOV #1, R1
        TRAP 12             ; RINGGET: release the slot back to the producer
        TRAP 7
YIELD:  TRAP 0
        BR START
)";

// The same producer WITHOUT the shared-ring discharge: the flagged shared
// object stays an open obligation.
constexpr char kFixtureRingProducerUnannotated[] = R"(
START:  MOV #7, R1
        MOV R1, @0x8000
        CLR R0
        MOV #1, R1
        TRAP 11
        TRAP 0
        TRAP 7
)";

// Consumer that WRITES through its read-only ring window: the MMU faults
// it at run time; sepcheck flags it statically.
constexpr char kFixtureRingConsumerWrite[] = R"(
START:  MOV #1, R1
        MOV R1, @0x8000     ; store through the READ-ONLY consumer window
        TRAP 7
)";

SystemSpec::Regime Regime(const std::string& name, const char* source,
                          int device_slots = 0) {
  SystemSpec::Regime r;
  r.name = name;
  r.source = source;
  r.mem_words = 512;
  r.device_slots = device_slots;
  return r;
}

ChannelConfig Channel(const std::string& name, int sender, int receiver) {
  ChannelConfig c;
  c.name = name;
  c.sender = sender;
  c.receiver = receiver;
  c.capacity = 16;
  return c;
}

SharedRingConfig SharedRing(const std::string& name, int producer, int consumer) {
  SharedRingConfig r;
  r.name = name;
  r.producer = producer;
  r.consumer = consumer;
  r.capacity = 8;  // minimum legal capacity; data_base is carved at Build()
  return r;
}

std::vector<CatalogEntry> BuildCatalog() {
  std::vector<CatalogEntry> out;

  // --- quickstart pair (examples/quickstart.cpp) ---
  {
    CatalogEntry e;
    e.name = "quickstart";
    e.spec.name = "quickstart";
    e.spec.regimes = {Regime("red", kQuickstartRed), Regime("black", kQuickstartBlack)};
    e.spec.channels = {Channel("red->black", 0, 1)};
    e.spec.cut_channels = false;  // as deployed: the shared-X configuration
    e.expect_certified = true;
    e.expect_discharged = true;  // shared ring flagged, annotation discharges
    e.has_probe = true;
    e.probe.secret_regime = 0;
    e.probe.secret_addrs = {0x1C0};  // a word red never reads or sends
    e.probe.observer_regime = 1;
    e.probe.steps = 6000;
    e.probe_expect_leak = false;  // the flag is a false positive
    out.push_back(e);
  }
  {
    CatalogEntry e;
    e.name = "quickstart-cut";
    e.spec.name = "quickstart-cut";
    e.spec.regimes = {Regime("red", kQuickstartRed), Regime("black", kQuickstartBlack)};
    e.spec.channels = {Channel("red->black", 0, 1)};
    e.spec.cut_channels = true;  // X split into X1/X2: nothing to discharge
    e.expect_certified = true;
    e.expect_discharged = false;
    out.push_back(e);
  }

  // --- SNFE trio (tests/snfe_kernelized_test.cpp) ---
  {
    CatalogEntry e;
    e.name = "snfe";
    e.spec.name = "snfe";
    e.spec.regimes = {Regime("red", kSnfeRed, /*device_slots=*/1),
                      Regime("censor", kSnfeCensor), Regime("black", kSnfeBlack)};
    e.device_kinds = {"crypto", "", ""};
    e.spec.channels = {Channel("red->censor", 0, 1), Channel("red->black", 0, 2),
                       Channel("censor->black", 1, 2)};
    e.spec.cut_channels = false;
    e.expect_certified = true;
    e.expect_discharged = true;
    e.has_probe = true;
    e.probe.secret_regime = 0;
    e.probe.secret_addrs = {0x1F0};  // scratch red never touches
    e.probe.observer_regime = 2;     // black
    e.probe.steps = 20000;
    e.probe_expect_leak = false;
    out.push_back(e);
  }
  {
    CatalogEntry e;
    e.name = "snfe-cut";
    e.spec.name = "snfe-cut";
    e.spec.regimes = {Regime("red", kSnfeRed, /*device_slots=*/1),
                      Regime("censor", kSnfeCensor), Regime("black", kSnfeBlack)};
    e.device_kinds = {"crypto", "", ""};
    e.spec.channels = {Channel("red->censor", 0, 1), Channel("red->black", 0, 2),
                       Channel("censor->black", 1, 2)};
    e.spec.cut_channels = true;
    e.expect_certified = true;
    // Nothing left to discharge: branch refinement proves black's packet
    // stores bounded, and the cut wires leave no shared ring object.
    e.expect_discharged = false;
    out.push_back(e);
  }

  // --- ACCAT guard trio (tests/guard_kernelized_test.cpp) ---
  {
    CatalogEntry e;
    e.name = "guard";
    e.spec.name = "guard";
    e.spec.regimes = {Regime("guard", kGuardGuard), Regime("low", kGuardLow),
                      Regime("high", kGuardHigh)};
    e.spec.channels = {Channel("low->guard", 1, 0), Channel("high->guard", 2, 0),
                       Channel("guard->low", 0, 1), Channel("guard->high", 0, 2)};
    e.spec.cut_channels = false;
    e.expect_certified = true;
    e.expect_discharged = true;
    out.push_back(e);
  }

  // --- the raw SWAP analogue: flagged, undischarged ---
  {
    CatalogEntry e;
    e.name = "swap-analogue-undischarged";
    e.spec.name = "swap-analogue-undischarged";
    e.spec.regimes = {Regime("red", kQuickstartRedUnannotated),
                      Regime("black", kQuickstartBlack)};
    e.spec.channels = {Channel("red->black", 0, 1)};
    e.spec.cut_channels = false;
    e.expect_certified = false;  // shared ring object, no annotation
    e.has_probe = true;
    e.probe.secret_regime = 0;
    e.probe.secret_addrs = {0x1C0};
    e.probe.observer_regime = 1;
    e.probe.steps = 6000;
    e.probe_expect_leak = false;  // ...yet semantically secure: false positive
    out.push_back(e);
  }

  // --- probe true-positive control ---
  {
    CatalogEntry e;
    e.name = "leaky-sender-control";
    e.spec.name = "leaky-sender-control";
    e.spec.regimes = {Regime("red", kFixtureLeakySender),
                      Regime("black", kQuickstartBlack)};
    e.spec.channels = {Channel("red->black", 0, 1)};
    // Uncut: a cut wire starves the receiver and the probe would be
    // vacuously "secure". The leak must travel the deployed channel.
    e.spec.cut_channels = false;
    e.expect_certified = true;  // every address is a static constant
    e.expect_discharged = true;
    e.has_probe = true;
    e.probe.secret_regime = 0;
    e.probe.secret_addrs = {0x40};  // SECRET — shipped down the channel
    e.probe.observer_regime = 1;
    e.probe.steps = 6000;
    e.probe_expect_leak = true;
    out.push_back(e);
  }

  // --- zero-copy channel fabric (batched + shared-ring doorbell) ---
  {
    CatalogEntry e;
    e.name = "batched-pair";
    e.spec.name = "batched-pair";
    e.spec.regimes = {Regime("producer", kFixtureBatchedProducer),
                      Regime("consumer", kFixtureBatchedConsumer)};
    e.spec.channels = {Channel("producer->consumer", 0, 1)};
    e.spec.cut_channels = true;  // X1/X2 split: nothing to discharge
    e.expect_certified = true;
    e.expect_discharged = false;
    out.push_back(e);
  }
  {
    CatalogEntry e;
    e.name = "shared-ring-pair";
    e.spec.name = "shared-ring-pair";
    e.spec.regimes = {Regime("producer", kFixtureRingProducer),
                      Regime("consumer", kFixtureRingConsumer)};
    e.spec.shared_rings = {SharedRing("producer->consumer", 0, 1)};
    e.expect_certified = true;
    e.expect_discharged = true;  // the ring object is flagged, then argued away
    out.push_back(e);
  }
  {
    // Negative: the SAME shared-ring system without the discharge — the
    // inherently-shared data object stays an open obligation.
    CatalogEntry e;
    e.name = "fixture-shared-ring-undischarged";
    e.spec.name = "fixture-shared-ring-undischarged";
    e.spec.regimes = {Regime("producer", kFixtureRingProducerUnannotated),
                      Regime("consumer", kFixtureRingConsumer)};
    e.spec.shared_rings = {SharedRing("producer->consumer", 0, 1)};
    e.expect_certified = false;
    out.push_back(e);
  }
  {
    // Negative: consumer stores through its read-only ring window.
    CatalogEntry e;
    e.name = "fixture-ring-consumer-write";
    e.spec.name = "fixture-ring-consumer-write";
    e.spec.regimes = {Regime("producer", kFixtureRingProducer),
                      Regime("rogue", kFixtureRingConsumerWrite)};
    e.spec.shared_rings = {SharedRing("producer->rogue", 0, 1)};
    e.expect_certified = false;
    out.push_back(e);
  }

  // --- negative fixtures: must be flagged ---
  {
    CatalogEntry e;
    e.name = "fixture-out-of-partition";
    e.spec.name = "fixture-out-of-partition";
    e.spec.regimes = {Regime("rogue", kFixtureOutOfPartition)};
    e.expect_certified = false;
    out.push_back(e);
  }
  {
    CatalogEntry e;
    e.name = "fixture-foreign-send";
    e.spec.name = "fixture-foreign-send";
    e.spec.regimes = {Regime("sender", kQuickstartRed), Regime("rogue", kFixtureForeignSend)};
    e.spec.channels = {Channel("sender->rogue", 0, 1)};
    e.expect_certified = false;
    out.push_back(e);
  }
  {
    CatalogEntry e;
    e.name = "fixture-indirect-jump";
    e.spec.name = "fixture-indirect-jump";
    e.spec.regimes = {Regime("rogue", kFixtureIndirectJump)};
    e.expect_certified = false;
    out.push_back(e);
  }
  {
    CatalogEntry e;
    e.name = "fixture-self-modify";
    e.spec.name = "fixture-self-modify";
    e.spec.regimes = {Regime("rogue", kFixtureSelfModify)};
    e.expect_certified = false;
    out.push_back(e);
  }
  {
    CatalogEntry e;
    e.name = "fixture-stale-annotation";
    e.spec.name = "fixture-stale-annotation";
    e.spec.regimes = {Regime("rogue", kFixtureStaleAnnotation)};
    e.expect_certified = false;  // two stale-annotation findings block
    out.push_back(e);
  }

  // --- annotation abuse: statically discharged, semantically caught ---
  {
    CatalogEntry e;
    e.name = "fixture-wrong-discharge";
    e.spec.name = "fixture-wrong-discharge";
    e.spec.regimes = {Regime("red", kFixtureWrongDischarge),
                      Regime("black", kQuickstartBlack)};
    e.spec.channels = {Channel("red->black", 0, 1)};
    e.spec.cut_channels = false;  // the leak must travel the deployed wire
    e.expect_certified = true;  // the (wrong) trust annotation discharges it
    e.expect_discharged = true;
    e.has_probe = true;
    e.probe.secret_regime = 0;
    e.probe.secret_addrs = {0x34};  // SECRET, swept up by the unbounded walk
    e.probe.observer_regime = 1;
    e.probe.steps = 8000;
    e.probe_expect_leak = true;  // the probe catches the false discharge
    out.push_back(e);
  }

  // --- the intentional residue: a cross-program bound only trust can carry ---
  {
    CatalogEntry e;
    e.name = "fixture-intentional-trust";
    e.spec.name = "fixture-intentional-trust";
    e.spec.regimes = {Regime("red", kQuickstartRed),
                      Regime("collector", kFixtureIntentionalTrust)};
    e.spec.channels = {Channel("red->collector", 0, 1)};
    e.spec.cut_channels = true;
    e.expect_certified = true;
    e.expect_discharged = true;  // exactly the one annotated store
    out.push_back(e);
  }

  return out;
}

}  // namespace

const std::vector<CatalogEntry>& Catalog() {
  static const std::vector<CatalogEntry>* catalog =
      new std::vector<CatalogEntry>(BuildCatalog());
  return *catalog;
}

Result<std::unique_ptr<KernelizedSystem>> BuildEntrySystem(const CatalogEntry& entry) {
  SystemBuilder builder;
  for (std::size_t r = 0; r < entry.spec.regimes.size(); ++r) {
    const SystemSpec::Regime& regime = entry.spec.regimes[r];
    std::vector<int> slots;
    const std::string kind =
        r < entry.device_kinds.size() ? entry.device_kinds[r] : std::string();
    if (kind == "crypto") {
      slots.push_back(builder.AddDevice(
          std::make_unique<CryptoUnit>("crypto", 16, 4, /*key=*/0xFEED, 2)));
    } else if (!kind.empty()) {
      return Err("unknown device kind: " + kind);
    }
    Result<int> added = builder.AddRegime(regime.name, regime.mem_words, regime.source, slots);
    if (!added.ok()) {
      return Err(added.error());
    }
  }
  for (const ChannelConfig& c : entry.spec.channels) {
    builder.AddChannel(c.name, c.sender, c.receiver, c.capacity);
  }
  for (const SharedRingConfig& ring : entry.spec.shared_rings) {
    builder.AddSharedRing(ring.name, ring.producer, ring.consumer, ring.capacity);
  }
  builder.CutChannels(entry.spec.cut_channels);
  return builder.Build();
}

}  // namespace sep::sepcheck
