// The canonical in-tree SM-11 guest programs.
//
// One definition of each guest used by the examples and kernelized tests,
// so that `tools/sepcheck --all` provably lints the same programs the test
// suite runs. The sources carry `; sepcheck:` discharge annotations where
// the syntactic analyzer flags accesses that are semantically fine (see
// src/sepcheck/annotations.h) — annotations live in comments, so the
// assembled images are identical to the originals.
#ifndef SEP_SEPCHECK_GUEST_CORPUS_H_
#define SEP_SEPCHECK_GUEST_CORPUS_H_

namespace sep::sepcheck {

// Quickstart pair (examples/quickstart.cpp): red streams a counter to
// black over channel 0; black accumulates at 0x80.
extern const char kQuickstartRed[];
extern const char kQuickstartBlack[];

// SNFE trio (tests/snfe_kernelized_test.cpp): red (crypto device owner,
// channels 0 and 1), censor (vets headers, channel 0 -> 2), black (pairs
// headers with ciphertext). Channels: 0 red->censor, 1 red->black,
// 2 censor->black.
extern const char kSnfeRed[];
extern const char kSnfeCensor[];
extern const char kSnfeBlack[];

// ACCAT-guard trio (tests/guard_kernelized_test.cpp). Channels:
// 0 low->guard, 1 high->guard, 2 guard->low, 3 guard->high.
extern const char kGuardGuard[];
extern const char kGuardLow[];
extern const char kGuardHigh[];

}  // namespace sep::sepcheck

#endif  // SEP_SEPCHECK_GUEST_CORPUS_H_
