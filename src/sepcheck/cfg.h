// Control-flow graph over decoded SM-11 instructions.
//
// The lifter explores the assembled image from a set of roots (the entry
// point plus statically-known interrupt handler entries), decoding with
// src/machine/isa.* and recording, per instruction, the successors a
// run-time execution can take. Computed control flow it cannot resolve —
// JMP/JSR through a register — is REJECTED (a finding, with no successors),
// not analyzed: sepcheck refuses to certify what it cannot follow.
//
// At the CFG level every RTS lists the continuation of every JSR as a
// successor — sound (the real return address is always one of them, absent
// stack smashing, which the stack-write checks flag separately). The
// dataflow in analyzer.cpp sharpens this with depth-1 call-string contexts:
// each JSR site opens its own analysis context and an RTS propagates only
// to the return points of the contexts that actually called it.
#ifndef SEP_SEPCHECK_CFG_H_
#define SEP_SEPCHECK_CFG_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/finding.h"
#include "src/machine/isa.h"
#include "src/sm11asm/assembler.h"

namespace sep::sepcheck {

struct CfgNode {
  Word addr = 0;
  DecodedInsn insn;
  Word ext1 = 0;  // source extension word (or the only one)
  Word ext2 = 0;  // destination extension word of a two-ext instruction
  std::vector<Word> succs;  // dataflow successors
  bool is_jsr = false;
  Word jsr_target = 0;
  Word jsr_return = 0;
  bool is_rts = false;
  std::string text;  // disassembly, for findings
};

struct Cfg {
  Word base = 0;
  std::vector<Word> roots;
  std::map<Word, CfgNode> nodes;
  std::set<Word> code_words;      // every word occupied by an instruction
  std::vector<Word> jsr_returns;  // continuation addresses of all JSRs
  std::map<Word, Word> bfs_parent;  // shortest-path tree from the roots
  std::vector<Finding> findings;    // indirect jumps, invalid opcodes, ...

  // Shortest witness path from a root to `addr` (inclusive), for findings.
  std::vector<Word> WitnessTo(Word addr) const;
};

// Lifts `program` into a CFG. `roots` must contain at least the entry
// point; the analyzer adds interrupt-handler entries it discovers via
// SETVEC and re-lifts. `unit` names the program in findings.
Cfg LiftCfg(const AssembledProgram& program, const std::vector<Word>& roots,
            const std::string& unit);

}  // namespace sep::sepcheck

#endif  // SEP_SEPCHECK_CFG_H_
