#include "src/sepcheck/obligations.h"

#include "src/base/strings.h"

namespace sep::sepcheck {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

}  // namespace

const char* ConditionSlug(Condition c) {
  switch (c) {
    case Condition::kMemoryPartition:
      return "memory-partition";
    case Condition::kChannelExclusivity:
      return "channel-exclusivity";
    case Condition::kIoExclusivity:
      return "io-exclusivity";
    case Condition::kInterruptRouting:
      return "interrupt-routing";
    case Condition::kRegisterSave:
      return "register-save";
    case Condition::kKernelCallLegality:
      return "kernel-call-legality";
  }
  return "unknown";
}

const char* ObligationStatusSlug(ObligationStatus s) {
  switch (s) {
    case ObligationStatus::kProved:
      return "proved";
    case ObligationStatus::kAnnotated:
      return "annotated";
    case ObligationStatus::kOpen:
      return "open";
  }
  return "unknown";
}

std::string Obligation::ToJson() const {
  std::string out = "{";
  out += Format("\"condition\":\"%s\"", ConditionSlug(condition));
  out += Format(",\"status\":\"%s\"", ObligationStatusSlug(status));
  out += Format(",\"unit\":\"%s\"", JsonEscape(unit).c_str());
  if (address >= 0) out += Format(",\"address\":%d", address);
  if (line >= 0) out += Format(",\"line\":%d", line);
  if (!instruction.empty()) {
    out += Format(",\"instruction\":\"%s\"", JsonEscape(instruction).c_str());
  }
  if (!detail.empty()) {
    out += Format(",\"detail\":\"%s\"", JsonEscape(detail).c_str());
  }
  if (!discharge_reason.empty()) {
    out += Format(",\"discharge\":\"%s\"", JsonEscape(discharge_reason).c_str());
  }
  out += "}";
  return out;
}

std::string ObligationSummary::ToJson() const {
  std::string out = "{";
  for (int c = 0; c < kConditionCount; ++c) {
    if (c > 0) out += ",";
    out += Format("\"%s\":{\"proved\":%d,\"annotated\":%d,\"open\":%d}",
                  ConditionSlug(static_cast<Condition>(c)), counts[c][0],
                  counts[c][1], counts[c][2]);
  }
  out += "}";
  return out;
}

std::string RenderObligationsJson(const std::vector<EntryObligations>& entries) {
  std::string out;
  out += "{\n";
  out += Format("  \"schema\": \"%s\",\n", kObligationsSchemaTag);
  out += "  \"conditions\": [";
  for (int c = 0; c < kConditionCount; ++c) {
    if (c > 0) out += ", ";
    out += Format("\"%s\"", ConditionSlug(static_cast<Condition>(c)));
  }
  out += "],\n";
  out += "  \"entries\": [\n";
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const EntryObligations& entry = entries[e];
    ObligationSummary summary;
    for (const Obligation& o : entry.obligations) summary.Add(o);
    out += "    {\n";
    out += Format("      \"entry\": \"%s\",\n", JsonEscape(entry.entry).c_str());
    out += Format("      \"certified\": %s,\n", entry.certified ? "true" : "false");
    out += Format("      \"open\": %d,\n", summary.Open());
    out += Format("      \"summary\": %s,\n", summary.ToJson().c_str());
    out += "      \"obligations\": [\n";
    for (std::size_t i = 0; i < entry.obligations.size(); ++i) {
      out += "        " + entry.obligations[i].ToJson();
      out += i + 1 < entry.obligations.size() ? ",\n" : "\n";
    }
    out += "      ]\n";
    out += e + 1 < entries.size() ? "    },\n" : "    }\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace sep::sepcheck
