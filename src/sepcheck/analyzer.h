// Static separability analysis of assembled SM-11 guest programs.
//
// AnalyzeProgram proves, per instruction, which memory region every read
// and write can touch, using a worklist dataflow over the CFG with the
// domain of absdomain.h: intervals sharpened by condition-code branch
// refinement (CMP/TST feeding BEQ/BNE/BCS/BCC and friends narrow both
// edges), difference constraints between registers, and depth-1
// call-string contexts (each JSR site is analyzed in its own context, so
// returns do not smear all call sites together). Every access the analysis
// bounds emits a proved Obligation naming the separability condition it
// discharges; anything it cannot bound — out-of-partition addresses,
// unprovable (TOP) addresses, writes over the program's own code, kernel
// calls with unverifiable or foreign channel arguments — becomes a Finding
// with a CFG witness path and an open (or annotation-discharged)
// obligation.
//
// AnalyzeSystem runs every regime of a configuration and then checks the
// wire-cutting discipline of the paper's Section 4: each channel object is
// split into an X1 (sender) and X2 (receiver) end, and the analysis proves
// each side's code only ever addresses its own end. With cut_channels ==
// false both ends alias one ring — the shared object X — and the analyzer
// flags it, soundly but (as the semantic probe shows) incompletely: the
// kernel's ring discipline keeps the ends time-disjoint. The flag is
// discharged by an explicit `sepcheck: disjoint-channel` annotation.
#ifndef SEP_SEPCHECK_ANALYZER_H_
#define SEP_SEPCHECK_ANALYZER_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/finding.h"
#include "src/kernel/config.h"
#include "src/sepcheck/annotations.h"
#include "src/sepcheck/cfg.h"
#include "src/sepcheck/obligations.h"
#include "src/sm11asm/assembler.h"

namespace sep::sepcheck {

// The memory map one regime's program runs under (ProgramMmuFor's layout)
// plus the channel ends the kernel configuration grants it.
struct RegimeView {
  std::string name = "program";
  int index = 0;                          // regime index in the configuration
  std::uint32_t mem_words = 0;            // page 0: own partition, read-write
  std::uint32_t device_window_words = 0;  // page 7 span; 0 = no devices
  int device_slots = 0;                   // local devices (SETVEC bound)
  std::vector<ChannelConfig> channels;    // full channel table of the config
  // Full shared-ring table of the config. Rings with this regime as an
  // endpoint map a data window at pages kSharedRingPageBase.. (producer
  // read-write, consumer read-only), and RINGPUT/RINGGET/RINGSTAT calls
  // are checked against endpoint ownership.
  std::vector<SharedRingConfig> shared_rings;
  // Bare machine mode: HALT/WAIT/RTI are legal and TRAPs vector to the
  // program's own handlers instead of the kernel (used by tools on
  // standalone programs; regime analysis leaves this false).
  bool bare = false;
};

// Virtual base of the device-register window (MMU page 7).
inline constexpr Word kDeviceWindowBase = 0xE000;

struct ProgramAnalysis {
  Cfg cfg;
  std::vector<Finding> findings;
  // (channel, end) pairs this program's kernel calls can address, where
  // end 0 = X1/sender and 1 = X2/receiver. Input to the wire-cut check.
  std::set<std::pair<int, int>> ring_touches;
  // The proof-obligation ledger: one record per proof step, naming the
  // separability condition it discharges. Open obligations correspond 1:1
  // to blocking findings; conditions with no relevant site carry a vacuous
  // proved record so every certified unit covers all six conditions.
  std::vector<Obligation> obligations;

  bool Certified() const { return sep::Certified(findings); }
};

// Analyzes one program under `view`. `source` is the assembly text the
// program came from; it supplies discharge annotations (and is optional —
// an empty string means no annotations).
ProgramAnalysis AnalyzeProgram(const AssembledProgram& program, const std::string& source,
                               const RegimeView& view);

// A whole system to analyze: regime sources plus the channel topology.
struct SystemSpec {
  struct Regime {
    std::string name;
    std::string source;        // SM-11 assembly
    std::uint32_t mem_words = 512;
    int device_slots = 0;
  };
  std::string name = "system";
  std::vector<Regime> regimes;
  std::vector<ChannelConfig> channels;
  std::vector<SharedRingConfig> shared_rings;
  bool cut_channels = true;
};

struct SystemAnalysis {
  std::vector<Finding> findings;  // per-regime findings + wire-cut findings
  // Per-regime ledgers concatenated, followed by the system-level wire-cut
  // obligations (channel exclusivity of every addressed ring object).
  std::vector<Obligation> obligations;
  bool certified = false;
};

// Assembles and analyzes every regime, then applies the wire-cut check.
// Fails (Err) only when a source does not assemble.
Result<SystemAnalysis> AnalyzeSystem(const SystemSpec& spec);

}  // namespace sep::sepcheck

#endif  // SEP_SEPCHECK_ANALYZER_H_
