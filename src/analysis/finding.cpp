#include "src/analysis/finding.h"

#include "src/base/strings.h"

namespace sep {
namespace {

const char* SeverityName(FindingSeverity severity) {
  switch (severity) {
    case FindingSeverity::kError:
      return "error";
    case FindingSeverity::kDischarged:
      return "discharged";
    case FindingSeverity::kInfo:
      return "info";
  }
  return "unknown";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

}  // namespace

std::string Finding::ToString() const {
  std::string out = Format("[%s] %s", tool.c_str(), unit.c_str());
  if (address >= 0) {
    out += Format(" @%04X", static_cast<unsigned>(address));
  }
  if (line >= 0) {
    out += Format(" line %d", line);
  }
  if (!instruction.empty()) {
    out += Format(" \"%s\"", instruction.c_str());
  }
  out += Format(": %s", kind.c_str());
  if (!condition.empty()) {
    out += Format(" <%s>", condition.c_str());
  }
  if (!region.empty()) {
    out += Format(" [%s]", region.c_str());
  }
  if (!message.empty()) {
    out += Format(" — %s", message.c_str());
  }
  if (!witness.empty()) {
    out += " via";
    for (Word w : witness) {
      out += Format(" %04X", w);
    }
  }
  if (severity == FindingSeverity::kDischarged) {
    out += Format(" (discharged: %s)", discharge_reason.c_str());
  } else if (severity == FindingSeverity::kInfo) {
    out += " (info)";
  }
  return out;
}

std::string Finding::ToJson() const {
  std::string out = "{";
  out += Format("\"tool\":\"%s\"", JsonEscape(tool).c_str());
  out += Format(",\"unit\":\"%s\"", JsonEscape(unit).c_str());
  out += Format(",\"kind\":\"%s\"", JsonEscape(kind).c_str());
  out += Format(",\"severity\":\"%s\"", SeverityName(severity));
  if (!condition.empty()) {
    out += Format(",\"condition\":\"%s\"", JsonEscape(condition).c_str());
  }
  if (line >= 0) out += Format(",\"line\":%d", line);
  if (address >= 0) out += Format(",\"address\":%d", address);
  if (!instruction.empty()) {
    out += Format(",\"instruction\":\"%s\"", JsonEscape(instruction).c_str());
  }
  if (!region.empty()) {
    out += Format(",\"region\":\"%s\"", JsonEscape(region).c_str());
  }
  if (!message.empty()) {
    out += Format(",\"message\":\"%s\"", JsonEscape(message).c_str());
  }
  if (!witness.empty()) {
    out += ",\"witness\":[";
    for (std::size_t i = 0; i < witness.size(); ++i) {
      if (i > 0) out += ",";
      out += Format("%u", static_cast<unsigned>(witness[i]));
    }
    out += "]";
  }
  if (!discharge_reason.empty()) {
    out += Format(",\"discharge\":\"%s\"", JsonEscape(discharge_reason).c_str());
  }
  out += "}";
  return out;
}

std::string FormatFindings(const std::vector<Finding>& findings, bool json) {
  std::string out;
  for (const Finding& f : findings) {
    out += json ? f.ToJson() : f.ToString();
    out += "\n";
  }
  return out;
}

bool Certified(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    if (f.Blocking()) return false;
  }
  return true;
}

}  // namespace sep
