// Shared finding record for static-analysis tooling.
//
// Both the SIMPL information-flow analyzer (src/ifa) and the SM-11 binary
// separability analyzer (src/sepcheck) report their results as `Finding`
// values, so `tools/sepcheck` and `bench/bench_ifa_vs_pos` can render them
// in one format (text or machine-readable JSON lines).
#ifndef SEP_ANALYSIS_FINDING_H_
#define SEP_ANALYSIS_FINDING_H_

#include <string>
#include <vector>

#include "src/base/types.h"

namespace sep {

// Severity of a finding. A discharged finding is still reported (the
// paper's point is that the syntactic flag is raised and then explicitly
// argued away), but it does not block certification.
enum class FindingSeverity {
  kError,       // blocks certification
  kDischarged,  // flagged syntactically, discharged by annotation
  kInfo,        // advisory only
};

struct Finding {
  std::string tool;   // "ifa" or "sepcheck"
  std::string unit;   // program / regime name the finding is about
  std::string kind;   // stable machine-readable kind, e.g. "explicit-flow",
                      // "out-of-regime-write", "shared-channel-object"
  int line = -1;      // 1-based source line, or -1 if unknown
  int address = -1;   // machine address (word), or -1 if not applicable
  std::string instruction;  // disassembled instruction or source statement
  std::string region;       // offending region / object, if any
  std::string message;      // human-readable description
  std::vector<Word> witness;  // CFG witness path from entry (addresses)
  FindingSeverity severity = FindingSeverity::kError;
  std::string discharge_reason;  // non-empty when severity == kDischarged
  // Separability condition this finding is an open/annotated obligation of
  // (a slug from src/sepcheck/obligations.h), or empty for findings outside
  // the six-condition ledger (e.g. annotation-audit findings).
  std::string condition;

  bool Blocking() const { return severity == FindingSeverity::kError; }

  // One-line human-readable rendering:
  //   [sepcheck] black @0023 "MOV R1, (R5)": out-of-regime-write ...
  std::string ToString() const;

  // Single-line JSON object (machine-readable findings output).
  std::string ToJson() const;
};

// Renders findings one per line. With `json` set, emits JSON lines.
std::string FormatFindings(const std::vector<Finding>& findings, bool json);

// True iff no finding blocks certification.
bool Certified(const std::vector<Finding>& findings);

}  // namespace sep

#endif  // SEP_ANALYSIS_FINDING_H_
