#include "src/distributed/recoverable.h"

#include <algorithm>
#include <memory>

namespace sep {

namespace {

// The lossy middle of the pipeline: survives wire faults AND endpoint
// crashes. One word per segment is what makes replayed segments
// byte-identical to their first incarnation (deterministic segmentation).
ReliableConfig TunnelConfig(ReliableConfig base, const TunnelRecoveryOptions& recovery) {
  base.max_segment_words = 1;
  base.resync = recovery.resync;
  base.ack_commit = recovery.ack_commit;  // consumed by the egress receiver
  return base;
}

// The local feed/deliver hops: perfect wires, but their in-flight words die
// with a crashing endpoint (Link::Reset), so they need retransmission too.
// No redundancy — nothing corrupts here, losses come only from crashes.
ReliableConfig LocalConfig(const TunnelRecoveryOptions& recovery, bool crashable_receiver) {
  ReliableConfig config;
  config.max_segment_words = 1;
  config.window_segments = 16;
  config.redundancy = 1;
  config.resync = recovery.resync;
  // The write-ahead rule binds exactly where the RECEIVER can crash: the
  // feed's receiver is the crashable ingress; the deliver hop's receiver is
  // the immortal relay-out, which may acknowledge immediately.
  config.ack_commit = crashable_receiver && recovery.ack_commit;
  return config;
}

}  // namespace

RecoverableTunnel SpliceRecoverableTunnel(Network& net, int from, int to,
                                          const ReliableConfig& config,
                                          const TunnelRecoveryOptions& recovery,
                                          std::size_t capacity, Tick latency,
                                          const std::string& name) {
  ReliableConfig mid = TunnelConfig(config, recovery);
  ReliableConfig feed = LocalConfig(recovery, /*crashable_receiver=*/true);
  const ReliableConfig deliver = LocalConfig(recovery, /*crashable_receiver=*/false);
  if (recovery.checkpoint_interval == 0 && recovery.ack_commit) {
    // Genesis-only mode: with no checkpoints there is no commit point, so
    // under the write-ahead rule NOTHING is ever acknowledged and nothing
    // ever leaves a sender window. Size the windows feeding the crashable
    // endpoints to hold the whole stream, or delivery would cap at one
    // window's worth of words.
    mid.window_segments = std::max<std::size_t>(mid.window_segments, 4096);
    feed.window_segments = std::max<std::size_t>(feed.window_segments, 4096);
  }

  RecoverableTunnel tunnel;
  tunnel.relay_in_node =
      net.AddNode(std::make_unique<ReliableIngress>(name + "-relay-in", feed));
  tunnel.ingress_node =
      net.AddNode(std::make_unique<RecoverableIngress>(name + "-ingress", feed, mid));
  tunnel.egress_node =
      net.AddNode(std::make_unique<RecoverableEgress>(name + "-egress", mid, deliver));
  tunnel.relay_out_node =
      net.AddNode(std::make_unique<ReliableEgress>(name + "-relay-out", deliver));

  // Connect order fixes port numbers; it must match the Step() port maps in
  // ReliableIngress/Egress and RecoverableIngress/Egress exactly.
  net.Connect(from, tunnel.relay_in_node, 512, 1, name + "-in");               // relay-in  in0
  net.Connect(tunnel.relay_in_node, tunnel.ingress_node, 512, 1, name + "-feed");      // ingress in0
  tunnel.data_link = net.Connect(tunnel.ingress_node, tunnel.egress_node, capacity, latency,
                                 name + "-data");                              // ingress out0, egress in0
  tunnel.ack_link = net.Connect(tunnel.egress_node, tunnel.ingress_node, capacity, latency,
                                name + "-ack");                                // egress out0, ingress in1
  net.Connect(tunnel.ingress_node, tunnel.relay_in_node, 512, 1, name + "-feed-ack");  // ingress out1, relay-in in1
  net.Connect(tunnel.egress_node, tunnel.relay_out_node, 512, 1, name + "-deliver");   // egress out1, relay-out in0
  net.Connect(tunnel.relay_out_node, tunnel.egress_node, 512, 1, name + "-deliver-ack");  // egress in1
  net.Connect(tunnel.relay_out_node, to, 512, 1, name + "-out");               // relay-out out1

  net.EnableRecovery(tunnel.ingress_node, recovery.checkpoint_interval);
  net.EnableRecovery(tunnel.egress_node, recovery.checkpoint_interval);
  return tunnel;
}

const RecoverableIngress& TunnelIngress(Network& net, const RecoverableTunnel& tunnel) {
  return static_cast<const RecoverableIngress&>(net.process(tunnel.ingress_node));
}

const RecoverableEgress& TunnelEgress(Network& net, const RecoverableTunnel& tunnel) {
  return static_cast<const RecoverableEgress&>(net.process(tunnel.egress_node));
}

}  // namespace sep
