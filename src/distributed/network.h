// The "ideal physically distributed system" of the paper's Section 2.
//
// Each trusted component runs on its own Node — a private machine — and
// communicates exclusively over explicitly-declared one-directional Links
// (the "dedicated communication lines"). There is no shared state of any
// kind between nodes: the ONLY way information moves is a declared link.
// Security analyses of component compositions can therefore enumerate the
// communication topology — which is the paper's central structural claim,
// and what experiment E1 checks for the SNFE.
//
// Execution is deterministic: Network::Step() first advances every link
// (delivering words whose latency has elapsed), then gives every node's
// process one quantum, in node order.
#ifndef SRC_DISTRIBUTED_NETWORK_H_
#define SRC_DISTRIBUTED_NETWORK_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/distributed/faults.h"

namespace sep {

class NodeContext;

// A component: stepped cooperatively, interacts with the world only
// through its node's ports.
class Process {
 public:
  virtual ~Process() = default;
  virtual std::string name() const = 0;
  // One quantum of execution. Implementations should do a bounded amount
  // of work (e.g. handle at most a few words/frames) per call.
  virtual void Step(NodeContext& ctx) = 0;
  // True once the process will never act again (lets runs terminate early).
  virtual bool Finished() const { return false; }

  // --- crash–restart survivability ------------------------------------------
  //
  // A process that can survive a node crash serializes its COMPLETE dynamic
  // state into words (src/distributed/recovery.h helpers) and rebuilds
  // itself from such an image. Checkpoint is non-const on purpose: taking a
  // checkpoint is a commit point (e.g. a reliable receiver releases ACKs
  // only for checkpointed data — the classic write-ahead rule), so the
  // process may need to advance commit bookkeeping as part of the snapshot.
  // The default "not recoverable" keeps every existing process unchanged.
  virtual bool Checkpoint(std::vector<Word>& out) {
    (void)out;
    return false;
  }
  virtual bool Restore(std::span<const Word> state) {
    (void)state;
    return false;
  }
  // Called after a COLD restart — a restore from the genesis (boot) image
  // because no periodic checkpoint existed. Sessions with peers are gone;
  // this is the hook to re-handshake them (reliable-channel resync).
  virtual void OnColdRestart() {}
};

// One-directional word pipe with capacity and delivery latency. A link may
// carry an installed FaultPlan, in which case each pushed word can be
// dropped, duplicated, corrupted, reordered or further delayed — the wire's
// misbehaviour, never the endpoints'.
class Link {
 public:
  Link(std::string name, std::size_t capacity, Tick latency)
      : name_(std::move(name)), capacity_(capacity), latency_(latency) {}

  const std::string& name() const { return name_; }

  // Accepts `w` into the wire unless the link is full. With faults
  // installed, acceptance does not imply delivery.
  bool Push(Word w, Tick now);

  std::optional<Word> Pop() {
    if (ready_.empty()) {
      return std::nullopt;
    }
    Word w = ready_.front();
    ready_.pop_front();
    return w;
  }

  std::size_t ReadyCount() const { return ready_.size(); }

  // Remaining acceptance capacity, clamped: fault-injected duplication may
  // transiently push occupancy past `capacity_` (wire noise does not respect
  // buffer accounting), and the subtraction must not underflow.
  std::size_t Space() const {
    const std::size_t used = in_flight_.size() + ready_.size();
    return used >= capacity_ ? 0 : capacity_ - used;
  }

  // Moves every in-flight word whose delivery tick has elapsed to the ready
  // queue. Scans the whole flight deque: fault-injected extra delay makes
  // deliver_at non-monotone, and a delayed word must not hold up words
  // behind it (that would turn "delay" into head-of-line blocking rather
  // than reordering). Without faults deliver_at is monotone and this is
  // exactly the old prefix pop.
  void Advance(Tick now);

  // Flush: deterministically discards every word in the wire (in flight AND
  // ready). Called when an endpoint crashes — words addressed to a dead port
  // have nobody listening, and words the dead incarnation pushed must not be
  // delivered to the reborn process as ghosts. The installed FaultPlan (the
  // wire's own misbehaviour) survives a reset; only traffic dies.
  void Reset(Tick now) {
    in_flight_.clear();
    ready_.clear();
    ++resets_;
    last_reset_ = now;
  }

  std::uint64_t resets() const { return resets_; }
  Tick last_reset() const { return last_reset_; }

  // --- fault injection -------------------------------------------------------

  void InstallFaults(FaultSpec spec, std::uint64_t seed) {
    faults_ = std::make_unique<FaultPlan>(spec, seed);
  }
  void ClearFaults() { faults_.reset(); }
  const FaultPlan* faults() const { return faults_.get(); }

  std::uint64_t total_pushed() const { return total_pushed_; }
  void CountPush() { ++total_pushed_; }

 private:
  struct InFlight {
    Word word;
    Tick deliver_at;
  };
  std::string name_;
  std::size_t capacity_;
  Tick latency_;
  std::deque<InFlight> in_flight_;
  std::deque<Word> ready_;
  std::uint64_t total_pushed_ = 0;
  std::uint64_t resets_ = 0;
  Tick last_reset_ = 0;
  std::unique_ptr<FaultPlan> faults_;
};

// The services a process sees during a step: its node's ports.
class NodeContext {
 public:
  NodeContext(std::vector<Link*> in, std::vector<Link*> out, Tick now)
      : in_(std::move(in)), out_(std::move(out)), now_(now) {}

  int in_port_count() const { return static_cast<int>(in_.size()); }
  int out_port_count() const { return static_cast<int>(out_.size()); }

  bool Send(int port, Word w) {
    Link* link = out_.at(static_cast<std::size_t>(port));
    if (!link->Push(w, now_)) {
      return false;
    }
    link->CountPush();
    return true;
  }

  std::optional<Word> Receive(int port) { return in_.at(static_cast<std::size_t>(port))->Pop(); }

  std::size_t Available(int port) const {
    return in_.at(static_cast<std::size_t>(port))->ReadyCount();
  }
  std::size_t SendSpace(int port) const {
    return out_.at(static_cast<std::size_t>(port))->Space();
  }

  Tick now() const { return now_; }

 private:
  std::vector<Link*> in_;
  std::vector<Link*> out_;
  Tick now_;
};

// The distributed system: nodes + links + deterministic stepping.
class Network {
 public:
  // Adds a node hosting `process`; returns the node id.
  int AddNode(std::unique_ptr<Process> process);

  // Declares a link from an out-port of `from` to an in-port of `to`;
  // port numbers are assigned in declaration order per node. Returns the
  // link id.
  int Connect(int from, int to, std::size_t capacity = 64, Tick latency = 1,
              const std::string& name = "");

  // One global step. Returns false once every process is Finished.
  bool Step();

  // Runs until everything is finished or `max_steps` elapse; returns steps.
  std::size_t Run(std::size_t max_steps);

  Tick now() const { return now_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  Process& process(int node) { return *nodes_[static_cast<std::size_t>(node)].process; }
  Link& link(int id) { return *links_[static_cast<std::size_t>(id)]; }
  int link_count() const { return static_cast<int>(links_.size()); }

  // Installs a seeded fault schedule on link `link_id`; every word pushed
  // onto that link from now on is subject to the plan. Deterministic: the
  // same (topology, workload, spec, seed) reproduces the fault history
  // bit-for-bit.
  void InjectFaults(int link_id, const FaultSpec& spec, std::uint64_t seed) {
    link(link_id).InstallFaults(spec, seed);
  }
  void ClearFaults(int link_id) { link(link_id).ClearFaults(); }

  // Observability: what the wire did to link `link_id`, or nullptr if no
  // plan is installed there.
  const FaultCounters* FaultCountersFor(int link_id) const {
    const FaultPlan* plan = links_[static_cast<std::size_t>(link_id)]->faults();
    return plan ? &plan->counters() : nullptr;
  }

  // The declared communication topology: (from, to) node pairs per link —
  // the object experiment E1 audits.
  struct Edge {
    int from;
    int to;
    std::string name;
  };
  const std::vector<Edge>& edges() const { return edges_; }

  // Transitive reachability over declared links (does information from
  // `from` have ANY declared path to `to`?).
  bool Reachable(int from, int to) const;

  // --- crash–restart survivability ------------------------------------------
  //
  // A node enrolled in recovery takes a genesis image immediately (the boot
  // state) and, if `checkpoint_interval` is nonzero, a fresh checkpoint every
  // that many executed quanta. When the node crashes — via an installed
  // NodeFaultPlan, a ScheduleCrash entry, or CrashNow — every incident link
  // is Reset (no ghosts), the node goes dark for its restart delay, and on
  // restart it is rebuilt from the newest checkpoint (warm) or the genesis
  // image (cold; OnColdRestart fires so sessions can re-handshake).

  // Everything observable about one node's health.
  struct NodeStatus {
    bool up = true;
    Tick stalled_until = 0;      // > now: frozen with state intact
    Tick down_until = 0;         // > now: dead, waiting to restart
    Tick crashed_at = 0;         // tick of the most recent crash
    Tick last_checkpoint_at = 0; // tick of the most recent checkpoint
    std::uint64_t crashes = 0;
    std::uint64_t restores = 0;     // warm restarts (from a checkpoint)
    std::uint64_t cold_starts = 0;  // restarts from the genesis image
    std::uint64_t checkpoints = 0;
    std::uint64_t stalls = 0;
    Tick last_recovery_ticks = 0;  // work lost: crashed_at - last checkpoint
  };

  // One completed crash→restart cycle, in order of occurrence.
  struct NodeRecoveryEvent {
    int node = 0;
    Tick crashed_at = 0;
    Tick restarted_at = 0;
    Tick lost_ticks = 0;  // crashed_at - checkpoint the node restarted from
    bool cold = false;    // true when no checkpoint existed (genesis restore)
  };

  // Enrols `node` in checkpoint recovery. Takes the genesis image now;
  // `checkpoint_interval` = 0 means genesis-only (every restart is cold).
  // Returns false if the process does not implement Checkpoint.
  bool EnableRecovery(int node, Tick checkpoint_interval);

  // Installs a seeded per-quantum crash/stall schedule on `node`.
  void InjectNodeFaults(int node, const NodeFaultSpec& spec, std::uint64_t seed);

  // Deterministic scripted crash: the node dies at the start of its quantum
  // on the first tick >= `at`, then restarts after `restart_delay` ticks.
  void ScheduleCrash(int node, Tick at, Tick restart_delay);

  // Immediate crash (testing hook).
  void CrashNow(int node, Tick restart_delay);

  bool NodeUp(int node) const { return nodes_[static_cast<std::size_t>(node)].status.up; }
  const NodeStatus& node_status(int node) const {
    return nodes_[static_cast<std::size_t>(node)].status;
  }
  const std::vector<NodeRecoveryEvent>& recovery_log() const { return recovery_log_; }
  const NodeFaultCounters* NodeFaultCountersFor(int node) const {
    const auto& plan = nodes_[static_cast<std::size_t>(node)].fault_plan;
    return plan ? &plan->counters() : nullptr;
  }

 private:
  struct Node {
    std::unique_ptr<Process> process;
    std::vector<int> in_links;
    std::vector<int> out_links;
    // Recovery state (engaged only via EnableRecovery / InjectNodeFaults).
    NodeStatus status;
    bool recoverable = false;
    Tick checkpoint_interval = 0;
    std::uint64_t executed_quanta = 0;
    std::vector<Word> genesis;
    std::optional<std::vector<Word>> checkpoint;
    std::unique_ptr<NodeFaultPlan> fault_plan;
    struct ScriptedCrash {
      Tick at;
      Tick restart_delay;
    };
    std::vector<ScriptedCrash> scripted_crashes;
  };

  void CrashNode(Node& node, int index, Tick restart_delay);
  void RestartNode(Node& node, int index);
  void TakeCheckpoint(Node& node);

  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Edge> edges_;
  std::vector<NodeRecoveryEvent> recovery_log_;
  Tick now_ = 0;
};

}  // namespace sep

#endif  // SRC_DISTRIBUTED_NETWORK_H_
