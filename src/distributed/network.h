// The "ideal physically distributed system" of the paper's Section 2.
//
// Each trusted component runs on its own Node — a private machine — and
// communicates exclusively over explicitly-declared one-directional Links
// (the "dedicated communication lines"). There is no shared state of any
// kind between nodes: the ONLY way information moves is a declared link.
// Security analyses of component compositions can therefore enumerate the
// communication topology — which is the paper's central structural claim,
// and what experiment E1 checks for the SNFE.
//
// Execution is deterministic: Network::Step() first advances every link
// (delivering words whose latency has elapsed), then gives every node's
// process one quantum, in node order.
#ifndef SRC_DISTRIBUTED_NETWORK_H_
#define SRC_DISTRIBUTED_NETWORK_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"

namespace sep {

class NodeContext;

// A component: stepped cooperatively, interacts with the world only
// through its node's ports.
class Process {
 public:
  virtual ~Process() = default;
  virtual std::string name() const = 0;
  // One quantum of execution. Implementations should do a bounded amount
  // of work (e.g. handle at most a few words/frames) per call.
  virtual void Step(NodeContext& ctx) = 0;
  // True once the process will never act again (lets runs terminate early).
  virtual bool Finished() const { return false; }
};

// One-directional word pipe with capacity and delivery latency.
class Link {
 public:
  Link(std::string name, std::size_t capacity, Tick latency)
      : name_(std::move(name)), capacity_(capacity), latency_(latency) {}

  const std::string& name() const { return name_; }

  bool Push(Word w, Tick now) {
    if (in_flight_.size() + ready_.size() >= capacity_) {
      return false;
    }
    in_flight_.push_back({w, now + latency_});
    return true;
  }

  std::optional<Word> Pop() {
    if (ready_.empty()) {
      return std::nullopt;
    }
    Word w = ready_.front();
    ready_.pop_front();
    return w;
  }

  std::size_t ReadyCount() const { return ready_.size(); }
  std::size_t Space() const { return capacity_ - in_flight_.size() - ready_.size(); }

  void Advance(Tick now) {
    while (!in_flight_.empty() && in_flight_.front().deliver_at <= now) {
      ready_.push_back(in_flight_.front().word);
      in_flight_.pop_front();
    }
  }

  std::uint64_t total_pushed() const { return total_pushed_; }
  void CountPush() { ++total_pushed_; }

 private:
  struct InFlight {
    Word word;
    Tick deliver_at;
  };
  std::string name_;
  std::size_t capacity_;
  Tick latency_;
  std::deque<InFlight> in_flight_;
  std::deque<Word> ready_;
  std::uint64_t total_pushed_ = 0;
};

// The services a process sees during a step: its node's ports.
class NodeContext {
 public:
  NodeContext(std::vector<Link*> in, std::vector<Link*> out, Tick now)
      : in_(std::move(in)), out_(std::move(out)), now_(now) {}

  int in_port_count() const { return static_cast<int>(in_.size()); }
  int out_port_count() const { return static_cast<int>(out_.size()); }

  bool Send(int port, Word w) {
    Link* link = out_.at(static_cast<std::size_t>(port));
    if (!link->Push(w, now_)) {
      return false;
    }
    link->CountPush();
    return true;
  }

  std::optional<Word> Receive(int port) { return in_.at(static_cast<std::size_t>(port))->Pop(); }

  std::size_t Available(int port) const {
    return in_.at(static_cast<std::size_t>(port))->ReadyCount();
  }
  std::size_t SendSpace(int port) const {
    return out_.at(static_cast<std::size_t>(port))->Space();
  }

  Tick now() const { return now_; }

 private:
  std::vector<Link*> in_;
  std::vector<Link*> out_;
  Tick now_;
};

// The distributed system: nodes + links + deterministic stepping.
class Network {
 public:
  // Adds a node hosting `process`; returns the node id.
  int AddNode(std::unique_ptr<Process> process);

  // Declares a link from an out-port of `from` to an in-port of `to`;
  // port numbers are assigned in declaration order per node. Returns the
  // link id.
  int Connect(int from, int to, std::size_t capacity = 64, Tick latency = 1,
              const std::string& name = "");

  // One global step. Returns false once every process is Finished.
  bool Step();

  // Runs until everything is finished or `max_steps` elapse; returns steps.
  std::size_t Run(std::size_t max_steps);

  Tick now() const { return now_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  Process& process(int node) { return *nodes_[static_cast<std::size_t>(node)].process; }
  Link& link(int id) { return *links_[static_cast<std::size_t>(id)]; }
  int link_count() const { return static_cast<int>(links_.size()); }

  // The declared communication topology: (from, to) node pairs per link —
  // the object experiment E1 audits.
  struct Edge {
    int from;
    int to;
    std::string name;
  };
  const std::vector<Edge>& edges() const { return edges_; }

  // Transitive reachability over declared links (does information from
  // `from` have ANY declared path to `to`?).
  bool Reachable(int from, int to) const;

 private:
  struct Node {
    std::unique_ptr<Process> process;
    std::vector<int> in_links;
    std::vector<int> out_links;
  };
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Edge> edges_;
  Tick now_ = 0;
};

}  // namespace sep

#endif  // SRC_DISTRIBUTED_NETWORK_H_
