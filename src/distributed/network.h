// The "ideal physically distributed system" of the paper's Section 2.
//
// Each trusted component runs on its own Node — a private machine — and
// communicates exclusively over explicitly-declared one-directional Links
// (the "dedicated communication lines"). There is no shared state of any
// kind between nodes: the ONLY way information moves is a declared link.
// Security analyses of component compositions can therefore enumerate the
// communication topology — which is the paper's central structural claim,
// and what experiment E1 checks for the SNFE.
//
// Execution is deterministic: Network::Step() first advances every link
// (delivering words whose latency has elapsed), then gives every node's
// process one quantum, in node order.
#ifndef SRC_DISTRIBUTED_NETWORK_H_
#define SRC_DISTRIBUTED_NETWORK_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/distributed/faults.h"

namespace sep {

class NodeContext;

// A component: stepped cooperatively, interacts with the world only
// through its node's ports.
class Process {
 public:
  virtual ~Process() = default;
  virtual std::string name() const = 0;
  // One quantum of execution. Implementations should do a bounded amount
  // of work (e.g. handle at most a few words/frames) per call.
  virtual void Step(NodeContext& ctx) = 0;
  // True once the process will never act again (lets runs terminate early).
  virtual bool Finished() const { return false; }
};

// One-directional word pipe with capacity and delivery latency. A link may
// carry an installed FaultPlan, in which case each pushed word can be
// dropped, duplicated, corrupted, reordered or further delayed — the wire's
// misbehaviour, never the endpoints'.
class Link {
 public:
  Link(std::string name, std::size_t capacity, Tick latency)
      : name_(std::move(name)), capacity_(capacity), latency_(latency) {}

  const std::string& name() const { return name_; }

  // Accepts `w` into the wire unless the link is full. With faults
  // installed, acceptance does not imply delivery.
  bool Push(Word w, Tick now);

  std::optional<Word> Pop() {
    if (ready_.empty()) {
      return std::nullopt;
    }
    Word w = ready_.front();
    ready_.pop_front();
    return w;
  }

  std::size_t ReadyCount() const { return ready_.size(); }

  // Remaining acceptance capacity, clamped: fault-injected duplication may
  // transiently push occupancy past `capacity_` (wire noise does not respect
  // buffer accounting), and the subtraction must not underflow.
  std::size_t Space() const {
    const std::size_t used = in_flight_.size() + ready_.size();
    return used >= capacity_ ? 0 : capacity_ - used;
  }

  // Moves every in-flight word whose delivery tick has elapsed to the ready
  // queue. Scans the whole flight deque: fault-injected extra delay makes
  // deliver_at non-monotone, and a delayed word must not hold up words
  // behind it (that would turn "delay" into head-of-line blocking rather
  // than reordering). Without faults deliver_at is monotone and this is
  // exactly the old prefix pop.
  void Advance(Tick now);

  // --- fault injection -------------------------------------------------------

  void InstallFaults(FaultSpec spec, std::uint64_t seed) {
    faults_ = std::make_unique<FaultPlan>(spec, seed);
  }
  void ClearFaults() { faults_.reset(); }
  const FaultPlan* faults() const { return faults_.get(); }

  std::uint64_t total_pushed() const { return total_pushed_; }
  void CountPush() { ++total_pushed_; }

 private:
  struct InFlight {
    Word word;
    Tick deliver_at;
  };
  std::string name_;
  std::size_t capacity_;
  Tick latency_;
  std::deque<InFlight> in_flight_;
  std::deque<Word> ready_;
  std::uint64_t total_pushed_ = 0;
  std::unique_ptr<FaultPlan> faults_;
};

// The services a process sees during a step: its node's ports.
class NodeContext {
 public:
  NodeContext(std::vector<Link*> in, std::vector<Link*> out, Tick now)
      : in_(std::move(in)), out_(std::move(out)), now_(now) {}

  int in_port_count() const { return static_cast<int>(in_.size()); }
  int out_port_count() const { return static_cast<int>(out_.size()); }

  bool Send(int port, Word w) {
    Link* link = out_.at(static_cast<std::size_t>(port));
    if (!link->Push(w, now_)) {
      return false;
    }
    link->CountPush();
    return true;
  }

  std::optional<Word> Receive(int port) { return in_.at(static_cast<std::size_t>(port))->Pop(); }

  std::size_t Available(int port) const {
    return in_.at(static_cast<std::size_t>(port))->ReadyCount();
  }
  std::size_t SendSpace(int port) const {
    return out_.at(static_cast<std::size_t>(port))->Space();
  }

  Tick now() const { return now_; }

 private:
  std::vector<Link*> in_;
  std::vector<Link*> out_;
  Tick now_;
};

// The distributed system: nodes + links + deterministic stepping.
class Network {
 public:
  // Adds a node hosting `process`; returns the node id.
  int AddNode(std::unique_ptr<Process> process);

  // Declares a link from an out-port of `from` to an in-port of `to`;
  // port numbers are assigned in declaration order per node. Returns the
  // link id.
  int Connect(int from, int to, std::size_t capacity = 64, Tick latency = 1,
              const std::string& name = "");

  // One global step. Returns false once every process is Finished.
  bool Step();

  // Runs until everything is finished or `max_steps` elapse; returns steps.
  std::size_t Run(std::size_t max_steps);

  Tick now() const { return now_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  Process& process(int node) { return *nodes_[static_cast<std::size_t>(node)].process; }
  Link& link(int id) { return *links_[static_cast<std::size_t>(id)]; }
  int link_count() const { return static_cast<int>(links_.size()); }

  // Installs a seeded fault schedule on link `link_id`; every word pushed
  // onto that link from now on is subject to the plan. Deterministic: the
  // same (topology, workload, spec, seed) reproduces the fault history
  // bit-for-bit.
  void InjectFaults(int link_id, const FaultSpec& spec, std::uint64_t seed) {
    link(link_id).InstallFaults(spec, seed);
  }
  void ClearFaults(int link_id) { link(link_id).ClearFaults(); }

  // Observability: what the wire did to link `link_id`, or nullptr if no
  // plan is installed there.
  const FaultCounters* FaultCountersFor(int link_id) const {
    const FaultPlan* plan = links_[static_cast<std::size_t>(link_id)]->faults();
    return plan ? &plan->counters() : nullptr;
  }

  // The declared communication topology: (from, to) node pairs per link —
  // the object experiment E1 audits.
  struct Edge {
    int from;
    int to;
    std::string name;
  };
  const std::vector<Edge>& edges() const { return edges_; }

  // Transitive reachability over declared links (does information from
  // `from` have ANY declared path to `to`?).
  bool Reachable(int from, int to) const;

 private:
  struct Node {
    std::unique_ptr<Process> process;
    std::vector<int> in_links;
    std::vector<int> out_links;
  };
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Edge> edges_;
  Tick now_ = 0;
};

}  // namespace sep

#endif  // SRC_DISTRIBUTED_NETWORK_H_
