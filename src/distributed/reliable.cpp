#include "src/distributed/reliable.h"

#include <algorithm>

#include "src/base/hash.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sep {

Word RelChecksum(const Word* data, std::size_t count) {
  Hasher hasher;
  for (std::size_t i = 0; i < count; ++i) {
    hasher.Mix(data[i]);
  }
  const std::uint64_t digest = hasher.digest();
  return static_cast<Word>((digest ^ (digest >> 16) ^ (digest >> 32) ^ (digest >> 48)) & 0xFFFF);
}

namespace {

Word ChecksumDeque(const std::deque<Word>& buffer, std::size_t count) {
  // The scan window is small (<= header + max segment); copy for contiguity.
  std::vector<Word> span(buffer.begin(),
                         buffer.begin() + static_cast<std::ptrdiff_t>(count));
  return RelChecksum(span.data(), span.size());
}

}  // namespace

// --- ReliableSender ----------------------------------------------------------

ReliableSender::ReliableSender(ReliableConfig config)
    : config_(config), rto_(config.initial_rto) {}

void ReliableSender::SerializeSegment(const Segment& segment) {
  std::vector<Word> frame;
  frame.reserve(segment.payload.size() + 4);
  frame.push_back(kRelData);
  frame.push_back(segment.seq);
  frame.push_back(static_cast<Word>(segment.payload.size()));
  frame.insert(frame.end(), segment.payload.begin(), segment.payload.end());
  frame.push_back(RelChecksum(frame.data(), frame.size()));
  for (int copy = 0; copy < std::max(1, config_.redundancy); ++copy) {
    tx_queue_.insert(tx_queue_.end(), frame.begin(), frame.end());
  }
}

void ReliableSender::HandleAck(Word cumulative) {
  bool progress = false;
  while (!window_.empty() && !SeqBefore(cumulative, window_.front().seq)) {
    window_.pop_front();
    progress = true;
  }
  if (progress) {
    retries_ = 0;
    rto_ = config_.initial_rto;
    deadline_ = 0;  // re-armed below if segments remain in flight
    dup_acks_ = 0;
    last_cum_ = cumulative;
  } else if (!window_.empty() && cumulative == last_cum_) {
    // The receiver saw SOMETHING valid but still waits for window front:
    // our in-flight copy of it was lost or mangled.
    ++dup_acks_;
  } else {
    last_cum_ = cumulative;
  }
}

void ReliableSender::RetransmitWindow() {
  tx_queue_.clear();  // retransmission supersedes any stale queued words
  for (const Segment& segment : window_) {
    SerializeSegment(segment);
    ++stats_.retransmits;
  }
  if (obs::Enabled() && !window_.empty()) {
    static obs::Counter& retransmits = obs::Metrics().GetCounter("net.retransmits");
    retransmits.Add(window_.size());
  }
}

void ReliableSender::QueueSyn(Word nonce, Word first_seq) {
  Word frame[4] = {kRelSyn, nonce, first_seq, 0};
  frame[3] = RelChecksum(frame, 3);
  for (int copy = 0; copy < std::max(1, config_.redundancy); ++copy) {
    tx_queue_.insert(tx_queue_.end(), frame, frame + 4);
  }
  ++stats_.syns_sent;
}

void ReliableSender::HandleSynReq(Word nonce) {
  if (last_synreq_nonce_.has_value() && *last_synreq_nonce_ == nonce) {
    return;  // redundant copy of a request already honoured
  }
  last_synreq_nonce_ = nonce;
  ++stats_.synreqs_handled;
  if (dead_) {
    // The peer demonstrably restarted: the line is alive again.
    dead_ = false;
    retries_ = 0;
    rto_ = config_.initial_rto;
    ++stats_.revivals;
  }
  // Echo the nonce into a disjoint space so the answering SYN cannot collide
  // with a nonce this sender used for its own cold restarts.
  pending_syn_ = static_cast<Word>(nonce | 0x8000);
  kick_ = true;
  dup_acks_ = 0;
  deadline_ = 0;
}

void ReliableSender::StartResync(Word nonce) {
  // A restart is a fresh incarnation of the line: forget the give-up verdict
  // and every timer, and replay the whole window under the new session.
  dead_ = false;
  retries_ = 0;
  rto_ = config_.initial_rto;
  deadline_ = 0;
  dup_acks_ = 0;
  tx_queue_.clear();
  kick_ = true;
  if (config_.resync) {
    pending_syn_ = nonce;
  }
}

void ReliableSender::Checkpoint(CkptWriter& w) const {
  w.Words(outbox_);
  w.U32(static_cast<std::uint32_t>(window_.size()));
  for (const Segment& segment : window_) {
    w.U16(segment.seq);
    w.Words(segment.payload);
  }
  w.U16(next_seq_);
  w.U16(last_cum_);
}

void ReliableSender::Restore(CkptReader& r) {
  r.Words(outbox_);
  const std::uint32_t count = r.U32();
  window_.clear();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    Segment segment;
    segment.seq = r.U16();
    r.Words(segment.payload);
    segment.queued = true;  // its wire words died with the old incarnation
    window_.push_back(std::move(segment));
  }
  next_seq_ = r.U16();
  last_cum_ = r.U16();
  tx_queue_.clear();
  ack_rx_.clear();
  rto_ = config_.initial_rto;
  deadline_ = 0;
  retries_ = 0;
  dup_acks_ = 0;
  dead_ = false;
  kick_ = true;  // retransmit the restored window as soon as possible
}

void ReliableSender::Pump(NodeContext& ctx, int data_out_port, int ack_in_port) {
  // 1. Ingest cumulative ACKs (the reverse line is lossy too: frames can be
  // corrupt or missing; the checksum rejects mangled ones and retransmission
  // covers lost ones).
  while (std::optional<Word> w = ctx.Receive(ack_in_port)) {
    ack_rx_.push_back(*w);
  }
  while (!ack_rx_.empty()) {
    if (ack_rx_.front() == kRelSynReq) {
      // Peer restart announcement: [kRelSynReq, nonce, checksum].
      if (ack_rx_.size() < 3) {
        break;
      }
      if (ChecksumDeque(ack_rx_, 2) != ack_rx_[2]) {
        ack_rx_.pop_front();
        ++stats_.acks_rejected;
        continue;
      }
      HandleSynReq(ack_rx_[1]);
      ack_rx_.erase(ack_rx_.begin(), ack_rx_.begin() + 3);
      continue;
    }
    if (ack_rx_.front() != kRelAck) {
      ack_rx_.pop_front();
      continue;
    }
    if (ack_rx_.size() < 3) {
      break;
    }
    if (ChecksumDeque(ack_rx_, 2) != ack_rx_[2]) {
      ack_rx_.pop_front();
      ++stats_.acks_rejected;
      continue;
    }
    HandleAck(ack_rx_[1]);
    ++stats_.acks_received;
    ack_rx_.erase(ack_rx_.begin(), ack_rx_.begin() + 3);
  }

  if (dead_) {
    return;  // the line was declared dead; nothing more will be sent
  }

  // 1b. Session restart: announce the new session (SYN first on the wire),
  // then replay the whole window under it. Waits for the tx queue to drain
  // so an in-progress frame is never truncated.
  if ((pending_syn_.has_value() || kick_) && tx_queue_.empty()) {
    if (pending_syn_.has_value()) {
      QueueSyn(*pending_syn_, window_.empty() ? next_seq_ : window_.front().seq);
      pending_syn_.reset();
    }
    if (kick_) {
      kick_ = false;
      for (const Segment& segment : window_) {
        SerializeSegment(segment);
        ++stats_.retransmits;
      }
      if (!window_.empty()) {
        deadline_ = ctx.now() + rto_;
      }
    }
  }

  // 2. Pack queued payload words into new segments while the window allows.
  while (!outbox_.empty() && window_.size() < config_.window_segments) {
    Segment segment;
    segment.seq = next_seq_++;
    while (!outbox_.empty() && segment.payload.size() < config_.max_segment_words) {
      segment.payload.push_back(outbox_.front());
      outbox_.pop_front();
    }
    window_.push_back(std::move(segment));
  }

  // 3. First transmission of any segment not yet serialized.
  for (Segment& segment : window_) {
    if (!segment.queued) {
      SerializeSegment(segment);
      segment.queued = true;
      ++stats_.segments_sent;
    }
  }
  if (!window_.empty() && deadline_ == 0) {
    deadline_ = ctx.now() + rto_;
  }

  // 4. Fast retransmit: duplicate cumulative ACKs prove the line is alive
  // and the window front is missing; resend at round-trip cadence instead
  // of waiting out the timer. Only when the previous round has fully left
  // our queue, so a frame is never truncated mid-flush. The threshold must
  // exceed redundancy-1: every ACK group arrives as `redundancy` copies,
  // and the echo copies of a PROGRESS ack must not look like losses.
  if (dup_acks_ >= std::max(2, config_.redundancy) && !window_.empty() &&
      tx_queue_.empty()) {
    dup_acks_ = 0;
    ++stats_.fast_retransmits;
    if (obs::Enabled()) {
      static obs::Counter& fast = obs::Metrics().GetCounter("net.fast_retransmits");
      obs::Emit(obs::Category::kNet, obs::Code::kNetRetransmit, obs::kColourKernel, ctx.now(),
                static_cast<Word>(window_.size()), window_.front().seq);
      fast.Add();
    }
    RetransmitWindow();
    deadline_ = ctx.now() + rto_;
  }

  // 5. Retransmission timer: on expiry, back off and go-back-N.
  if (!window_.empty() && deadline_ != 0 && ctx.now() >= deadline_) {
    ++stats_.timeouts;
    ++retries_;
    if (obs::Enabled()) {
      static obs::Counter& timeouts = obs::Metrics().GetCounter("net.timeouts");
      obs::Emit(obs::Category::kNet, obs::Code::kNetTimeout, obs::kColourKernel, ctx.now(),
                static_cast<Word>(retries_), window_.front().seq);
      timeouts.Add();
    }
    if (config_.max_retries > 0 && retries_ > config_.max_retries) {
      dead_ = true;
      stats_.gave_up = 1;
      if (obs::Enabled()) {
        static obs::Counter& gave_up = obs::Metrics().GetCounter("net.gave_up");
        gave_up.Add();
      }
      tx_queue_.clear();
      return;
    }
    rto_ = std::min<Tick>(rto_ * 2, config_.max_rto);
    if (tx_queue_.empty()) {  // never truncate a partially flushed round
      RetransmitWindow();
    }
    deadline_ = ctx.now() + rto_;
  }

  // 6. Flush as many wire words as the link accepts.
  while (!tx_queue_.empty() && ctx.Send(data_out_port, tx_queue_.front())) {
    tx_queue_.pop_front();
  }
}

// --- ReliableReceiver --------------------------------------------------------

ReliableReceiver::ReliableReceiver(ReliableConfig config) : config_(config) {}

void ReliableReceiver::ParseFrames() {
  while (!rx_buffer_.empty()) {
    if (rx_buffer_.front() == kRelSyn) {
      // Session announcement: [kRelSyn, nonce, first_seq, checksum]. The
      // peer's stream now begins at first_seq; sequence numbers before it
      // belong to a session nobody remembers. Only ever jump FORWARD —
      // a replayed base behind expected_ is the exactly-once path (the
      // peer re-sends, we discard duplicates), and moving backward would
      // re-deliver words the application already consumed.
      if (rx_buffer_.size() < 4) {
        return;
      }
      if (ChecksumDeque(rx_buffer_, 3) != rx_buffer_[3]) {
        rx_buffer_.pop_front();
        ++stats_.corrupt_discarded;
        continue;
      }
      const Word nonce = rx_buffer_[1];
      const Word first = rx_buffer_[2];
      if (config_.resync && (!last_syn_nonce_.has_value() || *last_syn_nonce_ != nonce)) {
        last_syn_nonce_ = nonce;
        if (SeqBefore(expected_, first)) {
          expected_ = first;
          ++stats_.session_resyncs;
        }
        ack_pending_ = true;  // answer with our cumulative to align the peer
      }
      rx_buffer_.erase(rx_buffer_.begin(), rx_buffer_.begin() + 4);
      continue;
    }
    if (rx_buffer_.front() != kRelData) {
      rx_buffer_.pop_front();
      ++stats_.resyncs;
      continue;
    }
    if (rx_buffer_.size() < 3) {
      return;  // header incomplete; wait for more words
    }
    const Word count = rx_buffer_[2];
    if (static_cast<std::size_t>(count) > config_.max_segment_words) {
      // A corrupt length this large would make us wait forever; resync now.
      rx_buffer_.pop_front();
      ++stats_.corrupt_discarded;
      continue;
    }
    const std::size_t need = 4 + static_cast<std::size_t>(count);
    if (rx_buffer_.size() < need) {
      return;  // frame incomplete
    }
    if (ChecksumDeque(rx_buffer_, need - 1) != rx_buffer_[need - 1]) {
      rx_buffer_.pop_front();
      ++stats_.corrupt_discarded;
      continue;
    }

    const Word seq = rx_buffer_[1];
    if (seq == expected_) {
      for (std::size_t i = 0; i < count; ++i) {
        delivered_.push_back(rx_buffer_[3 + i]);
      }
      ++expected_;
      ++stats_.accepted;
    } else if (SeqBefore(seq, expected_)) {
      ++stats_.duplicates_discarded;  // retransmission of delivered data
    } else {
      // Go-back-N: a gap ahead of us; discard and let the sender replay.
      ++stats_.out_of_order_discarded;
    }
    ack_pending_ = true;  // every valid frame triggers a (re-)ACK
    rx_buffer_.erase(rx_buffer_.begin(), rx_buffer_.begin() + static_cast<std::ptrdiff_t>(need));
  }
}

void ReliableReceiver::Pump(NodeContext& ctx, int data_in_port, int ack_out_port) {
  while (std::optional<Word> w = ctx.Receive(data_in_port)) {
    rx_buffer_.push_back(*w);
  }
  ParseFrames();

  // A restart announcement outranks ACK traffic on the reverse line.
  if (pending_synreq_.has_value() && ack_tx_.empty()) {
    Word frame[3] = {kRelSynReq, *pending_synreq_, 0};
    frame[2] = RelChecksum(frame, 2);
    for (int copy = 0; copy < std::max(1, config_.redundancy); ++copy) {
      ack_tx_.insert(ack_tx_.end(), frame, frame + 3);
    }
    pending_synreq_.reset();
    ++stats_.synreqs_sent;
  }

  if (ack_pending_ && ack_tx_.empty()) {
    // With ack_commit, the cumulative value lags expected_: only data the
    // newest checkpoint covers is acknowledged (AckValue), so a rollback
    // never forgets anything the peer has stopped guarding.
    const Word cumulative = AckValue();
    Word frame[3] = {kRelAck, cumulative, 0};
    frame[2] = RelChecksum(frame, 2);
    for (int copy = 0; copy < std::max(1, config_.redundancy); ++copy) {
      ack_tx_.insert(ack_tx_.end(), frame, frame + 3);
    }
    ack_pending_ = false;
    ++stats_.acks_sent;
  }
  while (!ack_tx_.empty() && ctx.Send(ack_out_port, ack_tx_.front())) {
    ack_tx_.pop_front();
  }
}

void ReliableReceiver::Checkpoint(CkptWriter& w) {
  if (config_.ack_commit) {
    // The commit point: everything received in order up to this instant is
    // now durable and therefore (and only therefore) acknowledgeable. Only
    // an ADVANCING commit is announced — re-ACKing an unchanged cumulative
    // at every checkpoint would read as duplicate-ACK loss signals to the
    // peer and keep resetting its retransmission machinery.
    const Word newly_committed = static_cast<Word>(expected_ - 1);
    if (newly_committed != committed_) {
      committed_ = newly_committed;
      ack_pending_ = true;
    }
  }
  w.Words(delivered_);
  w.U16(expected_);
  w.U16(committed_);
}

void ReliableReceiver::Restore(CkptReader& r) {
  r.Words(delivered_);
  expected_ = r.U16();
  committed_ = r.U16();
  rx_buffer_.clear();  // raw wire words died with the old incarnation
  ack_tx_.clear();
  ack_pending_ = true;  // re-announce our cumulative to the peer
}

void ReliableReceiver::StartResync(Word nonce) {
  rx_buffer_.clear();
  ack_tx_.clear();
  if (config_.resync) {
    pending_synreq_ = nonce;
  }
}

// --- tunnel wiring -----------------------------------------------------------

ReliableTunnel SpliceReliableTunnel(Network& net, int from, int to,
                                    const ReliableConfig& config, std::size_t capacity,
                                    Tick latency, const std::string& name) {
  ReliableTunnel tunnel;
  tunnel.ingress_node = net.AddNode(std::make_unique<ReliableIngress>(name + "-ingress", config));
  tunnel.egress_node = net.AddNode(std::make_unique<ReliableEgress>(name + "-egress", config));
  net.Connect(from, tunnel.ingress_node, 512, 1, name + "-feed");
  tunnel.data_link =
      net.Connect(tunnel.ingress_node, tunnel.egress_node, capacity, latency, name + "-data");
  tunnel.ack_link =
      net.Connect(tunnel.egress_node, tunnel.ingress_node, capacity, latency, name + "-ack");
  net.Connect(tunnel.egress_node, to, 512, 1, name + "-deliver");
  return tunnel;
}

const ReliableSenderStats& TunnelSenderStats(Network& net, const ReliableTunnel& tunnel) {
  return static_cast<ReliableIngress&>(net.process(tunnel.ingress_node)).sender().stats();
}

const ReliableReceiverStats& TunnelReceiverStats(Network& net, const ReliableTunnel& tunnel) {
  return static_cast<ReliableEgress&>(net.process(tunnel.egress_node)).receiver().stats();
}

}  // namespace sep
