// Checkpoint serialization for crash–restart survivable processes.
//
// A Process that wants to survive a Network-level crash (see
// Network::EnableRecovery) serializes its COMPLETE dynamic state into a flat
// word vector — the same currency Machine::SnapshotFullInto uses — so a
// checkpoint is just words, storable anywhere and diffable in tests. These
// two helpers keep the encodings uniform: every multi-word quantity is
// little-endian in 16-bit limbs, every container is length-prefixed, and a
// malformed image turns the reader sticky-invalid instead of running off the
// end (the restart path must reject a truncated checkpoint, not act on it).
//
// docs/RESILIENCE.md §6 documents the checkpoint format contract.
#ifndef SRC_DISTRIBUTED_RECOVERY_H_
#define SRC_DISTRIBUTED_RECOVERY_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "src/base/types.h"

namespace sep {

// Appends fields to a checkpoint image.
class CkptWriter {
 public:
  explicit CkptWriter(std::vector<Word>& out) : out_(out) {}

  void U16(Word v) { out_.push_back(v); }
  void U32(std::uint32_t v) {
    out_.push_back(static_cast<Word>(v & 0xFFFF));
    out_.push_back(static_cast<Word>(v >> 16));
  }
  void U64(std::uint64_t v) {
    U32(static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
    U32(static_cast<std::uint32_t>(v >> 32));
  }
  void Flag(bool v) { out_.push_back(v ? 1 : 0); }

  template <typename Container>  // vector<Word> or deque<Word>
  void Words(const Container& c) {
    U32(static_cast<std::uint32_t>(c.size()));
    for (Word w : c) {
      out_.push_back(w);
    }
  }

  void MaybeWord(const std::optional<Word>& v) {
    Flag(v.has_value());
    U16(v.value_or(0));
  }

 private:
  std::vector<Word>& out_;
};

// Reads fields back. Sticky-invalid on overrun: every accessor returns 0
// once `ok()` is false, and a well-formed restore ends with ok() && AtEnd().
class CkptReader {
 public:
  explicit CkptReader(std::span<const Word> data) : data_(data) {}

  Word U16() { return Take(); }
  std::uint32_t U32() {
    const std::uint32_t lo = Take();
    const std::uint32_t hi = Take();
    return lo | (hi << 16);
  }
  std::uint64_t U64() {
    const std::uint64_t lo = U32();
    const std::uint64_t hi = U32();
    return lo | (hi << 32);
  }
  bool Flag() { return Take() != 0; }

  template <typename Container>  // vector<Word> or deque<Word>
  void Words(Container& c) {
    const std::uint32_t count = U32();
    if (count > Remaining()) {
      ok_ = false;
      c.clear();
      return;
    }
    c.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
    pos_ += count;
  }

  std::optional<Word> MaybeWord() {
    const bool has = Flag();
    const Word v = Take();
    return has ? std::optional<Word>(v) : std::nullopt;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  std::size_t Remaining() const { return data_.size() - pos_; }
  Word Take() {
    if (!ok_ || pos_ >= data_.size()) {
      ok_ = false;
      return 0;
    }
    return data_[pos_++];
  }

  std::span<const Word> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace sep

#endif  // SRC_DISTRIBUTED_RECOVERY_H_
