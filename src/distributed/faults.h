// Deterministic fault injection for communication lines.
//
// The paper's structural claim — a secure system is components joined by
// explicit communication lines — is only credible if the trusted components
// degrade gracefully when those lines misbehave. Real lines drop, duplicate,
// corrupt, reorder and delay words. A FaultPlan is a seeded, reproducible
// schedule of such events, installable per-link via Network::InjectFaults():
// every word pushed onto a faulted link consults the plan once, so a fixed
// (topology, workload, seed) triple always produces the identical fault
// history. Per-link FaultCounters record what the wire actually did, for
// observability in tests and the chaos harness.
//
// Fault injection models the WIRE, not the endpoints: it can lose or mangle
// words but it cannot create information. Nothing a FaultPlan does widens a
// declared channel — which is why the reliable-channel protocol layered on
// top (src/distributed/reliable.h) preserves the wire-cutting argument; see
// docs/RESILIENCE.md.
#ifndef SRC_DISTRIBUTED_FAULTS_H_
#define SRC_DISTRIBUTED_FAULTS_H_

#include <cstdint>

#include "src/base/rng.h"
#include "src/base/types.h"

namespace sep {

// Per-word fault probabilities, in percent. Each category is drawn
// independently, so a single word can be e.g. both corrupted and delayed.
struct FaultSpec {
  int drop_percent = 0;       // word vanishes in flight
  int duplicate_percent = 0;  // word is delivered twice
  int corrupt_percent = 0;    // one or more bits flip
  int reorder_percent = 0;    // word overtakes its predecessor
  int delay_percent = 0;      // word takes extra_delay additional ticks
  Tick max_extra_delay = 4;   // extra delay drawn uniformly from [1, max]

  // A uniform profile: every fault category at `percent`.
  static FaultSpec Uniform(int percent) {
    FaultSpec spec;
    spec.drop_percent = percent;
    spec.duplicate_percent = percent;
    spec.corrupt_percent = percent;
    spec.reorder_percent = percent;
    spec.delay_percent = percent;
    return spec;
  }

  // The chaos harness's headline knob: drops and corruption only.
  static FaultSpec DropCorrupt(int percent) {
    FaultSpec spec;
    spec.drop_percent = percent;
    spec.corrupt_percent = percent;
    return spec;
  }

  bool Any() const {
    return drop_percent > 0 || duplicate_percent > 0 || corrupt_percent > 0 ||
           reorder_percent > 0 || delay_percent > 0;
  }
};

// What the wire did, cumulatively, since the plan was installed.
struct FaultCounters {
  std::uint64_t offered = 0;     // words presented to the link
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delayed = 0;

  std::uint64_t total_faults() const {
    return dropped + duplicated + corrupted + reordered + delayed;
  }
};

// A seeded schedule of fault decisions. One Decide() call per pushed word.
class FaultPlan {
 public:
  FaultPlan(FaultSpec spec, std::uint64_t seed);

  // The fate of one word about to enter the wire.
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    bool reorder = false;
    Word corrupt_mask = 0;  // XORed into the word; 0 = intact
    Tick extra_delay = 0;
  };

  // Draws the next decision and updates the counters.
  Decision Decide();

  const FaultSpec& spec() const { return spec_; }
  const FaultCounters& counters() const { return counters_; }

 private:
  FaultSpec spec_;
  Rng rng_;
  FaultCounters counters_;
};

// --- node faults -------------------------------------------------------------
//
// The link-level FaultPlan makes the WIRES hostile; a NodeFaultPlan makes the
// MACHINES mortal. Real distributed systems lose whole nodes, not just words:
// a node can crash-stop (losing all volatile state, coming back only through
// checkpoint recovery — see Network::EnableRecovery) or stall (freeze for a
// few quanta with state intact, the classic "GC pause"). Crashes are the
// failure mode the paper's "ideal physically distributed system" must survive
// for the security argument to carry over to real deployments.

// Per-quantum node fault probabilities, in percent.
struct NodeFaultSpec {
  int crash_percent = 0;       // crash-stop instead of this quantum
  int stall_percent = 0;       // freeze (state intact) for stall ticks
  Tick max_stall = 4;          // stall drawn uniformly from [1, max]
  Tick min_restart_delay = 8;  // reboot time drawn uniformly from
  Tick max_restart_delay = 32; //   [min, max] ticks after a crash
  int max_crashes = 0;         // stop crashing after this many; 0 = unlimited

  bool Any() const { return crash_percent > 0 || stall_percent > 0; }
};

// What the scheduler did to the node, cumulatively.
struct NodeFaultCounters {
  std::uint64_t quanta = 0;   // fault decisions drawn
  std::uint64_t crashes = 0;
  std::uint64_t stalls = 0;
};

// A seeded schedule of node-fault decisions: one Decide() per quantum the
// node would otherwise run. Deterministic for a fixed (spec, seed).
class NodeFaultPlan {
 public:
  NodeFaultPlan(NodeFaultSpec spec, std::uint64_t seed);

  struct Decision {
    bool crash = false;
    Tick restart_delay = 0;  // valid when crash
    Tick stall_ticks = 0;    // nonzero = stall this long (state intact)
  };

  Decision Decide();

  const NodeFaultSpec& spec() const { return spec_; }
  const NodeFaultCounters& counters() const { return counters_; }

 private:
  NodeFaultSpec spec_;
  Rng rng_;
  NodeFaultCounters counters_;
};

}  // namespace sep

#endif  // SRC_DISTRIBUTED_FAULTS_H_
