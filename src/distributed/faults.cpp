#include "src/distributed/faults.h"

namespace sep {

FaultPlan::FaultPlan(FaultSpec spec, std::uint64_t seed) : spec_(spec), rng_(seed) {}

FaultPlan::Decision FaultPlan::Decide() {
  Decision d;
  ++counters_.offered;
  if (spec_.drop_percent > 0 &&
      rng_.NextChance(static_cast<std::uint64_t>(spec_.drop_percent), 100)) {
    d.drop = true;
    ++counters_.dropped;
    // A dropped word has no further fate; keep the draw count per word
    // independent of the other categories by deciding them anyway.
  }
  if (spec_.duplicate_percent > 0 &&
      rng_.NextChance(static_cast<std::uint64_t>(spec_.duplicate_percent), 100)) {
    d.duplicate = !d.drop;
    if (d.duplicate) {
      ++counters_.duplicated;
    }
  }
  if (spec_.corrupt_percent > 0 &&
      rng_.NextChance(static_cast<std::uint64_t>(spec_.corrupt_percent), 100)) {
    // Flip one to three bits: a nonzero mask, biased toward single-bit noise.
    Word mask = static_cast<Word>(1u << rng_.NextBelow(16));
    if (rng_.NextChance(1, 3)) {
      mask = static_cast<Word>(mask | (1u << rng_.NextBelow(16)));
    }
    if (rng_.NextChance(1, 9)) {
      mask = static_cast<Word>(mask | (1u << rng_.NextBelow(16)));
    }
    if (!d.drop) {
      d.corrupt_mask = mask;
      ++counters_.corrupted;
    }
  }
  if (spec_.reorder_percent > 0 &&
      rng_.NextChance(static_cast<std::uint64_t>(spec_.reorder_percent), 100)) {
    d.reorder = !d.drop;
    if (d.reorder) {
      ++counters_.reordered;
    }
  }
  if (spec_.delay_percent > 0 &&
      rng_.NextChance(static_cast<std::uint64_t>(spec_.delay_percent), 100)) {
    const Tick extra = static_cast<Tick>(
        rng_.NextInRange(1, static_cast<std::int64_t>(spec_.max_extra_delay > 0
                                                          ? spec_.max_extra_delay
                                                          : 1)));
    if (!d.drop) {
      d.extra_delay = extra;
      ++counters_.delayed;
    }
  }
  return d;
}

}  // namespace sep
