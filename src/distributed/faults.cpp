#include "src/distributed/faults.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sep {

namespace {

// kNetFaultInjected payload a0: which fault fired.
enum FaultKind : Word {
  kFaultDrop = 1,
  kFaultDuplicate = 2,
  kFaultCorrupt = 3,
  kFaultReorder = 4,
  kFaultDelay = 5,
};

void NoteFault(FaultKind kind, std::uint64_t offered, Word detail = 0) {
  static obs::Counter& injected = obs::Metrics().GetCounter("net.faults_injected");
  obs::Emit(obs::Category::kNet, obs::Code::kNetFaultInjected, obs::kColourKernel, offered,
            static_cast<Word>(kind), detail);
  injected.Add();
}

}  // namespace

FaultPlan::FaultPlan(FaultSpec spec, std::uint64_t seed) : spec_(spec), rng_(seed) {}

FaultPlan::Decision FaultPlan::Decide() {
  Decision d;
  ++counters_.offered;
  const bool observe = obs::Enabled();
  if (spec_.drop_percent > 0 &&
      rng_.NextChance(static_cast<std::uint64_t>(spec_.drop_percent), 100)) {
    d.drop = true;
    ++counters_.dropped;
    if (observe) {
      NoteFault(kFaultDrop, counters_.offered);
    }
    // A dropped word has no further fate; keep the draw count per word
    // independent of the other categories by deciding them anyway.
  }
  if (spec_.duplicate_percent > 0 &&
      rng_.NextChance(static_cast<std::uint64_t>(spec_.duplicate_percent), 100)) {
    d.duplicate = !d.drop;
    if (d.duplicate) {
      ++counters_.duplicated;
      if (observe) {
        NoteFault(kFaultDuplicate, counters_.offered);
      }
    }
  }
  if (spec_.corrupt_percent > 0 &&
      rng_.NextChance(static_cast<std::uint64_t>(spec_.corrupt_percent), 100)) {
    // Flip one to three bits: a nonzero mask, biased toward single-bit noise.
    Word mask = static_cast<Word>(1u << rng_.NextBelow(16));
    if (rng_.NextChance(1, 3)) {
      mask = static_cast<Word>(mask | (1u << rng_.NextBelow(16)));
    }
    if (rng_.NextChance(1, 9)) {
      mask = static_cast<Word>(mask | (1u << rng_.NextBelow(16)));
    }
    if (!d.drop) {
      d.corrupt_mask = mask;
      ++counters_.corrupted;
      if (observe) {
        NoteFault(kFaultCorrupt, counters_.offered, mask);
      }
    }
  }
  if (spec_.reorder_percent > 0 &&
      rng_.NextChance(static_cast<std::uint64_t>(spec_.reorder_percent), 100)) {
    d.reorder = !d.drop;
    if (d.reorder) {
      ++counters_.reordered;
      if (observe) {
        NoteFault(kFaultReorder, counters_.offered);
      }
    }
  }
  if (spec_.delay_percent > 0 &&
      rng_.NextChance(static_cast<std::uint64_t>(spec_.delay_percent), 100)) {
    const Tick extra = static_cast<Tick>(
        rng_.NextInRange(1, static_cast<std::int64_t>(spec_.max_extra_delay > 0
                                                          ? spec_.max_extra_delay
                                                          : 1)));
    if (!d.drop) {
      d.extra_delay = extra;
      ++counters_.delayed;
      if (observe) {
        NoteFault(kFaultDelay, counters_.offered, static_cast<Word>(extra & 0xFFFF));
      }
    }
  }
  return d;
}

NodeFaultPlan::NodeFaultPlan(NodeFaultSpec spec, std::uint64_t seed) : spec_(spec), rng_(seed) {}

NodeFaultPlan::Decision NodeFaultPlan::Decide() {
  Decision d;
  ++counters_.quanta;
  const bool exhausted =
      spec_.max_crashes > 0 && counters_.crashes >= static_cast<std::uint64_t>(spec_.max_crashes);
  if (spec_.crash_percent > 0 && !exhausted &&
      rng_.NextChance(static_cast<std::uint64_t>(spec_.crash_percent), 100)) {
    d.crash = true;
    const Tick lo = spec_.min_restart_delay > 0 ? spec_.min_restart_delay : 1;
    const Tick hi = spec_.max_restart_delay > lo ? spec_.max_restart_delay : lo;
    d.restart_delay = static_cast<Tick>(
        rng_.NextInRange(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
    ++counters_.crashes;
    return d;  // a crashed node cannot also stall
  }
  if (spec_.stall_percent > 0 &&
      rng_.NextChance(static_cast<std::uint64_t>(spec_.stall_percent), 100)) {
    const Tick max_stall = spec_.max_stall > 0 ? spec_.max_stall : 1;
    d.stall_ticks =
        static_cast<Tick>(rng_.NextInRange(1, static_cast<std::int64_t>(max_stall)));
    ++counters_.stalls;
  }
  return d;
}

}  // namespace sep
