#include "src/distributed/network.h"

#include <algorithm>
#include <utility>

#include "src/base/strings.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sep {

namespace {

void NoteCrash(int node, Tick now, Tick restart_delay) {
  static obs::Counter& crashes = obs::Metrics().GetCounter("net.node_crashes");
  crashes.Add();
  if (obs::Enabled()) {
    obs::Emit(obs::Category::kNet, obs::Code::kNetNodeCrash, obs::kColourKernel, now,
              static_cast<Word>(node), static_cast<Word>(restart_delay & 0xFFFF));
  }
}

void NoteRestore(int node, Tick now, bool cold, Tick lost_ticks) {
  static obs::Counter& restores = obs::Metrics().GetCounter("net.node_restores");
  static obs::Counter& recovery = obs::Metrics().GetCounter("net.recovery_ticks");
  restores.Add();
  recovery.Add(lost_ticks);
  if (obs::Enabled()) {
    obs::Emit(obs::Category::kNet, obs::Code::kNetNodeRestore, obs::kColourKernel, now,
              static_cast<Word>(node), cold ? 1 : 0);
  }
}

}  // namespace

bool Link::Push(Word w, Tick now) {
  if (Space() == 0) {
    return false;
  }
  const Tick base_at = now + latency_;
  if (!faults_) {
    in_flight_.push_back({w, base_at});
    return true;
  }
  const FaultPlan::Decision d = faults_->Decide();
  if (d.drop) {
    return true;  // accepted by the wire, lost in flight
  }
  const Word v = static_cast<Word>(w ^ d.corrupt_mask);
  in_flight_.push_back({v, base_at + d.extra_delay});
  if (d.reorder && in_flight_.size() >= 2) {
    // The new word overtakes its predecessor: swap the two words while each
    // keeps its delivery slot, so the earlier slot now carries the newer word.
    std::swap(in_flight_[in_flight_.size() - 1].word, in_flight_[in_flight_.size() - 2].word);
  }
  if (d.duplicate) {
    // The echo ignores capacity accounting — see Link::Space().
    in_flight_.push_back({v, base_at + d.extra_delay + 1});
  }
  return true;
}

void Link::Advance(Tick now) {
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (it->deliver_at <= now) {
      ready_.push_back(it->word);
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
}

int Network::AddNode(std::unique_ptr<Process> process) {
  nodes_.push_back(Node{std::move(process), {}, {}});
  return static_cast<int>(nodes_.size()) - 1;
}

int Network::Connect(int from, int to, std::size_t capacity, Tick latency,
                     const std::string& name) {
  const int id = static_cast<int>(links_.size());
  std::string link_name = name.empty()
                              ? Format("%s->%s", nodes_[static_cast<std::size_t>(from)]
                                                     .process->name()
                                                     .c_str(),
                                       nodes_[static_cast<std::size_t>(to)].process->name().c_str())
                              : name;
  links_.push_back(std::make_unique<Link>(link_name, capacity, latency));
  nodes_[static_cast<std::size_t>(from)].out_links.push_back(id);
  nodes_[static_cast<std::size_t>(to)].in_links.push_back(id);
  edges_.push_back(Edge{from, to, link_name});
  return id;
}

bool Network::Step() {
  ++now_;
  for (auto& link : links_) {
    link->Advance(now_);
  }
  bool any_alive = false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    // A dead node counts as alive — the run must not terminate while a
    // restart is pending — but executes nothing until its delay elapses.
    if (!node.status.up) {
      any_alive = true;
      if (now_ >= node.status.down_until) {
        RestartNode(node, static_cast<int>(i));
      }
      continue;  // the restart tick itself is spent rebooting, not stepping
    }
    if (node.process->Finished()) {
      continue;
    }
    any_alive = true;
    // Scripted crashes fire at the start of the quantum: the node never
    // executes the tick it dies on.
    if (!node.scripted_crashes.empty()) {
      auto due = std::find_if(node.scripted_crashes.begin(), node.scripted_crashes.end(),
                              [this](const Node::ScriptedCrash& c) { return now_ >= c.at; });
      if (due != node.scripted_crashes.end()) {
        const Tick delay = due->restart_delay;
        node.scripted_crashes.erase(due);
        CrashNode(node, static_cast<int>(i), delay);
        continue;
      }
    }
    if (node.fault_plan) {
      const NodeFaultPlan::Decision d = node.fault_plan->Decide();
      if (d.crash) {
        CrashNode(node, static_cast<int>(i), d.restart_delay);
        continue;
      }
      if (d.stall_ticks > 0) {
        node.status.stalled_until = now_ + d.stall_ticks;
        ++node.status.stalls;
      }
    }
    if (node.status.stalled_until > now_) {
      continue;  // frozen, state intact
    }
    std::vector<Link*> in;
    in.reserve(node.in_links.size());
    for (int id : node.in_links) {
      in.push_back(links_[static_cast<std::size_t>(id)].get());
    }
    std::vector<Link*> out;
    out.reserve(node.out_links.size());
    for (int id : node.out_links) {
      out.push_back(links_[static_cast<std::size_t>(id)].get());
    }
    NodeContext ctx(std::move(in), std::move(out), now_);
    node.process->Step(ctx);
    ++node.executed_quanta;
    if (node.recoverable && node.checkpoint_interval > 0 &&
        node.executed_quanta % node.checkpoint_interval == 0) {
      TakeCheckpoint(node);
    }
  }
  return any_alive;
}

bool Network::EnableRecovery(int node, Tick checkpoint_interval) {
  Node& n = nodes_[static_cast<std::size_t>(node)];
  std::vector<Word> genesis;
  if (!n.process->Checkpoint(genesis)) {
    return false;
  }
  n.recoverable = true;
  n.checkpoint_interval = checkpoint_interval;
  n.genesis = std::move(genesis);
  n.checkpoint.reset();
  return true;
}

void Network::InjectNodeFaults(int node, const NodeFaultSpec& spec, std::uint64_t seed) {
  nodes_[static_cast<std::size_t>(node)].fault_plan = std::make_unique<NodeFaultPlan>(spec, seed);
}

void Network::ScheduleCrash(int node, Tick at, Tick restart_delay) {
  nodes_[static_cast<std::size_t>(node)].scripted_crashes.push_back({at, restart_delay});
}

void Network::CrashNow(int node, Tick restart_delay) {
  CrashNode(nodes_[static_cast<std::size_t>(node)], node, restart_delay);
}

void Network::CrashNode(Node& node, int index, Tick restart_delay) {
  node.status.up = false;
  node.status.crashed_at = now_;
  node.status.down_until = now_ + (restart_delay > 0 ? restart_delay : 1);
  node.status.stalled_until = 0;
  ++node.status.crashes;
  // Flush every incident link: words in flight to a dead port have nobody
  // listening, and words the dead incarnation pushed must not reach peers
  // as ghosts of a session that no longer exists.
  for (int id : node.in_links) {
    links_[static_cast<std::size_t>(id)]->Reset(now_);
  }
  for (int id : node.out_links) {
    links_[static_cast<std::size_t>(id)]->Reset(now_);
  }
  NoteCrash(index, now_, node.status.down_until - now_);
}

void Network::RestartNode(Node& node, int index) {
  // A node that was never enrolled in recovery stays down forever — there is
  // no image to rebuild it from. Its status still records the crash.
  if (!node.recoverable) {
    return;
  }
  const bool cold = !node.checkpoint.has_value();
  const std::vector<Word>& image = cold ? node.genesis : *node.checkpoint;
  if (!node.process->Restore(std::span<const Word>(image))) {
    return;  // malformed image: stay down rather than run corrupted state
  }
  if (cold) {
    node.process->OnColdRestart();
    ++node.status.cold_starts;
  } else {
    ++node.status.restores;
  }
  // In-links may have accumulated traffic addressed to the dead incarnation
  // while the node was down; the reborn process must start from silence.
  for (int id : node.in_links) {
    links_[static_cast<std::size_t>(id)]->Reset(now_);
  }
  node.status.up = true;
  const Tick recovered_from = cold ? 0 : node.status.last_checkpoint_at;
  const Tick lost = node.status.crashed_at > recovered_from
                        ? node.status.crashed_at - recovered_from
                        : 0;
  node.status.last_recovery_ticks = lost;
  recovery_log_.push_back(NodeRecoveryEvent{index, node.status.crashed_at, now_, lost, cold});
  NoteRestore(index, now_, cold, lost);
}

void Network::TakeCheckpoint(Node& node) {
  std::vector<Word> image;
  if (!node.process->Checkpoint(image)) {
    return;
  }
  node.checkpoint = std::move(image);
  node.status.last_checkpoint_at = now_;
  ++node.status.checkpoints;
}

std::size_t Network::Run(std::size_t max_steps) {
  std::size_t steps = 0;
  while (steps < max_steps && Step()) {
    ++steps;
  }
  return steps;
}

bool Network::Reachable(int from, int to) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<int> frontier = {from};
  seen[static_cast<std::size_t>(from)] = true;
  while (!frontier.empty()) {
    int current = frontier.back();
    frontier.pop_back();
    if (current == to) {
      return true;
    }
    for (const Edge& edge : edges_) {
      if (edge.from == current && !seen[static_cast<std::size_t>(edge.to)]) {
        seen[static_cast<std::size_t>(edge.to)] = true;
        frontier.push_back(edge.to);
      }
    }
  }
  return false;
}

}  // namespace sep
