#include "src/distributed/network.h"

#include <utility>

#include "src/base/strings.h"

namespace sep {

bool Link::Push(Word w, Tick now) {
  if (Space() == 0) {
    return false;
  }
  const Tick base_at = now + latency_;
  if (!faults_) {
    in_flight_.push_back({w, base_at});
    return true;
  }
  const FaultPlan::Decision d = faults_->Decide();
  if (d.drop) {
    return true;  // accepted by the wire, lost in flight
  }
  const Word v = static_cast<Word>(w ^ d.corrupt_mask);
  in_flight_.push_back({v, base_at + d.extra_delay});
  if (d.reorder && in_flight_.size() >= 2) {
    // The new word overtakes its predecessor: swap the two words while each
    // keeps its delivery slot, so the earlier slot now carries the newer word.
    std::swap(in_flight_[in_flight_.size() - 1].word, in_flight_[in_flight_.size() - 2].word);
  }
  if (d.duplicate) {
    // The echo ignores capacity accounting — see Link::Space().
    in_flight_.push_back({v, base_at + d.extra_delay + 1});
  }
  return true;
}

void Link::Advance(Tick now) {
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (it->deliver_at <= now) {
      ready_.push_back(it->word);
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
}

int Network::AddNode(std::unique_ptr<Process> process) {
  nodes_.push_back(Node{std::move(process), {}, {}});
  return static_cast<int>(nodes_.size()) - 1;
}

int Network::Connect(int from, int to, std::size_t capacity, Tick latency,
                     const std::string& name) {
  const int id = static_cast<int>(links_.size());
  std::string link_name = name.empty()
                              ? Format("%s->%s", nodes_[static_cast<std::size_t>(from)]
                                                     .process->name()
                                                     .c_str(),
                                       nodes_[static_cast<std::size_t>(to)].process->name().c_str())
                              : name;
  links_.push_back(std::make_unique<Link>(link_name, capacity, latency));
  nodes_[static_cast<std::size_t>(from)].out_links.push_back(id);
  nodes_[static_cast<std::size_t>(to)].in_links.push_back(id);
  edges_.push_back(Edge{from, to, link_name});
  return id;
}

bool Network::Step() {
  ++now_;
  for (auto& link : links_) {
    link->Advance(now_);
  }
  bool any_alive = false;
  for (Node& node : nodes_) {
    if (node.process->Finished()) {
      continue;
    }
    any_alive = true;
    std::vector<Link*> in;
    in.reserve(node.in_links.size());
    for (int id : node.in_links) {
      in.push_back(links_[static_cast<std::size_t>(id)].get());
    }
    std::vector<Link*> out;
    out.reserve(node.out_links.size());
    for (int id : node.out_links) {
      out.push_back(links_[static_cast<std::size_t>(id)].get());
    }
    NodeContext ctx(std::move(in), std::move(out), now_);
    node.process->Step(ctx);
  }
  return any_alive;
}

std::size_t Network::Run(std::size_t max_steps) {
  std::size_t steps = 0;
  while (steps < max_steps && Step()) {
    ++steps;
  }
  return steps;
}

bool Network::Reachable(int from, int to) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<int> frontier = {from};
  seen[static_cast<std::size_t>(from)] = true;
  while (!frontier.empty()) {
    int current = frontier.back();
    frontier.pop_back();
    if (current == to) {
      return true;
    }
    for (const Edge& edge : edges_) {
      if (edge.from == current && !seen[static_cast<std::size_t>(edge.to)]) {
        seen[static_cast<std::size_t>(edge.to)] = true;
        frontier.push_back(edge.to);
      }
    }
  }
  return false;
}

}  // namespace sep
