// Reliable inter-node channels over faulty links.
//
// A communication line (Link) with an installed FaultPlan drops, duplicates,
// corrupts, reorders and delays words. This header layers a word-level
// reliable-delivery protocol on top of a PAIR of such lines (one data line,
// one reverse ACK line) so that the application on each side sees exactly
// the lossless FIFO stream it would have seen on a perfect line:
//
//   * payload words are packed into numbered segments
//       DATA := [kRelData, seq, n, payload[0..n), checksum]
//   * the receiver accepts segments strictly in order, answers with
//     cumulative ACKs
//       ACK  := [kRelAck, cumulative-seq, checksum]
//     discards duplicates, and rejects any frame whose checksum fails
//     (single resynchronisation step: drop one word, rescan);
//   * the sender keeps a bounded window of unacknowledged segments and
//     retransmits all of them when the retransmission timer expires, with
//     capped exponential backoff (go-back-N); duplicate cumulative ACKs
//     trigger the same retransmission immediately (fast retransmit), so a
//     lossy-but-alive line recovers at round-trip cadence instead of
//     timeout cadence.
//
// Segments are deliberately SMALL (see ReliableConfig::max_segment_words):
// faults here are per-word, so a frame's survival probability decays
// exponentially with its length, and a long frame repeatedly clipped by a
// mid-frame corruption makes retransmission useless.
//
// Crucially, NOTHING here widens a declared channel: the protocol adds a
// reverse line that must itself be declared in the topology (and therefore
// shows up in every reachability audit), and retransmission only ever
// re-sends words the sender was already entitled to send. The wire-cutting
// argument applies end-to-end — see docs/RESILIENCE.md.
//
// ReliableSender / ReliableReceiver are port wrappers usable inside any
// Process (the way FrameReader/FrameWriter are). ReliableIngress /
// ReliableEgress are ready-made relay processes so an existing lossless hop
// can be replaced by a reliable tunnel without touching the endpoints;
// SpliceReliableTunnel() performs that rewiring.
#ifndef SRC_DISTRIBUTED_RELIABLE_H_
#define SRC_DISTRIBUTED_RELIABLE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/distributed/network.h"
#include "src/distributed/recovery.h"

namespace sep {

// Wire frame type markers (chosen to be unlikely payload values; the
// checksum, not the marker, is what actually authenticates a frame).
inline constexpr Word kRelData = 0xD47A;
inline constexpr Word kRelAck = 0xAC4B;
// Session resynchronisation (crash–restart survivability; RESILIENCE.md §6):
//   SYN    := [kRelSyn, nonce, first_seq, checksum]   sender -> receiver
//   SYNREQ := [kRelSynReq, nonce, checksum]           receiver -> sender
inline constexpr Word kRelSyn = 0x5A17;
inline constexpr Word kRelSynReq = 0x5A99;

// Serial (wrap-around) sequence comparison: is `a` strictly before `b`?
inline bool SeqBefore(Word a, Word b) {
  return static_cast<std::int16_t>(static_cast<Word>(a - b)) < 0;
}

// FNV-folded 16-bit checksum over a word span.
Word RelChecksum(const Word* data, std::size_t count);

struct ReliableConfig {
  // Payload words per DATA frame. Small on purpose: with independent
  // per-word faults at rate f, a frame of n+4 wire words survives with
  // probability ~(1-f)^(n+4), so short frames are what keeps goodput
  // positive at the 10-20% rates the chaos envelope requires.
  std::size_t max_segment_words = 2;
  std::size_t window_segments = 8;    // unacked segments the sender tolerates
  Tick initial_rto = 16;              // first retransmission timeout
  Tick max_rto = 128;                 // backoff cap
  // Copies of every DATA and ACK frame per transmission (frame-level
  // repetition coding). With per-frame survival p one copy, a round
  // succeeds with 1-(1-p)^redundancy; at the 20% per-word rates of the
  // chaos envelope this is the difference between round-trip-paced and
  // timeout-paced recovery. Duplicates are suppressed by sequence number.
  int redundancy = 3;
  // Consecutive timeouts of the same window before the sender declares the
  // line dead. 0 = never give up.
  int max_retries = 0;
  // Session resynchronisation: a cold-restarted endpoint announces a fresh
  // session (SYN / SYNREQ handshake) instead of silently reusing sequence
  // numbers from a state it no longer remembers. Off by default so plain
  // tunnels are wire-identical to before.
  bool resync = false;
  // Ack-commit (receiver side, the write-ahead rule of crash recovery): the
  // receiver acknowledges only data covered by its newest checkpoint, so
  // everything a rollback forgets is still in the peer's window and gets
  // retransmitted. MUST be on for a crashable receiver — the chaos sweep's
  // negative fixture demonstrates the data loss when it is off.
  bool ack_commit = false;

  // Preset for ports carrying SENDV/RECVV batches (the zero-copy channel
  // fabric): wider segments amortize the per-frame header/checksum overhead
  // the way one batched trap amortizes kernel entry, and a deeper window
  // keeps a whole batch in flight. The trade is deliberate — per-word
  // faults make long frames fragile, so batched ports suit links run BELOW
  // the chaos envelope's 10-20% rates; tunnels inside that envelope should
  // keep the 2-word default.
  static ReliableConfig Batched() {
    ReliableConfig config;
    config.max_segment_words = 16;
    config.window_segments = 16;
    return config;
  }
};

struct ReliableSenderStats {
  std::uint64_t segments_sent = 0;      // first transmissions
  std::uint64_t retransmits = 0;        // re-transmissions (RetransmitCount)
  std::uint64_t fast_retransmits = 0;   // rounds triggered by duplicate ACKs
  std::uint64_t timeouts = 0;           // timer expiries
  std::uint64_t acks_received = 0;      // valid ACK frames processed
  std::uint64_t acks_rejected = 0;      // ACK frames failing the checksum
  std::uint64_t gave_up = 0;            // 1 once the line is declared dead
  std::uint64_t syns_sent = 0;          // session announcements queued
  std::uint64_t synreqs_handled = 0;    // peer restarts we resynced for
  std::uint64_t revivals = 0;           // dead lines revived by a resync
};

struct ReliableReceiverStats {
  std::uint64_t accepted = 0;              // in-order segments delivered
  std::uint64_t duplicates_discarded = 0;  // already-delivered seq
  std::uint64_t out_of_order_discarded = 0;
  std::uint64_t corrupt_discarded = 0;     // checksum failures
  std::uint64_t resyncs = 0;               // words skipped hunting for a frame
  std::uint64_t acks_sent = 0;
  std::uint64_t session_resyncs = 0;       // SYN frames that moved expected_
  std::uint64_t synreqs_sent = 0;          // restart announcements queued
};

// The sending end. Feed payload words with SendWord(); call Pump() once per
// Step() with the node's data-out and ACK-in port numbers.
class ReliableSender {
 public:
  explicit ReliableSender(ReliableConfig config = {});

  void SendWord(Word w) { outbox_.push_back(w); }

  void Pump(NodeContext& ctx, int data_out_port, int ack_in_port);

  // True when every offered word has been sent AND acknowledged.
  bool Idle() const { return outbox_.empty() && window_.empty() && tx_queue_.empty(); }

  // True once max_retries was exceeded; the sender stops transmitting.
  bool dead() const { return dead_; }

  const ReliableSenderStats& stats() const { return stats_; }
  std::size_t window_in_use() const { return window_.size(); }

  // Oldest unacknowledged sequence number (diagnostics).
  std::optional<Word> oldest_unacked() const {
    return window_.empty() ? std::nullopt : std::optional<Word>(window_.front().seq);
  }

  // --- crash–restart survivability ----------------------------------------
  // Serializes the protocol state a restart must not forget: unsegmented
  // outbox, the unacknowledged window, sequence counters. Volatile wire
  // state (tx queue, timers, dup-ack tallies) and the stats are NOT part of
  // the image: the former is regenerated by retransmission, the latter
  // belong to the observer, staying monotone across restarts.
  void Checkpoint(CkptWriter& w) const;
  // Rebuilds from a checkpointed image; the whole window is queued for
  // retransmission and the line is revived if it had given up.
  void Restore(CkptReader& r);
  // Cold restart: announce a fresh session to the peer (config.resync).
  void StartResync(Word nonce);

 private:
  struct Segment {
    Word seq = 0;
    std::vector<Word> payload;
    bool queued = false;  // serialized into tx_queue_ at least once
  };

  void SerializeSegment(const Segment& segment);
  void HandleAck(Word cumulative);
  void HandleSynReq(Word nonce);
  void RetransmitWindow();
  void QueueSyn(Word nonce, Word first_seq);

  ReliableConfig config_;
  std::deque<Word> outbox_;     // payload words not yet segmented
  std::deque<Segment> window_;  // unacknowledged segments, oldest first
  std::deque<Word> tx_queue_;   // serialized wire words awaiting link space
  std::deque<Word> ack_rx_;     // raw words from the ACK line
  Word next_seq_ = 1;
  Tick rto_;
  Tick deadline_ = 0;  // 0 = no timer armed
  int retries_ = 0;
  Word last_cum_ = 0;  // newest cumulative ACK value seen
  int dup_acks_ = 0;   // consecutive ACKs repeating last_cum_ without progress
  bool dead_ = false;
  bool kick_ = false;  // restart/resync: retransmit the window when possible
  std::optional<Word> pending_syn_;       // session announcement to send
  std::optional<Word> last_synreq_nonce_; // dedup for peer-restart requests
  ReliableSenderStats stats_;
};

// The receiving end. Call Pump() once per Step(); drain the reconstructed
// lossless stream with NextWord().
class ReliableReceiver {
 public:
  explicit ReliableReceiver(ReliableConfig config = {});

  void Pump(NodeContext& ctx, int data_in_port, int ack_out_port);

  std::optional<Word> NextWord() {
    if (delivered_.empty()) {
      return std::nullopt;
    }
    Word w = delivered_.front();
    delivered_.pop_front();
    return w;
  }

  std::size_t pending_words() const { return delivered_.size(); }
  const ReliableReceiverStats& stats() const { return stats_; }

  // --- crash–restart survivability ----------------------------------------
  // Serializes undrained delivered words + sequence state, and COMMITS: with
  // config.ack_commit, everything received in order up to this instant
  // becomes acknowledgeable only now (the write-ahead rule). Raw un-parsed
  // wire words are deliberately left out — they were never acknowledged, so
  // the peer retransmits them after a rollback.
  void Checkpoint(CkptWriter& w);
  void Restore(CkptReader& r);
  // Cold restart: ask the peer sender to re-announce its session base.
  void StartResync(Word nonce);

 private:
  void ParseFrames();
  Word AckValue() const {
    return config_.ack_commit ? committed_ : static_cast<Word>(expected_ - 1);
  }

  ReliableConfig config_;
  std::deque<Word> rx_buffer_;   // raw words off the data line
  std::deque<Word> delivered_;   // in-order payload stream for the app
  std::deque<Word> ack_tx_;      // serialized ACK words awaiting link space
  Word expected_ = 1;            // next in-order sequence number
  Word committed_ = 0;           // newest checkpointed seq (ack_commit mode)
  bool ack_pending_ = false;
  std::optional<Word> pending_synreq_;  // restart announcement to send
  std::optional<Word> last_syn_nonce_;  // dedup for peer session announcements
  ReliableReceiverStats stats_;
};

// --- relay processes -------------------------------------------------------

// Sender-side relay. Ports (wire them in exactly this declaration order):
//   in0  = plain words from the upstream component
//   in1  = ACK words from the egress (reverse lossy line)
//   out0 = framed data onto the lossy line
class ReliableIngress : public Process {
 public:
  explicit ReliableIngress(std::string name = "rel-ingress", ReliableConfig config = {})
      : name_(std::move(name)), sender_(config) {}

  std::string name() const override { return name_; }
  void Step(NodeContext& ctx) override {
    while (std::optional<Word> w = ctx.Receive(0)) {
      sender_.SendWord(*w);
    }
    sender_.Pump(ctx, /*data_out_port=*/0, /*ack_in_port=*/1);
  }

  const ReliableSender& sender() const { return sender_; }

 private:
  std::string name_;
  ReliableSender sender_;
};

// Receiver-side relay. Ports (declaration order):
//   in0  = framed data from the lossy line
//   out0 = ACK words back to the ingress
//   out1 = reconstructed plain words to the downstream component
class ReliableEgress : public Process {
 public:
  explicit ReliableEgress(std::string name = "rel-egress", ReliableConfig config = {})
      : name_(std::move(name)), receiver_(config) {}

  std::string name() const override { return name_; }
  void Step(NodeContext& ctx) override {
    receiver_.Pump(ctx, /*data_in_port=*/0, /*ack_out_port=*/0);
    while (true) {
      if (!staged_.has_value()) {
        staged_ = receiver_.NextWord();
      }
      if (!staged_.has_value() || !ctx.Send(1, *staged_)) {
        // Downstream backpressure: retry the SAME staged word next step.
        // This retry is invisible to every counter — the word was already
        // dequeued from the receiver (accepted counted it exactly once at
        // parse time) and NextWord() is not called again for it, while
        // retransmit/timeout tallies live on the SENDER side and cannot see
        // a delivery stall at all. Exactly-once delivery and metric
        // consistency under 100% momentary backpressure are pinned by
        // tests/channel_fabric_test.cpp.
        break;
      }
      staged_.reset();
    }
  }

  const ReliableReceiver& receiver() const { return receiver_; }

 private:
  std::string name_;
  ReliableReceiver receiver_;
  std::optional<Word> staged_;
};

// Node/link ids of a spliced tunnel, for fault injection and stats.
struct ReliableTunnel {
  int ingress_node = -1;
  int egress_node = -1;
  int data_link = -1;  // ingress -> egress (inject faults here)
  int ack_link = -1;   // egress -> ingress (and/or here)
};

// Replaces what would have been Connect(from, to) with a reliable tunnel:
//   from -> ingress ==data==> egress -> to, plus egress ==ack==> ingress.
// The two lossy lines get `capacity`/`latency`; the local from->ingress and
// egress->to hops are generously sized. Call this at the point in the wiring
// order where Connect(from, to) would have been, so port numbering on `from`
// and `to` is unchanged.
ReliableTunnel SpliceReliableTunnel(Network& net, int from, int to,
                                    const ReliableConfig& config = {},
                                    std::size_t capacity = 512, Tick latency = 1,
                                    const std::string& name = "tunnel");

// Convenience accessors for tunnel statistics.
const ReliableSenderStats& TunnelSenderStats(Network& net, const ReliableTunnel& tunnel);
const ReliableReceiverStats& TunnelReceiverStats(Network& net, const ReliableTunnel& tunnel);

}  // namespace sep

#endif  // SRC_DISTRIBUTED_RELIABLE_H_
