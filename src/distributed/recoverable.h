// Crash-survivable reliable tunnels.
//
// SpliceReliableTunnel (reliable.h) survives a hostile WIRE; this header
// survives hostile MACHINES: the tunnel endpoints themselves may crash-stop
// under a NodeFaultPlan, losing all volatile state, and the stream must
// still come out byte-identical at the far end (experiment E18).
//
// The construction is a four-node pipeline in which every hop adjacent to a
// crashable node is retransmission-capable:
//
//   from -> relay-in ==feed==> INGRESS ==data/ack==> EGRESS ==deliver==> relay-out -> to
//            (immortal)       (crashable)  (lossy)  (crashable)          (immortal)
//
// Three rules make recovery exact rather than merely likely:
//
//   1. ACK-COMMIT (write-ahead): a crashable receiver acknowledges only data
//      covered by its newest checkpoint. Anything a rollback forgets is
//      still unacknowledged in the peer sender's window, so the peer simply
//      retransmits it. Disable it (TunnelRecoveryOptions::ack_commit=false,
//      the chaos sweep's negative fixture) and a crash silently truncates
//      the stream.
//   2. DETERMINISTIC SEGMENTATION: one payload word per segment, so segment
//      k always carries stream word k-1 regardless of arrival timing. A
//      replayed segment is byte-identical to its first incarnation, and the
//      immortal relays discard replays as ordinary duplicates.
//   3. SESSION RESYNC: a cold-restarted endpoint (no checkpoint existed)
//      announces a fresh session over the SYN/SYNREQ handshake instead of
//      silently reusing sequence numbers it no longer remembers.
//
// Checkpoint images use the recovery.h word format; Network::EnableRecovery
// stores them and drives the crash/restart lifecycle. docs/RESILIENCE.md §6.
#ifndef SRC_DISTRIBUTED_RECOVERABLE_H_
#define SRC_DISTRIBUTED_RECOVERABLE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/base/types.h"
#include "src/distributed/network.h"
#include "src/distributed/recovery.h"
#include "src/distributed/reliable.h"

namespace sep {

// Checkpoint image version tag (first word of every endpoint image).
inline constexpr Word kRecoverableImageVersion = 1;

// Sender-side crashable endpoint. Ports (wire in declaration order):
//   in0  = framed feed data from the immortal relay-in
//   in1  = ACK words from the egress (lossy reverse line)
//   out0 = framed data onto the lossy line
//   out1 = feed ACK words back to relay-in
class RecoverableIngress : public Process {
 public:
  RecoverableIngress(std::string name, ReliableConfig feed, ReliableConfig tunnel)
      : name_(std::move(name)), feed_rx_(feed), tunnel_tx_(tunnel) {}

  std::string name() const override { return name_; }
  void Step(NodeContext& ctx) override {
    feed_rx_.Pump(ctx, /*data_in_port=*/0, /*ack_out_port=*/1);
    while (std::optional<Word> w = feed_rx_.NextWord()) {
      tunnel_tx_.SendWord(*w);
    }
    tunnel_tx_.Pump(ctx, /*data_out_port=*/0, /*ack_in_port=*/1);
  }

  bool Checkpoint(std::vector<Word>& out) override {
    CkptWriter w(out);
    w.U16(kRecoverableImageVersion);
    feed_rx_.Checkpoint(w);
    tunnel_tx_.Checkpoint(w);
    return true;
  }
  bool Restore(std::span<const Word> state) override {
    CkptReader r(state);
    if (r.U16() != kRecoverableImageVersion) {
      return false;
    }
    feed_rx_.Restore(r);
    tunnel_tx_.Restore(r);
    if (!r.AtEnd()) {
      return false;
    }
    // EVERY restart — warm or cold — announces itself to both peers: the
    // announcement revives senders that had given the line up for dead and
    // kicks retransmission immediately instead of waiting out a timer. The
    // incarnation counter lives HERE, not in the image: it counts restarts,
    // which is exactly what a checkpoint must not roll back.
    const Word nonce = static_cast<Word>(++restarts_);
    feed_rx_.StartResync(nonce);
    tunnel_tx_.StartResync(nonce);
    return true;
  }
  void OnColdRestart() override { ++cold_restarts_; }

  const ReliableReceiver& feed_receiver() const { return feed_rx_; }
  const ReliableSender& tunnel_sender() const { return tunnel_tx_; }
  std::uint64_t cold_restarts() const { return cold_restarts_; }

 private:
  std::string name_;
  ReliableReceiver feed_rx_;
  ReliableSender tunnel_tx_;
  std::uint64_t restarts_ = 0;
  std::uint64_t cold_restarts_ = 0;
};

// Receiver-side crashable endpoint. Ports (declaration order):
//   in0  = framed data from the lossy line
//   in1  = deliver ACK words from relay-out
//   out0 = ACK words back onto the lossy line
//   out1 = framed deliver data to relay-out
class RecoverableEgress : public Process {
 public:
  RecoverableEgress(std::string name, ReliableConfig tunnel, ReliableConfig deliver)
      : name_(std::move(name)), tunnel_rx_(tunnel), deliver_tx_(deliver) {}

  std::string name() const override { return name_; }
  void Step(NodeContext& ctx) override {
    tunnel_rx_.Pump(ctx, /*data_in_port=*/0, /*ack_out_port=*/0);
    while (std::optional<Word> w = tunnel_rx_.NextWord()) {
      deliver_tx_.SendWord(*w);
    }
    deliver_tx_.Pump(ctx, /*data_out_port=*/1, /*ack_in_port=*/1);
  }

  bool Checkpoint(std::vector<Word>& out) override {
    CkptWriter w(out);
    w.U16(kRecoverableImageVersion);
    tunnel_rx_.Checkpoint(w);
    deliver_tx_.Checkpoint(w);
    return true;
  }
  bool Restore(std::span<const Word> state) override {
    CkptReader r(state);
    if (r.U16() != kRecoverableImageVersion) {
      return false;
    }
    tunnel_rx_.Restore(r);
    deliver_tx_.Restore(r);
    if (!r.AtEnd()) {
      return false;
    }
    const Word nonce = static_cast<Word>(++restarts_);
    tunnel_rx_.StartResync(nonce);
    deliver_tx_.StartResync(nonce);
    return true;
  }
  void OnColdRestart() override { ++cold_restarts_; }

  const ReliableReceiver& tunnel_receiver() const { return tunnel_rx_; }
  const ReliableSender& deliver_sender() const { return deliver_tx_; }
  std::uint64_t cold_restarts() const { return cold_restarts_; }

 private:
  std::string name_;
  ReliableReceiver tunnel_rx_;
  ReliableSender deliver_tx_;
  std::uint64_t restarts_ = 0;
  std::uint64_t cold_restarts_ = 0;
};

// Recovery policy for the two crashable endpoints of a spliced tunnel.
struct TunnelRecoveryOptions {
  // Quanta between checkpoints; 0 = genesis-only (every restart is cold).
  Tick checkpoint_interval = 16;
  // The write-ahead rule. Turning it off is the DELIBERATELY BROKEN
  // configuration the chaos sweep must catch (chaos_run --break-resync).
  bool ack_commit = true;
  // SYN/SYNREQ handshake on cold restart.
  bool resync = true;
};

// Node/link ids of a spliced crash-survivable tunnel.
struct RecoverableTunnel {
  int relay_in_node = -1;   // immortal ReliableIngress facing `from`
  int ingress_node = -1;    // crashable endpoint (enrolled in recovery)
  int egress_node = -1;     // crashable endpoint (enrolled in recovery)
  int relay_out_node = -1;  // immortal ReliableEgress facing `to`
  int data_link = -1;       // ingress -> egress (inject wire faults here)
  int ack_link = -1;        // egress -> ingress (and/or here)
};

// Replaces what would have been Connect(from, to) with the four-node
// crash-survivable pipeline. Call at the point in the wiring order where
// Connect(from, to) would have been (port numbering on `from`/`to` is then
// unchanged). Both crashable endpoints are enrolled via
// Network::EnableRecovery before this returns, so they can be crashed
// (ScheduleCrash / InjectNodeFaults) immediately.
RecoverableTunnel SpliceRecoverableTunnel(Network& net, int from, int to,
                                          const ReliableConfig& config = {},
                                          const TunnelRecoveryOptions& recovery = {},
                                          std::size_t capacity = 512, Tick latency = 1,
                                          const std::string& name = "rtunnel");

// Convenience accessors (valid for the lifetime of `net`).
const RecoverableIngress& TunnelIngress(Network& net, const RecoverableTunnel& tunnel);
const RecoverableEgress& TunnelEgress(Network& net, const RecoverableTunnel& tunnel);

}  // namespace sep

#endif  // SRC_DISTRIBUTED_RECOVERABLE_H_
