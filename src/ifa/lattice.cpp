#include "src/ifa/lattice.h"

namespace sep {

Result<FlowClass> FlowAtoms::GetOrRegister(const std::string& name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return FlowClass(1u << i);
    }
  }
  if (names_.size() >= 32) {
    return Err("too many security atoms (32 max): " + name);
  }
  names_.push_back(name);
  return FlowClass(1u << (names_.size() - 1));
}

Result<FlowClass> FlowAtoms::Lookup(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return FlowClass(1u << i);
    }
  }
  return Err("unknown security class: " + name);
}

std::string FlowAtoms::Describe(const FlowClass& cls) const {
  if (cls.IsLow()) {
    return "LOW";
  }
  std::string out;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if ((cls.atoms() >> i) & 1) {
      if (!out.empty()) {
        out += "|";
      }
      out += names_[i];
    }
  }
  return out;
}

}  // namespace sep
