#include "src/ifa/kernel_programs.h"

namespace sep {

const std::vector<CatalogEntry>& KernelProgramCatalog() {
  static const std::vector<CatalogEntry> kCatalog = {
      {
          "swap/regs-high",
          "SWAP with the shared CPU registers labelled RED|BLACK (system high)",
          R"(
var reg0 : RED|BLACK;        // the physical CPU register
var reg1 : RED|BLACK;
var red_save0 : RED;         // RED's save area
var red_save1 : RED;
var black_save0 : BLACK;     // BLACK's save area
var black_save1 : BLACK;

// Context switch from RED to BLACK:
red_save0 := reg0;           // IFA: RED|BLACK -> RED rejected
red_save1 := reg1;
reg0 := black_save0;
reg1 := black_save1;
)",
          /*ifa_certifies=*/false,
          /*actually_leaks=*/false,
          // Does anything about BLACK reach RED's world? Vary BLACK's save
          // area, observe RED's. (At switch time the registers hold RED
          // data; the save captures them BEFORE the reload, so no.)
          {"black_save0", "black_save1"},
          {"red_save0", "red_save1"},
      },
      {
          "swap/regs-red",
          "SWAP with the shared CPU registers labelled RED",
          R"(
var reg0 : RED;
var reg1 : RED;
var red_save0 : RED;
var red_save1 : RED;
var black_save0 : BLACK;
var black_save1 : BLACK;

red_save0 := reg0;
red_save1 := reg1;
reg0 := black_save0;         // IFA: BLACK -> RED rejected
reg1 := black_save1;
)",
          false,
          false,
          {"black_save0", "black_save1"},
          {"red_save0", "red_save1"},
      },
      {
          "swap/leaky",
          "defective SWAP that reloads only one register: a REAL leak",
          R"(
var reg0 : RED|BLACK;
var reg1 : RED|BLACK;
var red_save0 : RED;
var red_save1 : RED;
var black_in0 : BLACK;       // what BLACK observes in the registers
var black_in1 : BLACK;
var black_save0 : BLACK;
var black_save1 : BLACK;

red_save0 := reg0;
red_save1 := reg1;
reg0 := black_save0;
// reg1 reload forgotten: BLACK resumes seeing RED's reg1
black_in0 := reg0;
black_in1 := reg1;           // RED's value arrives in BLACK's world
)",
          false,
          true,
          {"reg1"},  // reg1 holds RED data at entry
          {"black_in0", "black_in1"},
      },
      {
          "copy/within-colour",
          "plain data movement inside one colour",
          R"(
var red_a : RED;
var red_b : RED;
red_b := red_a + 1;
)",
          true,
          false,
          {},
          {},
      },
      {
          "copy/up",
          "write-up: LOW data into a HIGH container (allowed both ways of looking)",
          R"(
var low_word : LOW;
var high_word : RED|BLACK;
high_word := low_word;
)",
          true,
          false,
          {},
          {},
      },
      {
          "leak/explicit",
          "direct copy-down: the classic explicit flow",
          R"(
var red_secret : RED;
var black_out : BLACK;
black_out := red_secret;
)",
          false,
          true,
          {"red_secret"},
          {"black_out"},
      },
      {
          "leak/implicit",
          "branch on a secret, assign a constant: the classic implicit flow",
          R"(
var red_secret : RED;
var black_out : BLACK;
if red_secret % 2 == 1 {
  black_out := 1;
} else {
  black_out := 0;
}
)",
          false,
          true,
          {"red_secret"},
          {"black_out"},
      },
      {
          "leak/loop-timing",
          "loop bound carries one bit into a BLACK counter",
          R"(
var red_secret : RED;
var black_count : BLACK;
var i : RED;
i := 0;
black_count := 0;
while i < red_secret % 8 {
  i := i + 1;
  black_count := black_count + 1;
}
)",
          false,
          true,
          {"red_secret"},
          {"black_count"},
      },
      {
          "interrupt/pending-mask",
          "kernel interrupt bookkeeping confined to one colour",
          R"(
var red_pending : RED;
var red_vector : RED;
var red_pc : RED;
var red_stack0 : RED;
if red_pending != 0 && red_vector != 0 {
  red_stack0 := red_pc;
  red_pc := red_vector;
  red_pending := 0;
}
)",
          true,
          false,
          {},
          {},
      },
  };
  return kCatalog;
}

}  // namespace sep
