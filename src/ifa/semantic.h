// Ground-truth leak detection by the two-run experiment, at the SIMPL
// language level.
//
// A program leaks from `secrets` to `observables` iff two runs whose
// initial environments agree everywhere except on `secrets` can end with
// different values in `observables`. This is the semantic fact that
// syntactic IFA approximates — and over-approximates: the kernel SWAP is
// rejected by IFA but passes this test, which is exactly the paper's
// Section 4 argument in executable form.
#ifndef SRC_IFA_SEMANTIC_H_
#define SRC_IFA_SEMANTIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ifa/ast.h"

namespace sep {

struct LeakProbeOptions {
  std::uint64_t seed = 1;
  int trials = 200;
  std::int64_t value_range = 1000;  // secrets and publics drawn from [0, range)
};

// True if any trial exhibits an observable difference caused by secrets.
bool SemanticallyLeaks(const Program& program, const std::vector<std::string>& secrets,
                       const std::vector<std::string>& observables,
                       const LeakProbeOptions& options = {});

}  // namespace sep

#endif  // SRC_IFA_SEMANTIC_H_
