// Abstract syntax for SIMPL, the small imperative language used to
// reproduce the paper's information-flow-analysis arguments.
//
// SIMPL programs declare variables with security classes and manipulate
// them with assignments, conditionals and loops:
//
//   var reg0 : RED|BLACK;
//   var red_save : RED;
//   var black_save : BLACK;
//   red_save := reg0;
//   reg0 := black_save;
//
// The analyzer (analyzer.h) certifies programs by Denning's rules; the
// interpreter (interpreter.h) executes them concretely so that tests can
// contrast "what IFA says" with "what the program actually does".
#ifndef SRC_IFA_AST_H_
#define SRC_IFA_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ifa/lattice.h"

namespace sep {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnOp : std::uint8_t { kNeg, kNot };

struct Expr {
  enum class Kind : std::uint8_t { kNumber, kVariable, kBinary, kUnary } kind = Kind::kNumber;
  std::int64_t number = 0;      // kNumber
  std::string variable;         // kVariable
  BinOp bin_op = BinOp::kAdd;   // kBinary
  UnOp un_op = UnOp::kNeg;      // kUnary
  ExprPtr lhs;                  // kBinary / kUnary operand
  ExprPtr rhs;                  // kBinary
  int line = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t { kAssign, kIf, kWhile } kind = Kind::kAssign;
  std::string target;           // kAssign
  ExprPtr value;                // kAssign
  ExprPtr condition;            // kIf / kWhile
  std::vector<StmtPtr> body;    // kIf then-branch / kWhile body
  std::vector<StmtPtr> orelse;  // kIf else-branch
  int line = 0;
};

struct VarDecl {
  std::string name;
  FlowClass security_class;
  int line = 0;
};

struct Program {
  FlowAtoms atoms;
  std::vector<VarDecl> variables;
  std::vector<StmtPtr> statements;

  const VarDecl* FindVariable(const std::string& name) const {
    for (const VarDecl& v : variables) {
      if (v.name == name) {
        return &v;
      }
    }
    return nullptr;
  }
};

}  // namespace sep

#endif  // SRC_IFA_AST_H_
