// Lexer and recursive-descent parser for SIMPL.
//
// Grammar:
//   program   := item*
//   item      := "var" IDENT ":" classexpr ";" | stmt
//   classexpr := "LOW" | IDENT ("|" IDENT)*
//   stmt      := IDENT ":=" expr ";"
//              | "if" expr block ("else" block)?
//              | "while" expr block
//   block     := "{" stmt* "}"
//   expr      := orexpr; usual precedence: ! - ; * / % ; + - ; comparisons ;
//                && ; ||
// Comments run from "//" to end of line.
#ifndef SRC_IFA_PARSER_H_
#define SRC_IFA_PARSER_H_

#include <string>

#include "src/base/result.h"
#include "src/ifa/ast.h"

namespace sep {

Result<std::unique_ptr<Program>> ParseSimpl(const std::string& source);

}  // namespace sep

#endif  // SRC_IFA_PARSER_H_
