// Denning-Denning information flow certification for SIMPL programs.
//
// The certification rules [8]:
//   * class(expr) = join of the classes of the variables it reads;
//   * an assignment x := e is certified iff class(e) ⊔ pc ⊑ class(x),
//     where pc is the join of the classes of every condition guarding the
//     statement (implicit flows);
//   * if/while raise pc by the class of their condition for the guarded
//     statements.
//
// This is the "syntactic" technique the paper's Section 4 examines: it is
// sound (no certified program leaks) but incomplete in a specific,
// consequential way — it reasons about the CLASSES of storage locations,
// never their VALUES or the disjointness of the times at which they hold
// information of different colours. The kernel SWAP operation is its
// canonical false positive, reproduced in tests/ifa_test.cpp and
// bench_ifa_vs_pos (experiment E6).
#ifndef SRC_IFA_ANALYZER_H_
#define SRC_IFA_ANALYZER_H_

#include <string>
#include <vector>

#include "src/analysis/finding.h"
#include "src/ifa/ast.h"

namespace sep {

struct FlowViolation {
  int line = 0;
  std::string target;       // variable assigned
  std::string flow_from;    // description of the offending class
  std::string flow_to;      // target's class
  bool implicit = false;    // via a guard rather than the right-hand side
  std::string ToString() const;
};

struct FlowReport {
  std::vector<FlowViolation> violations;
  std::size_t statements_checked = 0;

  bool Certified() const { return violations.empty(); }

  // The violations in the shared static-analysis finding format
  // (src/analysis/finding.h), so IFA verdicts render and serialize
  // identically to sepcheck's. `unit` names the program analyzed.
  std::vector<Finding> ToFindings(const std::string& unit) const;
};

FlowReport AnalyzeFlows(const Program& program);

}  // namespace sep

#endif  // SRC_IFA_ANALYZER_H_
