#include "src/ifa/parser.h"

#include <cctype>

#include "src/base/strings.h"

namespace sep {

namespace {

enum class TokKind : std::uint8_t {
  kIdent,
  kNumber,
  kPunct,  // one of ":= ; : | { } ( ) + - * / % == != < <= > >= && || !"
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::int64_t number = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') {
          ++pos_;
        }
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        std::size_t start = pos_;
        while (pos_ < src_.size() && (std::isalnum(static_cast<unsigned char>(src_[pos_])) != 0 ||
                                      src_[pos_] == '_')) {
          ++pos_;
        }
        out.push_back({TokKind::kIdent, src_.substr(start, pos_ - start), 0, line_});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t start = pos_;
        while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_])) != 0) {
          ++pos_;
        }
        Token t{TokKind::kNumber, src_.substr(start, pos_ - start), 0, line_};
        t.number = std::stoll(t.text);
        out.push_back(t);
        continue;
      }
      // Multi-character punctuation first.
      static const char* kTwo[] = {":=", "==", "!=", "<=", ">=", "&&", "||"};
      bool matched = false;
      for (const char* two : kTwo) {
        if (src_.compare(pos_, 2, two) == 0) {
          out.push_back({TokKind::kPunct, two, 0, line_});
          pos_ += 2;
          matched = true;
          break;
        }
      }
      if (matched) {
        continue;
      }
      static const std::string kOne = ";:|{}()+-*/%<>!";
      if (kOne.find(c) != std::string::npos) {
        out.push_back({TokKind::kPunct, std::string(1, c), 0, line_});
        ++pos_;
        continue;
      }
      return Err(Format("line %d: unexpected character '%c'", line_, c));
    }
    out.push_back({TokKind::kEnd, "", 0, line_});
    return out;
  }

 private:
  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Program>> Run() {
    auto program = std::make_unique<Program>();
    program_ = program.get();
    while (!AtEnd()) {
      if (PeekIdent("var")) {
        if (Result<> r = ParseDecl(); !r.ok()) {
          return Err(r.error());
        }
      } else {
        Result<StmtPtr> stmt = ParseStmt();
        if (!stmt.ok()) {
          return Err(stmt.error());
        }
        program->statements.push_back(std::move(stmt.value()));
      }
    }
    return program;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }
  Token Advance() { return tokens_[pos_++]; }

  bool PeekIdent(const std::string& word) const {
    return Peek().kind == TokKind::kIdent && Peek().text == word;
  }
  bool PeekPunct(const std::string& p) const {
    return Peek().kind == TokKind::kPunct && Peek().text == p;
  }
  bool MatchPunct(const std::string& p) {
    if (PeekPunct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<> ExpectPunct(const std::string& p) {
    if (!MatchPunct(p)) {
      return Err(Format("line %d: expected '%s', found '%s'", Peek().line, p.c_str(),
                        Peek().text.c_str()));
    }
    return Ok();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) {
      return Err(Format("line %d: expected identifier, found '%s'", Peek().line,
                        Peek().text.c_str()));
    }
    return Advance().text;
  }

  Result<> ParseDecl() {
    const int line = Peek().line;
    Advance();  // var
    Result<std::string> name = ExpectIdent();
    if (!name.ok()) {
      return Err(name.error());
    }
    if (program_->FindVariable(*name) != nullptr) {
      return Err(Format("line %d: duplicate variable %s", line, name->c_str()));
    }
    if (Result<> r = ExpectPunct(":"); !r.ok()) {
      return r;
    }
    FlowClass cls;
    if (PeekIdent("LOW")) {
      Advance();
    } else {
      while (true) {
        Result<std::string> atom = ExpectIdent();
        if (!atom.ok()) {
          return Err(atom.error());
        }
        Result<FlowClass> bit = program_->atoms.GetOrRegister(*atom);
        if (!bit.ok()) {
          return Err(bit.error());
        }
        cls = cls.Join(*bit);
        if (!MatchPunct("|")) {
          break;
        }
      }
    }
    if (Result<> r = ExpectPunct(";"); !r.ok()) {
      return r;
    }
    program_->variables.push_back({*name, cls, line});
    return Ok();
  }

  Result<StmtPtr> ParseStmt() {
    const int line = Peek().line;
    if (PeekIdent("if")) {
      Advance();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kIf;
      stmt->line = line;
      Result<ExprPtr> cond = ParseExpr();
      if (!cond.ok()) {
        return Err(cond.error());
      }
      stmt->condition = std::move(cond.value());
      Result<std::vector<StmtPtr>> body = ParseBlock();
      if (!body.ok()) {
        return Err(body.error());
      }
      stmt->body = std::move(body.value());
      if (PeekIdent("else")) {
        Advance();
        Result<std::vector<StmtPtr>> orelse = ParseBlock();
        if (!orelse.ok()) {
          return Err(orelse.error());
        }
        stmt->orelse = std::move(orelse.value());
      }
      return stmt;
    }
    if (PeekIdent("while")) {
      Advance();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kWhile;
      stmt->line = line;
      Result<ExprPtr> cond = ParseExpr();
      if (!cond.ok()) {
        return Err(cond.error());
      }
      stmt->condition = std::move(cond.value());
      Result<std::vector<StmtPtr>> body = ParseBlock();
      if (!body.ok()) {
        return Err(body.error());
      }
      stmt->body = std::move(body.value());
      return stmt;
    }
    // Assignment.
    Result<std::string> target = ExpectIdent();
    if (!target.ok()) {
      return Err(target.error());
    }
    if (program_->FindVariable(*target) == nullptr) {
      return Err(Format("line %d: assignment to undeclared variable %s", line, target->c_str()));
    }
    if (Result<> r = ExpectPunct(":="); !r.ok()) {
      return Err(r.error());
    }
    Result<ExprPtr> value = ParseExpr();
    if (!value.ok()) {
      return Err(value.error());
    }
    if (Result<> r = ExpectPunct(";"); !r.ok()) {
      return Err(r.error());
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kAssign;
    stmt->line = line;
    stmt->target = *target;
    stmt->value = std::move(value.value());
    return stmt;
  }

  Result<std::vector<StmtPtr>> ParseBlock() {
    if (Result<> r = ExpectPunct("{"); !r.ok()) {
      return Err(r.error());
    }
    std::vector<StmtPtr> body;
    while (!PeekPunct("}")) {
      if (AtEnd()) {
        return Err("unterminated block");
      }
      Result<StmtPtr> stmt = ParseStmt();
      if (!stmt.ok()) {
        return Err(stmt.error());
      }
      body.push_back(std::move(stmt.value()));
    }
    Advance();  // }
    return body;
  }

  ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->bin_op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    e->line = line;
    return e;
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    Result<ExprPtr> lhs = ParseAnd();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr acc = std::move(lhs.value());
    while (PeekPunct("||")) {
      int line = Advance().line;
      Result<ExprPtr> rhs = ParseAnd();
      if (!rhs.ok()) {
        return rhs;
      }
      acc = MakeBinary(BinOp::kOr, std::move(acc), std::move(rhs.value()), line);
    }
    return acc;
  }

  Result<ExprPtr> ParseAnd() {
    Result<ExprPtr> lhs = ParseCompare();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr acc = std::move(lhs.value());
    while (PeekPunct("&&")) {
      int line = Advance().line;
      Result<ExprPtr> rhs = ParseCompare();
      if (!rhs.ok()) {
        return rhs;
      }
      acc = MakeBinary(BinOp::kAnd, std::move(acc), std::move(rhs.value()), line);
    }
    return acc;
  }

  Result<ExprPtr> ParseCompare() {
    Result<ExprPtr> lhs = ParseSum();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr acc = std::move(lhs.value());
    static const std::pair<const char*, BinOp> kOps[] = {
        {"==", BinOp::kEq}, {"!=", BinOp::kNe}, {"<=", BinOp::kLe},
        {">=", BinOp::kGe}, {"<", BinOp::kLt},  {">", BinOp::kGt},
    };
    for (const auto& [text, op] : kOps) {
      if (PeekPunct(text)) {
        int line = Advance().line;
        Result<ExprPtr> rhs = ParseSum();
        if (!rhs.ok()) {
          return rhs;
        }
        return MakeBinary(op, std::move(acc), std::move(rhs.value()), line);
      }
    }
    return acc;
  }

  Result<ExprPtr> ParseSum() {
    Result<ExprPtr> lhs = ParseTerm();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr acc = std::move(lhs.value());
    while (PeekPunct("+") || PeekPunct("-")) {
      Token t = Advance();
      Result<ExprPtr> rhs = ParseTerm();
      if (!rhs.ok()) {
        return rhs;
      }
      acc = MakeBinary(t.text == "+" ? BinOp::kAdd : BinOp::kSub, std::move(acc),
                       std::move(rhs.value()), t.line);
    }
    return acc;
  }

  Result<ExprPtr> ParseTerm() {
    Result<ExprPtr> lhs = ParseFactor();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr acc = std::move(lhs.value());
    while (PeekPunct("*") || PeekPunct("/") || PeekPunct("%")) {
      Token t = Advance();
      Result<ExprPtr> rhs = ParseFactor();
      if (!rhs.ok()) {
        return rhs;
      }
      BinOp op = t.text == "*" ? BinOp::kMul : (t.text == "/" ? BinOp::kDiv : BinOp::kMod);
      acc = MakeBinary(op, std::move(acc), std::move(rhs.value()), t.line);
    }
    return acc;
  }

  Result<ExprPtr> ParseFactor() {
    const Token& t = Peek();
    if (t.kind == TokKind::kNumber) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kNumber;
      e->number = t.number;
      e->line = t.line;
      return e;
    }
    if (t.kind == TokKind::kIdent) {
      Advance();
      if (program_->FindVariable(t.text) == nullptr) {
        return Err(Format("line %d: undeclared variable %s", t.line, t.text.c_str()));
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kVariable;
      e->variable = t.text;
      e->line = t.line;
      return e;
    }
    if (PeekPunct("(")) {
      Advance();
      Result<ExprPtr> inner = ParseExpr();
      if (!inner.ok()) {
        return inner;
      }
      if (Result<> r = ExpectPunct(")"); !r.ok()) {
        return Err(r.error());
      }
      return std::move(inner.value());
    }
    if (PeekPunct("-") || PeekPunct("!")) {
      Token op = Advance();
      Result<ExprPtr> inner = ParseFactor();
      if (!inner.ok()) {
        return inner;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->un_op = op.text == "-" ? UnOp::kNeg : UnOp::kNot;
      e->lhs = std::move(inner.value());
      e->line = op.line;
      return e;
    }
    return Err(Format("line %d: expected expression, found '%s'", t.line, t.text.c_str()));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Program* program_ = nullptr;
};

}  // namespace

Result<std::unique_ptr<Program>> ParseSimpl(const std::string& source) {
  Result<std::vector<Token>> tokens = Lexer(source).Run();
  if (!tokens.ok()) {
    return Err(tokens.error());
  }
  return Parser(std::move(tokens.value())).Run();
}

}  // namespace sep
