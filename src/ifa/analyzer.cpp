#include "src/ifa/analyzer.h"

#include "src/base/strings.h"

namespace sep {

namespace {

class Analyzer {
 public:
  explicit Analyzer(const Program& program) : program_(program) {}

  FlowReport Run() {
    CheckBlock(program_.statements, FlowClass::Low());
    return std::move(report_);
  }

 private:
  FlowClass ExprClass(const Expr& expr) const {
    switch (expr.kind) {
      case Expr::Kind::kNumber:
        return FlowClass::Low();
      case Expr::Kind::kVariable: {
        const VarDecl* decl = program_.FindVariable(expr.variable);
        return decl != nullptr ? decl->security_class : FlowClass::Low();
      }
      case Expr::Kind::kBinary:
        return ExprClass(*expr.lhs).Join(ExprClass(*expr.rhs));
      case Expr::Kind::kUnary:
        return ExprClass(*expr.lhs);
    }
    return FlowClass::Low();
  }

  void CheckBlock(const std::vector<StmtPtr>& block, FlowClass pc) {
    for (const StmtPtr& stmt : block) {
      CheckStmt(*stmt, pc);
    }
  }

  void CheckStmt(const Stmt& stmt, FlowClass pc) {
    switch (stmt.kind) {
      case Stmt::Kind::kAssign: {
        ++report_.statements_checked;
        const VarDecl* decl = program_.FindVariable(stmt.target);
        const FlowClass target = decl->security_class;
        const FlowClass rhs = ExprClass(*stmt.value);
        if (!rhs.FlowsTo(target)) {
          report_.violations.push_back({stmt.line, stmt.target, program_.atoms.Describe(rhs),
                                        program_.atoms.Describe(target), false});
        }
        if (!pc.FlowsTo(target)) {
          report_.violations.push_back({stmt.line, stmt.target, program_.atoms.Describe(pc),
                                        program_.atoms.Describe(target), true});
        }
        return;
      }
      case Stmt::Kind::kIf: {
        const FlowClass guard = pc.Join(ExprClass(*stmt.condition));
        CheckBlock(stmt.body, guard);
        CheckBlock(stmt.orelse, guard);
        return;
      }
      case Stmt::Kind::kWhile: {
        const FlowClass guard = pc.Join(ExprClass(*stmt.condition));
        CheckBlock(stmt.body, guard);
        return;
      }
    }
  }

  const Program& program_;
  FlowReport report_;
};

}  // namespace

std::string FlowViolation::ToString() const {
  return Format("line %d: %s flow %s -> %s (into %s)", line, implicit ? "implicit" : "explicit",
                flow_from.c_str(), flow_to.c_str(), target.c_str());
}

std::vector<Finding> FlowReport::ToFindings(const std::string& unit) const {
  std::vector<Finding> out;
  out.reserve(violations.size());
  for (const FlowViolation& v : violations) {
    Finding f;
    f.tool = "ifa";
    f.unit = unit;
    f.kind = v.implicit ? "implicit-flow" : "explicit-flow";
    f.line = v.line;
    f.instruction = v.target + " := ...";
    f.region = v.flow_to;
    f.message = Format("%s flow %s -> %s (into %s)", v.implicit ? "implicit" : "explicit",
                       v.flow_from.c_str(), v.flow_to.c_str(), v.target.c_str());
    out.push_back(f);
  }
  return out;
}

FlowReport AnalyzeFlows(const Program& program) { return Analyzer(program).Run(); }

}  // namespace sep
