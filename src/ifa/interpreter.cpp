#include "src/ifa/interpreter.h"

#include "src/base/strings.h"

namespace sep {

namespace {

class Interp {
 public:
  Interp(const Program& program, SimplEnv env, const InterpOptions& options)
      : program_(program), env_(std::move(env)), options_(options) {}

  Result<SimplEnv> Run() {
    for (const VarDecl& v : program_.variables) {
      env_.try_emplace(v.name, 0);
    }
    if (Result<> r = RunBlock(program_.statements); !r.ok()) {
      return Err(r.error());
    }
    return std::move(env_);
  }

 private:
  Result<std::int64_t> Eval(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kNumber:
        return expr.number;
      case Expr::Kind::kVariable:
        return env_[expr.variable];
      case Expr::Kind::kUnary: {
        Result<std::int64_t> v = Eval(*expr.lhs);
        if (!v.ok()) {
          return v;
        }
        return expr.un_op == UnOp::kNeg ? -*v : static_cast<std::int64_t>(*v == 0);
      }
      case Expr::Kind::kBinary: {
        Result<std::int64_t> l = Eval(*expr.lhs);
        if (!l.ok()) {
          return l;
        }
        Result<std::int64_t> r = Eval(*expr.rhs);
        if (!r.ok()) {
          return r;
        }
        switch (expr.bin_op) {
          case BinOp::kAdd:
            return *l + *r;
          case BinOp::kSub:
            return *l - *r;
          case BinOp::kMul:
            return *l * *r;
          case BinOp::kDiv:
            if (*r == 0) {
              return Err(Format("line %d: division by zero", expr.line));
            }
            return *l / *r;
          case BinOp::kMod:
            if (*r == 0) {
              return Err(Format("line %d: modulo by zero", expr.line));
            }
            return *l % *r;
          case BinOp::kEq:
            return static_cast<std::int64_t>(*l == *r);
          case BinOp::kNe:
            return static_cast<std::int64_t>(*l != *r);
          case BinOp::kLt:
            return static_cast<std::int64_t>(*l < *r);
          case BinOp::kLe:
            return static_cast<std::int64_t>(*l <= *r);
          case BinOp::kGt:
            return static_cast<std::int64_t>(*l > *r);
          case BinOp::kGe:
            return static_cast<std::int64_t>(*l >= *r);
          case BinOp::kAnd:
            return static_cast<std::int64_t>(*l != 0 && *r != 0);
          case BinOp::kOr:
            return static_cast<std::int64_t>(*l != 0 || *r != 0);
        }
        return Err("bad binary op");
      }
    }
    return Err("bad expression");
  }

  Result<> RunBlock(const std::vector<StmtPtr>& block) {
    for (const StmtPtr& stmt : block) {
      if (Result<> r = RunStmt(*stmt); !r.ok()) {
        return r;
      }
    }
    return Ok();
  }

  Result<> RunStmt(const Stmt& stmt) {
    if (++steps_ > options_.max_steps) {
      return Err("step limit exceeded");
    }
    switch (stmt.kind) {
      case Stmt::Kind::kAssign: {
        Result<std::int64_t> v = Eval(*stmt.value);
        if (!v.ok()) {
          return Err(v.error());
        }
        env_[stmt.target] = *v;
        return Ok();
      }
      case Stmt::Kind::kIf: {
        Result<std::int64_t> cond = Eval(*stmt.condition);
        if (!cond.ok()) {
          return Err(cond.error());
        }
        return RunBlock(*cond != 0 ? stmt.body : stmt.orelse);
      }
      case Stmt::Kind::kWhile: {
        while (true) {
          Result<std::int64_t> cond = Eval(*stmt.condition);
          if (!cond.ok()) {
            return Err(cond.error());
          }
          if (*cond == 0) {
            return Ok();
          }
          if (Result<> r = RunBlock(stmt.body); !r.ok()) {
            return r;
          }
          if (++steps_ > options_.max_steps) {
            return Err("step limit exceeded");
          }
        }
      }
    }
    return Ok();
  }

  const Program& program_;
  SimplEnv env_;
  const InterpOptions& options_;
  std::size_t steps_ = 0;
};

}  // namespace

Result<SimplEnv> RunSimpl(const Program& program, SimplEnv env, const InterpOptions& options) {
  return Interp(program, std::move(env), options).Run();
}

}  // namespace sep
