// Concrete interpreter for SIMPL.
//
// Used to demonstrate that programs IFA rejects (like the kernel SWAP) are
// functionally correct and leak nothing: tests run the program from
// environments differing only in "other-coloured" values and compare the
// colour-projected results — a miniature of the Proof-of-Separability
// two-run argument, at the language level.
#ifndef SRC_IFA_INTERPRETER_H_
#define SRC_IFA_INTERPRETER_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/base/result.h"
#include "src/ifa/ast.h"

namespace sep {

using SimplEnv = std::map<std::string, std::int64_t>;

struct InterpOptions {
  std::size_t max_steps = 100000;  // guards against runaway loops
};

// Runs the program over `env` (missing variables default to 0); returns the
// final environment. Errors on division by zero or step exhaustion.
Result<SimplEnv> RunSimpl(const Program& program, SimplEnv env,
                          const InterpOptions& options = {});

}  // namespace sep

#endif  // SRC_IFA_INTERPRETER_H_
