#include "src/ifa/semantic.h"

#include <algorithm>

#include "src/base/rng.h"
#include "src/ifa/interpreter.h"

namespace sep {

bool SemanticallyLeaks(const Program& program, const std::vector<std::string>& secrets,
                       const std::vector<std::string>& observables,
                       const LeakProbeOptions& options) {
  Rng rng(options.seed);
  for (int trial = 0; trial < options.trials; ++trial) {
    SimplEnv base;
    for (const VarDecl& v : program.variables) {
      base[v.name] = static_cast<std::int64_t>(rng.NextBelow(
          static_cast<std::uint64_t>(options.value_range)));
    }
    SimplEnv varied = base;
    for (const std::string& secret : secrets) {
      varied[secret] = static_cast<std::int64_t>(rng.NextBelow(
          static_cast<std::uint64_t>(options.value_range)));
    }

    Result<SimplEnv> a = RunSimpl(program, base);
    Result<SimplEnv> b = RunSimpl(program, varied);
    if (!a.ok() || !b.ok()) {
      // Non-termination or arithmetic faults under one input but not the
      // other would themselves be a channel; treat as a leak only when the
      // outcomes differ in kind.
      if (a.ok() != b.ok()) {
        return true;
      }
      continue;
    }
    for (const std::string& obs : observables) {
      if ((*a)[obs] != (*b)[obs]) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace sep
