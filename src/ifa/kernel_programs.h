// The catalogue of kernel-style SIMPL programs behind experiment E6: for
// each program we know the syntactic IFA verdict AND the semantic ground
// truth, so the table contrasting them (bench_ifa_vs_pos) is reproducible
// and self-checking.
//
// The stars of the catalogue are the SWAP variants from the paper's
// Section 4: the context-switch "must access both RED and BLACK values",
// so IFA rejects it under any labelling of the shared registers, although
// it is manifestly secure.
#ifndef SRC_IFA_KERNEL_PROGRAMS_H_
#define SRC_IFA_KERNEL_PROGRAMS_H_

#include <string>
#include <vector>

namespace sep {

struct CatalogEntry {
  std::string name;
  std::string description;
  std::string source;                     // SIMPL text
  bool ifa_certifies;                     // expected syntactic verdict
  bool actually_leaks;                    // expected semantic ground truth
  std::vector<std::string> secrets;      // two-run experiment: varied inputs
  std::vector<std::string> observables;  // two-run experiment: compared outputs
};

// The full catalogue, in presentation order.
const std::vector<CatalogEntry>& KernelProgramCatalog();

}  // namespace sep

#endif  // SRC_IFA_KERNEL_PROGRAMS_H_
