// The security-class lattice for information flow analysis.
//
// Denning-style certification [8] needs a lattice of security classes with
// a partial order ⊑ ("may flow to") and least upper bounds. We use the
// powerset lattice over named atomic principals: a class is a set of
// atoms, A ⊑ B iff A ⊆ B, lub = union. LOW is the empty set; anything
// flows into a superset. This is exactly the structure needed to model the
// paper's RED/BLACK examples (RED, BLACK, RED|BLACK as "system high").
#ifndef SRC_IFA_LATTICE_H_
#define SRC_IFA_LATTICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"

namespace sep {

class FlowClass {
 public:
  FlowClass() = default;
  explicit FlowClass(std::uint32_t atoms) : atoms_(atoms) {}

  static FlowClass Low() { return FlowClass(); }

  bool FlowsTo(const FlowClass& other) const { return (atoms_ & ~other.atoms_) == 0; }
  FlowClass Join(const FlowClass& other) const { return FlowClass(atoms_ | other.atoms_); }
  FlowClass Meet(const FlowClass& other) const { return FlowClass(atoms_ & other.atoms_); }

  bool IsLow() const { return atoms_ == 0; }
  std::uint32_t atoms() const { return atoms_; }
  bool operator==(const FlowClass& other) const = default;

 private:
  std::uint32_t atoms_ = 0;
};

// Per-program registry mapping atom names to lattice bits.
class FlowAtoms {
 public:
  // Returns the single-atom class for `name`, registering it if new.
  Result<FlowClass> GetOrRegister(const std::string& name);

  // Existing atom or error.
  Result<FlowClass> Lookup(const std::string& name) const;

  std::string Describe(const FlowClass& cls) const;

  int count() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
};

}  // namespace sep

#endif  // SRC_IFA_LATTICE_H_
