#include "src/machine/cpu.h"

#include "src/machine/interp.h"

namespace sep {

// The interpreter body lives in src/machine/interp.h as a template over the
// bus type; this instantiation against the abstract Bus is the stable public
// entry point. The Machine instantiates the same template with its concrete
// bus for the devirtualized fast path.
CpuEvent ExecuteOne(CpuState& state, Bus& bus) {
  return interp::ExecuteOneT<Bus>(state, bus);
}

}  // namespace sep
