#include "src/machine/cpu.h"

namespace sep {

namespace {

// Where an operand lives after address resolution.
enum class Loc : std::uint8_t { kRegister, kMemory, kImmediate };

struct Operand {
  Loc loc = Loc::kRegister;
  int reg = 0;         // kRegister
  VirtAddr addr = 0;   // kMemory
  Word imm = 0;        // kImmediate
};

struct Ctx {
  CpuState st;  // scratch copy, committed on success
  Bus& bus;
  CpuEvent event;  // sticky fault record

  bool failed() const { return event.kind != CpuEventKind::kOk; }

  void Fail(CpuEventKind kind, VirtAddr addr = 0) {
    if (!failed()) {
      event.kind = kind;
      event.fault_addr = addr;
    }
  }

  Word FetchWord() {
    Word w = 0;
    if (!bus.Read(st.pc(), AccessKind::kReadInstruction, &w)) {
      Fail(CpuEventKind::kBusFault, st.pc());
      return 0;
    }
    st.set_pc(static_cast<Word>(st.pc() + 1));
    return w;
  }

  Word ReadMem(VirtAddr addr) {
    Word w = 0;
    if (!bus.Read(addr, AccessKind::kReadData, &w)) {
      Fail(CpuEventKind::kBusFault, addr);
      return 0;
    }
    return w;
  }

  void WriteMem(VirtAddr addr, Word value) {
    if (!bus.Write(addr, value)) {
      Fail(CpuEventKind::kBusFault, addr);
    }
  }

  void Push(Word value) {
    st.set_sp(static_cast<Word>(st.sp() - 1));
    WriteMem(st.sp(), value);
  }

  Word Pop() {
    Word value = ReadMem(st.sp());
    st.set_sp(static_cast<Word>(st.sp() + 1));
    return value;
  }

  // Resolves an operand spec, fetching the extension word if needed.
  Operand Resolve(const OperandSpec& spec, bool is_dst) {
    Operand op;
    switch (spec.mode) {
      case AddrMode::kReg:
        op.loc = Loc::kRegister;
        op.reg = spec.reg;
        return op;
      case AddrMode::kRegDeferred:
        op.loc = Loc::kMemory;
        op.addr = st.regs[spec.reg];
        return op;
      case AddrMode::kImmediate: {
        Word ext = FetchWord();
        if (is_dst) {
          op.loc = Loc::kMemory;  // absolute addressing
          op.addr = ext;
        } else {
          op.loc = Loc::kImmediate;
          op.imm = ext;
        }
        return op;
      }
      case AddrMode::kIndexed: {
        Word ext = FetchWord();
        op.loc = Loc::kMemory;
        op.addr = static_cast<Word>(ext + st.regs[spec.reg]);
        return op;
      }
    }
    return op;
  }

  Word ReadOperand(const Operand& op) {
    switch (op.loc) {
      case Loc::kRegister:
        return st.regs[op.reg];
      case Loc::kMemory:
        return ReadMem(op.addr);
      case Loc::kImmediate:
        return op.imm;
    }
    return 0;
  }

  void WriteOperand(const Operand& op, Word value) {
    switch (op.loc) {
      case Loc::kRegister:
        st.regs[op.reg] = value;
        return;
      case Loc::kMemory:
        WriteMem(op.addr, value);
        return;
      case Loc::kImmediate:
        Fail(CpuEventKind::kIllegalInstruction);
        return;
    }
  }

  // Effective address for control transfer; register mode is illegal
  // (matching the PDP-11's treatment of JMP Rn).
  std::optional<VirtAddr> JumpTarget(const OperandSpec& spec) {
    switch (spec.mode) {
      case AddrMode::kReg:
        Fail(CpuEventKind::kIllegalInstruction);
        return std::nullopt;
      case AddrMode::kRegDeferred:
        return st.regs[spec.reg];
      case AddrMode::kImmediate:
        return FetchWord();
      case AddrMode::kIndexed: {
        Word ext = FetchWord();
        return static_cast<Word>(ext + st.regs[spec.reg]);
      }
    }
    return std::nullopt;
  }
};

bool SignedOverflowAdd(Word a, Word b, Word r) {
  return ((a ^ r) & (b ^ r) & 0x8000) != 0;
}

bool SignedOverflowSub(Word a, Word b, Word r) {
  // r = a - b
  return ((a ^ b) & (a ^ r) & 0x8000) != 0;
}

void ExecTwoOp(Ctx& ctx, const DecodedInsn& insn) {
  Operand src = ctx.Resolve(insn.src, /*is_dst=*/false);
  if (ctx.failed()) {
    return;
  }
  Operand dst = ctx.Resolve(insn.dst, /*is_dst=*/true);
  if (ctx.failed()) {
    return;
  }
  Word s = ctx.ReadOperand(src);
  if (ctx.failed()) {
    return;
  }

  Psw& psw = ctx.st.psw;
  switch (insn.opcode) {
    case Opcode::kMov:
      ctx.WriteOperand(dst, s);
      psw.SetNZ(s, false, psw.c());
      return;
    case Opcode::kAdd: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d + s);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, SignedOverflowAdd(d, s, r), r < d);
      return;
    }
    case Opcode::kSub: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d - s);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, SignedOverflowSub(d, s, r), d < s);
      return;
    }
    case Opcode::kCmp: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(s - d);
      psw.SetNZ(r, SignedOverflowSub(s, d, r), s < d);
      return;
    }
    case Opcode::kBit: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(s & d);
      psw.SetNZ(r, false, psw.c());
      return;
    }
    case Opcode::kBic: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d & static_cast<Word>(~s));
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, false, psw.c());
      return;
    }
    case Opcode::kBis: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d | s);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, false, psw.c());
      return;
    }
    case Opcode::kXor: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d ^ s);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, false, psw.c());
      return;
    }
    default:
      ctx.Fail(CpuEventKind::kIllegalInstruction);
      return;
  }
}

void ExecOneOp(Ctx& ctx, const DecodedInsn& insn) {
  Psw& psw = ctx.st.psw;

  if (insn.opcode == Opcode::kJmp || insn.opcode == Opcode::kJsr) {
    std::optional<VirtAddr> target = ctx.JumpTarget(insn.dst);
    if (ctx.failed() || !target.has_value()) {
      return;
    }
    if (insn.opcode == Opcode::kJsr) {
      ctx.Push(ctx.st.pc());
      if (ctx.failed()) {
        return;
      }
    }
    ctx.st.set_pc(static_cast<Word>(*target));
    return;
  }

  Operand dst = ctx.Resolve(insn.dst, /*is_dst=*/true);
  if (ctx.failed()) {
    return;
  }

  switch (insn.opcode) {
    case Opcode::kClr:
      ctx.WriteOperand(dst, 0);
      psw.SetFlags(false, true, false, false);
      return;
    case Opcode::kTst: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      psw.SetNZ(d, false, false);
      return;
    }
    case Opcode::kInc: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d + 1);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, r == 0x8000, psw.c());
      return;
    }
    case Opcode::kDec: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(d - 1);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, d == 0x8000, psw.c());
      return;
    }
    case Opcode::kNeg: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(0 - d);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, r == 0x8000, r != 0);
      return;
    }
    case Opcode::kCom: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      Word r = static_cast<Word>(~d);
      ctx.WriteOperand(dst, r);
      psw.SetNZ(r, false, true);
      return;
    }
    case Opcode::kAsr: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      bool c = (d & 1) != 0;
      Word r = static_cast<Word>((d >> 1) | (d & 0x8000));
      ctx.WriteOperand(dst, r);
      bool n = (r & 0x8000) != 0;
      psw.SetFlags(n, r == 0, n != c, c);
      return;
    }
    case Opcode::kAsl: {
      Word d = ctx.ReadOperand(dst);
      if (ctx.failed()) {
        return;
      }
      bool c = (d & 0x8000) != 0;
      Word r = static_cast<Word>(d << 1);
      ctx.WriteOperand(dst, r);
      bool n = (r & 0x8000) != 0;
      psw.SetFlags(n, r == 0, n != c, c);
      return;
    }
    default:
      ctx.Fail(CpuEventKind::kIllegalInstruction);
      return;
  }
}

bool BranchTaken(Opcode op, const Psw& psw) {
  const bool n = psw.n();
  const bool z = psw.z();
  const bool v = psw.v();
  const bool c = psw.c();
  switch (op) {
    case Opcode::kBr:
      return true;
    case Opcode::kBeq:
      return z;
    case Opcode::kBne:
      return !z;
    case Opcode::kBmi:
      return n;
    case Opcode::kBpl:
      return !n;
    case Opcode::kBcs:
      return c;
    case Opcode::kBcc:
      return !c;
    case Opcode::kBvs:
      return v;
    case Opcode::kBvc:
      return !v;
    case Opcode::kBlt:
      return n != v;
    case Opcode::kBge:
      return n == v;
    case Opcode::kBgt:
      return !z && (n == v);
    case Opcode::kBle:
      return z || (n != v);
    default:
      return false;
  }
}

}  // namespace

CpuEvent ExecuteOne(CpuState& state, Bus& bus) {
  Ctx ctx{state, bus, {}};

  Word insn_word = ctx.FetchWord();
  if (ctx.failed()) {
    return ctx.event;
  }

  std::optional<DecodedInsn> insn = Decode(insn_word);
  if (!insn.has_value()) {
    ctx.Fail(CpuEventKind::kIllegalInstruction);
    return ctx.event;
  }

  const bool user_mode = ctx.st.psw.mode() == CpuMode::kUser;

  switch (insn->opcode) {
    case Opcode::kHalt:
      if (user_mode) {
        ctx.Fail(CpuEventKind::kIllegalInstruction);
        return ctx.event;
      }
      state = ctx.st;
      return {CpuEventKind::kHalt, 0, 0};
    case Opcode::kNop:
      break;
    case Opcode::kWait:
      if (user_mode) {
        ctx.Fail(CpuEventKind::kIllegalInstruction);
        return ctx.event;
      }
      state = ctx.st;
      return {CpuEventKind::kWait, 0, 0};
    case Opcode::kRti: {
      if (user_mode) {
        ctx.Fail(CpuEventKind::kIllegalInstruction);
        return ctx.event;
      }
      Word pc = ctx.Pop();
      Word psw = ctx.Pop();
      if (ctx.failed()) {
        return ctx.event;
      }
      ctx.st.set_pc(pc);
      ctx.st.psw.set_bits(psw);
      break;
    }
    case Opcode::kRts: {
      Word pc = ctx.Pop();
      if (ctx.failed()) {
        return ctx.event;
      }
      ctx.st.set_pc(pc);
      break;
    }
    case Opcode::kTrap:
      state = ctx.st;
      return {CpuEventKind::kTrap, insn->trap_code, 0};
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kCmp:
    case Opcode::kBit:
    case Opcode::kBic:
    case Opcode::kBis:
    case Opcode::kXor:
      ExecTwoOp(ctx, *insn);
      break;
    case Opcode::kClr:
    case Opcode::kInc:
    case Opcode::kDec:
    case Opcode::kNeg:
    case Opcode::kCom:
    case Opcode::kTst:
    case Opcode::kAsr:
    case Opcode::kAsl:
    case Opcode::kJmp:
    case Opcode::kJsr:
      ExecOneOp(ctx, *insn);
      break;
    default:
      // Branches.
      if (BranchTaken(insn->opcode, ctx.st.psw)) {
        ctx.st.set_pc(static_cast<Word>(ctx.st.pc() + insn->branch_offset));
      }
      break;
  }

  if (ctx.failed()) {
    return ctx.event;
  }
  state = ctx.st;
  return ctx.event;
}

}  // namespace sep
