#include "src/machine/devices.h"

namespace sep {

// --- SerialLine ---

SerialLine::SerialLine(std::string name, int vector, int priority, int transmit_delay)
    : Device(std::move(name), vector, priority, 4), transmit_delay_(transmit_delay) {}

std::unique_ptr<Device> SerialLine::Clone() const {
  auto copy = std::make_unique<SerialLine>(name(), vector(), priority(), transmit_delay_);
  CloneBaseInto(*copy);
  copy->rcsr_ = rcsr_;
  copy->rbuf_ = rbuf_;
  copy->xcsr_ = xcsr_;
  copy->xbuf_ = xbuf_;
  copy->tx_countdown_ = tx_countdown_;
  return copy;
}

Word SerialLine::ReadRegister(int offset) {
  switch (offset) {
    case 0:
      return rcsr_;
    case 1:
      // Reading the receive buffer acknowledges the character.
      rcsr_ &= static_cast<Word>(~kCsrDone);
      return rbuf_;
    case 2:
      return xcsr_;
    case 3:
      return xbuf_;
    default:
      return 0;
  }
}

void SerialLine::WriteRegister(int offset, Word value) {
  switch (offset) {
    case 0: {
      // Only IE is writable; DONE is hardware-controlled. As on DEC
      // hardware, enabling IE while DONE is already set raises the
      // interrupt immediately, so no completion is ever lost.
      const bool ie_rising = (value & kCsrIe) && !(rcsr_ & kCsrIe);
      rcsr_ = static_cast<Word>((rcsr_ & kCsrDone) | (value & kCsrIe));
      if (ie_rising && (rcsr_ & kCsrDone)) {
        RaiseInterrupt();
      }
      break;
    }
    case 1:
      break;  // RBUF is read-only
    case 2: {
      const bool ie_rising = (value & kCsrIe) && !(xcsr_ & kCsrIe);
      xcsr_ = static_cast<Word>((xcsr_ & kCsrDone) | (value & kCsrIe));
      if (ie_rising && (xcsr_ & kCsrDone)) {
        RaiseInterrupt();
      }
      break;
    }
    case 3:
      if (xcsr_ & kCsrDone) {
        xbuf_ = value;
        xcsr_ &= static_cast<Word>(~kCsrDone);
        tx_countdown_ = transmit_delay_;
      }
      // Writing while busy is ignored (hardware would garble; we drop).
      break;
    default:
      break;
  }
}

void SerialLine::Step() {
  // Receive side: latch the next environment word when the buffer is free.
  if (!(rcsr_ & kCsrDone) && !rx_from_env_.empty()) {
    rbuf_ = rx_from_env_.front();
    rx_from_env_.pop_front();
    rcsr_ |= kCsrDone;
    if (rcsr_ & kCsrIe) {
      RaiseInterrupt();
    }
  }
  // Transmit side: count down the in-flight word.
  if (!(xcsr_ & kCsrDone)) {
    if (--tx_countdown_ <= 0) {
      tx_to_env_.push_back(xbuf_);
      xcsr_ |= kCsrDone;
      if (xcsr_ & kCsrIe) {
        RaiseInterrupt();
      }
    }
  }
}

std::vector<Word> SerialLine::SnapshotState() const {
  std::vector<Word> out = {rcsr_, rbuf_, xcsr_, xbuf_, static_cast<Word>(tx_countdown_),
                           static_cast<Word>(interrupt_pending())};
  AppendQueue(out, rx_from_env_);
  AppendQueue(out, tx_to_env_);
  return out;
}

bool SerialLine::RestoreState(std::span<const Word> state) {
  if (state.size() < 6) {
    return false;
  }
  rcsr_ = state[0];
  rbuf_ = state[1];
  xcsr_ = state[2];
  xbuf_ = state[3];
  tx_countdown_ = static_cast<int>(state[4]);
  SetInterruptLine(state[5] != 0);
  std::size_t pos = 6;
  return ReadQueue(state, &pos, rx_from_env_) && ReadQueue(state, &pos, tx_to_env_) &&
         pos == state.size();
}

// --- LineClock ---

LineClock::LineClock(std::string name, int vector, int priority, int interval)
    : Device(std::move(name), vector, priority, 1), interval_(interval), countdown_(interval) {}

std::unique_ptr<Device> LineClock::Clone() const {
  auto copy = std::make_unique<LineClock>(name(), vector(), priority(), interval_);
  CloneBaseInto(*copy);
  copy->lks_ = lks_;
  copy->countdown_ = countdown_;
  return copy;
}

Word LineClock::ReadRegister(int offset) { return offset == 0 ? lks_ : 0; }

void LineClock::WriteRegister(int offset, Word value) {
  if (offset == 0) {
    // Writing clears DONE; IE is writable.
    lks_ = static_cast<Word>(value & kCsrIe);
  }
}

void LineClock::Step() {
  if (--countdown_ <= 0) {
    countdown_ = interval_;
    lks_ |= kCsrDone;
    if (lks_ & kCsrIe) {
      RaiseInterrupt();
    }
  }
}

std::vector<Word> LineClock::SnapshotState() const {
  return {lks_, static_cast<Word>(countdown_), static_cast<Word>(interrupt_pending())};
}

bool LineClock::RestoreState(std::span<const Word> state) {
  if (state.size() != 3) {
    return false;
  }
  lks_ = state[0];
  countdown_ = static_cast<int>(state[1]);
  SetInterruptLine(state[2] != 0);
  // The snapshot omits the environment queues because nothing ever reads a
  // clock's queues; restore to the canonical (empty) representation.
  rx_from_env_.clear();
  tx_to_env_.clear();
  return true;
}

// --- LinePrinter ---

LinePrinter::LinePrinter(std::string name, int vector, int priority, int print_delay)
    : Device(std::move(name), vector, priority, 2), print_delay_(print_delay) {}

std::unique_ptr<Device> LinePrinter::Clone() const {
  auto copy = std::make_unique<LinePrinter>(name(), vector(), priority(), print_delay_);
  CloneBaseInto(*copy);
  copy->lps_ = lps_;
  copy->pending_char_ = pending_char_;
  copy->countdown_ = countdown_;
  return copy;
}

Word LinePrinter::ReadRegister(int offset) { return offset == 0 ? lps_ : 0; }

void LinePrinter::WriteRegister(int offset, Word value) {
  switch (offset) {
    case 0: {
      const bool ie_rising = (value & kCsrIe) && !(lps_ & kCsrIe);
      lps_ = static_cast<Word>((lps_ & kCsrDone) | (value & kCsrIe));
      if (ie_rising && (lps_ & kCsrDone)) {
        RaiseInterrupt();
      }
      break;
    }
    case 1:
      if (lps_ & kCsrDone) {
        pending_char_ = static_cast<Word>(value & 0xFF);
        lps_ &= static_cast<Word>(~kCsrDone);
        countdown_ = print_delay_;
      }
      break;
    default:
      break;
  }
}

void LinePrinter::Step() {
  if (!(lps_ & kCsrDone)) {
    if (--countdown_ <= 0) {
      tx_to_env_.push_back(pending_char_);
      lps_ |= kCsrDone;
      if (lps_ & kCsrIe) {
        RaiseInterrupt();
      }
    }
  }
}

std::vector<Word> LinePrinter::SnapshotState() const {
  std::vector<Word> out = {lps_, pending_char_, static_cast<Word>(countdown_),
                           static_cast<Word>(interrupt_pending())};
  AppendQueue(out, rx_from_env_);
  AppendQueue(out, tx_to_env_);
  return out;
}

bool LinePrinter::RestoreState(std::span<const Word> state) {
  if (state.size() < 4) {
    return false;
  }
  lps_ = state[0];
  pending_char_ = state[1];
  countdown_ = static_cast<int>(state[2]);
  SetInterruptLine(state[3] != 0);
  std::size_t pos = 4;
  return ReadQueue(state, &pos, rx_from_env_) && ReadQueue(state, &pos, tx_to_env_) &&
         pos == state.size();
}

// --- CryptoUnit ---

CryptoUnit::CryptoUnit(std::string name, int vector, int priority, std::uint64_t key, int latency)
    : Device(std::move(name), vector, priority, 3), key_(key), latency_(latency) {}

std::unique_ptr<Device> CryptoUnit::Clone() const {
  auto copy = std::make_unique<CryptoUnit>(name(), vector(), priority(), key_, latency_);
  CloneBaseInto(*copy);
  copy->ccsr_ = ccsr_;
  copy->data_out_ = data_out_;
  copy->pending_in_ = pending_in_;
  copy->busy_ = busy_;
  copy->countdown_ = countdown_;
  copy->op_count_ = op_count_;
  return copy;
}

Word CryptoUnit::Keystream(std::uint64_t key, std::uint64_t n) {
  // splitmix64 finalizer over (key, n); only the low 16 bits are used.
  std::uint64_t z = key ^ (n + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<Word>(z & 0xFFFF);
}

Word CryptoUnit::ReadRegister(int offset) {
  switch (offset) {
    case 0:
      return ccsr_;
    case 2:
      ccsr_ &= static_cast<Word>(~kCsrDone);
      return data_out_;
    default:
      return 0;
  }
}

void CryptoUnit::WriteRegister(int offset, Word value) {
  switch (offset) {
    case 0: {
      const bool ie_rising = (value & kCsrIe) && !(ccsr_ & kCsrIe);
      ccsr_ = static_cast<Word>((ccsr_ & kCsrDone) | (value & (kCsrIe | 1)));
      if (ie_rising && (ccsr_ & kCsrDone)) {
        RaiseInterrupt();
      }
      break;
    }
    case 1:
      if (!busy_) {
        pending_in_ = value;
        busy_ = true;
        countdown_ = latency_;
      }
      break;
    default:
      break;
  }
}

void CryptoUnit::Step() {
  if (busy_) {
    if (--countdown_ <= 0) {
      data_out_ = static_cast<Word>(pending_in_ ^ Keystream(key_, op_count_++));
      busy_ = false;
      ccsr_ |= kCsrDone;
      if (ccsr_ & kCsrIe) {
        RaiseInterrupt();
      }
    }
  }
}

std::vector<Word> CryptoUnit::SnapshotState() const {
  return {ccsr_,
          data_out_,
          pending_in_,
          static_cast<Word>(busy_),
          static_cast<Word>(countdown_),
          static_cast<Word>(op_count_ & 0xFFFF),
          static_cast<Word>((op_count_ >> 16) & 0xFFFF),
          static_cast<Word>((op_count_ >> 32) & 0xFFFF),
          static_cast<Word>((op_count_ >> 48) & 0xFFFF),
          static_cast<Word>(interrupt_pending())};
}

bool CryptoUnit::RestoreState(std::span<const Word> state) {
  if (state.size() != 10) {
    return false;
  }
  ccsr_ = state[0];
  data_out_ = state[1];
  pending_in_ = state[2];
  busy_ = state[3] != 0;
  countdown_ = static_cast<int>(state[4]);
  op_count_ = static_cast<std::uint64_t>(state[5]) | (static_cast<std::uint64_t>(state[6]) << 16) |
              (static_cast<std::uint64_t>(state[7]) << 32) |
              (static_cast<std::uint64_t>(state[8]) << 48);
  SetInterruptLine(state[9] != 0);
  // Like LineClock, the crypto unit does its I/O through registers; the
  // unused environment queues are not in the snapshot.
  rx_from_env_.clear();
  tx_to_env_.clear();
  return true;
}

}  // namespace sep

// --- Perturb implementations -------------------------------------------------
//
// Each implementation randomizes the device's internal state while keeping
// its representation invariants (countdowns within range, DONE/busy flags
// consistent) and leaving the interrupt line alone.

namespace sep {

void SerialLine::Perturb(Rng& rng) {
  Device::Perturb(rng);
  rcsr_ = static_cast<Word>((rng.Next() & kCsrIe) | (rng.NextChance(1, 2) ? kCsrDone : 0));
  rbuf_ = static_cast<Word>(rng.Next() & 0xFFFF);
  xbuf_ = static_cast<Word>(rng.Next() & 0xFFFF);
  if (rng.NextChance(1, 2)) {
    xcsr_ = static_cast<Word>((rng.Next() & kCsrIe) | kCsrDone);
    tx_countdown_ = 0;
  } else {
    xcsr_ = static_cast<Word>(rng.Next() & kCsrIe);
    tx_countdown_ = static_cast<int>(rng.NextInRange(1, transmit_delay_));
  }
}

void LineClock::Perturb(Rng& rng) {
  Device::Perturb(rng);
  lks_ = static_cast<Word>((rng.Next() & kCsrIe) | (rng.NextChance(1, 2) ? kCsrDone : 0));
  countdown_ = static_cast<int>(rng.NextInRange(1, interval_));
}

void LinePrinter::Perturb(Rng& rng) {
  Device::Perturb(rng);
  pending_char_ = static_cast<Word>(rng.Next() & 0xFF);
  if (rng.NextChance(1, 2)) {
    lps_ = static_cast<Word>((rng.Next() & kCsrIe) | kCsrDone);
    countdown_ = 0;
  } else {
    lps_ = static_cast<Word>(rng.Next() & kCsrIe);
    countdown_ = static_cast<int>(rng.NextInRange(1, print_delay_));
  }
}

void CryptoUnit::Perturb(Rng& rng) {
  Device::Perturb(rng);
  data_out_ = static_cast<Word>(rng.Next() & 0xFFFF);
  pending_in_ = static_cast<Word>(rng.Next() & 0xFFFF);
  op_count_ = rng.NextBelow(1 << 20);
  if (rng.NextChance(1, 2)) {
    busy_ = false;
    countdown_ = 0;
    ccsr_ = static_cast<Word>((rng.Next() & (kCsrIe | 1)) | (rng.NextChance(1, 2) ? kCsrDone : 0));
  } else {
    busy_ = true;
    countdown_ = static_cast<int>(rng.NextInRange(1, latency_));
    ccsr_ = static_cast<Word>(rng.Next() & (kCsrIe | 1));
  }
}

}  // namespace sep
