// The SM-11 memory management unit.
//
// Modelled on the PDP-11/34 KT11 unit the SUE kernel programmed: a small set
// of page registers per processor mode maps the 16-bit virtual space onto
// the larger physical space with per-page length and access control. The
// separation kernel achieves the mutual isolation of its regimes (and its
// own protection) purely by programming these registers — exactly as the
// paper describes for the SUE — and the Proof-of-Separability checker treats
// the register contents as part of the concrete machine state.
//
// Virtual addresses are 16-bit word addresses: the top 3 bits select one of
// 8 pages, the low 13 bits are the offset within the page (so a full page
// spans 8192 words). A page register holds:
//   base   physical word address of the page frame
//   length number of valid words (0 = page disabled)
//   access kNone / kReadOnly / kReadWrite
#ifndef SRC_MACHINE_MMU_H_
#define SRC_MACHINE_MMU_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/base/hash.h"
#include "src/base/types.h"

namespace sep {

enum class CpuMode : std::uint8_t { kKernel = 0, kUser = 1 };

enum class PageAccess : std::uint8_t { kNone = 0, kReadOnly = 1, kReadWrite = 2 };

inline constexpr int kPagesPerMode = 8;
inline constexpr int kPageBits = 13;
inline constexpr std::uint32_t kPageWords = 1u << kPageBits;  // 8192 words

struct PageRegister {
  PhysAddr base = 0;
  std::uint32_t length = 0;  // valid words in page; 0 disables the page
  PageAccess access = PageAccess::kNone;

  bool operator==(const PageRegister& other) const = default;
};

enum class AccessKind : std::uint8_t { kReadData, kReadInstruction, kWriteData };

// Why a translation failed; surfaced to the kernel as an abort.
enum class MmuFault : std::uint8_t {
  kPageDisabled,
  kLengthViolation,
  kAccessViolation,
};

struct Translation {
  PhysAddr phys = 0;
};

class Mmu {
 public:
  Mmu() = default;

  // Translation result: physical address, or the fault that occurred.
  struct ResultT {
    std::optional<Translation> translation;
    MmuFault fault = MmuFault::kPageDisabled;
  };

  ResultT Translate(CpuMode mode, VirtAddr vaddr, AccessKind kind) const {
    const int page = static_cast<int>((vaddr >> kPageBits) & 0x7);
    const std::uint32_t offset = vaddr & (kPageWords - 1);
    const PageRegister& pr = regs_[static_cast<int>(mode)][page];
    ResultT out;
    if (pr.access == PageAccess::kNone || pr.length == 0) {
      out.fault = MmuFault::kPageDisabled;
      return out;
    }
    if (offset >= pr.length) {
      out.fault = MmuFault::kLengthViolation;
      return out;
    }
    if (kind == AccessKind::kWriteData && pr.access != PageAccess::kReadWrite) {
      out.fault = MmuFault::kAccessViolation;
      return out;
    }
    out.translation = Translation{pr.base + offset};
    return out;
  }

  const PageRegister& page(CpuMode mode, int index) const {
    return regs_[static_cast<int>(mode)][index];
  }

  void SetPage(CpuMode mode, int index, PageRegister reg) {
    regs_[static_cast<int>(mode)][index] = reg;
  }

  void DisableAll(CpuMode mode) {
    for (auto& pr : regs_[static_cast<int>(mode)]) {
      pr = PageRegister{};
    }
  }

  void AppendHash(Hasher& hasher) const {
    for (const auto& mode_regs : regs_) {
      for (const PageRegister& pr : mode_regs) {
        hasher.Mix(pr.base).Mix(pr.length).Mix(static_cast<std::uint64_t>(pr.access));
      }
    }
  }

  bool operator==(const Mmu& other) const = default;

 private:
  std::array<std::array<PageRegister, kPagesPerMode>, 2> regs_{};
};

}  // namespace sep

#endif  // SRC_MACHINE_MMU_H_
