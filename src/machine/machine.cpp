#include "src/machine/machine.h"

#include "src/base/logging.h"
#include "src/machine/interp.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sep {

// The bus the CPU sees: MMU translation, then RAM or I/O-page routing.
// `final` so the templated interpreter instantiation below devirtualizes
// and inlines every access on the hot path.
class MachineBus final : public Bus {
 public:
  explicit MachineBus(Machine& m) : m_(m) {}

  bool Read(VirtAddr addr, AccessKind kind, Word* out) override {
    auto tr = m_.mmu_.Translate(m_.cpu_.psw.mode(), addr, kind);
    if (!tr.translation.has_value()) {
      return false;
    }
    return PhysAccess(tr.translation->phys, /*write=*/false, out, 0);
  }

  bool Write(VirtAddr addr, Word value) override {
    auto tr = m_.mmu_.Translate(m_.cpu_.psw.mode(), addr, AccessKind::kWriteData);
    if (!tr.translation.has_value()) {
      return false;
    }
    return PhysAccess(tr.translation->phys, /*write=*/true, nullptr, value);
  }

 private:
  bool PhysAccess(PhysAddr phys, bool write, Word* out, Word value) {
    if (phys >= m_.config_.io_base) {
      const PhysAddr off = phys - m_.config_.io_base;
      const int slot = static_cast<int>(off / kDeviceRegSpan);
      const int reg = static_cast<int>(off % kDeviceRegSpan);
      if (slot >= static_cast<int>(m_.devices_.size()) ||
          reg >= m_.devices_[slot]->register_count()) {
        return false;  // bus timeout: nonexistent device register
      }
      if (write) {
        m_.devices_[slot]->WriteRegister(reg, value);
      } else {
        *out = m_.devices_[slot]->ReadRegister(reg);
      }
      return true;
    }
    if (!m_.memory_.InRange(phys)) {
      return false;
    }
    if (write) {
      m_.memory_.Write(phys, value);
    } else {
      *out = m_.memory_.Read(phys);
    }
    return true;
  }

  Machine& m_;
};

namespace {

// Handler indices for RunThreaded's dispatch table. kFormGeneric covers
// every opcode without a direct handler (HALT/WAIT/RTI/RTS/TRAP/JMP/JSR)
// and every instruction with an operand addressed through the PC register,
// whose mid-instruction PC value only the generic scratch path models.
enum DirectForm : std::uint8_t {
  kFormGeneric = 0,
  kFormNop,
  kFormBr,
  kFormBeq,
  kFormBne,
  kFormBmi,
  kFormBpl,
  kFormBcs,
  kFormBcc,
  kFormBvs,
  kFormBvc,
  kFormBlt,
  kFormBge,
  kFormBgt,
  kFormBle,
  kFormMov,
  kFormAdd,
  kFormSub,
  kFormCmp,
  kFormBit,
  kFormBic,
  kFormBis,
  kFormXor,
  kFormClr,
  kFormInc,
  kFormDec,
  kFormNeg,
  kFormCom,
  kFormTst,
  kFormAsr,
  kFormAsl,
  // Not produced by ClassifyForm: installed on a predecoded entry that
  // anchors a superblock, so the ordinary dispatch jump lands in the
  // superblock entry sequence with zero extra cost on non-anchored entries.
  kFormSbEnter,
};

bool UsesPcOperand(const OperandSpec& spec) {
  return (spec.mode == AddrMode::kReg || spec.mode == AddrMode::kRegDeferred ||
          spec.mode == AddrMode::kIndexed) &&
         spec.reg == kPc;
}

std::uint8_t ClassifyForm(const DecodedInsn& insn) {
  switch (insn.opcode) {
    case Opcode::kNop:
      return kFormNop;
    case Opcode::kBr:
      return kFormBr;
    case Opcode::kBeq:
      return kFormBeq;
    case Opcode::kBne:
      return kFormBne;
    case Opcode::kBmi:
      return kFormBmi;
    case Opcode::kBpl:
      return kFormBpl;
    case Opcode::kBcs:
      return kFormBcs;
    case Opcode::kBcc:
      return kFormBcc;
    case Opcode::kBvs:
      return kFormBvs;
    case Opcode::kBvc:
      return kFormBvc;
    case Opcode::kBlt:
      return kFormBlt;
    case Opcode::kBge:
      return kFormBge;
    case Opcode::kBgt:
      return kFormBgt;
    case Opcode::kBle:
      return kFormBle;
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kCmp:
    case Opcode::kBit:
    case Opcode::kBic:
    case Opcode::kBis:
    case Opcode::kXor: {
      if (UsesPcOperand(insn.src) || UsesPcOperand(insn.dst)) {
        return kFormGeneric;
      }
      switch (insn.opcode) {
        case Opcode::kMov:
          return kFormMov;
        case Opcode::kAdd:
          return kFormAdd;
        case Opcode::kSub:
          return kFormSub;
        case Opcode::kCmp:
          return kFormCmp;
        case Opcode::kBit:
          return kFormBit;
        case Opcode::kBic:
          return kFormBic;
        case Opcode::kBis:
          return kFormBis;
        default:
          return kFormXor;
      }
    }
    case Opcode::kClr:
    case Opcode::kInc:
    case Opcode::kDec:
    case Opcode::kNeg:
    case Opcode::kCom:
    case Opcode::kTst:
    case Opcode::kAsr:
    case Opcode::kAsl: {
      if (UsesPcOperand(insn.dst)) {
        return kFormGeneric;
      }
      switch (insn.opcode) {
        case Opcode::kClr:
          return kFormClr;
        case Opcode::kInc:
          return kFormInc;
        case Opcode::kDec:
          return kFormDec;
        case Opcode::kNeg:
          return kFormNeg;
        case Opcode::kCom:
          return kFormCom;
        case Opcode::kTst:
          return kFormTst;
        case Opcode::kAsr:
          return kFormAsr;
        default:
          return kFormAsl;
      }
    }
    default:
      return kFormGeneric;
  }
}

}  // namespace

Machine::Machine(const MachineConfig& config) : config_(config), memory_(config.memory_words) {
  SEP_CHECK(config.io_base >= config.memory_words);
  // The superblock counters only bump inside batched Run of device-free
  // machines; register them eagerly (registration is independent of the
  // obs enable flag) so the metrics inventory is the same in every
  // deployment — a kernelized sep_trace dump reports them as 0 rather
  // than omitting them.
  obs::Metrics().GetCounter("machine.superblock_builds");
  obs::Metrics().GetCounter("machine.superblock_side_exits");
  obs::Metrics().GetCounter("machine.superblock_invalidations");
}

std::unique_ptr<Machine> Machine::Clone() const {
  auto copy = std::make_unique<Machine>(config_);
  copy->memory_ = memory_;
  copy->mmu_ = mmu_;
  copy->cpu_ = cpu_;
  for (const auto& dev : devices_) {
    copy->devices_.push_back(dev->Clone());
  }
  copy->halted_ = halted_;
  copy->waiting_ = waiting_;
  copy->tick_ = tick_;
  return copy;
}

int Machine::AddDevice(std::unique_ptr<Device> device) {
  devices_.push_back(std::move(device));
  return static_cast<int>(devices_.size()) - 1;
}

Device* Machine::FindDevice(const std::string& name) {
  for (auto& dev : devices_) {
    if (dev->name() == name) {
      return dev.get();
    }
  }
  return nullptr;
}

Word Machine::PhysRead(PhysAddr addr) const {
  if (addr >= config_.io_base) {
    const PhysAddr off = addr - config_.io_base;
    const int slot = static_cast<int>(off / kDeviceRegSpan);
    const int reg = static_cast<int>(off % kDeviceRegSpan);
    SEP_CHECK(slot < static_cast<int>(devices_.size()));
    // Register reads can have side effects, so a const machine must go
    // through the non-const overload; tests use device accessors instead.
    return const_cast<Device&>(*devices_[slot]).ReadRegister(reg);
  }
  return memory_.Read(addr);
}

void Machine::PhysWrite(PhysAddr addr, Word value) {
  if (addr >= config_.io_base) {
    const PhysAddr off = addr - config_.io_base;
    const int slot = static_cast<int>(off / kDeviceRegSpan);
    const int reg = static_cast<int>(off % kDeviceRegSpan);
    SEP_CHECK(slot < static_cast<int>(devices_.size()));
    devices_[slot]->WriteRegister(reg, value);
    return;
  }
  memory_.Write(addr, value);
}

int Machine::PendingInterrupt() const {
  int best = -1;
  int best_priority = cpu_.psw.priority();
  for (int i = 0; i < static_cast<int>(devices_.size()); ++i) {
    if (devices_[i]->interrupt_pending() && devices_[i]->priority() > best_priority) {
      best = i;
      best_priority = devices_[i]->priority();
    }
  }
  return best;
}

void Machine::HardwareVector(PhysAddr vector) {
  // Save old context, load new PC/PSW from the vector, push old PSW/PC on
  // the (new) stack. This path is only used without a native client.
  const Word old_pc = cpu_.pc();
  const Word old_psw = cpu_.psw.bits();
  cpu_.set_pc(memory_.Read(vector));
  cpu_.psw.set_bits(memory_.Read(vector + 1));
  // Push through the MMU-less kernel view: vectored entry runs in kernel
  // mode and the standalone programs that use this path map kernel space
  // identity, so physical pushes are faithful.
  cpu_.set_sp(static_cast<Word>(cpu_.sp() - 1));
  memory_.Write(cpu_.sp(), old_psw);
  cpu_.set_sp(static_cast<Word>(cpu_.sp() - 1));
  memory_.Write(cpu_.sp(), old_pc);
}

void Machine::DispatchTrap(const TrapInfo& info) {
  if (obs::Enabled()) {
    static obs::Counter& traps = obs::Metrics().GetCounter("machine.traps");
    obs::Emit(obs::Category::kMachine, obs::Code::kMachineTrap, obs::kColourKernel, tick_,
              static_cast<Word>(info.kind),
              info.kind == TrapInfo::Kind::kMmuFault ? static_cast<Word>(info.fault_addr)
                                                     : static_cast<Word>(info.code));
    traps.Add();
  }
  if (client_ != nullptr) {
    client_->OnTrap(info);
    return;
  }
  switch (info.kind) {
    case TrapInfo::Kind::kIllegalInstruction:
      HardwareVector(kVectorIllegal);
      break;
    case TrapInfo::Kind::kMmuFault:
      HardwareVector(kVectorMmuFault);
      break;
    case TrapInfo::Kind::kTrapInstruction:
      HardwareVector(kVectorTrap);
      break;
  }
}

StepEvent Machine::Step() {
  StepEvent event = StepCpuPhase();
  for (int i = 0; i < static_cast<int>(devices_.size()); ++i) {
    StepDevicePhase(i);
  }
  ++tick_;
  return event;
}

StepEvent Machine::StepCpuPhase() {
  StepEvent event;

  // Deferred client work takes precedence over everything else; it belongs
  // to the current context and must complete before the next instruction.
  if (client_ != nullptr && !halted_ && client_->OnBeforeExecute()) {
    event.kind = StepEvent::Kind::kKernelWork;
    return event;
  }

  // Interrupt delivery or instruction execution.
  const int irq = PendingInterrupt();
  if (irq >= 0) {
    waiting_ = false;
    devices_[irq]->ClearInterrupt();
    event.kind = StepEvent::Kind::kInterrupt;
    event.device = irq;
    if (obs::Enabled()) {
      static obs::Counter& interrupts = obs::Metrics().GetCounter("machine.interrupts");
      const RegimeId owner = devices_[irq]->owner();
      obs::Emit(obs::Category::kMachine, obs::Code::kMachineIrq,
                owner == kNoRegime ? obs::kColourKernel : static_cast<int>(owner), tick_,
                static_cast<Word>(irq));
      interrupts.Add();
    }
    if (client_ != nullptr) {
      client_->OnInterrupt(irq);
    } else {
      HardwareVector(static_cast<PhysAddr>(devices_[irq]->vector()));
    }
  } else if (halted_ || waiting_) {
    event.kind = StepEvent::Kind::kIdle;
  } else {
    event = ExecuteInstructionPhase();
  }
  return event;
}

StepEvent Machine::ExecuteInstructionPhase() { return ApplyCpuEvent(ExecuteCpu()); }

StepEvent Machine::ApplyCpuEvent(const CpuEvent& cpu_event) {
  StepEvent event;
  switch (cpu_event.kind) {
    case CpuEventKind::kOk:
      event.kind = StepEvent::Kind::kInstruction;
      break;
    case CpuEventKind::kHalt:
      halted_ = true;
      event.kind = StepEvent::Kind::kInstruction;
      if (client_ != nullptr) {
        client_->OnHalt();
      }
      break;
    case CpuEventKind::kWait:
      waiting_ = true;
      event.kind = StepEvent::Kind::kInstruction;
      break;
    case CpuEventKind::kIllegalInstruction:
      event.kind = StepEvent::Kind::kTrap;
      event.trap = TrapInfo{TrapInfo::Kind::kIllegalInstruction, 0, 0};
      DispatchTrap(event.trap);
      break;
    case CpuEventKind::kBusFault:
      event.kind = StepEvent::Kind::kTrap;
      event.trap = TrapInfo{TrapInfo::Kind::kMmuFault, 0, cpu_event.fault_addr};
      DispatchTrap(event.trap);
      break;
    case CpuEventKind::kTrap:
      event.kind = StepEvent::Kind::kTrap;
      event.trap = TrapInfo{TrapInfo::Kind::kTrapInstruction, cpu_event.trap_code, 0};
      DispatchTrap(event.trap);
      break;
  }
  return event;
}

void Machine::set_predecode_enabled(bool enabled) {
  predecode_enabled_ = enabled;
  if (!enabled) {
    // Superblocks anchor into icache entries, so they go first.
    InvalidateAllSuperblocks();
    if (obs::Enabled() && !icache_.empty()) {
      obs::Emit(obs::Category::kMachine, obs::Code::kPredecodeFlush, obs::kColourKernel, tick_,
                static_cast<Word>(icache_.size()));
    }
    icache_.clear();
  }
}

void Machine::set_superblock_enabled(bool enabled) {
  superblock_enabled_ = enabled;
  if (!enabled) {
    InvalidateAllSuperblocks();
  }
}

void Machine::InvalidateSuperblock(Superblock* sb) {
  PredecodedInsn* const entry = sb->entry;
  entry->sb = nullptr;
  entry->form = sb->orig_form;
  entry->handler = nullptr;
  entry->heat = 0;
  ++superblock_invalidations_;
  if (obs::Enabled()) {
    static obs::Counter& invalidations =
        obs::Metrics().GetCounter("machine.superblock_invalidations");
    obs::Emit(obs::Category::kMachine, obs::Code::kSuperblockInvalidate, obs::kColourKernel,
              tick_, sb->entry_pc);
    invalidations.Add();
  }
  const std::uint32_t slot = sb->slot;
  if (slot + 1 != superblocks_.size()) {
    superblocks_[slot] = std::move(superblocks_.back());
    superblocks_[slot]->slot = slot;
  }
  superblocks_.pop_back();
}

void Machine::InvalidateAllSuperblocks() {
  if (superblocks_.empty()) {
    return;
  }
  superblock_invalidations_ += superblocks_.size();
  if (obs::Enabled()) {
    static obs::Counter& invalidations =
        obs::Metrics().GetCounter("machine.superblock_invalidations");
    obs::Emit(obs::Category::kMachine, obs::Code::kSuperblockInvalidate, obs::kColourKernel,
              tick_, static_cast<Word>(superblocks_.size()));
    invalidations.Add(superblocks_.size());
  }
  for (const auto& sb : superblocks_) {
    sb->entry->sb = nullptr;
    sb->entry->form = sb->orig_form;
    sb->entry->handler = nullptr;
    sb->entry->heat = 0;
  }
  superblocks_.clear();
}

// Walks the predicted path from a hot taken-branch target and stitches a
// superblock. Purely static: reads the live mapping and memory through the
// same checks the per-step dispatch applies, so every instruction admitted
// here would also pass the per-step fast path at build time. Prediction:
// unconditional branches follow the branch, conditional branches follow the
// taken edge when it points backward (loop-closing) and fall through
// otherwise; the trace ends at the first generic-form instruction, unmapped
// word, guard-budget overflow, or revisit of a stitched PC.
__attribute__((noinline)) void Machine::BuildSuperblockAt(Word entry_pc, CpuMode mode,
                                                          PredecodedInsn& entry) {
  auto sb = std::make_unique<Superblock>();
  sb->entry_pc = entry_pc;
  sb->mode = mode;

  auto add_version_guards = [&](PhysAddr first, PhysAddr last) {
    for (std::size_t index = PhysicalMemory::VersionIndex(first);
         index <= PhysicalMemory::VersionIndex(last); ++index) {
      bool known = false;
      for (const Superblock::VersionGuard& g : sb->version_guards) {
        if (g.index == index) {
          known = true;
          break;
        }
      }
      if (!known) {
        if (sb->version_guards.size() >= kSuperblockMaxVersionGuards) {
          return false;
        }
        sb->version_guards.push_back(
            {static_cast<std::uint32_t>(index), memory_.version_data()[index]});
      }
    }
    return true;
  };

  Word pc = entry_pc;
  while (sb->insns.size() < kSuperblockMaxInsns) {
    // Re-apply the per-step fast-path preconditions at `pc`.
    const std::uint32_t vp = static_cast<std::uint32_t>(pc) >> kPageBits;
    const PageRegister& pr = mmu_.page(mode, static_cast<int>(vp & 0x7));
    const std::uint32_t limit =
        pr.access == PageAccess::kNone ? 0 : (pr.length < kPageWords ? pr.length : kPageWords);
    const std::uint32_t offset = pc & (kPageWords - 1);
    if (offset >= limit) {
      break;
    }
    const PhysAddr phys = pr.base + offset;
    if (!memory_.InRange(phys)) {
      break;
    }
    std::optional<DecodedInsn> decoded = Decode(memory_.Read(phys));
    if (!decoded.has_value()) {
      break;
    }
    const std::uint32_t length = static_cast<std::uint32_t>(decoded->length);
    if (offset + length > limit || !memory_.InRange(phys + length - 1)) {
      break;
    }
    const std::uint8_t form = ClassifyForm(*decoded);
    if (form == kFormGeneric) {
      break;
    }

    // Record the mapping this instruction fetches through. One virtual page
    // resolves to one PageRegister for the whole build (nothing runs between
    // iterations), so a revisit can never conflict.
    bool guarded = false;
    for (const Superblock::PageGuard& g : sb->page_guards) {
      if (g.vpage == vp) {
        guarded = true;
        break;
      }
    }
    if (!guarded) {
      sb->page_guards.push_back({vp, pr.base, limit});
    }
    if (!add_version_guards(phys, phys + length - 1)) {
      break;
    }

    SuperblockInsn si;
    si.insn = *decoded;
    for (std::uint32_t i = 1; i < length; ++i) {
      si.ext[i - 1] = memory_.Read(phys + static_cast<PhysAddr>(i));
    }
    si.pc = pc;
    si.form = form;
    si.may_write = interp::MayWriteMemory(*decoded);
    si.can_fault = interp::MayTouchMemory(*decoded);

    const bool is_branch = form >= kFormBr && form <= kFormBle;
    const Word fall = static_cast<Word>(pc + length);
    Word next;
    if (is_branch) {
      const Word taken = static_cast<Word>(fall + decoded->branch_offset);
      next = (decoded->opcode == Opcode::kBr || taken <= pc) ? taken : fall;
    } else {
      next = fall;
    }

    // Resolve the successor inside the trace so far (loop closure / rejoin).
    std::int32_t next_index = -1;
    for (std::size_t i = 0; i < sb->insns.size(); ++i) {
      if (sb->insns[i].pc == next) {
        next_index = static_cast<std::int32_t>(i);
        break;
      }
    }
    if (next == entry_pc) {
      next_index = 0;
    } else if (next == pc) {
      next_index = static_cast<std::int32_t>(sb->insns.size());  // self-loop
    }

    if (is_branch) {
      // A straight-line successor is the next slot; filled as -1 now and
      // fixed below if the build stops before appending it.
      si.next_index = next_index >= 0 ? next_index
                                      : static_cast<std::int32_t>(sb->insns.size()) + 1;
    }
    sb->insns.push_back(si);

    if (next_index >= 0) {
      break;  // trace closed into itself
    }
    pc = next;
  }

  // Branches whose predicted successor was never appended exit the trace.
  for (SuperblockInsn& si : sb->insns) {
    if (si.next_index >= static_cast<std::int32_t>(sb->insns.size())) {
      si.next_index = -1;
    }
  }

  if (sb->insns.size() < kSuperblockMinInsns) {
    return;  // heat wraps around and retries eventually
  }

  const Word trace_len = static_cast<Word>(sb->insns.size());
  // Sentinel trailer: running off the end of the trace lands here and its
  // handler (the kFormGeneric slot of the in-trace table) re-enters the
  // ordinary dispatch — so straight-line handlers advance with no
  // end-of-trace compare. Never executed, so only form matters.
  SuperblockInsn sentinel;
  sentinel.form = kFormGeneric;
  sb->insns.push_back(sentinel);

  sb->orig_form = entry.form;
  sb->entry = &entry;
  sb->slot = static_cast<std::uint32_t>(superblocks_.size());
  entry.sb = sb.get();
  entry.form = kFormSbEnter;
  entry.handler = nullptr;
  ++superblock_builds_;
  if (obs::Enabled()) {
    static obs::Counter& builds = obs::Metrics().GetCounter("machine.superblock_builds");
    obs::Emit(obs::Category::kMachine, obs::Code::kSuperblockBuild, obs::kColourKernel, tick_,
              entry_pc, trace_len);
    builds.Add();
  }
  superblocks_.push_back(std::move(sb));
}

__attribute__((noinline)) Machine::IcacheBlock& Machine::EnsureIcacheBlock(PhysAddr phys) {
  if (icache_.empty()) {
    icache_.resize((memory_.size() >> kIcacheBlockShift) + 1);
  }
  std::unique_ptr<IcacheBlock>& block = icache_[phys >> kIcacheBlockShift];
  if (block == nullptr) {
    block = std::make_unique<IcacheBlock>();
  }
  return *block;
}

CpuEvent Machine::ExecuteCpu() {
  MachineBus bus(*this);
  return ExecuteCpuT<false>(bus, cpu_);
}

// Cache miss (or stale entry): decode from memory and refill. Out of line to
// keep ExecuteCpuFast small enough to inline into the Run loop.
__attribute__((noinline)) CpuEvent Machine::ExecuteCpuMiss(MachineBus& bus,
                                                           PredecodedInsn& entry, PhysAddr phys,
                                                           std::uint32_t offset,
                                                           std::uint32_t limit) {
  ++predecode_misses_;
  // A refill rewrites the entry's decode and form, so a superblock anchored
  // here (its covered content just changed — that is why we missed) must go.
  if (entry.sb != nullptr) [[unlikely]] {
    InvalidateSuperblock(entry.sb);
  }
  // Refills are the observable face of predecode invalidation (stores,
  // remaps and restores bump page versions; the next execution lands here).
  // Already out of line, so the disabled cost is one load + branch per miss.
  if (obs::Enabled()) {
    static obs::Counter& refills = obs::Metrics().GetCounter("machine.predecode_refills");
    obs::Emit(obs::Category::kMachine, obs::Code::kPredecodeFill, obs::kColourKernel, tick_,
              static_cast<Word>(phys >> kIcacheBlockShift));
    refills.Add();
  }
  std::optional<DecodedInsn> decoded = Decode(memory_.Read(phys));
  if (!decoded.has_value()) {
    entry.version = 0;  // don't cache invalid opcodes
    return interp::ExecuteOneT<MachineBus>(cpu_, bus);  // traps identically
  }
  const std::uint32_t length = static_cast<std::uint32_t>(decoded->length);
  if (offset + length > limit || !memory_.InRange(phys + length - 1)) {
    // Crosses the mapped page run (or into device space): the extension
    // fetches need per-word translation. Leave it to the generic path.
    entry.version = 0;
    return interp::ExecuteOneT<MachineBus>(cpu_, bus);
  }
  entry.insn = *decoded;
  for (int i = 1; i < decoded->length; ++i) {
    entry.ext[i - 1] = memory_.Read(phys + static_cast<PhysAddr>(i));
  }
  entry.form = ClassifyForm(*decoded);
  entry.handler = nullptr;  // re-resolved from `form` by the threaded loop
  entry.version = memory_.PageVersion(phys);
  entry.version_last = memory_.PageVersion(phys + length - 1);
  return interp::ExecutePredecodedT<MachineBus>(cpu_, bus, entry.insn, entry.ext.data());
}

template <bool kLocalState>
inline CpuEvent Machine::ExecuteCpuT(MachineBus& bus, CpuState& st) {
  // Every out-of-line slow path executes against cpu_ proper; with a local
  // register copy (kLocalState) it is bracketed by commit/reload so `st`'s
  // address never leaves this function.
  const auto generic = [&] {
    if constexpr (kLocalState) cpu_ = st;
    const CpuEvent event = interp::ExecuteOneT<MachineBus>(cpu_, bus);
    if constexpr (kLocalState) st = cpu_;
    return event;
  };

  if (!predecode_enabled_) [[unlikely]] {
    return generic();
  }

  // Fast-path preconditions, re-established from the live MMU state every
  // step so remaps can never serve a stale mapping: the whole instruction
  // must lie in RAM inside one contiguously-mapped virtual page.
  const VirtAddr pc = st.pc();
  const PageRegister& pr =
      mmu_.page(st.psw.mode(), static_cast<int>((pc >> kPageBits) & 0x7));
  const std::uint32_t offset = pc & (kPageWords - 1);
  const std::uint32_t limit = pr.length < kPageWords ? pr.length : kPageWords;
  if (pr.access == PageAccess::kNone || offset >= limit) [[unlikely]] {
    return generic();  // faults identically
  }
  const PhysAddr phys = pr.base + offset;
  if (!memory_.InRange(phys)) [[unlikely]] {
    return generic();  // device space / bus timeout
  }

  const std::size_t block_index = phys >> kIcacheBlockShift;
  IcacheBlock* block =
      block_index < icache_.size() ? icache_[block_index].get() : nullptr;
  if (block == nullptr) [[unlikely]] {
    block = &EnsureIcacheBlock(phys);
  }
  PredecodedInsn& entry = block->entries[phys & (kIcacheBlockWords - 1)];
  const std::uint64_t version = memory_.PageVersion(phys);
  bool valid = entry.version == version;
  if (valid && entry.insn.length > 1) {
    valid = entry.version_last ==
            memory_.PageVersion(phys + static_cast<PhysAddr>(entry.insn.length) - 1);
  }
  if (!valid) [[unlikely]] {
    if constexpr (kLocalState) cpu_ = st;
    const CpuEvent event = ExecuteCpuMiss(bus, entry, phys, offset, limit);
    if constexpr (kLocalState) st = cpu_;
    return event;
  }

  ++predecode_hits_;
  if (offset + static_cast<std::uint32_t>(entry.insn.length) > limit) [[unlikely]] {
    // The mapping shrank since decode; the generic path reproduces the
    // exact mid-instruction fault.
    return generic();
  }
  CpuEvent event;
  if (interp::ExecutePredecodedDirectT<MachineBus>(st, bus, entry.insn, entry.ext.data(),
                                                   &event)) [[likely]] {
    return event;
  }
  if constexpr (kLocalState) cpu_ = st;
  const CpuEvent slow_event =
      interp::ExecutePredecodedT<MachineBus>(cpu_, bus, entry.insn, entry.ext.data());
  if constexpr (kLocalState) st = cpu_;
  return slow_event;
}

void Machine::StepDevicePhase(int slot) { devices_[slot]->Step(); }

std::optional<Word> Machine::PeekVirt(VirtAddr addr) const {
  auto tr = mmu_.Translate(cpu_.psw.mode(), addr, AccessKind::kReadInstruction);
  if (!tr.translation.has_value()) {
    return std::nullopt;
  }
  const PhysAddr phys = tr.translation->phys;
  if (phys >= config_.io_base || !memory_.InRange(phys)) {
    return std::nullopt;
  }
  return memory_.Read(phys);
}

// The direct-threaded core of Run(). Shape: a dispatch sequence (macro,
// replicated into the tail of every handler so each predecoded opcode gets
// its own indirect-branch site — the classic threaded-code cure for the
// single rotating dispatch jump that mispredicts once per step) validates
// the fast-path preconditions exactly like ExecuteCpuT, then jumps through
// the per-entry `form` byte. PC and PSW live in locals so the step-to-step
// critical path never round-trips through memory; `st` is the same
// never-escaping local register copy the non-threaded batched loop uses,
// synced with cpu_ around every out-of-line slow path.
std::size_t Machine::RunThreaded(std::size_t max_steps) {
  MachineBus bus(*this);
  CpuState st = cpu_;
  Word pc = st.pc();
  Psw psw = st.psw;
  Word* const regs = st.regs.data();
  std::size_t steps = 0;
  std::uint64_t hits = 0;
  PredecodedInsn* entry = nullptr;
  PhysAddr phys = 0;
  std::uint32_t offset = 0;
  std::uint32_t limit = 0;
  CpuEvent event{};
  // Current icache block, cached across steps: blocks never move once
  // allocated (the vector holds owning pointers), so straight-line code
  // revalidates with a register compare instead of re-walking the vector.
  IcacheBlock* cur_block = nullptr;
  std::size_t cur_block_index = static_cast<std::size_t>(-1);
  // Current virtual code page, resolved through the MMU once and then
  // revalidated with a register compare. Sound because nothing inside this
  // loop can remap the MMU (no client, no devices, page registers are not
  // guest-addressable) and direct handlers never flip the mode bit; every
  // slow path that could (traps, RTI) goes through SEP_SYNC_IN, which drops
  // the cached mapping. Self-modifying code is still caught per step by the
  // page-version compare below — this caches the *mapping*, not the bytes.
  std::uint32_t cur_vpage = ~0u;
  PhysAddr cur_base = 0;
  std::uint32_t cur_limit = 0;
  const std::uint64_t* const page_versions = memory_.version_data();
  const PhysAddr mem_size = static_cast<PhysAddr>(memory_.size());
  // Superblock execution state: set by run_sb_enter, read only by the sb
  // handlers and their shared exit labels below. Every stitched instruction
  // is by construction a predecode hit, so in-trace handlers count only
  // `steps`; SEP_SB_FLUSH credits `hits` with the delta when the trace is
  // left. `sb_len` is the stitched length (sentinel excluded) used by the
  // loop-back budget check.
  Superblock* cur_sb = nullptr;
  SuperblockInsn* sb_base = nullptr;
  SuperblockInsn* sb_cur = nullptr;
  std::size_t sb_len = 0;
  std::size_t sb_steps_base = 0;
  std::uint64_t sb_exits = 0;

  // Order must match DirectForm.
  static const void* const kForms[] = {
      &&form_generic, &&form_nop, &&form_br,  &&form_beq, &&form_bne, &&form_bmi,
      &&form_bpl,     &&form_bcs, &&form_bcc, &&form_bvs, &&form_bvc, &&form_blt,
      &&form_bge,     &&form_bgt, &&form_ble, &&form_mov, &&form_add, &&form_sub,
      &&form_cmp,     &&form_bit, &&form_bic, &&form_bis, &&form_xor, &&form_clr,
      &&form_inc,     &&form_dec, &&form_neg, &&form_com, &&form_tst, &&form_asr,
      &&form_asl,     &&run_sb_enter,
  };

  // Superblock in-trace handlers, same DirectForm order, two tables: the
  // full-plumbing one for instructions that can touch data memory (fault
  // and/or store), and a lean one — no event reset, no event check, no
  // post-store recheck — for instructions that provably cannot
  // (interp::MayTouchMemory, chosen per instruction at build time).
  // kFormGeneric and kFormSbEnter are never stitched; their slots
  // re-dispatch defensively (the generic slot is also the sentinel
  // trailer's handler, i.e. the normal off-the-end exit).
  static const void* const kSbForms[] = {
      &&run_sb_off_end, &&sb_nop, &&sb_br,  &&sb_beq, &&sb_bne, &&sb_bmi,
      &&sb_bpl,         &&sb_bcs, &&sb_bcc, &&sb_bvs, &&sb_bvc, &&sb_blt,
      &&sb_bge,         &&sb_bgt, &&sb_ble, &&sb_mov, &&sb_add, &&sb_sub,
      &&sb_cmp,         &&sb_bit, &&sb_bic, &&sb_bis, &&sb_xor, &&sb_clr,
      &&sb_inc,         &&sb_dec, &&sb_neg, &&sb_com, &&sb_tst, &&sb_asr,
      &&sb_asl,         &&run_sb_off_end,
  };
  static const void* const kSbFormsNf[] = {
      &&run_sb_off_end, &&sb_nop_nf, &&sb_br,     &&sb_beq,    &&sb_bne,    &&sb_bmi,
      &&sb_bpl,         &&sb_bcs,    &&sb_bcc,    &&sb_bvs,    &&sb_bvc,    &&sb_blt,
      &&sb_bge,         &&sb_bgt,    &&sb_ble,    &&sb_mov_nf, &&sb_add_nf, &&sb_sub_nf,
      &&sb_cmp_nf,      &&sb_bit_nf, &&sb_bic_nf, &&sb_bis_nf, &&sb_xor_nf, &&sb_clr_nf,
      &&sb_inc_nf,      &&sb_dec_nf, &&sb_neg_nf, &&sb_com_nf, &&sb_tst_nf, &&sb_asr_nf,
      &&sb_asl_nf,      &&run_sb_off_end,
  };

#define SEP_SYNC_OUT() (st.regs[kPc] = pc, st.psw = psw, cpu_ = st)
#define SEP_SYNC_IN() (st = cpu_, pc = st.regs[kPc], psw = st.psw, cur_vpage = ~0u)

  // The per-step validation from ExecuteCpuT, ending in the threaded jump.
  // `steps`/`hits` are committed here so handlers and slow paths reached
  // from the jump must not count them again. HOOK runs after the entry is
  // validated and before the jump; the taken-branch dispatch uses it for
  // hot-edge accounting, every other site passes a no-op.
#define SEP_DISPATCH_CORE(HOOK)                                                        \
  do {                                                                                 \
    if (steps >= max_steps || halted_) goto run_done;                                  \
    if (waiting_) [[unlikely]] goto run_idle;                                          \
    const std::uint32_t vp = static_cast<std::uint32_t>(pc) >> kPageBits;              \
    if (vp != cur_vpage) [[unlikely]] {                                                \
      const PageRegister& pr = mmu_.page(psw.mode(), static_cast<int>(vp & 0x7));      \
      cur_limit = pr.access == PageAccess::kNone                                       \
                      ? 0                                                              \
                      : (pr.length < kPageWords ? pr.length : kPageWords);             \
      cur_base = pr.base;                                                              \
      cur_vpage = vp;                                                                  \
    }                                                                                  \
    offset = pc & (kPageWords - 1);                                                    \
    limit = cur_limit;                                                                 \
    if (offset >= limit) [[unlikely]] goto run_generic;                                \
    phys = cur_base + offset;                                                          \
    if (phys >= mem_size) [[unlikely]] goto run_generic;                               \
    const std::size_t bi = phys >> kIcacheBlockShift;                                  \
    if (bi != cur_block_index) [[unlikely]] {                                          \
      cur_block = bi < icache_.size() ? icache_[bi].get() : nullptr;                   \
      if (cur_block == nullptr) cur_block = &EnsureIcacheBlock(phys);                  \
      cur_block_index = bi;                                                            \
    }                                                                                  \
    entry = &cur_block->entries[phys & (kIcacheBlockWords - 1)];                       \
    bool valid = entry->version == page_versions[phys >> PhysicalMemory::kVersionPageShift]; \
    if (valid && entry->insn.length > 1)                                               \
      valid = entry->version_last ==                                                   \
              page_versions[(phys + static_cast<PhysAddr>(entry->insn.length) - 1) >>  \
                            PhysicalMemory::kVersionPageShift];                        \
    if (!valid) [[unlikely]] goto run_miss;                                            \
    if (offset + static_cast<std::uint32_t>(entry->insn.length) > limit) [[unlikely]]  \
      goto run_generic;                                                                \
    ++hits;                                                                            \
    ++steps;                                                                           \
    HOOK;                                                                              \
    if (entry->handler == nullptr) [[unlikely]] entry->handler = kForms[entry->form];  \
    goto* entry->handler;                                                              \
  } while (0)

#define SEP_DISPATCH() SEP_DISPATCH_CORE((void)0)

  // Hot-edge accounting on a validated taken-branch target: when the target
  // entry's heat crosses the threshold, a superblock is stitched and anchored
  // on it (form becomes kFormSbEnter), so the jump below enters it at once.
#define SEP_EDGE_HOOK()                                                                \
  if (superblock_enabled_ && entry->sb == nullptr) {                                   \
    if (++entry->heat == kSuperblockHeatThreshold) [[unlikely]] {                      \
      BuildSuperblockAt(pc, psw.mode(), *entry);                                       \
    }                                                                                  \
  }

  // Taken branches dispatch through their own expansion (own indirect-branch
  // site, like every other handler tail) with the hot-edge hook armed.
#define SEP_DISPATCH_EDGE() SEP_DISPATCH_CORE(SEP_EDGE_HOOK())

// One direct handler per predecoded opcode. The DirectStepT bail (PC
// operand) cannot trigger here — ClassifyForm maps those to kFormGeneric —
// but the fallback is kept so the handlers stay trivially equivalent to the
// single-step path.
#define SEP_HANDLER(label, OP)                                                        \
  label:                                                                              \
  event = {};                                                                         \
  if (interp::DirectStepT<MachineBus, Opcode::OP>(regs, psw, pc, bus, entry->insn,    \
                                                  entry->ext.data(), &event))         \
      [[likely]] {                                                                    \
    if (event.kind == CpuEventKind::kOk) [[likely]] SEP_DISPATCH();                   \
    goto run_apply_event;                                                             \
  }                                                                                   \
  goto run_predecoded_slow;

// Branch handlers inline DirectStepT's branch path (compute the successor,
// always kOk) so the taken edge is visible: it dispatches with the hot-edge
// hook, the fall-through edge dispatches plainly.
#define SEP_BRANCH_HANDLER(label, OP)                                                 \
  label: {                                                                            \
    Word next = static_cast<Word>(pc + entry->insn.length);                           \
    if (interp::BranchTaken(Opcode::OP, psw)) {                                       \
      pc = static_cast<Word>(next + entry->insn.branch_offset);                       \
      SEP_DISPATCH_EDGE();                                                            \
    }                                                                                 \
    pc = next;                                                                        \
    SEP_DISPATCH();                                                                   \
  }

  SEP_DISPATCH();

  SEP_HANDLER(form_nop, kNop)
  SEP_BRANCH_HANDLER(form_br, kBr)
  SEP_BRANCH_HANDLER(form_beq, kBeq)
  SEP_BRANCH_HANDLER(form_bne, kBne)
  SEP_BRANCH_HANDLER(form_bmi, kBmi)
  SEP_BRANCH_HANDLER(form_bpl, kBpl)
  SEP_BRANCH_HANDLER(form_bcs, kBcs)
  SEP_BRANCH_HANDLER(form_bcc, kBcc)
  SEP_BRANCH_HANDLER(form_bvs, kBvs)
  SEP_BRANCH_HANDLER(form_bvc, kBvc)
  SEP_BRANCH_HANDLER(form_blt, kBlt)
  SEP_BRANCH_HANDLER(form_bge, kBge)
  SEP_BRANCH_HANDLER(form_bgt, kBgt)
  SEP_BRANCH_HANDLER(form_ble, kBle)
  SEP_HANDLER(form_mov, kMov)
  SEP_HANDLER(form_add, kAdd)
  SEP_HANDLER(form_sub, kSub)
  SEP_HANDLER(form_cmp, kCmp)
  SEP_HANDLER(form_bit, kBit)
  SEP_HANDLER(form_bic, kBic)
  SEP_HANDLER(form_bis, kBis)
  SEP_HANDLER(form_xor, kXor)
  SEP_HANDLER(form_clr, kClr)
  SEP_HANDLER(form_inc, kInc)
  SEP_HANDLER(form_dec, kDec)
  SEP_HANDLER(form_neg, kNeg)
  SEP_HANDLER(form_com, kCom)
  SEP_HANDLER(form_tst, kTst)
  SEP_HANDLER(form_asr, kAsr)
  SEP_HANDLER(form_asl, kAsl)

#undef SEP_HANDLER
#undef SEP_BRANCH_HANDLER

  // ------------------------------------------------------------------
  // Superblock execution. run_sb_enter is reached through the ordinary
  // dispatch (the anchor entry's form is kFormSbEnter), so the entry
  // instruction itself is already validated and counted. The guards hoist
  // what the per-step dispatch would otherwise re-derive for every stitched
  // instruction: the PSW mode and page mappings cannot change inside the
  // trace (no client, no devices, page registers are not guest-addressable,
  // and only generic-form instructions — never stitched — can flip the
  // mode), and the version guards pin every covered 64-word page, rechecked
  // after each instruction that can store (sb_cur->may_write) so
  // self-modifying code stops the trace before the next stale instruction
  // executes. Loop-closing traces (next_index >= 0) therefore iterate
  // entirely inside the trace with no re-entry guard at all.
  //
  // The step budget is hoisted too: entry admits the trace only when a full
  // straight-line pass fits (steps + sb_len <= max_steps, after the anchor
  // undo), and every in-trace control transfer re-proves the next pass fits
  // before taking it — so straight-line handlers run with no budget check,
  // and nothing in-trace can set halted_ or waiting_ (HALT and WAIT are
  // generic forms, never stitched).

  // In-trace handler for non-branch direct forms that can touch data
  // memory: execute with event plumbing, recheck covered pages after a
  // possible store, advance (running off the end lands on the sentinel
  // trailer, whose handler is the off-end exit — no end compare). The
  // DirectStepT bail (PC operand) is impossible by stitching construction;
  // the defensive exit re-dispatches the unexecuted pc.
#define SEP_SB_HANDLER(label, OP)                                                     \
  label:                                                                              \
  event = {};                                                                         \
  if (interp::DirectStepT<MachineBus, Opcode::OP>(regs, psw, pc, bus, sb_cur->insn,   \
                                                  sb_cur->ext.data(), &event))        \
      [[likely]] {                                                                    \
    ++steps;                                                                          \
    if (event.kind != CpuEventKind::kOk) [[unlikely]] goto run_apply_event;           \
    if (sb_cur->may_write) goto run_sb_write_check;                                   \
    ++sb_cur;                                                                         \
    goto* sb_cur->handler;                                                            \
  }                                                                                   \
  goto run_sb_off_end;

  // Lean variant for instructions that provably cannot fault or store
  // (register/immediate operands only — interp::MayTouchMemory false): no
  // event plumbing, no recheck. This is the common case in hot loops.
#define SEP_SB_HANDLER_NF(label, OP)                                                  \
  label:                                                                              \
  if (interp::DirectStepT<MachineBus, Opcode::OP>(regs, psw, pc, bus, sb_cur->insn,   \
                                                  sb_cur->ext.data(), &event))        \
      [[likely]] {                                                                    \
    ++steps;                                                                          \
    ++sb_cur;                                                                         \
    goto* sb_cur->handler;                                                            \
  }                                                                                   \
  goto run_sb_off_end;

  // In-trace branch: compute the successor exactly as DirectStepT does
  // (always kOk, no bus traffic), then either stay inside the trace along
  // the predicted edge — re-proving the budget admits another pass — or
  // side-exit to the ordinary dispatch.
#define SEP_SB_BRANCH_HANDLER(label, OP)                                              \
  label: {                                                                            \
    Word next = static_cast<Word>(pc + sb_cur->insn.length);                          \
    if (interp::BranchTaken(Opcode::OP, psw)) {                                       \
      next = static_cast<Word>(next + sb_cur->insn.branch_offset);                    \
    }                                                                                 \
    pc = next;                                                                        \
  }                                                                                   \
  ++steps;                                                                            \
  {                                                                                   \
    const std::int32_t ni = sb_cur->next_index;                                       \
    if (ni < 0) [[unlikely]] goto run_sb_off_end;                                     \
    SuperblockInsn* const nxt = sb_base + ni;                                         \
    if (pc != nxt->pc) [[unlikely]] goto run_sb_side_exit;                            \
    if (steps + sb_len > max_steps) [[unlikely]] goto run_sb_off_end;                 \
    sb_cur = nxt;                                                                     \
    goto* sb_cur->handler;                                                            \
  }

  SEP_SB_HANDLER(sb_nop, kNop)
  SEP_SB_BRANCH_HANDLER(sb_br, kBr)
  SEP_SB_BRANCH_HANDLER(sb_beq, kBeq)
  SEP_SB_BRANCH_HANDLER(sb_bne, kBne)
  SEP_SB_BRANCH_HANDLER(sb_bmi, kBmi)
  SEP_SB_BRANCH_HANDLER(sb_bpl, kBpl)
  SEP_SB_BRANCH_HANDLER(sb_bcs, kBcs)
  SEP_SB_BRANCH_HANDLER(sb_bcc, kBcc)
  SEP_SB_BRANCH_HANDLER(sb_bvs, kBvs)
  SEP_SB_BRANCH_HANDLER(sb_bvc, kBvc)
  SEP_SB_BRANCH_HANDLER(sb_blt, kBlt)
  SEP_SB_BRANCH_HANDLER(sb_bge, kBge)
  SEP_SB_BRANCH_HANDLER(sb_bgt, kBgt)
  SEP_SB_BRANCH_HANDLER(sb_ble, kBle)
  SEP_SB_HANDLER(sb_mov, kMov)
  SEP_SB_HANDLER(sb_add, kAdd)
  SEP_SB_HANDLER(sb_sub, kSub)
  SEP_SB_HANDLER(sb_cmp, kCmp)
  SEP_SB_HANDLER(sb_bit, kBit)
  SEP_SB_HANDLER(sb_bic, kBic)
  SEP_SB_HANDLER(sb_bis, kBis)
  SEP_SB_HANDLER(sb_xor, kXor)
  SEP_SB_HANDLER(sb_clr, kClr)
  SEP_SB_HANDLER(sb_inc, kInc)
  SEP_SB_HANDLER(sb_dec, kDec)
  SEP_SB_HANDLER(sb_neg, kNeg)
  SEP_SB_HANDLER(sb_com, kCom)
  SEP_SB_HANDLER(sb_tst, kTst)
  SEP_SB_HANDLER(sb_asr, kAsr)
  SEP_SB_HANDLER(sb_asl, kAsl)

  SEP_SB_HANDLER_NF(sb_nop_nf, kNop)
  SEP_SB_HANDLER_NF(sb_mov_nf, kMov)
  SEP_SB_HANDLER_NF(sb_add_nf, kAdd)
  SEP_SB_HANDLER_NF(sb_sub_nf, kSub)
  SEP_SB_HANDLER_NF(sb_cmp_nf, kCmp)
  SEP_SB_HANDLER_NF(sb_bit_nf, kBit)
  SEP_SB_HANDLER_NF(sb_bic_nf, kBic)
  SEP_SB_HANDLER_NF(sb_bis_nf, kBis)
  SEP_SB_HANDLER_NF(sb_xor_nf, kXor)
  SEP_SB_HANDLER_NF(sb_clr_nf, kClr)
  SEP_SB_HANDLER_NF(sb_inc_nf, kInc)
  SEP_SB_HANDLER_NF(sb_dec_nf, kDec)
  SEP_SB_HANDLER_NF(sb_neg_nf, kNeg)
  SEP_SB_HANDLER_NF(sb_com_nf, kCom)
  SEP_SB_HANDLER_NF(sb_tst_nf, kTst)
  SEP_SB_HANDLER_NF(sb_asr_nf, kAsr)
  SEP_SB_HANDLER_NF(sb_asl_nf, kAsl)

#undef SEP_SB_HANDLER
#undef SEP_SB_HANDLER_NF
#undef SEP_SB_BRANCH_HANDLER

  // Credits `hits` with every instruction retired since trace entry and
  // leaves superblock mode. In-trace handlers bump only `steps`, and every
  // stitched instruction is a predecode hit by construction, so the delta
  // is exact.
#define SEP_SB_FLUSH() (hits += steps - sb_steps_base, cur_sb = nullptr)

run_sb_enter: {
  Superblock* const sb = entry->sb;
  if (pc != sb->entry_pc || psw.mode() != sb->mode) [[unlikely]] {
    // A different virtual window (or mode) onto the anchor's physical word:
    // the entry decode is valid for it — dispatch just checked — so execute
    // it through its original handler; the superblock stays installed.
    goto* kForms[sb->orig_form];
  }
  // Budget fit: the dispatch counted the anchor (steps includes it); a full
  // straight-line pass of the trace executes sb_len instructions in its
  // place. If that cannot fit, run this step the ordinary way — the
  // remaining budget is finished per-step with exact accounting.
  const std::size_t len = sb->insns.size() - 1;  // sentinel excluded
  if (steps + len > max_steps + 1) [[unlikely]] {
    goto* kForms[sb->orig_form];
  }
  for (const Superblock::PageGuard& g : sb->page_guards) {
    const PageRegister& pr = mmu_.page(sb->mode, static_cast<int>(g.vpage & 0x7));
    const std::uint32_t lim = pr.access == PageAccess::kNone
                                  ? 0
                                  : (pr.length < kPageWords ? pr.length : kPageWords);
    if (pr.base != g.base || lim != g.limit) [[unlikely]] goto run_sb_stale;
  }
  for (const Superblock::VersionGuard& g : sb->version_guards) {
    if (page_versions[g.index] != g.version) [[unlikely]] goto run_sb_stale;
  }
  if (sb->insns[0].handler == nullptr) [[unlikely]] {
    for (SuperblockInsn& si : sb->insns) {
      si.handler = si.can_fault ? kSbForms[si.form] : kSbFormsNf[si.form];
    }
  }
  // Dispatch counted the anchor instruction before jumping here; the sb
  // handlers re-count every stitched instruction (anchor included), so
  // undo it and mark the baseline for SEP_SB_FLUSH.
  --hits;
  --steps;
  cur_sb = sb;
  sb_len = len;
  sb_steps_base = steps;
  sb_base = sb->insns.data();
  sb_cur = sb_base;
  goto* sb_cur->handler;
}

run_sb_stale:
  // An entry guard failed: a covered page was remapped or rewritten. Tear
  // the superblock down and run the anchor instruction the ordinary way
  // (its own decode was validated by the dispatch that got us here).
  InvalidateSuperblock(entry->sb);
  if (entry->handler == nullptr) entry->handler = kForms[entry->form];
  goto* entry->handler;

run_sb_write_check:
  // A stitched store retired: if it hit a covered page, every later trace
  // instruction may be stale — stop before the next one executes. All
  // previously executed instructions used pre-store content, exactly like
  // the per-step path (whose version compare also runs at the next fetch).
  for (const Superblock::VersionGuard& g : cur_sb->version_guards) {
    if (page_versions[g.index] != g.version) [[unlikely]] {
      InvalidateSuperblock(cur_sb);
      SEP_SB_FLUSH();
      SEP_DISPATCH();
    }
  }
  ++sb_cur;
  goto* sb_cur->handler;

run_sb_off_end:
  // Trace exhausted, budget boundary, or a defensive bail: back to the
  // per-step dispatch.
  SEP_SB_FLUSH();
  SEP_DISPATCH();

run_sb_side_exit:
  // A stitched branch went against its predicted edge.
  ++sb_exits;
  SEP_SB_FLUSH();
  SEP_DISPATCH();

form_generic:
  // Cached but with no direct handler: run it through the scratch path.
run_predecoded_slow:
  SEP_SYNC_OUT();
  event = interp::ExecutePredecodedT<MachineBus>(cpu_, bus, entry->insn, entry->ext.data());
  SEP_SYNC_IN();
  if (event.kind != CpuEventKind::kOk) [[unlikely]] goto run_apply_event;
  SEP_DISPATCH();

run_generic:
  // Fast-path preconditions failed (cache off never reaches here; unmapped
  // PC, device space, page-run crossing): full fetch-decode-execute, which
  // reproduces the exact fault the real fetch would take.
  SEP_SYNC_OUT();
  event = interp::ExecuteOneT<MachineBus>(cpu_, bus);
  SEP_SYNC_IN();
  ++steps;
  if (event.kind != CpuEventKind::kOk) [[unlikely]] goto run_apply_event;
  SEP_DISPATCH();

run_miss:
  SEP_SYNC_OUT();
  event = ExecuteCpuMiss(bus, *entry, phys, offset, limit);
  SEP_SYNC_IN();
  ++steps;
  if (event.kind != CpuEventKind::kOk) [[unlikely]] goto run_apply_event;
  SEP_DISPATCH();

run_apply_event:
  // The step that produced `event` is already counted. A faulting stitched
  // instruction arrives here still in superblock mode; settle the hit
  // accounting before the ordinary path resumes. ApplyCpuEvent works on
  // cpu_ (trap dispatch rewrites PC/PSW/stack), so sync around it.
  if (cur_sb != nullptr) [[unlikely]] SEP_SB_FLUSH();
  SEP_SYNC_OUT();
  (void)ApplyCpuEvent(event);
  SEP_SYNC_IN();
  SEP_DISPATCH();

run_idle:
  // Nothing can ever wake the CPU: the remaining steps are idle ticks.
  SEP_SYNC_OUT();
  predecode_hits_ += hits;
  if (sb_exits != 0) {
    superblock_side_exits_ += sb_exits;
    if (obs::Enabled()) {
      static obs::Counter& side_exits =
          obs::Metrics().GetCounter("machine.superblock_side_exits");
      side_exits.Add(sb_exits);
    }
  }
  tick_ += max_steps;
  return max_steps;

run_done:
  SEP_SYNC_OUT();
  predecode_hits_ += hits;
  if (sb_exits != 0) {
    superblock_side_exits_ += sb_exits;
    if (obs::Enabled()) {
      static obs::Counter& side_exits =
          obs::Metrics().GetCounter("machine.superblock_side_exits");
      side_exits.Add(sb_exits);
    }
  }
  tick_ += steps;
  return steps;

#undef SEP_SB_FLUSH
#undef SEP_DISPATCH
#undef SEP_DISPATCH_EDGE
#undef SEP_EDGE_HOOK
#undef SEP_DISPATCH_CORE
#undef SEP_SYNC_OUT
#undef SEP_SYNC_IN
}

std::size_t Machine::Run(std::size_t max_steps) {
  std::size_t steps = 0;

  // Batched fast loops: with no client and no devices there is no deferred
  // kernel work, no interrupt source and no device phase, so each step is
  // exactly one instruction phase plus the tick — step-for-step identical
  // to the generic loop below. With the predecode cache on, the
  // direct-threaded loop runs; with it off, the bus and event plumbing are
  // still hoisted out of the loop and ExecuteCpuT inlines here.
  if (client_ == nullptr && devices_.empty()) {
    if (predecode_enabled_) {
      return RunThreaded(max_steps);
    }
    MachineBus bus(*this);
    // Architectural registers live in a loop-local copy: its address never
    // escapes, so guest memory stores provably cannot alias it and PC/PSW
    // stay in machine registers across iterations. Synced with cpu_ around
    // every slow path (ExecuteCpuT<true>) and event application.
    CpuState st = cpu_;
    while (steps < max_steps && !halted_) {
      if (waiting_) [[unlikely]] {
        // Nothing can ever wake the CPU: the remaining steps are idle ticks.
        cpu_ = st;
        tick_ += max_steps - steps;
        return max_steps;
      }
      const CpuEvent cpu_event = ExecuteCpuT<true>(bus, st);
      if (cpu_event.kind != CpuEventKind::kOk) [[unlikely]] {
        cpu_ = st;
        (void)ApplyCpuEvent(cpu_event);
        st = cpu_;
      }
      ++tick_;
      ++steps;
    }
    cpu_ = st;
    return steps;
  }

  while (steps < max_steps && !halted_) {
    Step();
    ++steps;
  }
  return steps;
}

std::uint64_t Machine::StateHash() const {
  Hasher h;
  memory_.AppendHash(h);
  mmu_.AppendHash(h);
  cpu_.AppendHash(h);
  for (const auto& dev : devices_) {
    dev->AppendHash(h);
  }
  h.Mix(static_cast<std::uint64_t>(halted_)).Mix(static_cast<std::uint64_t>(waiting_));
  return h.digest();
}

std::vector<Word> Machine::SnapshotFull() const {
  std::vector<Word> out;
  SnapshotFullInto(out);
  return out;
}

void Machine::SnapshotFullInto(std::vector<Word>& out) const {
  out.reserve(out.size() + memory_.size() + 64);
  memory_.AppendTo(out);
  for (int mode = 0; mode < 2; ++mode) {
    for (int page = 0; page < kPagesPerMode; ++page) {
      const PageRegister& pr = mmu_.page(static_cast<CpuMode>(mode), page);
      out.push_back(static_cast<Word>(pr.base & 0xFFFF));
      out.push_back(static_cast<Word>(pr.base >> 16));
      out.push_back(static_cast<Word>(pr.length & 0xFFFF));
      out.push_back(static_cast<Word>(pr.length >> 16));
      out.push_back(static_cast<Word>(pr.access));
    }
  }
  for (Word r : cpu_.regs) {
    out.push_back(r);
  }
  out.push_back(cpu_.psw.bits());
  for (const auto& dev : devices_) {
    std::vector<Word> ds = dev->SnapshotState();
    out.push_back(static_cast<Word>(ds.size()));
    out.insert(out.end(), ds.begin(), ds.end());
  }
  out.push_back(static_cast<Word>(halted_));
  out.push_back(static_cast<Word>(waiting_));
}

bool Machine::RestoreFull(std::span<const Word> snapshot) {
  const std::size_t fixed_words =
      memory_.size() + 2 * static_cast<std::size_t>(kPagesPerMode) * 5 + 8 + 1 + 2;
  if (snapshot.size() < fixed_words + devices_.size()) {
    return false;
  }
  memory_.RestoreWords(snapshot.subspan(0, memory_.size()));
  std::size_t pos = memory_.size();
  for (int mode = 0; mode < 2; ++mode) {
    for (int page = 0; page < kPagesPerMode; ++page) {
      PageRegister pr;
      pr.base = static_cast<PhysAddr>(snapshot[pos]) |
                (static_cast<PhysAddr>(snapshot[pos + 1]) << 16);
      pr.length = static_cast<std::uint32_t>(snapshot[pos + 2]) |
                  (static_cast<std::uint32_t>(snapshot[pos + 3]) << 16);
      pr.access = static_cast<PageAccess>(snapshot[pos + 4]);
      mmu_.SetPage(static_cast<CpuMode>(mode), page, pr);
      pos += 5;
    }
  }
  for (Word& r : cpu_.regs) {
    r = snapshot[pos++];
  }
  cpu_.psw.set_bits(snapshot[pos++]);
  for (const auto& dev : devices_) {
    if (pos >= snapshot.size()) {
      return false;
    }
    const std::size_t payload = snapshot[pos++];
    if (snapshot.size() - pos < payload + 2 ||
        !dev->RestoreState(snapshot.subspan(pos, payload))) {
      return false;
    }
    pos += payload;
  }
  halted_ = snapshot[pos++] != 0;
  waiting_ = snapshot[pos++] != 0;
  return pos == snapshot.size();
}

}  // namespace sep
